// Golden-file regression test: the quick experiment suite's stdout is
// locked byte-for-byte. Any change to the simulator, the analytic
// model, the RNG streams, the schedulers or the table formatting that
// shifts a single digit in any experiment table fails this test — the
// committed golden is the contract that optimization work preserves
// every reproduced result exactly.
//
// Regenerate deliberately with:
//
//	go test -run TestPaperfigsQuickGolden -update .
//
// and review the diff like any other behavioural change.
package affinity_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"affinity/internal/exp"
	"affinity/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

const goldenPath = "testdata/paperfigs_quick.golden"

// quickSuiteOutput reproduces `paperfigs -quick -parallel N` stdout
// in-process: every experiment runs concurrently over a shared
// sweep-point pool, tables print in declaration order, one blank line
// after each.
func quickSuiteOutput(parallel int) []byte {
	experiments := exp.All()
	cfg := exp.Config{Quick: true, Seed: 1, Pool: sim.NewPool(parallel)}
	tables := make([]*exp.Table, len(experiments))
	var wg sync.WaitGroup
	for i, e := range experiments {
		i, e := i, e
		wg.Add(1)
		go func() {
			defer wg.Done()
			tables[i] = e.Run(cfg)
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	for _, table := range tables {
		table.Fprint(&buf)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func TestPaperfigsQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite takes seconds; skipped with -short")
	}
	got := quickSuiteOutput(8)

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("quick suite output diverged from %s\n%s\n"+
			"If the change is intentional, regenerate with -update and review the diff.",
			goldenPath, diffLines(t, want, got))
	}

	// The pool must yield identical bytes at any worker count — run the
	// suite again fully serialized and compare against the same golden.
	if got1 := quickSuiteOutput(1); !bytes.Equal(got1, want) {
		t.Fatalf("-parallel 1 output diverged from -parallel 8 golden\n%s",
			diffLines(t, want, got1))
	}
}

// diffLines reports the first few differing lines — enough to see what
// moved without dumping 300 lines of tables.
func diffLines(t *testing.T, want, got []byte) string {
	t.Helper()
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	var out bytes.Buffer
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if !bytes.Equal(wl, gl) {
			out.WriteString("line ")
			out.WriteString(itoa(i + 1))
			out.WriteString(":\n  want: ")
			out.Write(wl)
			out.WriteString("\n  got:  ")
			out.Write(gl)
			out.WriteByte('\n')
			if shown++; shown >= 5 {
				out.WriteString("  … (more differences elided)\n")
				break
			}
		}
	}
	if shown == 0 {
		out.WriteString("(lengths differ only in trailing bytes)\n")
	}
	return out.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
