// Package fddi implements FDDI MAC framing with LLC/SNAP encapsulation —
// the link layer of the paper's UDP/IP/FDDI protocol stack. Frames are
// produced and consumed by the in-memory driver (internal/driver), the
// same technique the paper used: "data is not received from the actual
// FDDI network."
package fddi

import (
	"encoding/binary"
	"fmt"

	"affinity/internal/xkernel"
)

// Addr is a 48-bit MAC address.
type Addr [6]byte

// Broadcast is the all-ones MAC address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// Frame-control value for asynchronous LLC frames.
const fcLLCAsync = 0x50

// LLC/SNAP constants for encapsulated network protocols.
const (
	llcSAP  = 0xaa
	llcCtrl = 0x03
)

// HeaderLen is the FDDI MAC + LLC/SNAP header length: FC(1) + DA(6) +
// SA(6) + DSAP/SSAP/CTRL(3) + OUI(3) + EtherType(2).
const HeaderLen = 21

// EtherTypeIPv4 identifies IP datagrams in the SNAP header.
const EtherTypeIPv4 = 0x0800

// MTU is the maximum link payload (IP datagram) we carry per frame,
// chosen so the largest UDP payload is 4432 bytes (IP 20 + UDP 8 + 4432),
// the "largest possible FDDI packet" data size the paper quotes.
const MTU = 4460

// Header is the FDDI MAC + LLC/SNAP header.
type Header struct {
	Dst, Src  Addr
	EtherType uint16
}

// Encode prepends the header to a send-side message.
func (h Header) Encode(m *xkernel.Message) {
	b := m.Push(HeaderLen)
	b[0] = fcLLCAsync
	copy(b[1:7], h.Dst[:])
	copy(b[7:13], h.Src[:])
	b[13], b[14], b[15] = llcSAP, llcSAP, llcCtrl
	b[16], b[17], b[18] = 0, 0, 0 // OUI
	binary.BigEndian.PutUint16(b[19:21], h.EtherType)
}

// DecodeHeader parses and validates an FDDI MAC + LLC/SNAP header.
func DecodeHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, xkernel.ErrTruncated
	}
	if b[0] != fcLLCAsync {
		return h, fmt.Errorf("%w: frame control %#02x", xkernel.ErrBadHeader, b[0])
	}
	if b[13] != llcSAP || b[14] != llcSAP || b[15] != llcCtrl {
		return h, fmt.Errorf("%w: not LLC/SNAP", xkernel.ErrBadHeader)
	}
	copy(h.Dst[:], b[1:7])
	copy(h.Src[:], b[7:13])
	h.EtherType = binary.BigEndian.Uint16(b[19:21])
	return h, nil
}

// Stats counts link-layer demux outcomes.
type Stats struct {
	Delivered   uint64 // frames handed to an upper protocol
	NotForUs    uint64 // unicast frames for another station
	NoUpper     uint64 // no protocol bound to the EtherType
	Malformed   uint64 // truncated or non-SNAP frames
	UpperErrors uint64 // upper layer rejected the frame
}

// Protocol is the receive-side FDDI layer.
type Protocol struct {
	LocalAddr   Addr
	Promiscuous bool

	upper map[uint16]xkernel.Protocol
	stats Stats
}

// New returns an FDDI protocol endpoint for the given station address.
func New(local Addr) *Protocol {
	return &Protocol{LocalAddr: local, upper: make(map[uint16]xkernel.Protocol)}
}

// Name implements xkernel.Protocol.
func (p *Protocol) Name() string { return "fddi" }

// RegisterUpper binds an EtherType to the protocol above (e.g. IPv4).
func (p *Protocol) RegisterUpper(etherType uint16, up xkernel.Protocol) {
	p.upper[etherType] = up
}

// Stats returns a copy of the demux counters.
func (p *Protocol) Stats() Stats { return p.stats }

// Demux strips the FDDI header, filters on destination address, and
// passes the message to the protocol bound to its EtherType.
func (p *Protocol) Demux(m *xkernel.Message) error {
	raw, err := m.Peek(HeaderLen)
	if err != nil {
		p.stats.Malformed++
		return err
	}
	h, err := DecodeHeader(raw)
	if err != nil {
		p.stats.Malformed++
		return err
	}
	if !p.Promiscuous && h.Dst != p.LocalAddr && h.Dst != Broadcast {
		p.stats.NotForUs++
		return xkernel.ErrNotLocal
	}
	up, ok := p.upper[h.EtherType]
	if !ok {
		p.stats.NoUpper++
		return fmt.Errorf("%w: ethertype %#04x", xkernel.ErrNoDemuxMatch, h.EtherType)
	}
	if _, err := m.Pop(HeaderLen); err != nil {
		p.stats.Malformed++
		return err
	}
	if err := up.Demux(m); err != nil {
		p.stats.UpperErrors++
		return err
	}
	p.stats.Delivered++
	return nil
}
