package fddi

import (
	"errors"
	"testing"
	"testing/quick"

	"affinity/internal/xkernel"
)

var (
	stationA = Addr{0x02, 0x00, 0x00, 0x00, 0x00, 0x0a}
	stationB = Addr{0x02, 0x00, 0x00, 0x00, 0x00, 0x0b}
)

// sink records demuxed messages.
type sink struct {
	got []([]byte)
	err error
}

func (s *sink) Name() string { return "sink" }
func (s *sink) Demux(m *xkernel.Message) error {
	if s.err != nil {
		return s.err
	}
	cp := make([]byte, m.Len())
	copy(cp, m.Bytes())
	s.got = append(s.got, cp)
	return nil
}

func buildFrame(dst, src Addr, etherType uint16, payload []byte) []byte {
	m := xkernel.NewMessage(HeaderLen, payload)
	Header{Dst: dst, Src: src, EtherType: etherType}.Encode(m)
	return m.Bytes()
}

func TestHeaderRoundTrip(t *testing.T) {
	frame := buildFrame(stationA, stationB, EtherTypeIPv4, []byte("data"))
	if len(frame) != HeaderLen+4 {
		t.Fatalf("frame length = %d", len(frame))
	}
	h, err := DecodeHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if h.Dst != stationA || h.Src != stationB || h.EtherType != EtherTypeIPv4 {
		t.Fatalf("decoded %+v", h)
	}
}

func TestDecodeTruncated(t *testing.T) {
	if _, err := DecodeHeader(make([]byte, HeaderLen-1)); err != xkernel.ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestDecodeBadFrameControl(t *testing.T) {
	frame := buildFrame(stationA, stationB, EtherTypeIPv4, nil)
	frame[0] = 0x00
	if _, err := DecodeHeader(frame); !errors.Is(err, xkernel.ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

func TestDecodeNotSNAP(t *testing.T) {
	frame := buildFrame(stationA, stationB, EtherTypeIPv4, nil)
	frame[13] = 0x42
	if _, err := DecodeHeader(frame); !errors.Is(err, xkernel.ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

func TestDemuxDelivers(t *testing.T) {
	p := New(stationA)
	up := &sink{}
	p.RegisterUpper(EtherTypeIPv4, up)
	frame := buildFrame(stationA, stationB, EtherTypeIPv4, []byte("payload"))
	if err := p.Demux(xkernel.FromBytes(frame)); err != nil {
		t.Fatal(err)
	}
	if len(up.got) != 1 || string(up.got[0]) != "payload" {
		t.Fatalf("delivered %q", up.got)
	}
	if s := p.Stats(); s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDemuxFiltersOtherStation(t *testing.T) {
	p := New(stationA)
	up := &sink{}
	p.RegisterUpper(EtherTypeIPv4, up)
	frame := buildFrame(stationB, stationA, EtherTypeIPv4, nil)
	if err := p.Demux(xkernel.FromBytes(frame)); err != xkernel.ErrNotLocal {
		t.Fatalf("err = %v, want ErrNotLocal", err)
	}
	if len(up.got) != 0 {
		t.Fatal("frame for another station delivered")
	}
	if s := p.Stats(); s.NotForUs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDemuxBroadcast(t *testing.T) {
	p := New(stationA)
	up := &sink{}
	p.RegisterUpper(EtherTypeIPv4, up)
	frame := buildFrame(Broadcast, stationB, EtherTypeIPv4, []byte("bcast"))
	if err := p.Demux(xkernel.FromBytes(frame)); err != nil {
		t.Fatal(err)
	}
	if len(up.got) != 1 {
		t.Fatal("broadcast not delivered")
	}
}

func TestDemuxPromiscuous(t *testing.T) {
	p := New(stationA)
	p.Promiscuous = true
	up := &sink{}
	p.RegisterUpper(EtherTypeIPv4, up)
	frame := buildFrame(stationB, stationA, EtherTypeIPv4, nil)
	if err := p.Demux(xkernel.FromBytes(frame)); err != nil {
		t.Fatal(err)
	}
}

func TestDemuxNoUpper(t *testing.T) {
	p := New(stationA)
	frame := buildFrame(stationA, stationB, 0x86dd, nil) // IPv6: unbound
	err := p.Demux(xkernel.FromBytes(frame))
	if !errors.Is(err, xkernel.ErrNoDemuxMatch) {
		t.Fatalf("err = %v, want ErrNoDemuxMatch", err)
	}
	if s := p.Stats(); s.NoUpper != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDemuxUpperErrorCounted(t *testing.T) {
	p := New(stationA)
	upErr := errors.New("transport rejected")
	p.RegisterUpper(EtherTypeIPv4, &sink{err: upErr})
	frame := buildFrame(stationA, stationB, EtherTypeIPv4, nil)
	if err := p.Demux(xkernel.FromBytes(frame)); !errors.Is(err, upErr) {
		t.Fatalf("err = %v, want wrapped upper error", err)
	}
	if s := p.Stats(); s.UpperErrors != 1 || s.Delivered != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDemuxTruncatedFrame(t *testing.T) {
	p := New(stationA)
	err := p.Demux(xkernel.FromBytes(make([]byte, 5)))
	if err != xkernel.ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if s := p.Stats(); s.Malformed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAddrString(t *testing.T) {
	if got := stationA.String(); got != "02:00:00:00:00:0a" {
		t.Fatalf("String = %q", got)
	}
}

// Property: encode/decode round-trips any addresses and EtherType.
func TestPropertyHeaderRoundTrip(t *testing.T) {
	prop := func(dst, src [6]byte, et uint16, payload []byte) bool {
		frame := buildFrame(Addr(dst), Addr(src), et, payload)
		h, err := DecodeHeader(frame)
		if err != nil {
			return false
		}
		return h.Dst == Addr(dst) && h.Src == Addr(src) && h.EtherType == et
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
