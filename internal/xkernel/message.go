// Package xkernel provides an x-kernel-style protocol framework
// (Hutchinson & Peterson [8]): a message abstraction with efficient
// header push/pop, a protocol composition interface, and the demux
// plumbing used by the FDDI/IP/UDP receive fast path in the subpackages.
//
// The paper parallelized the receive side of exactly this framework; the
// reproduction uses it as the executable substrate for the examples, the
// calibration-trace structure, and the end-to-end protocol tests.
package xkernel

import (
	"errors"
	"fmt"
)

// Sentinel errors shared by the protocol layers.
var (
	// ErrTruncated reports a message too short for the requested header.
	ErrTruncated = errors.New("xkernel: message truncated")
	// ErrNoDemuxMatch reports that no upper protocol or session claimed
	// the message.
	ErrNoDemuxMatch = errors.New("xkernel: no demux match")
	// ErrBadChecksum reports a failed checksum verification.
	ErrBadChecksum = errors.New("xkernel: bad checksum")
	// ErrBadHeader reports a malformed header field.
	ErrBadHeader = errors.New("xkernel: bad header")
	// ErrNotLocal reports a datagram addressed to a non-local address.
	ErrNotLocal = errors.New("xkernel: not addressed to this host")
	// ErrTTLExpired reports a datagram whose TTL reached zero.
	ErrTTLExpired = errors.New("xkernel: ttl expired")
)

// Message is the x-kernel message tool: a byte buffer with headroom so
// protocol headers can be prepended (send side) and stripped (receive
// side) without copying the payload.
type Message struct {
	buf []byte
	off int // start of the current view
	end int // end of the current view
}

// NewMessage builds a send-side message carrying payload, reserving
// headroom bytes for headers to be pushed below it.
func NewMessage(headroom int, payload []byte) *Message {
	if headroom < 0 {
		panic("xkernel: negative headroom")
	}
	buf := make([]byte, headroom+len(payload))
	copy(buf[headroom:], payload)
	return &Message{buf: buf, off: headroom, end: len(buf)}
}

// FromBytes wraps a received frame for receive-side processing. The frame
// is not copied; layers pop headers off the front as they demultiplex.
func FromBytes(frame []byte) *Message {
	return &Message{buf: frame, off: 0, end: len(frame)}
}

// Len returns the current view length.
func (m *Message) Len() int { return m.end - m.off }

// Bytes returns the current view. The slice aliases the message buffer.
func (m *Message) Bytes() []byte { return m.buf[m.off:m.end] }

// Push prepends n bytes of header space and returns it for the caller to
// fill. It panics if the headroom is exhausted — send paths size their
// headroom at construction, so running out is a programming error.
func (m *Message) Push(n int) []byte {
	if n < 0 {
		panic("xkernel: negative push")
	}
	if m.off < n {
		panic(fmt.Sprintf("xkernel: push %d exceeds headroom %d", n, m.off))
	}
	m.off -= n
	return m.buf[m.off : m.off+n]
}

// Pop strips an n-byte header off the front and returns it, or
// ErrTruncated if the view is shorter than n.
func (m *Message) Pop(n int) ([]byte, error) {
	if n < 0 {
		panic("xkernel: negative pop")
	}
	if m.Len() < n {
		return nil, ErrTruncated
	}
	h := m.buf[m.off : m.off+n]
	m.off += n
	return h, nil
}

// Peek returns the first n bytes without consuming them.
func (m *Message) Peek(n int) ([]byte, error) {
	if m.Len() < n {
		return nil, ErrTruncated
	}
	return m.buf[m.off : m.off+n], nil
}

// Truncate shortens the view to n bytes, dropping trailing bytes (e.g.
// link-layer padding below an IP total-length). It is a no-op if the view
// is already at most n bytes.
func (m *Message) Truncate(n int) {
	if n < 0 {
		panic("xkernel: negative truncate")
	}
	if m.Len() > n {
		m.end = m.off + n
	}
}

// Clone returns an independent copy of the current view with the given
// headroom, for paths that must retain a message beyond the caller's
// buffer lifetime (e.g. reassembly).
func (m *Message) Clone(headroom int) *Message {
	return NewMessage(headroom, m.Bytes())
}

// Protocol is a receive-side protocol layer: Demux strips this layer's
// header from the message and passes it up.
type Protocol interface {
	Name() string
	Demux(m *Message) error
}

// Checksum computes the Internet checksum (RFC 1071) over b, starting
// from an initial partial sum (use 0, or a pseudo-header sum).
func Checksum(initial uint32, b []byte) uint16 {
	sum := initial
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// PartialSum accumulates b into a running 32-bit one's-complement sum,
// for building pseudo-header checksums incrementally.
func PartialSum(initial uint32, b []byte) uint32 {
	sum := initial
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	return sum
}
