package tcp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"affinity/internal/xkernel"
	"affinity/internal/xkernel/ip"
)

var (
	serverAddr = ip.MustParse(10, 0, 0, 1)
	clientAddr = ip.MustParse(10, 0, 0, 2)
)

// host bundles a TCP endpoint with captured outbound segments and
// delivered application bytes.
type host struct {
	tcp  *Protocol
	out  []Segment
	data bytes.Buffer
}

func newHost(t *testing.T, port uint16) *host {
	t.Helper()
	h := &host{}
	h.tcp = New(serverAddr, func(s Segment) { h.out = append(h.out, s) })
	if err := h.tcp.Listen(port, func(_ *Conn, d []byte) { h.data.Write(d) }); err != nil {
		t.Fatal(err)
	}
	return h
}

// client builds and injects segments toward the server.
type client struct {
	t    *testing.T
	h    *host
	port uint16 // server port
	seq  uint32
	ack  uint32
}

func (c *client) inject(hdr Header, payload []byte) error {
	m := xkernel.NewMessage(HeaderLen, payload)
	hdr.SrcPort, hdr.DstPort = 4000, c.port
	hdr.Encode(m, clientAddr, serverAddr)
	c.h.tcp.SetPseudoHeader(clientAddr, serverAddr)
	return c.h.tcp.Demux(xkernel.FromBytes(m.Bytes()))
}

// handshake completes the three-way handshake and returns the client.
func handshake(t *testing.T, h *host, port uint16) *client {
	t.Helper()
	c := &client{t: t, h: h, port: port, seq: 100}
	if err := c.inject(Header{Seq: c.seq, Flags: FlagSYN, Window: 65535}, nil); err != nil {
		t.Fatalf("SYN: %v", err)
	}
	if len(h.out) != 1 {
		t.Fatalf("expected SYN-ACK, got %d segments", len(h.out))
	}
	synAck := h.out[0].Hdr
	if synAck.Flags != FlagSYN|FlagACK {
		t.Fatalf("reply flags %#x, want SYN|ACK", synAck.Flags)
	}
	if synAck.Ack != c.seq+1 {
		t.Fatalf("SYN-ACK acks %d, want %d", synAck.Ack, c.seq+1)
	}
	c.seq++
	c.ack = synAck.Seq + 1
	if err := c.inject(Header{Seq: c.seq, Ack: c.ack, Flags: FlagACK}, nil); err != nil {
		t.Fatalf("handshake ACK: %v", err)
	}
	conn, ok := h.tcp.Conn(clientAddr, 4000, port)
	if !ok || conn.State() != Established {
		t.Fatalf("connection not established: %v %v", ok, conn)
	}
	return c
}

// send transmits an in-order data segment.
func (c *client) send(payload []byte) error {
	err := c.inject(Header{Seq: c.seq, Ack: c.ack, Flags: FlagACK | FlagPSH}, payload)
	c.seq += uint32(len(payload))
	return err
}

func TestHeaderRoundTrip(t *testing.T) {
	m := xkernel.NewMessage(HeaderLen, []byte("data"))
	Header{
		SrcPort: 1, DstPort: 2, Seq: 0xdeadbeef, Ack: 0xfeedface,
		Flags: FlagACK | FlagPSH, Window: 4096,
	}.Encode(m, clientAddr, serverAddr)
	h, err := DecodeHeader(m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h.Seq != 0xdeadbeef || h.Ack != 0xfeedface || h.DataOff != HeaderLen {
		t.Fatalf("decoded %+v", h)
	}
	if h.Flags != FlagACK|FlagPSH || h.Window != 4096 {
		t.Fatalf("decoded %+v", h)
	}
	// The encoded checksum must verify over the pseudo-header.
	sum := pseudoSum(clientAddr, serverAddr, uint16(HeaderLen+4))
	if xkernel.Checksum(sum, m.Bytes()) != 0 {
		t.Fatal("checksum does not verify")
	}
}

func TestDecodeMSSOption(t *testing.T) {
	// Hand-build a 24-byte header with an MSS option.
	b := make([]byte, 24)
	b[12] = 6 << 4 // data offset 24
	b[20], b[21], b[22], b[23] = 2, 4, 0x05, 0xb4
	h, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.MSS != 1460 {
		t.Fatalf("MSS = %d, want 1460", h.MSS)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeHeader(make([]byte, 19)); err != xkernel.ErrTruncated {
		t.Fatalf("short header err = %v", err)
	}
	b := make([]byte, 20)
	b[12] = 4 << 4 // data offset below minimum
	if _, err := DecodeHeader(b); !errors.Is(err, xkernel.ErrBadHeader) {
		t.Fatalf("bad offset err = %v", err)
	}
	b = make([]byte, 24)
	b[12] = 6 << 4
	b[20], b[21] = 2, 0 // malformed option length
	if _, err := DecodeHeader(b); !errors.Is(err, xkernel.ErrBadHeader) {
		t.Fatalf("bad option err = %v", err)
	}
}

func TestHandshake(t *testing.T) {
	h := newHost(t, 80)
	handshake(t, h, 80)
	if s := h.tcp.Stats(); s.Handshakes != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInOrderDataUsesFastPath(t *testing.T) {
	h := newHost(t, 80)
	c := handshake(t, h, 80)
	for i := 0; i < 5; i++ {
		if err := c.send([]byte("hello")); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.data.String(); got != "hellohellohellohellohello" {
		t.Fatalf("delivered %q", got)
	}
	if s := h.tcp.Stats(); s.FastPath != 5 {
		t.Fatalf("FastPath = %d, want 5 (stats %+v)", s.FastPath, s)
	}
	// Every data segment is ACKed with the advancing rcvNxt.
	last := h.out[len(h.out)-1].Hdr
	if last.Flags != FlagACK || last.Ack != c.seq {
		t.Fatalf("last ACK %+v, want ack=%d", last, c.seq)
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	h := newHost(t, 80)
	c := handshake(t, h, 80)
	base := c.seq
	// Send segment 2 before segment 1.
	if err := c.inject(Header{Seq: base + 4, Ack: c.ack, Flags: FlagACK}, []byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	if h.data.Len() != 0 {
		t.Fatal("out-of-order data delivered early")
	}
	conn, _ := h.tcp.Conn(clientAddr, 4000, 80)
	if conn.PendingOOO() != 1 {
		t.Fatalf("PendingOOO = %d", conn.PendingOOO())
	}
	if err := c.inject(Header{Seq: base, Ack: c.ack, Flags: FlagACK}, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if got := h.data.String(); got != "AAAABBBB" {
		t.Fatalf("delivered %q, want AAAABBBB", got)
	}
	if conn.PendingOOO() != 0 {
		t.Fatal("OOO queue not drained")
	}
	if s := h.tcp.Stats(); s.OutOfOrder != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDuplicateDataReACKed(t *testing.T) {
	h := newHost(t, 80)
	c := handshake(t, h, 80)
	if err := c.send([]byte("data")); err != nil {
		t.Fatal(err)
	}
	before := len(h.out)
	// Retransmit the same segment (seq already advanced; rewind).
	if err := c.inject(Header{Seq: c.seq - 4, Ack: c.ack, Flags: FlagACK}, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if h.data.String() != "data" {
		t.Fatalf("duplicate delivered twice: %q", h.data.String())
	}
	if len(h.out) != before+1 || h.out[len(h.out)-1].Hdr.Flags != FlagACK {
		t.Fatal("duplicate not re-ACKed")
	}
	if s := h.tcp.Stats(); s.Duplicates != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestOverlappingSegmentTrimmed(t *testing.T) {
	h := newHost(t, 80)
	c := handshake(t, h, 80)
	if err := c.send([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	// Segment covering [seq-2, seq+2): old "cd" + new "EF".
	if err := c.inject(Header{Seq: c.seq - 2, Ack: c.ack, Flags: FlagACK}, []byte("cdEF")); err != nil {
		t.Fatal(err)
	}
	if got := h.data.String(); got != "abcdEF" {
		t.Fatalf("delivered %q, want abcdEF", got)
	}
}

func TestDuplicateSYNRetransmitsSynAck(t *testing.T) {
	h := newHost(t, 80)
	c := &client{t: t, h: h, port: 80, seq: 100}
	if err := c.inject(Header{Seq: 100, Flags: FlagSYN}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.inject(Header{Seq: 100, Flags: FlagSYN}, nil); err != nil {
		t.Fatal(err)
	}
	if len(h.out) != 2 {
		t.Fatalf("expected 2 SYN-ACKs, got %d", len(h.out))
	}
	if h.out[0].Hdr.Seq != h.out[1].Hdr.Seq {
		t.Fatal("retransmitted SYN-ACK changed its sequence number")
	}
}

func TestRSTTearsDown(t *testing.T) {
	h := newHost(t, 80)
	c := handshake(t, h, 80)
	if err := c.inject(Header{Seq: c.seq, Ack: c.ack, Flags: FlagRST}, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.tcp.Conn(clientAddr, 4000, 80); ok {
		t.Fatal("connection survived RST")
	}
	if s := h.tcp.Stats(); s.Resets != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFINMovesToCloseWait(t *testing.T) {
	h := newHost(t, 80)
	c := handshake(t, h, 80)
	if err := c.send([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	if err := c.inject(Header{Seq: c.seq, Ack: c.ack, Flags: FlagACK | FlagFIN}, nil); err != nil {
		t.Fatal(err)
	}
	conn, ok := h.tcp.Conn(clientAddr, 4000, 80)
	if !ok || conn.State() != CloseWait {
		t.Fatalf("state = %v, want CLOSE_WAIT", conn.State())
	}
	// The FIN is ACKed one past the data.
	last := h.out[len(h.out)-1].Hdr
	if last.Ack != c.seq+1 {
		t.Fatalf("FIN ack = %d, want %d", last.Ack, c.seq+1)
	}
}

func TestChecksumRejected(t *testing.T) {
	h := newHost(t, 80)
	c := handshake(t, h, 80)
	m := xkernel.NewMessage(HeaderLen, []byte("data"))
	Header{SrcPort: 4000, DstPort: 80, Seq: c.seq, Ack: c.ack, Flags: FlagACK}.
		Encode(m, clientAddr, serverAddr)
	frame := m.Bytes()
	frame[len(frame)-1] ^= 0xff
	h.tcp.SetPseudoHeader(clientAddr, serverAddr)
	if err := h.tcp.Demux(xkernel.FromBytes(frame)); !errors.Is(err, xkernel.ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
	if h.data.Len() != 0 {
		t.Fatal("corrupt data delivered")
	}
}

func TestNoListenerRejected(t *testing.T) {
	h := newHost(t, 80)
	c := &client{t: t, h: h, port: 81, seq: 1} // port 81 not listening
	err := c.inject(Header{Seq: 1, Flags: FlagSYN}, nil)
	if !errors.Is(err, xkernel.ErrNoDemuxMatch) {
		t.Fatalf("err = %v, want ErrNoDemuxMatch", err)
	}
}

func TestDoubleListenRejected(t *testing.T) {
	h := newHost(t, 80)
	if err := h.tcp.Listen(80, nil); err == nil {
		t.Fatal("double listen allowed")
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Listen: "LISTEN", SynReceived: "SYN_RECEIVED",
		Established: "ESTABLISHED", CloseWait: "CLOSE_WAIT", Closed: "CLOSED",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if State(99).String() == "" {
		t.Fatal("unknown state empty string")
	}
}

func TestSeqCompareWraps(t *testing.T) {
	if !seqLT(0xffffffff, 1) {
		t.Fatal("wrap-around comparison broken")
	}
	if !seqLEQ(5, 5) || seqLT(5, 5) {
		t.Fatal("equality comparison broken")
	}
}

// Property: any segmentation of a byte stream, delivered in any order,
// reassembles to exactly the original bytes.
func TestPropertyStreamReassembly(t *testing.T) {
	prop := func(seed int64, sizeRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		size := 1 + int(sizeRaw)%4096
		stream := make([]byte, size)
		r.Read(stream)

		h := &host{}
		h.tcp = New(serverAddr, func(s Segment) { h.out = append(h.out, s) })
		if err := h.tcp.Listen(80, func(_ *Conn, d []byte) { h.data.Write(d) }); err != nil {
			return false
		}
		c := &client{h: h, port: 80, seq: uint32(r.Int63())}
		if c.inject(Header{Seq: c.seq, Flags: FlagSYN}, nil) != nil {
			return false
		}
		c.seq++
		c.ack = h.out[0].Hdr.Seq + 1
		if c.inject(Header{Seq: c.seq, Ack: c.ack, Flags: FlagACK}, nil) != nil {
			return false
		}

		// Random segmentation.
		type seg struct {
			off int
			end int
		}
		var segs []seg
		for off := 0; off < size; {
			n := 1 + r.Intn(512)
			if off+n > size {
				n = size - off
			}
			segs = append(segs, seg{off, off + n})
			off += n
		}
		// Random delivery order, each segment twice (duplicates must be
		// harmless).
		order := append(r.Perm(len(segs)), r.Perm(len(segs))...)
		base := c.seq
		for _, i := range order {
			s := segs[i]
			err := c.inject(Header{
				Seq: base + uint32(s.off), Ack: c.ack, Flags: FlagACK,
			}, stream[s.off:s.end])
			if err != nil {
				return false
			}
		}
		return bytes.Equal(h.data.Bytes(), stream)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
