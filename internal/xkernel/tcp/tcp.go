// Package tcp implements a receive-side TCP: header codec with
// pseudo-header checksum, a connection table, the three-way handshake,
// and the receive fast path with Van-Jacobson-style header prediction,
// out-of-order segment queueing and ACK generation.
//
// The paper argues its UDP results "are likely to hold directly for TCP"
// (the per-packet overhead breakdowns are similar, and TCP-specific
// processing is ~15 % of packet time); this package provides the
// executable TCP substrate that experiment E21 builds on.
package tcp

import (
	"encoding/binary"
	"fmt"

	"affinity/internal/xkernel"
	"affinity/internal/xkernel/ip"
)

// HeaderLen is the length of an option-less TCP header.
const HeaderLen = 20

// Flag bits.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Header is a decoded TCP header.
type Header struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          int // header length in bytes, including options
	Flags            uint8
	Window           uint16
	Checksum         uint16
	MSS              uint16 // from a SYN's MSS option, 0 if absent
}

// Encode prepends an option-less TCP header to a send-side message
// holding the payload, computing the checksum over the pseudo-header.
func (h Header) Encode(m *xkernel.Message, src, dst ip.Addr) {
	length := m.Len() + HeaderLen
	b := m.Push(HeaderLen)
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	b[16], b[17] = 0, 0
	b[18], b[19] = 0, 0
	sum := pseudoSum(src, dst, uint16(length))
	cs := xkernel.Checksum(sum, m.Bytes())
	binary.BigEndian.PutUint16(b[16:18], cs)
}

// DecodeHeader parses a TCP header, including the MSS option when
// present in a SYN.
func DecodeHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, xkernel.ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.DataOff = int(b[12]>>4) * 4
	if h.DataOff < HeaderLen {
		return h, fmt.Errorf("%w: tcp data offset %d", xkernel.ErrBadHeader, h.DataOff)
	}
	if len(b) < h.DataOff {
		return h, xkernel.ErrTruncated
	}
	h.Flags = b[13] & 0x3f
	h.Window = binary.BigEndian.Uint16(b[14:16])
	h.Checksum = binary.BigEndian.Uint16(b[16:18])
	// Parse options for MSS (kind 2, length 4).
	opts := b[HeaderLen:h.DataOff]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // NOP
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				return h, fmt.Errorf("%w: tcp option", xkernel.ErrBadHeader)
			}
			if opts[0] == 2 && opts[1] == 4 {
				h.MSS = binary.BigEndian.Uint16(opts[2:4])
			}
			opts = opts[opts[1]:]
		}
	}
	return h, nil
}

func pseudoSum(src, dst ip.Addr, tcpLen uint16) uint32 {
	sum := xkernel.PartialSum(0, src[:])
	sum = xkernel.PartialSum(sum, dst[:])
	return sum + 6 /* IPPROTO_TCP */ + uint32(tcpLen)
}

// seqLT and seqLEQ compare 32-bit sequence numbers modulo wrap-around.
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// State is a connection state (receive-oriented subset of RFC 793).
type State uint8

// Connection states.
const (
	Listen State = iota
	SynReceived
	Established
	CloseWait
	Closed
)

func (s State) String() string {
	switch s {
	case Listen:
		return "LISTEN"
	case SynReceived:
		return "SYN_RECEIVED"
	case Established:
		return "ESTABLISHED"
	case CloseWait:
		return "CLOSE_WAIT"
	case Closed:
		return "CLOSED"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// connKey identifies a connection by the remote endpoint and local port.
type connKey struct {
	remote     ip.Addr
	remotePort uint16
	localPort  uint16
}

// Segment is an outbound segment the TCP asks the caller to transmit
// (SYN-ACKs and ACKs on the receive path).
type Segment struct {
	Dst     ip.Addr
	Hdr     Header
	Payload []byte
}

// Emit transmits outbound segments; supplied by the host glue.
type Emit func(Segment)

// DataHandler consumes in-order application bytes from a connection.
type DataHandler func(conn *Conn, data []byte)

// Conn is a connection's receive-side state (the TCB).
type Conn struct {
	Remote     ip.Addr
	RemotePort uint16
	LocalPort  uint16

	state  State
	rcvNxt uint32 // next expected sequence number
	sndNxt uint32 // our sequence (for pure-ACK emission)
	mss    uint16

	// ooo holds out-of-order segments keyed by sequence number.
	ooo map[uint32][]byte

	handler DataHandler

	// Bytes and Segments count delivered in-order payload.
	Bytes    uint64
	Segments uint64
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// RcvNxt returns the next expected sequence number.
func (c *Conn) RcvNxt() uint32 { return c.rcvNxt }

// MSS returns the peer's advertised maximum segment size (0 if none).
func (c *Conn) MSS() uint16 { return c.mss }

// Stats counts protocol-level receive outcomes.
type Stats struct {
	FastPath    uint64 // header-prediction hits (in-order data, plain ACK)
	SlowPath    uint64 // everything else that was accepted
	OutOfOrder  uint64 // segments queued for reassembly
	Duplicates  uint64 // fully duplicate segments dropped
	BadChecksum uint64
	BadHeader   uint64
	NoMatch     uint64 // no connection or listener
	Resets      uint64 // connections torn down by RST
	Handshakes  uint64 // connections reaching ESTABLISHED
}

// Protocol is the receive-side TCP layer.
type Protocol struct {
	// VerifyChecksum enables checksum verification.
	VerifyChecksum bool
	// ISS is the initial send sequence number used for SYN-ACKs
	// (deterministic for reproducibility).
	ISS uint32

	local     ip.Addr
	emit      Emit
	listeners map[uint16]DataHandler
	conns     map[connKey]*Conn
	stats     Stats

	curSrc, curDst ip.Addr
}

// New returns a TCP endpoint for the given local address. Outbound
// segments (SYN-ACKs, ACKs) are handed to emit.
func New(local ip.Addr, emit Emit) *Protocol {
	return &Protocol{
		VerifyChecksum: true,
		ISS:            0x1000,
		local:          local,
		emit:           emit,
		listeners:      make(map[uint16]DataHandler),
		conns:          make(map[connKey]*Conn),
	}
}

// Name implements xkernel.Protocol.
func (p *Protocol) Name() string { return "tcp" }

// Listen performs a passive open on a local port; h receives each
// connection's in-order byte stream.
func (p *Protocol) Listen(port uint16, h DataHandler) error {
	if _, taken := p.listeners[port]; taken {
		return fmt.Errorf("tcp: port %d already listening", port)
	}
	p.listeners[port] = h
	return nil
}

// Stats returns a copy of the counters.
func (p *Protocol) Stats() Stats { return p.stats }

// Conn looks up an existing connection.
func (p *Protocol) Conn(remote ip.Addr, remotePort, localPort uint16) (*Conn, bool) {
	c, ok := p.conns[connKey{remote, remotePort, localPort}]
	return c, ok
}

// SetPseudoHeader supplies the enclosing IP datagram's addresses.
func (p *Protocol) SetPseudoHeader(src, dst ip.Addr) { p.curSrc, p.curDst = src, dst }

// sendFlags emits a payload-less control segment on conn.
func (p *Protocol) sendFlags(c *Conn, flags uint8) {
	if p.emit == nil {
		return
	}
	m := xkernel.NewMessage(HeaderLen, nil)
	h := Header{
		SrcPort: c.LocalPort, DstPort: c.RemotePort,
		Seq: c.sndNxt, Ack: c.rcvNxt,
		Flags: flags, Window: 65535,
	}
	h.Encode(m, p.local, c.Remote)
	p.emit(Segment{Dst: c.Remote, Hdr: h, Payload: nil})
}

// Demux processes one TCP segment.
func (p *Protocol) Demux(m *xkernel.Message) error {
	raw := m.Bytes()
	h, err := DecodeHeader(raw)
	if err != nil {
		p.stats.BadHeader++
		return err
	}
	if p.VerifyChecksum {
		sum := pseudoSum(p.curSrc, p.curDst, uint16(m.Len()))
		if xkernel.Checksum(sum, raw) != 0 {
			p.stats.BadChecksum++
			return fmt.Errorf("%w: tcp", xkernel.ErrBadChecksum)
		}
	}
	if _, err := m.Pop(h.DataOff); err != nil {
		p.stats.BadHeader++
		return err
	}
	payload := m.Bytes()

	key := connKey{p.curSrc, h.SrcPort, h.DstPort}
	c, ok := p.conns[key]
	if !ok {
		return p.demuxNoConn(key, h)
	}
	return p.segment(c, h, payload)
}

// demuxNoConn handles segments with no matching connection: SYNs to a
// listener create one; everything else is dropped.
func (p *Protocol) demuxNoConn(key connKey, h Header) error {
	handler, listening := p.listeners[h.DstPort]
	if !listening || h.Flags&FlagSYN == 0 || h.Flags&FlagACK != 0 {
		p.stats.NoMatch++
		return fmt.Errorf("%w: tcp %v:%d → :%d", xkernel.ErrNoDemuxMatch,
			key.remote, key.remotePort, key.localPort)
	}
	c := &Conn{
		Remote: key.remote, RemotePort: key.remotePort, LocalPort: key.localPort,
		state:   SynReceived,
		rcvNxt:  h.Seq + 1, // SYN consumes one sequence number
		sndNxt:  p.ISS,
		mss:     h.MSS,
		ooo:     make(map[uint32][]byte),
		handler: handler,
	}
	p.conns[key] = c
	p.stats.SlowPath++
	p.sendFlags(c, FlagSYN|FlagACK)
	c.sndNxt++ // our SYN consumes one
	return nil
}

// segment advances a connection's state machine with one segment.
func (p *Protocol) segment(c *Conn, h Header, payload []byte) error {
	if h.Flags&FlagRST != 0 {
		c.state = Closed
		delete(p.conns, connKey{c.Remote, c.RemotePort, c.LocalPort})
		p.stats.Resets++
		return nil
	}
	switch c.state {
	case SynReceived:
		if h.Flags&FlagACK != 0 && h.Ack == c.sndNxt {
			c.state = Established
			p.stats.Handshakes++
			p.stats.SlowPath++
			// The handshake ACK may carry data; fall through.
			if len(payload) == 0 && h.Flags&FlagFIN == 0 {
				return nil
			}
			return p.established(c, h, payload)
		}
		if h.Flags&FlagSYN != 0 && h.Seq+1 == c.rcvNxt {
			// Duplicate SYN: retransmit the SYN-ACK.
			p.stats.Duplicates++
			c.sndNxt--
			p.sendFlags(c, FlagSYN|FlagACK)
			c.sndNxt++
			return nil
		}
		p.stats.SlowPath++
		return nil
	case Established, CloseWait:
		return p.established(c, h, payload)
	default:
		p.stats.NoMatch++
		return fmt.Errorf("%w: segment for %v connection", xkernel.ErrNoDemuxMatch, c.state)
	}
}

// established is the data path: header prediction first, then the
// general out-of-order machinery.
func (p *Protocol) established(c *Conn, h Header, payload []byte) error {
	// Header prediction (the fast path the paper's measurements model):
	// the next in-sequence data segment with nothing unusual set.
	if h.Seq == c.rcvNxt && h.Flags&^(FlagACK|FlagPSH) == 0 && len(payload) > 0 {
		p.stats.FastPath++
		p.deliver(c, payload)
		p.drainOOO(c)
		p.sendFlags(c, FlagACK)
		return nil
	}

	p.stats.SlowPath++
	switch {
	case len(payload) > 0 && seqLT(h.Seq+uint32(len(payload)), c.rcvNxt+1):
		// Entirely old data: a duplicate; re-ACK so the sender advances.
		p.stats.Duplicates++
		p.sendFlags(c, FlagACK)
	case len(payload) > 0 && seqLT(c.rcvNxt, h.Seq):
		// Future data: hold for reassembly, send a duplicate ACK.
		p.stats.OutOfOrder++
		if _, dup := c.ooo[h.Seq]; !dup {
			cp := make([]byte, len(payload))
			copy(cp, payload)
			c.ooo[h.Seq] = cp
		}
		p.sendFlags(c, FlagACK)
	case len(payload) > 0:
		// Overlapping the expected point: trim the old prefix.
		trim := c.rcvNxt - h.Seq
		p.deliver(c, payload[trim:])
		p.drainOOO(c)
		p.sendFlags(c, FlagACK)
	}
	if h.Flags&FlagFIN != 0 && h.Seq+uint32(len(payload)) == c.rcvNxt {
		c.rcvNxt++ // FIN consumes one
		c.state = CloseWait
		p.sendFlags(c, FlagACK)
	}
	return nil
}

func (p *Protocol) deliver(c *Conn, data []byte) {
	c.rcvNxt += uint32(len(data))
	c.Bytes += uint64(len(data))
	c.Segments++
	if c.handler != nil {
		c.handler(c, data)
	}
}

// drainOOO delivers any queued segments that the advancing rcvNxt has
// made in-order.
func (p *Protocol) drainOOO(c *Conn) {
	for {
		data, ok := c.ooo[c.rcvNxt]
		if !ok {
			return
		}
		delete(c.ooo, c.rcvNxt)
		p.deliver(c, data)
	}
}

// PendingOOO returns the number of out-of-order segments a connection
// holds.
func (c *Conn) PendingOOO() int { return len(c.ooo) }
