package udp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"affinity/internal/xkernel"
	"affinity/internal/xkernel/ip"
)

var (
	srcAddr = ip.MustParse(10, 0, 0, 2)
	dstAddr = ip.MustParse(10, 0, 0, 1)
)

// wire builds the UDP wire bytes for a payload.
func wire(srcPort, dstPort uint16, payload []byte, checksum bool) []byte {
	m := xkernel.NewMessage(HeaderLen, payload)
	Encode(m, srcPort, dstPort, srcAddr, dstAddr, checksum)
	return m.Bytes()
}

func newBound(t *testing.T, port uint16) (*Protocol, *[]Datagram) {
	t.Helper()
	p := New()
	var got []Datagram
	if _, err := p.Bind(port, func(d Datagram) {
		d.Payload = append([]byte{}, d.Payload...)
		got = append(got, d)
	}); err != nil {
		t.Fatal(err)
	}
	p.SetPseudoHeader(srcAddr, dstAddr)
	return p, &got
}

func TestHeaderRoundTrip(t *testing.T) {
	b := wire(1234, 5678, []byte("hello"), true)
	h, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.SrcPort != 1234 || h.DstPort != 5678 {
		t.Fatalf("ports = %d→%d", h.SrcPort, h.DstPort)
	}
	if h.Length != uint16(HeaderLen+5) {
		t.Fatalf("Length = %d", h.Length)
	}
	if h.Checksum == 0 {
		t.Fatal("checksum requested but zero")
	}
}

func TestEncodeWithoutChecksum(t *testing.T) {
	b := wire(1, 2, []byte("x"), false)
	h, _ := DecodeHeader(b)
	if h.Checksum != 0 {
		t.Fatalf("Checksum = %#x, want 0 (disabled)", h.Checksum)
	}
}

func TestDecodeTruncated(t *testing.T) {
	if _, err := DecodeHeader(make([]byte, 7)); err != xkernel.ErrTruncated {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeBadLength(t *testing.T) {
	b := wire(1, 2, nil, false)
	b[4], b[5] = 0, 3 // below header length
	if _, err := DecodeHeader(b); !errors.Is(err, xkernel.ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
}

func TestDemuxDelivers(t *testing.T) {
	p, got := newBound(t, 5678)
	if err := p.Demux(xkernel.FromBytes(wire(1234, 5678, []byte("payload"), true))); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d", len(*got))
	}
	d := (*got)[0]
	if string(d.Payload) != "payload" || d.SrcPort != 1234 || d.DstPort != 5678 {
		t.Fatalf("datagram %+v", d)
	}
	if d.Src != srcAddr || d.Dst != dstAddr {
		t.Fatal("addresses not propagated")
	}
	if s := p.Stats(); s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDemuxChecksumVerified(t *testing.T) {
	p, got := newBound(t, 9)
	b := wire(1, 9, []byte("data!"), true)
	b[HeaderLen] ^= 0xff // corrupt payload
	err := p.Demux(xkernel.FromBytes(b))
	if !errors.Is(err, xkernel.ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
	if len(*got) != 0 {
		t.Fatal("corrupt datagram delivered")
	}
	if s := p.Stats(); s.BadChecksum != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDemuxZeroChecksumSkipsVerification(t *testing.T) {
	p, got := newBound(t, 9)
	b := wire(1, 9, []byte("data!"), false)
	b[HeaderLen] ^= 0xff // corrupt payload; no checksum to catch it
	if err := p.Demux(xkernel.FromBytes(b)); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatal("datagram without checksum dropped")
	}
}

func TestDemuxVerificationDisabled(t *testing.T) {
	p, got := newBound(t, 9)
	p.VerifyChecksum = false
	b := wire(1, 9, []byte("data!"), true)
	b[HeaderLen] ^= 0xff
	if err := p.Demux(xkernel.FromBytes(b)); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatal("datagram dropped despite disabled verification")
	}
}

func TestDemuxWrongPseudoHeaderFailsChecksum(t *testing.T) {
	p, _ := newBound(t, 9)
	p.SetPseudoHeader(srcAddr, ip.MustParse(1, 2, 3, 4)) // checksum was built for dstAddr
	err := p.Demux(xkernel.FromBytes(wire(1, 9, []byte("data!"), true)))
	if !errors.Is(err, xkernel.ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDemuxNoPort(t *testing.T) {
	p, _ := newBound(t, 9)
	err := p.Demux(xkernel.FromBytes(wire(1, 10, nil, false)))
	if !errors.Is(err, xkernel.ErrNoDemuxMatch) {
		t.Fatalf("err = %v, want ErrNoDemuxMatch", err)
	}
	if s := p.Stats(); s.NoPort != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDemuxLengthBeyondDatagram(t *testing.T) {
	p, _ := newBound(t, 9)
	b := wire(1, 9, []byte("abc"), false)
	b[4], b[5] = 0xff, 0xff
	if err := p.Demux(xkernel.FromBytes(b)); !errors.Is(err, xkernel.ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

func TestDemuxTruncatesPadding(t *testing.T) {
	p, got := newBound(t, 9)
	b := append(wire(1, 9, []byte("abc"), true), 0, 0, 0) // trailing padding
	if err := p.Demux(xkernel.FromBytes(b)); err != nil {
		t.Fatal(err)
	}
	if string((*got)[0].Payload) != "abc" {
		t.Fatalf("padding leaked: %q", (*got)[0].Payload)
	}
}

func TestBindConflict(t *testing.T) {
	p := New()
	if _, err := p.Bind(7, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Bind(7, nil); err == nil {
		t.Fatal("double bind allowed")
	}
	p.Unbind(7)
	if _, err := p.Bind(7, nil); err != nil {
		t.Fatalf("rebind after unbind failed: %v", err)
	}
}

func TestSessionCounters(t *testing.T) {
	p := New()
	s, err := p.Bind(9, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.SetPseudoHeader(srcAddr, dstAddr)
	for i := 0; i < 3; i++ {
		if err := p.Demux(xkernel.FromBytes(wire(1, 9, []byte("abcd"), true))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Packets != 3 || s.Bytes != 12 {
		t.Fatalf("session counters = %d pkts / %d bytes", s.Packets, s.Bytes)
	}
}

// Property: encode-then-demux round-trips any payload when the checksum
// is enabled and the pseudo-header matches.
func TestPropertyEncodeDemuxRoundTrip(t *testing.T) {
	prop := func(payload []byte, srcPort uint16) bool {
		p := New()
		var delivered []byte
		ok := false
		if _, err := p.Bind(400, func(d Datagram) {
			delivered = append([]byte{}, d.Payload...)
			ok = true
		}); err != nil {
			return false
		}
		p.SetPseudoHeader(srcAddr, dstAddr)
		if err := p.Demux(xkernel.FromBytes(wire(srcPort, 400, payload, true))); err != nil {
			return false
		}
		return ok && bytes.Equal(delivered, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-byte corruption of a checksummed datagram is
// detected (Internet checksum catches all single-byte errors).
func TestPropertyChecksumDetectsCorruption(t *testing.T) {
	prop := func(payload []byte, pos uint16, flip byte) bool {
		if flip == 0 {
			flip = 0x01
		}
		b := wire(5, 400, payload, true)
		i := int(pos) % len(b)
		if i == 6 || i == 7 {
			// Corrupting the checksum field itself is also detected,
			// but xor with the transmit-as-0xffff rule needs care; the
			// interesting bytes are everywhere else.
			i = 0
		}
		b[i] ^= flip
		p := New()
		if _, err := p.Bind(400, nil); err != nil {
			return false
		}
		p.SetPseudoHeader(srcAddr, dstAddr)
		err := p.Demux(xkernel.FromBytes(b))
		// Either the checksum catches it, or the corruption hit the
		// ports/length and demux fails another way. It must never be
		// silently delivered as valid.
		return err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
