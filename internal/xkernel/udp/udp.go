// Package udp implements the UDP layer: header encode/decode, optional
// checksum with the IPv4 pseudo-header, and port demultiplexing to bound
// sessions — the top of the paper's receive-side fast path.
package udp

import (
	"encoding/binary"
	"fmt"

	"affinity/internal/xkernel"
	"affinity/internal/xkernel/ip"
)

// HeaderLen is the UDP header length.
const HeaderLen = 8

// Header is a decoded UDP header.
type Header struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// Encode prepends a UDP header to a send-side message holding the
// payload. If src and dst are non-zero addresses, the checksum is
// computed over the pseudo-header and payload; otherwise it is left 0
// (checksum disabled, as permitted for UDP over IPv4).
func Encode(m *xkernel.Message, srcPort, dstPort uint16, src, dst ip.Addr, withChecksum bool) {
	length := m.Len() + HeaderLen
	b := m.Push(HeaderLen)
	binary.BigEndian.PutUint16(b[0:2], srcPort)
	binary.BigEndian.PutUint16(b[2:4], dstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(length))
	b[6], b[7] = 0, 0
	if withChecksum {
		sum := pseudoSum(src, dst, uint16(length))
		cs := xkernel.Checksum(sum, m.Bytes())
		if cs == 0 {
			cs = 0xffff // 0 means "no checksum"; transmit all-ones instead
		}
		binary.BigEndian.PutUint16(b[6:8], cs)
	}
}

// DecodeHeader parses a UDP header.
func DecodeHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, xkernel.ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	if int(h.Length) < HeaderLen {
		return h, fmt.Errorf("%w: udp length %d", xkernel.ErrBadHeader, h.Length)
	}
	return h, nil
}

func pseudoSum(src, dst ip.Addr, udpLen uint16) uint32 {
	sum := xkernel.PartialSum(0, src[:])
	sum = xkernel.PartialSum(sum, dst[:])
	return sum + uint32(ip.ProtoUDP) + uint32(udpLen)
}

// Datagram describes a delivered UDP datagram.
type Datagram struct {
	Src, Dst         ip.Addr
	SrcPort, DstPort uint16
	Payload          []byte
}

// Handler consumes datagrams delivered to a bound port.
type Handler func(Datagram)

// Session is the per-port endpoint state: the x-kernel session object a
// passive open (bind) creates.
type Session struct {
	Port      uint16
	handler   Handler
	Packets   uint64
	Bytes     uint64
	ChecksumE uint64 // datagrams dropped for bad checksum
}

// Stats counts protocol-level outcomes.
type Stats struct {
	Delivered   uint64
	NoPort      uint64
	BadChecksum uint64
	BadHeader   uint64
}

// Protocol is the receive-side UDP layer.
type Protocol struct {
	// VerifyChecksum enables checksum verification of incoming
	// datagrams that carry one.
	VerifyChecksum bool

	sessions map[uint16]*Session
	stats    Stats

	// pseudo-header context for the datagram being demuxed; set by the
	// IP adapter before calling Demux.
	curSrc, curDst ip.Addr
}

// New returns a UDP endpoint with checksum verification enabled.
func New() *Protocol {
	return &Protocol{VerifyChecksum: true, sessions: make(map[uint16]*Session)}
}

// Name implements xkernel.Protocol.
func (p *Protocol) Name() string { return "udp" }

// Bind creates a session for a local port. Binding an already-bound port
// returns an error, matching x-kernel open-enable semantics.
func (p *Protocol) Bind(port uint16, h Handler) (*Session, error) {
	if _, taken := p.sessions[port]; taken {
		return nil, fmt.Errorf("udp: port %d already bound", port)
	}
	s := &Session{Port: port, handler: h}
	p.sessions[port] = s
	return s, nil
}

// Unbind removes a port binding.
func (p *Protocol) Unbind(port uint16) { delete(p.sessions, port) }

// Stats returns a copy of the counters.
func (p *Protocol) Stats() Stats { return p.stats }

// SetPseudoHeader supplies the addresses of the enclosing IP datagram,
// needed for checksum verification and for the Datagram passed up.
func (p *Protocol) SetPseudoHeader(src, dst ip.Addr) {
	p.curSrc, p.curDst = src, dst
}

// Demux strips the UDP header, verifies the checksum if present, and
// delivers the payload to the session bound to the destination port.
func (p *Protocol) Demux(m *xkernel.Message) error {
	raw, err := m.Peek(HeaderLen)
	if err != nil {
		p.stats.BadHeader++
		return err
	}
	h, err := DecodeHeader(raw)
	if err != nil {
		p.stats.BadHeader++
		return err
	}
	if int(h.Length) > m.Len() {
		p.stats.BadHeader++
		return fmt.Errorf("%w: udp length %d exceeds datagram %d", xkernel.ErrBadHeader, h.Length, m.Len())
	}
	m.Truncate(int(h.Length))
	s, ok := p.sessions[h.DstPort]
	if !ok {
		p.stats.NoPort++
		return fmt.Errorf("%w: udp port %d", xkernel.ErrNoDemuxMatch, h.DstPort)
	}
	if p.VerifyChecksum && h.Checksum != 0 {
		sum := pseudoSum(p.curSrc, p.curDst, h.Length)
		if xkernel.Checksum(sum, m.Bytes()) != 0 {
			p.stats.BadChecksum++
			s.ChecksumE++
			return fmt.Errorf("%w: udp", xkernel.ErrBadChecksum)
		}
	}
	if _, err := m.Pop(HeaderLen); err != nil {
		p.stats.BadHeader++
		return err
	}
	s.Packets++
	s.Bytes += uint64(m.Len())
	if s.handler != nil {
		s.handler(Datagram{
			Src: p.curSrc, Dst: p.curDst,
			SrcPort: h.SrcPort, DstPort: h.DstPort,
			Payload: m.Bytes(),
		})
	}
	p.stats.Delivered++
	return nil
}
