package xkernel

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMessageSendSide(t *testing.T) {
	m := NewMessage(10, []byte("payload"))
	if m.Len() != 7 {
		t.Fatalf("Len = %d, want 7", m.Len())
	}
	h := m.Push(3)
	copy(h, "hdr")
	if m.Len() != 10 {
		t.Fatalf("Len after push = %d, want 10", m.Len())
	}
	if string(m.Bytes()) != "hdrpayload" {
		t.Fatalf("Bytes = %q", m.Bytes())
	}
}

func TestMessageReceiveSide(t *testing.T) {
	m := FromBytes([]byte("hdrpayload"))
	h, err := m.Pop(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(h) != "hdr" {
		t.Fatalf("Pop = %q, want hdr", h)
	}
	if string(m.Bytes()) != "payload" {
		t.Fatalf("remaining = %q", m.Bytes())
	}
}

func TestMessagePopTruncated(t *testing.T) {
	m := FromBytes([]byte("ab"))
	if _, err := m.Pop(3); err != ErrTruncated {
		t.Fatalf("Pop(3) err = %v, want ErrTruncated", err)
	}
	// A failed pop must not consume anything.
	if m.Len() != 2 {
		t.Fatalf("Len after failed pop = %d, want 2", m.Len())
	}
}

func TestMessagePeekDoesNotConsume(t *testing.T) {
	m := FromBytes([]byte("abcdef"))
	p, err := m.Peek(3)
	if err != nil || string(p) != "abc" {
		t.Fatalf("Peek = %q, %v", p, err)
	}
	if m.Len() != 6 {
		t.Fatal("Peek consumed bytes")
	}
	if _, err := m.Peek(7); err != ErrTruncated {
		t.Fatalf("oversized Peek err = %v", err)
	}
}

func TestMessagePushExhaustedPanics(t *testing.T) {
	m := NewMessage(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic pushing past headroom")
		}
	}()
	m.Push(3)
}

func TestMessageTruncate(t *testing.T) {
	m := FromBytes([]byte("abcdef"))
	m.Truncate(4)
	if string(m.Bytes()) != "abcd" {
		t.Fatalf("after Truncate: %q", m.Bytes())
	}
	m.Truncate(10) // no-op when longer than view
	if m.Len() != 4 {
		t.Fatal("growing Truncate changed length")
	}
}

func TestMessageClone(t *testing.T) {
	m := FromBytes([]byte("hdrdata"))
	if _, err := m.Pop(3); err != nil {
		t.Fatal(err)
	}
	c := m.Clone(5)
	c.Push(2)
	if string(m.Bytes()) != "data" {
		t.Fatal("clone shares state with original")
	}
	c2 := m.Clone(0)
	b := c2.Bytes()
	b[0] = 'X'
	if string(m.Bytes()) != "data" {
		t.Fatal("clone aliases original buffer")
	}
}

func TestMessagePushPopRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")
	m := NewMessage(30, payload)
	copy(m.Push(4), "udp!")
	copy(m.Push(20), "ip-header-20-bytes!!")
	// Receive side: wrap the wire bytes and strip.
	r := FromBytes(m.Bytes())
	if _, err := r.Pop(20); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Pop(4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Bytes(), payload) {
		t.Fatalf("round trip payload = %q", r.Bytes())
	}
}

func TestChecksumRFC1071Vector(t *testing.T) {
	// The worked example from RFC 1071 §3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(0, data); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Trailing byte is padded with zero on the right.
	if got, want := Checksum(0, []byte{0xab}), ^uint16(0xab00); got != want {
		t.Fatalf("odd Checksum = %#04x, want %#04x", got, want)
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := Checksum(0, nil); got != 0xffff {
		t.Fatalf("Checksum(nil) = %#04x, want 0xffff", got)
	}
}

// Property: appending a block's checksum makes the whole verify to zero —
// the invariant every receive path relies on.
func TestPropertyChecksumVerifiesToZero(t *testing.T) {
	prop := func(data []byte) bool {
		if len(data)%2 != 0 {
			data = append(data, 0)
		}
		cs := Checksum(0, data)
		whole := append(append([]byte{}, data...), byte(cs>>8), byte(cs))
		return Checksum(0, whole) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: PartialSum composes — summing in two chunks at an even
// boundary equals summing at once.
func TestPropertyPartialSumComposes(t *testing.T) {
	prop := func(a, b []byte) bool {
		if len(a)%2 != 0 {
			a = append(a, 0)
		}
		split := PartialSum(PartialSum(0, a), b)
		joined := PartialSum(0, append(append([]byte{}, a...), b...))
		// Fold both before comparing (sums may differ in carries).
		fold := func(s uint32) uint16 {
			for s>>16 != 0 {
				s = s&0xffff + s>>16
			}
			return uint16(s)
		}
		return fold(split) == fold(joined)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeArgumentsPanic(t *testing.T) {
	cases := []func(){
		func() { NewMessage(-1, nil) },
		func() { FromBytes([]byte("x")).Push(-1) },
		func() { FromBytes([]byte("x")).Truncate(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
	// Pop(-1) also panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Pop(-1): no panic")
			}
		}()
		_, _ = FromBytes([]byte("x")).Pop(-1)
	}()
}
