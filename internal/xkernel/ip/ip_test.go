package ip

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"affinity/internal/xkernel"
)

var (
	hostA = MustParse(10, 0, 0, 1)
	hostB = MustParse(10, 0, 0, 2)
)

type sink struct {
	got      [][]byte
	src, dst Addr
	err      error
}

func (s *sink) Name() string { return "sink" }
func (s *sink) SetPseudoHeader(src, dst Addr) {
	s.src, s.dst = src, dst
}
func (s *sink) Demux(m *xkernel.Message) error {
	if s.err != nil {
		return s.err
	}
	cp := make([]byte, m.Len())
	copy(cp, m.Bytes())
	s.got = append(s.got, cp)
	return nil
}

func defaultHeader() Header {
	return Header{TTL: 64, Proto: ProtoUDP, Src: hostB, Dst: hostA}
}

// datagram builds a single unfragmented datagram's wire bytes.
func datagram(h Header, payload []byte) []byte {
	m := xkernel.NewMessage(HeaderLen, payload)
	h.Encode(m)
	return m.Bytes()
}

func newEndpoint() (*Protocol, *sink) {
	p := New(hostA)
	up := &sink{}
	p.RegisterUpper(ProtoUDP, up)
	return p, up
}

func TestHeaderRoundTrip(t *testing.T) {
	h := defaultHeader()
	h.TOS = 0x10
	h.ID = 0xbeef
	wire := datagram(h, []byte("hello"))
	got, err := DecodeHeader(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != hostB || got.Dst != hostA || got.Proto != ProtoUDP ||
		got.TTL != 64 || got.TOS != 0x10 || got.ID != 0xbeef {
		t.Fatalf("decoded %+v", got)
	}
	if got.TotalLen != uint16(HeaderLen+5) {
		t.Fatalf("TotalLen = %d", got.TotalLen)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	wire := datagram(defaultHeader(), []byte("hello"))
	for i := 0; i < HeaderLen; i++ {
		bad := append([]byte{}, wire...)
		bad[i] ^= 0xff
		if _, err := DecodeHeader(bad); err == nil {
			// Flipping any header byte must break the checksum (or
			// another validity check).
			t.Errorf("corruption at byte %d went undetected", i)
		}
	}
}

func TestDecodeChecksumError(t *testing.T) {
	wire := datagram(defaultHeader(), nil)
	wire[10] ^= 0x55 // corrupt checksum field directly
	_, err := DecodeHeader(wire)
	if !errors.Is(err, xkernel.ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	wire := datagram(defaultHeader(), nil)
	wire[0] = 0x65 // version 6
	if _, err := DecodeHeader(wire); !errors.Is(err, xkernel.ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

func TestDecodeHeaderWithOptions(t *testing.T) {
	// Hand-build a 24-byte header (IHL=6) with one 4-byte option.
	b := make([]byte, 24)
	b[0] = 0x46
	b[2], b[3] = 0, 24
	b[8] = 64
	b[9] = ProtoUDP
	copy(b[12:16], hostB[:])
	copy(b[16:20], hostA[:])
	b[20] = 0x01 // NOP options
	cs := xkernel.Checksum(0, b[:24])
	b[10], b[11] = byte(cs>>8), byte(cs)
	h, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.HeaderBytes() != 24 {
		t.Fatalf("HeaderBytes = %d, want 24", h.HeaderBytes())
	}
}

func TestDemuxDelivers(t *testing.T) {
	p, up := newEndpoint()
	if err := p.Demux(xkernel.FromBytes(datagram(defaultHeader(), []byte("data")))); err != nil {
		t.Fatal(err)
	}
	if len(up.got) != 1 || string(up.got[0]) != "data" {
		t.Fatalf("delivered %q", up.got)
	}
	if up.src != hostB || up.dst != hostA {
		t.Fatal("pseudo-header not set on transport")
	}
	if s := p.Stats(); s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDemuxStripsLinkPadding(t *testing.T) {
	p, up := newEndpoint()
	wire := datagram(defaultHeader(), []byte("data"))
	padded := append(wire, make([]byte, 10)...) // link-layer padding
	if err := p.Demux(xkernel.FromBytes(padded)); err != nil {
		t.Fatal(err)
	}
	if string(up.got[0]) != "data" {
		t.Fatalf("padding leaked: %q", up.got[0])
	}
}

func TestDemuxNotLocal(t *testing.T) {
	p, _ := newEndpoint()
	h := defaultHeader()
	h.Dst = MustParse(192, 168, 1, 1)
	if err := p.Demux(xkernel.FromBytes(datagram(h, nil))); err != xkernel.ErrNotLocal {
		t.Fatalf("err = %v, want ErrNotLocal", err)
	}
	if s := p.Stats(); s.NotLocal != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDemuxTTLExpired(t *testing.T) {
	p, _ := newEndpoint()
	h := defaultHeader()
	h.TTL = 0
	if err := p.Demux(xkernel.FromBytes(datagram(h, nil))); err != xkernel.ErrTTLExpired {
		t.Fatalf("err = %v, want ErrTTLExpired", err)
	}
}

func TestDemuxNoUpper(t *testing.T) {
	p, _ := newEndpoint()
	h := defaultHeader()
	h.Proto = 6 // TCP: unbound
	err := p.Demux(xkernel.FromBytes(datagram(h, nil)))
	if !errors.Is(err, xkernel.ErrNoDemuxMatch) {
		t.Fatalf("err = %v, want ErrNoDemuxMatch", err)
	}
}

func TestDemuxTotalLenBeyondFrame(t *testing.T) {
	p, _ := newEndpoint()
	wire := datagram(defaultHeader(), []byte("abcdef"))
	// Re-encode with a lying TotalLen: hand-patch and re-checksum.
	wire[2], wire[3] = 0x40, 0x00
	wire[10], wire[11] = 0, 0
	cs := xkernel.Checksum(0, wire[:HeaderLen])
	wire[10], wire[11] = byte(cs>>8), byte(cs)
	if err := p.Demux(xkernel.FromBytes(wire)); !errors.Is(err, xkernel.ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

func TestFragmentSingleWhenFits(t *testing.T) {
	frags := Fragment(defaultHeader(), make([]byte, 100), 1500, 0)
	if len(frags) != 1 {
		t.Fatalf("fragments = %d, want 1", len(frags))
	}
	h, err := DecodeHeader(frags[0].Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h.MoreFrag || h.FragOff != 0 {
		t.Fatalf("unfragmented datagram has frag fields: %+v", h)
	}
}

func TestFragmentOffsetsAligned(t *testing.T) {
	frags := Fragment(defaultHeader(), make([]byte, 5000), 1500, 0)
	if len(frags) < 4 {
		t.Fatalf("fragments = %d, want ≥4", len(frags))
	}
	for i, f := range frags {
		h, err := DecodeHeader(f.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if h.FragOff%8 != 0 {
			t.Fatalf("fragment %d offset %d not 8-aligned", i, h.FragOff)
		}
		wantMF := i < len(frags)-1
		if h.MoreFrag != wantMF {
			t.Fatalf("fragment %d MF = %v, want %v", i, h.MoreFrag, wantMF)
		}
		if int(h.TotalLen) > 1500 {
			t.Fatalf("fragment %d exceeds mtu: %d", i, h.TotalLen)
		}
	}
}

func reassembleVia(p *Protocol, frags []*xkernel.Message, perm []int) error {
	for _, i := range perm {
		if err := p.Demux(xkernel.FromBytes(frags[i].Bytes())); err != nil {
			return err
		}
	}
	return nil
}

func TestReassemblyInOrder(t *testing.T) {
	p, up := newEndpoint()
	payload := make([]byte, 4000)
	for i := range payload {
		payload[i] = byte(i)
	}
	frags := Fragment(defaultHeader(), payload, 1500, 0)
	if err := reassembleVia(p, frags, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if len(up.got) != 1 || !bytes.Equal(up.got[0], payload) {
		t.Fatal("reassembled payload differs")
	}
	if s := p.Stats(); s.Reassembled != 1 || s.Fragments != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if p.PendingReassemblies() != 0 {
		t.Fatal("bucket not freed after completion")
	}
}

func TestReassemblyOutOfOrder(t *testing.T) {
	p, up := newEndpoint()
	payload := make([]byte, 4000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	frags := Fragment(defaultHeader(), payload, 1500, 0)
	if err := reassembleVia(p, frags, []int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if len(up.got) != 1 || !bytes.Equal(up.got[0], payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestReassemblyDuplicateFragment(t *testing.T) {
	p, up := newEndpoint()
	payload := make([]byte, 2000) // two fragments at a 1500 MTU
	frags := Fragment(defaultHeader(), payload, 1500, 0)
	if err := reassembleVia(p, frags, []int{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if len(up.got) != 1 {
		t.Fatalf("delivered %d datagrams, want 1", len(up.got))
	}
}

func TestReassemblyHoleHolds(t *testing.T) {
	p, up := newEndpoint()
	frags := Fragment(defaultHeader(), make([]byte, 4000), 1500, 0)
	if err := reassembleVia(p, frags, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if len(up.got) != 0 {
		t.Fatal("incomplete datagram delivered")
	}
	if p.PendingReassemblies() != 1 {
		t.Fatalf("pending = %d, want 1", p.PendingReassemblies())
	}
}

func TestReassemblyInterleavedDatagrams(t *testing.T) {
	p, up := newEndpoint()
	h1, h2 := defaultHeader(), defaultHeader()
	h1.ID, h2.ID = 1, 2
	pay1, pay2 := bytes.Repeat([]byte{0xaa}, 2000), bytes.Repeat([]byte{0xbb}, 2000)
	f1 := Fragment(h1, pay1, 1500, 0)
	f2 := Fragment(h2, pay2, 1500, 0)
	for _, m := range []*xkernel.Message{f1[0], f2[0], f2[1], f1[1]} {
		if err := p.Demux(xkernel.FromBytes(m.Bytes())); err != nil {
			t.Fatal(err)
		}
	}
	if len(up.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(up.got))
	}
	if !bytes.Equal(up.got[0], pay2) || !bytes.Equal(up.got[1], pay1) {
		t.Fatal("interleaved reassembly mixed payloads")
	}
}

func TestReassemblyExpiry(t *testing.T) {
	p, up := newEndpoint()
	p.ReasmTimeout = 3
	frags := Fragment(defaultHeader(), make([]byte, 4000), 1500, 0)
	if err := p.Demux(xkernel.FromBytes(frags[0].Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.Tick()
	}
	if p.PendingReassemblies() != 0 {
		t.Fatal("expired bucket not dropped")
	}
	if s := p.Stats(); s.ReasmExpired != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Remaining fragments arrive too late: a fresh bucket forms but the
	// datagram never completes.
	if err := reassembleVia(p, frags, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if len(up.got) != 0 {
		t.Fatal("late fragments completed a datagram")
	}
}

func TestFragmentTinyMTUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unusable mtu")
		}
	}()
	Fragment(defaultHeader(), make([]byte, 100), HeaderLen, 0)
}

// Property: fragment at a random (valid) MTU, deliver in random order,
// and the reassembled payload matches the original.
func TestPropertyFragmentReassembleRoundTrip(t *testing.T) {
	prop := func(seed int64, sizeRaw uint16, mtuRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		size := 1 + int(sizeRaw)%6000
		mtu := 64 + int(mtuRaw)%2000
		payload := make([]byte, size)
		r.Read(payload)
		h := defaultHeader()
		h.ID = uint16(seed)
		frags := Fragment(h, payload, mtu, 0)
		p, up := newEndpoint()
		for _, i := range r.Perm(len(frags)) {
			if err := p.Demux(xkernel.FromBytes(frags[i].Bytes())); err != nil {
				return false
			}
		}
		return len(up.got) == 1 && bytes.Equal(up.got[0], payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrString(t *testing.T) {
	if got := hostA.String(); got != "10.0.0.1" {
		t.Fatalf("String = %q", got)
	}
}
