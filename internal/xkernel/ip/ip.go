// Package ip implements the IPv4 layer of the stack: header
// encode/decode with checksum, receive-side validation, fragmentation
// and reassembly, and demultiplexing to transport protocols.
package ip

import (
	"encoding/binary"
	"errors"
	"fmt"

	"affinity/internal/xkernel"
)

// Addr is an IPv4 address.
type Addr [4]byte

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// MustParse builds an Addr from four octets — a convenience for tests
// and examples.
func MustParse(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// HeaderLen is the length of an option-less IPv4 header.
const HeaderLen = 20

// ProtoUDP and ProtoTCP are the IPv4 protocol numbers of the transports.
const (
	ProtoUDP = 17
	ProtoTCP = 6
)

// Flag bits in the flags/fragment-offset field.
const (
	flagDF = 0x4000
	flagMF = 0x2000
)

// Header is a decoded IPv4 header.
type Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	DontFrag bool
	MoreFrag bool
	FragOff  uint16 // byte offset (already ×8)
	TTL      uint8
	Proto    uint8
	Src, Dst Addr
	optLen   int
}

// HeaderBytes returns the on-wire header length including options.
func (h Header) HeaderBytes() int { return HeaderLen + h.optLen }

// Encode prepends an option-less IPv4 header (with correct checksum) to
// a send-side message whose view currently holds the payload.
func (h Header) Encode(m *xkernel.Message) {
	payloadLen := m.Len()
	b := m.Push(HeaderLen)
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(HeaderLen+payloadLen))
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	ff := h.FragOff / 8
	if h.DontFrag {
		ff |= flagDF
	}
	if h.MoreFrag {
		ff |= flagMF
	}
	binary.BigEndian.PutUint16(b[6:8], ff)
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	cs := xkernel.Checksum(0, b[:HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], cs)
}

// DecodeHeader parses and validates an IPv4 header, verifying version,
// IHL, total length and checksum.
func DecodeHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, xkernel.ErrTruncated
	}
	if b[0]>>4 != 4 {
		return h, fmt.Errorf("%w: version %d", xkernel.ErrBadHeader, b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < HeaderLen {
		return h, fmt.Errorf("%w: IHL %d", xkernel.ErrBadHeader, ihl)
	}
	if len(b) < ihl {
		return h, xkernel.ErrTruncated
	}
	if xkernel.Checksum(0, b[:ihl]) != 0 {
		return h, fmt.Errorf("%w: ip header", xkernel.ErrBadChecksum)
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	if int(h.TotalLen) < ihl {
		return h, fmt.Errorf("%w: total length %d < header %d", xkernel.ErrBadHeader, h.TotalLen, ihl)
	}
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.DontFrag = ff&flagDF != 0
	h.MoreFrag = ff&flagMF != 0
	h.FragOff = (ff & 0x1fff) * 8
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	h.optLen = ihl - HeaderLen
	return h, nil
}

// Stats counts receive-side outcomes.
type Stats struct {
	Delivered    uint64 // datagrams handed to a transport
	Reassembled  uint64 // datagrams completed from fragments
	Fragments    uint64 // fragments accepted into the reassembly table
	BadChecksum  uint64
	BadHeader    uint64
	NotLocal     uint64
	TTLExpired   uint64
	NoUpper      uint64
	ReasmExpired uint64 // reassembly buckets dropped by Expire
}

// Protocol is the receive-side IPv4 layer.
type Protocol struct {
	local map[Addr]bool
	upper map[uint8]xkernel.Protocol
	reasm map[reasmKey]*reasmBucket
	clock uint64 // logical time for reassembly expiry (caller-driven ticks)

	// ReasmTimeout is the number of Tick calls after which an incomplete
	// reassembly bucket is dropped.
	ReasmTimeout uint64

	stats Stats
}

// New returns an IP endpoint owning the given local addresses.
func New(locals ...Addr) *Protocol {
	p := &Protocol{
		local:        make(map[Addr]bool, len(locals)),
		upper:        make(map[uint8]xkernel.Protocol),
		reasm:        make(map[reasmKey]*reasmBucket),
		ReasmTimeout: 64,
	}
	for _, a := range locals {
		p.local[a] = true
	}
	return p
}

// Name implements xkernel.Protocol.
func (p *Protocol) Name() string { return "ip" }

// RegisterUpper binds an IP protocol number to the transport above.
func (p *Protocol) RegisterUpper(proto uint8, up xkernel.Protocol) {
	p.upper[proto] = up
}

// Stats returns a copy of the counters.
func (p *Protocol) Stats() Stats { return p.stats }

// Demux validates the IP header, reassembles fragments, and delivers the
// complete datagram's payload to the bound transport protocol.
func (p *Protocol) Demux(m *xkernel.Message) error {
	raw := m.Bytes()
	h, err := DecodeHeader(raw)
	if err != nil {
		if errors.Is(err, xkernel.ErrBadChecksum) {
			p.stats.BadChecksum++
		} else {
			p.stats.BadHeader++
		}
		return err
	}
	if h.TTL == 0 {
		p.stats.TTLExpired++
		return xkernel.ErrTTLExpired
	}
	if !p.local[h.Dst] {
		p.stats.NotLocal++
		return xkernel.ErrNotLocal
	}
	if int(h.TotalLen) > m.Len() {
		p.stats.BadHeader++
		return fmt.Errorf("%w: total length %d exceeds frame %d", xkernel.ErrBadHeader, h.TotalLen, m.Len())
	}
	// Drop link-layer padding, then strip the header.
	m.Truncate(int(h.TotalLen))
	if _, err := m.Pop(h.HeaderBytes()); err != nil {
		p.stats.BadHeader++
		return err
	}

	if h.MoreFrag || h.FragOff != 0 {
		complete := p.addFragment(h, m)
		if complete == nil {
			return nil // held for reassembly
		}
		p.stats.Reassembled++
		m = complete
	}
	up, ok := p.upper[h.Proto]
	if !ok {
		p.stats.NoUpper++
		return fmt.Errorf("%w: ip proto %d", xkernel.ErrNoDemuxMatch, h.Proto)
	}
	// Transports that checksum over the pseudo-header (UDP, TCP) need
	// the enclosing datagram's addresses.
	if tp, ok := up.(interface{ SetPseudoHeader(src, dst Addr) }); ok {
		tp.SetPseudoHeader(h.Src, h.Dst)
	}
	if err := up.Demux(m); err != nil {
		return err
	}
	p.stats.Delivered++
	return nil
}

// Fragment splits a transport payload into IP fragments that fit mtu and
// returns them as send-side messages with headers encoded, in order. A
// payload that fits yields a single unfragmented datagram.
func Fragment(h Header, payload []byte, mtu, headroom int) []*xkernel.Message {
	maxData := mtu - HeaderLen
	maxData -= maxData % 8 // fragment data must be a multiple of 8, except the last
	if maxData <= 0 {
		panic(fmt.Sprintf("ip: mtu %d leaves no room for data", mtu))
	}
	var out []*xkernel.Message
	for off := 0; ; {
		n := len(payload) - off
		last := true
		if n > maxData {
			n, last = maxData, false
		}
		fh := h
		fh.FragOff = uint16(off)
		fh.MoreFrag = !last
		m := xkernel.NewMessage(headroom+HeaderLen, payload[off:off+n])
		fh.Encode(m)
		out = append(out, m)
		off += n
		if last {
			return out
		}
	}
}
