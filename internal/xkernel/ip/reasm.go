package ip

import (
	"sort"

	"affinity/internal/xkernel"
)

// reasmKey identifies a datagram being reassembled (RFC 791: source,
// destination, protocol, identification).
type reasmKey struct {
	src, dst Addr
	proto    uint8
	id       uint16
}

type fragment struct {
	off  int
	data []byte
	last bool
}

type reasmBucket struct {
	frags    []fragment
	totalLen int // payload length once the last fragment is seen, else -1
	arrived  uint64
}

// addFragment stores one fragment and, if it completes the datagram,
// returns the reassembled payload as a fresh message. The fragment's
// message view holds exactly its data (header already stripped).
func (p *Protocol) addFragment(h Header, m *xkernel.Message) *xkernel.Message {
	p.stats.Fragments++
	key := reasmKey{src: h.Src, dst: h.Dst, proto: h.Proto, id: h.ID}
	b, ok := p.reasm[key]
	if !ok {
		b = &reasmBucket{totalLen: -1}
		p.reasm[key] = b
	}
	b.arrived = p.clock

	data := make([]byte, m.Len())
	copy(data, m.Bytes())
	b.frags = append(b.frags, fragment{off: int(h.FragOff), data: data, last: !h.MoreFrag})
	if !h.MoreFrag {
		b.totalLen = int(h.FragOff) + len(data)
	}
	if b.totalLen < 0 {
		return nil
	}

	// Check contiguous coverage of [0, totalLen).
	sort.Slice(b.frags, func(i, j int) bool { return b.frags[i].off < b.frags[j].off })
	covered := 0
	for _, f := range b.frags {
		if f.off > covered {
			return nil // hole
		}
		if end := f.off + len(f.data); end > covered {
			covered = end
		}
	}
	if covered < b.totalLen {
		return nil
	}

	payload := make([]byte, b.totalLen)
	for _, f := range b.frags {
		end := f.off + len(f.data)
		if end > b.totalLen {
			end = b.totalLen
			f.data = f.data[:b.totalLen-f.off]
		}
		copy(payload[f.off:end], f.data)
	}
	delete(p.reasm, key)
	return xkernel.FromBytes(payload)
}

// Tick advances the reassembly clock one step and drops buckets older
// than ReasmTimeout ticks. The simulation and drivers call it on their
// own cadence, keeping expiry deterministic.
func (p *Protocol) Tick() {
	p.clock++
	for k, b := range p.reasm {
		if p.clock-b.arrived > p.ReasmTimeout {
			delete(p.reasm, k)
			p.stats.ReasmExpired++
		}
	}
}

// PendingReassemblies returns the number of incomplete datagrams held.
func (p *Protocol) PendingReassemblies() int { return len(p.reasm) }
