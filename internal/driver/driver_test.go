package driver

import (
	"bytes"
	"testing"
	"testing/quick"

	"affinity/internal/xkernel/fddi"
	"affinity/internal/xkernel/ip"
	"affinity/internal/xkernel/udp"
)

var (
	sender = Endpoint{
		MAC:  fddi.Addr{0x02, 0, 0, 0, 0, 0x02},
		Addr: ip.MustParse(10, 0, 0, 2),
		Port: 1111,
	}
	receiver = Endpoint{
		MAC:  fddi.Addr{0x02, 0, 0, 0, 0, 0x01},
		Addr: ip.MustParse(10, 0, 0, 1),
		Port: 2222,
	}
)

func newHost(t *testing.T) (*Stack, *[]udp.Datagram) {
	t.Helper()
	s := NewStack(Config{MAC: receiver.MAC, Addr: receiver.Addr, VerifyChecksum: true})
	var got []udp.Datagram
	if _, err := s.UDP.Bind(receiver.Port, func(d udp.Datagram) {
		d.Payload = append([]byte{}, d.Payload...)
		got = append(got, d)
	}); err != nil {
		t.Fatal(err)
	}
	return s, &got
}

func TestEndToEndDelivery(t *testing.T) {
	s, got := newHost(t)
	flow := NewFlow(sender, receiver)
	flow.Checksum = true
	if err := s.Deliver(flow.Build(100)); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d datagrams", len(*got))
	}
	d := (*got)[0]
	if len(d.Payload) != 100 {
		t.Fatalf("payload length %d", len(d.Payload))
	}
	if d.SrcPort != sender.Port || d.DstPort != receiver.Port {
		t.Fatalf("ports %d→%d", d.SrcPort, d.DstPort)
	}
	if s.Frames != 1 || s.Errors != 0 {
		t.Fatalf("stack counters %d/%d", s.Frames, s.Errors)
	}
}

func TestSequenceNumbers(t *testing.T) {
	s, got := newHost(t)
	flow := NewFlow(sender, receiver)
	for i := 0; i < 10; i++ {
		if err := s.Deliver(flow.Build(64)); err != nil {
			t.Fatal(err)
		}
	}
	var chk SeqChecker
	for _, d := range *got {
		if err := chk.Check(d.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if chk.Received != 10 || chk.OutOfSeq != 0 {
		t.Fatalf("checker %+v", chk)
	}
}

func TestSeqCheckerDetectsGap(t *testing.T) {
	flow := NewFlow(sender, receiver)
	f0 := flow.Build(SeqLen)
	_ = flow.Build(SeqLen) // skipped frame
	f2 := flow.Build(SeqLen)
	extract := func(frame []byte) []byte {
		return frame[fddi.HeaderLen+ip.HeaderLen+udp.HeaderLen:]
	}
	var chk SeqChecker
	if err := chk.Check(extract(f0)); err != nil {
		t.Fatal(err)
	}
	if err := chk.Check(extract(f2)); err == nil {
		t.Fatal("gap not detected")
	}
	if chk.OutOfSeq != 1 {
		t.Fatalf("OutOfSeq = %d", chk.OutOfSeq)
	}
	if err := chk.Check([]byte("short")); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestLargePayloadFragmentsAndReassembles(t *testing.T) {
	s, got := newHost(t)
	flow := NewFlow(sender, receiver)
	flow.Checksum = true
	frames := flow.BuildFragments(10000) // >2 fragments at FDDI MTU
	if len(frames) < 3 {
		t.Fatalf("frames = %d, want ≥3", len(frames))
	}
	for _, f := range frames {
		if err := s.Deliver(f); err != nil {
			t.Fatal(err)
		}
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d datagrams, want 1", len(*got))
	}
	if n := len((*got)[0].Payload); n != 10000 {
		t.Fatalf("payload = %d bytes", n)
	}
	if st := s.IP.Stats(); st.Reassembled != 1 {
		t.Fatalf("ip stats %+v", st)
	}
}

func TestMaxUnfragmentedPayloadIs4432(t *testing.T) {
	// The paper: "the largest possible FDDI packets, each with 4432
	// bytes of data."
	flow := NewFlow(sender, receiver)
	if frames := flow.BuildFragments(4432); len(frames) != 1 {
		t.Fatalf("4432-byte payload built %d frames, want 1", len(frames))
	}
	if frames := flow.BuildFragments(4433); len(frames) != 2 {
		t.Fatalf("4433-byte payload built %d frames, want 2", len(frames))
	}
}

func TestWrongMACFiltered(t *testing.T) {
	s, got := newHost(t)
	other := receiver
	other.MAC = fddi.Addr{0x02, 0, 0, 0, 0, 0x99}
	flow := NewFlow(sender, other)
	if err := s.Deliver(flow.Build(64)); err == nil {
		t.Fatal("frame for another station accepted")
	}
	if len(*got) != 0 {
		t.Fatal("misaddressed frame delivered")
	}
	if s.Errors != 1 {
		t.Fatalf("Errors = %d", s.Errors)
	}
}

func TestWrongIPFiltered(t *testing.T) {
	s, got := newHost(t)
	other := receiver
	other.Addr = ip.MustParse(10, 9, 9, 9)
	flow := NewFlow(sender, other)
	if err := s.Deliver(flow.Build(64)); err == nil {
		t.Fatal("datagram for another host accepted")
	}
	if len(*got) != 0 {
		t.Fatal("misaddressed datagram delivered")
	}
}

func TestCorruptFrameDetected(t *testing.T) {
	s, got := newHost(t)
	flow := NewFlow(sender, receiver)
	flow.Checksum = true
	frame := flow.Build(256)
	frame[len(frame)-1] ^= 0xff
	if err := s.Deliver(frame); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	if len(*got) != 0 {
		t.Fatal("corrupt datagram delivered")
	}
}

func TestTinyPayloadPanics(t *testing.T) {
	flow := NewFlow(sender, receiver)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for sub-preamble payload")
		}
	}()
	flow.Build(SeqLen - 1)
}

func TestBuildPanicsWhenFragmentationNeeded(t *testing.T) {
	flow := NewFlow(sender, receiver)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized Build")
		}
	}()
	flow.Build(20000)
}

func TestMultipleFlowsDemuxIndependently(t *testing.T) {
	s := NewStack(Config{MAC: receiver.MAC, Addr: receiver.Addr, VerifyChecksum: true})
	counts := map[uint16]int{}
	for _, port := range []uint16{100, 200} {
		port := port
		if _, err := s.UDP.Bind(port, func(d udp.Datagram) { counts[port]++ }); err != nil {
			t.Fatal(err)
		}
	}
	to := func(port uint16) *Flow {
		dst := receiver
		dst.Port = port
		return NewFlow(sender, dst)
	}
	f100, f200 := to(100), to(200)
	for i := 0; i < 3; i++ {
		if err := s.Deliver(f100.Build(64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Deliver(f200.Build(64)); err != nil {
		t.Fatal(err)
	}
	if counts[100] != 3 || counts[200] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

// Property: any payload size and checksum setting round-trips through the
// full stack, fragmented or not, preserving the application bytes.
func TestPropertyFullStackRoundTrip(t *testing.T) {
	prop := func(sizeRaw uint16, checksum bool) bool {
		size := SeqLen + int(sizeRaw)%12000
		s := NewStack(Config{MAC: receiver.MAC, Addr: receiver.Addr, VerifyChecksum: true})
		var payload []byte
		if _, err := s.UDP.Bind(receiver.Port, func(d udp.Datagram) {
			payload = append([]byte{}, d.Payload...)
		}); err != nil {
			return false
		}
		flow := NewFlow(sender, receiver)
		flow.Checksum = checksum
		for _, f := range flow.BuildFragments(size) {
			if err := s.Deliver(f); err != nil {
				return false
			}
		}
		if len(payload) != size {
			return false
		}
		// Sequence preamble is 0 for the first datagram; the rest zeros.
		return bytes.Equal(payload[SeqLen:], make([]byte, size-SeqLen))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
