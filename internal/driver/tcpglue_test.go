package driver

import (
	"bytes"
	"testing"

	"affinity/internal/xkernel/tcp"
)

// newTCPHost returns a stack with TCP listening on port 80 and the
// delivered byte stream.
func newTCPHost(t *testing.T) (*Stack, *bytes.Buffer) {
	t.Helper()
	s := NewStack(Config{MAC: receiver.MAC, Addr: receiver.Addr, VerifyChecksum: true})
	tp := s.EnableTCP(receiver.Addr, receiver.MAC, sender.MAC)
	var data bytes.Buffer
	if err := tp.Listen(80, func(_ *tcp.Conn, d []byte) { data.Write(d) }); err != nil {
		t.Fatal(err)
	}
	return s, &data
}

// open performs the three-way handshake through the full stack.
func open(t *testing.T, s *Stack) *TCPFlow {
	t.Helper()
	dst := receiver
	dst.Port = 80
	src := sender
	src.Port = 4000
	flow := NewTCPFlow(src, dst, 7000)
	if err := s.Deliver(flow.Syn()); err != nil {
		t.Fatalf("SYN: %v", err)
	}
	if len(s.TCPOut) != 1 {
		t.Fatalf("expected SYN-ACK frame, got %d", len(s.TCPOut))
	}
	synAck, _, err := DecodeTCPFrame(s.TCPOut[0])
	if err != nil {
		t.Fatalf("decode SYN-ACK: %v", err)
	}
	if synAck.Flags != tcp.FlagSYN|tcp.FlagACK || synAck.Ack != 7001 {
		t.Fatalf("SYN-ACK %+v", synAck)
	}
	if err := s.Deliver(flow.AckSynAck(synAck)); err != nil {
		t.Fatalf("ACK: %v", err)
	}
	return flow
}

func TestTCPEndToEndThroughFullStack(t *testing.T) {
	s, data := newTCPHost(t)
	flow := open(t, s)
	for i := 0; i < 3; i++ {
		if err := s.Deliver(flow.Data([]byte("chunk!"))); err != nil {
			t.Fatal(err)
		}
	}
	if got := data.String(); got != "chunk!chunk!chunk!" {
		t.Fatalf("delivered %q", got)
	}
	st := s.TCP.Stats()
	if st.Handshakes != 1 || st.FastPath != 3 {
		t.Fatalf("tcp stats %+v", st)
	}
	// Each data segment was ACKed through the in-memory transmit side.
	last, _, err := DecodeTCPFrame(s.TCPOut[len(s.TCPOut)-1])
	if err != nil {
		t.Fatal(err)
	}
	if last.Ack != flow.Seq() {
		t.Fatalf("final ACK %d, want %d", last.Ack, flow.Seq())
	}
}

func TestTCPFinThroughFullStack(t *testing.T) {
	s, _ := newTCPHost(t)
	flow := open(t, s)
	if err := s.Deliver(flow.Fin()); err != nil {
		t.Fatal(err)
	}
	conn, ok := s.TCP.Conn(sender.Addr, 4000, 80)
	if !ok || conn.State() != tcp.CloseWait {
		t.Fatalf("state after FIN: %v", conn.State())
	}
}

func TestTCPCorruptSegmentRejectedByStack(t *testing.T) {
	s, data := newTCPHost(t)
	flow := open(t, s)
	frame := flow.Data([]byte("good data"))
	frame[len(frame)-2] ^= 0xff
	if err := s.Deliver(frame); err == nil {
		t.Fatal("corrupt TCP segment accepted")
	}
	if data.Len() != 0 {
		t.Fatal("corrupt payload delivered")
	}
}

func TestTCPRepliesAreWellFormedFrames(t *testing.T) {
	// The emitted SYN-ACK frame must itself survive a receive path: the
	// client-side stack accepts it.
	s, _ := newTCPHost(t)
	open(t, s)
	client := NewStack(Config{MAC: sender.MAC, Addr: sender.Addr, VerifyChecksum: true})
	clientTCP := client.EnableTCP(sender.Addr, sender.MAC, receiver.MAC)
	_ = clientTCP
	// The SYN-ACK is addressed to a connection the client stack does not
	// track, so TCP rejects it — but the frame must parse cleanly through
	// FDDI and IP (no Malformed/BadChecksum counts).
	_ = client.Deliver(s.TCPOut[0])
	if f := client.FDDI.Stats(); f.Malformed != 0 {
		t.Fatalf("fddi stats %+v", f)
	}
	if i := client.IP.Stats(); i.BadChecksum != 0 || i.BadHeader != 0 {
		t.Fatalf("ip stats %+v", i)
	}
	if ts := clientTCP.Stats(); ts.BadChecksum != 0 || ts.BadHeader != 0 {
		t.Fatalf("tcp stats %+v", ts)
	}
}

func TestDecodeTCPFrameErrors(t *testing.T) {
	if _, _, err := DecodeTCPFrame(make([]byte, 10)); err == nil {
		t.Fatal("short frame decoded")
	}
}
