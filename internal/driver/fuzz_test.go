package driver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"affinity/internal/xkernel/tcp"
)

// Property: arbitrary byte garbage injected as a frame never panics any
// layer — it is either rejected with an error or (vanishingly unlikely)
// parses as a valid frame. This is the robustness the receive path needs
// against a misbehaving network.
func TestPropertyGarbageFramesNeverPanic(t *testing.T) {
	prop := func(seed int64, n uint16) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		frame := make([]byte, int(n)%6000)
		r.Read(frame)
		s := NewStack(Config{MAC: receiver.MAC, Addr: receiver.Addr, VerifyChecksum: true})
		tp := s.EnableTCP(receiver.Addr, receiver.MAC, sender.MAC)
		if _, err := s.UDP.Bind(9, nil); err != nil {
			return false
		}
		if err := tp.Listen(9, nil); err != nil {
			return false
		}
		_ = s.Deliver(frame)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: truncating a valid frame at any point never panics — every
// layer handles short reads.
func TestPropertyTruncatedFramesNeverPanic(t *testing.T) {
	flow := NewFlow(sender, receiver)
	flow.Checksum = true
	full := flow.Build(512)
	prop := func(cut uint16) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		n := int(cut) % len(full)
		s := NewStack(Config{MAC: receiver.MAC, Addr: receiver.Addr, VerifyChecksum: true})
		if _, err := s.UDP.Bind(receiver.Port, nil); err != nil {
			return false
		}
		_ = s.Deliver(full[:n])
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single bit of a valid TCP frame never panics
// and never silently corrupts the delivered stream (the segment is
// either rejected or delivered with intact framing).
func TestPropertyTCPBitFlipsNeverPanic(t *testing.T) {
	prop := func(pos uint16, bit uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		s := NewStack(Config{MAC: receiver.MAC, Addr: receiver.Addr, VerifyChecksum: true})
		tp := s.EnableTCP(receiver.Addr, receiver.MAC, sender.MAC)
		if err := tp.Listen(80, nil); err != nil {
			return false
		}
		dst := receiver
		dst.Port = 80
		src := sender
		src.Port = 4000
		flow := NewTCPFlow(src, dst, 1)
		frame := flow.Syn()
		frame[int(pos)%len(frame)] ^= 1 << (bit % 8)
		_ = s.Deliver(frame)
		_ = tcp.FlagSYN // keep the import honest
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
