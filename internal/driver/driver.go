// Package driver provides the in-memory FDDI driver and full-stack
// composition: it builds complete UDP/IP/FDDI frames and injects them
// into the receive path, the same technique the paper used ("we developed
// in-memory drivers … data is not received from the actual FDDI
// network").
package driver

import (
	"encoding/binary"
	"fmt"

	"affinity/internal/xkernel"
	"affinity/internal/xkernel/fddi"
	"affinity/internal/xkernel/ip"
	"affinity/internal/xkernel/tcp"
	"affinity/internal/xkernel/udp"
)

// Stack is a composed UDP/IP/FDDI receive stack for one host, with an
// optional TCP endpoint (EnableTCP).
type Stack struct {
	FDDI *fddi.Protocol
	IP   *ip.Protocol
	UDP  *udp.Protocol
	TCP  *tcp.Protocol // nil until EnableTCP

	// TCPOut collects the frames the TCP endpoint emits on its receive
	// path (SYN-ACKs, ACKs) — the in-memory transmit side.
	TCPOut [][]byte

	// Frames counts frames injected via Deliver; Errors counts those
	// rejected anywhere on the path.
	Frames uint64
	Errors uint64
}

// Config describes the host a Stack serves.
type Config struct {
	MAC  fddi.Addr
	Addr ip.Addr
	// VerifyChecksum controls UDP checksum verification (the paper's
	// "non-data-touching" configuration disables it; see Section 5 of
	// DESIGN.md on data-touching overheads).
	VerifyChecksum bool
}

// NewStack composes and wires the three layers.
func NewStack(cfg Config) *Stack {
	f := fddi.New(cfg.MAC)
	i := ip.New(cfg.Addr)
	u := udp.New()
	u.VerifyChecksum = cfg.VerifyChecksum
	f.RegisterUpper(fddi.EtherTypeIPv4, i)
	i.RegisterUpper(ip.ProtoUDP, u)
	return &Stack{FDDI: f, IP: i, UDP: u}
}

// Deliver injects one received frame into the stack.
func (s *Stack) Deliver(frame []byte) error {
	s.Frames++
	err := s.FDDI.Demux(xkernel.FromBytes(frame))
	if err != nil {
		s.Errors++
	}
	return err
}

// Endpoint identifies one side of a UDP flow.
type Endpoint struct {
	MAC  fddi.Addr
	Addr ip.Addr
	Port uint16
}

// Flow builds the frames of one UDP stream from a source endpoint to a
// destination endpoint.
type Flow struct {
	Src, Dst Endpoint
	// Checksum enables the UDP checksum on built frames.
	Checksum bool
	// TTL for built datagrams (default 64 via NewFlow).
	TTL uint8

	id  uint16
	seq uint64
}

// NewFlow returns a frame builder for the given endpoints.
func NewFlow(src, dst Endpoint) *Flow {
	return &Flow{Src: src, Dst: dst, TTL: 64}
}

// SeqLen is the length of the sequence-number preamble Build places at
// the start of every payload.
const SeqLen = 8

// Build constructs the next in-sequence frame with payloadLen bytes of
// application data (minimum SeqLen: the first 8 bytes carry the flow
// sequence number, so receivers can verify ordered, loss-free delivery).
// The result is a single unfragmented frame; payloads above the FDDI MTU
// budget must use BuildFragments.
func (f *Flow) Build(payloadLen int) []byte {
	frames := f.BuildFragments(payloadLen)
	if len(frames) != 1 {
		panic(fmt.Sprintf("driver: payload %d requires fragmentation; use BuildFragments", payloadLen))
	}
	return frames[0]
}

// BuildFragments constructs the next in-sequence datagram, fragmenting
// at the FDDI MTU when necessary, and returns the complete frames in
// transmission order.
func (f *Flow) BuildFragments(payloadLen int) [][]byte {
	if payloadLen < SeqLen {
		panic(fmt.Sprintf("driver: payload %d below sequence preamble %d", payloadLen, SeqLen))
	}
	payload := make([]byte, payloadLen)
	binary.BigEndian.PutUint64(payload[:SeqLen], f.seq)
	f.seq++

	// UDP encapsulation first: the UDP header + payload is what IP
	// fragments.
	um := xkernel.NewMessage(udp.HeaderLen, payload)
	udp.Encode(um, f.Src.Port, f.Dst.Port, f.Src.Addr, f.Dst.Addr, f.Checksum)

	hdr := ip.Header{
		ID:    f.id,
		TTL:   f.TTL,
		Proto: ip.ProtoUDP,
		Src:   f.Src.Addr,
		Dst:   f.Dst.Addr,
	}
	f.id++
	frags := ip.Fragment(hdr, um.Bytes(), fddi.MTU, fddi.HeaderLen)

	frames := make([][]byte, len(frags))
	for i, frag := range frags {
		fh := fddi.Header{Dst: f.Dst.MAC, Src: f.Src.MAC, EtherType: fddi.EtherTypeIPv4}
		fh.Encode(frag)
		frames[i] = frag.Bytes()
	}
	return frames
}

// NextSeq returns the sequence number the next built frame will carry.
func (f *Flow) NextSeq() uint64 { return f.seq }

// SeqChecker verifies that a flow's datagrams arrive in order without
// loss or duplication.
type SeqChecker struct {
	next     uint64
	Received uint64
	OutOfSeq uint64
}

// Check inspects one delivered payload and records whether its sequence
// number is the expected next one.
func (c *SeqChecker) Check(payload []byte) error {
	if len(payload) < SeqLen {
		return fmt.Errorf("driver: payload %d too short for sequence preamble", len(payload))
	}
	seq := binary.BigEndian.Uint64(payload[:SeqLen])
	c.Received++
	if seq != c.next {
		c.OutOfSeq++
		c.next = seq + 1
		return fmt.Errorf("driver: sequence gap: got %d, want %d", seq, c.next-1)
	}
	c.next++
	return nil
}
