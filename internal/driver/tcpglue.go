package driver

import (
	"affinity/internal/xkernel"
	"affinity/internal/xkernel/fddi"
	"affinity/internal/xkernel/ip"
	"affinity/internal/xkernel/tcp"
)

// EnableTCP attaches a TCP endpoint to the stack. Outbound segments the
// TCP generates on the receive path (SYN-ACKs, ACKs) are appended to
// Stack.TCPOut as complete frames addressed to peerMAC — an in-memory
// stand-in for the transmit side, mirroring the paper's in-memory driver
// technique.
func (s *Stack) EnableTCP(localAddr ip.Addr, localMAC, peerMAC fddi.Addr) *tcp.Protocol {
	t := tcp.New(localAddr, func(seg tcp.Segment) {
		m := xkernel.NewMessage(fddi.HeaderLen+ip.HeaderLen+tcp.HeaderLen, seg.Payload)
		seg.Hdr.Encode(m, localAddr, seg.Dst)
		ih := ip.Header{
			TTL:   64,
			Proto: ip.ProtoTCP,
			Src:   localAddr,
			Dst:   seg.Dst,
		}
		ih.Encode(m)
		fh := fddi.Header{Dst: peerMAC, Src: localMAC, EtherType: fddi.EtherTypeIPv4}
		fh.Encode(m)
		s.TCPOut = append(s.TCPOut, m.Bytes())
	})
	s.TCP = t
	s.IP.RegisterUpper(ip.ProtoTCP, t)
	return t
}

// TCPFlow builds the client side of a TCP conversation toward a Stack —
// handshake and in-order data segments as complete FDDI frames.
type TCPFlow struct {
	Src, Dst Endpoint

	seq uint32
	ack uint32
	id  uint16
}

// NewTCPFlow returns a client flow starting at the given initial
// sequence number.
func NewTCPFlow(src, dst Endpoint, iss uint32) *TCPFlow {
	return &TCPFlow{Src: src, Dst: dst, seq: iss}
}

// frame wraps one TCP segment in IP and FDDI headers.
func (f *TCPFlow) frame(hdr tcp.Header, payload []byte) []byte {
	m := xkernel.NewMessage(fddi.HeaderLen+ip.HeaderLen+tcp.HeaderLen, payload)
	hdr.SrcPort, hdr.DstPort = f.Src.Port, f.Dst.Port
	hdr.Encode(m, f.Src.Addr, f.Dst.Addr)
	ih := ip.Header{
		ID:    f.id,
		TTL:   64,
		Proto: ip.ProtoTCP,
		Src:   f.Src.Addr,
		Dst:   f.Dst.Addr,
	}
	f.id++
	ih.Encode(m)
	fh := fddi.Header{Dst: f.Dst.MAC, Src: f.Src.MAC, EtherType: fddi.EtherTypeIPv4}
	fh.Encode(m)
	return m.Bytes()
}

// Syn builds the opening SYN.
func (f *TCPFlow) Syn() []byte {
	frame := f.frame(tcp.Header{Seq: f.seq, Flags: tcp.FlagSYN, Window: 65535}, nil)
	f.seq++
	return frame
}

// AckSynAck consumes the server's SYN-ACK header (decode a Stack.TCPOut
// frame with DecodeTCPFrame) and builds the handshake-completing ACK.
func (f *TCPFlow) AckSynAck(synAck tcp.Header) []byte {
	f.ack = synAck.Seq + 1
	return f.frame(tcp.Header{Seq: f.seq, Ack: f.ack, Flags: tcp.FlagACK, Window: 65535}, nil)
}

// DecodeTCPFrame strips the FDDI and IP headers off a frame and decodes
// the TCP header, returning it with the segment payload.
func DecodeTCPFrame(frame []byte) (tcp.Header, []byte, error) {
	m := xkernel.FromBytes(frame)
	if _, err := m.Pop(fddi.HeaderLen); err != nil {
		return tcp.Header{}, nil, err
	}
	ih, err := ip.DecodeHeader(m.Bytes())
	if err != nil {
		return tcp.Header{}, nil, err
	}
	m.Truncate(int(ih.TotalLen))
	if _, err := m.Pop(ih.HeaderBytes()); err != nil {
		return tcp.Header{}, nil, err
	}
	th, err := tcp.DecodeHeader(m.Bytes())
	if err != nil {
		return tcp.Header{}, nil, err
	}
	if _, err := m.Pop(th.DataOff); err != nil {
		return tcp.Header{}, nil, err
	}
	return th, m.Bytes(), nil
}

// Data builds the next in-order data segment.
func (f *TCPFlow) Data(payload []byte) []byte {
	frame := f.frame(tcp.Header{
		Seq: f.seq, Ack: f.ack, Flags: tcp.FlagACK | tcp.FlagPSH, Window: 65535,
	}, payload)
	f.seq += uint32(len(payload))
	return frame
}

// Fin builds the closing FIN.
func (f *TCPFlow) Fin() []byte {
	frame := f.frame(tcp.Header{
		Seq: f.seq, Ack: f.ack, Flags: tcp.FlagACK | tcp.FlagFIN, Window: 65535,
	}, nil)
	f.seq++
	return frame
}

// Seq returns the client's next sequence number.
func (f *TCPFlow) Seq() uint32 { return f.seq }
