package memtrace

// NewTCPTrace returns the per-packet reference stream of a TCP/IP/FDDI
// receive fast path. Kay & Pasquale [10] report that TCP's per-packet
// processing breakdown closely matches UDP's, with TCP-specific work
// (sequence processing, ACK generation, congestion bookkeeping) adding
// roughly 15 % at its most influential; the trace below grows the text
// walked per packet and the per-connection state (TCB, reassembly
// bookkeeping) accordingly, yielding a cold time ≈ 15 % above the UDP
// receive path through the same calibration pipeline.
func NewTCPTrace(streamID int) *ProtocolTrace {
	return &ProtocolTrace{
		// TCP's text follows UDP's in the protocol segment; TCBs are
		// larger than UDP PCBs.
		codeBase:   0x0050_0000,
		dataBase:   0x2000_2000 + uint64(streamID)*0x1_0000,
		CodeBytes:  7 << 10,
		DataBytes:  4096,
		LoopPasses: 2,
		DataStride: 16,
	}
}
