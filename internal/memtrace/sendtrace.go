package memtrace

// NewSendTrace returns the per-packet reference stream of the send-side
// UDP/IP/FDDI fast path — the paper's extension (i). Compared with the
// receive path, the send side executes less code (no demultiplexing, no
// header-prediction misses: headers are built from a template) but
// touches slightly more per-stream data (header template, socket buffer
// descriptors, transmit ring entry), and its hot loop (header fill +
// enqueue) is shorter.
//
// The geometry below yields, through the cache simulator and the same
// one-point normalization as the receive path, a fully-cold send time of
// ~230 µs — consistent with send processing being somewhat cheaper than
// the 284.3 µs receive path on the same hardware (send avoids the demux
// and protocol-state lookups the receive side pays for).
func NewSendTrace(streamID int) *ProtocolTrace {
	return &ProtocolTrace{
		// The send path's text sits above the receive path's in the
		// protocol segment; per-stream transmit state is disjoint from
		// receive state (own 64 KB stride per stream).
		codeBase:   0x0048_0000,
		dataBase:   0x1800_2000 + uint64(streamID)*0x1_0000,
		CodeBytes:  4 << 10,
		DataBytes:  4096,
		LoopPasses: 2,
		DataStride: 16,
	}
}
