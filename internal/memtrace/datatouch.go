package memtrace

import "affinity/internal/cachesim"

// DataTouchTrace generates the reference stream of a data-touching
// operation over a packet buffer: the Internet-checksum/copy loop that
// reads the payload sequentially, 16 bits at a time, from a tight
// unrolled loop. The paper quotes this running at 32 bytes/µs on its
// platform; experiment E25 replays this trace through the cache
// simulator and checks that rate emerges.
type DataTouchTrace struct {
	bufBase  uint64
	codeBase uint64
	Bytes    int
}

// NewDataTouchTrace returns the checksum-loop trace over a packetLen-byte
// buffer. Distinct buffers (bufID) occupy distinct addresses, as
// successive packets' mbufs would.
func NewDataTouchTrace(bufID, packetLen int) *DataTouchTrace {
	return &DataTouchTrace{
		// Packet buffers live in their own pool, away from protocol
		// code and state.
		bufBase:  0x3000_0000 + uint64(bufID)*0x1_0000,
		codeBase: 0x0058_0000, // the checksum routine's text
		Bytes:    packetLen,
	}
}

// Packet returns the reference stream of one checksum pass: the loop is
// unrolled 8× (one fetch block per 16 payload bytes), and the payload is
// read as 16-bit halfwords.
func (d *DataTouchTrace) Packet() []Ref {
	refs := make([]Ref, 0, d.Bytes/2+d.Bytes/16*2+8)
	// Loop preamble.
	for off := 0; off < 32; off += 4 {
		refs = append(refs, Ref{Addr: d.codeBase + uint64(off), Kind: cachesim.Instr})
	}
	for off := 0; off < d.Bytes; off += 2 {
		refs = append(refs, Ref{Addr: d.bufBase + uint64(off), Kind: cachesim.Data})
		// One fetch block (two instruction words) per unrolled group of
		// eight halfword loads.
		if off%16 == 0 {
			base := d.codeBase + 32 + uint64(off/16%8)*8
			refs = append(refs,
				Ref{Addr: base, Kind: cachesim.Instr},
				Ref{Addr: base + 4, Kind: cachesim.Instr})
		}
	}
	return refs
}

// BytesPerMicrosecond replays one checksum pass over a cold buffer (the
// packet just arrived by DMA, so its data is not cached) with warm code,
// and returns the achieved data-touching rate.
func (d *DataTouchTrace) BytesPerMicrosecond(h *cachesim.Hierarchy) float64 {
	trace := d.Packet()
	// Warm the code (the checksum routine is hot kernel text), leave
	// the buffer cold.
	for _, r := range trace {
		if r.Kind == cachesim.Instr {
			h.Touch(r.Addr, r.Kind)
		}
	}
	h.ResetStats()
	for _, r := range trace {
		h.Access(r.Addr, r.Kind)
	}
	return float64(d.Bytes) / h.Micros()
}

// WarmBytesPerMicrosecond returns the rate over a fully cached buffer —
// the peak rate a microbenchmark measures, and the regime the paper's
// quoted 32 bytes/µs corresponds to.
func (d *DataTouchTrace) WarmBytesPerMicrosecond(h *cachesim.Hierarchy) float64 {
	trace := d.Packet()
	for _, r := range trace {
		h.Touch(r.Addr, r.Kind)
	}
	h.ResetStats()
	for _, r := range trace {
		h.Access(r.Addr, r.Kind)
	}
	return float64(d.Bytes) / h.Micros()
}
