package memtrace

import "affinity/internal/core"

// platform returns the default study platform for tests.
func platform() core.Platform { return core.SGIChallengeXL() }
