// Package memtrace generates the memory-reference streams the calibration
// experiments replay against the cache simulator:
//
//   - ProtocolTrace: the per-packet reference stream of the receive-side
//     UDP/IP/FDDI fast path. Its structure (sequential code walk with
//     loop reuse, per-stream protocol-state touches, header-field
//     accesses) mirrors the executable protocol implementation in
//     internal/xkernel; its size is calibrated so that the fully-cold
//     replay costs ≈ 284.3 µs, the paper's measured t_cold.
//   - Workload: a displacing non-protocol reference stream whose
//     unique-lines growth follows the Singh–Stone–Thiebaut power law
//     u(R) ∝ R^b, produced with Thiebaut's fractal random-walk model
//     (θ = 1/b) over a large address space.
package memtrace

import (
	"math"

	"affinity/internal/cachesim"
	"affinity/internal/des"
)

// Ref is one memory reference.
type Ref struct {
	Addr uint64
	Kind cachesim.AccessKind
}

// ProtocolTrace generates the deterministic per-packet reference stream of
// the protocol fast path. The same packet processed twice issues the same
// references — protocol fast paths are highly repeatable, which is exactly
// what makes affinity scheduling pay off.
type ProtocolTrace struct {
	codeBase uint64 // base of the protocol text segment
	dataBase uint64 // base of the per-stream protocol state (PCB etc.)

	CodeBytes  int // text footprint walked per packet
	DataBytes  int // per-stream data footprint touched per packet
	LoopPasses int // how many times the inner loops re-walk hot code
	DataStride int // stride of data-structure field accesses
}

// NewProtocolTrace returns the calibrated default: a ~9.5 KB footprint
// (6 KB text + 3.5 KB data) touched by ≈3100 references per packet, which
// under cachesim.DefaultTiming reproduces the paper's cold/warm packet
// times (see cmd/calibrate and the T2 experiment).
func NewProtocolTrace(streamID int) *ProtocolTrace {
	return &ProtocolTrace{
		// Distinct streams share the text segment but have distinct
		// protocol state, placed far apart so streams do not
		// accidentally share data lines. The data base is offset past
		// the text's L2 index range (text occupies L2 sets 0..47) so a
		// single packet's code and data do not thrash each other — as a
		// real kernel's linker layout would also avoid.
		codeBase:   0x0040_0000,
		dataBase:   0x1000_2000 + uint64(streamID)*0x1_0000,
		CodeBytes:  6 << 10,
		DataBytes:  3584,
		LoopPasses: 2,
		DataStride: 16,
	}
}

// Packet returns the reference stream for processing one packet.
func (p *ProtocolTrace) Packet() []Ref {
	refs := make([]Ref, 0, p.refsPerPacket())
	// Straight-line walk of the fast-path text, one fetch per 4-byte
	// instruction word; the first fifth of the code (header-prediction
	// and demux loops) is re-executed LoopPasses extra times.
	hot := p.CodeBytes / 5
	for pass := 0; pass <= p.LoopPasses; pass++ {
		limit := p.CodeBytes
		if pass > 0 {
			limit = hot
		}
		for off := 0; off < limit; off += 4 {
			refs = append(refs, Ref{Addr: p.codeBase + uint64(off), Kind: cachesim.Instr})
			// Interleave a data reference every fourth instruction:
			// header fields, demux map probes, PCB counters.
			if off%16 == 0 {
				dataOff := (uint64(off/16*p.DataStride) * 2654435761) % uint64(p.DataBytes)
				refs = append(refs, Ref{Addr: p.dataBase + dataOff, Kind: cachesim.Data})
			}
		}
	}
	// Final sequential sweep over the remaining protocol state
	// (socket buffer append, statistics update).
	for off := 0; off < p.DataBytes; off += p.DataStride {
		refs = append(refs, Ref{Addr: p.dataBase + uint64(off), Kind: cachesim.Data})
	}
	return refs
}

func (p *ProtocolTrace) refsPerPacket() int {
	hot := p.CodeBytes / 5
	n := 0
	for pass := 0; pass <= p.LoopPasses; pass++ {
		limit := p.CodeBytes
		if pass > 0 {
			limit = hot
		}
		n += (limit + 3) / 4   // instruction fetches
		n += (limit + 15) / 16 // interleaved data references
	}
	n += (p.DataBytes + p.DataStride - 1) / p.DataStride // final state sweep
	return n
}

// Footprint returns the deduplicated set of references the packet touches,
// for probing cache residency (ResidentFraction).
func (p *ProtocolTrace) Footprint() ([]uint64, []cachesim.AccessKind) {
	seen := make(map[Ref]bool)
	var addrs []uint64
	var kinds []cachesim.AccessKind
	for _, r := range p.Packet() {
		key := Ref{Addr: r.Addr &^ 15, Kind: r.Kind} // dedupe at 16B line grain
		if seen[key] {
			continue
		}
		seen[key] = true
		addrs = append(addrs, key.Addr)
		kinds = append(kinds, key.Kind)
	}
	return addrs, kinds
}

// FootprintBytes returns the approximate unique footprint in bytes.
func (p *ProtocolTrace) FootprintBytes() int {
	addrs, _ := p.Footprint()
	return len(addrs) * 16
}

// Workload is the displacing non-protocol reference generator: a fractal
// random walk (Thiebaut, IEEE ToC 1989). Jump magnitudes follow a Pareto
// law with parameter theta; the resulting unique-lines count grows as
// R^(1/theta), so theta = 1/b matches the Singh–Stone–Thiebaut temporal
// locality exponent b of the MVS workload.
type Workload struct {
	rng     *des.RNG
	addr    float64
	theta   float64
	minStep float64
	span    float64
	flip    bool
}

// NewWorkload returns a generator matched to the MVS exponent b = 0.827457.
func NewWorkload(rng *des.RNG) *Workload {
	return NewWorkloadTheta(rng, 1/0.827457)
}

// NewWorkloadTheta returns a generator with an explicit fractal parameter
// theta > 1 (larger theta ⇒ tighter locality, slower unique-line growth).
func NewWorkloadTheta(rng *des.RNG, theta float64) *Workload {
	if theta <= 1 {
		panic("memtrace: fractal parameter theta must exceed 1")
	}
	return &Workload{
		rng:     rng,
		addr:    1 << 30, // start well away from protocol segments
		theta:   theta,
		minStep: 4,
		span:    1 << 28,
	}
}

// Next returns the next displacing reference. References alternate between
// instruction and data kinds so both split L1 caches see displacement, as
// a real multiprogrammed workload's do.
func (w *Workload) Next() Ref {
	// Pareto jump: magnitude = minStep · u^(−1/θ); random direction.
	u := w.rng.Float64()
	for u == 0 {
		u = w.rng.Float64()
	}
	step := w.minStep * math.Pow(u, -1/w.theta)
	if step > w.span {
		step = w.span
	}
	if w.rng.Float64() < 0.5 {
		step = -step
	}
	w.addr += step
	// Reflect at the segment boundaries to stay in range.
	lo, hi := float64(uint64(1)<<30), float64(uint64(1)<<30)+w.span
	for w.addr < lo || w.addr > hi {
		if w.addr < lo {
			w.addr = lo + (lo - w.addr)
		}
		if w.addr > hi {
			w.addr = hi - (w.addr - hi)
		}
	}
	w.flip = !w.flip
	kind := cachesim.Data
	if w.flip {
		kind = cachesim.Instr
	}
	// Scatter the walk's 128-byte lines uniformly across the address
	// space with a bijective mixer. The raw walk is spatially local, so
	// its lines would pile into a narrow band of cache sets (wherever
	// the walk happens to sit); the analytic displacement model assumes
	// lines map independently and uniformly into sets. Mixing at the
	// coarsest line granularity preserves the unique-line counts at
	// every granularity up to 128 bytes while realizing the uniform
	// placement the model assumes.
	a := uint64(w.addr)
	return Ref{Addr: mix64(a>>7)<<7 | a&127, Kind: kind}
}

// mix64 is the SplitMix64 finalizer — a 64-bit bijection with good
// avalanche behaviour.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Displace issues n references into the hierarchy without charging its
// statistics toward the caller's measurements (the displacement itself is
// "someone else's" execution). The caller should snapshot/reset stats as
// needed; Displace only performs the accesses.
func (w *Workload) Displace(h *cachesim.Hierarchy, n int) {
	for i := 0; i < n; i++ {
		r := w.Next()
		h.Access(r.Addr, r.Kind)
	}
}

// UniqueLines replays n references from a fresh generator and counts
// distinct lines of the given size — the empirical u(R, L), used to
// validate the generator against the analytic power law.
func UniqueLines(seed int64, n int, lineBytes int) int {
	w := NewWorkload(des.NewRNG(seed))
	seen := make(map[uint64]bool, n/4)
	for i := 0; i < n; i++ {
		seen[w.Next().Addr/uint64(lineBytes)] = true
	}
	return len(seen)
}
