package memtrace

import (
	"math"
	"testing"
	"testing/quick"

	"affinity/internal/cachesim"
	"affinity/internal/des"
)

func TestProtocolTraceDeterministic(t *testing.T) {
	p := NewProtocolTrace(0)
	a, b := p.Packet(), p.Packet()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestProtocolTraceRefCount(t *testing.T) {
	p := NewProtocolTrace(0)
	trace := p.Packet()
	// ~2900 references per packet (warm time ≈ refs·5cyc/100MHz ≈ 146 µs,
	// matching the calibrated t_warm).
	if len(trace) < 2000 || len(trace) > 4000 {
		t.Fatalf("refs per packet = %d, outside calibrated band", len(trace))
	}
	if got := p.refsPerPacket(); got != len(trace) {
		t.Fatalf("refsPerPacket() = %d, want %d", got, len(trace))
	}
}

func TestProtocolTraceFootprintSize(t *testing.T) {
	p := NewProtocolTrace(0)
	fp := p.FootprintBytes()
	// The calibrated footprint is ~9.5 KB — big enough that the reload
	// transient matters, small enough to fit in L1.
	if fp < 8<<10 || fp > 12<<10 {
		t.Fatalf("footprint = %d bytes, outside calibrated band", fp)
	}
}

func TestProtocolTraceStreamsShareCodeNotData(t *testing.T) {
	p0, p1 := NewProtocolTrace(0), NewProtocolTrace(1)
	seen0 := map[uint64]bool{}
	for _, r := range p0.Packet() {
		if r.Kind == cachesim.Data {
			seen0[r.Addr] = true
		}
	}
	var codeShared, dataShared bool
	code1 := map[uint64]bool{}
	for _, r := range p1.Packet() {
		if r.Kind == cachesim.Data && seen0[r.Addr] {
			dataShared = true
		}
		if r.Kind == cachesim.Instr {
			code1[r.Addr] = true
		}
	}
	for _, r := range p0.Packet() {
		if r.Kind == cachesim.Instr && code1[r.Addr] {
			codeShared = true
			break
		}
	}
	if !codeShared {
		t.Fatal("streams must share the protocol text segment")
	}
	if dataShared {
		t.Fatal("streams must not share protocol state addresses")
	}
}

func TestProtocolTraceMixesKinds(t *testing.T) {
	p := NewProtocolTrace(0)
	var instr, data int
	for _, r := range p.Packet() {
		if r.Kind == cachesim.Instr {
			instr++
		} else {
			data++
		}
	}
	if instr == 0 || data == 0 {
		t.Fatalf("trace must mix kinds: instr=%d data=%d", instr, data)
	}
	if instr < data {
		t.Fatalf("fast path should be fetch-dominated: instr=%d data=%d", instr, data)
	}
}

func TestFootprintDeduplicated(t *testing.T) {
	p := NewProtocolTrace(0)
	addrs, kinds := p.Footprint()
	if len(addrs) != len(kinds) {
		t.Fatal("addrs/kinds length mismatch")
	}
	seen := map[Ref]bool{}
	for i := range addrs {
		r := Ref{Addr: addrs[i], Kind: kinds[i]}
		if seen[r] {
			t.Fatalf("duplicate footprint entry %+v", r)
		}
		seen[r] = true
		if addrs[i]%16 != 0 {
			t.Fatalf("footprint entry %x not line-aligned", addrs[i])
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a := NewWorkload(des.NewRNG(1))
	b := NewWorkload(des.NewRNG(1))
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed workloads diverged")
		}
	}
}

func TestWorkloadAlternatesKinds(t *testing.T) {
	w := NewWorkload(des.NewRNG(2))
	prev := w.Next().Kind
	for i := 0; i < 10; i++ {
		k := w.Next().Kind
		if k == prev {
			t.Fatal("kinds must alternate")
		}
		prev = k
	}
}

func TestWorkloadSpreadsAcrossCacheSets(t *testing.T) {
	// The mixer must realize the analytic model's assumption that
	// displacing lines map uniformly into cache sets. The raw fractal
	// walk is spatially local (its lines would sit in one narrow band
	// of sets); after mixing, the touched sets must spread across the
	// whole index range.
	w := NewWorkload(des.NewRNG(3))
	sets := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		sets[(w.Next().Addr>>7)&8191] = true
	}
	const bands = 8
	counts := make([]int, bands)
	for s := range sets {
		counts[int(s)*bands/8192]++
	}
	per := len(sets) / bands
	for b, n := range counts {
		if n < per/3 {
			t.Fatalf("set band %d holds %d of %d touched sets; placement clustered: %v",
				b, n, len(sets), counts)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Distinct inputs must map to distinct outputs (spot check): a
	// collision would distort unique-line statistics.
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 100000; i++ {
		m := mix64(i)
		if prev, ok := seen[m]; ok {
			t.Fatalf("mix64 collision: %d and %d", prev, i)
		}
		seen[m] = i
	}
}

func TestWorkloadThetaValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for theta ≤ 1")
		}
	}()
	NewWorkloadTheta(des.NewRNG(1), 1.0)
}

// The fractal walk must reproduce the SST power law: u(R) ∝ R^b with
// b ≈ 0.83. Fit the empirical exponent over two decades and check the
// band. (This is the property the analytic F1/F2 curves rest on.)
func TestWorkloadUniqueLinesPowerLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("power-law fit needs large R")
	}
	r1, r2 := 20000, 2000000
	u1 := UniqueLines(42, r1, 16)
	u2 := UniqueLines(42, r2, 16)
	b := math.Log(float64(u2)/float64(u1)) / math.Log(float64(r2)/float64(r1))
	if b < 0.65 || b > 0.95 {
		t.Fatalf("empirical exponent b = %.3f, want ≈0.83 ± band", b)
	}
}

// Property: unique lines never exceed references and never shrink with
// more references.
func TestPropertyUniqueLinesSane(t *testing.T) {
	prop := func(seed int64) bool {
		u1 := UniqueLines(seed, 1000, 16)
		u2 := UniqueLines(seed, 5000, 16)
		return u1 <= 1000 && u2 <= 5000 && u1 <= u2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueLinesCoarserLinesFewer(t *testing.T) {
	u16 := UniqueLines(7, 100000, 16)
	u128 := UniqueLines(7, 100000, 128)
	if u128 >= u16 {
		t.Fatalf("u(R,128)=%d should be below u(R,16)=%d", u128, u16)
	}
}

func TestDisplaceIssuesAccesses(t *testing.T) {
	h := cachesim.New(platform(), cachesim.DefaultTiming())
	w := NewWorkload(des.NewRNG(5))
	w.Displace(h, 500)
	if h.Accesses() != 500 {
		t.Fatalf("Accesses = %d, want 500", h.Accesses())
	}
}

func TestDataTouchTraceReadsWholeBuffer(t *testing.T) {
	d := NewDataTouchTrace(0, 256)
	covered := map[uint64]bool{}
	for _, r := range d.Packet() {
		if r.Kind == cachesim.Data {
			covered[r.Addr&^1] = true
		}
	}
	if len(covered) != 128 { // 256 bytes as halfwords
		t.Fatalf("covered %d halfwords, want 128", len(covered))
	}
}

func TestDataTouchWarmRateMatchesPaper(t *testing.T) {
	// The paper: "checksumming on our platform can be performed at a
	// rate of 32 bytes/µs." The warm (cached-buffer) rate of our
	// checksum-loop trace must land on it.
	h := cachesim.New(platform(), cachesim.DefaultTiming())
	rate := NewDataTouchTrace(0, 4432).WarmBytesPerMicrosecond(h)
	if rate < 29 || rate > 35 {
		t.Fatalf("warm checksum rate %.1f B/µs, want ≈32 (paper)", rate)
	}
}

func TestDataTouchColdBufferSlower(t *testing.T) {
	h := cachesim.New(platform(), cachesim.DefaultTiming())
	cold := NewDataTouchTrace(0, 4432).BytesPerMicrosecond(h)
	h2 := cachesim.New(platform(), cachesim.DefaultTiming())
	warm := NewDataTouchTrace(0, 4432).WarmBytesPerMicrosecond(h2)
	if cold >= warm {
		t.Fatalf("cold rate %.1f not below warm rate %.1f", cold, warm)
	}
	// A DMA-cold buffer still checksums at the same order of magnitude.
	if cold < warm/2 {
		t.Fatalf("cold rate %.1f implausibly far below warm %.1f", cold, warm)
	}
}
