package topo

import (
	"strings"
	"testing"
)

func TestFlatIsIdentity(t *testing.T) {
	f := Flat(8)
	if f.Processors() != 8 || f.Sockets != 1 {
		t.Fatalf("Flat(8) = %+v", f)
	}
	if err := f.Validate(8); err != nil {
		t.Fatal(err)
	}
	for from := 0; from < 8; from++ {
		for to := 0; to < 8; to++ {
			if s := f.TransientScale(from, to); s != 1 {
				t.Fatalf("Flat scale(%d,%d) = %g", from, to, s)
			}
		}
	}
}

func TestSocketOfAndScales(t *testing.T) {
	top := &Topology{Sockets: 2, CoresPerSocket: 4, SameSocketTransient: 1.2, CrossSocketTransient: 2}
	if top.Processors() != 8 {
		t.Fatalf("Processors = %d", top.Processors())
	}
	wantSocket := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for p, w := range wantSocket {
		if got := top.SocketOf(p); got != w {
			t.Fatalf("SocketOf(%d) = %d, want %d", p, got, w)
		}
	}
	cases := []struct {
		from, to int
		want     float64
	}{
		{3, 3, 1},   // same core: no migration
		{0, 3, 1.2}, // same socket
		{3, 0, 1.2},
		{0, 4, 2}, // cross socket
		{7, 0, 2},
	}
	for _, c := range cases {
		if got := top.TransientScale(c.from, c.to); got != c.want {
			t.Errorf("TransientScale(%d,%d) = %g, want %g", c.from, c.to, got, c.want)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name  string
		top   Topology
		procs int
		want  string
	}{
		{"zero-sockets", Topology{CoresPerSocket: 4, SameSocketTransient: 1, CrossSocketTransient: 1}, 0, "positive"},
		{"zero-cores", Topology{Sockets: 2, SameSocketTransient: 1, CrossSocketTransient: 1}, 0, "positive"},
		{"same-below-one", Topology{Sockets: 2, CoresPerSocket: 2, SameSocketTransient: 0.5, CrossSocketTransient: 1}, 0, "same-socket"},
		{"cross-below-same", Topology{Sockets: 2, CoresPerSocket: 2, SameSocketTransient: 2, CrossSocketTransient: 1.5}, 0, "cross-socket"},
		{"shape-mismatch", Topology{Sockets: 2, CoresPerSocket: 2, SameSocketTransient: 1, CrossSocketTransient: 1}, 8, "8 processors"},
	}
	for _, c := range cases {
		err := c.top.Validate(c.procs)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate = %v, want error containing %q", c.name, err, c.want)
		}
	}
	good := Topology{Sockets: 2, CoresPerSocket: 4, SameSocketTransient: 1, CrossSocketTransient: 1.5}
	if err := good.Validate(8); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

func TestParseAndStringRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Topology
		out  string // String() rendering; "" means same as in
	}{
		{"1x8", Topology{1, 8, 1, 1}, ""},
		{"2x4", Topology{2, 4, 1, 1.5}, ""}, // default cross re-renders short
		{"2x4:1.2,2", Topology{2, 4, 1.2, 2}, ""},
		{"4x2:1,1", Topology{4, 2, 1, 1}, ""}, // non-default (cross 1): stays long
		{"2x4:1,1.5", Topology{2, 4, 1, 1.5}, "2x4"},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if *got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, *got, c.want)
		}
		want := c.out
		if want == "" {
			want = c.in
		}
		if got.String() != want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got.String(), want)
		}
		// String must survive a second Parse.
		again, err := Parse(got.String())
		if err != nil || *again != *got {
			t.Errorf("round trip of %q: %+v, %v", got.String(), again, err)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"", "8", "x8", "2x", "ax8", "2xb", "2x4:", "2x4:1",
		"2x4:a,2", "2x4:1,b", "0x4", "2x0", "-1x4", "2x4:0.5,2", "2x4:2,1",
	} {
		if top, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted: %+v", in, top)
		}
	}
}
