// Package topo models the processor topology: sockets × cores with
// per-level cache-reload transients.
//
// The paper's machine is a flat 8-way SMP — every migration costs the
// same reload transient, so the cost model needs only the displacing
// reference count x and the T(x) curve. On a multi-socket machine the
// transient is level-dependent: a stream migrating between cores of one
// socket can still hit in the shared last-level cache, while a
// cross-socket migration must refill from memory (and pay coherence
// traffic on top). The topology captures that as multipliers on the
// reload-transient portion of the execution-time curve:
//
//	T'(x) = t_warm + scale · (T(x) − t_warm)
//
// where scale is 1 for a packet running where its stream last ran,
// SameSocketTransient for a same-socket migration and
// CrossSocketTransient for a cross-socket one. Only the transient part
// scales — the warm-cache service time is a property of the code path,
// not of where the stream's stale state lives.
//
// The flat topology (one socket, both multipliers 1) is the exact
// degenerate case: every scale is 1 and the model reduces to the
// paper's, bit for bit.
package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// Topology is a symmetric sockets × cores machine shape with the
// per-level reload-transient multipliers. The zero value is invalid;
// use Flat or Parse, or fill every field.
type Topology struct {
	// Sockets and CoresPerSocket define the shape: processor p lives on
	// socket p / CoresPerSocket (processors number the cores
	// socket-major, matching how the simulator numbers them 0..N-1).
	Sockets        int
	CoresPerSocket int
	// SameSocketTransient scales the reload transient of a migration
	// between cores of one socket (≥ 1; 1 = the flat model, < cross
	// because the shared cache retains some of the stream's state).
	SameSocketTransient float64
	// CrossSocketTransient scales the reload transient of a migration
	// between sockets (≥ SameSocketTransient; the refill crosses the
	// interconnect).
	CrossSocketTransient float64
}

// Flat returns the paper's machine shape: one socket holding n cores,
// every migration paying the unscaled transient. It is the identity
// topology — TransientScale is 1 everywhere.
func Flat(n int) *Topology {
	return &Topology{Sockets: 1, CoresPerSocket: n, SameSocketTransient: 1, CrossSocketTransient: 1}
}

// Processors returns the total core count.
func (t *Topology) Processors() int { return t.Sockets * t.CoresPerSocket }

// SocketOf returns the socket holding core p.
func (t *Topology) SocketOf(p int) int { return p / t.CoresPerSocket }

// TransientScale returns the reload-transient multiplier for a packet
// running on core to when its stream last ran on core from: 1 on the
// same core (no migration — the T(x) curve already prices the decay),
// SameSocketTransient within a socket, CrossSocketTransient across.
func (t *Topology) TransientScale(from, to int) float64 {
	if from == to {
		return 1
	}
	if t.SocketOf(from) == t.SocketOf(to) {
		return t.SameSocketTransient
	}
	return t.CrossSocketTransient
}

// Validate checks internal consistency and, when processors > 0, that
// the shape matches that processor count.
func (t *Topology) Validate(processors int) error {
	if t.Sockets <= 0 || t.CoresPerSocket <= 0 {
		return fmt.Errorf("topo: shape %dx%d must be positive", t.Sockets, t.CoresPerSocket)
	}
	if t.SameSocketTransient < 1 {
		return fmt.Errorf("topo: same-socket transient %g < 1 (a migration cannot beat staying put)",
			t.SameSocketTransient)
	}
	if t.CrossSocketTransient < t.SameSocketTransient {
		return fmt.Errorf("topo: cross-socket transient %g < same-socket %g",
			t.CrossSocketTransient, t.SameSocketTransient)
	}
	if processors > 0 && t.Processors() != processors {
		return fmt.Errorf("topo: shape %dx%d has %d cores, run has %d processors",
			t.Sockets, t.CoresPerSocket, t.Processors(), processors)
	}
	return nil
}

// String renders the topology in a form Parse round-trips: bare "SxC"
// when the multipliers are exactly what Parse would default for that
// shape, else "SxC:same,cross".
func (t *Topology) String() string {
	cross := 1.0
	if t.Sockets > 1 {
		cross = 1.5
	}
	if t.SameSocketTransient == 1 && t.CrossSocketTransient == cross {
		return fmt.Sprintf("%dx%d", t.Sockets, t.CoresPerSocket)
	}
	return fmt.Sprintf("%dx%d:%g,%g",
		t.Sockets, t.CoresPerSocket, t.SameSocketTransient, t.CrossSocketTransient)
}

// Parse reads a topology spec: "SxC" (sockets × cores per socket,
// multipliers defaulting to same=1, cross=1.5) or "SxC:same,cross"
// with explicit transient multipliers — e.g. "2x4" or "2x4:1.2,2".
// The defaulted cross multiplier only applies when S > 1; a flat "1x8"
// stays the identity topology.
func Parse(s string) (*Topology, error) {
	shape, trans, hasTrans := strings.Cut(s, ":")
	sock, cores, ok := strings.Cut(shape, "x")
	if !ok {
		return nil, fmt.Errorf("topo: %q is not SxC or SxC:same,cross", s)
	}
	ns, err := strconv.Atoi(sock)
	if err != nil {
		return nil, fmt.Errorf("topo: bad socket count in %q: %v", s, err)
	}
	nc, err := strconv.Atoi(cores)
	if err != nil {
		return nil, fmt.Errorf("topo: bad cores-per-socket in %q: %v", s, err)
	}
	t := &Topology{Sockets: ns, CoresPerSocket: nc, SameSocketTransient: 1, CrossSocketTransient: 1}
	if ns > 1 {
		t.CrossSocketTransient = 1.5
	}
	if hasTrans {
		same, cross, ok := strings.Cut(trans, ",")
		if !ok {
			return nil, fmt.Errorf("topo: %q transients are not same,cross", s)
		}
		if t.SameSocketTransient, err = strconv.ParseFloat(same, 64); err != nil {
			return nil, fmt.Errorf("topo: bad same-socket transient in %q: %v", s, err)
		}
		if t.CrossSocketTransient, err = strconv.ParseFloat(cross, 64); err != nil {
			return nil, fmt.Errorf("topo: bad cross-socket transient in %q: %v", s, err)
		}
	}
	if err := t.Validate(0); err != nil {
		return nil, err
	}
	return t, nil
}
