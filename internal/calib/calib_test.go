package calib

import (
	"math"
	"testing"

	"affinity/internal/cachesim"
	"affinity/internal/core"
	"affinity/internal/memtrace"
)

func measure() Result {
	return Measure(core.SGIChallengeXL(), cachesim.DefaultTiming())
}

func TestMeasureOrdering(t *testing.T) {
	r := measure()
	if err := r.Raw.Validate(); err != nil {
		t.Fatalf("raw calibration invalid: %v", err)
	}
	if err := r.Normalized.Validate(); err != nil {
		t.Fatalf("normalized calibration invalid: %v", err)
	}
}

func TestMeasureAnchorsTCold(t *testing.T) {
	r := measure()
	if r.Normalized.TCold != PaperTCold {
		t.Fatalf("normalized TCold = %v, want exactly %v", r.Normalized.TCold, PaperTCold)
	}
	// One-point normalization: the scale is close to 1 — the simulator's
	// absolute prediction is within ~10% of the hardware anchor.
	if r.Scale < 0.9 || r.Scale > 1.1 {
		t.Fatalf("scale = %v, drifted far from the hardware anchor", r.Scale)
	}
}

func TestMeasureWarmPassIsAllHits(t *testing.T) {
	r := measure()
	// The warm pass of a deterministic, conflict-free trace costs exactly
	// base cycles per reference.
	want := float64(r.RefsPerPacket) * cachesim.DefaultTiming().Base / 100
	if math.Abs(r.Raw.TWarm-want) > 1e-9 {
		t.Fatalf("raw TWarm = %v, want all-hit %v", r.Raw.TWarm, want)
	}
}

func TestMeasureMatchesPaperCalibration(t *testing.T) {
	// core.PaperCalibration is documented as this measurement rounded to
	// 0.1 µs; drift between the two means someone changed one side only.
	r := measure()
	c := core.PaperCalibration()
	if math.Abs(r.Normalized.TWarm-c.TWarm) > 0.05 ||
		math.Abs(r.Normalized.TL1Cold-c.TL1Cold) > 0.05 ||
		math.Abs(r.Normalized.TCold-c.TCold) > 0.05 {
		t.Fatalf("calibration drift: measured %+v vs core default %+v", r.Normalized, c)
	}
}

func TestMeasureReductionInPaperBand(t *testing.T) {
	r := measure()
	if red := r.Normalized.MaxReduction(); red < 0.40 || red > 0.50 {
		t.Fatalf("max reduction %v outside the paper's 40-50%% band", red)
	}
}

func TestMeasureMissCounts(t *testing.T) {
	r := measure()
	if r.L1MissesCold == 0 || r.L2MissesCold == 0 {
		t.Fatal("cold pass must miss in both levels")
	}
	if r.L2MissesCold >= r.L1MissesCold {
		t.Fatalf("L2 misses %d should be far below L1 misses %d (coarser lines)",
			r.L2MissesCold, r.L1MissesCold)
	}
	if r.FootprintBytes <= 0 || r.RefsPerPacket <= 0 {
		t.Fatal("footprint/refs not reported")
	}
}

func TestValidateDisplacementShape(t *testing.T) {
	m := core.NewModel()
	xs := []float64{0, 100, 500, 2000, 10000, 50000}
	pts := ValidateDisplacement(m, cachesim.DefaultTiming(), xs, 1)
	if len(pts) != len(xs) {
		t.Fatalf("got %d points, want %d", len(pts), len(xs))
	}
	// No displacement ⇒ nothing missing and the reload is warm.
	if pts[0].SimF1 != 0 || pts[0].SimF2 != 0 {
		t.Fatalf("x=0 displaced fractions = %v/%v, want 0/0", pts[0].SimF1, pts[0].SimF2)
	}
	for i := 1; i < len(pts); i++ {
		p, q := pts[i-1], pts[i]
		if q.SimF1 < p.SimF1-0.05 {
			t.Errorf("SimF1 not ~monotone at x=%v: %v → %v", q.Micros, p.SimF1, q.SimF1)
		}
		if q.ReloadSim < p.ReloadSim-1 {
			t.Errorf("reload time not ~monotone at x=%v: %v → %v", q.Micros, p.ReloadSim, q.ReloadSim)
		}
	}
	// Long displacement flushes most of L1 but far less of L2.
	last := pts[len(pts)-1]
	if last.SimF1 < 0.5 {
		t.Errorf("50 ms of displacement flushed only %v of L1", last.SimF1)
	}
	if last.SimF2 > last.SimF1 {
		t.Errorf("L2 flushed faster than L1: F2=%v F1=%v", last.SimF2, last.SimF1)
	}
}

func TestValidateDisplacementModelAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("long displacement sweep")
	}
	m := core.NewModel()
	xs := []float64{500, 2000, 10000}
	pts := ValidateDisplacement(m, cachesim.DefaultTiming(), xs, 7)
	for _, p := range pts {
		// The analytic curve and the simulator should agree on the
		// coarse magnitude of L1 displacement — the paper's validation
		// criterion was visual curve agreement, so the band is wide.
		if diff := math.Abs(p.SimF1 - p.ModelF1); diff > 0.35 {
			t.Errorf("x=%v µs: SimF1=%v vs ModelF1=%v (|Δ|=%.2f)",
				p.Micros, p.SimF1, p.ModelF1, diff)
		}
	}
}

func TestMeasureSendMatchesCoreDefault(t *testing.T) {
	r := MeasureSend(core.SGIChallengeXL(), cachesim.DefaultTiming())
	c := core.SendCalibration()
	if math.Abs(r.Normalized.TWarm-c.TWarm) > 0.05 ||
		math.Abs(r.Normalized.TL1Cold-c.TL1Cold) > 0.05 ||
		math.Abs(r.Normalized.TCold-c.TCold) > 0.05 {
		t.Fatalf("send calibration drift: measured %+v vs core default %+v", r.Normalized, c)
	}
}

func TestSendPathCheaperThanReceive(t *testing.T) {
	send := MeasureSend(core.SGIChallengeXL(), cachesim.DefaultTiming())
	recv := Measure(core.SGIChallengeXL(), cachesim.DefaultTiming())
	if send.Normalized.TCold >= recv.Normalized.TCold {
		t.Fatalf("send cold %v not below receive cold %v",
			send.Normalized.TCold, recv.Normalized.TCold)
	}
	if send.Normalized.TWarm >= recv.Normalized.TWarm {
		t.Fatalf("send warm %v not below receive warm %v",
			send.Normalized.TWarm, recv.Normalized.TWarm)
	}
	if err := send.Normalized.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureTraceWithoutAnchor(t *testing.T) {
	r := MeasureTrace(core.SGIChallengeXL(), cachesim.DefaultTiming(), memtrace.NewProtocolTrace(0), 0)
	if r.Scale != 1 {
		t.Fatalf("unanchored scale = %v, want 1", r.Scale)
	}
	if r.Normalized != r.Raw {
		t.Fatal("unanchored normalization must equal raw")
	}
}

func TestMeasureTCPMatchesCoreDefault(t *testing.T) {
	r := MeasureTCP(core.SGIChallengeXL(), cachesim.DefaultTiming())
	c := core.TCPCalibration()
	if math.Abs(r.Normalized.TWarm-c.TWarm) > 0.05 ||
		math.Abs(r.Normalized.TL1Cold-c.TL1Cold) > 0.05 ||
		math.Abs(r.Normalized.TCold-c.TCold) > 0.05 {
		t.Fatalf("tcp calibration drift: measured %+v vs core default %+v", r.Normalized, c)
	}
}

func TestTCPPathWithinKayPasqualeBand(t *testing.T) {
	// Kay & Pasquale: TCP-specific processing adds at most ~15% to
	// per-packet time; our TCP trace must land within [5%, 25%] above
	// the UDP receive path, with a similar warm/cold ratio.
	tcp := MeasureTCP(core.SGIChallengeXL(), cachesim.DefaultTiming())
	recv := Measure(core.SGIChallengeXL(), cachesim.DefaultTiming())
	ratio := tcp.Normalized.TCold / recv.Normalized.TCold
	if ratio < 1.05 || ratio > 1.25 {
		t.Fatalf("TCP/UDP cold ratio %.3f outside [1.05, 1.25]", ratio)
	}
	dr := tcp.Normalized.MaxReduction() - recv.Normalized.MaxReduction()
	if math.Abs(dr) > 0.05 {
		t.Fatalf("TCP affinity bound differs from UDP by %.3f (should be similar)", dr)
	}
}
