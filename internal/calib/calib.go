// Package calib regenerates the paper's implementation measurements: the
// per-packet protocol execution times under controlled cache states
// (Section 4 of the paper), using the cache simulator in place of the SGI
// Challenge hardware.
//
// The three conditions reproduce the paper's experimental method for
// isolating the components of affinity-related overhead:
//
//	warm    — process a packet twice; measure the second pass.
//	l1cold  — warm both levels, flush L1 only, measure.
//	cold    — flush everything, measure.
//
// Raw simulator times are normalized by a single scale factor so that the
// cold time lands exactly on the paper's measured t_cold = 284.3 µs (a
// one-point normalization; the warm/cold and l1cold/cold ratios are the
// simulator's own).
package calib

import (
	"affinity/internal/cachesim"
	"affinity/internal/core"
	"affinity/internal/des"
	"affinity/internal/memtrace"
)

// PaperTCold is the paper's measured fully-cold receive-path time (µs).
const PaperTCold = 284.3

// Result carries both the raw simulated times and the normalized
// calibration handed to the analytic model.
type Result struct {
	Raw        core.Calibration // direct cache-simulator output (µs)
	Normalized core.Calibration // scaled so Raw.TCold ↦ PaperTCold
	Scale      float64          // PaperTCold / Raw.TCold

	RefsPerPacket  int
	FootprintBytes int
	L1MissesCold   uint64
	L2MissesCold   uint64
}

// replay charges one packet's trace to the hierarchy and returns µs.
func replay(h *cachesim.Hierarchy, trace []memtrace.Ref) float64 {
	h.ResetStats()
	for _, r := range trace {
		h.Access(r.Addr, r.Kind)
	}
	return h.Micros()
}

// Measure runs the three controlled-cache-state experiments for the
// receive-side fast path on the given platform.
func Measure(p core.Platform, t cachesim.Timing) Result {
	return MeasureTrace(p, t, memtrace.NewProtocolTrace(0), PaperTCold)
}

// MeasureSend runs the same experiments for the send-side fast path
// (the paper's extension (i)). There is no published send-side anchor,
// so the raw cold time is normalized with the same scale factor the
// receive path produces — both paths ran on the same hardware.
func MeasureSend(p core.Platform, t cachesim.Timing) Result {
	recv := Measure(p, t)
	send := MeasureTrace(p, t, memtrace.NewSendTrace(0), 0)
	send.Scale = recv.Scale
	send.Normalized = core.Calibration{
		TWarm:   send.Raw.TWarm * recv.Scale,
		TL1Cold: send.Raw.TL1Cold * recv.Scale,
		TCold:   send.Raw.TCold * recv.Scale,
	}
	return send
}

// MeasureTCP runs the controlled-cache-state experiments for the
// TCP/IP/FDDI receive fast path (experiment E21), normalized with the
// UDP receive path's scale factor.
func MeasureTCP(p core.Platform, t cachesim.Timing) Result {
	recv := Measure(p, t)
	tcp := MeasureTrace(p, t, memtrace.NewTCPTrace(0), 0)
	tcp.Scale = recv.Scale
	tcp.Normalized = core.Calibration{
		TWarm:   tcp.Raw.TWarm * recv.Scale,
		TL1Cold: tcp.Raw.TL1Cold * recv.Scale,
		TCold:   tcp.Raw.TCold * recv.Scale,
	}
	return tcp
}

// MeasureTrace runs the controlled-cache-state experiments for an
// arbitrary per-packet trace. If anchor is positive, the normalized
// calibration scales the raw cold time onto it; otherwise Normalized is
// left equal to Raw (Scale 1) for the caller to normalize.
func MeasureTrace(p core.Platform, t cachesim.Timing, pt *memtrace.ProtocolTrace, anchor float64) Result {
	trace := pt.Packet()

	h := cachesim.New(p, t)

	// Fully cold.
	h.FlushAll()
	cold := replay(h, trace)
	l1m := h.L1IStats().Misses + h.L1DStats().Misses
	l2m := h.L2Stats().Misses

	// Warm: the packet immediately before leaves everything resident.
	warm := replay(h, trace)

	// L1 cold, L2 warm.
	h.FlushL1()
	l1cold := replay(h, trace)

	raw := core.Calibration{TWarm: warm, TL1Cold: l1cold, TCold: cold}
	scale := 1.0
	if anchor > 0 {
		scale = anchor / cold
	}
	return Result{
		Raw: raw,
		Normalized: core.Calibration{
			TWarm:   warm * scale,
			TL1Cold: l1cold * scale,
			TCold:   cold * scale,
		},
		Scale:          scale,
		RefsPerPacket:  len(trace),
		FootprintBytes: pt.FootprintBytes(),
		L1MissesCold:   l1m,
		L2MissesCold:   l2m,
	}
}

// FPoint is one sample of the displacement-validation sweep.
type FPoint struct {
	Micros     float64 // displacing execution interval x
	Refs       float64 // displacing references issued
	SimF1      float64 // measured fraction of footprint absent from L1
	SimF2      float64 // measured fraction absent from L2
	ModelF1    float64 // analytic F1(x)
	ModelF2    float64 // analytic F2(x)
	ReloadSim  float64 // simulated re-execution time after displacement (µs, raw)
	ReloadPred float64 // model-predicted execution time (µs, normalized scale)
}

// ValidateDisplacement warms the footprint, lets the fractal non-protocol
// workload run for each interval in xsMicros, and compares the measured
// fractions of the footprint displaced from L1/L2 with the analytic
// F1/F2 — the E4 experiment.
func ValidateDisplacement(m *core.Model, t cachesim.Timing, xsMicros []float64, seed int64) []FPoint {
	pt := memtrace.NewProtocolTrace(0)
	trace := pt.Packet()
	addrs, kinds := pt.Footprint()
	rate := m.Platform.RefsPerMicrosecond()

	out := make([]FPoint, 0, len(xsMicros))
	for _, x := range xsMicros {
		h := cachesim.New(m.Platform, t)
		// Warm the footprint.
		replay(h, trace)
		replay(h, trace)
		// Displace for x microseconds of full-speed execution.
		refs := int(x * rate)
		w := memtrace.NewWorkload(des.Stream(seed, "validate"))
		w.Displace(h, refs)
		simF1 := 1 - h.ResidentFraction(addrs, kinds, 1)
		simF2 := 1 - h.ResidentFraction(addrs, kinds, 2)
		reload := replay(h, trace)
		out = append(out, FPoint{
			Micros:     x,
			Refs:       float64(refs),
			SimF1:      simF1,
			SimF2:      simF2,
			ModelF1:    m.F1(float64(refs)),
			ModelF2:    m.F2(float64(refs)),
			ReloadSim:  reload,
			ReloadPred: m.ExecTime(float64(refs)),
		})
	}
	return out
}
