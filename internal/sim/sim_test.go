package sim

import (
	"math"
	"reflect"
	"testing"

	"affinity/internal/core"
	"affinity/internal/des"
	"affinity/internal/sched"
	"affinity/internal/traffic"
	"affinity/internal/workload"
)

// quick returns parameters for a fast, deterministic run.
func quick(paradigm Paradigm, policy sched.Kind) Params {
	return Params{
		Paradigm:        paradigm,
		Policy:          policy,
		Streams:         8,
		Arrival:         traffic.Poisson{PacketsPerSec: 1000},
		Seed:            42,
		MeasuredPackets: 3000,
	}
}

func bg(v float64) *workload.NonProtocol {
	b := workload.WithIntensity(v)
	return &b
}

func TestRunDeterministic(t *testing.T) {
	a := Run(quick(Locking, sched.MRU))
	b := Run(quick(Locking, sched.MRU))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesResults(t *testing.T) {
	a := Run(quick(Locking, sched.MRU))
	p := quick(Locking, sched.MRU)
	p.Seed = 43
	b := Run(p)
	if a.MeanDelay == b.MeanDelay {
		t.Fatal("different seeds produced identical mean delay")
	}
}

func TestCompletesRequestedPackets(t *testing.T) {
	res := Run(quick(Locking, sched.FCFS))
	if res.Completed != 3000 {
		t.Fatalf("Completed = %d, want 3000", res.Completed)
	}
	if res.Saturated {
		t.Fatal("light load flagged saturated")
	}
}

func TestDelayBounds(t *testing.T) {
	for _, cfg := range []struct {
		par Paradigm
		pol sched.Kind
	}{{Locking, sched.FCFS}, {Locking, sched.MRU}, {IPS, sched.IPSWired}} {
		res := Run(quick(cfg.par, cfg.pol))
		warm := core.PaperCalibration().TWarm
		if res.MeanService < warm {
			t.Errorf("%v/%v MeanService %v below TWarm %v", cfg.par, cfg.pol, res.MeanService, warm)
		}
		if res.MeanDelay < res.MeanService {
			t.Errorf("%v/%v MeanDelay %v below MeanService %v", cfg.par, cfg.pol, res.MeanDelay, res.MeanService)
		}
		if res.P95Delay < res.MeanService {
			t.Errorf("%v/%v P95 %v below service %v", cfg.par, cfg.pol, res.P95Delay, res.MeanService)
		}
		if res.MaxDelay < res.P95Delay {
			t.Errorf("%v/%v MaxDelay %v below P95 %v", cfg.par, cfg.pol, res.MaxDelay, res.P95Delay)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Errorf("%v/%v Utilization %v outside (0,1]", cfg.par, cfg.pol, res.Utilization)
		}
	}
}

func TestIdleHostWiredStreamsIsFullyWarm(t *testing.T) {
	// V = 0, one stream per processor, Wired-Streams: streams never
	// migrate and nothing displaces them, so after the cold start every
	// service is exactly TWarm + LockOverhead.
	p := quick(Locking, sched.WiredStreams)
	p.Background = bg(0)
	res := Run(p)
	want := core.PaperCalibration().TWarm + 12
	if math.Abs(res.MeanService-want) > 3 {
		t.Fatalf("MeanService = %v, want ≈%v (warm + lock overhead)", res.MeanService, want)
	}
	if res.WarmFraction < 0.95 {
		t.Fatalf("WarmFraction = %v, want ≈1", res.WarmFraction)
	}
}

func TestIdleHostMRUMostlyWarm(t *testing.T) {
	// MRU on the idle host stays mostly warm, but arrival collisions
	// cause occasional migrations that re-cool footprints, so its mean
	// service sits between Wired-Streams (fully warm) and FCFS.
	p := quick(Locking, sched.MRU)
	p.Background = bg(0)
	mru := Run(p)
	p.Policy = sched.FCFS
	fcfs := Run(p)
	warm := core.PaperCalibration().TWarm + 12
	if mru.MeanService < warm-1 {
		t.Fatalf("MRU service %v below the warm floor %v", mru.MeanService, warm)
	}
	if mru.MeanService >= fcfs.MeanService {
		t.Fatalf("MRU service %v not below FCFS service %v", mru.MeanService, fcfs.MeanService)
	}
	if mru.WarmFraction < 0.6 {
		t.Fatalf("MRU WarmFraction = %v, want mostly warm", mru.WarmFraction)
	}
}

func TestIdleHostIPSWiredIsFullyWarm(t *testing.T) {
	p := quick(IPS, sched.IPSWired)
	p.Background = bg(0)
	res := Run(p)
	want := core.PaperCalibration().TWarm
	if math.Abs(res.MeanService-want) > 3 {
		t.Fatalf("MeanService = %v, want ≈TWarm %v", res.MeanService, want)
	}
	if res.Migrations != 0 {
		t.Fatalf("wired stacks migrated %d times", res.Migrations)
	}
}

func TestBackgroundIntensityDegradesService(t *testing.T) {
	p := quick(Locking, sched.MRU)
	p.Background = bg(0)
	idle := Run(p)
	p.Background = bg(1)
	loaded := Run(p)
	if loaded.MeanService <= idle.MeanService {
		t.Fatalf("V=1 service %v not above V=0 service %v", loaded.MeanService, idle.MeanService)
	}
}

func TestAffinityBeatsFCFS(t *testing.T) {
	// The headline result: MRU scheduling reduces delay vs FCFS under
	// Locking at moderate load.
	p := quick(Locking, sched.FCFS)
	p.Arrival = traffic.Poisson{PacketsPerSec: 2000}
	fcfs := Run(p)
	p.Policy = sched.MRU
	mru := Run(p)
	if mru.MeanDelay >= fcfs.MeanDelay {
		t.Fatalf("MRU delay %v not below FCFS delay %v", mru.MeanDelay, fcfs.MeanDelay)
	}
}

func TestIPSOutperformsLockingInLatencyAndCapacity(t *testing.T) {
	// Abstract: "IPS delivers much lower message latency and
	// significantly higher message throughput capacity."
	lp := quick(Locking, sched.MRU)
	lp.Streams = 16
	lp.Arrival = traffic.Poisson{PacketsPerSec: 1500}
	locking := Run(lp)
	ip := quick(IPS, sched.IPSWired)
	ip.Streams = 16
	ip.Arrival = traffic.Poisson{PacketsPerSec: 1500}
	ips := Run(ip)
	if ips.MeanDelay >= locking.MeanDelay {
		t.Fatalf("IPS delay %v not below Locking delay %v", ips.MeanDelay, locking.MeanDelay)
	}

	// Capacity: drive both to saturation and compare throughput.
	lp.Arrival = traffic.Poisson{PacketsPerSec: 6000}
	lp.MaxTime = 5 * des.Second
	lp.MeasuredPackets = 1 << 30
	ip.Arrival = traffic.Poisson{PacketsPerSec: 6000}
	ip.MaxTime = 5 * des.Second
	ip.MeasuredPackets = 1 << 30
	lsat := Run(lp)
	isat := Run(ip)
	if isat.Throughput < 1.2*lsat.Throughput {
		t.Fatalf("IPS capacity %v not ≫ Locking capacity %v", isat.Throughput, lsat.Throughput)
	}
}

func TestLockContentionCapsLockingThroughput(t *testing.T) {
	p := quick(Locking, sched.MRU)
	p.Streams = 16
	p.Arrival = traffic.Poisson{PacketsPerSec: 6000}
	p.MaxTime = 5 * des.Second
	p.MeasuredPackets = 1 << 30
	res := Run(p)
	if !res.Saturated {
		t.Fatal("over-capacity load not flagged saturated")
	}
	if res.MeanLockWait <= 0 {
		t.Fatal("saturated Locking run shows no lock contention")
	}
	// The crude analytic cap: 1/(critFrac · warm exec).
	cap := 1e6 / (0.15 * core.PaperCalibration().TWarm)
	if res.Throughput > cap*1.15 {
		t.Fatalf("throughput %v exceeds lock-imposed cap %v", res.Throughput, cap)
	}
}

func TestIPSHasNoLockWait(t *testing.T) {
	res := Run(quick(IPS, sched.IPSMRU))
	if res.MeanLockWait != 0 {
		t.Fatalf("IPS MeanLockWait = %v, want 0", res.MeanLockWait)
	}
}

func TestWiredPoliciesNeverMigrate(t *testing.T) {
	p := quick(Locking, sched.WiredStreams)
	p.Arrival = traffic.Poisson{PacketsPerSec: 2500}
	if res := Run(p); res.Migrations != 0 {
		t.Fatalf("WiredStreams migrated %d times", res.Migrations)
	}
	q := quick(IPS, sched.IPSWired)
	q.Streams = 16
	q.Stacks = 16
	q.Arrival = traffic.Poisson{PacketsPerSec: 2500}
	if res := Run(q); res.Migrations != 0 {
		t.Fatalf("IPSWired migrated %d times", res.Migrations)
	}
}

func TestSingleStreamIPSCapacityIsOneProcessor(t *testing.T) {
	// "IPS … exhibits limited intra-stream scalability": one stream is
	// bound to one stack, so its throughput caps at 1/TWarm regardless
	// of the 8 available processors.
	p := quick(IPS, sched.IPSWired)
	p.Streams = 1
	p.Stacks = 1
	p.Arrival = traffic.Poisson{PacketsPerSec: 20000}
	p.MaxTime = 5 * des.Second
	p.MeasuredPackets = 1 << 30
	res := Run(p)
	cap := 1e6 / core.PaperCalibration().TWarm // ≈ 6.7k pkts/s
	if res.Throughput > cap*1.05 {
		t.Fatalf("single-stream IPS throughput %v exceeds one-processor cap %v", res.Throughput, cap)
	}
	if !res.Saturated {
		t.Fatal("overloaded single stack not flagged saturated")
	}
}

func TestSingleStreamLockingScalesAcrossProcessors(t *testing.T) {
	p := quick(Locking, sched.FCFS)
	p.Streams = 1
	p.Arrival = traffic.Poisson{PacketsPerSec: 20000}
	p.MaxTime = 5 * des.Second
	p.MeasuredPackets = 1 << 30
	res := Run(p)
	ipsCap := 1e6 / core.PaperCalibration().TWarm
	if res.Throughput < 1.5*ipsCap {
		t.Fatalf("Locking single-stream throughput %v does not scale past one processor (%v)",
			res.Throughput, ipsCap)
	}
}

func TestBurstinessHurtsIPSMoreThanLocking(t *testing.T) {
	// "IPS … exhibits less robust response to intra-stream burstiness."
	delay := func(par Paradigm, pol sched.Kind, burst float64) float64 {
		p := quick(par, pol)
		p.Arrival = traffic.Batch{PacketsPerSec: 1000, MeanBurst: burst}
		return Run(p).MeanDelay
	}
	lockGrowth := delay(Locking, sched.MRU, 16) / delay(Locking, sched.MRU, 1)
	ipsGrowth := delay(IPS, sched.IPSWired, 16) / delay(IPS, sched.IPSWired, 1)
	if ipsGrowth <= lockGrowth {
		t.Fatalf("burst growth: IPS %.2fx not above Locking %.2fx", ipsGrowth, lockGrowth)
	}
}

func TestDataTouchAddsToService(t *testing.T) {
	base := Run(quick(IPS, sched.IPSWired))
	p := quick(IPS, sched.IPSWired)
	p.DataTouch = 139 // checksumming the largest FDDI packet
	touched := Run(p)
	// The increase is slightly below the fixed 139 µs: longer busy
	// periods shrink the idle windows in which the background workload
	// displaces the footprint, so the cache-dependent part shrinks.
	got := touched.MeanService - base.MeanService
	if got < 120 || got > 145 {
		t.Fatalf("data-touch service increase = %v, want ≈139 (within [120, 145])", got)
	}
}

func TestSaturationFlag(t *testing.T) {
	p := quick(Locking, sched.FCFS)
	p.Arrival = traffic.Poisson{PacketsPerSec: 10000}
	p.MaxTime = 3 * des.Second
	res := Run(p)
	if !res.Saturated {
		t.Fatal("grossly overloaded run not flagged saturated")
	}
	if res.QueueAtEnd == 0 {
		t.Fatal("saturated run reports empty queue")
	}
}

func TestColdStartsCounted(t *testing.T) {
	res := Run(quick(Locking, sched.MRU))
	if res.ColdStarts == 0 {
		t.Fatal("no cold starts recorded")
	}
	// Each (entity, processor) pair can go cold at most once.
	if res.ColdStarts > 8*8 {
		t.Fatalf("ColdStarts = %d exceeds streams × processors", res.ColdStarts)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Policy = sched.IPSWired },                          // IPS policy under Locking
		func(p *Params) { p.Paradigm = IPS; p.Policy = sched.MRU },             // Locking policy under IPS
		func(p *Params) { p.LockCritFrac = 1.5 },                               //
		func(p *Params) { p.CodeSharedFrac = -0.1 },                            //
		func(p *Params) { p.DataTouch = -1 },                                   //
		func(p *Params) { p.Background = &workload.NonProtocol{Intensity: 2} }, //
	}
	for i, mutate := range bad {
		p := quick(Locking, sched.FCFS).WithDefaults()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestEntityMapping(t *testing.T) {
	p := Params{Paradigm: IPS, Streams: 10, Stacks: 4}
	if p.entityCount() != 4 {
		t.Fatalf("entityCount = %d, want 4", p.entityCount())
	}
	if p.entityOf(6) != 2 {
		t.Fatalf("entityOf(6) = %d, want 2", p.entityOf(6))
	}
	q := Params{Paradigm: Locking, Streams: 10}
	if q.entityCount() != 10 || q.entityOf(7) != 7 {
		t.Fatal("Locking entity mapping wrong")
	}
}

func TestParadigmString(t *testing.T) {
	if Locking.String() != "Locking" || IPS.String() != "IPS" {
		t.Fatal("paradigm strings wrong")
	}
	if Paradigm(9).String() == "" {
		t.Fatal("unknown paradigm empty string")
	}
}

func TestWithDefaultsFillsEverything(t *testing.T) {
	p := Params{Paradigm: IPS, Policy: sched.IPSWired}.WithDefaults()
	if p.Model == nil || p.Processors != 8 || p.Streams != 8 || p.Stacks != 8 {
		t.Fatalf("defaults incomplete: %+v", p)
	}
	if p.Background == nil || p.Background.Intensity != 1 {
		t.Fatal("default background missing")
	}
	if p.Arrival == nil || p.BatchSize == 0 || p.MeasuredPackets == 0 {
		t.Fatal("measurement defaults missing")
	}
	// Locking defaults must not leak into IPS.
	if p.LockOverhead != 0 {
		t.Fatal("IPS run acquired lock overhead")
	}
}

func TestThroughputMatchesOfferedBelowSaturation(t *testing.T) {
	res := Run(quick(Locking, sched.MRU))
	if math.Abs(res.Throughput-res.OfferedRate)/res.OfferedRate > 0.1 {
		t.Fatalf("throughput %v far from offered %v below saturation", res.Throughput, res.OfferedRate)
	}
}

func TestPacketConservation(t *testing.T) {
	// Every arrival is either completed, waiting, or in service when the
	// run stops: total completions (measured + warm-up) + queued +
	// in-service must equal arrivals. In-service packets equal the number
	// of busy processors... which we bound by Processors.
	for _, cfg := range []struct {
		par Paradigm
		pol sched.Kind
	}{{Locking, sched.MRU}, {IPS, sched.IPSWired}, {Hybrid, sched.IPSWired}} {
		p := quick(cfg.par, cfg.pol)
		p.Arrival = traffic.Poisson{PacketsPerSec: 3000} // keep queues busy
		r := newRunner(p.WithDefaults())
		r.start()
		r.sim.RunUntil(p.WithDefaults().MaxTime)
		completed := r.service.N()
		queued := uint64(r.queuedPackets())
		inService := uint64(0)
		for i := range r.procs {
			if r.procs[i].busy {
				inService++
			}
		}
		total := completed + queued + inService
		if total != r.arrivals {
			t.Errorf("%v/%v: completed %d + queued %d + in-service %d = %d, arrivals %d",
				cfg.par, cfg.pol, completed, queued, inService, total, r.arrivals)
		}
	}
}

func TestHeterogeneousStreams(t *testing.T) {
	// One heavy stream and seven light ones. Wired-Streams pins the
	// heavy stream (and whatever shares its processor) to one CPU;
	// work-conserving policies absorb the imbalance.
	specs := make([]traffic.Spec, 8)
	specs[0] = traffic.Poisson{PacketsPerSec: 9000}
	for i := 1; i < 8; i++ {
		specs[i] = traffic.Poisson{PacketsPerSec: 700}
	}
	mk := func(pol sched.Kind) Results {
		return Run(Params{
			Paradigm: Locking, Policy: pol, Streams: 8,
			ArrivalPerStream: specs,
			Seed:             9, MeasuredPackets: 4000,
		})
	}
	wired := mk(sched.WiredStreams)
	pools := mk(sched.ThreadPools)
	if !wired.Saturated && wired.MeanDelay < 2*pools.MeanDelay {
		t.Fatalf("wired should struggle with a 9k pkt/s stream on one CPU: wired %v pools %v",
			wired.MeanDelay, pools.MeanDelay)
	}
	if pools.Saturated {
		t.Fatalf("work-stealing pools saturated on a feasible aggregate load: %+v", pools)
	}
	// Offered rate must reflect the heterogeneous sum.
	want := 9000.0 + 7*700
	if math.Abs(pools.OfferedRate-want) > 1 {
		t.Fatalf("OfferedRate = %v, want %v", pools.OfferedRate, want)
	}
}

func TestArrivalPerStreamValidation(t *testing.T) {
	p := quick(Locking, sched.MRU)
	p.ArrivalPerStream = []traffic.Spec{traffic.Poisson{PacketsPerSec: 100}} // wrong length
	p = p.WithDefaults()
	if err := p.Validate(); err == nil {
		t.Fatal("mismatched per-stream spec count accepted")
	}
}

func TestPerStreamDelayAndFairness(t *testing.T) {
	res := Run(quick(Locking, sched.MRU))
	if len(res.PerStreamDelay) != 8 {
		t.Fatalf("PerStreamDelay entries = %d, want 8", len(res.PerStreamDelay))
	}
	for i, d := range res.PerStreamDelay {
		if d <= 0 {
			t.Fatalf("stream %d mean delay %v", i, d)
		}
	}
	// Homogeneous streams under a symmetric policy: near-perfect fairness.
	if res.DelayFairness < 0.95 || res.DelayFairness > 1.0+1e-9 {
		t.Fatalf("DelayFairness = %v, want ≈1 for symmetric load", res.DelayFairness)
	}
}

func TestFairnessDropsUnderHeterogeneousWiredLoad(t *testing.T) {
	specs := make([]traffic.Spec, 8)
	specs[0] = traffic.Poisson{PacketsPerSec: 5500}
	for i := 1; i < 8; i++ {
		specs[i] = traffic.Poisson{PacketsPerSec: 700}
	}
	wired := Run(Params{
		Paradigm: Locking, Policy: sched.WiredStreams, Streams: 8,
		ArrivalPerStream: specs, Seed: 9, MeasuredPackets: 4000,
	})
	pools := Run(Params{
		Paradigm: Locking, Policy: sched.ThreadPools, Streams: 8,
		ArrivalPerStream: specs, Seed: 9, MeasuredPackets: 4000,
	})
	if wired.DelayFairness >= pools.DelayFairness {
		t.Fatalf("wired fairness %v not below work-stealing %v under skew",
			wired.DelayFairness, pools.DelayFairness)
	}
}

func TestJainIndexProperties(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal delays index = %v, want 1", got)
	}
	if got := JainIndex([]float64{100, 0, 0, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatal("zero entries must be excluded")
	}
	skewed := JainIndex([]float64{1000, 1, 1, 1})
	if skewed >= 0.5 {
		t.Fatalf("skewed index = %v, want well below 1", skewed)
	}
	if JainIndex(nil) != 0 {
		t.Fatal("empty index must be 0")
	}
}

func TestSequentialStoppingTightensCI(t *testing.T) {
	base := quick(Locking, sched.MRU)
	base.MeasuredPackets = 2000
	loose := Run(base)
	tight := base
	tight.TargetRelCI = 0.005
	tightRes := Run(tight)
	if tightRes.Completed <= loose.Completed {
		t.Fatalf("CI-driven run measured %d packets, no more than fixed run's %d",
			tightRes.Completed, loose.Completed)
	}
	if tightRes.DelayCI/tightRes.MeanDelay > 0.005*1.01 {
		t.Fatalf("relative CI %v above the 0.005 target",
			tightRes.DelayCI/tightRes.MeanDelay)
	}
}

func TestTraceRecordsDecisions(t *testing.T) {
	p := quick(Locking, sched.MRU)
	p.TraceN = 50
	res := Run(p)
	if len(res.Trace) != 50 {
		t.Fatalf("trace entries = %d, want 50", len(res.Trace))
	}
	coldSeen := false
	for i, e := range res.Trace {
		if e.Processor < 0 || e.Processor >= 8 || e.Stream < 0 || e.Stream >= 8 {
			t.Fatalf("entry %d out of range: %+v", i, e)
		}
		if e.Exec < core.PaperCalibration().TWarm-1 {
			t.Fatalf("entry %d exec %v below warm floor", i, e.Exec)
		}
		if i > 0 && e.Start < res.Trace[i-1].Start {
			t.Fatalf("trace not time-ordered at %d", i)
		}
		if math.IsInf(e.XRefs, 1) {
			coldSeen = true
		}
	}
	if !coldSeen {
		t.Fatal("early trace should contain cold starts")
	}
}

func TestTraceValidation(t *testing.T) {
	p := quick(Locking, sched.MRU).WithDefaults()
	p.TraceN = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative TraceN accepted")
	}
	p = quick(Locking, sched.MRU).WithDefaults()
	p.TargetRelCI = 1.5
	if err := p.Validate(); err == nil {
		t.Fatal("TargetRelCI ≥ 1 accepted")
	}
}

func TestRunManyMatchesSequential(t *testing.T) {
	var params []Params
	for i := 0; i < 6; i++ {
		p := quick(Locking, sched.MRU)
		p.Seed = int64(100 + i)
		p.MeasuredPackets = 1500
		params = append(params, p)
	}
	parallel := RunMany(params, 4)
	for i, p := range params {
		seq := Run(p)
		if !reflect.DeepEqual(parallel[i], seq) {
			t.Fatalf("run %d differs between parallel and sequential execution", i)
		}
	}
}

func TestRunManyWorkerClamping(t *testing.T) {
	params := []Params{quick(IPS, sched.IPSWired)}
	params[0].MeasuredPackets = 500
	res := RunMany(params, 64) // more workers than work
	if len(res) != 1 || res[0].Completed != 500 {
		t.Fatalf("results = %+v", res)
	}
	res = RunMany(params, 0) // GOMAXPROCS default
	if res[0].Completed != 500 {
		t.Fatal("default-worker run failed")
	}
}
