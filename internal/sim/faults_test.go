package sim

import (
	"math"
	"reflect"
	"testing"

	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/traffic"
)

// faultPolicyCases pairs every paradigm with every applicable policy —
// the degradation paths must hold for all of them, not just the wired
// ones that do interesting re-homing.
var faultPolicyCases = []struct {
	paradigm Paradigm
	policy   sched.Kind
}{
	{Locking, sched.FCFS},
	{Locking, sched.MRU},
	{Locking, sched.ThreadPools},
	{Locking, sched.WiredStreams},
	{IPS, sched.IPSWired},
	{IPS, sched.IPSMRU},
	{IPS, sched.IPSRandom},
	{Hybrid, sched.IPSWired},
	{Hybrid, sched.IPSMRU},
}

// downWindow fails processor 0 from 100 ms to 200 ms — early enough
// that the window closes before a quick run exhausts its packet budget.
func downWindow() *faults.Plan {
	return (&faults.Plan{}).
		Down(100*des.Millisecond, 0).
		Up(200*des.Millisecond, 0)
}

func conserved(t *testing.T, label string, res Results) {
	t.Helper()
	accounted := res.CompletedTotal + uint64(res.InFlightAtEnd) +
		uint64(res.QueueAtEnd) + res.Dropped
	if res.Arrivals != accounted {
		t.Errorf("%s: arrivals %d != completed %d + in-flight %d + queued %d + dropped %d",
			label, res.Arrivals, res.CompletedTotal, res.InFlightAtEnd,
			res.QueueAtEnd, res.Dropped)
	}
}

// A nil plan, an explicitly empty plan, and an explicit zero queue bound
// must all be byte-identical to the historical fault-free run — the
// zero-drift contract the quick-suite golden enforces end to end.
func TestEmptyFaultPlanIsNoOp(t *testing.T) {
	for _, c := range faultPolicyCases {
		base := Run(quick(c.paradigm, c.policy))
		p := quick(c.paradigm, c.policy)
		p.Faults = &faults.Plan{}
		p.MaxQueueDepth = 0
		if got := Run(p); !reflect.DeepEqual(base, got) {
			t.Errorf("%v/%v: empty fault plan changed the run", c.paradigm, c.policy)
		}
	}
}

// Packet conservation with the whole fault vocabulary active: a failure
// window, a slow-down, injected loss, a burst, and bounded queues.
func TestFaultConservationAllPolicies(t *testing.T) {
	for _, c := range faultPolicyCases {
		p := quick(c.paradigm, c.policy)
		p.Faults = downWindow().
			Slow(120*des.Millisecond, 1, 2).
			Slow(160*des.Millisecond, 1, 1).
			WithLoss(130*des.Millisecond, 0.05).
			WithBurst(150*des.Millisecond, -1, 40)
		p.MaxQueueDepth = 64
		res := Run(p)
		label := res.Paradigm + "/" + res.Policy
		conserved(t, label, res)
		if res.CompletedTotal == 0 {
			t.Errorf("%s: no completions under faults", label)
		}
		if res.Dropped == 0 {
			t.Errorf("%s: loss plan produced no drops", label)
		}
		if len(res.PerProcDownTime) != p.WithDefaults().Processors {
			t.Fatalf("%s: PerProcDownTime length %d", label, len(res.PerProcDownTime))
		}
		if got := res.PerProcDownTime[0]; math.Abs(got-100_000) > 1e-6 {
			t.Errorf("%s: proc 0 downtime %v µs, want 100000", label, got)
		}
		if res.PerProcDownTime[1] != 0 {
			t.Errorf("%s: healthy processor shows downtime %v", label, res.PerProcDownTime[1])
		}
	}
}

// A permanent single-processor failure must not strand any stream: the
// wired policies re-home and the run still completes its packet budget.
func TestPermanentFailureNoStranding(t *testing.T) {
	for _, c := range faultPolicyCases {
		p := quick(c.paradigm, c.policy)
		p.Faults = (&faults.Plan{}).Down(300*des.Millisecond, 0)
		res := Run(p)
		label := res.Paradigm + "/" + res.Policy
		conserved(t, label, res)
		if res.Completed != uint64(p.MeasuredPackets) {
			t.Errorf("%s: completed %d of %d measured packets with one processor down",
				label, res.Completed, p.MeasuredPackets)
		}
		if res.PerProcDownTime[0] <= 0 {
			t.Errorf("%s: open down interval not counted", label)
		}
	}
}

// Wired-Streams re-homing is visible in the results: the failure window
// forces migrations (packets of re-homed streams complete elsewhere),
// which a fault-free wired run never shows.
func TestWiredStreamsRehomingMigrates(t *testing.T) {
	base := quick(Locking, sched.WiredStreams)
	clean := Run(base)
	if clean.Migrations != 0 {
		t.Fatalf("fault-free Wired-Streams migrated %d times", clean.Migrations)
	}
	p := quick(Locking, sched.WiredStreams)
	p.Faults = downWindow()
	res := Run(p)
	if res.Migrations == 0 {
		t.Error("failure window produced no migrations — re-homing never happened")
	}
	conserved(t, "wired/faulted", res)
}

// A bounded queue under overload turns unbounded backlog into drops:
// the end-of-run queue respects the bound and goodput stays positive.
func TestQueueBoundDropsUnderOverload(t *testing.T) {
	p := quick(Locking, sched.FCFS)
	p.Arrival = traffic.Poisson{PacketsPerSec: 8000} // far past capacity
	p.MaxQueueDepth = 32
	p.MeasuredPackets = 2000
	res := Run(p)
	conserved(t, "bounded-overload", res)
	if res.Dropped == 0 {
		t.Fatal("overloaded bounded queue dropped nothing")
	}
	if res.QueueAtEnd > 32 {
		t.Errorf("QueueAtEnd %d exceeds MaxQueueDepth 32", res.QueueAtEnd)
	}
	if res.DropFraction <= 0 || res.DropFraction >= 1 {
		t.Errorf("DropFraction = %v, want within (0, 1)", res.DropFraction)
	}
	if res.GoodputPPS <= 0 {
		t.Errorf("GoodputPPS = %v, want positive", res.GoodputPPS)
	}

	// IPS: the bound applies per stack queue.
	p = quick(IPS, sched.IPSWired)
	p.Arrival = traffic.Poisson{PacketsPerSec: 8000}
	p.MaxQueueDepth = 8
	p.MeasuredPackets = 2000
	res = Run(p)
	conserved(t, "bounded-ips", res)
	if res.Dropped == 0 {
		t.Fatal("overloaded bounded stack queues dropped nothing")
	}
	if limit := 8 * p.WithDefaults().Stacks; res.QueueAtEnd > limit {
		t.Errorf("IPS QueueAtEnd %d exceeds %d", res.QueueAtEnd, limit)
	}
}

// Injected loss removes close to the configured fraction of arrivals.
func TestInjectedLossFraction(t *testing.T) {
	p := quick(Locking, sched.MRU)
	p.Faults = (&faults.Plan{}).WithLoss(0, 0.3)
	res := Run(p)
	conserved(t, "loss", res)
	if math.Abs(res.DropFraction-0.3) > 0.04 {
		t.Errorf("DropFraction = %v, want ≈ 0.3", res.DropFraction)
	}
}

// A slow-down fault scales charged execution while active.
func TestSlowdownScalesService(t *testing.T) {
	base := quick(Locking, sched.FCFS)
	base.Processors = 2
	base.Streams = 2
	clean := Run(base)
	p := quick(Locking, sched.FCFS)
	p.Processors = 2
	p.Streams = 2
	p.Faults = (&faults.Plan{}).Slow(0, 0, 2).Slow(0, 1, 2)
	res := Run(p)
	ratio := res.MeanService / clean.MeanService
	if ratio < 1.5 {
		t.Errorf("2x slow-down scaled mean service by only %.2f", ratio)
	}
	conserved(t, "slowdown", res)
}

// A burst adds exactly Count extra arrivals per targeted stream —
// arrival processes draw independently of system state, so two runs to
// the same horizon differ by exactly the injected packets.
func TestBurstInjectsExactArrivals(t *testing.T) {
	fixed := func(plan *faults.Plan) Results {
		p := quick(Locking, sched.FCFS)
		p.Streams = 4
		p.MeasuredPackets = 1 << 30 // never stop on count
		p.MaxTime = 2 * des.Second
		p.Faults = plan
		return Run(p)
	}
	clean := fixed(nil)
	all := fixed((&faults.Plan{}).WithBurst(des.Second, -1, 50))
	if got := all.Arrivals - clean.Arrivals; got != 4*50 {
		t.Errorf("broadcast burst added %d arrivals, want 200", got)
	}
	one := fixed((&faults.Plan{}).WithBurst(des.Second, 2, 50))
	if got := one.Arrivals - clean.Arrivals; got != 50 {
		t.Errorf("targeted burst added %d arrivals, want 50", got)
	}
}

// Faulted runs stay deterministic: repeated runs and pools of any
// worker count agree bit-for-bit, and distinct plans get distinct
// cache keys.
func TestFaultRunsDeterministicAndKeyed(t *testing.T) {
	p := quick(IPS, sched.IPSWired)
	p.Faults = downWindow().WithLoss(140*des.Millisecond, 0.02)
	p.MaxQueueDepth = 32
	direct := Run(p)
	if again := Run(p); !reflect.DeepEqual(direct, again) {
		t.Fatal("repeated faulted Run diverged")
	}
	for _, workers := range []int{1, 4} {
		if got := NewPool(workers).Run(p); !reflect.DeepEqual(direct, got) {
			t.Errorf("Pool(%d) diverged on a faulted run", workers)
		}
	}
	kFault, _ := CacheKey(p)
	clean := p
	clean.Faults = nil
	kClean, _ := CacheKey(clean)
	if kFault == kClean {
		t.Error("fault plan not part of the cache key")
	}
	other := p
	other.Faults = downWindow() // no loss event
	if kOther, _ := CacheKey(other); kOther == kFault {
		t.Error("distinct fault plans share a cache key")
	}
}

// Fault transitions and drops surface on the observability stream.
func TestFaultObsEvents(t *testing.T) {
	m := obs.NewMetrics()
	p := quick(Locking, sched.WiredStreams)
	p.Faults = downWindow().WithLoss(0, 0.1)
	p.Recorder = m
	res := Run(p)
	snap := m.Snapshot()
	if snap.ProcDowns != 1 || snap.Counts["proc_up"] != 1 {
		t.Errorf("proc transition counts = %d down / %d up, want 1 / 1",
			snap.ProcDowns, snap.Counts["proc_up"])
	}
	if snap.Drops != res.Dropped || snap.Drops == 0 {
		t.Errorf("recorder drops %d vs results %d", snap.Drops, res.Dropped)
	}
	if math.Abs(snap.DownInterval.Mean-100_000) > 1e-6 || snap.DownInterval.N != 1 {
		t.Errorf("DownInterval = %+v, want one 100000 µs interval", snap.DownInterval)
	}
}
