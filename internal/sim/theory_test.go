package sim

import (
	"testing"

	"affinity/internal/core"
	"affinity/internal/queueing"
	"affinity/internal/sched"
	"affinity/internal/traffic"
	"affinity/internal/workload"
)

// The simulator must reproduce classical queueing results in the
// configurations where it reduces to a known system: idle host (V = 0)
// plus perfect affinity makes service deterministic at t_warm.

func TestSimMatchesMD1(t *testing.T) {
	warm := core.PaperCalibration().TWarm
	idle := workload.Idle()
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		lambda := rho / warm // packets per µs
		res := Run(Params{
			Paradigm: IPS, Policy: sched.IPSWired, Streams: 1, Stacks: 1,
			Arrival:         traffic.Poisson{PacketsPerSec: lambda * 1e6},
			Background:      &idle,
			Seed:            11,
			MeasuredPackets: 20000,
		})
		want := queueing.MD1Wait(lambda, warm)
		if !queueing.ApproxEqual(res.MeanQueueing, want, 0.10) {
			t.Errorf("ρ=%.1f: sim Wq %.1f vs M/D/1 %.1f (>10%% off)", rho, res.MeanQueueing, want)
		}
	}
}

func TestSimMatchesBatchMD1(t *testing.T) {
	warm := core.PaperCalibration().TWarm
	idle := workload.Idle()
	rho := 0.5
	lambda := rho / warm
	res := Run(Params{
		Paradigm: IPS, Policy: sched.IPSWired, Streams: 1, Stacks: 1,
		Arrival:         traffic.Batch{PacketsPerSec: lambda * 1e6, MeanBurst: 4},
		Background:      &idle,
		Seed:            11,
		MeasuredPackets: 30000,
	})
	want := queueing.BatchGeoMD1Wait(lambda, warm, 4)
	if !queueing.ApproxEqual(res.MeanQueueing, want, 0.15) {
		t.Errorf("sim Wq %.1f vs M[X]/D/1 %.1f (>15%% off)", res.MeanQueueing, want)
	}
}

func TestSimMatchesMDC(t *testing.T) {
	warm := core.PaperCalibration().TWarm
	idle := workload.Idle()
	s := warm + 12 // lock overhead
	rho := 0.85
	lambdaAgg := rho * 8 / s
	res := Run(Params{
		Paradigm: Locking, Policy: sched.FCFS, Streams: 8,
		Arrival:         traffic.Poisson{PacketsPerSec: lambdaAgg * 1e6 / 8},
		Background:      &idle,
		CodeSharedFrac:  1,
		LockCritFrac:    1e-6,
		Seed:            11,
		MeasuredPackets: 20000,
	})
	want := queueing.MDcWaitApprox(8, lambdaAgg, s)
	if !queueing.ApproxEqual(res.MeanQueueing, want, 0.15) {
		t.Errorf("sim Wq %.1f vs M/D/8 approx %.1f (>15%% off)", res.MeanQueueing, want)
	}
	// And the service itself must be the deterministic constant.
	if !queueing.ApproxEqual(res.MeanService, s, 0.02) {
		t.Errorf("service %.1f not constant at %.1f", res.MeanService, s)
	}
}
