package sim

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"affinity/internal/sched"
	"affinity/internal/traffic"
)

// A run completing fewer than two batch-means batches reports
// DelayCI = +Inf; encoding/json rejects non-finite floats, so -json
// crashed on such runs. The marshaler must sanitize them to null.
func TestResultsJSONSanitizesNonFinite(t *testing.T) {
	r := Results{
		Paradigm:  "Locking",
		Policy:    "MRU",
		MeanDelay: 120.5,
		DelayCI:   math.Inf(1),
		P95Delay:  math.NaN(),
		Trace: []TraceEntry{
			{Stream: 1, XRefs: math.Inf(1), Exec: 284.3},
			{Stream: 2, XRefs: 17, Exec: 51.5},
		},
		PerStreamDelay: []float64{100, math.Inf(1)},
	}
	enc, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !json.Valid(enc) {
		t.Fatalf("invalid JSON: %s", enc)
	}
	var dec map[string]any
	if err := json.Unmarshal(enc, &dec); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if dec["DelayCI"] != nil {
		t.Errorf("DelayCI = %v, want null", dec["DelayCI"])
	}
	if dec["P95Delay"] != nil {
		t.Errorf("P95Delay = %v, want null", dec["P95Delay"])
	}
	if dec["MeanDelay"] != 120.5 {
		t.Errorf("MeanDelay = %v, want 120.5", dec["MeanDelay"])
	}
	trace := dec["Trace"].([]any)
	if cold := trace[0].(map[string]any); cold["XRefs"] != nil {
		t.Errorf("cold-start XRefs = %v, want null", cold["XRefs"])
	}
	if warm := trace[1].(map[string]any); warm["XRefs"] != 17.0 {
		t.Errorf("warm XRefs = %v, want 17", warm["XRefs"])
	}
	if perStream := dec["PerStreamDelay"].([]any); perStream[1] != nil {
		t.Errorf("PerStreamDelay[1] = %v, want null", perStream[1])
	}
}

// End-to-end regression for `affinitysim -packets 1 -json`: a run whose
// single measured packet completes zero batch-means batches must still
// encode as valid JSON with DelayCI null.
func TestRunResultsJSONWithOneMeasuredPacket(t *testing.T) {
	res := Run(Params{
		Paradigm: Locking, Policy: sched.MRU, Streams: 8,
		Arrival:         traffic.Poisson{PacketsPerSec: 1000},
		MeasuredPackets: 1,
		Seed:            1,
	})
	if !math.IsInf(res.DelayCI, 1) {
		t.Fatalf("expected +Inf DelayCI with one measured packet, got %v", res.DelayCI)
	}
	enc, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !json.Valid(enc) {
		t.Fatalf("invalid JSON: %s", enc)
	}
	if !strings.Contains(string(enc), `"DelayCI":null`) {
		t.Fatalf("DelayCI not sanitized: %s", enc)
	}
}

// WarmFraction's numerator was counted at service start while its
// denominator counts completions, so packets still in flight when the
// run stopped inflated the ratio: a horizon-truncated run with cold
// completions reported WarmFraction = 1.0 exactly. Both sides now count
// at completion, so the cold completions must show up in the ratio.
func TestWarmFractionExcludesInFlightPackets(t *testing.T) {
	res := Run(Params{
		Paradigm: Locking, Policy: sched.MRU, Streams: 1,
		Arrival: traffic.Poisson{PacketsPerSec: 60000}, Warmup: 1,
		MeasuredPackets: 1 << 30, MaxTime: 3000, Seed: 1,
	})
	if res.ColdStarts == 0 {
		t.Fatal("test config expected cold starts")
	}
	if res.WarmFraction >= 1 {
		t.Errorf("WarmFraction = %v with %d cold starts among %d completions; in-flight packets still counted",
			res.WarmFraction, res.ColdStarts, res.Completed)
	}
	if res.WarmFraction <= 0.5 {
		t.Errorf("WarmFraction = %v, expected a mostly-warm saturated run", res.WarmFraction)
	}
}

// WarmFraction is a fraction of completions and must stay within [0, 1]
// on arbitrarily truncated runs.
func TestWarmFractionBounded(t *testing.T) {
	for _, p := range []Params{
		{Paradigm: Locking, Policy: sched.MRU, Streams: 1,
			Arrival: traffic.Poisson{PacketsPerSec: 50000}, Warmup: 1,
			MeasuredPackets: 1, Seed: 3},
		{Paradigm: IPS, Policy: sched.IPSMRU, Streams: 8, Stacks: 8,
			Arrival: traffic.Poisson{PacketsPerSec: 9000}, Warmup: 1,
			MeasuredPackets: 2, Seed: 1},
		{Paradigm: Hybrid, Policy: sched.IPSWired, Streams: 4, Stacks: 4,
			Arrival: traffic.Batch{PacketsPerSec: 6000, MeanBurst: 16}, Warmup: 1,
			MeasuredPackets: 5, Seed: 2},
	} {
		res := Run(p)
		if res.WarmFraction < 0 || res.WarmFraction > 1 {
			t.Errorf("%v %v: WarmFraction = %v outside [0, 1]", p.Paradigm, p.Policy, res.WarmFraction)
		}
	}
}

// P95Delay clamps to the histogram's 100 ms upper bound on saturated
// runs; the clamp must be surfaced instead of reported as a measurement.
func TestP95ClampSurfaced(t *testing.T) {
	sat := Run(Params{
		Paradigm: Locking, Policy: sched.FCFS, Streams: 8,
		Arrival: traffic.Poisson{PacketsPerSec: 20000},
		MaxTime: 2_000_000, MeasuredPackets: 4000, Seed: 1,
	})
	if !sat.Saturated {
		t.Fatal("test config expected a saturated run")
	}
	if !sat.P95Clamped {
		t.Errorf("P95Clamped = false on a saturated run with P95Delay = %v", sat.P95Delay)
	}
	if sat.DelayOverflow <= 0 {
		t.Errorf("DelayOverflow = %v, want > 0", sat.DelayOverflow)
	}

	ok := Run(Params{
		Paradigm: Locking, Policy: sched.MRU, Streams: 8,
		Arrival:         traffic.Poisson{PacketsPerSec: 500},
		MeasuredPackets: 2000, Seed: 1,
	})
	if ok.P95Clamped || ok.DelayOverflow != 0 {
		t.Errorf("healthy run flagged: clamped=%v overflow=%v", ok.P95Clamped, ok.DelayOverflow)
	}
	if ok.P95Delay >= 100_000 {
		t.Errorf("healthy run P95 = %v", ok.P95Delay)
	}
}
