package sim

import (
	"math"
	"reflect"
	"testing"

	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/traffic"
)

// The AffinitySteal family's reduction contract: at each degenerate
// parameter setting the dispatcher must make the same decisions — the
// same RNG draws, the same affinity notes, the same ledger view — as
// the paper policy it collapses to, so the full Results compare equal
// bit for bit (modulo the policy name). This is what licenses searching
// the family as a superset of the paper's policy menu: the corners ARE
// the paper policies, not approximations of them.

// stealCorners maps each degenerate parameter point to the policy it
// must reproduce.
var stealCorners = []struct {
	name   string
	params sched.StealParams
	equals sched.Kind
}{
	{"penalty0/depth0/bias0", sched.StealParams{}, sched.FCFS},
	{"penalty0/depth0/bias1", sched.StealParams{ColdBias: 1}, sched.MRU},
	{"penaltyInf", sched.StealParams{Penalty: math.Inf(1)}, sched.WiredStreams},
}

func TestStealCornersEqualPaperPolicies(t *testing.T) {
	workloads := map[string]func(*Params){
		"poisson": func(p *Params) {},
		"bursty": func(p *Params) {
			p.Arrival = traffic.Batch{PacketsPerSec: 2500, MeanBurst: 8}
		},
		// Fault windows exercise ProcDown/ProcUp: MRU-style forgetting in
		// work-conserving mode, Wired-style re-homing and failback in
		// pinned mode. The corner must track its policy through both
		// transitions.
		"faults": func(p *Params) {
			p.Faults = (&faults.Plan{}).
				Down(100*des.Millisecond, 0).
				Up(200*des.Millisecond, 0)
		},
	}
	for _, c := range stealCorners {
		for wname, shape := range workloads {
			ref := quick(Locking, c.equals)
			ref.Processors = 4
			shape(&ref)
			fam := ref
			fam.Policy = sched.AffinitySteal
			fam.Steal = c.params
			a, b := Run(fam), Run(ref)
			if !reflect.DeepEqual(normalizePolicy(a), normalizePolicy(b)) {
				t.Errorf("%s/%s: AffinitySteal diverged from %v\n steal: %+v\n ref:   %+v",
					c.name, wname, c.equals, a, b)
			}
		}
	}
}

// The corner equivalence must extend to the decision ledger: same
// ordinals, same candidate sets, same preferred processors. A corner
// that chose identically but *reported* affinity differently would
// poison counterfactual replay.
func TestStealCornerLedgersMatch(t *testing.T) {
	for _, c := range stealCorners {
		ref := quick(Locking, c.equals)
		ref.Processors = 4
		refLed := obs.NewLedgerRecorder()
		ref.DecisionRecorder = refLed

		fam := quick(Locking, sched.AffinitySteal)
		fam.Processors = 4
		fam.Steal = c.params
		famLed := obs.NewLedgerRecorder()
		fam.DecisionRecorder = famLed

		Run(ref)
		Run(fam)
		if !reflect.DeepEqual(refLed.Decisions(), famLed.Decisions()) {
			t.Errorf("%s: decision ledger diverged from %v (%d vs %d decisions)",
				c.name, c.equals, famLed.Len(), refLed.Len())
		}
	}
}

// Negative control: an interior family point (finite non-zero penalty,
// depth gate, full bias) must NOT equal any corner's policy — if it
// did, the parameters would be dead knobs and the search space a sham.
func TestStealMidpointDiffersFromAllCorners(t *testing.T) {
	mid := quick(Locking, sched.AffinitySteal)
	mid.Processors = 4
	mid.Arrival = traffic.Batch{PacketsPerSec: 2500, MeanBurst: 8}
	mid.Steal = sched.StealParams{Penalty: 50, DepthThreshold: 2, ColdBias: 1}
	got := normalizePolicy(Run(mid))
	for _, k := range []sched.Kind{sched.FCFS, sched.MRU, sched.WiredStreams} {
		ref := mid
		ref.Policy = k
		ref.Steal = sched.StealParams{}
		if reflect.DeepEqual(got, normalizePolicy(Run(ref))) {
			t.Errorf("interior point (50,2,1) equals %v — steal gate is a dead knob", k)
		}
	}
}

// Interior points must still conserve packets and stay deterministic —
// the steal-refusal path (head left for its warm processor, unbounded
// rescue scan) is the only queue discipline in the codebase that serves
// out of arrival order from a central queue, so it gets its own pin.
func TestStealInteriorConservationAndDeterminism(t *testing.T) {
	for _, sp := range []sched.StealParams{
		{Penalty: 50, DepthThreshold: 0, ColdBias: 1},
		{Penalty: 0, DepthThreshold: 4, ColdBias: 0.5},
		{Penalty: 200, DepthThreshold: 2, ColdBias: 0.25},
	} {
		p := quick(Locking, sched.AffinitySteal)
		p.Processors = 4
		p.Arrival = traffic.Batch{PacketsPerSec: 3000, MeanBurst: 16}
		p.Steal = sp
		p.Faults = (&faults.Plan{}).
			Down(100*des.Millisecond, 1).
			Up(250*des.Millisecond, 1)
		a := Run(p)
		accounted := a.CompletedTotal + uint64(a.InFlightAtEnd) + uint64(a.QueueAtEnd) + a.Dropped
		if a.Arrivals != accounted {
			t.Errorf("steal%+v: arrivals %d != completed %d + inflight %d + queued %d + dropped %d",
				sp, a.Arrivals, a.CompletedTotal, a.InFlightAtEnd, a.QueueAtEnd, a.Dropped)
		}
		if b := Run(p); !reflect.DeepEqual(a, b) {
			t.Errorf("steal%+v: two runs of identical Params differ", sp)
		}
	}
}

// Family parameter validation: the knobs have hard domains.
func TestStealParamsValidate(t *testing.T) {
	for _, bad := range []sched.StealParams{
		{Penalty: -1},
		{Penalty: math.NaN()},
		{DepthThreshold: -1},
		{ColdBias: -0.1},
		{ColdBias: 1.1},
	} {
		p := quick(Locking, sched.AffinitySteal)
		p.Steal = bad
		if err := p.WithDefaults().Validate(); err == nil {
			t.Errorf("Steal%+v validated", bad)
		}
	}
	ok := quick(Locking, sched.AffinitySteal)
	ok.Steal = sched.StealParams{Penalty: math.Inf(1), DepthThreshold: 3, ColdBias: 0.5}
	if err := ok.WithDefaults().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}
