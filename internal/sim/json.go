package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
)

// MarshalJSON encodes Results with non-finite floats sanitized to null.
// Several fields are legitimately non-finite in degenerate runs —
// DelayCI is +Inf when fewer than two batch-means batches complete, and
// a TraceEntry.XRefs of +Inf marks a cold start — and encoding/json
// rejects ±Inf/NaN outright, so the raw struct would fail to encode at
// all. Field names and order match the default encoding.
func (r Results) MarshalJSON() ([]byte, error) {
	return marshalSanitized(reflect.ValueOf(r))
}

// MarshalJSON encodes a TraceEntry with non-finite floats (a cold
// start's +Inf XRefs) sanitized to null.
func (t TraceEntry) MarshalJSON() ([]byte, error) {
	return marshalSanitized(reflect.ValueOf(t))
}

// marshalSanitized walks structs, slices and pointers, replacing every
// non-finite float leaf with null and delegating all other leaves to
// encoding/json. It only follows the shapes Results contains; maps and
// other kinds are delegated wholesale.
func marshalSanitized(v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		f := v.Float()
		if math.IsInf(f, 0) || math.IsNaN(f) {
			return []byte("null"), nil
		}
		return json.Marshal(f)
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return []byte("null"), nil
		}
		return marshalSanitized(v.Elem())
	case reflect.Slice:
		if v.IsNil() {
			return []byte("null"), nil
		}
		fallthrough
	case reflect.Array:
		var b bytes.Buffer
		b.WriteByte('[')
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			enc, err := marshalSanitized(v.Index(i))
			if err != nil {
				return nil, err
			}
			b.Write(enc)
		}
		b.WriteByte(']')
		return b.Bytes(), nil
	case reflect.Struct:
		var b bytes.Buffer
		b.WriteByte('{')
		t := v.Type()
		first := true
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			name, err := json.Marshal(t.Field(i).Name)
			if err != nil {
				return nil, err
			}
			b.Write(name)
			b.WriteByte(':')
			enc, err := marshalSanitized(v.Field(i))
			if err != nil {
				return nil, err
			}
			b.Write(enc)
		}
		b.WriteByte('}')
		return b.Bytes(), nil
	default:
		return json.Marshal(v.Interface())
	}
}
