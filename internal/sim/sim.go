// Package sim is the multiprocessor protocol-processing simulation at the
// heart of the study: N processors serve packet streams under a
// parallelization paradigm (Locking or IPS) and an affinity scheduling
// policy, while a general non-protocol workload displaces protocol
// footprints from the caches whenever processors are otherwise idle.
//
// Per-packet service times come from the analytic model in internal/core,
// parameterized by the calibration measurements — exactly the structure of
// the paper's own simulator (Section 3).
package sim

import (
	"fmt"
	"math"
	"sync/atomic"

	"affinity/internal/core"
	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/topo"
	"affinity/internal/traffic"
	"affinity/internal/workload"
)

// Paradigm selects the protocol parallelization alternative.
type Paradigm int

const (
	// Locking is the shared protocol stack protected by locks: any
	// processor may process any packet.
	Locking Paradigm = iota
	// IPS gives each thread a private, independent protocol stack;
	// streams are partitioned across stacks and each stack processes
	// its packets serially.
	IPS
	// Hybrid combines the two (the companion TR's proposal): streams
	// are wired to independent stacks as under IPS, but when a stack's
	// queue builds past HybridOverflow, excess packets spill to a
	// shared, lock-protected path that any idle processor may serve —
	// IPS latency on smooth traffic, Locking-like robustness to bursts.
	Hybrid
)

func (p Paradigm) String() string {
	switch p {
	case Locking:
		return "Locking"
	case IPS:
		return "IPS"
	case Hybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("Paradigm(%d)", int(p))
	}
}

// Params configures one simulation run.
type Params struct {
	Model    *core.Model // nil selects core.NewModel()
	Paradigm Paradigm
	Policy   sched.Kind

	Processors int // 0 selects the model platform's processor count
	Streams    int
	Stacks     int // IPS only; 0 selects min(Streams, Processors)

	// Topology, when non-nil, shapes the processors into sockets × cores
	// with per-level reload transients: a migrating packet's reload
	// transient is scaled by topo.TransientScale(last, chosen) — 1 within
	// a core, SameSocketTransient within a socket, CrossSocketTransient
	// across sockets (see internal/topo). nil (or any 1-socket topology)
	// is the paper's flat machine and leaves every charge bit-identical
	// to the topology-free model. When Processors is 0 the topology's
	// core count supplies it; otherwise the two must agree.
	Topology *topo.Topology

	// Arrival is the per-stream arrival process.
	Arrival traffic.Spec
	// ArrivalPerStream optionally gives each stream its own arrival
	// process (heterogeneous workloads); when set it must have exactly
	// Streams entries and overrides Arrival.
	ArrivalPerStream []traffic.Spec
	// Workload, when non-nil, is a declarative multi-class workload spec
	// (Zipf-skewed rates, ON/OFF modulation; see internal/workload).
	// WithDefaults expands it deterministically into ArrivalPerStream
	// and sets Streams to its total, so both backends derive identical
	// arrival sequences from one spec file. An explicit ArrivalPerStream
	// wins; an explicit Streams count must match the spec's total.
	Workload *workload.Spec
	// Background is the non-protocol workload (intensity V etc.).
	// nil selects workload.Default(); use &workload.NonProtocol{} (or
	// workload.Idle()) for the V = 0 host.
	Background *workload.NonProtocol

	// LockOverhead is the fixed per-packet cost (µs) of lock management
	// under Locking; LockCritFrac is the fraction of the packet's base
	// execution spent holding the shared-stack lock, which bounds
	// aggregate Locking throughput at 1/(LockCritFrac·exec).
	LockOverhead float64
	LockCritFrac float64

	// CodeSharedFrac is the fraction of a footprint shared between
	// protocol entities (the protocol text and shared tables): execution
	// by other protocol entities displaces only the private remainder.
	// It applies to the Locking paradigm, whose streams run through one
	// shared stack (0 selects the default 0.5). Under IPS each stack is
	// a fully independent replica, so inter-stack displacement is always
	// full strength and this field is ignored.
	CodeSharedFrac float64

	// DataTouch is an extra fixed per-packet cost (µs) for data-touching
	// operations (copying / software checksumming); 0 reproduces the
	// paper's non-data-touching configuration.
	DataTouch float64

	// HybridOverflow is the stack queue depth beyond which arrivals
	// spill to the shared locking path (Hybrid paradigm only; 0 selects
	// the default of 2).
	HybridOverflow int

	// MRULookahead bounds how many waiting packets (or ready stacks) an
	// idle processor examines for an affine one before taking the FIFO
	// head under the MRU policies. 0 selects the default of 4 — a small
	// bounded scan, as a real dispatcher running under the queue lock
	// would use.
	MRULookahead int

	// FDRebalance is the FlowDirector re-home trigger depth: a flow
	// whose home queue already holds this many waiting packets is
	// re-homed to a less-loaded core (see sched.HashConfig.Rebalance).
	// 0 selects the default (sched.DefaultRebalance); a negative value
	// disables rebalancing, making FlowDirector behave exactly like RSS.
	// Ignored by every other policy.
	FDRebalance int

	// HashIdentity replaces the hash-dispatch policies' stream-hash mix
	// with the identity function (diagnostic; see sched.HashConfig).
	HashIdentity bool

	// Steal is the AffinitySteal policy family's parameter point
	// (steal penalty µs, steal depth threshold, cold-start bias; see
	// sched.StealParams). The zero value is the FCFS corner;
	// Penalty = +Inf selects the statically pinned Wired-Streams mode.
	// Ignored by every other policy.
	Steal sched.StealParams

	Seed int64

	// Shards selects the sharded runner: with K > 1 the per-stream
	// arrival draw chains are partitioned across K pipeline workers
	// that precompute (delay, batch) draws into per-stream rings ahead
	// of the event loop (see internal/des.Prefetcher and DESIGN.md
	// §12). Each chain is an autonomous source with no in-edges from
	// the rest of the simulation, so its draws are computed by exactly
	// one worker in chain order and Results are bit-identical at any K
	// — which is why shard count is deliberately excluded from
	// CacheKey: same results, same cache entry. 0 and 1 run fully
	// sequentially. Runs whose arrival specs have side effects (trace
	// recording) fall back to sequential draws so the recorded trace
	// captures exactly the draws the run consumed, never speculative
	// read-ahead. The live backend executes on real goroutines already
	// and ignores this knob.
	Shards int

	// Warmup discards packets that arrive before this time; measurement
	// runs until MeasuredPackets have completed or MaxTime is reached.
	Warmup          des.Time
	MeasuredPackets int
	MaxTime         des.Time

	// TargetRelCI, when positive, enables sequential stopping: after
	// MeasuredPackets completions the run keeps measuring until the
	// batch-means 95% confidence half-width falls below this fraction
	// of the mean delay (or MaxTime intervenes). Classic CI-driven
	// run-length control.
	TargetRelCI float64

	// TraceN, when positive, records the first TraceN service decisions
	// in Results.Trace — the scheduling dynamics, packet by packet.
	// Internally this rides the Recorder event stream through a small
	// adapter, so it sees exactly what an attached Recorder sees.
	TraceN int
	// BatchSize for the batch-means confidence interval; 0 derives one
	// from MeasuredPackets.
	BatchSize uint64

	// Faults, when non-nil and non-empty, is the deterministic
	// fault-injection plan: timed processor failures/recoveries,
	// transient slow-downs, arrival bursts and packet-loss probability
	// changes (see internal/faults). A nil or empty plan is the healthy
	// system and leaves every published RNG draw and result untouched.
	Faults *faults.Plan

	// MaxQueueDepth, when positive, bounds each waiting queue (the
	// central or per-pool queue under Locking, each stack queue and the
	// shared overflow queue under IPS/Hybrid): an arrival that would
	// push a queue past the bound is dropped instead of enqueued,
	// turning unbounded saturation into measured packet loss. 0 keeps
	// the historical unbounded queues.
	MaxQueueDepth int

	// Recorder, when non-nil, receives the run's structured event
	// stream: packet lifecycle (arrival, enqueue, dispatch, exec
	// start/end), migrations, cold starts, Hybrid spills, per-processor
	// busy/idle transitions, and periodic gauges (see internal/obs).
	// Recorders only observe — a run produces identical Results with
	// and without one — and a nil Recorder costs a single predictable
	// branch per emission site.
	Recorder obs.Recorder
	// SamplePeriod is the simulated-time interval between periodic
	// gauge samples (queue depth, event-heap size, displacement
	// counters) published to Recorder; 0 selects 1 ms.
	SamplePeriod des.Time

	// DecisionRecorder, when non-nil, receives the decision ledger:
	// every dispatch decision with the candidate processors it
	// considered, their predicted warm/cold state and execution cost
	// (see obs.Decision). Candidate costs come from the same pure model
	// functions service charging uses, so — like Recorder — a decision
	// recorder only observes and never perturbs Results.
	DecisionRecorder obs.DecisionRecorder

	// DecisionOverride, when non-nil, substitutes dispatch decisions as
	// the run takes them — the counterfactual replay hook (see
	// internal/policysearch and DESIGN.md §14). It is called at every
	// decision site, in exactly the order a DecisionRecorder observes
	// decisions, with the decision's 0-based ordinal, its point, the
	// candidate set and the dispatcher's factual choice, and returns the
	// processor to run instead; the returned processor must be one of
	// cands. The dispatcher's own choice — including its RNG draws — is
	// made before the override applies, so an override that always
	// returns the factual choice reproduces the original Results bit for
	// bit, and a single substitution replays the recorded prefix exactly
	// and free-runs from the divergence point. An attached
	// DecisionRecorder records the substituted choice (the ledger
	// reflects what ran). Runs with an override are never cached by
	// sim.Pool, and the live backend rejects it (replay requires the
	// DES's bit determinism).
	DecisionOverride DecisionOverride
}

// DecisionOverride substitutes one run's dispatch decisions; see
// Params.DecisionOverride.
type DecisionOverride func(n uint64, point obs.DecisionPoint, cands []int, chosen int) int

// WithDefaults returns a copy with zero fields replaced by defaults.
func (p Params) WithDefaults() Params {
	if p.Model == nil {
		p.Model = core.NewModel()
	}
	if p.Processors == 0 {
		if p.Topology != nil {
			p.Processors = p.Topology.Processors()
		} else {
			p.Processors = p.Model.Platform.Processors
		}
	}
	if p.Workload != nil && p.ArrivalPerStream == nil {
		// Expand only when the expansion is coherent; otherwise leave
		// the fields alone so Validate can report what is wrong.
		if per, err := p.Workload.Generate(); err == nil &&
			(p.Streams == 0 || p.Streams == len(per)) {
			p.ArrivalPerStream = per
			p.Streams = len(per)
		}
	}
	if p.Streams == 0 {
		p.Streams = p.Processors
	}
	if (p.Paradigm == IPS || p.Paradigm == Hybrid) && p.Stacks == 0 {
		p.Stacks = min(p.Streams, p.Processors)
	}
	if p.Arrival == nil {
		p.Arrival = traffic.Poisson{PacketsPerSec: 1000}
	}
	if p.Background == nil {
		bg := workload.Default()
		p.Background = &bg
	}
	if p.MRULookahead == 0 {
		p.MRULookahead = 4
	}
	if p.Policy == sched.FlowDirector && p.FDRebalance == 0 {
		p.FDRebalance = sched.DefaultRebalance
	}
	if p.Paradigm == Locking || p.Paradigm == Hybrid {
		if p.LockOverhead == 0 {
			p.LockOverhead = 12
		}
		if p.LockCritFrac == 0 {
			p.LockCritFrac = 0.15
		}
	}
	if p.Paradigm == Hybrid && p.HybridOverflow == 0 {
		p.HybridOverflow = 2
	}
	switch p.Paradigm {
	case Locking:
		if p.CodeSharedFrac == 0 {
			p.CodeSharedFrac = 0.5
		}
	case IPS, Hybrid:
		p.CodeSharedFrac = 0 // independent replicas share nothing
	}
	if p.Warmup == 0 {
		p.Warmup = 200 * des.Millisecond
	}
	if p.MeasuredPackets == 0 {
		p.MeasuredPackets = 15000
	}
	if p.MaxTime == 0 {
		p.MaxTime = 120 * des.Second
	}
	if p.BatchSize == 0 {
		p.BatchSize = uint64(max(p.MeasuredPackets/30, 1))
	}
	if p.SamplePeriod == 0 {
		p.SamplePeriod = des.Millisecond
	}
	return p
}

// Validate reports a descriptive error for inconsistent parameters.
func (p Params) Validate() error {
	if err := p.Model.Validate(); err != nil {
		return err
	}
	if err := p.Background.Validate(); err != nil {
		return err
	}
	switch p.Paradigm {
	case Locking:
		if !p.Policy.ForLocking() {
			return fmt.Errorf("sim: policy %v is not a Locking policy", p.Policy)
		}
	case IPS, Hybrid:
		if !p.Policy.ForIPS() {
			return fmt.Errorf("sim: policy %v is not an IPS policy", p.Policy)
		}
		if p.Stacks <= 0 {
			return fmt.Errorf("sim: %v needs at least one stack, got %d", p.Paradigm, p.Stacks)
		}
		if p.Paradigm == Hybrid && p.HybridOverflow < 1 {
			return fmt.Errorf("sim: hybrid overflow threshold %d must be ≥ 1", p.HybridOverflow)
		}
	default:
		return fmt.Errorf("sim: unknown paradigm %v", p.Paradigm)
	}
	if p.Processors <= 0 || p.Streams <= 0 {
		return fmt.Errorf("sim: processors %d / streams %d must be positive", p.Processors, p.Streams)
	}
	if p.Topology != nil {
		if err := p.Topology.Validate(p.Processors); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if p.ArrivalPerStream != nil && len(p.ArrivalPerStream) != p.Streams {
		return fmt.Errorf("sim: %d per-stream arrival specs for %d streams",
			len(p.ArrivalPerStream), p.Streams)
	}
	if p.Workload != nil {
		if err := p.Workload.Validate(); err != nil {
			return err
		}
		if n := p.Workload.TotalStreams(); p.ArrivalPerStream == nil && n != p.Streams {
			return fmt.Errorf("sim: explicit stream count %d conflicts with workload spec's %d streams",
				p.Streams, n)
		}
	}
	// Arrival processes are user input (CLI flags, spec files): reject
	// invalid or infeasible parameters here, pre-run, so they surface as
	// errors instead of Build panics mid-run.
	if p.Arrival != nil && p.ArrivalPerStream == nil {
		if err := p.Arrival.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	for i, s := range p.ArrivalPerStream {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("sim: stream %d: %w", i, err)
		}
	}
	if p.LockCritFrac < 0 || p.LockCritFrac > 1 {
		return fmt.Errorf("sim: lock critical fraction %v outside [0, 1]", p.LockCritFrac)
	}
	if p.CodeSharedFrac < 0 || p.CodeSharedFrac > 1 {
		return fmt.Errorf("sim: code shared fraction %v outside [0, 1]", p.CodeSharedFrac)
	}
	if p.DataTouch < 0 || p.LockOverhead < 0 {
		return fmt.Errorf("sim: negative per-packet overheads")
	}
	if p.TargetRelCI < 0 || p.TargetRelCI >= 1 {
		if p.TargetRelCI != 0 {
			return fmt.Errorf("sim: target relative CI %v outside (0, 1)", p.TargetRelCI)
		}
	}
	if p.TraceN < 0 {
		return fmt.Errorf("sim: negative trace length %d", p.TraceN)
	}
	if p.SamplePeriod < 0 {
		return fmt.Errorf("sim: negative gauge sample period %v", p.SamplePeriod)
	}
	if p.MaxQueueDepth < 0 {
		return fmt.Errorf("sim: negative max queue depth %d", p.MaxQueueDepth)
	}
	if p.Policy == sched.AffinitySteal {
		if math.IsNaN(p.Steal.Penalty) || p.Steal.Penalty < 0 {
			return fmt.Errorf("sim: steal penalty %v must be ≥ 0 µs (or +Inf to pin)", p.Steal.Penalty)
		}
		if p.Steal.DepthThreshold < 0 {
			return fmt.Errorf("sim: negative steal depth threshold %d", p.Steal.DepthThreshold)
		}
		if p.Steal.ColdBias < 0 || p.Steal.ColdBias > 1 {
			return fmt.Errorf("sim: steal cold-start bias %v outside [0, 1]", p.Steal.ColdBias)
		}
	}
	if p.Shards < 0 {
		return fmt.Errorf("sim: negative shard count %d", p.Shards)
	}
	if err := p.Faults.Validate(p.Processors, p.Streams); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// Results reports the metrics of one run. Delays and times are in
// microseconds; rates in packets per second.
type Results struct {
	Paradigm string
	Policy   string

	OfferedRate float64 // aggregate offered load
	Throughput  float64 // measured completion rate

	Completed      uint64 // measured completions
	CompletedTotal uint64 // all completions, warmup included
	Arrivals       uint64 // total arrivals over the run

	MeanDelay float64 // arrival → completion
	DelayCI   float64 // 95% batch-means half-width
	P95Delay  float64
	MaxDelay  float64

	// P95Clamped reports that P95Delay was truncated at the delay
	// histogram's fixed upper bound (100 ms): the true quantile lies in
	// the overflow mass, so P95Delay is a lower bound, not a
	// measurement. DelayOverflow is the fraction of measured delays at
	// or above that bound (0 on healthy runs).
	P95Clamped    bool
	DelayOverflow float64

	MeanService  float64 // execution time (model output + fixed costs)
	MeanQueueing float64 // arrival → service start
	MeanLockWait float64 // spin time on the shared-stack lock (Locking)

	WarmFraction float64 // completions with F1(x) < 0.5
	ColdStarts   uint64  // completions on a processor new to the entity
	Migrations   uint64  // completions on a different processor than last time
	Spills       uint64  // Hybrid packets diverted to the shared overflow path

	// ReorderedTotal counts completions that finished after a
	// later-arrived packet of the same stream had already completed —
	// the per-stream reordering a migrating policy inflicts on TCP-like
	// flows. MaxReorderDistance is the worst displacement observed, in
	// packets of the stream's arrival order; PerStreamReordered splits
	// the count by stream, holding only streams that actually reordered
	// (nil when none did — most runs — so a million-stream run that
	// never reorders allocates nothing for it). Policies that serve each
	// stream through one serial FIFO (Wired-Streams and RSS without
	// faults) are zero by construction.
	ReorderedTotal     uint64
	MaxReorderDistance uint64
	PerStreamReordered map[int]uint64

	// Dropped counts packets that left the system unserved — rejected
	// by a full bounded queue (MaxQueueDepth) or removed by injected
	// packet loss; DropFraction is Dropped / Arrivals. Packet
	// conservation becomes Arrivals = CompletedTotal + InFlightAtEnd +
	// QueueAtEnd + Dropped.
	Dropped      uint64
	DropFraction float64

	// GoodputPPS is the rate of packets actually delivered (all
	// completions over the whole run divided by simulated time) — under
	// faults and drops, the throughput the system sustained rather than
	// the load it was offered.
	GoodputPPS float64

	// PerProcDownTime is each processor's injected-failure downtime
	// (µs), open down intervals counted to the end of the run; nil when
	// the run had no fault plan.
	PerProcDownTime []float64

	// AffinityHits counts scheduling decisions that landed work on the
	// processor holding the entity's warm state, out of Placements
	// total decisions (see sched.PacketDispatcher.AffinityStats).
	AffinityHits uint64
	Placements   uint64

	Utilization   float64 // mean processor busy fraction
	QueueAtEnd    int     // packets still waiting when the run stopped
	InFlightAtEnd int     // packets in service when the run stopped
	Saturated     bool    // run could not sustain the offered load
	SimTime       des.Time

	// PerProcBusyTime is each processor's protocol-busy time (µs) over
	// the whole run — the exact integral behind Utilization.
	PerProcBusyTime []float64

	// EventsFired is the number of DES events the run executed;
	// RecorderEvents the number of observability events published to
	// Params.Recorder and the trace adapter (0 when both are disabled).
	EventsFired    uint64
	RecorderEvents uint64
	// DecisionsRecorded is the number of decisions published to
	// Params.DecisionRecorder (0 when none is attached).
	DecisionsRecorded uint64

	// Obs is the metrics snapshot merged from Params.Recorder when the
	// recorder chain contains an *obs.Metrics sink; nil otherwise.
	Obs *obs.Snapshot

	// PerStreamDelay holds each stream's mean delay; DelayFairness is
	// Jain's fairness index over them (1 = perfectly even).
	PerStreamDelay []float64
	DelayFairness  float64

	// Trace holds the first Params.TraceN service decisions.
	Trace []TraceEntry
}

// TraceEntry records one scheduling decision: which packet started
// service where, how displaced its footprint was, and what the model
// charged for it.
type TraceEntry struct {
	Start     des.Time
	Stream    int
	Entity    int
	Processor int
	Queued    des.Time // time spent waiting before service
	XRefs     float64  // displacing references since the entity last ran here (+Inf = cold)
	Exec      float64  // charged execution time (µs)
	Migrated  bool
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// entityCount returns how many footprint entities the run has.
func (p Params) entityCount() int {
	if p.Paradigm == IPS || p.Paradigm == Hybrid {
		return p.Stacks
	}
	return p.Streams
}

// entityOf maps a stream to its footprint entity.
func (p Params) entityOf(stream int) int {
	if p.Paradigm == IPS || p.Paradigm == Hybrid {
		return stream % p.Stacks
	}
	return stream
}

// totalEventsFired accumulates DES events across every completed run in
// the process; the experiment progress reporter derives events/sec
// from it.
var totalEventsFired atomic.Uint64

// TotalEventsFired returns the cumulative DES events fired by all runs
// completed so far in this process.
func TotalEventsFired() uint64 { return totalEventsFired.Load() }

// Run executes one simulation and returns its metrics.
func Run(p Params) Results {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		panic(err)
	}
	r := newRunner(p)
	r.start()
	r.sim.RunUntil(p.MaxTime)
	res := r.results()
	r.close()
	return res
}
