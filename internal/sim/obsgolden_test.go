package sim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/traffic"
)

var updateObsGolden = flag.Bool("update", false, "rewrite the obs golden fixtures")

// obsFaultParams is the pinned fault-plan scenario the fixtures record:
// a down/up window on processor 0, injected loss from t=0, and a bounded
// queue so both drop reasons (loss and queue) appear in the stream.
func obsFaultParams() Params {
	p := quick(Locking, sched.MRU)
	p.Processors = 2
	p.Streams = 2
	p.Arrival = traffic.Poisson{PacketsPerSec: 500}
	p.MeasuredPackets = 100
	p.Warmup = des.Millisecond
	p.MaxQueueDepth = 1
	p.Faults = (&faults.Plan{}).
		Down(20*des.Millisecond, 0).
		Up(40*des.Millisecond, 0).
		WithLoss(0, 0.05)
	return p
}

func checkObsGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateObsGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -run TestObsGoldenFaultRun -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden (regenerate with -update if the change is intended)", name)
	}
}

// TestObsGoldenFaultRun pins the full observability surface of a faulted
// DES run byte-for-byte: the event CSV (with readable drop reasons), the
// Chrome trace, and the decision ledger CSV. Any change to event
// ordering, schema, or decision costing shows up as a fixture diff.
func TestObsGoldenFaultRun(t *testing.T) {
	var events, trace, decisions bytes.Buffer
	csv := obs.NewCSV(&events)
	chrome := obs.NewChromeTrace(&trace)
	dcsv := obs.NewDecisionCSV(&decisions)

	p := obsFaultParams()
	p.Recorder = obs.Multi(csv, chrome)
	p.DecisionRecorder = dcsv
	res := Run(p)
	for _, c := range []interface {
		Err() error
		Close() error
	}{csv, chrome, dcsv} {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}

	if res.Dropped == 0 || res.PerProcDownTime[0] == 0 {
		t.Fatalf("scenario too tame to pin: %d drops, %v down time",
			res.Dropped, res.PerProcDownTime[0])
	}
	if !strings.Contains(events.String(), ",queue\n") ||
		!strings.Contains(events.String(), ",loss\n") {
		t.Fatal("event CSV misses a drop reason — both must appear in the fixture")
	}
	if n := uint64(strings.Count(decisions.String(), "\n") - 1); n != res.DecisionsRecorded {
		t.Fatalf("decision CSV has %d rows, results counted %d", n, res.DecisionsRecorded)
	}

	checkObsGolden(t, "obs_faults_events.golden.csv", events.Bytes())
	checkObsGolden(t, "obs_faults_trace.golden.json", trace.Bytes())
	checkObsGolden(t, "obs_faults_decisions.golden.csv", decisions.Bytes())
}
