package sim

import (
	"reflect"
	"testing"

	"affinity/internal/sched"
	"affinity/internal/topo"
	"affinity/internal/traffic"
)

// The topology model's backward-compatibility contract: a flat machine
// — no Topology, topo.Flat, or any shape whose transient multipliers
// are both 1 — must leave every run bit-for-bit identical to the
// pre-topology simulator. The runner guarantees this structurally (it
// only stores the topology pointer when a multiplier differs from 1),
// and these tests pin the guarantee behaviorally across paradigms.

// normalizePolicy clears the fields that name the policy so two runs
// that are supposed to make identical decisions can be compared with
// DeepEqual over everything else.
func normalizePolicy(r Results) Results {
	r.Policy = ""
	return r
}

func TestFlatTopologyIsNoOp(t *testing.T) {
	for _, c := range []struct {
		paradigm Paradigm
		policy   sched.Kind
	}{
		{Locking, sched.FCFS},
		{Locking, sched.MRU},
		{Locking, sched.WiredStreams},
		{IPS, sched.IPSWired},
		{Hybrid, sched.IPSMRU},
	} {
		p := quick(c.paradigm, c.policy)
		p.Processors = 8
		base := Run(p)
		for name, tp := range map[string]*topo.Topology{
			"flat":      topo.Flat(8),
			"numa-unit": {Sockets: 2, CoresPerSocket: 4, SameSocketTransient: 1, CrossSocketTransient: 1},
		} {
			p2 := p
			p2.Topology = tp
			if got := Run(p2); !reflect.DeepEqual(base, got) {
				t.Errorf("%s/%s: %s topology changed results — must be a no-op",
					c.paradigm, c.policy, name)
			}
		}
	}
}

// TestTopologyPenaltyIsALever is the negative control for the no-op
// test: once a transient multiplier exceeds 1, migration-heavy runs
// must actually slow down. FCFS migrates constantly, so the cross-
// socket penalty has to surface in mean delay; a wired policy never
// migrates after stream assignment, so it must stay bit-identical even
// on a hostile topology.
func TestTopologyPenaltyIsALever(t *testing.T) {
	numa := &topo.Topology{Sockets: 2, CoresPerSocket: 4,
		SameSocketTransient: 1.2, CrossSocketTransient: 2.5}

	p := quick(Locking, sched.FCFS)
	p.Processors = 8
	flat := Run(p)
	p.Topology = numa
	penalized := Run(p)
	if penalized.MeanDelay <= flat.MeanDelay {
		t.Errorf("FCFS on 2x4:1.2,2.5 mean delay %v not above flat %v — penalty not charged",
			penalized.MeanDelay, flat.MeanDelay)
	}

	w := quick(Locking, sched.WiredStreams)
	w.Processors = 8
	wiredFlat := Run(w)
	w.Topology = numa
	if got := Run(w); !reflect.DeepEqual(wiredFlat, got) {
		t.Error("Wired-Streams results moved under a NUMA topology — a never-migrating policy must not pay transients")
	}
}

// TestRSSIdentityEqualsWiredStreams is the RSS correctness anchor:
// with an identity hash and constant-gap arrivals, every stream's
// first packet fires in stream order, so Wired-Streams' first-seen
// round-robin assigns home(s) = s mod n — exactly the RSS indirection
// table's static mapping. The two policies then make identical
// decisions forever, so the Results must match bit for bit (modulo
// the policy name).
func TestRSSIdentityEqualsWiredStreams(t *testing.T) {
	base := Params{
		Paradigm: Locking, Streams: 8, Processors: 4,
		Arrival:         traffic.Deterministic{PacketsPerSec: 2000},
		Seed:            42,
		MeasuredPackets: 3000,
	}
	rss := base
	rss.Policy = sched.RSS
	rss.HashIdentity = true
	wired := base
	wired.Policy = sched.WiredStreams
	a, b := Run(rss), Run(wired)
	if a.ReorderedTotal != 0 {
		t.Errorf("RSS reordered %d packets — static homes can never reorder a stream", a.ReorderedTotal)
	}
	if !reflect.DeepEqual(normalizePolicy(a), normalizePolicy(b)) {
		t.Errorf("identity-hash RSS diverged from Wired-Streams\n rss:   %+v\n wired: %+v", a, b)
	}

	// Lever: with the real mixing hash the table assignment differs from
	// first-seen round-robin, so the equivalence must break.
	mixed := rss
	mixed.HashIdentity = false
	if reflect.DeepEqual(normalizePolicy(Run(mixed)), normalizePolicy(b)) {
		t.Error("mixed-hash RSS still equals Wired-Streams — the identity-hash condition is vacuous")
	}
}

// TestFlowDirectorDisabledEqualsRSS: Flow Director is RSS plus a
// rebalancing trigger. With the trigger disabled (FDRebalance < 0) the
// two dispatchers are the same code path, so the equivalence is
// bit-for-bit; with the default trigger on bursty arrivals the flow
// table must actually move entries (the lever), which is what E34
// measures as in-flight reordering.
func TestFlowDirectorDisabledEqualsRSS(t *testing.T) {
	base := quick(Locking, sched.RSS)
	base.Processors = 4
	base.Arrival = traffic.Batch{PacketsPerSec: 2500, MeanBurst: 16}
	fd := base
	fd.Policy = sched.FlowDirector
	fd.FDRebalance = -1
	a, b := Run(fd), Run(base)
	if !reflect.DeepEqual(normalizePolicy(a), normalizePolicy(b)) {
		t.Errorf("rebalance-disabled Flow Director diverged from RSS\n fd:  %+v\n rss: %+v", a, b)
	}

	live := base
	live.Policy = sched.FlowDirector // FDRebalance 0 → default trigger
	c := Run(live)
	if c.ReorderedTotal == 0 {
		t.Error("Flow Director with default trigger never reordered on bursty arrivals — rebalancing never fired")
	}
	if b.ReorderedTotal != 0 {
		t.Errorf("RSS reordered %d packets on the same workload", b.ReorderedTotal)
	}
}

// TestReorderPathZeroAllocs extends the steady-state allocation pin to
// the sparse per-stream reordering counter: once the map exists, a
// reordered completion in steady state increments an existing key and
// must not allocate. Flow Director under bursty load reorders
// constantly, making it the densest exerciser of the path.
func TestReorderPathZeroAllocs(t *testing.T) {
	p := quick(Locking, sched.FlowDirector)
	p.Processors = 4
	p.Arrival = traffic.Batch{PacketsPerSec: 3000, MeanBurst: 16}
	p.MeasuredPackets = 1 << 30 // never stop
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r := newRunner(p)
	r.start()
	for i := 0; i < 200_000; i++ {
		if !r.sim.Step() {
			t.Fatal("simulation ran dry during warmup")
		}
	}
	if r.reordered == 0 {
		t.Fatal("no reordering during warmup — the path under test never ran")
	}
	got := testing.AllocsPerRun(50, func() {
		for i := 0; i < 2_000; i++ {
			r.sim.Step()
		}
	})
	if got != 0 {
		t.Errorf("%v allocs per 2000 events on the reorder path, want 0", got)
	}
}
