package sim

import (
	"math"
	"reflect"
	"testing"

	"affinity/internal/core"
	"affinity/internal/des"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/traffic"
)

// Property and metamorphic tests: invariants that must hold for every
// configuration, not just the published experiment points.

// conservationCases sweeps every paradigm with a representative policy
// pair, light and heavy load — each point both healthy and degraded
// (failure window, injected loss, bounded queues), since the ledger must
// balance under faults too.
func conservationCases() []Params {
	var ps []Params
	for _, c := range []struct {
		paradigm Paradigm
		policy   sched.Kind
	}{
		{Locking, sched.FCFS},
		{Locking, sched.MRU},
		{Locking, sched.ThreadPools},
		{IPS, sched.IPSWired},
		{IPS, sched.IPSMRU},
		{Hybrid, sched.IPSMRU},
	} {
		for _, rate := range []float64{800, 3000} {
			p := quick(c.paradigm, c.policy)
			p.Arrival = traffic.Poisson{PacketsPerSec: rate}
			p.MeasuredPackets = 2000
			ps = append(ps, p)
			f := p
			f.Faults = downWindow().WithLoss(150*des.Millisecond, 0.02)
			f.MaxQueueDepth = 48
			ps = append(ps, f)
		}
	}
	return ps
}

// TestPacketConservationResults checks, on the public Results surface,
// that no packet is created or lost: every arrival is either completed,
// in service, still queued, or explicitly dropped when the run stops.
// The predicates live in invariants.go and are shared with the live
// backend's differential harness. (sim_test.go holds a white-box twin
// inspecting runner state directly.)
func TestPacketConservationResults(t *testing.T) {
	for _, p := range conservationCases() {
		if err := CheckInvariants(Run(p)); err != nil {
			t.Error(err)
		}
	}
}

// TestSeedInvariance checks bit-identical Results for the same
// Params+seed — repeated in-process, and through pools of different
// worker counts (the parallel experiment driver must not perturb runs).
func TestSeedInvariance(t *testing.T) {
	cases := []Params{
		quick(Locking, sched.MRU),
		quick(IPS, sched.IPSWired),
		quick(Hybrid, sched.IPSMRU),
	}
	for _, p := range cases {
		direct := Run(p)
		again := Run(p)
		if !reflect.DeepEqual(direct, again) {
			t.Errorf("%s/%s: repeated Run diverged", direct.Paradigm, direct.Policy)
		}
		for _, workers := range []int{1, 4} {
			got := NewPool(workers).Run(p)
			if !reflect.DeepEqual(direct, got) {
				t.Errorf("%s/%s: Pool(%d) diverged from direct Run\n direct: %+v\n pool:   %+v",
					direct.Paradigm, direct.Policy, workers, direct, got)
			}
		}
	}
}

// flatModel returns a model whose execution time is the same whether
// the cache is warm or cold: t_cold = t_l1cold = t_warm. Under it,
// affinity cannot matter.
func flatModel() *core.Model {
	m := core.NewModel()
	m.Calib = core.Calibration{TWarm: 148.2, TL1Cold: 148.2, TCold: 148.2}
	return m
}

// TestZeroReloadTransientEquivalence is the E8 invariant: with the
// cache-reload transient removed, scheduling for affinity buys nothing —
// MRU and FCFS become the same M/D/m system and their delays coincide.
// Service times are constant and equal, so the departure-time multiset
// is identical under any work-conserving dispatch order; only the
// pairing of arrivals to departures (hence the measured-set boundary)
// can differ, which keeps the means within a fraction of a percent.
func TestZeroReloadTransientEquivalence(t *testing.T) {
	run := func(policy sched.Kind) Results {
		p := quick(Locking, policy)
		p.Model = flatModel()
		p.Arrival = traffic.Poisson{PacketsPerSec: 2000}
		p.MeasuredPackets = 5000
		return Run(p)
	}
	fcfs := run(sched.FCFS)
	mru := run(sched.MRU)

	// Constant service: both policies must charge the identical mean.
	if fcfs.MeanService != mru.MeanService {
		t.Errorf("flat model: MeanService FCFS %v != MRU %v",
			fcfs.MeanService, mru.MeanService)
	}
	relDiff := math.Abs(fcfs.MeanDelay-mru.MeanDelay) /
		math.Max(fcfs.MeanDelay, mru.MeanDelay)
	if relDiff > 0.005 {
		t.Errorf("flat model: MeanDelay FCFS %v vs MRU %v (rel diff %v) — "+
			"affinity must not matter without a reload transient",
			fcfs.MeanDelay, mru.MeanDelay, relDiff)
	}

	// Sanity check the test's own lever: with the real calibration the
	// same configuration must show a clear MRU advantage, so the
	// equivalence above is evidence about the transient, not noise.
	realP := quick(Locking, sched.FCFS)
	realP.Arrival = traffic.Poisson{PacketsPerSec: 2000}
	realP.MeasuredPackets = 5000
	realFCFS := Run(realP)
	realP.Policy = sched.MRU
	realMRU := Run(realP)
	if realMRU.MeanDelay >= realFCFS.MeanDelay {
		t.Errorf("real model: MRU delay %v not below FCFS %v — lever broken",
			realMRU.MeanDelay, realFCFS.MeanDelay)
	}
}

// TestRunnerSteadyStateZeroAllocs pins the tentpole property: with no
// recorder attached, a warmed-up simulation executes events without
// allocating — event nodes, service records and queue slots all come
// from pools.
func TestRunnerSteadyStateZeroAllocs(t *testing.T) {
	for _, c := range []struct {
		name     string
		paradigm Paradigm
		policy   sched.Kind
	}{
		{"locking-mru", Locking, sched.MRU},
		{"ips-wired", IPS, sched.IPSWired},
	} {
		t.Run(c.name, func(t *testing.T) {
			p := quick(c.paradigm, c.policy)
			p.Arrival = traffic.Poisson{PacketsPerSec: 3000}
			p.MeasuredPackets = 1 << 30 // never stop
			p = p.WithDefaults()
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			r := newRunner(p)
			r.start()
			// Warm up: grow every pool and queue to its working set.
			for i := 0; i < 200_000; i++ {
				if !r.sim.Step() {
					t.Fatal("simulation ran dry during warmup")
				}
			}
			got := testing.AllocsPerRun(50, func() {
				for i := 0; i < 2_000; i++ {
					r.sim.Step()
				}
			})
			if got != 0 {
				t.Errorf("%v allocs per 2000 events in steady state, want 0", got)
			}
		})
	}
}

// TestRunnerDecisionPathZeroAllocs extends the steady-state pin to the
// decision ledger: with a FlightRecorder attached, every decide call
// (candidate costing, Decision emission, ring capture) must still run
// without allocating — the candidate buffer is scratch and the ring's
// arena is pre-sized.
func TestRunnerDecisionPathZeroAllocs(t *testing.T) {
	for _, c := range []struct {
		name     string
		paradigm Paradigm
		policy   sched.Kind
	}{
		{"locking-mru", Locking, sched.MRU},
		{"ips-wired", IPS, sched.IPSWired},
	} {
		t.Run(c.name, func(t *testing.T) {
			p := quick(c.paradigm, c.policy)
			p.Arrival = traffic.Poisson{PacketsPerSec: 3000}
			p.MeasuredPackets = 1 << 30 // never stop
			p.DecisionRecorder = obs.NewFlightRecorder(0, 0)
			p = p.WithDefaults()
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			r := newRunner(p)
			r.start()
			for i := 0; i < 200_000; i++ {
				if !r.sim.Step() {
					t.Fatal("simulation ran dry during warmup")
				}
			}
			if r.decisions == 0 {
				t.Fatal("no decisions recorded during warmup — the path under test never ran")
			}
			got := testing.AllocsPerRun(50, func() {
				for i := 0; i < 2_000; i++ {
					r.sim.Step()
				}
			})
			if got != 0 {
				t.Errorf("%v allocs per 2000 events with decision ledger, want 0", got)
			}
		})
	}
}
