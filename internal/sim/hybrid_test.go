package sim

import (
	"reflect"
	"testing"

	"affinity/internal/sched"
	"affinity/internal/traffic"
)

func hybridParams(arrival traffic.Spec) Params {
	return Params{
		Paradigm: Hybrid, Policy: sched.IPSWired,
		Streams: 8, Arrival: arrival, Seed: 5, MeasuredPackets: 4000,
	}
}

func TestHybridDeterministic(t *testing.T) {
	p := hybridParams(traffic.Batch{PacketsPerSec: 1000, MeanBurst: 8})
	if !reflect.DeepEqual(Run(p), Run(p)) {
		t.Fatal("hybrid run not deterministic")
	}
}

func TestHybridMatchesIPSOnSmoothTraffic(t *testing.T) {
	// With Poisson arrivals the overflow path rarely triggers: hybrid
	// delay should sit within a few percent of pure IPS.
	arrival := traffic.Poisson{PacketsPerSec: 1000}
	hyb := Run(hybridParams(arrival))
	ips := Run(Params{
		Paradigm: IPS, Policy: sched.IPSWired,
		Streams: 8, Arrival: arrival, Seed: 5, MeasuredPackets: 4000,
	})
	if hyb.MeanDelay > ips.MeanDelay*1.1 {
		t.Fatalf("hybrid smooth-traffic delay %v far above IPS %v", hyb.MeanDelay, ips.MeanDelay)
	}
}

func TestHybridAbsorbsBursts(t *testing.T) {
	// The companion TR's claim: the hybrid keeps IPS's latency while
	// gaining Locking-like robustness to intra-stream bursts. At a mean
	// burst of 16 the pure-IPS delay must be a multiple of the hybrid's.
	arrival := traffic.Batch{PacketsPerSec: 1000, MeanBurst: 16}
	hyb := Run(hybridParams(arrival))
	ips := Run(Params{
		Paradigm: IPS, Policy: sched.IPSWired,
		Streams: 8, Arrival: arrival, Seed: 5, MeasuredPackets: 4000,
	})
	lock := Run(Params{
		Paradigm: Locking, Policy: sched.MRU,
		Streams: 8, Arrival: arrival, Seed: 5, MeasuredPackets: 4000,
	})
	if ips.MeanDelay < 2*hyb.MeanDelay {
		t.Fatalf("IPS burst delay %v not ≫ hybrid %v", ips.MeanDelay, hyb.MeanDelay)
	}
	if hyb.MeanDelay > lock.MeanDelay*1.25 {
		t.Fatalf("hybrid burst delay %v well above Locking %v", hyb.MeanDelay, lock.MeanDelay)
	}
}

func TestHybridKeepsIPSCapacityAdvantage(t *testing.T) {
	// At a rate where Locking saturates, the hybrid must still be
	// stable: the steady traffic runs on the lock-free stack path.
	p := hybridParams(traffic.Poisson{PacketsPerSec: 2500})
	p.Streams = 16
	res := Run(p)
	if res.Saturated {
		t.Fatalf("hybrid saturated at a load IPS sustains: %+v", res)
	}
	lock := Run(Params{
		Paradigm: Locking, Policy: sched.MRU,
		Streams: 16, Arrival: traffic.Poisson{PacketsPerSec: 2500},
		Seed: 5, MeasuredPackets: 4000,
	})
	if !lock.Saturated && lock.MeanDelay < res.MeanDelay {
		t.Fatalf("expected Locking to be saturated or slower at this load (lock %v, hybrid %v)",
			lock.MeanDelay, res.MeanDelay)
	}
}

func TestHybridUsesLockOnlyForOverflow(t *testing.T) {
	// Smooth traffic: almost no spills, so no lock waits of note.
	smooth := Run(hybridParams(traffic.Poisson{PacketsPerSec: 500}))
	bursty := Run(hybridParams(traffic.Batch{PacketsPerSec: 1000, MeanBurst: 32}))
	if smooth.MeanLockWait > bursty.MeanLockWait {
		t.Fatalf("lock contention should grow with burstiness: smooth %v vs bursty %v",
			smooth.MeanLockWait, bursty.MeanLockWait)
	}
}

func TestHybridValidation(t *testing.T) {
	p := hybridParams(traffic.Poisson{PacketsPerSec: 500}).WithDefaults()
	if p.HybridOverflow != 2 {
		t.Fatalf("default overflow threshold = %d, want 2", p.HybridOverflow)
	}
	if p.LockOverhead == 0 || p.LockCritFrac == 0 {
		t.Fatal("hybrid must default the lock costs")
	}
	p.HybridOverflow = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero overflow threshold accepted")
	}
	p = hybridParams(traffic.Poisson{PacketsPerSec: 500})
	p.Policy = sched.MRU // Locking policy under a stack paradigm
	p = p.WithDefaults()
	if err := p.Validate(); err == nil {
		t.Fatal("locking policy accepted under Hybrid")
	}
}

func TestHybridParadigmString(t *testing.T) {
	if Hybrid.String() != "Hybrid" {
		t.Fatalf("String = %q", Hybrid.String())
	}
}

func TestHybridOverflowThresholdTradesLatencyForOrder(t *testing.T) {
	// A lower threshold spills earlier: better burst latency, more lock
	// traffic. Both must remain stable.
	arrival := traffic.Batch{PacketsPerSec: 1000, MeanBurst: 16}
	low := hybridParams(arrival)
	low.HybridOverflow = 1
	high := hybridParams(arrival)
	high.HybridOverflow = 8
	lowRes, highRes := Run(low), Run(high)
	if lowRes.Saturated || highRes.Saturated {
		t.Fatal("threshold sweep saturated unexpectedly")
	}
	if lowRes.MeanDelay >= highRes.MeanDelay {
		t.Fatalf("earlier spilling should cut burst delay: t=1 %v vs t=8 %v",
			lowRes.MeanDelay, highRes.MeanDelay)
	}
}
