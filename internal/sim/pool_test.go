package sim

import (
	"reflect"
	"testing"

	"affinity/internal/core"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/traffic"
)

func poolParams(seed int64) Params {
	return Params{
		Paradigm: Locking, Policy: sched.MRU, Streams: 4,
		Arrival:         traffic.Poisson{PacketsPerSec: 800},
		MeasuredPackets: 300,
		Seed:            seed,
	}
}

// Identical Params must simulate once: the second submission is a cache
// hit returning the same Results.
func TestPoolMemoizesDuplicateParams(t *testing.T) {
	pl := NewPool(2)
	a := pl.Run(poolParams(1))
	b := pl.Run(poolParams(1))
	if hits, misses := pl.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("cached result differs from original")
	}
	c := pl.Run(poolParams(2))
	if hits, misses := pl.Stats(); hits != 1 || misses != 2 {
		t.Errorf("stats after distinct seed = (%d, %d), want (1, 2)", hits, misses)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("distinct seeds returned identical results")
	}
}

// The cache key is canonical: two Params built independently — distinct
// but equal Model pointers, explicit defaults vs zero values — share one
// cache entry.
func TestPoolKeyIsCanonical(t *testing.T) {
	pl := NewPool(1)
	a := poolParams(1)
	a.Model = core.NewModel()
	b := poolParams(1)
	b.Model = core.NewModel() // different pointer, same contents
	b.Processors = core.NewModel().Platform.Processors
	b.MRULookahead = 4 // the WithDefaults value, spelled explicitly
	pl.Run(a)
	pl.Run(b)
	if hits, misses := pl.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	ka, _ := CacheKey(a)
	kb, _ := CacheKey(b)
	if ka != kb {
		t.Errorf("keys differ:\n%s\n%s", ka, kb)
	}
}

// Params that differ in any behavioral knob must not collide.
func TestPoolKeySeparatesDistinctRuns(t *testing.T) {
	base := poolParams(1)
	kBase, _ := CacheKey(base)
	for name, mutate := range map[string]func(*Params){
		"policy":    func(p *Params) { p.Policy = sched.FCFS },
		"rate":      func(p *Params) { p.Arrival = traffic.Poisson{PacketsPerSec: 801} },
		"burst":     func(p *Params) { p.Arrival = traffic.Batch{PacketsPerSec: 800, MeanBurst: 4} },
		"seed":      func(p *Params) { p.Seed = 2 },
		"datatouch": func(p *Params) { p.DataTouch = 35 },
		"packets":   func(p *Params) { p.MeasuredPackets = 301 },
		"lookahead": func(p *Params) { p.MRULookahead = 8 },
	} {
		p := base
		mutate(&p)
		if k, _ := CacheKey(p); k == kBase {
			t.Errorf("%s: key collision", name)
		}
	}
}

// Runs with a Recorder observe events as a side effect and must never be
// served from (or populate) the cache.
func TestPoolRecorderRunsNotCached(t *testing.T) {
	pl := NewPool(1)
	p := poolParams(1)
	m1, m2 := obs.NewMetrics(), obs.NewMetrics()
	p.Recorder = m1
	pl.Run(p)
	p.Recorder = m2
	pl.Run(p)
	if hits, _ := pl.Stats(); hits != 0 {
		t.Errorf("recorder run served from cache (%d hits)", hits)
	}
	if m1.Snapshot().Events == 0 || m2.Snapshot().Events == 0 {
		t.Error("a recorder saw no events — its run was skipped")
	}
}

// RunMany (now pool-backed) must return results in input order,
// identical to serial execution, at any worker count.
func TestRunManyMatchesSerial(t *testing.T) {
	params := []Params{poolParams(1), poolParams(2), poolParams(3), poolParams(1)}
	serial := make([]Results, len(params))
	for i, p := range params {
		serial[i] = Run(p)
	}
	for _, workers := range []int{1, 4} {
		got := RunMany(params, workers)
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: results differ from serial", workers)
		}
	}
}
