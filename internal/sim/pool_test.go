package sim

import (
	"reflect"
	"testing"

	"affinity/internal/core"
	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/topo"
	"affinity/internal/traffic"
	"affinity/internal/workload"
)

func poolParams(seed int64) Params {
	return Params{
		Paradigm: Locking, Policy: sched.MRU, Streams: 4,
		Arrival:         traffic.Poisson{PacketsPerSec: 800},
		MeasuredPackets: 300,
		Seed:            seed,
	}
}

// Identical Params must simulate once: the second submission is a cache
// hit returning the same Results.
func TestPoolMemoizesDuplicateParams(t *testing.T) {
	pl := NewPool(2)
	a := pl.Run(poolParams(1))
	b := pl.Run(poolParams(1))
	if hits, misses := pl.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("cached result differs from original")
	}
	c := pl.Run(poolParams(2))
	if hits, misses := pl.Stats(); hits != 1 || misses != 2 {
		t.Errorf("stats after distinct seed = (%d, %d), want (1, 2)", hits, misses)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("distinct seeds returned identical results")
	}
}

// The cache key is canonical: two Params built independently — distinct
// but equal Model pointers, explicit defaults vs zero values — share one
// cache entry.
func TestPoolKeyIsCanonical(t *testing.T) {
	pl := NewPool(1)
	a := poolParams(1)
	a.Model = core.NewModel()
	b := poolParams(1)
	b.Model = core.NewModel() // different pointer, same contents
	b.Processors = core.NewModel().Platform.Processors
	b.MRULookahead = 4 // the WithDefaults value, spelled explicitly
	pl.Run(a)
	pl.Run(b)
	if hits, misses := pl.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	ka, _ := CacheKey(a)
	kb, _ := CacheKey(b)
	if ka != kb {
		t.Errorf("keys differ:\n%s\n%s", ka, kb)
	}
}

// Params that differ in any behavioral knob must not collide.
func TestPoolKeySeparatesDistinctRuns(t *testing.T) {
	base := poolParams(1)
	kBase, _ := CacheKey(base)
	for name, mutate := range map[string]func(*Params){
		"policy":    func(p *Params) { p.Policy = sched.FCFS },
		"rate":      func(p *Params) { p.Arrival = traffic.Poisson{PacketsPerSec: 801} },
		"burst":     func(p *Params) { p.Arrival = traffic.Batch{PacketsPerSec: 800, MeanBurst: 4} },
		"seed":      func(p *Params) { p.Seed = 2 },
		"datatouch": func(p *Params) { p.DataTouch = 35 },
		"packets":   func(p *Params) { p.MeasuredPackets = 301 },
		"lookahead": func(p *Params) { p.MRULookahead = 8 },
	} {
		p := base
		mutate(&p)
		if k, _ := CacheKey(p); k == kBase {
			t.Errorf("%s: key collision", name)
		}
	}
}

// cacheKeyMutations changes every Params field, one at a time, in a way
// that alters run identity. TestCacheKeyCoversAllParams checks the map
// covers the struct; TestCacheKeyFieldSensitivity checks each mutation
// moves the key.
var cacheKeyMutations = map[string]func(*Params){
	"Model": func(p *Params) {
		m := core.NewModel()
		m.Platform.ClockMHz *= 2
		p.Model = m
	},
	"Paradigm":   func(p *Params) { p.Paradigm = IPS },
	"Policy":     func(p *Params) { p.Policy = sched.FCFS },
	"Processors": func(p *Params) { p.Processors = 3 },
	"Streams":    func(p *Params) { p.Streams = 5 },
	"Stacks":     func(p *Params) { p.Stacks = 2 },
	"Topology": func(p *Params) {
		p.Processors = 8
		p.Topology = &topo.Topology{Sockets: 2, CoresPerSocket: 4,
			SameSocketTransient: 1, CrossSocketTransient: 2}
	},
	"FDRebalance":  func(p *Params) { p.FDRebalance = 16 },
	"HashIdentity": func(p *Params) { p.HashIdentity = true },
	"Steal":        func(p *Params) { p.Steal = sched.StealParams{Penalty: 25, DepthThreshold: 2, ColdBias: 0.5} },
	"Arrival":      func(p *Params) { p.Arrival = traffic.Poisson{PacketsPerSec: 801} },
	"ArrivalPerStream": func(p *Params) {
		p.ArrivalPerStream = []traffic.Spec{
			traffic.Poisson{PacketsPerSec: 1}, traffic.Poisson{PacketsPerSec: 2},
			traffic.Poisson{PacketsPerSec: 3}, traffic.Poisson{PacketsPerSec: 4},
		}
	},
	"Workload": func(p *Params) {
		p.Streams = 0 // let the spec define the stream count
		p.Workload = &workload.Spec{Classes: []workload.Class{
			{Name: "w", Model: "poisson", Streams: 4, RatePPS: 900, Zipf: 1.1},
		}}
	},
	"Background":       func(p *Params) { p.Background = &workload.NonProtocol{Intensity: 0.1} },
	"LockOverhead":     func(p *Params) { p.LockOverhead = 7 },
	"LockCritFrac":     func(p *Params) { p.LockCritFrac = 0.4 },
	"CodeSharedFrac":   func(p *Params) { p.CodeSharedFrac = 0.9 },
	"DataTouch":        func(p *Params) { p.DataTouch = 35 },
	"HybridOverflow":   func(p *Params) { p.HybridOverflow = 9 },
	"MRULookahead":     func(p *Params) { p.MRULookahead = 8 },
	"Seed":             func(p *Params) { p.Seed = 2 },
	"Shards":           func(p *Params) { p.Shards = 4 },
	"Warmup":           func(p *Params) { p.Warmup = 5 * des.Millisecond },
	"MeasuredPackets":  func(p *Params) { p.MeasuredPackets = 301 },
	"MaxTime":          func(p *Params) { p.MaxTime = des.Second },
	"TargetRelCI":      func(p *Params) { p.TargetRelCI = 0.05 },
	"TraceN":           func(p *Params) { p.TraceN = 10 },
	"BatchSize":        func(p *Params) { p.BatchSize = 99 },
	"Faults":           func(p *Params) { p.Faults = (&faults.Plan{}).Down(des.Second, 0) },
	"MaxQueueDepth":    func(p *Params) { p.MaxQueueDepth = 16 },
	"Recorder":         func(p *Params) { p.Recorder = obs.NewMetrics() },
	"DecisionRecorder": func(p *Params) { p.DecisionRecorder = obs.NewFlightRecorder(0, 0) },
	"DecisionOverride": func(p *Params) {
		p.DecisionOverride = func(n uint64, pt obs.DecisionPoint, cands []int, chosen int) int { return chosen }
	},
	"SamplePeriod": func(p *Params) { p.SamplePeriod = 2 * des.Millisecond },
}

// CacheKey spells Params out field by field (no %#v), so a field added
// to Params could silently be left out of the key and alias distinct
// runs. This pins the struct's field set to the mutation table above:
// adding a field fails here until a mutation (and the key) covers it.
func TestCacheKeyCoversAllParams(t *testing.T) {
	typ := reflect.TypeOf(Params{})
	for i := 0; i < typ.NumField(); i++ {
		if _, ok := cacheKeyMutations[typ.Field(i).Name]; !ok {
			t.Errorf("Params.%s has no cache-key mutation — update cacheKeyMutations and CacheKey", typ.Field(i).Name)
		}
	}
	if typ.NumField() != len(cacheKeyMutations) {
		t.Errorf("mutation table has %d entries for %d Params fields", len(cacheKeyMutations), typ.NumField())
	}
}

// Every field mutation must move the cache key, with two deliberate
// exceptions: Recorder/DecisionRecorder make the run uncacheable, and
// Shards must NOT move the key — shard count changes how a run
// executes, never its Results, so runs at any K share one cache entry.
func TestCacheKeyFieldSensitivity(t *testing.T) {
	base := poolParams(1)
	kBase, ok := CacheKey(base)
	if !ok {
		t.Fatal("base params not cacheable")
	}
	for name, mutate := range cacheKeyMutations {
		p := base
		mutate(&p)
		k, cacheable := CacheKey(p)
		if name == "Recorder" || name == "DecisionRecorder" || name == "DecisionOverride" {
			if cacheable {
				t.Errorf("%s run reported cacheable", name)
			}
			continue
		}
		if name == "Shards" {
			if !cacheable {
				t.Error("sharded run reported uncacheable")
			} else if k != kBase {
				t.Error("Shards moved the cache key — same results must share one entry")
			}
			continue
		}
		if !cacheable {
			t.Errorf("%s: mutated params not cacheable", name)
		} else if k == kBase {
			t.Errorf("%s: key collision after mutation", name)
		}
	}
}

// The constructed collision the Topology key segment prevents: two runs
// identical in every other field — including processor count — but
// shaped differently (or shaped identically with different transient
// multipliers) describe different machines and must never share a pool
// entry. Without the |topo: segment all four keys below collide.
func TestCacheKeyTopologyCollisionConstruction(t *testing.T) {
	base := poolParams(1)
	base.Processors = 8
	variants := []*topo.Topology{
		nil, // the flat, topology-free run
		{Sockets: 2, CoresPerSocket: 4, SameSocketTransient: 1, CrossSocketTransient: 2},
		{Sockets: 4, CoresPerSocket: 2, SameSocketTransient: 1, CrossSocketTransient: 2},
		// Same shape as the second, different cross-socket cost.
		{Sockets: 2, CoresPerSocket: 4, SameSocketTransient: 1, CrossSocketTransient: 3},
	}
	keys := map[string]int{}
	for i, tp := range variants {
		p := base
		p.Topology = tp
		k, ok := CacheKey(p)
		if !ok {
			t.Fatalf("variant %d not cacheable", i)
		}
		if prev, dup := keys[k]; dup {
			t.Errorf("topology variants %d and %d collide on key %q", prev, i, k)
		}
		keys[k] = i
	}
}

// Runs with a Recorder observe events as a side effect and must never be
// served from (or populate) the cache.
func TestPoolRecorderRunsNotCached(t *testing.T) {
	pl := NewPool(1)
	p := poolParams(1)
	m1, m2 := obs.NewMetrics(), obs.NewMetrics()
	p.Recorder = m1
	pl.Run(p)
	p.Recorder = m2
	pl.Run(p)
	if hits, _ := pl.Stats(); hits != 0 {
		t.Errorf("recorder run served from cache (%d hits)", hits)
	}
	if m1.Snapshot().Events == 0 || m2.Snapshot().Events == 0 {
		t.Error("a recorder saw no events — its run was skipped")
	}
}

// RunMany (now pool-backed) must return results in input order,
// identical to serial execution, at any worker count.
func TestRunManyMatchesSerial(t *testing.T) {
	params := []Params{poolParams(1), poolParams(2), poolParams(3), poolParams(1)}
	serial := make([]Results, len(params))
	for i, p := range params {
		serial[i] = Run(p)
	}
	for _, workers := range []int{1, 4} {
		got := RunMany(params, workers)
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: results differ from serial", workers)
		}
	}
}
