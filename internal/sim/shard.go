package sim

import (
	"affinity/internal/des"
	"affinity/internal/traffic"
)

// Sharded-runner integration (Params.Shards, DESIGN.md §12).
//
// The event loop itself must stay sequential to keep Results
// bit-identical — dispatcher state, the arrival sequence counter and
// the statistics accumulators are all global and order-sensitive. What
// CAN move off the loop without changing a single published draw is
// the arrival generation: each stream's draw chain touches only its
// own named RNG substream, so K pipeline workers may run the chains
// arbitrarily far ahead (the chain has unbounded lookahead with
// respect to the dispatcher — the degenerate best case of the
// conservative windows in des.Sharded) and the loop pops precomputed
// draws from per-stream rings. Same numbers, same order, same Results
// at any K; the differential, metamorphic and fuzz tests in
// shard_test.go hold the equivalence over the policy × fault-plan ×
// workload-spec matrix.

// prefetchProc adapts one ring of the runner's Prefetcher to the
// traffic.Process the arrival sources consume.
type prefetchProc struct {
	p   *des.Prefetcher
	src int
}

func (pp prefetchProc) Next() (des.Time, int) { return pp.p.Next(pp.src) }

// buildPrefetch starts the arrival pipeline when the run asked for one
// (Shards > 1) and every stream is eligible. It returns nil — and the
// runner draws inline, bit-identically — when sharding cannot apply:
// a single stream has nothing to partition, and side-effecting specs
// (trace recorders) must see exactly the draws the run consumes, not
// speculative read-ahead.
func (r *runner) buildPrefetch() *des.Prefetcher {
	k := r.p.Shards
	if k <= 1 || r.p.Streams < 2 {
		return nil
	}
	specOf := func(s int) traffic.Spec {
		if r.p.ArrivalPerStream != nil {
			return r.p.ArrivalPerStream[s]
		}
		return r.p.Arrival
	}
	for s := 0; s < r.p.Streams; s++ {
		if specSideEffecting(specOf(s)) {
			return nil
		}
	}
	sources := make([]func() (des.Time, int), r.p.Streams)
	for s := 0; s < r.p.Streams; s++ {
		// Identical construction to the sequential path: the same spec,
		// the same named substream, so the same draw chain.
		proc := specOf(s).Build(des.Stream(r.p.Seed, arrivalsName(s)))
		sources[s] = proc.Next
	}
	ringCap := 256
	if r.p.Streams > 1024 {
		ringCap = 64 // bound pipeline memory on very wide runs
	}
	r.pipe = des.NewPrefetcher(sources, k, ringCap)
	return r.pipe
}

// close releases the runner's pipeline workers, if any. Runs that never
// built a pipeline are no-ops.
func (r *runner) close() {
	if r.pipe != nil {
		r.pipe.Close()
		r.pipe = nil
	}
}
