package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/traffic"
)

// TestRecorderDoesNotPerturb is the non-perturbation contract: attaching
// a recorder must leave every simulated metric bit-identical.
func TestRecorderDoesNotPerturb(t *testing.T) {
	for _, paradigm := range []Paradigm{Locking, IPS, Hybrid} {
		policy := sched.MRU
		if paradigm != Locking {
			policy = sched.IPSMRU
		}
		plain := Run(quick(paradigm, policy))

		p := quick(paradigm, policy)
		p.Recorder = obs.NewMetrics()
		rec := Run(p)

		// Strip the fields that legitimately differ (recorder state and
		// the extra sampler events) and compare the rest.
		rec.Obs, plain.Obs = nil, nil
		rec.RecorderEvents, plain.RecorderEvents = 0, 0
		rec.EventsFired, plain.EventsFired = 0, 0
		if !reflect.DeepEqual(plain, rec) {
			t.Fatalf("%v: recorder perturbed the run:\n%+v\n%+v", paradigm, plain, rec)
		}
	}
}

// TestDecisionRecorderDoesNotPerturb extends the non-perturbation
// contract to the decision ledger: decide reads the same cost model
// beginService charges with but must leave every simulated metric
// bit-identical, and the ledger must see at least one decision at every
// decision point the paradigm exercises.
func TestDecisionRecorderDoesNotPerturb(t *testing.T) {
	for _, paradigm := range []Paradigm{Locking, IPS, Hybrid} {
		policy := sched.MRU
		if paradigm != Locking {
			policy = sched.IPSMRU
		}
		plain := Run(quick(paradigm, policy))

		p := quick(paradigm, policy)
		fr := obs.NewFlightRecorder(4096, 0)
		p.DecisionRecorder = fr
		rec := Run(p)

		if rec.DecisionsRecorded == 0 || fr.Total() == 0 {
			t.Fatalf("%v: ledger saw no decisions (results %d, recorder %d)",
				paradigm, rec.DecisionsRecorded, fr.Total())
		}
		if rec.DecisionsRecorded != fr.Total() {
			t.Fatalf("%v: DecisionsRecorded %d != recorder's own count %d",
				paradigm, rec.DecisionsRecorded, fr.Total())
		}
		rec.DecisionsRecorded, plain.DecisionsRecorded = 0, 0
		if !reflect.DeepEqual(plain, rec) {
			t.Fatalf("%v: decision ledger perturbed the run:\n%+v\n%+v", paradigm, plain, rec)
		}
	}
}

// TestMetricsConsistentWithResults is the acceptance criterion: the
// metrics sink's counters must match the simulator's own aggregates.
func TestMetricsConsistentWithResults(t *testing.T) {
	p := quick(Hybrid, sched.IPSMRU)
	p.Stacks = 4 // force stream sharing so spills and migrations occur
	p.Arrival = traffic.Batch{PacketsPerSec: 1000, MeanBurst: 16}
	m := obs.NewMetrics()
	p.Recorder = m
	res := Run(p)

	snap := m.Snapshot()
	if res.Obs == nil {
		t.Fatal("Results.Obs not merged from the attached metrics sink")
	}
	if res.Obs.Events != snap.Events {
		t.Fatalf("merged snapshot stale: %d vs %d events", res.Obs.Events, snap.Events)
	}
	if snap.Migrations != res.Migrations {
		t.Fatalf("migrations: recorder %d, results %d", snap.Migrations, res.Migrations)
	}
	if snap.ColdStarts != res.ColdStarts {
		t.Fatalf("cold starts: recorder %d, results %d", snap.ColdStarts, res.ColdStarts)
	}
	if snap.Spills != res.Spills {
		t.Fatalf("spills: recorder %d, results %d", snap.Spills, res.Spills)
	}
	if res.Spills == 0 {
		t.Fatal("burst run produced no spills; scenario too tame to test")
	}
	if snap.Arrivals != res.Arrivals {
		t.Fatalf("arrivals: recorder %d, results %d", snap.Arrivals, res.Arrivals)
	}
	// Completions include warmup packets, measured ones don't.
	if snap.Completions < res.Completed {
		t.Fatalf("completions: recorder %d < measured %d", snap.Completions, res.Completed)
	}
	// Packets still in service when the run stops have a dispatch but
	// no completion; there can be at most one per processor.
	inFlight := snap.Dispatches - snap.Completions
	if snap.Dispatches < snap.Completions || inFlight > uint64(len(res.PerProcBusyTime)) {
		t.Fatalf("dispatches %d vs completions %d: more in-flight packets than processors",
			snap.Dispatches, snap.Completions)
	}
	if res.RecorderEvents != snap.Events {
		t.Fatalf("RecorderEvents %d != recorder's own count %d", res.RecorderEvents, snap.Events)
	}
	if res.EventsFired == 0 {
		t.Fatal("EventsFired not populated")
	}
	// The recorder's closed busy intervals are a lower bound on the
	// simulator's exact busy-time integrals.
	for i, closed := range snap.PerProcBusy {
		if i >= len(res.PerProcBusyTime) {
			t.Fatalf("recorder saw processor %d beyond the run's %d", i, len(res.PerProcBusyTime))
		}
		if closed > res.PerProcBusyTime[i]+1e-6 {
			t.Fatalf("proc %d: closed busy %v exceeds exact integral %v",
				i, closed, res.PerProcBusyTime[i])
		}
	}
}

// TestPerProcBusyMatchesUtilization ties the new per-processor integrals
// to the legacy aggregate.
func TestPerProcBusyMatchesUtilization(t *testing.T) {
	res := Run(quick(Locking, sched.MRU))
	if len(res.PerProcBusyTime) == 0 {
		t.Fatal("no per-processor busy times")
	}
	var sum float64
	for _, b := range res.PerProcBusyTime {
		if b < 0 {
			t.Fatalf("negative busy time: %v", res.PerProcBusyTime)
		}
		sum += b
	}
	want := res.Utilization * float64(len(res.PerProcBusyTime)) * float64(res.SimTime)
	if math.Abs(sum-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("sum busy %v inconsistent with utilization (%v)", sum, want)
	}
}

func TestAffinityStatsInResults(t *testing.T) {
	mru := Run(quick(Locking, sched.MRU))
	if mru.Placements == 0 || mru.AffinityHits == 0 {
		t.Fatalf("MRU run reported hits=%d placements=%d", mru.AffinityHits, mru.Placements)
	}
	if mru.AffinityHits > mru.Placements {
		t.Fatalf("hits %d exceed placements %d", mru.AffinityHits, mru.Placements)
	}
	fcfs := Run(quick(Locking, sched.FCFS))
	if fcfs.AffinityHits != 0 {
		t.Fatalf("FCFS baseline reported %d affinity hits", fcfs.AffinityHits)
	}
	if fcfs.Placements == 0 {
		t.Fatal("FCFS made no placement decisions")
	}
}

func TestTraceAdapterMatchesRecorderView(t *testing.T) {
	p := quick(Locking, sched.MRU)
	p.TraceN = 40
	plain := Run(p)

	// The same run with a user recorder attached must produce the same
	// trace (the adapter tees off the identical event stream), and the
	// recorder's first ExecStart events must mirror the trace entries.
	p2 := quick(Locking, sched.MRU)
	p2.TraceN = 40
	m := obs.NewMetrics()
	p2.Recorder = m
	withRec := Run(p2)
	if !reflect.DeepEqual(plain.Trace, withRec.Trace) {
		t.Fatal("trace differs when a recorder is attached")
	}
	if len(plain.Trace) != 40 {
		t.Fatalf("trace length %d, want 40", len(plain.Trace))
	}
	for i, e := range plain.Trace {
		if e.Queued < 0 || e.Exec <= 0 {
			t.Fatalf("entry %d malformed: %+v", i, e)
		}
	}
}

func TestChromeTraceEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	ct := obs.NewChromeTrace(&buf)
	p := quick(Locking, sched.MRU)
	p.MeasuredPackets = 300
	p.Recorder = ct
	res := Run(p)
	if err := ct.Close(); err != nil {
		t.Fatalf("closing trace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	procs := map[float64]bool{}
	var execB, execE, asyncB, asyncE, counters int
	for _, ev := range events {
		switch ev["ph"] {
		case "B":
			execB++
			procs[ev["tid"].(float64)] = true
		case "E":
			execE++
		case "b":
			asyncB++
		case "e":
			asyncE++
		case "C":
			counters++
		}
	}
	// Packets mid-service when the run stops leave open "B" slices
	// (Perfetto renders those fine); at most one per processor.
	if execB == 0 || execB < execE || execB-execE > 8 {
		t.Fatalf("unbalanced exec slices: %d B, %d E", execB, execE)
	}
	if asyncE == 0 || asyncB < asyncE {
		t.Fatalf("packet spans broken: %d b, %d e", asyncB, asyncE)
	}
	// Per-processor tracks: the run keeps all 8 processors busy.
	if len(procs) != 8 {
		t.Fatalf("exec slices span %d processor tracks, want 8", len(procs))
	}
	if counters == 0 {
		t.Fatal("no gauge counter samples in the trace")
	}
	if res.RecorderEvents == 0 {
		t.Fatal("run reported no recorder events")
	}
}

func TestTotalEventsFiredAccumulates(t *testing.T) {
	before := TotalEventsFired()
	res := Run(quick(Locking, sched.MRU))
	after := TotalEventsFired()
	if after-before < res.EventsFired {
		t.Fatalf("global counter advanced %d, run fired %d", after-before, res.EventsFired)
	}
}

func TestSamplePeriodValidation(t *testing.T) {
	p := quick(Locking, sched.MRU).WithDefaults()
	p.SamplePeriod = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative sample period accepted")
	}
}
