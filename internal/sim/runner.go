package sim

import (
	"math"
	"strconv"

	"affinity/internal/core"
	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/stats"
	"affinity/internal/topo"
	"affinity/internal/traffic"
)

// The runner's packet lifecycle is allocation-free in steady state: DES
// event nodes are pooled inside des.Simulator, per-packet service state
// lives in pooled svc records scheduled through non-capturing
// des.ArgHandler functions (no per-packet closures), displacement marks
// are flat slices indexed by entity, and every queue recycles its
// backing array. TestRunnerSteadyStateZeroAllocs pins the
// disabled-recorder path at zero allocations per event.

// procState tracks one processor's displacement counters and occupancy.
//
// dispNP accumulates displacing references issued by the non-protocol
// workload (idle periods, scaled by intensity V); dispProto accumulates
// references issued by protocol execution. Each footprint entity marks
// both counters when it completes on the processor; the displacement it
// has suffered since is the counters' growth, with other-protocol growth
// discounted by the shared-code fraction.
type procState struct {
	busy      bool
	idleSince des.Time
	busySince des.Time
	dispNP    float64
	dispProto float64
	seen      []bool    // entity has completed on this processor
	markNP    []float64 // entity → dispNP at last completion here
	markProto []float64 // entity → dispProto at last completion here
	util      stats.TimeWeighted

	// Fault-injection state: a down processor takes no new work (its
	// in-flight packet drains gracefully, then it parks); slow scales
	// charged execution time while a transient slow-down is active
	// (1 = full speed, the only value touched on fault-free runs).
	down      bool
	downSince des.Time
	downTime  float64 // closed down intervals, µs
	slow      float64
}

// stackState tracks one IPS stack.
type stackState struct {
	q       pktQueue
	running bool
	queued  bool
}

// pktQueue is a slice-backed packet FIFO that recycles its backing
// array: the head index advances on pop and the array resets when the
// queue drains (or the dead prefix dominates), so steady-state
// enqueue/dequeue traffic stops allocating.
type pktQueue struct {
	buf  []sched.Packet
	head int
}

func (q *pktQueue) len() int            { return len(q.buf) - q.head }
func (q *pktQueue) front() sched.Packet { return q.buf[q.head] }
func (q *pktQueue) push(p sched.Packet) { q.buf = append(q.buf, p) }
func (q *pktQueue) pop() sched.Packet {
	p := q.buf[q.head]
	q.buf[q.head] = sched.Packet{}
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return p
}

type runner struct {
	p     Params
	sim   *des.Simulator
	model *core.Model
	exec  *core.Exec // compiled model: bit-identical, transcendentals hoisted
	rate  float64    // displacing references per µs of full-speed execution

	// topo is Params.Topology, but only when it can change a charge:
	// nil for the flat machine (no topology, or one whose transient
	// multipliers are all 1), so the topology-free path stays a single
	// nil compare and is bit-identical to the pre-topology runner.
	topo *topo.Topology

	disp  sched.PacketDispatcher // Locking
	sdisp sched.StackDispatcher  // IPS
	lock  *des.Resource          // Locking: the shared-stack lock

	procs      []procState
	stacks     []stackState
	overflow   pktQueue // Hybrid: packets spilled to the shared path
	rng        *des.RNG // Hybrid overflow placement
	lastProcOf []int    // entity → processor of previous completion, -1 unknown

	sources     []arrivalSource // one per stream, scheduled by pointer
	pipe        *des.Prefetcher // Shards>1: arrival draw pipeline (shard.go)
	idleScratch []int           // reused by idleProcs
	svcFree     []*svc          // recycled per-packet service records

	delays    *stats.BatchMeans
	delayAcc  stats.Accumulator
	delayHist *stats.Histogram
	perStream []stats.Accumulator
	service   stats.Accumulator
	queueing  stats.Accumulator
	lockWait  stats.Accumulator

	warm       uint64
	coldStarts uint64
	migrations uint64
	spills     uint64
	measured   int
	arrivals   uint64

	// Fault injection: the scheduled plan events, the active loss
	// probability, and its RNG stream (created only when the plan has
	// loss events, so every other stream's published draws stay
	// identical to a fault-free run's).
	faultEvs []faultEvent
	lossProb float64
	lossRNG  *des.RNG
	dropped  uint64

	// rec is the effective recorder chain — the user's Params.Recorder
	// plus the TraceN adapter — or nil when both are disabled. Every
	// emission site is guarded by `r.rec != nil`, which keeps the
	// disabled path free of event construction (the zero-overhead
	// contract). emitted counts events published through it.
	rec     obs.Recorder
	tsink   *traceSink
	emitted uint64

	// Decision-ledger state: drec is Params.DecisionRecorder (every
	// decide call site is guarded by `r.drec != nil`), decisions counts
	// what was published, candScratch is the reused candidate buffer
	// (each Decision aliases it for the duration of RecordDecision) and
	// oneProc the reused single-candidate set for dispatch decisions.
	drec        obs.DecisionRecorder
	decisions   uint64
	candScratch []obs.Candidate
	oneProc     [1]int

	// Counterfactual replay state: over is Params.DecisionOverride
	// (call sites guard with `r.drec != nil || r.over != nil` so normal
	// runs pay the same single branch as before), overIdx the ordinal of
	// the next decision — counted at every decision site, recorder or
	// not, so it matches the ledger indices a recorder would assign.
	over    DecisionOverride
	overIdx uint64

	// Per-stream reordering state: streamSeq numbers each stream's
	// arrivals (1-based), streamMaxDone is the highest StreamSeq
	// completed, streamReordered the out-of-order completion count —
	// sparse, created at the first reordered completion, so the common
	// in-order run carries no per-stream reorder storage at all (at
	// million-stream scale the dense slice was an O(streams) allocation
	// spent on zeros). The counters always run — they are a few integer
	// ops per packet — so Results carries the metric with or without
	// recorders.
	streamSeq       []uint64
	streamMaxDone   []uint64
	streamReordered map[int]uint64
	reordered       uint64
	maxReorderDist  uint64
}

// traceSink adapts the recorder event stream back into the legacy
// Results.Trace format: it captures the first n ExecStart events,
// pairing each with the Dispatch event the runner emits immediately
// before it (same packet, same instant) for the queueing delay.
type traceSink struct {
	n       int
	wait    float64
	waitSeq uint64
	entries []TraceEntry
}

func (t *traceSink) Record(e obs.Event) {
	switch e.Kind {
	case obs.KindDispatch:
		t.wait, t.waitSeq = e.Dur, e.Seq
	case obs.KindExecStart:
		if len(t.entries) >= t.n {
			return
		}
		var queued des.Time
		if t.waitSeq == e.Seq {
			queued = des.Time(t.wait)
		}
		t.entries = append(t.entries, TraceEntry{
			Start:     des.Time(e.T),
			Stream:    e.Stream,
			Entity:    e.Entity,
			Processor: e.Proc,
			Queued:    queued,
			XRefs:     e.Val,
			Exec:      e.Dur,
			Migrated:  e.Flags&obs.FlagMigrated != 0,
		})
	}
}

func newRunner(p Params) *runner {
	entities := p.entityCount()
	r := &runner{
		p:          p,
		sim:        des.NewSimulator(),
		model:      p.Model,
		exec:       p.Model.Compile(),
		rate:       p.Model.Platform.RefsPerMicrosecond(),
		procs:      make([]procState, p.Processors),
		lastProcOf: make([]int, entities),
		delays:     stats.NewBatchMeans(p.BatchSize),
		delayHist:  stats.NewHistogram(0, 100_000, 10_000), // 10 µs bins to 100 ms
		perStream:  make([]stats.Accumulator, p.Streams),

		drec:          p.DecisionRecorder,
		over:          p.DecisionOverride,
		streamSeq:     make([]uint64, p.Streams),
		streamMaxDone: make([]uint64, p.Streams),
	}
	if t := p.Topology; t != nil &&
		(t.SameSocketTransient != 1 || t.CrossSocketTransient != 1) {
		r.topo = t
	}
	if r.drec != nil {
		r.candScratch = make([]obs.Candidate, 0, p.Processors)
	}
	for i := range r.lastProcOf {
		r.lastProcOf[i] = -1
	}
	for i := range r.procs {
		r.procs[i].seen = make([]bool, entities)
		r.procs[i].markNP = make([]float64, entities)
		r.procs[i].markProto = make([]float64, entities)
		r.procs[i].util.Set(0, 0)
		r.procs[i].slow = 1
	}
	if p.Faults.HasLoss() {
		r.lossRNG = des.Stream(p.Seed, "fault-loss")
	}
	r.idleScratch = make([]int, 0, p.Processors)
	schedRNG := des.Stream(p.Seed, "sched")
	if p.Paradigm == Locking {
		r.disp = sched.NewPacketDispatcherFull(p.Policy, p.Processors, schedRNG, p.MRULookahead,
			sched.HashConfig{Rebalance: p.FDRebalance, Identity: p.HashIdentity},
			sched.StealConfig{StealParams: p.Steal, Now: r.sim.Now})
		r.lock = des.NewResource(r.sim, 1)
	} else {
		r.sdisp = sched.NewStackDispatcherLookahead(p.Policy, p.Stacks, p.Processors, schedRNG, p.MRULookahead)
		r.stacks = make([]stackState, p.Stacks)
		if p.Paradigm == Hybrid {
			r.lock = des.NewResource(r.sim, 1)
			r.rng = des.Stream(p.Seed, "hybrid-overflow")
		}
	}
	if p.TraceN > 0 {
		r.tsink = &traceSink{n: p.TraceN}
	}
	if r.tsink != nil {
		r.rec = obs.Multi(p.Recorder, r.tsink)
	} else {
		r.rec = p.Recorder
	}
	return r
}

// emit publishes one event on the recorder chain; callers guard with
// r.rec != nil so the disabled path constructs nothing.
func (r *runner) emit(e obs.Event) {
	r.emitted++
	r.rec.Record(e)
}

// decide publishes one dispatch decision: the chosen processor plus the
// candidate set considered, each with the warm/cold prediction and the
// execution cost the model would charge there right now. Costs come
// from the same pure functions beginService charges with, so recording
// reads simulator state without touching it. Callers guard with
// r.drec != nil; the emitted Decision aliases candScratch, valid only
// for the duration of RecordDecision.
func (r *runner) decide(point obs.DecisionPoint, pkt sched.Packet, cands []int, chosen int) {
	r.decisions++
	cs := r.candScratch[:0]
	best := math.Inf(1)
	chosenCost := 0.0
	for _, pc := range cands {
		x := r.xRefs(pkt.Entity, pc)
		texec, f1 := r.exec.ExecTimeF1(x)
		if r.topo != nil {
			texec = r.topoScaled(texec, pkt.Entity, pc)
		}
		cost := texec + r.p.DataTouch
		if s := r.procs[pc].slow; s != 1 {
			cost *= s
		}
		cs = append(cs, obs.Candidate{
			Proc: pc, Warm: !math.IsInf(x, 1) && f1 < 0.5, XRefs: x, Cost: cost,
		})
		if cost < best {
			best = cost
		}
		if pc == chosen {
			chosenCost = cost
		}
	}
	r.candScratch = cs
	var preferred int
	if r.p.Paradigm == Locking {
		preferred = r.disp.PreferredProc(pkt.Entity)
	} else {
		preferred = r.sdisp.PreferredProc(pkt.Entity)
	}
	r.drec.RecordDecision(obs.Decision{
		T: float64(r.sim.Now()), Point: point, Seq: pkt.Seq,
		Stream: pkt.Stream, Entity: pkt.Entity,
		Chosen: chosen, Preferred: preferred,
		ChosenCost: chosenCost, BestCost: best, Candidates: cs,
	})
}

// chose settles one dispatch decision: the counterfactual override (if
// any) substitutes the choice first, then the ledger records what will
// actually run. The override's ordinal advances at every decision site
// whether or not a recorder is attached, so a replay run (override, no
// recorder) counts decisions exactly as the factual run's ledger
// numbered them. Callers guard with `r.drec != nil || r.over != nil`.
func (r *runner) chose(point obs.DecisionPoint, pkt sched.Packet, cands []int, chosen int) int {
	if r.over != nil {
		forced := r.over(r.overIdx, point, cands, chosen)
		r.overIdx++
		if forced != chosen {
			ok := false
			for _, c := range cands {
				if c == forced {
					ok = true
					break
				}
			}
			if !ok {
				panic("sim: decision override chose a processor outside the candidate set")
			}
			chosen = forced
		}
	}
	if r.drec != nil {
		r.decide(point, pkt, cands, chosen)
	}
	return chosen
}

// choseDispatch settles the single-candidate decision a processor
// pulling queued work makes: the processor is fixed, the choice was
// which work to run, so an override cannot move it — but it still
// consumes an ordinal, keeping replay numbering aligned with the ledger.
func (r *runner) choseDispatch(pkt sched.Packet, proc int) {
	r.oneProc[0] = proc
	r.chose(obs.PointDispatch, pkt, r.oneProc[:], proc)
}

// arrivalsNames caches the per-stream RNG stream names so a run's
// startup (and tests constructing many runners) does not go through
// fmt.Sprintf; entries must stay identical to the historical
// "arrivals-%d" so every seed keeps its published draws.
var arrivalsNames = func() (t [64]string) {
	for i := range t {
		t[i] = "arrivals-" + strconv.Itoa(i)
	}
	return
}()

func arrivalsName(s int) string {
	if s >= 0 && s < len(arrivalsNames) {
		return arrivalsNames[s]
	}
	return "arrivals-" + strconv.Itoa(s)
}

// arrivalSource drives one stream's arrival process; it is scheduled by
// pointer through arrivalFire so per-arrival rescheduling allocates
// nothing.
type arrivalSource struct {
	r       *runner
	stream  int
	proc    traffic.Process
	pending int
}

// arrivalFire delivers the batch drawn on the previous tick, then draws
// and schedules the next one.
func arrivalFire(a any) {
	src := a.(*arrivalSource)
	r := src.r
	for j := 0; j < src.pending; j++ {
		r.arrive(src.stream)
	}
	d, b := src.proc.Next()
	src.pending = b
	r.sim.ScheduleArg(d, arrivalFire, src)
}

// gaugeSample publishes the periodic gauges and reschedules itself; it
// runs only when a user recorder is attached (a TraceN-only run should
// not burn simulator events on samples nobody sees) and reads state
// without mutating it, so it cannot perturb the run.
func gaugeSample(a any) {
	r := a.(*runner)
	t := float64(r.sim.Now())
	r.emit(obs.Event{T: t, Kind: obs.KindGaugeQueue, Proc: -1, Stream: -1, Entity: -1,
		Val: float64(r.queuedPackets())})
	r.emit(obs.Event{T: t, Kind: obs.KindGaugeHeap, Proc: -1, Stream: -1, Entity: -1,
		Val: float64(r.sim.Pending())})
	var dNP, dProto float64
	for i := range r.procs {
		dNP += r.procs[i].dispNP
		dProto += r.procs[i].dispProto
	}
	r.emit(obs.Event{T: t, Kind: obs.KindGaugeDispNP, Proc: -1, Stream: -1, Entity: -1, Val: dNP})
	r.emit(obs.Event{T: t, Kind: obs.KindGaugeDispProto, Proc: -1, Stream: -1, Entity: -1, Val: dProto})
	if r.p.Paradigm == Hybrid {
		r.emit(obs.Event{T: t, Kind: obs.KindGaugeOverflow, Proc: -1, Stream: -1, Entity: -1,
			Val: float64(r.overflow.len())})
	}
	r.sim.ScheduleArg(r.p.SamplePeriod, gaugeSample, r)
}

// faultEvent binds one plan event to its runner so the DES can fire it
// through a non-capturing handler.
type faultEvent struct {
	r  *runner
	ev faults.Event
}

func faultFire(a any) {
	fe := a.(*faultEvent)
	r := fe.r
	switch fe.ev.Kind {
	case faults.ProcDown:
		r.procDown(fe.ev.Proc)
	case faults.ProcUp:
		r.procUp(fe.ev.Proc)
	case faults.Slowdown:
		r.procs[fe.ev.Proc].slow = fe.ev.Factor
	case faults.Loss:
		r.lossProb = fe.ev.Prob
	case faults.Burst:
		if fe.ev.Stream < 0 {
			for s := 0; s < r.p.Streams; s++ {
				for j := 0; j < fe.ev.Count; j++ {
					r.arrive(s)
				}
			}
			return
		}
		for j := 0; j < fe.ev.Count; j++ {
			r.arrive(fe.ev.Stream)
		}
	}
}

// start schedules every stream's arrival process, the fault plan and,
// when a recorder is attached, the periodic gauge sampler.
func (r *runner) start() {
	if !r.p.Faults.Empty() {
		evs := r.p.Faults.Sorted()
		r.faultEvs = make([]faultEvent, len(evs))
		for i := range evs {
			fe := &r.faultEvs[i]
			fe.r, fe.ev = r, evs[i]
			r.sim.ScheduleArgAt(evs[i].At, faultFire, fe)
		}
	}
	if r.p.Recorder != nil {
		r.sim.ScheduleArg(r.p.SamplePeriod, gaugeSample, r)
	}
	r.sources = make([]arrivalSource, r.p.Streams)
	pipe := r.buildPrefetch() // nil unless Params.Shards asks for K > 1
	for s := 0; s < r.p.Streams; s++ {
		spec := r.p.Arrival
		if r.p.ArrivalPerStream != nil {
			spec = r.p.ArrivalPerStream[s]
		}
		src := &r.sources[s]
		src.r, src.stream = r, s
		if pipe != nil {
			src.proc = prefetchProc{p: pipe, src: s}
		} else {
			src.proc = spec.Build(des.Stream(r.p.Seed, arrivalsName(s)))
		}
		d, b := src.proc.Next()
		src.pending = b
		r.sim.ScheduleArg(d, arrivalFire, src)
	}
}

// idleProcs returns the processors currently free of protocol work. The
// returned slice is the runner's scratch buffer, valid until the next
// call.
func (r *runner) idleProcs() []int {
	idle := r.idleScratch[:0]
	for i := range r.procs {
		if !r.procs[i].busy && !r.procs[i].down {
			idle = append(idle, i)
		}
	}
	r.idleScratch = idle
	return idle
}

func (r *runner) arrive(stream int) {
	r.arrivals++
	r.streamSeq[stream]++
	pkt := sched.Packet{Stream: stream, Entity: r.p.entityOf(stream), Arrive: r.sim.Now(),
		Seq: r.arrivals, StreamSeq: r.streamSeq[stream]}
	if r.rec != nil {
		r.emit(obs.Event{T: float64(pkt.Arrive), Kind: obs.KindArrival,
			Proc: -1, Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
	}
	if r.lossProb > 0 && r.lossRNG.Float64() < r.lossProb {
		r.drop(pkt, obs.DropReasonLoss)
		return
	}
	if r.p.Paradigm == Locking {
		if idle := r.idleProcs(); len(idle) > 0 {
			if proc := r.disp.PickProcessor(pkt, idle); proc >= 0 {
				if r.drec != nil || r.over != nil {
					proc = r.chose(obs.PointPlace, pkt, idle, proc)
				}
				r.beginService(pkt, proc, true, true, compLocking)
				return
			}
		}
		if r.p.MaxQueueDepth > 0 && r.disp.DepthFor(pkt) >= r.p.MaxQueueDepth {
			r.drop(pkt, obs.DropReasonQueue)
			return
		}
		r.enqueued(pkt)
		r.disp.Enqueue(pkt)
		return
	}
	// IPS / Hybrid: the packet joins its stack's queue; a newly ready
	// stack is placed on a processor or queued.
	k := pkt.Entity
	st := &r.stacks[k]
	if r.p.Paradigm == Hybrid && (st.running || st.queued) && st.q.len() >= r.p.HybridOverflow {
		// The stack is backed up: spill to the shared locking path,
		// which any idle processor may serve concurrently.
		if idle := r.idleProcs(); len(idle) > 0 {
			r.spills++
			proc := idle[r.rng.Intn(len(idle))]
			if r.drec != nil || r.over != nil {
				proc = r.chose(obs.PointSpill, pkt, idle, proc)
			}
			if r.rec != nil {
				r.emit(obs.Event{T: float64(r.sim.Now()), Kind: obs.KindSpill,
					Proc: proc, Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
			}
			r.beginService(pkt, proc, true, true, compOverflow)
			return
		}
		if r.p.MaxQueueDepth > 0 && r.overflow.len() >= r.p.MaxQueueDepth {
			r.drop(pkt, obs.DropReasonQueue)
			return
		}
		r.spills++
		if r.rec != nil {
			r.emit(obs.Event{T: float64(r.sim.Now()), Kind: obs.KindSpill,
				Proc: -1, Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
		}
		r.enqueued(pkt)
		r.overflow.push(pkt)
		return
	}
	if r.p.MaxQueueDepth > 0 {
		waiting := st.q.len()
		if st.running {
			waiting-- // the head is in service, not waiting
		}
		if waiting >= r.p.MaxQueueDepth {
			r.drop(pkt, obs.DropReasonQueue)
			return
		}
	}
	st.q.push(pkt)
	if st.running || st.queued {
		r.enqueued(pkt)
		return
	}
	if idle := r.idleProcs(); len(idle) > 0 {
		if proc := r.sdisp.PickProcessor(k, idle); proc >= 0 {
			if r.drec != nil || r.over != nil {
				// The stack was idle and unqueued, so the arriving packet
				// is the one this placement runs.
				proc = r.chose(obs.PointPlace, pkt, idle, proc)
			}
			r.startStack(k, proc, true)
			return
		}
	}
	r.enqueued(pkt)
	st.queued = true
	r.sdisp.EnqueueStack(k)
}

// enqueued publishes the packet's enqueue event — it could not be
// served immediately and now waits in some queue.
func (r *runner) enqueued(pkt sched.Packet) {
	if r.rec != nil {
		r.emit(obs.Event{T: float64(r.sim.Now()), Kind: obs.KindEnqueue,
			Proc: -1, Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
	}
}

// drop removes an arrived packet from the system unserved. Dropped
// packets stay in the conservation ledger: Arrivals = CompletedTotal +
// InFlightAtEnd + QueueAtEnd + Dropped.
func (r *runner) drop(pkt sched.Packet, reason int) {
	r.dropped++
	if r.rec != nil {
		r.emit(obs.Event{T: float64(r.sim.Now()), Kind: obs.KindDrop,
			Proc: -1, Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq,
			Val: float64(reason)})
	}
}

// procDown takes a processor out of service: the dispatcher re-homes
// entities bound to it, its in-flight packet (if any) drains and then
// the processor parks until procUp.
func (r *runner) procDown(proc int) {
	ps := &r.procs[proc]
	if ps.down {
		return
	}
	now := r.sim.Now()
	ps.down = true
	ps.downSince = now
	if r.rec != nil {
		r.emit(obs.Event{T: float64(now), Kind: obs.KindProcDown,
			Proc: proc, Stream: -1, Entity: -1})
	}
	if r.p.Paradigm == Locking {
		r.disp.ProcDown(proc)
	} else {
		r.sdisp.ProcDown(proc)
	}
	// Re-homed work may be runnable on other processors right now.
	r.kickIdle()
}

// procUp returns a processor to service with a cold cache: whatever
// protocol state it held is gone, so every entity restarts cold here —
// the failback penalty the wired policies' re-homing must amortize.
func (r *runner) procUp(proc int) {
	ps := &r.procs[proc]
	if !ps.down {
		return
	}
	now := r.sim.Now()
	ps.down = false
	ps.downTime += float64(now - ps.downSince)
	for i := range ps.seen {
		ps.seen[i] = false
	}
	if r.rec != nil {
		r.emit(obs.Event{T: float64(now), Kind: obs.KindProcUp,
			Proc: proc, Stream: -1, Entity: -1, Dur: float64(now - ps.downSince)})
	}
	if r.p.Paradigm == Locking {
		r.disp.ProcUp(proc)
	} else {
		r.sdisp.ProcUp(proc)
	}
	r.kickIdle()
}

// kickIdle offers queued work to every live idle processor. The normal
// arrival/completion flow cannot see work that a fault transition moved
// between queues (or a parked processor left behind), so every
// transition ends with a kick — this is what guarantees no stream
// strands while at least one processor is up.
func (r *runner) kickIdle() {
	for proc := range r.procs {
		ps := &r.procs[proc]
		if ps.busy || ps.down {
			continue
		}
		if r.p.Paradigm == Locking {
			if next, ok := r.disp.Dispatch(proc); ok {
				if r.drec != nil || r.over != nil {
					r.choseDispatch(next, proc)
				}
				r.beginService(next, proc, true, true, compLocking)
			}
			continue
		}
		if next := r.sdisp.DispatchStack(proc); next >= 0 {
			r.stacks[next].queued = false
			if r.drec != nil || r.over != nil {
				r.choseDispatch(r.stacks[next].q.front(), proc)
			}
			r.startStack(next, proc, true)
			continue
		}
		if r.p.Paradigm == Hybrid && r.overflow.len() > 0 {
			pkt := r.overflow.pop()
			if r.drec != nil || r.over != nil {
				r.choseDispatch(pkt, proc)
			}
			r.beginService(pkt, proc, true, true, compOverflow)
		}
	}
}

// topoScaled applies the topology's migration transient multiplier to a
// model-charged execution time: a packet whose entity last completed on
// a different core pays t_warm + scale·(T(x) − t_warm), where scale
// depends on whether the migration crosses a socket. The warm floor
// never scales — it is a property of the code path, not of where the
// stale state lives — and an entity's very first run anywhere has no
// state to fetch, so it pays the plain cold charge. Callers guard with
// r.topo != nil (nil whenever no multiplier differs from 1), keeping
// the flat machine bit-identical to the topology-free runner.
func (r *runner) topoScaled(texec float64, entity, proc int) float64 {
	if last := r.lastProcOf[entity]; last >= 0 && last != proc {
		if s := r.topo.TransientScale(last, proc); s != 1 {
			w := r.exec.Warm()
			texec = w + s*(texec-w)
		}
	}
	return texec
}

// xRefs returns the displacing references entity e has suffered on proc
// since it last completed there, or +Inf if it never ran there.
func (r *runner) xRefs(e, proc int) float64 {
	ps := &r.procs[proc]
	if !ps.seen[e] {
		return math.Inf(1)
	}
	dNP := ps.dispNP - ps.markNP[e]
	dProto := ps.dispProto - ps.markProto[e]
	return dNP + (1-r.p.CodeSharedFrac)*dProto
}

// completionKind selects the continuation run when a packet's service
// completes — an enum dispatched in svc.finish, rather than a captured
// function value, so beginService stays allocation-free.
type completionKind uint8

const (
	compLocking completionKind = iota
	compOverflow
	compIPS
)

// svc is the pooled per-packet service record: everything the
// completion continuation needs, bound once at beginService and
// threaded through the DES by pointer.
type svc struct {
	r         *runner
	pkt       sched.Packet
	proc      int
	exec      float64 // charged execution time (model + data touch)
	warmHit   bool
	done      completionKind
	requested des.Time // lock-wait start (locked path)
}

func (r *runner) acquireSvc() *svc {
	if n := len(r.svcFree); n > 0 {
		s := r.svcFree[n-1]
		r.svcFree[n-1] = nil
		r.svcFree = r.svcFree[:n-1]
		return s
	}
	return &svc{r: r}
}

func (r *runner) releaseSvc(s *svc) {
	s.pkt = sched.Packet{}
	r.svcFree = append(r.svcFree, s)
}

// svcFinishDirect completes an unlocked service interval.
func svcFinishDirect(a any) {
	s := a.(*svc)
	s.finish(s.exec)
}

// svcLockRequest ends the non-critical section and queues for the
// shared-stack lock.
func svcLockRequest(a any) {
	s := a.(*svc)
	s.requested = s.r.sim.Now()
	s.r.lock.AcquireArg(svcLockGranted, s)
}

// svcLockGranted runs when the lock is granted: record the spin wait and
// schedule the critical section.
func svcLockGranted(a any) {
	s := a.(*svc)
	r := s.r
	r.lockWait.Add(float64(r.sim.Now() - s.requested))
	r.sim.ScheduleArg(des.Time(r.p.LockCritFrac*s.exec), svcLockDone, s)
}

// svcLockDone releases the lock and completes the locked service.
func svcLockDone(a any) {
	s := a.(*svc)
	s.r.lock.Release()
	s.finish(s.exec + s.r.p.LockOverhead)
}

// finish settles the warm-hit counter, recycles the record and runs the
// paradigm's completion continuation.
func (s *svc) finish(protoExec float64) {
	r := s.r
	if s.warmHit {
		r.warm++
	}
	pkt, proc, done := s.pkt, s.proc, s.done
	r.releaseSvc(s)
	switch done {
	case compLocking:
		r.completeLocking(pkt, proc, protoExec)
	case compOverflow:
		r.completeOverflow(pkt, proc, protoExec)
	default:
		r.completeIPS(pkt, proc, protoExec)
	}
}

// beginService runs pkt on proc. fromIdle marks a processor that was
// running the background workload (its idle displacement is settled and
// the preemption cost applies). locked selects the shared-stack path,
// which pays the lock overhead and serializes its critical section; done
// selects the completion continuation.
func (r *runner) beginService(pkt sched.Packet, proc int, fromIdle, locked bool, done completionKind) {
	now := r.sim.Now()
	ps := &r.procs[proc]
	if ps.busy && fromIdle {
		panic("sim: placed packet on busy processor")
	}
	if ps.down {
		panic("sim: placed packet on down processor")
	}
	preempt := 0.0
	if fromIdle {
		// Settle the idle period's background displacement.
		ps.dispNP += r.p.Background.Intensity * r.rate * float64(now-ps.idleSince)
		ps.busy = true
		ps.busySince = now
		ps.util.Set(float64(now), 1)
		if r.rec != nil {
			r.emit(obs.Event{T: float64(now), Kind: obs.KindProcBusy,
				Proc: proc, Stream: -1, Entity: -1, Dur: float64(now - ps.idleSince)})
		}
		if r.p.Background.Intensity > 0 {
			preempt = r.p.Background.PreemptCost
		}
	}

	x := r.xRefs(pkt.Entity, proc)
	texec, f1 := r.exec.ExecTimeF1(x)
	if r.topo != nil {
		texec = r.topoScaled(texec, pkt.Entity, proc)
	}
	exec := texec + r.p.DataTouch
	if ps.slow != 1 {
		// Transient slow-down fault: scale the charged execution. Guarded
		// so fault-free runs multiply nothing and stay bit-identical.
		exec *= ps.slow
	}
	cold := math.IsInf(x, 1)
	if cold {
		r.coldStarts++
	}
	// Warm hits are counted at completion (svc.finish), alongside the
	// service accumulator that forms WarmFraction's denominator, so
	// packets still in flight when the run stops never enter the ratio.
	warmHit := !cold && f1 < 0.5
	migrated := false
	if last := r.lastProcOf[pkt.Entity]; last >= 0 && last != proc {
		r.migrations++
		migrated = true
	}
	r.queueing.Add(float64(now - pkt.Arrive))
	if r.rec != nil {
		t := float64(now)
		r.emit(obs.Event{T: t, Kind: obs.KindDispatch, Proc: proc,
			Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq,
			Dur: float64(now - pkt.Arrive)})
		var flags obs.Flags
		if cold {
			flags |= obs.FlagCold
		}
		if migrated {
			flags |= obs.FlagMigrated
		}
		if locked {
			flags |= obs.FlagLocked
		}
		if warmHit {
			flags |= obs.FlagWarm
		}
		r.emit(obs.Event{T: t, Kind: obs.KindExecStart, Proc: proc,
			Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq,
			Dur: exec, Val: x, Flags: flags})
		if cold {
			r.emit(obs.Event{T: t, Kind: obs.KindColdStart, Proc: proc,
				Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
		}
		if migrated {
			r.emit(obs.Event{T: t, Kind: obs.KindMigration, Proc: proc,
				Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
		}
	}

	sv := r.acquireSvc()
	sv.pkt, sv.proc, sv.exec, sv.warmHit, sv.done = pkt, proc, exec, warmHit, done
	if locked {
		nonCrit := preempt + r.p.LockOverhead + (1-r.p.LockCritFrac)*exec
		r.sim.ScheduleArg(des.Time(nonCrit), svcLockRequest, sv)
		return
	}
	r.sim.ScheduleArg(des.Time(preempt+exec), svcFinishDirect, sv)
}

// settleCompletion updates displacement marks, affinity state and delay
// statistics common to both paradigms. protoExec is the protocol
// execution time that displaces other footprints (spin wait excluded).
func (r *runner) settleCompletion(pkt sched.Packet, proc int, protoExec float64) {
	now := r.sim.Now()
	ps := &r.procs[proc]
	ps.dispProto += r.rate * protoExec
	ps.seen[pkt.Entity] = true
	ps.markNP[pkt.Entity] = ps.dispNP
	ps.markProto[pkt.Entity] = ps.dispProto
	r.lastProcOf[pkt.Entity] = proc
	if !ps.down {
		// A completion draining off a failed processor must not refresh
		// affinity: its cache is lost at recovery, and ThreadPools would
		// otherwise migrate the stream's home onto the dead processor.
		if r.p.Paradigm == Locking {
			r.disp.RanOn(pkt.Entity, proc)
		} else {
			r.sdisp.RanOn(pkt.Entity, proc)
		}
	}
	r.service.Add(protoExec)
	if r.rec != nil {
		r.emit(obs.Event{T: float64(now), Kind: obs.KindExecEnd, Proc: proc,
			Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq, Dur: protoExec})
	}

	// Reordering: a completion below its stream's watermark finished
	// after a later arrival of the same stream already did. Distance is
	// measured in the stream's own arrival numbering.
	if pkt.StreamSeq > r.streamMaxDone[pkt.Stream] {
		r.streamMaxDone[pkt.Stream] = pkt.StreamSeq
	} else {
		r.reordered++
		if r.streamReordered == nil {
			r.streamReordered = make(map[int]uint64)
		}
		r.streamReordered[pkt.Stream]++
		if d := r.streamMaxDone[pkt.Stream] - pkt.StreamSeq; d > r.maxReorderDist {
			r.maxReorderDist = d
		}
	}

	if pkt.Arrive >= r.p.Warmup {
		delay := float64(now - pkt.Arrive)
		r.delays.Add(delay)
		r.delayAcc.Add(delay)
		r.delayHist.Add(delay)
		r.perStream[pkt.Stream].Add(delay)
		r.measured++
		if r.measured >= r.p.MeasuredPackets {
			if r.p.TargetRelCI <= 0 ||
				r.delays.RelativeHalfWidth() <= r.p.TargetRelCI {
				r.sim.Stop()
			}
		}
	}
}

// goIdle marks a processor idle and lets the background workload resume.
func (r *runner) goIdle(proc int) {
	now := r.sim.Now()
	ps := &r.procs[proc]
	ps.busy = false
	ps.idleSince = now
	ps.util.Set(float64(now), 0)
	if r.rec != nil {
		r.emit(obs.Event{T: float64(now), Kind: obs.KindProcIdle,
			Proc: proc, Stream: -1, Entity: -1, Dur: float64(now - ps.busySince)})
	}
}

func (r *runner) completeLocking(pkt sched.Packet, proc int, protoExec float64) {
	r.settleCompletion(pkt, proc, protoExec)
	if r.procs[proc].down {
		// The drain is complete: park, and let live processors pick up
		// anything that queued behind this one.
		r.goIdle(proc)
		r.kickIdle()
		return
	}
	if next, ok := r.disp.Dispatch(proc); ok {
		if r.drec != nil || r.over != nil {
			r.choseDispatch(next, proc)
		}
		r.beginService(next, proc, false, true, compLocking)
		return
	}
	r.goIdle(proc)
}

// completeOverflow finishes a Hybrid spilled packet and picks the
// processor's next work: a ready stack first (affinity), then another
// spilled packet.
func (r *runner) completeOverflow(pkt sched.Packet, proc int, protoExec float64) {
	r.settleCompletion(pkt, proc, protoExec)
	if r.procs[proc].down {
		r.goIdle(proc)
		r.kickIdle()
		return
	}
	r.dispatchHybrid(proc)
}

// dispatchHybrid finds the next work item for an idle-going processor
// under the Hybrid paradigm.
func (r *runner) dispatchHybrid(proc int) {
	if next := r.sdisp.DispatchStack(proc); next >= 0 {
		r.stacks[next].queued = false
		if r.drec != nil || r.over != nil {
			r.choseDispatch(r.stacks[next].q.front(), proc)
		}
		r.startStack(next, proc, false)
		return
	}
	if r.overflow.len() > 0 {
		pkt := r.overflow.pop()
		if r.drec != nil || r.over != nil {
			r.choseDispatch(pkt, proc)
		}
		r.beginService(pkt, proc, false, true, compOverflow)
		return
	}
	r.goIdle(proc)
}

func (r *runner) completeIPS(pkt sched.Packet, proc int, protoExec float64) {
	r.settleCompletion(pkt, proc, protoExec)
	k := pkt.Entity
	st := &r.stacks[k]
	st.q.pop()
	if r.procs[proc].down {
		// The drain is complete: the stack rejoins the ready queue (its
		// new wire after re-homing) if it still has work, and the
		// processor parks.
		st.running = false
		if st.q.len() > 0 {
			st.queued = true
			r.sdisp.EnqueueStack(k)
		}
		r.goIdle(proc)
		r.kickIdle()
		return
	}
	if st.q.len() > 0 {
		// The stack still has work, but packet-level fairness applies:
		// if another ready stack is waiting for this processor, yield
		// to it and rejoin the ready queue; otherwise keep running.
		if next := r.sdisp.DispatchStack(proc); next >= 0 {
			st.running = false
			st.queued = true
			r.sdisp.EnqueueStack(k)
			r.stacks[next].queued = false
			if r.drec != nil || r.over != nil {
				r.choseDispatch(r.stacks[next].q.front(), proc)
			}
			r.startStack(next, proc, false)
			return
		}
		// Continuing the same stack on the same processor is not a
		// decision: there was no alternative to weigh.
		r.beginService(st.q.front(), proc, false, false, compIPS)
		return
	}
	st.running = false
	if r.p.Paradigm == Hybrid {
		r.dispatchHybrid(proc)
		return
	}
	if next := r.sdisp.DispatchStack(proc); next >= 0 {
		r.stacks[next].queued = false
		if r.drec != nil || r.over != nil {
			r.choseDispatch(r.stacks[next].q.front(), proc)
		}
		r.startStack(next, proc, false)
		return
	}
	r.goIdle(proc)
}

func (r *runner) startStack(k, proc int, fromIdle bool) {
	st := &r.stacks[k]
	if st.q.len() == 0 {
		panic("sim: started an empty stack")
	}
	st.running = true
	st.queued = false
	r.beginService(st.q.front(), proc, fromIdle, false, compIPS)
}

func (r *runner) queuedPackets() int {
	if r.p.Paradigm == Locking {
		return r.disp.Queued()
	}
	n := r.overflow.len()
	for i := range r.stacks {
		q := r.stacks[i].q.len()
		if r.stacks[i].running && q > 0 {
			q-- // the head is in service, not waiting
		}
		n += q
	}
	return n
}

// inFlight returns the number of packets in service right now: every
// busy processor serves exactly one packet.
func (r *runner) inFlight() int {
	n := 0
	for i := range r.procs {
		if r.procs[i].busy {
			n++
		}
	}
	return n
}

func (r *runner) results() Results {
	now := r.sim.Now()
	measureSpan := now - r.p.Warmup
	offered := float64(r.p.Streams) * r.p.Arrival.Rate()
	if r.p.ArrivalPerStream != nil {
		offered = 0
		for _, spec := range r.p.ArrivalPerStream {
			offered += spec.Rate()
		}
	}
	res := Results{
		Paradigm:       r.p.Paradigm.String(),
		Policy:         r.p.Policy.String(),
		OfferedRate:    offered,
		Completed:      uint64(r.measured),
		CompletedTotal: r.service.N(),
		Arrivals:       r.arrivals,
		MeanDelay:      r.delayAcc.Mean(),
		DelayCI:        r.delays.HalfWidth(),
		MaxDelay:       r.delayAcc.Max(),
		MeanService:    r.service.Mean(),
		MeanQueueing:   r.queueing.Mean(),
		MeanLockWait:   r.lockWait.Mean(),
		ColdStarts:     r.coldStarts,
		Migrations:     r.migrations,
		Spills:         r.spills,
		QueueAtEnd:     r.queuedPackets(),
		InFlightAtEnd:  r.inFlight(),
		SimTime:        now,

		EventsFired:       r.sim.Fired(),
		RecorderEvents:    r.emitted,
		DecisionsRecorded: r.decisions,

		ReorderedTotal:     r.reordered,
		MaxReorderDistance: r.maxReorderDist,
		PerStreamReordered: r.streamReordered, // runner-owned; nil when in order
	}
	res.P95Delay, res.P95Clamped = r.delayHist.QuantileClamped(0.95)
	res.DelayOverflow = r.delayHist.OverflowFraction()
	res.Dropped = r.dropped
	if r.arrivals > 0 {
		res.DropFraction = float64(r.dropped) / float64(r.arrivals)
	}
	if now > 0 {
		res.GoodputPPS = float64(r.service.N()) / now.Seconds()
	}
	if !r.p.Faults.Empty() {
		res.PerProcDownTime = make([]float64, len(r.procs))
		for i := range r.procs {
			dt := r.procs[i].downTime
			if r.procs[i].down {
				dt += float64(now - r.procs[i].downSince)
			}
			res.PerProcDownTime[i] = dt
		}
	}
	totalEventsFired.Add(r.sim.Fired())
	if r.p.Paradigm == Locking {
		res.AffinityHits, res.Placements = r.disp.AffinityStats()
	} else {
		res.AffinityHits, res.Placements = r.sdisp.AffinityStats()
	}
	if total := r.service.N(); total > 0 {
		res.WarmFraction = float64(r.warm) / float64(total)
	}
	if measureSpan > 0 && r.measured > 0 {
		res.Throughput = float64(r.measured) / measureSpan.Seconds()
	}
	var util float64
	res.PerProcBusyTime = make([]float64, len(r.procs))
	for i := range r.procs {
		m := r.procs[i].util.Mean(float64(now))
		util += m
		res.PerProcBusyTime[i] = m * float64(now)
	}
	res.Utilization = util / float64(len(r.procs))
	res.Saturated = r.measured < r.p.MeasuredPackets ||
		res.QueueAtEnd > 20*r.p.Processors
	res.PerStreamDelay = make([]float64, len(r.perStream))
	for i := range r.perStream {
		res.PerStreamDelay[i] = r.perStream[i].Mean()
	}
	res.DelayFairness = JainIndex(res.PerStreamDelay)
	if r.tsink != nil {
		res.Trace = r.tsink.entries
	}
	if m := obs.FindMetrics(r.p.Recorder); m != nil {
		snap := m.Snapshot()
		res.Obs = &snap
	}
	return res
}

// JainIndex returns Jain's fairness index over per-stream mean delays:
// (Σx)² / (n·Σx²) — 1 when all streams see equal delay, → 1/n when one
// stream absorbs everything. Streams with no measured packets are
// excluded.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}
