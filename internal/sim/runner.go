package sim

import (
	"fmt"
	"math"

	"affinity/internal/core"
	"affinity/internal/des"
	"affinity/internal/sched"
	"affinity/internal/stats"
)

// procState tracks one processor's displacement counters and occupancy.
//
// dispNP accumulates displacing references issued by the non-protocol
// workload (idle periods, scaled by intensity V); dispProto accumulates
// references issued by protocol execution. Each footprint entity marks
// both counters when it completes on the processor; the displacement it
// has suffered since is the counters' growth, with other-protocol growth
// discounted by the shared-code fraction.
type procState struct {
	busy      bool
	idleSince des.Time
	dispNP    float64
	dispProto float64
	markNP    map[int]float64
	markProto map[int]float64
	util      stats.TimeWeighted
}

// stackState tracks one IPS stack.
type stackState struct {
	q       []sched.Packet
	running bool
	queued  bool
}

type runner struct {
	p     Params
	sim   *des.Simulator
	model *core.Model
	rate  float64 // displacing references per µs of full-speed execution

	disp  sched.PacketDispatcher // Locking
	sdisp sched.StackDispatcher  // IPS
	lock  *des.Resource          // Locking: the shared-stack lock

	procs      []procState
	stacks     []stackState
	overflow   []sched.Packet // Hybrid: packets spilled to the shared path
	rng        *des.RNG       // Hybrid overflow placement
	lastProcOf map[int]int    // entity → processor of previous completion

	delays    *stats.BatchMeans
	delayAcc  stats.Accumulator
	delayHist *stats.Histogram
	perStream []stats.Accumulator
	service   stats.Accumulator
	queueing  stats.Accumulator
	lockWait  stats.Accumulator

	warm       uint64
	coldStarts uint64
	migrations uint64
	measured   int
	arrivals   uint64
	trace      []TraceEntry
}

func newRunner(p Params) *runner {
	r := &runner{
		p:          p,
		sim:        des.NewSimulator(),
		model:      p.Model,
		rate:       p.Model.Platform.RefsPerMicrosecond(),
		procs:      make([]procState, p.Processors),
		lastProcOf: make(map[int]int),
		delays:     stats.NewBatchMeans(p.BatchSize),
		delayHist:  stats.NewHistogram(0, 100_000, 10_000), // 10 µs bins to 100 ms
		perStream:  make([]stats.Accumulator, p.Streams),
	}
	for i := range r.procs {
		r.procs[i].markNP = make(map[int]float64)
		r.procs[i].markProto = make(map[int]float64)
		r.procs[i].util.Set(0, 0)
	}
	schedRNG := des.Stream(p.Seed, "sched")
	if p.Paradigm == Locking {
		r.disp = sched.NewPacketDispatcherLookahead(p.Policy, p.Processors, schedRNG, p.MRULookahead)
		r.lock = des.NewResource(r.sim, 1)
	} else {
		r.sdisp = sched.NewStackDispatcherLookahead(p.Policy, p.Stacks, p.Processors, schedRNG, p.MRULookahead)
		r.stacks = make([]stackState, p.Stacks)
		if p.Paradigm == Hybrid {
			r.lock = des.NewResource(r.sim, 1)
			r.rng = des.Stream(p.Seed, "hybrid-overflow")
		}
	}
	return r
}

// start schedules every stream's arrival process.
func (r *runner) start() {
	for s := 0; s < r.p.Streams; s++ {
		s := s
		spec := r.p.Arrival
		if r.p.ArrivalPerStream != nil {
			spec = r.p.ArrivalPerStream[s]
		}
		proc := spec.Build(des.Stream(r.p.Seed, fmt.Sprintf("arrivals-%d", s)))
		var pending int
		var fire func()
		fire = func() {
			for j := 0; j < pending; j++ {
				r.arrive(s)
			}
			d, b := proc.Next()
			pending = b
			r.sim.Schedule(d, fire)
		}
		d, b := proc.Next()
		pending = b
		r.sim.Schedule(d, fire)
	}
}

// idleProcs returns the processors currently free of protocol work.
func (r *runner) idleProcs() []int {
	idle := make([]int, 0, len(r.procs))
	for i := range r.procs {
		if !r.procs[i].busy {
			idle = append(idle, i)
		}
	}
	return idle
}

func (r *runner) arrive(stream int) {
	r.arrivals++
	pkt := sched.Packet{Stream: stream, Entity: r.p.entityOf(stream), Arrive: r.sim.Now()}
	if r.p.Paradigm == Locking {
		if idle := r.idleProcs(); len(idle) > 0 {
			if proc := r.disp.PickProcessor(pkt, idle); proc >= 0 {
				r.beginService(pkt, proc, true, true, r.completeLocking)
				return
			}
		}
		r.disp.Enqueue(pkt)
		return
	}
	// IPS / Hybrid: the packet joins its stack's queue; a newly ready
	// stack is placed on a processor or queued.
	k := pkt.Entity
	st := &r.stacks[k]
	if r.p.Paradigm == Hybrid && (st.running || st.queued) && len(st.q) >= r.p.HybridOverflow {
		// The stack is backed up: spill to the shared locking path,
		// which any idle processor may serve concurrently.
		if idle := r.idleProcs(); len(idle) > 0 {
			proc := idle[r.rng.Intn(len(idle))]
			r.beginService(pkt, proc, true, true, r.completeOverflow)
			return
		}
		r.overflow = append(r.overflow, pkt)
		return
	}
	st.q = append(st.q, pkt)
	if st.running || st.queued {
		return
	}
	if idle := r.idleProcs(); len(idle) > 0 {
		if proc := r.sdisp.PickProcessor(k, idle); proc >= 0 {
			r.startStack(k, proc, true)
			return
		}
	}
	st.queued = true
	r.sdisp.EnqueueStack(k)
}

// xRefs returns the displacing references entity e has suffered on proc
// since it last completed there, or +Inf if it never ran there.
func (r *runner) xRefs(e, proc int) float64 {
	ps := &r.procs[proc]
	mNP, ok := ps.markNP[e]
	if !ok {
		return math.Inf(1)
	}
	dNP := ps.dispNP - mNP
	dProto := ps.dispProto - ps.markProto[e]
	return dNP + (1-r.p.CodeSharedFrac)*dProto
}

// complete is a service-completion continuation: it receives the packet,
// the processor, and the protocol execution time that displaces other
// footprints.
type complete func(pkt sched.Packet, proc int, protoExec float64)

// beginService runs pkt on proc. fromIdle marks a processor that was
// running the background workload (its idle displacement is settled and
// the preemption cost applies). locked selects the shared-stack path,
// which pays the lock overhead and serializes its critical section; done
// is invoked at completion.
func (r *runner) beginService(pkt sched.Packet, proc int, fromIdle, locked bool, done complete) {
	now := r.sim.Now()
	ps := &r.procs[proc]
	if ps.busy && fromIdle {
		panic("sim: placed packet on busy processor")
	}
	preempt := 0.0
	if fromIdle {
		// Settle the idle period's background displacement.
		ps.dispNP += r.p.Background.Intensity * r.rate * float64(now-ps.idleSince)
		ps.busy = true
		ps.util.Set(float64(now), 1)
		if r.p.Background.Intensity > 0 {
			preempt = r.p.Background.PreemptCost
		}
	}

	x := r.xRefs(pkt.Entity, proc)
	exec := r.model.ExecTime(x) + r.p.DataTouch
	if math.IsInf(x, 1) {
		r.coldStarts++
	} else if r.model.F1(x) < 0.5 {
		r.warm++
	}
	migrated := false
	if last, ok := r.lastProcOf[pkt.Entity]; ok && last != proc {
		r.migrations++
		migrated = true
	}
	r.queueing.Add(float64(now - pkt.Arrive))
	if len(r.trace) < r.p.TraceN {
		r.trace = append(r.trace, TraceEntry{
			Start: now, Stream: pkt.Stream, Entity: pkt.Entity, Processor: proc,
			Queued: now - pkt.Arrive, XRefs: x, Exec: exec, Migrated: migrated,
		})
	}

	if locked {
		nonCrit := preempt + r.p.LockOverhead + (1-r.p.LockCritFrac)*exec
		crit := r.p.LockCritFrac * exec
		r.sim.Schedule(des.Time(nonCrit), func() {
			requested := r.sim.Now()
			r.lock.Acquire(func() {
				r.lockWait.Add(float64(r.sim.Now() - requested))
				r.sim.Schedule(des.Time(crit), func() {
					r.lock.Release()
					done(pkt, proc, exec+r.p.LockOverhead)
				})
			})
		})
		return
	}
	r.sim.Schedule(des.Time(preempt+exec), func() {
		done(pkt, proc, exec)
	})
}

// settleCompletion updates displacement marks, affinity state and delay
// statistics common to both paradigms. protoExec is the protocol
// execution time that displaces other footprints (spin wait excluded).
func (r *runner) settleCompletion(pkt sched.Packet, proc int, protoExec float64) {
	now := r.sim.Now()
	ps := &r.procs[proc]
	ps.dispProto += r.rate * protoExec
	ps.markNP[pkt.Entity] = ps.dispNP
	ps.markProto[pkt.Entity] = ps.dispProto
	r.lastProcOf[pkt.Entity] = proc
	if r.p.Paradigm == Locking {
		r.disp.RanOn(pkt.Entity, proc)
	} else {
		r.sdisp.RanOn(pkt.Entity, proc)
	}
	r.service.Add(protoExec)

	if pkt.Arrive >= r.p.Warmup {
		delay := float64(now - pkt.Arrive)
		r.delays.Add(delay)
		r.delayAcc.Add(delay)
		r.delayHist.Add(delay)
		r.perStream[pkt.Stream].Add(delay)
		r.measured++
		if r.measured >= r.p.MeasuredPackets {
			if r.p.TargetRelCI <= 0 ||
				r.delays.RelativeHalfWidth() <= r.p.TargetRelCI {
				r.sim.Stop()
			}
		}
	}
}

// goIdle marks a processor idle and lets the background workload resume.
func (r *runner) goIdle(proc int) {
	ps := &r.procs[proc]
	ps.busy = false
	ps.idleSince = r.sim.Now()
	ps.util.Set(float64(r.sim.Now()), 0)
}

func (r *runner) completeLocking(pkt sched.Packet, proc int, protoExec float64) {
	r.settleCompletion(pkt, proc, protoExec)
	if next, ok := r.disp.Dispatch(proc); ok {
		r.beginService(next, proc, false, true, r.completeLocking)
		return
	}
	r.goIdle(proc)
}

// completeOverflow finishes a Hybrid spilled packet and picks the
// processor's next work: a ready stack first (affinity), then another
// spilled packet.
func (r *runner) completeOverflow(pkt sched.Packet, proc int, protoExec float64) {
	r.settleCompletion(pkt, proc, protoExec)
	r.dispatchHybrid(proc)
}

// dispatchHybrid finds the next work item for an idle-going processor
// under the Hybrid paradigm.
func (r *runner) dispatchHybrid(proc int) {
	if next := r.sdisp.DispatchStack(proc); next >= 0 {
		r.stacks[next].queued = false
		r.startStack(next, proc, false)
		return
	}
	if len(r.overflow) > 0 {
		pkt := r.overflow[0]
		r.overflow = r.overflow[1:]
		r.beginService(pkt, proc, false, true, r.completeOverflow)
		return
	}
	r.goIdle(proc)
}

func (r *runner) completeIPS(pkt sched.Packet, proc int, protoExec float64) {
	r.settleCompletion(pkt, proc, protoExec)
	k := pkt.Entity
	st := &r.stacks[k]
	st.q = st.q[1:]
	if len(st.q) > 0 {
		// The stack still has work, but packet-level fairness applies:
		// if another ready stack is waiting for this processor, yield
		// to it and rejoin the ready queue; otherwise keep running.
		if next := r.sdisp.DispatchStack(proc); next >= 0 {
			st.running = false
			st.queued = true
			r.sdisp.EnqueueStack(k)
			r.stacks[next].queued = false
			r.startStack(next, proc, false)
			return
		}
		r.beginService(st.q[0], proc, false, false, r.completeIPS)
		return
	}
	st.running = false
	if r.p.Paradigm == Hybrid {
		r.dispatchHybrid(proc)
		return
	}
	if next := r.sdisp.DispatchStack(proc); next >= 0 {
		r.stacks[next].queued = false
		r.startStack(next, proc, false)
		return
	}
	r.goIdle(proc)
}

func (r *runner) startStack(k, proc int, fromIdle bool) {
	st := &r.stacks[k]
	if len(st.q) == 0 {
		panic("sim: started an empty stack")
	}
	st.running = true
	st.queued = false
	r.beginService(st.q[0], proc, fromIdle, false, r.completeIPS)
}

func (r *runner) queuedPackets() int {
	if r.p.Paradigm == Locking {
		return r.disp.Queued()
	}
	n := len(r.overflow)
	for i := range r.stacks {
		q := len(r.stacks[i].q)
		if r.stacks[i].running && q > 0 {
			q-- // the head is in service, not waiting
		}
		n += q
	}
	return n
}

func (r *runner) results() Results {
	now := r.sim.Now()
	measureSpan := now - r.p.Warmup
	offered := float64(r.p.Streams) * r.p.Arrival.Rate()
	if r.p.ArrivalPerStream != nil {
		offered = 0
		for _, spec := range r.p.ArrivalPerStream {
			offered += spec.Rate()
		}
	}
	res := Results{
		Paradigm:     r.p.Paradigm.String(),
		Policy:       r.p.Policy.String(),
		OfferedRate:  offered,
		Completed:    uint64(r.measured),
		Arrivals:     r.arrivals,
		MeanDelay:    r.delayAcc.Mean(),
		DelayCI:      r.delays.HalfWidth(),
		P95Delay:     r.delayHist.Quantile(0.95),
		MaxDelay:     r.delayAcc.Max(),
		MeanService:  r.service.Mean(),
		MeanQueueing: r.queueing.Mean(),
		MeanLockWait: r.lockWait.Mean(),
		ColdStarts:   r.coldStarts,
		Migrations:   r.migrations,
		QueueAtEnd:   r.queuedPackets(),
		SimTime:      now,
	}
	if total := r.service.N(); total > 0 {
		res.WarmFraction = float64(r.warm) / float64(total)
	}
	if measureSpan > 0 && r.measured > 0 {
		res.Throughput = float64(r.measured) / measureSpan.Seconds()
	}
	var util float64
	for i := range r.procs {
		util += r.procs[i].util.Mean(float64(now))
	}
	res.Utilization = util / float64(len(r.procs))
	res.Saturated = r.measured < r.p.MeasuredPackets ||
		res.QueueAtEnd > 20*r.p.Processors
	res.PerStreamDelay = make([]float64, len(r.perStream))
	for i := range r.perStream {
		res.PerStreamDelay[i] = r.perStream[i].Mean()
	}
	res.DelayFairness = jainIndex(res.PerStreamDelay)
	res.Trace = r.trace
	return res
}

// jainIndex returns Jain's fairness index over per-stream mean delays:
// (Σx)² / (n·Σx²) — 1 when all streams see equal delay, → 1/n when one
// stream absorbs everything. Streams with no measured packets are
// excluded.
func jainIndex(xs []float64) float64 {
	var sum, sumSq float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}
