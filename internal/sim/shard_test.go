package sim

import (
	"math"
	"reflect"
	"testing"

	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/sched"
	"affinity/internal/topo"
	"affinity/internal/traffic"
	"affinity/internal/workload"
)

// The sharded runner's acceptance story is test-first: Params.Shards
// may change how a run executes (K pipeline workers precomputing
// arrival draws) but never what it computes. These tests hold
// bit-identical Results against the K=1 runner over the policy ×
// fault-plan × workload-spec matrix, re-assert the PR-3/PR-4
// invariants under K>1, and give the -race runs a concurrent sweep.

// shardCase is one point of the differential matrix.
type shardCase struct {
	name string
	p    Params
}

func shardMatrix() []shardCase {
	combos := []struct {
		paradigm Paradigm
		policy   sched.Kind
	}{
		{Locking, sched.FCFS},
		{Locking, sched.MRU},
		{Locking, sched.ThreadPools},
		{IPS, sched.IPSWired},
		{IPS, sched.IPSMRU},
		{Hybrid, sched.IPSMRU},
	}
	arrivals := []struct {
		name  string
		apply func(*Params)
	}{
		{"poisson", func(p *Params) { p.Arrival = traffic.Poisson{PacketsPerSec: 1500} }},
		{"batch", func(p *Params) { p.Arrival = traffic.Batch{PacketsPerSec: 1200, MeanBurst: 4} }},
		{"zipf-spec", func(p *Params) {
			p.Streams = 0
			p.Workload = &workload.Spec{Classes: []workload.Class{
				{Name: "web", Model: "poisson", Streams: 6, RatePPS: 4000, Zipf: 1.2},
				{Name: "cbr", Model: "cbr", Streams: 2, RatePPS: 300, OnUS: 20000, OffUS: 40000},
			}}
		}},
	}
	plans := []struct {
		name  string
		apply func(*Params)
	}{
		{"healthy", func(*Params) {}},
		{"faulted", func(p *Params) {
			p.Faults = downWindow().WithLoss(150*des.Millisecond, 0.02)
			p.MaxQueueDepth = 48
		}},
	}
	var cases []shardCase
	for i, c := range combos {
		// Pair each paradigm/policy with one arrival kind and cycle the
		// fault plans, so every axis value appears without running the
		// full cross product on every test invocation.
		arr := arrivals[i%len(arrivals)]
		for _, pl := range plans {
			p := quick(c.paradigm, c.policy)
			p.MeasuredPackets = 1200
			arr.apply(&p)
			pl.apply(&p)
			cases = append(cases, shardCase{
				name: c.paradigm.String() + "/" + c.policy.String() + "/" + arr.name + "/" + pl.name,
				p:    p,
			})
		}
	}
	// NUMA + hash-dispatch extension: shard invariance must also hold
	// when the topology charges cross-socket transients and when the
	// dispatcher is hash-based — including a Flow Director run bursty
	// enough that rebalancing (and therefore reordering) actually fires
	// under K>1.
	numa := &topo.Topology{Sockets: 2, CoresPerSocket: 4,
		SameSocketTransient: 1.1, CrossSocketTransient: 1.8}
	for _, k := range []sched.Kind{sched.MRU, sched.RSS, sched.FlowDirector} {
		p := quick(Locking, k)
		p.Processors = 8
		p.Topology = numa
		p.Arrival = traffic.Batch{PacketsPerSec: 2500, MeanBurst: 16}
		p.MeasuredPackets = 1200
		cases = append(cases, shardCase{
			name: "numa/" + k.String() + "/batch/healthy",
			p:    p,
		})
	}
	return cases
}

// TestShardEquivalenceMatrix is the differential runner test: for every
// matrix point, Results at K ∈ {2, 4, 8} must equal the sequential
// runner's bit for bit — reflect.DeepEqual over the full Results
// struct, slices and all.
func TestShardEquivalenceMatrix(t *testing.T) {
	for _, tc := range shardMatrix() {
		base := Run(tc.p)
		if base.Arrivals == 0 {
			t.Fatalf("%s: matrix point saw no arrivals", tc.name)
		}
		for _, k := range []int{2, 4, 8} {
			p := tc.p
			p.Shards = k
			got := Run(p)
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%s: K=%d diverged from the sequential runner\n seq: %+v\n K=%d: %+v",
					tc.name, k, base, k, got)
			}
		}
	}
}

// TestShardedConservation re-asserts the PR-4 four-term ledger under
// K>1: arrivals = completed + in-flight + queued + dropped on every
// conservation sweep point, now with the arrival pipeline on.
func TestShardedConservation(t *testing.T) {
	for _, p := range conservationCases() {
		p.Shards = 4
		if err := CheckInvariants(Run(p)); err != nil {
			t.Error(err)
		}
	}
}

// TestShardedEmptyFaultPlanNoOp composes shard-count invariance with
// the PR-4 no-op invariant: an empty plan and a zero queue bound under
// K=4 reproduce the healthy sequential run bit for bit.
func TestShardedEmptyFaultPlanNoOp(t *testing.T) {
	p := quick(Locking, sched.MRU)
	base := Run(p)
	p.Shards = 4
	p.Faults = &faults.Plan{}
	p.MaxQueueDepth = 0
	if got := Run(p); !reflect.DeepEqual(base, got) {
		t.Error("empty fault plan + K=4 diverged from the healthy sequential run")
	}
}

// TestShardedZeroReloadTransientEquivalence composes shard-count
// invariance with the PR-3 E8 invariant: with a flat cost model,
// MRU and FCFS coincide — and they must still coincide when both run
// through the K=4 pipeline.
func TestShardedZeroReloadTransientEquivalence(t *testing.T) {
	run := func(policy sched.Kind) Results {
		p := quick(Locking, policy)
		p.Model = flatModel()
		p.Arrival = traffic.Poisson{PacketsPerSec: 2000}
		p.MeasuredPackets = 5000
		p.Shards = 4
		return Run(p)
	}
	fcfs := run(sched.FCFS)
	mru := run(sched.MRU)
	if fcfs.MeanService != mru.MeanService {
		t.Errorf("flat model, K=4: MeanService FCFS %v != MRU %v",
			fcfs.MeanService, mru.MeanService)
	}
	relDiff := math.Abs(fcfs.MeanDelay-mru.MeanDelay) /
		math.Max(fcfs.MeanDelay, mru.MeanDelay)
	if relDiff > 0.005 {
		t.Errorf("flat model, K=4: MeanDelay FCFS %v vs MRU %v (rel diff %v)",
			fcfs.MeanDelay, mru.MeanDelay, relDiff)
	}
}

// TestShardedSideEffectingSpecsFallBack: a recording run must capture
// exactly the draws it consumes, so Shards>1 silently falls back to
// inline draws — and the recorded trace stays identical to the
// sequential run's.
func TestShardedRecordFallsBack(t *testing.T) {
	record := func(k int) *workload.Trace {
		p := quick(Locking, sched.MRU)
		p.MeasuredPackets = 600
		per := make([]traffic.Spec, 8)
		for i := range per {
			per[i] = p.Arrival
		}
		wrapped, trace := workload.Record(per)
		p.ArrivalPerStream = wrapped
		p.Shards = k
		Run(p)
		return trace
	}
	seq, sharded := record(0), record(4)
	if !reflect.DeepEqual(seq, sharded) {
		t.Error("recorded trace differs between sequential and Shards=4 runs")
	}
}

// TestShardedPoolRace is the -race workload: a concurrent sweep
// (sim.Pool × K>1), many runners with live pipelines at once, checked
// against the sequential results.
func TestShardedPoolRace(t *testing.T) {
	params := make([]Params, 6)
	for i := range params {
		p := quick(Locking, sched.MRU)
		p.Seed = int64(i + 1)
		p.MeasuredPackets = 600
		params[i] = p
	}
	want := make([]Results, len(params))
	for i, p := range params {
		want[i] = Run(p)
	}
	pl := NewPool(4)
	pl.SetShards(4)
	got := pl.RunAll(params)
	if !reflect.DeepEqual(got, want) {
		t.Error("Pool(4)×Shards=4 sweep diverged from sequential runs")
	}
}

// TestPoolSetShardsRespectsExplicitCount: Params that set their own
// shard count keep it through the pool override.
func TestPoolSetShardsRespectsExplicitCount(t *testing.T) {
	p := quick(Locking, sched.MRU)
	p.MeasuredPackets = 300
	base := Run(p)
	p.Shards = 2
	pl := NewPool(1)
	pl.SetShards(8)
	if got := pl.Run(p); !reflect.DeepEqual(base, got) {
		t.Error("explicit Shards=2 through SetShards(8) pool diverged")
	}
}

// TestShardsValidation: negative counts are rejected, huge counts are
// harmless (clamped to the stream count by the pipeline).
func TestShardsValidation(t *testing.T) {
	p := quick(Locking, sched.MRU).WithDefaults()
	p.Shards = -1
	if err := p.Validate(); err == nil {
		t.Error("negative shard count validated")
	}
	p = quick(Locking, sched.MRU)
	base := Run(p)
	p.Shards = 512 // far beyond the 8 streams
	if got := Run(p); !reflect.DeepEqual(base, got) {
		t.Error("oversized shard count diverged")
	}
}

// FuzzShardEquivalence fuzzes (seed, paradigm/policy/arrival combo,
// shard count, fault plan, queue bound) and asserts bit-identical
// Results against the K=1 runner. The checked-in corpus under
// testdata/fuzz covers each paradigm, a fault plan and a bounded
// queue; CI gives the fuzzer 30s per run on top.
func FuzzShardEquivalence(f *testing.F) {
	f.Add(int64(1), byte(0), byte(0), byte(0), byte(0))
	f.Add(int64(7), byte(4), byte(2), byte(1), byte(16))
	f.Add(int64(42), byte(11), byte(6), byte(2), byte(48))
	f.Add(int64(9), byte(14), byte(1), byte(1), byte(3))
	f.Fuzz(func(t *testing.T, seed int64, combo, shards, fault, qbound byte) {
		policies := []struct {
			paradigm Paradigm
			policy   sched.Kind
		}{
			{Locking, sched.FCFS},
			{Locking, sched.MRU},
			{Locking, sched.ThreadPools},
			{IPS, sched.IPSWired},
			{IPS, sched.IPSMRU},
			{Hybrid, sched.IPSMRU},
		}
		c := policies[int(combo)%len(policies)]
		p := quick(c.paradigm, c.policy)
		p.Seed = seed
		p.MeasuredPackets = 400
		p.MaxTime = 10 * des.Second
		switch (int(combo) / len(policies)) % 3 {
		case 1:
			p.Arrival = traffic.Batch{PacketsPerSec: 1000, MeanBurst: 3}
		case 2:
			p.Streams = 0
			p.Workload = &workload.Spec{Classes: []workload.Class{
				{Name: "w", Model: "poisson", Streams: 5, RatePPS: 3000, Zipf: 1.1},
			}}
		}
		switch int(fault) % 3 {
		case 1:
			p.Faults = downWindow()
		case 2:
			p.Faults = downWindow().WithLoss(150*des.Millisecond, 0.05)
		}
		p.MaxQueueDepth = int(qbound) % 64
		k := 2 + int(shards)%7 // K ∈ [2, 8]

		base := Run(p)
		p.Shards = k
		got := Run(p)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("K=%d diverged from sequential runner\nparams: %+v\n seq: %+v\n shard: %+v",
				k, p, base, got)
		}
	})
}
