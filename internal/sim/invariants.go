package sim

import (
	"fmt"
	"math"
)

// Invariant checkers shared between the DES's own property tests and
// the live backend's differential harness (internal/live): both
// backends produce the same Results shape, and these predicates are the
// part of the contract that must hold exactly — on any backend, any
// paradigm, any fault plan. They return errors instead of taking a
// *testing.T so fuzz targets and non-test callers can use them.

// CheckConservation verifies the 4-term packet-conservation ledger: at
// the instant the run stops, every admitted arrival is either fully
// served, in service on some processor, still queued, or was explicitly
// dropped. No packet is created or lost.
func CheckConservation(res Results) error {
	accounted := res.CompletedTotal + uint64(res.InFlightAtEnd) +
		uint64(res.QueueAtEnd) + res.Dropped
	if res.Arrivals != accounted {
		return fmt.Errorf("%s/%s rate=%v: arrivals %d != completed %d + in-flight %d + queued %d + dropped %d",
			res.Paradigm, res.Policy, res.OfferedRate,
			res.Arrivals, res.CompletedTotal, res.InFlightAtEnd, res.QueueAtEnd, res.Dropped)
	}
	if res.CompletedTotal < res.Completed {
		return fmt.Errorf("%s/%s: measured completions %d exceed total %d",
			res.Paradigm, res.Policy, res.Completed, res.CompletedTotal)
	}
	return nil
}

// CheckAffinityAccounting verifies the affinity bookkeeping: hits never
// exceed placements, the warm fraction is a fraction, and cold starts
// cannot outnumber the packets that actually ran.
func CheckAffinityAccounting(res Results) error {
	if res.AffinityHits > res.Placements {
		return fmt.Errorf("%s/%s: affinity hits %d exceed placements %d",
			res.Paradigm, res.Policy, res.AffinityHits, res.Placements)
	}
	if res.WarmFraction < 0 || res.WarmFraction > 1 {
		return fmt.Errorf("%s/%s: warm fraction %v outside [0,1]",
			res.Paradigm, res.Policy, res.WarmFraction)
	}
	if res.ColdStarts > res.CompletedTotal+uint64(res.InFlightAtEnd) {
		return fmt.Errorf("%s/%s: cold starts %d exceed packets begun %d",
			res.Paradigm, res.Policy, res.ColdStarts, res.CompletedTotal+uint64(res.InFlightAtEnd))
	}
	return nil
}

// CheckSanity verifies cross-field consistency every run must satisfy
// regardless of backend: finite non-negative aggregates, fractions in
// range, and a drop fraction that matches its numerator.
func CheckSanity(res Results) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MeanDelay", res.MeanDelay},
		{"MeanService", res.MeanService},
		{"MeanQueueing", res.MeanQueueing},
		{"MeanLockWait", res.MeanLockWait},
		{"P95Delay", res.P95Delay},
		{"MaxDelay", res.MaxDelay},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("%s/%s: %s = %v, want finite and non-negative",
				res.Paradigm, res.Policy, f.name, f.v)
		}
	}
	if res.Utilization < 0 || res.Utilization > 1+1e-9 {
		return fmt.Errorf("%s/%s: utilization %v outside [0,1]",
			res.Paradigm, res.Policy, res.Utilization)
	}
	if res.DropFraction < 0 || res.DropFraction > 1 {
		return fmt.Errorf("%s/%s: drop fraction %v outside [0,1]",
			res.Paradigm, res.Policy, res.DropFraction)
	}
	if res.Arrivals > 0 {
		want := float64(res.Dropped) / float64(res.Arrivals)
		if math.Abs(res.DropFraction-want) > 1e-12 {
			return fmt.Errorf("%s/%s: drop fraction %v inconsistent with %d/%d",
				res.Paradigm, res.Policy, res.DropFraction, res.Dropped, res.Arrivals)
		}
	}
	if res.MeanDelay > 0 && res.MaxDelay+1e-9 < res.MeanDelay {
		return fmt.Errorf("%s/%s: max delay %v below mean %v",
			res.Paradigm, res.Policy, res.MaxDelay, res.MeanDelay)
	}
	if res.SimTime < 0 {
		return fmt.Errorf("%s/%s: negative sim time %v", res.Paradigm, res.Policy, res.SimTime)
	}
	return nil
}

// CheckInvariants runs every checker and returns the first violation.
func CheckInvariants(res Results) error {
	if err := CheckConservation(res); err != nil {
		return err
	}
	if err := CheckAffinityAccounting(res); err != nil {
		return err
	}
	return CheckSanity(res)
}
