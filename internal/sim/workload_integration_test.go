package sim

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"affinity/internal/des"
	"affinity/internal/sched"
	"affinity/internal/traffic"
	"affinity/internal/workload"
)

func skewSpec() *workload.Spec {
	return &workload.Spec{Name: "itest", Classes: []workload.Class{
		{Name: "web", Model: "poisson", Streams: 6, RatePPS: 4800, Zipf: 1.2},
		{Name: "bulk", Model: "batch", Streams: 2, RatePPS: 1200, MeanBurst: 4},
	}}
}

func TestWorkloadSpecExpansion(t *testing.T) {
	p := Params{Paradigm: Locking, Policy: sched.MRU, Workload: skewSpec(),
		MeasuredPackets: 400, MaxTime: 2 * des.Second}
	d := p.WithDefaults()
	if d.Streams != 8 || len(d.ArrivalPerStream) != 8 {
		t.Fatalf("expanded to %d streams / %d specs, want 8", d.Streams, len(d.ArrivalPerStream))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Defaulting again must be a no-op (Run defaults the already
	// defaulted params a second time).
	dd := d.WithDefaults()
	if dd.Streams != d.Streams || !reflect.DeepEqual(dd.ArrivalPerStream, d.ArrivalPerStream) {
		t.Fatal("WithDefaults is not idempotent over workload expansion")
	}
	r := Run(p)
	if math.Abs(r.OfferedRate-6000) > 1e-6 {
		t.Fatalf("OfferedRate = %v, want the spec aggregate 6000", r.OfferedRate)
	}
	if r.CompletedTotal == 0 {
		t.Fatal("no completions under the workload spec")
	}
}

func TestWorkloadSpecStreamCountConflict(t *testing.T) {
	p := Params{Paradigm: Locking, Policy: sched.MRU, Workload: skewSpec(), Streams: 5}
	err := p.WithDefaults().Validate()
	if err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("Validate = %v, want a stream-count conflict error", err)
	}
}

func TestValidateRejectsInvalidArrivalSpecs(t *testing.T) {
	cases := []Params{
		{Paradigm: Locking, Policy: sched.MRU, Arrival: traffic.Poisson{PacketsPerSec: -1}},
		{Paradigm: Locking, Policy: sched.MRU, Arrival: traffic.Batch{PacketsPerSec: 100, MeanBurst: 0.5}},
		{Paradigm: Locking, Policy: sched.MRU,
			Arrival: traffic.Train{PacketsPerSec: 20000, MeanTrainLen: 100, IntraGap: 100}},
		{Paradigm: Locking, Policy: sched.MRU, Streams: 2,
			ArrivalPerStream: []traffic.Spec{
				traffic.Poisson{PacketsPerSec: 100}, traffic.Poisson{PacketsPerSec: 0}}},
	}
	for i, p := range cases {
		if err := p.WithDefaults().Validate(); err == nil {
			t.Errorf("case %d: invalid arrival spec passed Validate", i)
		}
	}
}

// TestSynthesizeMatchesRunnerDraws pins the cross-package contract that
// workload.Synthesize derives per-stream RNGs exactly as the runner
// does ("arrivals-<i>" substreams of the seed): an offline-synthesized
// trace must equal what a live recording of the same run captures.
func TestSynthesizeMatchesRunnerDraws(t *testing.T) {
	per := []traffic.Spec{
		traffic.Poisson{PacketsPerSec: 2000},
		traffic.Batch{PacketsPerSec: 1000, MeanBurst: 3},
		traffic.Poisson{PacketsPerSec: 500},
	}
	const seed, horizon = 77, 500 * des.Millisecond
	wrapped, recorded := workload.Record(per)
	// MeasuredPackets is set beyond what the horizon can deliver so the
	// run ends exactly at MaxTime and records the full span.
	Run(Params{Paradigm: Locking, Policy: sched.MRU, Streams: 3,
		ArrivalPerStream: wrapped, Seed: seed,
		MeasuredPackets: 1 << 20, Warmup: des.Millisecond, MaxTime: horizon})
	synth := workload.Synthesize(per, seed, horizon)
	for s := range per {
		got, want := recorded.Streams[s], synth.Streams[s]
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		if d := len(got) - len(want); d < -1 || d > 1 {
			t.Fatalf("stream %d: recorded %d draws, synthesized %d — RNG naming drifted",
				s, len(got), len(want))
		}
		if !reflect.DeepEqual(got[:n], want[:n]) {
			t.Fatalf("stream %d: recorded and synthesized draws diverge — workload.Synthesize no longer matches the runner's arrivals-%d substream", s, s)
		}
	}
}

// TestRecordReplayBitIdenticalDES pins the tentpole determinism
// contract: capturing a run's arrivals and replaying them through the
// full text round trip reproduces the original sim.Results exactly.
func TestRecordReplayBitIdenticalDES(t *testing.T) {
	spec := skewSpec()
	per, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	base := Params{Paradigm: Locking, Policy: sched.MRU, Streams: len(per), Seed: 3,
		MeasuredPackets: 600, MaxTime: 3 * des.Second}

	recParams := base
	wrapped, trace := workload.Record(per)
	recParams.ArrivalPerStream = wrapped
	original := Run(recParams)

	// Round-trip the trace through its file format before replaying.
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	repParams := base
	repParams.ArrivalPerStream = workload.Replay(loaded)
	replayed := Run(repParams)

	if !reflect.DeepEqual(original, replayed) {
		t.Fatalf("replay diverged from the recorded run:\noriginal: %+v\nreplayed: %+v", original, replayed)
	}
}

// Recording mutates the trace as the run draws, so recorded runs must
// never be served from the memoization cache; replay runs are pure and
// cache under the trace's content hash.
func TestRecordReplayCacheability(t *testing.T) {
	per := []traffic.Spec{traffic.Poisson{PacketsPerSec: 1000}}
	base := Params{Paradigm: Locking, Policy: sched.MRU, Streams: 1}

	rec := base
	rec.ArrivalPerStream, _ = workload.Record(per)
	if _, ok := CacheKey(rec); ok {
		t.Fatal("recording run reported cacheable")
	}

	tr := workload.Synthesize(per, 1, 50*des.Millisecond)
	rep := base
	rep.ArrivalPerStream = workload.Replay(tr)
	k1, ok := CacheKey(rep)
	if !ok {
		t.Fatal("replay run not cacheable")
	}
	if strings.Contains(k1, "0x") {
		t.Fatalf("replay cache key leaks an address: %s", k1)
	}
	// The same trace content loaded as a distinct object keys equal.
	var buf bytes.Buffer
	workload.WriteTrace(&buf, tr)
	tr2, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep2 := base
	rep2.ArrivalPerStream = workload.Replay(tr2)
	if k2, _ := CacheKey(rep2); k2 != k1 {
		t.Fatal("identical trace content produced different cache keys")
	}
}
