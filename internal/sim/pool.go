package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"affinity/internal/core"
	"affinity/internal/traffic"
)

// Pool executes simulation runs on a bounded number of worker slots and
// memoizes results by canonical parameters: two submissions whose Params
// describe the same run (after WithDefaults, comparing pointed-to model
// and workload contents rather than pointer identity) simulate once and
// share the Results. Concurrent submissions of the same configuration
// coalesce — the second waits for the first instead of re-running.
//
// Because every run is deterministic given its Params, memoization is
// observationally equivalent to re-running; callers must only treat the
// slices inside a shared Results (PerProcBusyTime, PerStreamDelay,
// Trace) as read-only.
//
// Runs with an attached Recorder are executed but never cached: a
// recorder observes the event stream as a side effect, so sharing one
// run's Results would silently drop the second observer's events.
type Pool struct {
	slots  chan struct{}
	shards int
	mu     sync.Mutex
	runs   map[string]*poolRun

	hits, misses atomic.Uint64
}

type poolRun struct {
	once sync.Once
	res  Results
}

// NewPool returns a pool running at most workers simulations at once
// (workers ≤ 0 selects GOMAXPROCS). The zero-cache, one-shot equivalent
// of a pool is plain Run.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		slots: make(chan struct{}, workers),
		runs:  make(map[string]*poolRun),
	}
}

// Run executes p (or returns the memoized Results of an identical
// earlier run). It blocks until a worker slot is free and the run is
// complete; it is safe for concurrent use.
func (pl *Pool) Run(p Params) Results {
	key, cacheable := CacheKey(p)
	if !cacheable {
		pl.misses.Add(1)
		return pl.runLimited(p)
	}
	pl.mu.Lock()
	r, seen := pl.runs[key]
	if !seen {
		r = &poolRun{}
		pl.runs[key] = r
	}
	pl.mu.Unlock()
	if seen {
		pl.hits.Add(1)
	} else {
		pl.misses.Add(1)
	}
	r.once.Do(func() {
		r.res = pl.runLimited(p)
	})
	return r.res
}

// RunAll executes every Params through the pool concurrently and returns
// Results in input order.
func (pl *Pool) RunAll(params []Params) []Results {
	results := make([]Results, len(params))
	var wg sync.WaitGroup
	for i := range params {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = pl.Run(params[i])
		}(i)
	}
	wg.Wait()
	return results
}

// Stats reports how many Run submissions were served from the cache
// (including coalesced in-flight duplicates) and how many simulated.
func (pl *Pool) Stats() (hits, misses uint64) {
	return pl.hits.Load(), pl.misses.Load()
}

// SetShards makes every run submitted to the pool use k arrival-
// pipeline shards (Params.Shards), unless the Params set their own
// non-zero count. Shard count never changes Results and never enters
// CacheKey, so the override is semantics-preserving: a sweep at any k
// produces — and caches — exactly the sequential results. Call before
// the first Run.
func (pl *Pool) SetShards(k int) { pl.shards = k }

func (pl *Pool) runLimited(p Params) Results {
	pl.slots <- struct{}{}
	defer func() { <-pl.slots }()
	if pl.shards > 0 && p.Shards == 0 {
		p.Shards = pl.shards
	}
	return Run(p)
}

// CacheKey returns a canonical identity for the run p describes:
// parameters are defaulted first, and pointed-to configuration (model,
// background workload, fault plan, arrival specs) enters by value, so
// two Params built independently but describing the same run share a
// key and any semantic difference changes it. The second return is
// false when the run is not cacheable (an attached Recorder or
// DecisionRecorder makes the run's event/decision stream a side
// effect).
//
// Every field is spelled out by hand rather than formatted with %#v:
// the reflective form is sensitive to representation details (field
// order, nested struct names, pointer rendering) that are not part of a
// run's identity, and it silently degrades to an address — a key that
// never matches — if a pointer field is ever added to the model.
// TestCacheKeyCoversAllParams pins the field list to the Params struct
// so a new field cannot be forgotten here.
//
// Params.Shards is deliberately NOT part of the key: shard count only
// changes how arrival draws are computed, never what they are, so runs
// at different K produce bit-identical Results and must share one
// cache entry (TestCacheKeyFieldSensitivity pins the exclusion, the
// shard differential tests pin the equivalence it relies on).
func CacheKey(p Params) (string, bool) {
	// A DecisionOverride is opaque side state steering the run's
	// decisions, so — like the recorders — it makes the run uncacheable.
	if p.Recorder != nil || p.DecisionRecorder != nil || p.DecisionOverride != nil {
		return "", false
	}
	p = p.WithDefaults()
	// Trace-recording arrival specs mutate their trace as the run
	// draws: serving such a run from the cache would skip the recording
	// entirely, so it must never be memoized.
	if specSideEffecting(p.Arrival) {
		return "", false
	}
	for _, s := range p.ArrivalPerStream {
		if specSideEffecting(s) {
			return "", false
		}
	}
	var b strings.Builder
	pl := p.Model.Platform
	fmt.Fprintf(&b, "plat:%d,%g,%g,%t", pl.Processors, pl.ClockMHz, pl.CyclesPerRef, pl.L1SplitEvenRef)
	for _, cc := range [3]core.CacheConfig{pl.L1I, pl.L1D, pl.L2} {
		fmt.Fprintf(&b, ";%d,%d,%d", cc.SizeBytes, cc.LineBytes, cc.Assoc)
	}
	w := p.Model.Workload
	fmt.Fprintf(&b, "|wl:%g,%g,%g,%g", w.W, w.A, w.B, w.LogD)
	cal := p.Model.Calib
	fmt.Fprintf(&b, "|cal:%g,%g,%g", cal.TWarm, cal.TL1Cold, cal.TCold)
	fmt.Fprintf(&b, "|bg:%g,%g", p.Background.Intensity, p.Background.PreemptCost)
	fmt.Fprintf(&b, "|run:%d,%d,%d,%d,%d", p.Paradigm, p.Policy, p.Processors, p.Streams, p.Stacks)
	fmt.Fprintf(&b, "|arr:%s", specKey(p.Arrival))
	for _, s := range p.ArrivalPerStream {
		fmt.Fprintf(&b, ";%s", specKey(s))
	}
	fmt.Fprintf(&b, "|cost:%g,%g,%g,%g", p.LockOverhead, p.LockCritFrac, p.CodeSharedFrac, p.DataTouch)
	fmt.Fprintf(&b, "|q:%d,%d,%d", p.HybridOverflow, p.MRULookahead, p.MaxQueueDepth)
	fmt.Fprintf(&b, "|hash:%d,%t", p.FDRebalance, p.HashIdentity)
	fmt.Fprintf(&b, "|steal:%g,%d,%g", p.Steal.Penalty, p.Steal.DepthThreshold, p.Steal.ColdBias)
	if p.Topology != nil {
		// Parse round-trips String, so the rendering carries every field
		// (shape and both transient multipliers): two runs differing only
		// in topology can never share a key.
		fmt.Fprintf(&b, "|topo:%s", p.Topology.String())
	}
	if p.Workload != nil {
		// Redundant with the expanded ArrivalPerStream above for specs
		// that expand, but keeps invalid (unexpandable) specs from
		// aliasing each other.
		fmt.Fprintf(&b, "|wspec:%s", p.Workload.String())
	}
	fmt.Fprintf(&b, "|faults:%s", p.Faults.String())
	fmt.Fprintf(&b, "|seed:%d", p.Seed)
	fmt.Fprintf(&b, "|stop:%g,%d,%g,%g,%d", float64(p.Warmup), p.MeasuredPackets,
		float64(p.MaxTime), p.TargetRelCI, p.BatchSize)
	fmt.Fprintf(&b, "|obs:%d,%g", p.TraceN, float64(p.SamplePeriod))
	return b.String(), true
}

// specKey renders an arrival spec canonically: the dynamic type name
// plus its exported fields by value. %+v dereferences pointer specs to
// their contents (no addresses), so equal specs always render equally.
// A spec carrying reference fields a %+v would render as addresses —
// trace replay holds a *workload.Trace — must instead provide its own
// content-addressed identity via CacheID: an address-derived key could
// alias two different traces once the first is collected and its
// address reused.
func specKey(s traffic.Spec) string {
	if c, ok := s.(interface{ CacheID() string }); ok {
		return c.CacheID()
	}
	return fmt.Sprintf("%T%+v", s, s)
}

// specSideEffecting reports whether an arrival spec declares that
// building/running it observably mutates external state (trace
// recorders do).
func specSideEffecting(s traffic.Spec) bool {
	se, ok := s.(interface{ HasSideEffects() bool })
	return ok && se.HasSideEffects()
}

// RunMany executes independent simulations concurrently on up to
// workers goroutines (0 selects GOMAXPROCS) and returns results in input
// order. Each run is deterministic given its own Params.Seed, so the
// output is identical to running them sequentially; duplicate
// configurations in params are simulated once and share their Results.
func RunMany(params []Params, workers int) []Results {
	return NewPool(workers).RunAll(params)
}
