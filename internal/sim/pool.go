package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// Pool executes simulation runs on a bounded number of worker slots and
// memoizes results by canonical parameters: two submissions whose Params
// describe the same run (after WithDefaults, comparing pointed-to model
// and workload contents rather than pointer identity) simulate once and
// share the Results. Concurrent submissions of the same configuration
// coalesce — the second waits for the first instead of re-running.
//
// Because every run is deterministic given its Params, memoization is
// observationally equivalent to re-running; callers must only treat the
// slices inside a shared Results (PerProcBusyTime, PerStreamDelay,
// Trace) as read-only.
//
// Runs with an attached Recorder are executed but never cached: a
// recorder observes the event stream as a side effect, so sharing one
// run's Results would silently drop the second observer's events.
type Pool struct {
	slots chan struct{}
	mu    sync.Mutex
	runs  map[string]*poolRun

	hits, misses atomic.Uint64
}

type poolRun struct {
	once sync.Once
	res  Results
}

// NewPool returns a pool running at most workers simulations at once
// (workers ≤ 0 selects GOMAXPROCS). The zero-cache, one-shot equivalent
// of a pool is plain Run.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		slots: make(chan struct{}, workers),
		runs:  make(map[string]*poolRun),
	}
}

// Run executes p (or returns the memoized Results of an identical
// earlier run). It blocks until a worker slot is free and the run is
// complete; it is safe for concurrent use.
func (pl *Pool) Run(p Params) Results {
	key, cacheable := CacheKey(p)
	if !cacheable {
		pl.misses.Add(1)
		return pl.runLimited(p)
	}
	pl.mu.Lock()
	r, seen := pl.runs[key]
	if !seen {
		r = &poolRun{}
		pl.runs[key] = r
	}
	pl.mu.Unlock()
	if seen {
		pl.hits.Add(1)
	} else {
		pl.misses.Add(1)
	}
	r.once.Do(func() {
		r.res = pl.runLimited(p)
	})
	return r.res
}

// RunAll executes every Params through the pool concurrently and returns
// Results in input order.
func (pl *Pool) RunAll(params []Params) []Results {
	results := make([]Results, len(params))
	var wg sync.WaitGroup
	for i := range params {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = pl.Run(params[i])
		}(i)
	}
	wg.Wait()
	return results
}

// Stats reports how many Run submissions were served from the cache
// (including coalesced in-flight duplicates) and how many simulated.
func (pl *Pool) Stats() (hits, misses uint64) {
	return pl.hits.Load(), pl.misses.Load()
}

func (pl *Pool) runLimited(p Params) Results {
	pl.slots <- struct{}{}
	defer func() { <-pl.slots }()
	return Run(p)
}

// CacheKey returns a canonical identity for the run p describes:
// parameters are defaulted first, and pointed-to configuration (model,
// background workload, arrival specs) enters by value, so two Params
// built independently but describing the same run share a key. The
// second return is false when the run is not cacheable (an attached
// Recorder makes the run's event stream a side effect).
func CacheKey(p Params) (string, bool) {
	if p.Recorder != nil {
		return "", false
	}
	p = p.WithDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "%#v|%#v|", *p.Model, *p.Background)
	fmt.Fprintf(&b, "%d|%v|%d|%d|%d|", p.Paradigm, p.Policy, p.Processors, p.Streams, p.Stacks)
	fmt.Fprintf(&b, "%#v|", p.Arrival)
	for _, s := range p.ArrivalPerStream {
		fmt.Fprintf(&b, "%#v;", s)
	}
	fmt.Fprintf(&b, "|%v|%v|%v|%v|%d|%d|%d|",
		p.LockOverhead, p.LockCritFrac, p.CodeSharedFrac, p.DataTouch,
		p.HybridOverflow, p.MRULookahead, p.Seed)
	fmt.Fprintf(&b, "%v|%d|%v|%v|%d|%d|%v",
		p.Warmup, p.MeasuredPackets, p.MaxTime, p.TargetRelCI,
		p.TraceN, p.BatchSize, p.SamplePeriod)
	return b.String(), true
}

// RunMany executes independent simulations concurrently on up to
// workers goroutines (0 selects GOMAXPROCS) and returns results in input
// order. Each run is deterministic given its own Params.Seed, so the
// output is identical to running them sequentially; duplicate
// configurations in params are simulated once and share their Results.
func RunMany(params []Params, workers int) []Results {
	return NewPool(workers).RunAll(params)
}
