package live

import (
	"bytes"
	"reflect"
	"testing"

	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
	"affinity/internal/workload"
)

// TestRecordReplayBitIdenticalLive pins trace record/replay on the live
// backend: capturing a run's arrivals and replaying them through the
// full text round trip reproduces the original sim.Results exactly.
// The workload is continuous-time (Poisson): with no same-instant
// events a live run is event-order deterministic, so replay bit-
// identity is a meaningful invariant. Tie-heavy (batch/CBR) replays
// reproduce the arrival sequence bit-identically too — pinned by
// TestArrivalOrderAgreesWithDES — but their delay aggregates race at
// burst instants by design.
func TestRecordReplayBitIdenticalLive(t *testing.T) {
	per := []traffic.Spec{
		traffic.Poisson{PacketsPerSec: 1800},
		traffic.Poisson{PacketsPerSec: 900},
		traffic.Poisson{PacketsPerSec: 300},
	}
	base := quick(sim.Locking, sched.MRU)
	base.Streams = len(per)
	base.Arrival = nil
	base.Seed = 11
	base.MeasuredPackets = 800

	rec := base
	wrapped, trace := workload.Record(per)
	rec.ArrivalPerStream = wrapped
	original := Run(rec)

	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	loaded, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	rep := base
	rep.ArrivalPerStream = workload.Replay(loaded)
	replayed := Run(rep)

	if !reflect.DeepEqual(original, replayed) {
		t.Fatalf("live replay diverged from the recorded run:\noriginal: %+v\nreplayed: %+v", original, replayed)
	}
}
