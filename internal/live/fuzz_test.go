package live_test

import (
	"testing"

	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/live"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// FuzzFaultPlanConservation: no fault plan and no queue bound, however
// adversarial, may ever violate the 4-term conservation ledger — on
// either backend. The fuzzer drives a structured plan (outage window,
// slowdown, loss, burst) plus a queue bound and paradigm selector; both
// engines run it and every shared invariant must hold.
func FuzzFaultPlanConservation(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(0), uint8(250), uint8(150), uint8(0), uint8(0), uint8(0))
	f.Add(int64(2), uint8(1), uint16(8), uint8(10), uint8(200), uint8(3), uint8(50), uint8(200))
	f.Add(int64(3), uint8(2), uint16(1), uint8(255), uint8(1), uint8(100), uint8(255), uint8(9))
	f.Add(int64(4), uint8(0), uint16(64), uint8(0), uint8(0), uint8(30), uint8(4), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, parSel uint8, maxQueue uint16,
		downMs, outageMs, lossPct, burst, slowTenths uint8) {
		p := sim.Params{
			Streams:         4,
			Processors:      4,
			Arrival:         traffic.Poisson{PacketsPerSec: 1500},
			Seed:            seed,
			MeasuredPackets: 300,
			MaxTime:         800 * des.Millisecond,
			MaxQueueDepth:   int(maxQueue),
		}
		switch parSel % 3 {
		case 0:
			p.Paradigm, p.Policy = sim.Locking, sched.MRU
		case 1:
			p.Paradigm, p.Policy, p.Stacks = sim.IPS, sched.IPSWired, 4
		default:
			p.Paradigm, p.Policy, p.Stacks = sim.Hybrid, sched.IPSMRU, 4
		}
		plan := &faults.Plan{}
		if downMs > 0 {
			at := des.Time(downMs) * des.Millisecond
			plan.Down(at, int(parSel)%p.Processors)
			if outageMs > 0 {
				plan.Up(at+des.Time(outageMs)*des.Millisecond, int(parSel)%p.Processors)
			}
		}
		if lossPct > 0 {
			plan.WithLoss(des.Time(outageMs)*des.Millisecond, float64(lossPct%101)/100)
		}
		if burst > 0 {
			plan.Events = append(plan.Events, faults.Event{
				At: des.Time(downMs) * des.Millisecond, Kind: faults.Burst,
				Stream: int(burst)%p.Streams - 1, // -1 selects all streams
				Count:  int(burst),
			})
		}
		if slowTenths > 0 {
			plan.Events = append(plan.Events, faults.Event{
				At: des.Time(outageMs) * des.Millisecond, Kind: faults.Slowdown,
				Proc: int(slowTenths) % p.Processors, Factor: float64(slowTenths) / 10,
			})
		}
		if !plan.Empty() {
			if err := plan.Validate(p.Processors, p.Streams); err != nil {
				t.Skip() // fuzzer built an invalid plan; nothing to check
			}
			p.Faults = plan
		}
		for _, b := range []struct {
			name string
			run  func(sim.Params) sim.Results
		}{{"des", sim.Run}, {"live", live.Run}} {
			res := b.run(p)
			if err := sim.CheckInvariants(res); err != nil {
				t.Errorf("%s: %v", b.name, err)
			}
		}
	})
}
