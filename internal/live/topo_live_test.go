package live_test

import (
	"reflect"
	"testing"

	"affinity/internal/live"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/topo"
	"affinity/internal/traffic"
)

// The live-backend halves of the topology and hash-dispatch property
// suite: the same equivalences the DES pins in internal/sim
// (topo_test.go) must hold on the goroutine engine, and the E34
// semantic claim — Flow Director reorders, RSS cannot — must come out
// of both backends, not just the one that produced the goldens.

// unbrand clears the policy name so runs that should make identical
// decisions under different labels compare with DeepEqual.
func unbrand(r sim.Results) sim.Results {
	r.Policy = ""
	return r
}

func TestLiveFlatTopologyIsNoOp(t *testing.T) {
	for _, policy := range []sched.Kind{sched.FCFS, sched.MRU, sched.WiredStreams} {
		p := sim.Params{
			Paradigm: sim.Locking, Policy: policy, Streams: 8, Processors: 8,
			Arrival:         traffic.Poisson{PacketsPerSec: 1000},
			Seed:            42,
			MeasuredPackets: 1500,
		}
		base := live.Run(p)
		for name, tp := range map[string]*topo.Topology{
			"flat":      topo.Flat(8),
			"numa-unit": {Sockets: 2, CoresPerSocket: 4, SameSocketTransient: 1, CrossSocketTransient: 1},
		} {
			p2 := p
			p2.Topology = tp
			if got := live.Run(p2); !reflect.DeepEqual(base, got) {
				t.Errorf("%s: %s topology changed live results — must be a no-op", policy, name)
			}
		}
	}
}

// TestLiveRSSIdentityEqualsWiredStreams mirrors the DES anchor: with an
// identity hash and constant-gap arrivals the RSS table reproduces
// Wired-Streams' first-seen round-robin homes. Unlike the DES — whose
// heap breaks same-instant ties deterministically — the live backend's
// worker interleaving decides which tied first arrival Wired-Streams
// sees first, so each stream gets its own CBR rate (descending primes)
// to keep every first arrival at a distinct instant and in stream
// order. That pins first-seen order = stream order = the identity
// table's s mod n, and the equivalence holds bit for bit.
func TestLiveRSSIdentityEqualsWiredStreams(t *testing.T) {
	rates := []float64{2003, 1999, 1997, 1993, 1987, 1979, 1973, 1951}
	per := make([]traffic.Spec, len(rates))
	for s, rate := range rates {
		per[s] = traffic.Deterministic{PacketsPerSec: rate}
	}
	base := sim.Params{
		Paradigm: sim.Locking, Streams: 8, Processors: 4,
		ArrivalPerStream: per,
		Seed:             42,
		MeasuredPackets:  1500,
	}
	rss := base
	rss.Policy = sched.RSS
	rss.HashIdentity = true
	wired := base
	wired.Policy = sched.WiredStreams
	a, b := live.Run(rss), live.Run(wired)
	if a.ReorderedTotal != 0 {
		t.Errorf("live RSS reordered %d packets — static homes can never reorder a stream", a.ReorderedTotal)
	}
	if !reflect.DeepEqual(unbrand(a), unbrand(b)) {
		t.Errorf("identity-hash RSS diverged from Wired-Streams on the live backend\n rss:   %+v\n wired: %+v", a, b)
	}
}

func TestLiveFlowDirectorDisabledEqualsRSS(t *testing.T) {
	base := sim.Params{
		Paradigm: sim.Locking, Policy: sched.RSS, Streams: 8, Processors: 4,
		Arrival:         traffic.Batch{PacketsPerSec: 2500, MeanBurst: 16},
		Seed:            42,
		MeasuredPackets: 1500,
	}
	fd := base
	fd.Policy = sched.FlowDirector
	fd.FDRebalance = -1
	a, b := live.Run(fd), live.Run(base)
	if !reflect.DeepEqual(unbrand(a), unbrand(b)) {
		t.Errorf("rebalance-disabled Flow Director diverged from RSS on the live backend\n fd:  %+v\n rss: %+v", a, b)
	}
}

// TestDifferentialReorderingAgreement is the cross-backend half of the
// E34 claim: on the same bursty workload both engines must report
// in-flight reordering for Flow Director and none for RSS — and both
// runs go through runBoth, so the usual arrival/ledger/shard
// agreements hold on NUMA hash-dispatch points too.
func TestDifferentialReorderingAgreement(t *testing.T) {
	numa := &topo.Topology{Sockets: 2, CoresPerSocket: 4,
		SameSocketTransient: 1.1, CrossSocketTransient: 1.8}
	base := sim.Params{
		Paradigm: sim.Locking, Streams: 8, Processors: 8,
		Topology:        numa,
		Arrival:         traffic.Batch{PacketsPerSec: 2500, MeanBurst: 16},
		Seed:            42,
		MeasuredPackets: 3000,
	}
	rss := base
	rss.Policy = sched.RSS
	fd := base
	fd.Policy = sched.FlowDirector

	desRSS, liveRSS := runBoth(t, rss)
	if desRSS.ReorderedTotal != 0 || liveRSS.ReorderedTotal != 0 {
		t.Errorf("RSS reordered packets (des %d, live %d) — static homes cannot reorder",
			desRSS.ReorderedTotal, liveRSS.ReorderedTotal)
	}
	desFD, liveFD := runBoth(t, fd)
	if desFD.ReorderedTotal == 0 || liveFD.ReorderedTotal == 0 {
		t.Errorf("Flow Director reordering missing on a backend (des %d, live %d) — both must observe it",
			desFD.ReorderedTotal, liveFD.ReorderedTotal)
	}
}
