package live

import (
	"math"
	"strconv"
	"sync"

	"affinity/internal/core"
	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/stats"
	"affinity/internal/topo"
	"affinity/internal/traffic"
)

// Run executes one live (goroutine-backed) run of the configuration and
// returns its metrics in the same sim.Results shape the DES produces.
// Arrival processes draw from the same seed-derived RNG streams as the
// DES, so both backends see identical arrival sequences; scheduling
// decisions, however, happen under a real lock contended by real
// workers, so per-run results are statistically — not bit — equal to
// the DES (see the package comment and DESIGN.md §10).
func Run(p sim.Params) sim.Results {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		panic(err)
	}
	r := newLive(p)
	r.run()
	return r.results()
}

// entityCount / entityOf mirror the sim package's footprint-entity
// mapping: streams are the entities under Locking, stacks under
// IPS/Hybrid.
func entityCount(p sim.Params) int {
	if p.Paradigm == sim.IPS || p.Paradigm == sim.Hybrid {
		return p.Stacks
	}
	return p.Streams
}

func entityOf(p sim.Params, stream int) int {
	if p.Paradigm == sim.IPS || p.Paradigm == sim.Hybrid {
		return stream % p.Stacks
	}
	return stream
}

// procLive is one worker's processor state. Displacement counters,
// occupancy and fault state are all guarded by live.mu — the worker
// goroutine touches them only while holding the dispatch lock, never
// while sleeping on the virtual clock.
type procLive struct {
	busy      bool
	idleSince des.Time
	busySince des.Time
	dispNP    float64
	dispProto float64
	seen      []bool
	markNP    []float64
	markProto []float64
	util      stats.TimeWeighted

	down      bool
	downSince des.Time
	downTime  float64
	slow      float64
}

// stackLive is one IPS stack.
type stackLive struct {
	q       []sched.Packet
	running bool
	queued  bool
}

// completion continuation selectors, mirroring the DES runner's enum.
const (
	compLocking = iota
	compOverflow
	compIPS
)

// task is one packet hand-off to a worker: everything bound at
// beginService time that the worker needs to play out the service
// interval on the virtual clock.
type task struct {
	pkt     sched.Packet
	exec    float64
	preempt float64
	warmHit bool
	locked  bool
	done    int
}

// live is one run's shared state. mu is the dispatch lock — the live
// analogue of the queue lock a real parallel dispatcher serializes its
// scheduling decisions under. Everything logical (dispatcher state,
// queues, displacement counters, statistics, recorder emissions)
// mutates under mu at a fixed virtual instant; the real concurrency is
// in the workers racing for mu and playing out their service intervals
// on the clock in parallel.
type live struct {
	p     sim.Params
	clk   *clock
	model *core.Model
	exec  *core.Exec
	rate  float64

	// topo is Params.Topology when it can change a charge (some
	// transient multiplier ≠ 1); nil for the flat machine, mirroring
	// the DES runner's guard exactly.
	topo *topo.Topology

	mu sync.Mutex // the dispatch/queue lock

	disp  sched.PacketDispatcher
	sdisp sched.StackDispatcher

	// Virtual shared-stack lock (Locking & Hybrid overflow path): FIFO
	// grant order like des.Resource, waiters parked on the clock.
	lockHeld bool
	lockQ    []chan struct{}

	procs      []procLive
	stacks     []stackLive
	overflow   []sched.Packet
	rng        *des.RNG // Hybrid overflow placement
	lastProcOf []int

	workCh      []chan task
	idleScratch []int

	delays    *stats.BatchMeans
	delayAcc  stats.Accumulator
	delayHist *stats.Histogram
	perStream []stats.Accumulator
	service   stats.Accumulator
	queueing  stats.Accumulator
	lockWait  stats.Accumulator

	warm       uint64
	coldStarts uint64
	migrations uint64
	spills     uint64
	measured   int
	arrivals   uint64

	lossProb float64
	lossRNG  *des.RNG
	dropped  uint64

	rec     obs.Recorder
	tsink   *traceSink
	emitted uint64

	// Decision-ledger state, mirroring the DES runner: drec is
	// Params.DecisionRecorder (decide call sites guard with
	// `r.drec != nil`), decisions counts what was published, candScratch
	// is the reused candidate buffer and oneProc the reused
	// single-candidate set. All mutate under mu.
	drec        obs.DecisionRecorder
	decisions   uint64
	candScratch []obs.Candidate
	oneProc     [1]int

	// Per-stream reordering state (see the DES runner): counters always
	// run, so Results carries the metric with or without recorders.
	// streamReordered is sparse — created at the first reordered
	// completion, nil on in-order runs — matching the DES runner so the
	// backends' Results stay comparable.
	streamSeq       []uint64
	streamMaxDone   []uint64
	streamReordered map[int]uint64
	reordered       uint64
	maxReorderDist  uint64

	wg sync.WaitGroup
}

// traceSink adapts the recorder stream into Results.Trace, pairing each
// ExecStart with the Dispatch emitted just before it (same packet, same
// instant) — the same adapter the DES runner uses.
type traceSink struct {
	n       int
	wait    float64
	waitSeq uint64
	entries []sim.TraceEntry
}

func (t *traceSink) Record(e obs.Event) {
	switch e.Kind {
	case obs.KindDispatch:
		t.wait, t.waitSeq = e.Dur, e.Seq
	case obs.KindExecStart:
		if len(t.entries) >= t.n {
			return
		}
		var queued des.Time
		if t.waitSeq == e.Seq {
			queued = des.Time(t.wait)
		}
		t.entries = append(t.entries, sim.TraceEntry{
			Start:     des.Time(e.T),
			Stream:    e.Stream,
			Entity:    e.Entity,
			Processor: e.Proc,
			Queued:    queued,
			XRefs:     e.Val,
			Exec:      e.Dur,
			Migrated:  e.Flags&obs.FlagMigrated != 0,
		})
	}
}

func newLive(p sim.Params) *live {
	if p.DecisionOverride != nil {
		// Counterfactual replay needs the DES's bit determinism: worker
		// interleaving would make the live decision ordinals drift from
		// the ledger they were recorded against.
		panic("live: Params.DecisionOverride is DES-only")
	}
	entities := entityCount(p)
	r := &live{
		p:          p,
		clk:        newClock(p.MaxTime),
		model:      p.Model,
		exec:       p.Model.Compile(),
		rate:       p.Model.Platform.RefsPerMicrosecond(),
		procs:      make([]procLive, p.Processors),
		lastProcOf: make([]int, entities),
		workCh:     make([]chan task, p.Processors),
		delays:     stats.NewBatchMeans(p.BatchSize),
		delayHist:  stats.NewHistogram(0, 100_000, 10_000),
		perStream:  make([]stats.Accumulator, p.Streams),

		drec:          p.DecisionRecorder,
		streamSeq:     make([]uint64, p.Streams),
		streamMaxDone: make([]uint64, p.Streams),
	}
	if t := p.Topology; t != nil &&
		(t.SameSocketTransient != 1 || t.CrossSocketTransient != 1) {
		r.topo = t
	}
	if r.drec != nil {
		r.candScratch = make([]obs.Candidate, 0, p.Processors)
	}
	for i := range r.lastProcOf {
		r.lastProcOf[i] = -1
	}
	for i := range r.procs {
		r.procs[i].seen = make([]bool, entities)
		r.procs[i].markNP = make([]float64, entities)
		r.procs[i].markProto = make([]float64, entities)
		r.procs[i].util.Set(0, 0)
		r.procs[i].slow = 1
		r.workCh[i] = make(chan task, 1)
	}
	if p.Faults.HasLoss() {
		r.lossRNG = des.Stream(p.Seed, "fault-loss")
	}
	r.idleScratch = make([]int, 0, p.Processors)
	schedRNG := des.Stream(p.Seed, "sched")
	if p.Paradigm == sim.Locking {
		r.disp = sched.NewPacketDispatcherFull(p.Policy, p.Processors, schedRNG, p.MRULookahead,
			sched.HashConfig{Rebalance: p.FDRebalance, Identity: p.HashIdentity},
			sched.StealConfig{StealParams: p.Steal, Now: r.clk.Now})
	} else {
		r.sdisp = sched.NewStackDispatcherLookahead(p.Policy, p.Stacks, p.Processors, schedRNG, p.MRULookahead)
		r.stacks = make([]stackLive, p.Stacks)
		if p.Paradigm == sim.Hybrid {
			r.rng = des.Stream(p.Seed, "hybrid-overflow")
		}
	}
	if p.TraceN > 0 {
		r.tsink = &traceSink{n: p.TraceN}
	}
	if r.tsink != nil {
		r.rec = obs.Multi(p.Recorder, r.tsink)
	} else {
		r.rec = p.Recorder
	}
	return r
}

// emit publishes one event; callers hold r.mu (which serializes the
// recorder chain) and guard with r.rec != nil.
func (r *live) emit(e obs.Event) {
	r.emitted++
	r.rec.Record(e)
}

// decide publishes one dispatch decision — the DES runner's decide under
// the dispatch lock at the current virtual instant. Costs come from the
// same pure model functions begin charges with, so recording reads state
// without touching it. Callers hold r.mu and guard with r.drec != nil;
// the emitted Decision aliases candScratch, valid only for the duration
// of RecordDecision.
func (r *live) decide(point obs.DecisionPoint, pkt sched.Packet, cands []int, chosen int) {
	r.decisions++
	cs := r.candScratch[:0]
	best := math.Inf(1)
	chosenCost := 0.0
	for _, pc := range cands {
		x := r.xRefs(pkt.Entity, pc)
		texec, f1 := r.exec.ExecTimeF1(x)
		if r.topo != nil {
			texec = r.topoScaled(texec, pkt.Entity, pc)
		}
		cost := texec + r.p.DataTouch
		if s := r.procs[pc].slow; s != 1 {
			cost *= s
		}
		cs = append(cs, obs.Candidate{
			Proc: pc, Warm: !math.IsInf(x, 1) && f1 < 0.5, XRefs: x, Cost: cost,
		})
		if cost < best {
			best = cost
		}
		if pc == chosen {
			chosenCost = cost
		}
	}
	r.candScratch = cs
	var preferred int
	if r.p.Paradigm == sim.Locking {
		preferred = r.disp.PreferredProc(pkt.Entity)
	} else {
		preferred = r.sdisp.PreferredProc(pkt.Entity)
	}
	r.drec.RecordDecision(obs.Decision{
		T: float64(r.clk.Now()), Point: point, Seq: pkt.Seq,
		Stream: pkt.Stream, Entity: pkt.Entity,
		Chosen: chosen, Preferred: preferred,
		ChosenCost: chosenCost, BestCost: best, Candidates: cs,
	})
}

// decideDispatch publishes the single-candidate decision a processor
// pulling queued work makes (see the DES runner).
func (r *live) decideDispatch(pkt sched.Packet, proc int) {
	r.oneProc[0] = proc
	r.decide(obs.PointDispatch, pkt, r.oneProc[:], proc)
}

// run spawns the whole cast — one worker per processor, one arrival
// source per stream, the fault injector and the gauge sampler — and
// blocks until the run stops (measurement target, horizon, or
// quiescence) and every goroutine has unwound.
func (r *live) run() {
	n := r.p.Processors
	evs := []faults.Event(nil)
	if !r.p.Faults.Empty() {
		evs = r.p.Faults.Sorted()
		n++
	}
	if r.p.Recorder != nil {
		n++
	}
	// Draw every stream's first gap and pre-register its keyed sleeper
	// here, in stream order, before anything runs: exactly how the DES
	// runner seeds its event heap, and the base case of the keyed-sleeper
	// ordering (see clock.go) that makes same-instant arrivals fire in
	// the DES's deterministic order. The sources start life asleep, so
	// they are never counted in the runnable spawn below.
	type armedArrival struct {
		proc  traffic.Process
		batch int
		first chan struct{}
	}
	arr := make([]armedArrival, r.p.Streams)
	for s := 0; s < r.p.Streams; s++ {
		spec := r.p.Arrival
		if r.p.ArrivalPerStream != nil {
			spec = r.p.ArrivalPerStream[s]
		}
		proc := spec.Build(des.Stream(r.p.Seed, "arrivals-"+strconv.Itoa(s)))
		d, b := proc.Next()
		arr[s] = armedArrival{proc: proc, batch: b, first: r.clk.preSleep(d)}
	}
	r.clk.spawn(n)
	r.wg.Add(n + r.p.Streams)
	for proc := 0; proc < r.p.Processors; proc++ {
		go r.worker(proc)
	}
	for s := 0; s < r.p.Streams; s++ {
		go r.arrivalLoop(s, arr[s].proc, arr[s].batch, arr[s].first)
	}
	if evs != nil {
		go r.faultLoop(evs)
	}
	if r.p.Recorder != nil {
		go r.gaugeLoop()
	}
	r.wg.Wait()
}

// arrivalLoop drives one stream: deliver the pending batch under the
// dispatch lock, draw the next gap, sleep it on the virtual clock — the
// same draw-then-deliver cycle as the DES arrival source, on the same
// seed-derived stream, so both backends see identical arrivals. The
// sleeps are keyed (serialized, deterministically ordered at virtual-
// time ties); the first was pre-registered by run() in stream order.
func (r *live) arrivalLoop(stream int, proc traffic.Process, batch int, first chan struct{}) {
	defer r.wg.Done()
	// Until the pre-registered first sleep releases, this source is a
	// sleeper, not a runnable: a run that stops first just unwinds with
	// no exit accounting.
	select {
	case <-first:
	case <-r.clk.stopCh:
		return
	}
	defer r.clk.exit()
	for {
		r.mu.Lock()
		for j := 0; j < batch; j++ {
			r.arrive(stream)
		}
		r.mu.Unlock()
		var d des.Time
		d, batch = proc.Next()
		if !r.clk.sleepKeyed(d) {
			return
		}
	}
}

// faultLoop plays the deterministic fault plan against the virtual
// clock, applying each event under the dispatch lock.
func (r *live) faultLoop(evs []faults.Event) {
	defer r.wg.Done()
	defer r.clk.exit()
	for _, ev := range evs {
		if !r.clk.sleepUntil(ev.At) {
			return
		}
		r.mu.Lock()
		switch ev.Kind {
		case faults.ProcDown:
			r.procDown(ev.Proc)
		case faults.ProcUp:
			r.procUp(ev.Proc)
		case faults.Slowdown:
			r.procs[ev.Proc].slow = ev.Factor
		case faults.Loss:
			r.lossProb = ev.Prob
		case faults.Burst:
			if ev.Stream < 0 {
				for s := 0; s < r.p.Streams; s++ {
					for j := 0; j < ev.Count; j++ {
						r.arrive(s)
					}
				}
			} else {
				for j := 0; j < ev.Count; j++ {
					r.arrive(ev.Stream)
				}
			}
		}
		r.mu.Unlock()
	}
}

// gaugeLoop publishes the periodic gauges; it runs only when a user
// recorder is attached, like the DES sampler.
func (r *live) gaugeLoop() {
	defer r.wg.Done()
	defer r.clk.exit()
	for {
		if !r.clk.sleep(r.p.SamplePeriod) {
			return
		}
		r.mu.Lock()
		t := float64(r.clk.Now())
		r.emit(obs.Event{T: t, Kind: obs.KindGaugeQueue, Proc: -1, Stream: -1, Entity: -1,
			Val: float64(r.queuedPackets())})
		r.emit(obs.Event{T: t, Kind: obs.KindGaugeHeap, Proc: -1, Stream: -1, Entity: -1,
			Val: float64(r.clk.Pending())})
		var dNP, dProto float64
		for i := range r.procs {
			dNP += r.procs[i].dispNP
			dProto += r.procs[i].dispProto
		}
		r.emit(obs.Event{T: t, Kind: obs.KindGaugeDispNP, Proc: -1, Stream: -1, Entity: -1, Val: dNP})
		r.emit(obs.Event{T: t, Kind: obs.KindGaugeDispProto, Proc: -1, Stream: -1, Entity: -1, Val: dProto})
		if r.p.Paradigm == sim.Hybrid {
			r.emit(obs.Event{T: t, Kind: obs.KindGaugeOverflow, Proc: -1, Stream: -1, Entity: -1,
				Val: float64(len(r.overflow))})
		}
		r.mu.Unlock()
	}
}

// worker is one simulated processor: it parks until a packet is handed
// to it, plays out the service interval (and the shared-stack lock's
// critical section, under Locking) on the virtual clock, then completes
// the packet under the dispatch lock and picks its next work.
func (r *live) worker(proc int) {
	defer r.wg.Done()
	defer r.clk.exit()
	for {
		tk, ok := parkRecv(r.clk, r.workCh[proc])
		if !ok {
			return
		}
		if tk.locked {
			nonCrit := tk.preempt + r.p.LockOverhead + (1-r.p.LockCritFrac)*tk.exec
			if !r.clk.sleep(des.Time(nonCrit)) {
				return
			}
			waitStart := r.clk.Now()
			if !r.lockAcquire() {
				return
			}
			r.mu.Lock()
			r.lockWait.Add(float64(r.clk.Now() - waitStart))
			r.mu.Unlock()
			if !r.clk.sleep(des.Time(r.p.LockCritFrac * tk.exec)) {
				return
			}
			r.lockRelease()
			r.complete(tk, proc, tk.exec+r.p.LockOverhead)
		} else {
			if !r.clk.sleep(des.Time(tk.preempt+tk.exec)) {
				return
			}
			r.complete(tk, proc, tk.exec)
		}
	}
}

// lockAcquire takes the virtual shared-stack lock, parking on the clock
// behind earlier requesters; grants are FIFO like des.Resource. Returns
// false when the run stopped while waiting.
func (r *live) lockAcquire() bool {
	r.mu.Lock()
	if !r.lockHeld {
		r.lockHeld = true
		r.mu.Unlock()
		return true
	}
	ch := make(chan struct{}, 1)
	r.lockQ = append(r.lockQ, ch)
	r.mu.Unlock()
	_, ok := parkRecv(r.clk, ch)
	return ok
}

// lockRelease hands the virtual lock to the oldest waiter, or frees it.
func (r *live) lockRelease() {
	r.mu.Lock()
	if len(r.lockQ) > 0 {
		ch := r.lockQ[0]
		r.lockQ = r.lockQ[1:]
		r.clk.wake()
		r.mu.Unlock()
		ch <- struct{}{}
		return
	}
	r.lockHeld = false
	r.mu.Unlock()
}

// idleProcs returns the processors currently free of protocol work;
// callers hold r.mu. The slice is scratch, valid until the next call.
func (r *live) idleProcs() []int {
	idle := r.idleScratch[:0]
	for i := range r.procs {
		if !r.procs[i].busy && !r.procs[i].down {
			idle = append(idle, i)
		}
	}
	r.idleScratch = idle
	return idle
}

// arrive admits one packet; callers hold r.mu. The logic is the DES
// runner's arrive, with beginService hand-offs going to real workers.
func (r *live) arrive(stream int) {
	r.arrivals++
	r.streamSeq[stream]++
	now := r.clk.Now()
	pkt := sched.Packet{Stream: stream, Entity: entityOf(r.p, stream), Arrive: now,
		Seq: r.arrivals, StreamSeq: r.streamSeq[stream]}
	if r.rec != nil {
		r.emit(obs.Event{T: float64(now), Kind: obs.KindArrival,
			Proc: -1, Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
	}
	if r.lossProb > 0 && r.lossRNG.Float64() < r.lossProb {
		r.drop(pkt, obs.DropReasonLoss)
		return
	}
	if r.p.Paradigm == sim.Locking {
		if idle := r.idleProcs(); len(idle) > 0 {
			if proc := r.disp.PickProcessor(pkt, idle); proc >= 0 {
				if r.drec != nil {
					r.decide(obs.PointPlace, pkt, idle, proc)
				}
				r.begin(pkt, proc, true, true, compLocking)
				return
			}
		}
		if r.p.MaxQueueDepth > 0 && r.disp.DepthFor(pkt) >= r.p.MaxQueueDepth {
			r.drop(pkt, obs.DropReasonQueue)
			return
		}
		r.enqueued(pkt)
		r.disp.Enqueue(pkt)
		return
	}
	k := pkt.Entity
	st := &r.stacks[k]
	if r.p.Paradigm == sim.Hybrid && (st.running || st.queued) && len(st.q) >= r.p.HybridOverflow {
		if idle := r.idleProcs(); len(idle) > 0 {
			r.spills++
			proc := idle[r.rng.Intn(len(idle))]
			if r.rec != nil {
				r.emit(obs.Event{T: float64(now), Kind: obs.KindSpill,
					Proc: proc, Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
			}
			if r.drec != nil {
				r.decide(obs.PointSpill, pkt, idle, proc)
			}
			r.begin(pkt, proc, true, true, compOverflow)
			return
		}
		if r.p.MaxQueueDepth > 0 && len(r.overflow) >= r.p.MaxQueueDepth {
			r.drop(pkt, obs.DropReasonQueue)
			return
		}
		r.spills++
		if r.rec != nil {
			r.emit(obs.Event{T: float64(now), Kind: obs.KindSpill,
				Proc: -1, Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
		}
		r.enqueued(pkt)
		r.overflow = append(r.overflow, pkt)
		return
	}
	if r.p.MaxQueueDepth > 0 {
		waiting := len(st.q)
		if st.running {
			waiting--
		}
		if waiting >= r.p.MaxQueueDepth {
			r.drop(pkt, obs.DropReasonQueue)
			return
		}
	}
	st.q = append(st.q, pkt)
	if st.running || st.queued {
		r.enqueued(pkt)
		return
	}
	if idle := r.idleProcs(); len(idle) > 0 {
		if proc := r.sdisp.PickProcessor(k, idle); proc >= 0 {
			if r.drec != nil {
				// The stack was idle and unqueued, so the arriving packet
				// is the one this placement runs.
				r.decide(obs.PointPlace, pkt, idle, proc)
			}
			r.startStack(k, proc, true)
			return
		}
	}
	r.enqueued(pkt)
	st.queued = true
	r.sdisp.EnqueueStack(k)
}

func (r *live) enqueued(pkt sched.Packet) {
	if r.rec != nil {
		r.emit(obs.Event{T: float64(r.clk.Now()), Kind: obs.KindEnqueue,
			Proc: -1, Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
	}
}

func (r *live) drop(pkt sched.Packet, reason int) {
	r.dropped++
	if r.rec != nil {
		r.emit(obs.Event{T: float64(r.clk.Now()), Kind: obs.KindDrop,
			Proc: -1, Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq,
			Val: float64(reason)})
	}
}

// procDown / procUp / kickIdle port the DES fault transitions; callers
// hold r.mu.
func (r *live) procDown(proc int) {
	ps := &r.procs[proc]
	if ps.down {
		return
	}
	now := r.clk.Now()
	ps.down = true
	ps.downSince = now
	if r.rec != nil {
		r.emit(obs.Event{T: float64(now), Kind: obs.KindProcDown,
			Proc: proc, Stream: -1, Entity: -1})
	}
	if r.p.Paradigm == sim.Locking {
		r.disp.ProcDown(proc)
	} else {
		r.sdisp.ProcDown(proc)
	}
	r.kickIdle()
}

func (r *live) procUp(proc int) {
	ps := &r.procs[proc]
	if !ps.down {
		return
	}
	now := r.clk.Now()
	ps.down = false
	ps.downTime += float64(now - ps.downSince)
	for i := range ps.seen {
		ps.seen[i] = false
	}
	if r.rec != nil {
		r.emit(obs.Event{T: float64(now), Kind: obs.KindProcUp,
			Proc: proc, Stream: -1, Entity: -1, Dur: float64(now - ps.downSince)})
	}
	if r.p.Paradigm == sim.Locking {
		r.disp.ProcUp(proc)
	} else {
		r.sdisp.ProcUp(proc)
	}
	r.kickIdle()
}

func (r *live) kickIdle() {
	for proc := range r.procs {
		ps := &r.procs[proc]
		if ps.busy || ps.down {
			continue
		}
		if r.p.Paradigm == sim.Locking {
			if next, ok := r.disp.Dispatch(proc); ok {
				if r.drec != nil {
					r.decideDispatch(next, proc)
				}
				r.begin(next, proc, true, true, compLocking)
			}
			continue
		}
		if next := r.sdisp.DispatchStack(proc); next >= 0 {
			r.stacks[next].queued = false
			if r.drec != nil {
				r.decideDispatch(r.stacks[next].q[0], proc)
			}
			r.startStack(next, proc, true)
			continue
		}
		if r.p.Paradigm == sim.Hybrid && len(r.overflow) > 0 {
			pkt := r.overflow[0]
			r.overflow = r.overflow[1:]
			if r.drec != nil {
				r.decideDispatch(pkt, proc)
			}
			r.begin(pkt, proc, true, true, compOverflow)
		}
	}
}

// topoScaled applies the topology's migration transient multiplier to
// a model-charged execution time — the DES runner's topoScaled exactly
// (see its comment for the charging rule). Callers hold r.mu and guard
// with r.topo != nil.
func (r *live) topoScaled(texec float64, entity, proc int) float64 {
	if last := r.lastProcOf[entity]; last >= 0 && last != proc {
		if s := r.topo.TransientScale(last, proc); s != 1 {
			w := r.exec.Warm()
			texec = w + s*(texec-w)
		}
	}
	return texec
}

// xRefs returns the displacing references entity e suffered on proc
// since it last completed there; callers hold r.mu.
func (r *live) xRefs(e, proc int) float64 {
	ps := &r.procs[proc]
	if !ps.seen[e] {
		return math.Inf(1)
	}
	dNP := ps.dispNP - ps.markNP[e]
	dProto := ps.dispProto - ps.markProto[e]
	return dNP + (1-r.p.CodeSharedFrac)*dProto
}

// begin places pkt on proc — the DES beginService with the completion
// scheduling replaced by a hand-off to the processor's worker
// goroutine, which plays the interval out on the virtual clock. Callers
// hold r.mu.
func (r *live) begin(pkt sched.Packet, proc int, fromIdle, locked bool, done int) {
	now := r.clk.Now()
	ps := &r.procs[proc]
	if ps.busy && fromIdle {
		panic("live: placed packet on busy processor")
	}
	if ps.down {
		panic("live: placed packet on down processor")
	}
	preempt := 0.0
	if fromIdle {
		ps.dispNP += r.p.Background.Intensity * r.rate * float64(now-ps.idleSince)
		ps.busy = true
		ps.busySince = now
		ps.util.Set(float64(now), 1)
		if r.rec != nil {
			r.emit(obs.Event{T: float64(now), Kind: obs.KindProcBusy,
				Proc: proc, Stream: -1, Entity: -1, Dur: float64(now - ps.idleSince)})
		}
		if r.p.Background.Intensity > 0 {
			preempt = r.p.Background.PreemptCost
		}
	}

	x := r.xRefs(pkt.Entity, proc)
	texec, f1 := r.exec.ExecTimeF1(x)
	if r.topo != nil {
		texec = r.topoScaled(texec, pkt.Entity, proc)
	}
	exec := texec + r.p.DataTouch
	if ps.slow != 1 {
		exec *= ps.slow
	}
	cold := math.IsInf(x, 1)
	if cold {
		r.coldStarts++
	}
	warmHit := !cold && f1 < 0.5
	migrated := false
	if last := r.lastProcOf[pkt.Entity]; last >= 0 && last != proc {
		r.migrations++
		migrated = true
	}
	r.queueing.Add(float64(now - pkt.Arrive))
	if r.rec != nil {
		t := float64(now)
		r.emit(obs.Event{T: t, Kind: obs.KindDispatch, Proc: proc,
			Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq,
			Dur: float64(now - pkt.Arrive)})
		var flags obs.Flags
		if cold {
			flags |= obs.FlagCold
		}
		if migrated {
			flags |= obs.FlagMigrated
		}
		if locked {
			flags |= obs.FlagLocked
		}
		if warmHit {
			flags |= obs.FlagWarm
		}
		r.emit(obs.Event{T: t, Kind: obs.KindExecStart, Proc: proc,
			Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq,
			Dur: exec, Val: x, Flags: flags})
		if cold {
			r.emit(obs.Event{T: t, Kind: obs.KindColdStart, Proc: proc,
				Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
		}
		if migrated {
			r.emit(obs.Event{T: t, Kind: obs.KindMigration, Proc: proc,
				Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq})
		}
	}

	r.clk.wake()
	r.workCh[proc] <- task{pkt: pkt, exec: exec, preempt: preempt,
		warmHit: warmHit, locked: locked, done: done}
}

// complete settles one finished service: statistics, displacement
// marks, affinity state, and the paradigm's continuation — all under
// the dispatch lock, like a DES completion handler at one instant.
func (r *live) complete(tk task, proc int, protoExec float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tk.warmHit {
		r.warm++
	}
	r.settleCompletion(tk.pkt, proc, protoExec)
	switch tk.done {
	case compLocking:
		r.completeLocking(proc)
	case compOverflow:
		r.completeOverflow(proc)
	default:
		r.completeIPS(tk.pkt, proc)
	}
}

func (r *live) settleCompletion(pkt sched.Packet, proc int, protoExec float64) {
	now := r.clk.Now()
	ps := &r.procs[proc]
	ps.dispProto += r.rate * protoExec
	ps.seen[pkt.Entity] = true
	ps.markNP[pkt.Entity] = ps.dispNP
	ps.markProto[pkt.Entity] = ps.dispProto
	r.lastProcOf[pkt.Entity] = proc
	if !ps.down {
		if r.p.Paradigm == sim.Locking {
			r.disp.RanOn(pkt.Entity, proc)
		} else {
			r.sdisp.RanOn(pkt.Entity, proc)
		}
	}
	r.service.Add(protoExec)
	if r.rec != nil {
		r.emit(obs.Event{T: float64(now), Kind: obs.KindExecEnd, Proc: proc,
			Stream: pkt.Stream, Entity: pkt.Entity, Seq: pkt.Seq, Dur: protoExec})
	}

	// Reordering: a completion below its stream's watermark finished
	// after a later arrival of the same stream already did (see the DES
	// runner's settleCompletion).
	if pkt.StreamSeq > r.streamMaxDone[pkt.Stream] {
		r.streamMaxDone[pkt.Stream] = pkt.StreamSeq
	} else {
		r.reordered++
		if r.streamReordered == nil {
			r.streamReordered = make(map[int]uint64)
		}
		r.streamReordered[pkt.Stream]++
		if d := r.streamMaxDone[pkt.Stream] - pkt.StreamSeq; d > r.maxReorderDist {
			r.maxReorderDist = d
		}
	}

	if pkt.Arrive >= r.p.Warmup {
		delay := float64(now - pkt.Arrive)
		r.delays.Add(delay)
		r.delayAcc.Add(delay)
		r.delayHist.Add(delay)
		r.perStream[pkt.Stream].Add(delay)
		r.measured++
		if r.measured >= r.p.MeasuredPackets {
			if r.p.TargetRelCI <= 0 ||
				r.delays.RelativeHalfWidth() <= r.p.TargetRelCI {
				r.clk.stop()
			}
		}
	}
}

func (r *live) goIdle(proc int) {
	now := r.clk.Now()
	ps := &r.procs[proc]
	ps.busy = false
	ps.idleSince = now
	ps.util.Set(float64(now), 0)
	if r.rec != nil {
		r.emit(obs.Event{T: float64(now), Kind: obs.KindProcIdle,
			Proc: proc, Stream: -1, Entity: -1, Dur: float64(now - ps.busySince)})
	}
}

func (r *live) completeLocking(proc int) {
	if r.procs[proc].down {
		r.goIdle(proc)
		r.kickIdle()
		return
	}
	if next, ok := r.disp.Dispatch(proc); ok {
		if r.drec != nil {
			r.decideDispatch(next, proc)
		}
		r.begin(next, proc, false, true, compLocking)
		return
	}
	r.goIdle(proc)
}

func (r *live) completeOverflow(proc int) {
	if r.procs[proc].down {
		r.goIdle(proc)
		r.kickIdle()
		return
	}
	r.dispatchHybrid(proc)
}

func (r *live) dispatchHybrid(proc int) {
	if next := r.sdisp.DispatchStack(proc); next >= 0 {
		r.stacks[next].queued = false
		if r.drec != nil {
			r.decideDispatch(r.stacks[next].q[0], proc)
		}
		r.startStack(next, proc, false)
		return
	}
	if len(r.overflow) > 0 {
		pkt := r.overflow[0]
		r.overflow = r.overflow[1:]
		if r.drec != nil {
			r.decideDispatch(pkt, proc)
		}
		r.begin(pkt, proc, false, true, compOverflow)
		return
	}
	r.goIdle(proc)
}

func (r *live) completeIPS(pkt sched.Packet, proc int) {
	k := pkt.Entity
	st := &r.stacks[k]
	st.q = st.q[1:]
	if r.procs[proc].down {
		st.running = false
		if len(st.q) > 0 {
			st.queued = true
			r.sdisp.EnqueueStack(k)
		}
		r.goIdle(proc)
		r.kickIdle()
		return
	}
	if len(st.q) > 0 {
		if next := r.sdisp.DispatchStack(proc); next >= 0 {
			st.running = false
			st.queued = true
			r.sdisp.EnqueueStack(k)
			r.stacks[next].queued = false
			if r.drec != nil {
				r.decideDispatch(r.stacks[next].q[0], proc)
			}
			r.startStack(next, proc, false)
			return
		}
		// Continuing the same stack on the same processor is not a
		// decision: there was no alternative to weigh.
		r.begin(st.q[0], proc, false, false, compIPS)
		return
	}
	st.running = false
	if r.p.Paradigm == sim.Hybrid {
		r.dispatchHybrid(proc)
		return
	}
	if next := r.sdisp.DispatchStack(proc); next >= 0 {
		r.stacks[next].queued = false
		if r.drec != nil {
			r.decideDispatch(r.stacks[next].q[0], proc)
		}
		r.startStack(next, proc, false)
		return
	}
	r.goIdle(proc)
}

func (r *live) startStack(k, proc int, fromIdle bool) {
	st := &r.stacks[k]
	if len(st.q) == 0 {
		panic("live: started an empty stack")
	}
	st.running = true
	st.queued = false
	r.begin(st.q[0], proc, fromIdle, false, compIPS)
}

func (r *live) queuedPackets() int {
	if r.p.Paradigm == sim.Locking {
		return r.disp.Queued()
	}
	n := len(r.overflow)
	for i := range r.stacks {
		q := len(r.stacks[i].q)
		if r.stacks[i].running && q > 0 {
			q--
		}
		n += q
	}
	return n
}

func (r *live) inFlight() int {
	n := 0
	for i := range r.procs {
		if r.procs[i].busy {
			n++
		}
	}
	return n
}

// results assembles the sim.Results after every goroutine has unwound;
// no locks are needed, the run is over.
func (r *live) results() sim.Results {
	now := r.clk.Now()
	measureSpan := now - r.p.Warmup
	offered := float64(r.p.Streams) * r.p.Arrival.Rate()
	if r.p.ArrivalPerStream != nil {
		offered = 0
		for _, spec := range r.p.ArrivalPerStream {
			offered += spec.Rate()
		}
	}
	res := sim.Results{
		Paradigm:       r.p.Paradigm.String(),
		Policy:         r.p.Policy.String(),
		OfferedRate:    offered,
		Completed:      uint64(r.measured),
		CompletedTotal: r.service.N(),
		Arrivals:       r.arrivals,
		MeanDelay:      r.delayAcc.Mean(),
		DelayCI:        r.delays.HalfWidth(),
		MaxDelay:       r.delayAcc.Max(),
		MeanService:    r.service.Mean(),
		MeanQueueing:   r.queueing.Mean(),
		MeanLockWait:   r.lockWait.Mean(),
		ColdStarts:     r.coldStarts,
		Migrations:     r.migrations,
		Spills:         r.spills,
		QueueAtEnd:     r.queuedPackets(),
		InFlightAtEnd:  r.inFlight(),
		SimTime:        now,

		EventsFired:       r.clk.Fired(),
		RecorderEvents:    r.emitted,
		DecisionsRecorded: r.decisions,

		ReorderedTotal:     r.reordered,
		MaxReorderDistance: r.maxReorderDist,
		PerStreamReordered: r.streamReordered, // run-owned; nil when in order
	}
	res.P95Delay, res.P95Clamped = r.delayHist.QuantileClamped(0.95)
	res.DelayOverflow = r.delayHist.OverflowFraction()
	res.Dropped = r.dropped
	if r.arrivals > 0 {
		res.DropFraction = float64(r.dropped) / float64(r.arrivals)
	}
	if now > 0 {
		res.GoodputPPS = float64(r.service.N()) / now.Seconds()
	}
	if !r.p.Faults.Empty() {
		res.PerProcDownTime = make([]float64, len(r.procs))
		for i := range r.procs {
			dt := r.procs[i].downTime
			if r.procs[i].down {
				dt += float64(now - r.procs[i].downSince)
			}
			res.PerProcDownTime[i] = dt
		}
	}
	if r.p.Paradigm == sim.Locking {
		res.AffinityHits, res.Placements = r.disp.AffinityStats()
	} else {
		res.AffinityHits, res.Placements = r.sdisp.AffinityStats()
	}
	if total := r.service.N(); total > 0 {
		res.WarmFraction = float64(r.warm) / float64(total)
	}
	if measureSpan > 0 && r.measured > 0 {
		res.Throughput = float64(r.measured) / measureSpan.Seconds()
	}
	var util float64
	res.PerProcBusyTime = make([]float64, len(r.procs))
	for i := range r.procs {
		m := r.procs[i].util.Mean(float64(now))
		util += m
		res.PerProcBusyTime[i] = m * float64(now)
	}
	res.Utilization = util / float64(len(r.procs))
	res.Saturated = r.measured < r.p.MeasuredPackets ||
		res.QueueAtEnd > 20*r.p.Processors
	res.PerStreamDelay = make([]float64, len(r.perStream))
	for i := range r.perStream {
		res.PerStreamDelay[i] = r.perStream[i].Mean()
	}
	res.DelayFairness = sim.JainIndex(res.PerStreamDelay)
	if r.tsink != nil {
		res.Trace = r.tsink.entries
	}
	if m := obs.FindMetrics(r.p.Recorder); m != nil {
		snap := m.Snapshot()
		res.Obs = &snap
	}
	return res
}
