package live_test

import (
	"math"
	"reflect"
	"testing"

	"affinity/internal/live"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// The live-backend half of the AffinitySteal corner contract: the same
// degenerate parameter points that reduce to FCFS/MRU/Wired-Streams on
// the DES must reduce on the goroutine engine too — the policy family
// is a property of the dispatcher, not of the engine driving it.
// Poisson arrivals keep every arrival instant distinct, so both runs
// see the same first-seen stream order and the pinned corner's
// first-touch round-robin homes line up with Wired-Streams'.
func TestLiveStealCornersEqualPaperPolicies(t *testing.T) {
	for _, c := range []struct {
		name   string
		params sched.StealParams
		equals sched.Kind
	}{
		{"penalty0/depth0/bias0", sched.StealParams{}, sched.FCFS},
		{"penalty0/depth0/bias1", sched.StealParams{ColdBias: 1}, sched.MRU},
		{"penaltyInf", sched.StealParams{Penalty: math.Inf(1)}, sched.WiredStreams},
	} {
		ref := sim.Params{
			Paradigm: sim.Locking, Policy: c.equals, Streams: 8, Processors: 4,
			Arrival:         traffic.Poisson{PacketsPerSec: 1000},
			Seed:            42,
			MeasuredPackets: 1500,
		}
		fam := ref
		fam.Policy = sched.AffinitySteal
		fam.Steal = c.params
		a, b := live.Run(fam), live.Run(ref)
		if !reflect.DeepEqual(unbrand(a), unbrand(b)) {
			t.Errorf("%s: live AffinitySteal diverged from %v\n steal: %+v\n ref:   %+v",
				c.name, c.equals, a, b)
		}
	}
}

// An interior family point must run on the live backend at all — the
// steal-age gate reads the virtual clock through StealConfig.Now, and
// this pins that the live engine actually wired one in (a nil clock
// panics at construction).
func TestLiveStealInteriorRuns(t *testing.T) {
	p := sim.Params{
		Paradigm: sim.Locking, Policy: sched.AffinitySteal, Streams: 8, Processors: 4,
		Steal:           sched.StealParams{Penalty: 50, DepthThreshold: 2, ColdBias: 1},
		Arrival:         traffic.Batch{PacketsPerSec: 2500, MeanBurst: 8},
		Seed:            42,
		MeasuredPackets: 1500,
	}
	r := live.Run(p)
	accounted := r.CompletedTotal + uint64(r.InFlightAtEnd) + uint64(r.QueueAtEnd) + r.Dropped
	if r.Arrivals != accounted {
		t.Errorf("live interior steal leaks packets: arrivals %d, accounted %d", r.Arrivals, accounted)
	}
	if r.Completed == 0 {
		t.Error("live interior steal completed nothing")
	}
}
