package live

import (
	"testing"

	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

func quick(paradigm sim.Paradigm, policy sched.Kind) sim.Params {
	p := sim.Params{
		Paradigm: paradigm, Policy: policy, Streams: 8,
		Arrival:         traffic.Poisson{PacketsPerSec: 2000.0 / 8},
		Seed:            1,
		MeasuredPackets: 2000,
	}
	if paradigm != sim.Locking {
		p.Stacks = 8
	}
	return p
}

// TestLiveInvariantsEveryParadigm runs the live backend across every
// paradigm, a fault window, bounded queues, and injected loss, and
// checks the shared invariants (conservation ledger, affinity
// accounting, cross-field sanity) that both backends must satisfy.
func TestLiveInvariantsEveryParadigm(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*sim.Params)
	}{
		{"locking-fcfs", func(p *sim.Params) { p.Policy = sched.FCFS }},
		{"locking-mru", func(p *sim.Params) {}},
		{"locking-pools", func(p *sim.Params) { p.Policy = sched.ThreadPools }},
		{"locking-wired", func(p *sim.Params) { p.Policy = sched.WiredStreams }},
		{"ips-wired", func(p *sim.Params) { *p = quick(sim.IPS, sched.IPSWired) }},
		{"ips-mru", func(p *sim.Params) { *p = quick(sim.IPS, sched.IPSMRU) }},
		{"hybrid", func(p *sim.Params) { *p = quick(sim.Hybrid, sched.IPSMRU) }},
		{"hot", func(p *sim.Params) { p.Arrival = traffic.Poisson{PacketsPerSec: 4000.0 / 8} }},
		{"faulted", func(p *sim.Params) {
			p.Faults = (&faults.Plan{}).
				Down(250*des.Millisecond, 0).
				Up(400*des.Millisecond, 0).
				WithLoss(220*des.Millisecond, 0.05)
			p.MaxQueueDepth = 16
		}},
		{"burst-fault", func(p *sim.Params) {
			p.Faults = &faults.Plan{Events: []faults.Event{
				{At: 230 * des.Millisecond, Kind: faults.Burst, Stream: -1, Count: 40},
				{At: 260 * des.Millisecond, Kind: faults.Slowdown, Proc: 1, Factor: 2},
			}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := quick(sim.Locking, sched.MRU)
			tc.mut(&p)
			res := Run(p)
			if err := sim.CheckInvariants(res); err != nil {
				t.Error(err)
			}
			if res.CompletedTotal == 0 {
				t.Error("live run completed no packets")
			}
		})
	}
}

// TestLiveMatchesDESArrivals pins the shared-randomness contract: both
// backends build their arrival processes from the same seed-derived
// streams, so the admitted arrival counts are bit-identical even though
// scheduling interleavings are not.
func TestLiveMatchesDESArrivals(t *testing.T) {
	for _, p := range []sim.Params{
		quick(sim.Locking, sched.MRU),
		quick(sim.IPS, sched.IPSWired),
		quick(sim.Hybrid, sched.IPSMRU),
	} {
		d := sim.Run(p)
		l := Run(p)
		if d.Arrivals != l.Arrivals {
			t.Errorf("%s/%s: DES saw %d arrivals, live %d — arrival RNG streams diverged",
				d.Paradigm, d.Policy, d.Arrivals, l.Arrivals)
		}
	}
}

// TestLiveSaturationDetected overloads the machine and expects the
// live backend to flag it, like the DES does.
func TestLiveSaturationDetected(t *testing.T) {
	p := quick(sim.Locking, sched.FCFS)
	p.Arrival = traffic.Poisson{PacketsPerSec: 6000}
	p.MaxTime = 2 * des.Second
	res := Run(p)
	if !res.Saturated {
		t.Errorf("48000 pkt/s offered, Saturated = false (queue at end %d)", res.QueueAtEnd)
	}
	if err := sim.CheckInvariants(res); err != nil {
		t.Error(err)
	}
}

// TestLiveLockWaitObserved checks the virtual shared-stack lock is
// actually contended under Locking at load: lock waits must show up in
// the results like they do in the DES.
func TestLiveLockWaitObserved(t *testing.T) {
	p := quick(sim.Locking, sched.MRU)
	p.Arrival = traffic.Poisson{PacketsPerSec: 4300}
	res := Run(p)
	if res.MeanLockWait <= 0 {
		t.Errorf("MeanLockWait = %v at 34400 pkt/s offered, want > 0", res.MeanLockWait)
	}
}

// TestLiveTrace exercises the per-decision trace adapter.
func TestLiveTrace(t *testing.T) {
	p := quick(sim.Locking, sched.MRU)
	p.TraceN = 64
	res := Run(p)
	if len(res.Trace) != 64 {
		t.Fatalf("len(Trace) = %d, want 64", len(res.Trace))
	}
	for i, e := range res.Trace {
		if e.Processor < 0 || e.Processor >= 8 {
			t.Errorf("trace[%d]: processor %d out of range", i, e.Processor)
		}
		if e.Exec <= 0 {
			t.Errorf("trace[%d]: non-positive exec %v", i, e.Exec)
		}
		if i > 0 && e.Start < res.Trace[i-1].Start {
			t.Errorf("trace[%d]: start %v before previous %v", i, e.Start, res.Trace[i-1].Start)
		}
	}
}

// TestLiveRecorderParity attaches a metrics recorder to both backends:
// the live event stream must aggregate to the same arrival, completion
// and drop counters as the DES stream (identical arrivals, conserved
// packets), even though per-event interleavings differ.
func TestLiveRecorderParity(t *testing.T) {
	run := func(backend func(sim.Params) sim.Results) obs.Snapshot {
		p := quick(sim.Locking, sched.MRU)
		p.Faults = (&faults.Plan{}).WithLoss(0, 0.03)
		p.Recorder = obs.NewMetrics()
		res := backend(p)
		if res.Obs == nil {
			t.Fatal("Results.Obs missing with a metrics recorder attached")
		}
		return *res.Obs
	}
	d := run(sim.Run)
	l := run(Run)
	if d.Arrivals != l.Arrivals {
		t.Errorf("recorder arrivals: DES %d, live %d", d.Arrivals, l.Arrivals)
	}
	if d.Drops != l.Drops {
		t.Errorf("recorder drops: DES %d, live %d", d.Drops, l.Drops)
	}
	if l.Completions == 0 {
		t.Error("live recorder saw no completions")
	}
}

// TestLivePanicsOnInvalidParams matches the DES contract: Validate
// failures panic rather than silently running garbage.
func TestLivePanicsOnInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid Params did not panic")
		}
	}()
	p := quick(sim.IPS, sched.MRU) // MRU is not an IPS policy
	Run(p)
}
