// Package live is the concurrent execution backend: it runs the same
// dispatch policies as the discrete-event simulator (internal/sim) on
// real goroutines — one worker per simulated processor, real channels
// and locks for the shared queue — with per-packet service times drawn
// from the same compiled analytic cost model (core.Exec).
//
// Time is virtual. A run does not sleep wall-clock microseconds;
// instead every goroutine that would wait (for a service time to
// elapse, for work to arrive, for the shared-stack lock) blocks on the
// run's virtual clock, and the clock advances to the earliest pending
// wake-up only when every goroutine in the run is blocked. That makes a
// live run complete as fast as the hardware allows while preserving the
// simulated timescale, exactly like a conservatively synchronized
// parallel simulation. What the virtual clock does NOT serialize is the
// goroutines themselves: workers woken at the same virtual instant run
// concurrently on real OS threads, contend for the real dispatch lock
// in hardware order, and interleave their scheduling decisions
// nondeterministically — the concurrency artifacts (migration races,
// dispatch reordering, lock convoys) that a sequential DES cannot
// exhibit and that the differential harness (differ_test.go) checks the
// DES against.
//
// The results are therefore NOT bit-reproducible across runs; they are
// statistically reproducible, and structurally identical (same
// sim.Results shape, same conservation ledger, same observability event
// kinds). DESIGN.md §10 states what can and cannot be compared
// bit-for-bit between the two backends.
package live

import (
	"sync"

	"affinity/internal/des"
)

// sleeper is one goroutine blocked until a virtual instant. A keyed
// sleeper is an ordered event source (an arrival stream): same-instant
// keyed sleepers are released one at a time in (at, seq) order, each
// running to its next park before the following one releases, instead
// of being released together to race. Because arrival sources register
// their first sleep in stream order and re-register serially under this
// protocol, a keyed sleeper's seq reproduces the DES event heap's
// schedule order exactly — the deterministic (stream, seq) tie-break
// both backends share (see DESIGN.md §10).
type sleeper struct {
	at    des.Time
	seq   uint64
	keyed bool
	ch    chan struct{}
}

// clock is the virtual-time coordinator. Every goroutine participating
// in a run is registered (spawn/exit) and is, at any moment, either
// runnable — executing code, or blocked on an ordinary mutex another
// runnable goroutine holds — or blocked in the clock (sleep, parkRecv).
// The clock advances only when the runnable count reaches zero: it then
// jumps to the earliest pending wake-up and releases every sleeper due
// at that instant at once, so same-time events execute with real
// concurrency.
//
// The accounting protocol for channel-based blocking: a sender that
// will unblock a parked receiver calls wake (crediting one runnable)
// before sending; parkRecv debits the receiver when it blocks and
// consumes the sender's credit when a value was already buffered. The
// credit always travels with the hand-off, never with a particular
// goroutine, so it balances no matter which side wins the race.
type clock struct {
	mu       sync.Mutex
	now      des.Time
	horizon  des.Time
	runnable int
	sleepers []sleeper // binary min-heap by (at, seq)
	seq      uint64
	fired    uint64
	stopped  bool
	stopCh   chan struct{}
}

func newClock(horizon des.Time) *clock {
	return &clock{horizon: horizon, stopCh: make(chan struct{})}
}

// Now returns the current virtual time. A runnable caller sees a stable
// value: the clock cannot advance while anything is runnable.
func (c *clock) Now() des.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Fired returns how many virtual timer events have been released.
func (c *clock) Fired() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// Pending returns the number of goroutines currently asleep on a timer
// (the live analogue of the DES event-heap depth).
func (c *clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sleepers)
}

// spawn registers n goroutines about to start; call before `go`.
func (c *clock) spawn(n int) {
	c.mu.Lock()
	c.runnable += n
	c.mu.Unlock()
}

// exit unregisters the calling goroutine.
func (c *clock) exit() {
	c.mu.Lock()
	c.runnable--
	c.advanceLocked()
	c.mu.Unlock()
}

// wake credits one runnable for a hand-off the caller is about to make
// (a channel send that unblocks a parked goroutine).
func (c *clock) wake() {
	c.mu.Lock()
	c.runnable++
	c.mu.Unlock()
}

// sleep blocks the caller for d of virtual time. It returns false when
// the run stopped instead (the caller should unwind).
func (c *clock) sleep(d des.Time) bool {
	if d < 0 {
		panic("live: negative sleep")
	}
	c.mu.Lock()
	return c.sleepAtLocked(c.now+d, false)
}

// sleepKeyed is sleep for ordered event sources: the sleeper releases
// serially in deterministic (at, seq) order ahead of any same-instant
// unkeyed sleepers (see the sleeper comment).
func (c *clock) sleepKeyed(d des.Time) bool {
	if d < 0 {
		panic("live: negative sleep")
	}
	c.mu.Lock()
	return c.sleepAtLocked(c.now+d, true)
}

// sleepUntil blocks the caller until virtual time at (or now, if at is
// already past). It returns false when the run stopped instead.
func (c *clock) sleepUntil(at des.Time) bool {
	c.mu.Lock()
	if at < c.now {
		at = c.now
	}
	return c.sleepAtLocked(at, false)
}

// sleepAtLocked enqueues the caller as a sleeper due at the absolute
// instant at and blocks until released. Called with mu held; unlocks.
func (c *clock) sleepAtLocked(at des.Time, keyed bool) bool {
	if c.stopped {
		c.mu.Unlock()
		return false
	}
	ch := make(chan struct{})
	c.heapPush(sleeper{at: at, seq: c.seq, keyed: keyed, ch: ch})
	c.seq++
	c.runnable--
	c.advanceLocked()
	c.mu.Unlock()
	select {
	case <-ch:
		return true
	case <-c.stopCh:
		return false
	}
}

// preSleep registers a keyed sleeper on behalf of a goroutine that has
// not been spawned (and is not counted runnable) yet; the goroutine
// must block on the returned channel before doing anything else. The
// caller registers its event sources in a fixed order before starting
// any of them, which pins the initial seq assignment — the base case of
// the keyed determinism induction; racing first-sleeps from the sources
// themselves would scramble it.
func (c *clock) preSleep(d des.Time) chan struct{} {
	if d < 0 {
		panic("live: negative sleep")
	}
	ch := make(chan struct{})
	c.mu.Lock()
	c.heapPush(sleeper{at: c.now + d, seq: c.seq, keyed: true, ch: ch})
	c.seq++
	c.mu.Unlock()
	return ch
}

// parkRecv blocks the caller on ch until a value is handed to it (the
// sender must call wake before sending) or the run stops. Unlike sleep,
// a parked goroutine has no due time and does not hold up the clock.
func parkRecv[T any](c *clock, ch chan T) (T, bool) {
	var zero T
	c.mu.Lock()
	select {
	case v := <-ch:
		// The value was already buffered: consume the sender's credit —
		// the caller itself never stopped being runnable.
		c.runnable--
		c.mu.Unlock()
		return v, true
	default:
	}
	if c.stopped {
		c.mu.Unlock()
		return zero, false
	}
	c.runnable--
	c.advanceLocked()
	c.mu.Unlock()
	select {
	case v := <-ch:
		return v, true
	case <-c.stopCh:
		return zero, false
	}
}

// stop freezes the clock and releases every blocked goroutine with a
// "run over" signal. Idempotent.
func (c *clock) stop() {
	c.mu.Lock()
	c.stopLocked()
	c.mu.Unlock()
}

func (c *clock) stopLocked() {
	if c.stopped {
		return
	}
	c.stopped = true
	close(c.stopCh)
}

// advanceLocked advances virtual time when nothing is runnable: it
// releases every sleeper due at the earliest pending instant together.
// Crossing the horizon, or full quiescence (nothing runnable AND no
// pending timer — nothing can ever happen again), ends the run; DES
// RunUntil semantics put the clock at the horizon in both cases.
func (c *clock) advanceLocked() {
	if c.runnable > 0 || c.stopped {
		return
	}
	if len(c.sleepers) == 0 {
		c.now = c.horizon
		c.stopLocked()
		return
	}
	t := c.sleepers[0].at
	if t > c.horizon {
		c.now = c.horizon
		c.stopLocked()
		return
	}
	c.now = t
	// Keyed sleepers sort ahead of same-instant unkeyed ones, so a keyed
	// top means ordered events are pending at t: release exactly one and
	// let it run to its next park (runnable returns to zero) before the
	// next release — the serial, deterministic firing order of the DES
	// event loop. Only when no keyed sleeper remains at t does the
	// same-instant unkeyed batch release together to race.
	if c.sleepers[0].keyed {
		s := c.heapPop()
		c.runnable++
		c.fired++
		close(s.ch)
		return
	}
	for len(c.sleepers) > 0 && c.sleepers[0].at == t {
		s := c.heapPop()
		c.runnable++
		c.fired++
		close(s.ch)
	}
}

// heapPush / heapPop maintain the sleeper min-heap ordered by
// (at, keyed-first, seq); seq keeps same-instant wake order stable with
// registration order, and keyed (ordered-event) sleepers sort ahead of
// unkeyed ones at the same instant so advanceLocked can serialize them.
func (c *clock) heapPush(s sleeper) {
	c.sleepers = append(c.sleepers, s)
	i := len(c.sleepers) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !sleeperLess(c.sleepers[i], c.sleepers[parent]) {
			break
		}
		c.sleepers[i], c.sleepers[parent] = c.sleepers[parent], c.sleepers[i]
		i = parent
	}
}

func (c *clock) heapPop() sleeper {
	top := c.sleepers[0]
	n := len(c.sleepers) - 1
	c.sleepers[0] = c.sleepers[n]
	c.sleepers[n] = sleeper{}
	c.sleepers = c.sleepers[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && sleeperLess(c.sleepers[l], c.sleepers[min]) {
			min = l
		}
		if r < n && sleeperLess(c.sleepers[r], c.sleepers[min]) {
			min = r
		}
		if min == i {
			break
		}
		c.sleepers[i], c.sleepers[min] = c.sleepers[min], c.sleepers[i]
		i = min
	}
	return top
}

func sleeperLess(a, b sleeper) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.keyed != b.keyed {
		return a.keyed
	}
	return a.seq < b.seq
}
