package live

import (
	"testing"

	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// kindCounter tallies events per kind; the comparisons below only use
// kinds whose counts are determined by the deterministic inputs both
// backends share (arrival RNG streams, loss RNG stream, fault plan) —
// not by scheduling order, which the live backend resolves under a real
// lock.
type kindCounter struct {
	counts map[obs.Kind]uint64
}

func (k *kindCounter) Record(e obs.Event) {
	if k.counts == nil {
		k.counts = map[obs.Kind]uint64{}
	}
	k.counts[e.Kind]++
}

// TestLiveObsAgreesWithDES replays the sim package's pinned fault-plan
// fixture scenario (see TestObsGoldenFaultRun) on both backends and
// checks the event stream agrees wherever determinism is shared:
// arrivals, drops, and the fault transitions. Both decision ledgers must
// be live too, even though their contents order-depend.
func TestLiveObsAgreesWithDES(t *testing.T) {
	params := func() sim.Params {
		p := quick(sim.Locking, sched.MRU)
		p.Processors = 2
		p.Streams = 2
		p.Arrival = traffic.Poisson{PacketsPerSec: 500}
		p.MeasuredPackets = 100
		p.Warmup = des.Millisecond
		p.MaxQueueDepth = 1
		p.Seed = 42
		p.Faults = (&faults.Plan{}).
			Down(20*des.Millisecond, 0).
			Up(40*des.Millisecond, 0).
			WithLoss(0, 0.05)
		return p
	}

	var desCount, liveCount kindCounter
	pd := params()
	pd.Recorder = &desCount
	pd.DecisionRecorder = obs.NewFlightRecorder(0, 0)
	desRes := sim.Run(pd)

	pl := params()
	pl.Recorder = &liveCount
	pl.DecisionRecorder = obs.NewFlightRecorder(0, 0)
	liveRes := Run(pl)

	for _, k := range []obs.Kind{obs.KindArrival, obs.KindDrop, obs.KindProcDown, obs.KindProcUp} {
		if desCount.counts[k] != liveCount.counts[k] {
			t.Errorf("%v: DES saw %d, live saw %d", k, desCount.counts[k], liveCount.counts[k])
		}
		if desCount.counts[k] == 0 {
			t.Errorf("%v: scenario produced no events — agreement is vacuous", k)
		}
	}
	if desRes.DecisionsRecorded == 0 || liveRes.DecisionsRecorded == 0 {
		t.Errorf("decision ledgers: DES %d, live %d — both must be live",
			desRes.DecisionsRecorded, liveRes.DecisionsRecorded)
	}
}
