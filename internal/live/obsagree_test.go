package live

import (
	"testing"

	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// kindCounter tallies events per kind; the comparisons below only use
// kinds whose counts are determined by the deterministic inputs both
// backends share (arrival RNG streams, loss RNG stream, fault plan) —
// not by scheduling order, which the live backend resolves under a real
// lock.
type kindCounter struct {
	counts map[obs.Kind]uint64
}

func (k *kindCounter) Record(e obs.Event) {
	if k.counts == nil {
		k.counts = map[obs.Kind]uint64{}
	}
	k.counts[e.Kind]++
}

// arrivalOrder records the exact firing order of arrival events:
// (virtual time, stream, packet serial) per admitted packet.
type arrivalOrder struct {
	evs []obs.Event
}

func (a *arrivalOrder) Record(e obs.Event) {
	if e.Kind == obs.KindArrival {
		a.evs = append(a.evs, obs.Event{T: e.T, Stream: e.Stream, Seq: e.Seq})
	}
}

// TestArrivalOrderAgreesWithDES pins the deterministic tie-break: on
// tie-heavy arrival processes (same-rate CBR streams collide at every
// instant; batch streams deliver same-instant bursts) the live backend
// must admit packets in exactly the DES's order — same (time, stream)
// sequence, same serial numbers — because keyed sleepers (clock.go)
// serialize same-instant arrivals in the DES's (stream, seq) order
// instead of letting goroutine scheduling race them.
func TestArrivalOrderAgreesWithDES(t *testing.T) {
	cases := []struct {
		name string
		arr  traffic.Spec
	}{
		{"cbr", traffic.Deterministic{PacketsPerSec: 2500}},
		{"batch", traffic.Batch{PacketsPerSec: 2500, MeanBurst: 8}},
		{"mixed-period", traffic.Deterministic{PacketsPerSec: 2000}},
	}
	for _, cs := range cases {
		for _, seed := range []int64{1, 2, 3} {
			params := func() sim.Params {
				p := quick(sim.Locking, sched.MRU)
				p.Streams = 8
				p.Arrival = cs.arr
				p.MeasuredPackets = 500
				p.Seed = seed
				return p
			}
			var do, lo arrivalOrder
			pd := params()
			pd.Recorder = &do
			sim.Run(pd)
			pl := params()
			pl.Recorder = &lo
			Run(pl)
			n := len(do.evs)
			if len(lo.evs) < n {
				n = len(lo.evs)
			}
			for i := 0; i < n; i++ {
				if do.evs[i] != lo.evs[i] {
					t.Errorf("%s seed=%d: arrival %d: DES %+v, live %+v — same-instant order diverged",
						cs.name, seed, i, do.evs[i], lo.evs[i])
					break
				}
			}
			if len(do.evs) != len(lo.evs) {
				t.Errorf("%s seed=%d: DES admitted %d arrivals, live %d",
					cs.name, seed, len(do.evs), len(lo.evs))
			}
			if len(do.evs) == 0 {
				t.Errorf("%s seed=%d: no arrivals recorded — agreement is vacuous", cs.name, seed)
			}
		}
	}
}

// TestLiveObsAgreesWithDES replays the sim package's pinned fault-plan
// fixture scenario (see TestObsGoldenFaultRun) on both backends and
// checks the event stream agrees wherever determinism is shared:
// arrivals, drops, and the fault transitions. Both decision ledgers must
// be live too, even though their contents order-depend.
func TestLiveObsAgreesWithDES(t *testing.T) {
	params := func() sim.Params {
		p := quick(sim.Locking, sched.MRU)
		p.Processors = 2
		p.Streams = 2
		p.Arrival = traffic.Poisson{PacketsPerSec: 500}
		p.MeasuredPackets = 100
		p.Warmup = des.Millisecond
		p.MaxQueueDepth = 1
		p.Seed = 42
		p.Faults = (&faults.Plan{}).
			Down(20*des.Millisecond, 0).
			Up(40*des.Millisecond, 0).
			WithLoss(0, 0.05)
		return p
	}

	var desCount, liveCount kindCounter
	pd := params()
	pd.Recorder = &desCount
	pd.DecisionRecorder = obs.NewFlightRecorder(0, 0)
	desRes := sim.Run(pd)

	pl := params()
	pl.Recorder = &liveCount
	pl.DecisionRecorder = obs.NewFlightRecorder(0, 0)
	liveRes := Run(pl)

	for _, k := range []obs.Kind{obs.KindArrival, obs.KindDrop, obs.KindProcDown, obs.KindProcUp} {
		if desCount.counts[k] != liveCount.counts[k] {
			t.Errorf("%v: DES saw %d, live saw %d", k, desCount.counts[k], liveCount.counts[k])
		}
		if desCount.counts[k] == 0 {
			t.Errorf("%v: scenario produced no events — agreement is vacuous", k)
		}
	}
	if desRes.DecisionsRecorded == 0 || liveRes.DecisionsRecorded == 0 {
		t.Errorf("decision ledgers: DES %d, live %d — both must be live",
			desRes.DecisionsRecorded, liveRes.DecisionsRecorded)
	}
}
