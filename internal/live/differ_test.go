package live_test

import (
	"math"
	"reflect"
	"testing"

	"affinity/internal/exp"
	"affinity/internal/live"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// The differential validation harness: the DES and the live goroutine
// backend run the same configurations and must agree on everything the
// model determines — packet conservation, affinity-hit accounting, and
// which policy wins at every E29 operating point — and agree
// statistically (within delayTolerance) on mean delay. This is what
// turns the DES goldens into cross-validated results instead of
// self-referential ones: a bug in either engine's queueing or affinity
// logic breaks the agreement. See DESIGN.md §10.

// delayTolerance is the documented DES↔live relative mean-delay bound
// at unsaturated operating points. Keyed sleepers (clock.go) make the
// live backend fire same-instant arrivals in the DES's deterministic
// order, so the only residual divergence source is an arrival tying
// exactly with a completion or fault event (live releases the keyed
// arrival first; the DES goes by global insertion order). Measured
// divergence across paradigms, seeds and tie-heavy arrival processes
// peaks below 0.05% (batch bursts; CBR and Poisson agree to <0.01%),
// so 0.5% is ~10x headroom. Saturated points are excluded: their means
// are dominated by backlog growth over the measurement window, not
// steady-state behavior.
const delayTolerance = 0.005

var differSeeds = []int64{1, 2, 3}

// runBoth executes the same Params on both backends and checks the
// shared invariants plus the exact cross-backend agreements: identical
// admitted arrivals (same seed-derived arrival RNG streams) and a
// conserved ledger on each side. The DES side additionally runs with
// Shards=4 and must reproduce the sequential Results bit for bit, so
// every cross-backend agreement in this harness is simultaneously a
// shard-invariance check (the live backend ignores Shards).
func runBoth(t *testing.T, p sim.Params) (des, lv sim.Results) {
	t.Helper()
	des = sim.Run(p)
	sharded := p
	sharded.Shards = 4
	if got := sim.Run(sharded); !reflect.DeepEqual(des, got) {
		t.Errorf("%s/%s seed=%d: DES results differ at Shards=4 — sharding must be invisible",
			p.Paradigm, p.Policy, p.Seed)
	}
	lv = live.Run(p)
	for _, r := range []struct {
		backend string
		res     sim.Results
	}{{"des", des}, {"live", lv}} {
		if err := sim.CheckInvariants(r.res); err != nil {
			t.Errorf("%s: %v", r.backend, err)
		}
	}
	if des.Arrivals != lv.Arrivals {
		t.Errorf("%s/%s seed=%d: DES %d arrivals, live %d — arrival streams must be bit-identical",
			des.Paradigm, des.Policy, p.Seed, des.Arrivals, lv.Arrivals)
	}
	return des, lv
}

// TestDifferentialWinOrderE29 replays the E29 sweep across seeds: at
// every operating point the two backends must name the same winning
// policy. The sweep's margins are ≥5x, so a flipped verdict is an
// engine bug, not noise.
func TestDifferentialWinOrderE29(t *testing.T) {
	for _, cs := range exp.E29Cases() {
		for _, seed := range differSeeds {
			a, b := cs.A, cs.B
			a.Seed, b.Seed = seed, seed
			a.MeasuredPackets, b.MeasuredPackets = 3000, 3000
			desA, liveA := runBoth(t, a)
			desB, liveB := runBoth(t, b)
			desWin := desA.Policy
			if desB.MeanDelay < desA.MeanDelay {
				desWin = desB.Policy
			}
			liveWin := liveA.Policy
			if liveB.MeanDelay < liveA.MeanDelay {
				liveWin = liveB.Policy
			}
			if desWin != liveWin {
				t.Errorf("%s seed=%d: DES says %s wins (%v vs %v), live says %s (%v vs %v)",
					cs.Name, seed, desWin, desA.MeanDelay, desB.MeanDelay,
					liveWin, liveA.MeanDelay, liveB.MeanDelay)
			}
		}
	}
}

// toleranceCases are unsaturated operating points for the quantitative
// comparison, including tie-heavy arrival processes (deterministic,
// batch) where same-instant races actually exercise the nondeterminism
// the tolerance exists for.
func toleranceCases() []sim.Params {
	return []sim.Params{
		{Paradigm: sim.Locking, Policy: sched.FCFS, Streams: 8,
			Arrival: traffic.Poisson{PacketsPerSec: 2500}},
		{Paradigm: sim.Locking, Policy: sched.MRU, Streams: 8,
			Arrival: traffic.Deterministic{PacketsPerSec: 2500}},
		{Paradigm: sim.Locking, Policy: sched.ThreadPools, Streams: 16,
			Arrival: traffic.Poisson{PacketsPerSec: 1500}},
		{Paradigm: sim.Locking, Policy: sched.FCFS, Streams: 8,
			Arrival: traffic.Batch{PacketsPerSec: 2500, MeanBurst: 16}},
		{Paradigm: sim.IPS, Policy: sched.IPSWired, Streams: 16, Stacks: 16,
			Arrival: traffic.Poisson{PacketsPerSec: 2500}},
		{Paradigm: sim.IPS, Policy: sched.IPSWired, Streams: 16, Stacks: 16,
			Arrival: traffic.Deterministic{PacketsPerSec: 2000}},
		{Paradigm: sim.Hybrid, Policy: sched.IPSMRU, Streams: 8, Stacks: 4,
			Arrival: traffic.Poisson{PacketsPerSec: 3000}},
	}
}

// TestDifferentialMeanDelayTolerance pins the statistical agreement:
// mean delay within delayTolerance, warm fraction within 0.1, and
// identical total throughput denominators, across every tolerance case
// and seed.
func TestDifferentialMeanDelayTolerance(t *testing.T) {
	for _, base := range toleranceCases() {
		for _, seed := range differSeeds {
			p := base
			p.Seed = seed
			p.MeasuredPackets = 3000
			des, lv := runBoth(t, p)
			if des.Saturated || lv.Saturated {
				t.Errorf("%s/%s seed=%d: tolerance point saturated (des=%v live=%v) — pick a lighter load",
					des.Paradigm, des.Policy, seed, des.Saturated, lv.Saturated)
				continue
			}
			rel := math.Abs(lv.MeanDelay-des.MeanDelay) / des.MeanDelay
			if rel > delayTolerance {
				t.Errorf("%s/%s %v seed=%d: mean delay DES %.2f vs live %.2f (rel %.4f > %.2f)",
					des.Paradigm, des.Policy, base.Arrival, seed,
					des.MeanDelay, lv.MeanDelay, rel, delayTolerance)
			}
			if diff := math.Abs(lv.WarmFraction - des.WarmFraction); diff > 0.1 {
				t.Errorf("%s/%s seed=%d: warm fraction DES %.3f vs live %.3f",
					des.Paradigm, des.Policy, seed, des.WarmFraction, lv.WarmFraction)
			}
		}
	}
}

// TestDifferentialFaultAccounting compares the two backends under a
// deterministic fault plan: the plans fire at the same virtual times on
// both, so down-time accounting must match exactly and the ledgers must
// balance on each side independently.
func TestDifferentialFaultAccounting(t *testing.T) {
	for _, seed := range differSeeds {
		p := sim.Params{
			Paradigm: sim.Locking, Policy: sched.MRU, Streams: 8,
			Arrival:         traffic.Poisson{PacketsPerSec: 2000},
			Seed:            seed,
			MeasuredPackets: 3000,
			MaxQueueDepth:   32,
		}
		p.Faults = exp.E26Plan()
		des, lv := runBoth(t, p)
		if len(des.PerProcDownTime) != len(lv.PerProcDownTime) {
			t.Fatalf("seed=%d: down-time vectors differ in length", seed)
		}
		for i := range des.PerProcDownTime {
			if math.Abs(des.PerProcDownTime[i]-lv.PerProcDownTime[i]) > 1e-6 {
				t.Errorf("seed=%d proc %d: down time DES %v vs live %v",
					seed, i, des.PerProcDownTime[i], lv.PerProcDownTime[i])
			}
		}
	}
}
