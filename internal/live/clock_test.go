package live

import (
	"sync"
	"sync/atomic"
	"testing"

	"affinity/internal/des"
)

// startGroup registers n goroutines with the clock and runs each body,
// waiting for all to unwind.
func startGroup(c *clock, bodies ...func()) {
	c.spawn(len(bodies))
	var wg sync.WaitGroup
	for _, body := range bodies {
		wg.Add(1)
		go func(body func()) {
			defer wg.Done()
			defer c.exit()
			body()
		}(body)
	}
	wg.Wait()
}

func TestClockReleasesSleepersInTimeOrder(t *testing.T) {
	c := newClock(des.Second)
	var mu sync.Mutex
	var order []des.Time
	sleepAndLog := func(d des.Time) func() {
		return func() {
			if !c.sleep(d) {
				t.Error("sleep stopped early")
				return
			}
			mu.Lock()
			order = append(order, c.Now())
			mu.Unlock()
		}
	}
	startGroup(c, sleepAndLog(30), sleepAndLog(10), sleepAndLog(20))
	want := []des.Time{10, 20, 30}
	if len(order) != len(want) {
		t.Fatalf("wake order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}

func TestClockReleasesSameInstantTogether(t *testing.T) {
	// All sleepers due at the same instant must be runnable
	// concurrently: each waits for every sibling at a barrier before
	// returning, which can only work if no sibling is still parked in
	// the clock when the first one runs.
	const n = 8
	c := newClock(des.Second)
	var barrier sync.WaitGroup
	barrier.Add(n)
	bodies := make([]func(), n)
	for i := range bodies {
		bodies[i] = func() {
			if !c.sleep(500) {
				t.Error("sleep stopped early")
				barrier.Done()
				return
			}
			if got := c.Now(); got != 500 {
				t.Errorf("Now() = %v at wake, want 500", got)
			}
			barrier.Done()
			barrier.Wait()
		}
	}
	startGroup(c, bodies...)
	if got := c.Fired(); got != n {
		t.Errorf("Fired() = %d, want %d", got, n)
	}
}

func TestClockHorizonStopsRun(t *testing.T) {
	c := newClock(100)
	startGroup(c, func() {
		if c.sleep(101) {
			t.Error("sleep beyond horizon returned true, want stop")
		}
	})
	if got := c.Now(); got != 100 {
		t.Errorf("Now() = %v after horizon stop, want 100", got)
	}
}

func TestClockQuiescenceStopsAtHorizon(t *testing.T) {
	// When the last goroutine exits with no timers pending, nothing can
	// ever happen again: DES RunUntil semantics put the clock at the
	// horizon.
	c := newClock(1000)
	startGroup(c, func() {
		if !c.sleep(10) {
			t.Error("sleep stopped early")
		}
	})
	if got := c.Now(); got != 1000 {
		t.Errorf("Now() = %v after quiescence, want horizon 1000", got)
	}
}

func TestClockStopUnblocksEveryone(t *testing.T) {
	c := newClock(des.Second)
	ch := make(chan int, 1)
	var stopped atomic.Int32
	startGroup(c,
		func() {
			if _, ok := parkRecv(c, ch); !ok {
				stopped.Add(1)
			}
		},
		func() {
			if !c.sleep(5) {
				t.Error("sleep stopped before stop()")
				return
			}
			c.stop()
			stopped.Add(1)
		},
	)
	if got := stopped.Load(); got != 2 {
		t.Errorf("%d goroutines saw the stop, want 2", got)
	}
}

func TestParkRecvConsumesBufferedValue(t *testing.T) {
	// The try-receive path: a value already buffered (self-hand-off,
	// like a worker that queues its own next task) must consume the
	// sender's wake credit without the receiver ever blocking —
	// afterwards the balance is clean enough for timers to still fire.
	c := newClock(des.Second)
	ch := make(chan int, 1)
	startGroup(c, func() {
		c.wake()
		ch <- 42
		v, ok := parkRecv(c, ch)
		if !ok || v != 42 {
			t.Errorf("parkRecv = %v, %v, want 42, true", v, ok)
		}
		if !c.sleep(10) {
			t.Error("timer starved after buffered hand-off")
		}
	})
}

func TestParkRecvBlockedHandoff(t *testing.T) {
	// The blocked-receiver path: the receiver parks first, the sender's
	// wake+send revives it at the sender's current instant.
	c := newClock(des.Second)
	ch := make(chan int)
	startGroup(c,
		func() {
			v, ok := parkRecv(c, ch)
			if !ok || v != 7 {
				t.Errorf("parkRecv = %v, %v, want 7, true", v, ok)
			}
			if got := c.Now(); got != 5 {
				t.Errorf("Now() = %v at hand-off, want 5", got)
			}
		},
		func() {
			if !c.sleep(5) {
				t.Error("sleep stopped early")
				return
			}
			c.wake()
			ch <- 7
		},
	)
}

func TestClockSleepUntilClampsToNow(t *testing.T) {
	c := newClock(des.Second)
	startGroup(c, func() {
		if !c.sleep(50) {
			t.Error("sleep stopped early")
			return
		}
		if !c.sleepUntil(10) { // already past: must fire at now
			t.Error("sleepUntil stopped early")
			return
		}
		if got := c.Now(); got != 50 {
			t.Errorf("Now() = %v after past-due sleepUntil, want 50", got)
		}
	})
}
