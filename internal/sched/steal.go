package sched

import (
	"math"
	"sort"

	"affinity/internal/des"
)

// This file implements the AffinitySteal policy family: a work-stealing
// packet dispatcher parameterized by (Penalty, DepthThreshold, ColdBias)
// whose corner points reduce — bit for bit, RNG draw for RNG draw — to
// the paper's fixed policies:
//
//	Penalty = +Inf                        ≡ WiredStreams (static pinning)
//	Penalty = 0, DepthThreshold = 0,
//	ColdBias = 0                          ≡ FCFS (blind work conservation)
//	Penalty = 0, DepthThreshold = 0,
//	ColdBias = 1                          ≡ MRU (warm preference, same
//	                                        bounded dispatch lookahead)
//
// Between the corners the family spans policies the paper never
// evaluates: a cold processor may take ("steal") a queued packet that is
// warm elsewhere only once the backlog has grown to DepthThreshold AND
// the packet has waited at least Penalty µs — an affinity-aware steal
// delay in the spirit of arXiv:1810.09442 — while ColdBias in (0, 1)
// prefers the warm processor probabilistically. internal/policysearch
// searches this space for configurations that beat every fixed policy.

// StealParams is the point in the AffinitySteal family's parameter
// space. The zero value is the FCFS corner.
type StealParams struct {
	// Penalty is the time (µs) a queued packet must have waited before a
	// processor it is not warm on may steal it at dispatch. 0 allows
	// immediate stealing; +Inf switches the dispatcher into pinned mode
	// (per-processor queues with first-touch round-robin homes — the
	// Wired-Streams structure — where stealing never happens at all).
	Penalty float64
	// DepthThreshold is the backlog the queue must hold before a cold
	// steal is allowed; 0 never blocks on depth.
	DepthThreshold int
	// ColdBias is the warm-preference strength in [0, 1]: 0 places and
	// dispatches blindly (FCFS-like), 1 always prefers the warm
	// processor (MRU-like), fractional values prefer it with that
	// probability at placement.
	ColdBias float64
}

// Pinned reports whether the parameters select the statically pinned
// (Wired-Streams-structured) mode.
func (s StealParams) Pinned() bool { return math.IsInf(s.Penalty, 1) }

// StealConfig is StealParams plus the runtime hookup: Now supplies the
// current virtual time for the steal-penalty age test. Both backends
// wire their clock in; it may be nil when Penalty is 0 or +Inf (the age
// test is never evaluated at those settings).
type StealConfig struct {
	StealParams
	Now func() des.Time
}

// steal implements PacketDispatcher for the AffinitySteal family. It
// runs in one of two structural modes fixed at construction:
//
//   - pinned (Penalty = +Inf): per-processor queues, first-touch
//     round-robin homes with fault re-homing and failback — an
//     independent implementation of the Wired-Streams discipline (the
//     corner-equivalence tests compare it against pools, so the two
//     code bodies check each other);
//   - work-conserving (finite Penalty): one central arrival-ordered
//     queue plus a last-ran warm map, with the steal gate applied when
//     a processor pulls queued work it is not warm on.
type steal struct {
	affinityCount
	p         StealParams
	now       func() des.Time
	lookahead int
	rng       *des.RNG

	// Work-conserving mode.
	q    fifo
	warm map[int]int // entity → processor it last ran on

	// Pinned mode.
	queues   []fifo
	home     map[int]int
	pref     map[int]int // entity → original home, the failback target
	avail    []bool
	nextHome int
}

func newSteal(n int, rng *des.RNG, lookahead int, sc StealConfig) *steal {
	s := &steal{p: sc.StealParams, now: sc.Now, lookahead: lookahead, rng: rng}
	if s.p.Pinned() {
		s.queues = make([]fifo, n)
		s.home = map[int]int{}
		s.pref = map[int]int{}
		s.avail = make([]bool, n)
		for i := range s.avail {
			s.avail[i] = true
		}
		return s
	}
	s.warm = map[int]int{}
	if s.p.Penalty > 0 && s.now == nil {
		panic("sched: AffinitySteal with a finite non-zero Penalty needs StealConfig.Now")
	}
	return s
}

func (*steal) Name() string { return AffinitySteal.String() }

// homeOf assigns first-touch round-robin homes in pinned mode, exactly
// like pools.homeOf.
func (s *steal) homeOf(entity int) int {
	h, ok := s.home[entity]
	if !ok {
		h = s.nextAvailHome()
		s.home[entity] = h
		s.pref[entity] = h
	}
	return h
}

func (s *steal) nextAvailHome() int {
	n := len(s.queues)
	for range s.queues {
		h := s.nextHome % n
		s.nextHome++
		if s.avail[h] {
			return h
		}
	}
	h := s.nextHome % n
	s.nextHome++
	return h
}

func (s *steal) PickProcessor(pk Packet, idle []int) int {
	if s.p.Pinned() {
		h := s.homeOf(pk.Entity)
		for _, i := range idle {
			if i == h {
				s.note(true)
				return h
			}
		}
		return -1 // wait for the home processor (no decision)
	}
	if s.p.ColdBias > 0 {
		if proc, ok := s.warm[pk.Entity]; ok {
			for _, i := range idle {
				if i == proc {
					// ColdBias = 1 takes the warm processor outright
					// (no RNG draw — the MRU corner's draw sequence);
					// fractional bias takes it with that probability.
					if s.p.ColdBias == 1 || s.rng.Float64() < s.p.ColdBias {
						s.note(true)
						return proc
					}
					break
				}
			}
		}
	}
	s.note(false)
	return idle[s.rng.Intn(len(idle))]
}

func (s *steal) Enqueue(pk Packet) {
	if s.p.Pinned() {
		s.queues[s.homeOf(pk.Entity)].push(pk)
		return
	}
	s.q.push(pk)
}

// stealAllowed is the family's gate: a processor the packet is not warm
// on may take it only when the backlog has reached DepthThreshold and
// the packet has aged past Penalty. Both corners (Penalty = 0,
// DepthThreshold = 0) short-circuit before touching the clock.
func (s *steal) stealAllowed(pk Packet) bool {
	if s.q.len() < s.p.DepthThreshold {
		return false
	}
	if s.p.Penalty == 0 {
		return true
	}
	return float64(s.now()-pk.Arrive) >= s.p.Penalty
}

func (s *steal) Dispatch(proc int) (Packet, bool) {
	if s.p.Pinned() {
		if pk, ok := s.queues[proc].pop(); ok {
			s.note(s.home[pk.Entity] == proc)
			return pk, true
		}
		return Packet{}, false
	}
	// Warm preference first: the oldest packet within the bounded
	// lookahead that is warm on this processor — MRU's exact scan.
	if s.p.ColdBias > 0 {
		if i := s.q.indexWhereN(s.lookahead, func(pk Packet) bool {
			h, ok := s.warm[pk.Entity]
			return ok && h == proc
		}); i >= 0 {
			s.note(true)
			return s.q.removeAt(i), true
		}
	}
	// The head: taking it is a steal only when it is warm on a
	// different processor; packets with no warm state anywhere have
	// nothing to lose by running here.
	if pk, ok := s.q.peek(); ok {
		h, known := s.warm[pk.Entity]
		if !known || h == proc || s.stealAllowed(pk) {
			s.q.pop()
			s.note(s.p.ColdBias > 0 && known && h == proc)
			return pk, true
		}
	}
	// Steal refused: the head stays for its warm processor, but this
	// processor may still serve the oldest packet that is warm here (or
	// warm nowhere) rather than idle past work it owns. The scan is
	// unbounded — it runs only on middle family points (the corners
	// always take the head), and removeAt's prefix shift is the price
	// of preserving arrival order among the packets left behind.
	if i := s.q.indexWhereN(s.q.len(), func(pk Packet) bool {
		h, known := s.warm[pk.Entity]
		return !known || h == proc
	}); i >= 0 {
		pk := s.q.removeAt(i)
		h, known := s.warm[pk.Entity]
		s.note(s.p.ColdBias > 0 && known && h == proc)
		return pk, true
	}
	return Packet{}, false
}

func (s *steal) RanOn(entity, proc int) {
	if s.p.Pinned() {
		return // the home map, not execution history, owns placement
	}
	s.warm[entity] = proc
}

func (s *steal) Queued() int {
	if s.p.Pinned() {
		n := 0
		for i := range s.queues {
			n += s.queues[i].len()
		}
		return n
	}
	return s.q.len()
}

func (s *steal) DepthFor(pk Packet) int {
	if s.p.Pinned() {
		return s.queues[s.homeOf(pk.Entity)].len()
	}
	return s.q.len()
}

// ProcDown: pinned mode re-homes entities bound to the failed processor
// and migrates their queued packets (the Wired-Streams discipline);
// work-conserving mode forgets warm state pointing at it (the MRU
// discipline — its cache contents are lost).
func (s *steal) ProcDown(proc int) {
	if !s.p.Pinned() {
		for e, h := range s.warm {
			if h == proc {
				delete(s.warm, e)
			}
		}
		return
	}
	s.avail[proc] = false
	var ids []int
	for e, h := range s.home {
		if h == proc {
			ids = append(ids, e)
		}
	}
	sort.Ints(ids)
	for _, e := range ids {
		s.home[e] = s.nextAvailHome()
	}
	for {
		pk, ok := s.queues[proc].pop()
		if !ok {
			break
		}
		s.queues[s.homeOf(pk.Entity)].push(pk)
	}
}

// ProcUp: pinned mode fails entities originally homed here back (with
// their queued packets, preserving per-stream FIFO order); work-
// conserving mode needs nothing — warm state rebuilds as packets run.
func (s *steal) ProcUp(proc int) {
	if !s.p.Pinned() {
		return
	}
	s.avail[proc] = true
	var ids []int
	for e, h := range s.pref {
		if h == proc && s.home[e] != proc {
			ids = append(ids, e)
		}
	}
	if len(ids) == 0 {
		return
	}
	sort.Ints(ids)
	for _, e := range ids {
		s.home[e] = proc
	}
	for q := range s.queues {
		if q == proc {
			continue
		}
		for _, pk := range s.queues[q].drainMatching(func(pk Packet) bool {
			return s.home[pk.Entity] == proc
		}) {
			s.queues[proc].push(pk)
		}
	}
}

// PreferredProc mirrors the corner policy's ledger view: the home map in
// pinned mode, the warm map when the bias prefers warmth, and none at
// all for the blind ColdBias = 0 family members (FCFS parity).
func (s *steal) PreferredProc(entity int) int {
	if s.p.Pinned() {
		if h, ok := s.home[entity]; ok {
			return h
		}
		return -1
	}
	if s.p.ColdBias == 0 {
		return -1
	}
	if h, ok := s.warm[entity]; ok {
		return h
	}
	return -1
}
