package sched

import (
	"testing"

	"affinity/internal/des"
)

// Degradation-path tests: dispatcher behavior across ProcDown/ProcUp
// transitions, plus the Kind range-check and affinity-accounting
// regressions fixed alongside the fault layer.

// ForLocking once accepted any Kind ≤ WiredStreams, including negative
// values, so a corrupt Kind(-3) passed Locking-paradigm validation.
func TestKindParadigmRangeChecks(t *testing.T) {
	for _, k := range []Kind{Kind(-1), Kind(-3), kindCount, Kind(99)} {
		if k.ForLocking() || k.ForIPS() {
			t.Errorf("out-of-range Kind(%d) passed a paradigm check", int(k))
		}
	}
}

// Every placement and every successful dispatch is exactly one
// AffinityStats decision — no double counts, no missed ones. An empty
// dispatch is not a decision.
func TestMRUAffinityStatsOneNotePerDecision(t *testing.T) {
	d := NewPacketDispatcherLookahead(MRU, 4, des.NewRNG(1), 4)
	d.RanOn(1, 1)
	d.RanOn(2, 2)
	decisions, wantHits := 0, 0

	d.PickProcessor(pkt(1), []int{0, 1}) // affine, idle: hit
	decisions, wantHits = decisions+1, wantHits+1
	d.PickProcessor(pkt(1), []int{0, 3}) // affine processor busy: miss
	decisions++
	d.PickProcessor(pkt(9), []int{0}) // unknown entity: miss
	decisions++

	d.Enqueue(pkt(1))
	d.Enqueue(pkt(2))
	d.Enqueue(pkt(3))
	if _, ok := d.Dispatch(2); ok { // lookahead finds affine entity 2
		decisions, wantHits = decisions+1, wantHits+1
	}
	if _, ok := d.Dispatch(1); ok { // head entity 1 is affine
		decisions, wantHits = decisions+1, wantHits+1
	}
	if _, ok := d.Dispatch(0); ok { // head entity 3, no affinity: miss
		decisions++
	}
	if _, ok := d.Dispatch(0); ok { // empty queue: no decision
		t.Fatal("empty dispatch returned a packet")
	}

	hits, total := d.AffinityStats()
	if int(total) != decisions || int(hits) != wantHits {
		t.Errorf("AffinityStats = (%d hits, %d total), want (%d, %d)",
			hits, total, wantHits, decisions)
	}
}

func TestDepthForReportsJoinQueue(t *testing.T) {
	f := newPD(FCFS, 2)
	m := newPD(MRU, 2)
	for i := 0; i < 3; i++ {
		f.Enqueue(pkt(i))
		m.Enqueue(pkt(i))
	}
	if f.DepthFor(pkt(9)) != 3 || m.DepthFor(pkt(9)) != 3 {
		t.Errorf("central-queue DepthFor = %d/%d, want 3/3",
			f.DepthFor(pkt(9)), m.DepthFor(pkt(9)))
	}
	w := newPD(WiredStreams, 2)
	w.PickProcessor(pkt(10), []int{0, 1}) // entity 10 homed on 0
	w.Enqueue(pkt(10))
	w.Enqueue(pkt(10))
	if w.DepthFor(pkt(10)) != 2 {
		t.Errorf("pool DepthFor(home) = %d, want 2", w.DepthFor(pkt(10)))
	}
	if w.DepthFor(pkt(11)) != 0 { // entity 11 homes on the empty pool 1
		t.Errorf("pool DepthFor(other) = %d, want 0", w.DepthFor(pkt(11)))
	}
}

func TestWiredStreamsProcDownRehomesAndFailsBack(t *testing.T) {
	d := newPD(WiredStreams, 2).(*pools)
	d.PickProcessor(pkt(10), []int{0, 1}) // entity 10 → home 0
	d.PickProcessor(pkt(11), []int{0, 1}) // entity 11 → home 1
	d.Enqueue(pkt(10))
	d.Enqueue(pkt(10))

	d.ProcDown(0)
	// Entity 10's queued packets follow it to the surviving processor.
	if _, ok := d.Dispatch(0); ok {
		t.Fatal("dead processor's pool still holds packets")
	}
	p, ok := d.Dispatch(1)
	if !ok || p.Entity != 10 {
		t.Fatalf("Dispatch(1) = %+v, %v, want re-homed entity 10", p, ok)
	}
	if _, ok := d.Dispatch(1); !ok {
		t.Fatal("second re-homed packet missing")
	}
	// New entities never home on the dead processor.
	if got := d.PickProcessor(pkt(12), []int{1}); got != 1 {
		t.Fatalf("new entity placed on %d, want surviving 1", got)
	}

	d.ProcUp(0)
	// Failback: entity 10 returns to its original home.
	if got := d.PickProcessor(pkt(10), []int{0, 1}); got != 0 {
		t.Fatalf("post-recovery home = %d, want original 0", got)
	}
}

func TestWiredStreamsFailbackMovesQueuedPackets(t *testing.T) {
	d := newPD(WiredStreams, 2).(*pools)
	d.PickProcessor(pkt(10), []int{0, 1}) // home 0
	d.ProcDown(0)
	d.Enqueue(pkt(10)) // queues on the fallback home (1)
	d.Enqueue(pkt(10))
	d.ProcUp(0)
	// Both packets must have been pulled back to pool 0, in order.
	if _, ok := d.Dispatch(1); ok {
		t.Fatal("fallback pool kept a failed-back packet")
	}
	for i := 0; i < 2; i++ {
		if p, ok := d.Dispatch(0); !ok || p.Entity != 10 {
			t.Fatalf("Dispatch(0) #%d = %+v, %v", i, p, ok)
		}
	}
}

func TestThreadPoolsProcDownRehomesWithoutFailback(t *testing.T) {
	d := newPD(ThreadPools, 2).(*pools)
	d.PickProcessor(pkt(10), []int{0, 1}) // home 0
	d.Enqueue(pkt(10))
	d.ProcDown(0)
	if p, ok := d.Dispatch(1); !ok || p.Entity != 10 {
		t.Fatalf("Dispatch(1) = %+v, %v, want re-homed packet", p, ok)
	}
	d.ProcUp(0)
	// ThreadPools does not force entities back — stealing re-balances —
	// so the home stays where the failure moved it.
	if got := d.PickProcessor(pkt(10), []int{0, 1}); got != 1 {
		t.Fatalf("ThreadPools home after recovery = %d, want 1", got)
	}
}

func TestMRUProcDownForgetsAffinity(t *testing.T) {
	m := newPD(MRU, 4).(*mru)
	m.RanOn(1, 1)
	m.RanOn(2, 1)
	m.RanOn(3, 2)
	m.ProcDown(1)
	if _, ok := m.mru[1]; ok {
		t.Error("entity 1 affinity to the dead processor survived")
	}
	if _, ok := m.mru[2]; ok {
		t.Error("entity 2 affinity to the dead processor survived")
	}
	if h, ok := m.mru[3]; !ok || h != 2 {
		t.Error("unrelated affinity was forgotten")
	}

	s := newSD(IPSMRU, 4, 4).(*mruStacks)
	s.RanOn(1, 1)
	s.RanOn(3, 2)
	s.ProcDown(1)
	if _, ok := s.mru[1]; ok {
		t.Error("stack 1 affinity to the dead processor survived")
	}
	if h, ok := s.mru[3]; !ok || h != 2 {
		t.Error("unrelated stack affinity was forgotten")
	}
}

func TestWiredStacksProcDownRewiresAndRestores(t *testing.T) {
	d := newSD(IPSWired, 4, 2).(*wiredStacks)
	// Original wiring: 0→0, 1→1, 2→0, 3→1.
	d.EnqueueStack(0)
	d.EnqueueStack(2)
	d.ProcDown(0)
	if got := d.DispatchStack(0); got != -1 {
		t.Fatalf("dead processor dispatched stack %d", got)
	}
	// Stacks 0 and 2 re-wired to the survivor, queue order preserved.
	if got := d.DispatchStack(1); got != 0 {
		t.Fatalf("DispatchStack(1) = %d, want re-wired stack 0", got)
	}
	if got := d.DispatchStack(1); got != 2 {
		t.Fatalf("DispatchStack(1) = %d, want re-wired stack 2", got)
	}
	// A re-wired stack may now be placed on its new processor.
	if got := d.PickProcessor(0, []int{1}); got != 1 {
		t.Fatalf("re-wired PickProcessor = %d, want 1", got)
	}

	d.EnqueueStack(2) // ready again, queued on the survivor
	d.ProcUp(0)
	if d.Wire(0) != 0 || d.Wire(2) != 0 || d.Wire(1) != 1 || d.Wire(3) != 1 {
		t.Fatalf("post-recovery wiring = %v, want original", d.wire)
	}
	// Stack 2's queued entry followed the failback.
	if got := d.DispatchStack(1); got != -1 {
		t.Fatalf("survivor kept failed-back stack %d", got)
	}
	if got := d.DispatchStack(0); got != 2 {
		t.Fatalf("DispatchStack(0) = %d, want failed-back stack 2", got)
	}
}

// With every processor down, queues must still accept work (packet
// conservation) and recovery must drain it.
func TestAllProcessorsDownThenRecovery(t *testing.T) {
	d := newPD(WiredStreams, 2).(*pools)
	d.PickProcessor(pkt(10), []int{0, 1})
	d.ProcDown(0)
	d.ProcDown(1)
	d.Enqueue(pkt(10))
	d.Enqueue(pkt(12)) // brand-new entity homed with no processor up
	if d.Queued() != 2 {
		t.Fatalf("Queued = %d, want 2", d.Queued())
	}
	d.ProcUp(0)
	d.ProcUp(1)
	got := 0
	for proc := 0; proc < 2; proc++ {
		for {
			if _, ok := d.Dispatch(proc); !ok {
				break
			}
			got++
		}
	}
	if got != 2 {
		t.Fatalf("recovered %d packets, want 2", got)
	}
}

func TestFifoDrainMatching(t *testing.T) {
	var f fifo
	for i := 0; i < 6; i++ {
		f.push(pkt(i))
	}
	f.pop() // exercise a non-zero head
	out := f.drainMatching(func(p Packet) bool { return p.Stream%2 == 0 })
	if len(out) != 2 || out[0].Stream != 2 || out[1].Stream != 4 {
		t.Fatalf("drained %+v, want streams 2, 4 in order", out)
	}
	if f.len() != 3 {
		t.Fatalf("remaining len = %d, want 3", f.len())
	}
	for _, want := range []int{1, 3, 5} {
		p, ok := f.pop()
		if !ok || p.Stream != want {
			t.Fatalf("pop = %+v, %v, want stream %d", p, ok, want)
		}
	}
}
