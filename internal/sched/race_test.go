package sched

import (
	"sync"
	"testing"

	"affinity/internal/des"
)

// Dispatchers are single-threaded by contract — the DES calls them from
// its event loop, the live backend under its dispatch lock. These tests
// pin the two properties real concurrent use still depends on (run
// under -race in CI):
//
//  1. Distinct dispatcher instances share no hidden mutable state, so
//     concurrent runs (the experiment pool, parallel live runs) cannot
//     race through package-level variables.
//  2. A single instance driven under an external mutex — the live
//     backend's usage — is race-clean.

func hammer(t *testing.T, kind Kind, build func(rng *des.RNG) func()) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			work := build(des.Stream(int64(g+1), "race-"+kind.String()))
			for i := 0; i < 2000; i++ {
				work()
			}
		}(g)
	}
	wg.Wait()
}

func TestPacketDispatchersIndependentAcrossGoroutines(t *testing.T) {
	for _, kind := range []Kind{FCFS, MRU, ThreadPools, WiredStreams} {
		t.Run(kind.String(), func(t *testing.T) {
			hammer(t, kind, func(rng *des.RNG) func() {
				d := NewPacketDispatcher(kind, 4, rng)
				seq := uint64(0)
				return func() {
					seq++
					pkt := Packet{Stream: int(seq % 8), Entity: int(seq % 8), Seq: seq}
					if proc := d.PickProcessor(pkt, []int{0, 1, 2, 3}); proc < 0 {
						d.Enqueue(pkt)
					} else {
						d.RanOn(pkt.Entity, proc)
					}
					if next, ok := d.Dispatch(int(seq % 4)); ok {
						d.RanOn(next.Entity, int(seq%4))
					}
				}
			})
		})
	}
}

func TestStackDispatchersIndependentAcrossGoroutines(t *testing.T) {
	for _, kind := range []Kind{IPSWired, IPSMRU, IPSRandom} {
		t.Run(kind.String(), func(t *testing.T) {
			hammer(t, kind, func(rng *des.RNG) func() {
				d := NewStackDispatcher(kind, 4, 4, rng)
				seq := 0
				return func() {
					seq++
					k := seq % 4
					if proc := d.PickProcessor(k, []int{0, 1, 2, 3}); proc < 0 {
						d.EnqueueStack(k)
					} else {
						d.RanOn(k, proc)
					}
					if next := d.DispatchStack(seq % 4); next >= 0 {
						d.RanOn(next, seq%4)
					}
				}
			})
		})
	}
}

// TestSharedDispatcherUnderExternalLock drives one MRU dispatcher from
// eight goroutines serialized by a mutex — the exact usage pattern of
// the live backend's dispatch lock.
func TestSharedDispatcherUnderExternalLock(t *testing.T) {
	d := NewPacketDispatcher(MRU, 4, des.Stream(1, "shared"))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				seq := uint64(g*2000 + i)
				mu.Lock()
				pkt := Packet{Stream: int(seq % 8), Entity: int(seq % 8), Seq: seq}
				if proc := d.PickProcessor(pkt, []int{0, 1, 2, 3}); proc >= 0 {
					d.RanOn(pkt.Entity, proc)
				} else {
					d.Enqueue(pkt)
					if next, ok := d.Dispatch(int(seq % 4)); ok {
						d.RanOn(next.Entity, int(seq%4))
					}
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	hits, placements := d.AffinityStats()
	if placements == 0 || hits > placements {
		t.Errorf("AffinityStats = %d/%d after concurrent locked use", hits, placements)
	}
}
