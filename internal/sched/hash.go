package sched

import "sort"

// This file implements the NIC-hash dispatch policies. Both model the
// hardware flow-steering path of a multi-queue NIC: the packet's stream
// id is hashed through a fixed-size indirection table whose entries
// name processors, and the packet joins that processor's queue — no
// stealing, no work-conservation fallback, exactly like Wired-Streams
// except that the home assignment is a hash rather than first-seen
// round-robin.
//
//	RSS          — the table is static ("A Transport-Friendly NIC for
//	               Multicore/Multiprocessor Systems", arXiv:1106.0445).
//	               A flow's packets always land on one core, so
//	               per-flow order is preserved by construction, but the
//	               hash is blind to where the flow's cache state is
//	               warm.
//	FlowDirector — an ATR-style table that re-homes a flow when its
//	               home queue backs up ("Why Does Flow Director Cause
//	               Packet Reordering?", arXiv:1106.0443). The re-homed
//	               flow's new packets run on the new core while its
//	               earlier packets still wait at the old one, so a
//	               rebalance point can complete packets out of arrival
//	               order — the reordering pathology the paper measures.

// minHashTableSize is the smallest indirection-table length: 128
// entries, as in the RSS redirection tables of the NICs both papers
// measure. tableSizeFor grows it for larger machines.
const minHashTableSize = 128

// tableSizeFor returns the indirection-table length for n processors:
// the smallest power of two that is both ≥ minHashTableSize and ≥ 2×n.
// A fixed 128-entry table on a 1024-core topology would leave 7 of
// every 8 cores with no bucket at all; doubling until the table holds
// at least two buckets per core keeps the driver's round-robin fill
// covering every core while staying byte-identical to the historical
// constant for the ≤ 64-core machines the goldens pin.
func tableSizeFor(n int) int {
	size := minHashTableSize
	for size < 2*n {
		size *= 2
	}
	return size
}

// HashConfig configures the hash-dispatch policies; the zero value
// selects the defaults.
type HashConfig struct {
	// Rebalance is FlowDirector's re-home trigger: a flow is moved off
	// its home when the home queue already holds at least Rebalance
	// waiting packets and a better target exists. 0 selects the default
	// (DefaultRebalance); a negative value disables rebalancing, making
	// FlowDirector behave exactly like RSS. RSS ignores it.
	Rebalance int
	// Identity replaces the hash mix with the identity function
	// (bucket = stream mod table size). Diagnostic only: it lines the
	// table up with small stream counts so hash placement can be
	// compared against Wired-Streams' round-robin in equivalence tests.
	Identity bool
}

// DefaultRebalance is FlowDirector's default re-home trigger depth.
const DefaultRebalance = 8

// hashed implements PacketDispatcher for RSS and FlowDirector.
type hashed struct {
	affinityCount
	kind     Kind
	queues   []fifo
	table    []int       // bucket → processor, mutated by faults and rebalancing
	canon    []int       // bucket → original processor, the failback target
	override map[int]int // entity → re-homed processor (FlowDirector only)
	avail    []bool
	// rebalance is the re-home trigger depth; < 0 disables rebalancing
	// (always for RSS).
	rebalance int
	identity  bool
}

func newHashed(kind Kind, n int, hc HashConfig) *hashed {
	if hc.Rebalance == 0 {
		hc.Rebalance = DefaultRebalance
	}
	size := tableSizeFor(n)
	table := make([]int, size)
	canon := make([]int, size)
	for i := range table {
		table[i] = i % n
		canon[i] = i % n
	}
	avail := make([]bool, n)
	for i := range avail {
		avail[i] = true
	}
	return &hashed{
		kind: kind, queues: make([]fifo, n), table: table, canon: canon,
		override: map[int]int{}, avail: avail,
		rebalance: hc.Rebalance, identity: hc.Identity,
	}
}

func (h *hashed) Name() string { return h.kind.String() }

// mix64 is the splitmix64 finalizer — the stand-in for the NIC's
// Toeplitz hash. Distinct small integers spread across the table.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (h *hashed) bucket(entity int) int {
	if h.identity {
		return entity % len(h.table)
	}
	return int(mix64(uint64(entity)) % uint64(len(h.table)))
}

// homeOf is a pure read: the table (plus any FlowDirector override)
// fully determines a flow's processor, so unlike pools.homeOf there is
// no first-touch assignment to record.
func (h *hashed) homeOf(entity int) int {
	if p, ok := h.override[entity]; ok {
		return p
	}
	return h.table[h.bucket(entity)]
}

func (h *hashed) PickProcessor(pk Packet, idle []int) int {
	home := h.homeOf(pk.Entity)
	for _, i := range idle {
		if i == home {
			h.note(true)
			return home
		}
	}
	// The home is busy. FlowDirector's ATR update fires here: the
	// arriving packet is a transmit-side sample, and if the home queue
	// has backed up past the trigger the flow is re-homed to the
	// lowest-numbered idle processor. Packets already queued at the old
	// home stay there — that is the reordering window.
	if h.rebalance >= 0 && h.queues[home].len() >= h.rebalance {
		target := idle[0]
		for _, i := range idle[1:] {
			if i < target {
				target = i
			}
		}
		h.override[pk.Entity] = target
		h.note(false)
		return target
	}
	return -1 // wait for the home processor (no decision)
}

func (h *hashed) Enqueue(pk Packet) {
	home := h.homeOf(pk.Entity)
	// No idle processor anywhere: FlowDirector still samples the queue
	// depths and re-homes to the least-loaded live core when the gap
	// has grown past the trigger.
	if h.rebalance >= 0 && h.queues[home].len() >= h.rebalance {
		if t := h.leastLoaded(home); t >= 0 &&
			h.queues[home].len()-h.queues[t].len() >= h.rebalance {
			h.override[pk.Entity] = t
			home = t
		}
	}
	h.queues[home].push(pk)
}

// leastLoaded returns the live processor with the shortest queue
// (lowest index on ties), or -1 when no live processor other than home
// exists.
func (h *hashed) leastLoaded(home int) int {
	best, depth := -1, 0
	for i := range h.queues {
		if i == home || !h.avail[i] {
			continue
		}
		if d := h.queues[i].len(); best < 0 || d < depth {
			best, depth = i, d
		}
	}
	return best
}

func (h *hashed) Dispatch(proc int) (Packet, bool) {
	pk, ok := h.queues[proc].pop()
	if !ok {
		return Packet{}, false
	}
	// A re-homed flow's stale packets drain from the old core: those
	// dispatches are misses (the flow's warm state is being rebuilt at
	// the new home).
	h.note(h.homeOf(pk.Entity) == proc)
	return pk, true
}

// RanOn is a no-op: the hash, not execution history, owns placement.
func (*hashed) RanOn(int, int) {}

func (h *hashed) Queued() int {
	n := 0
	for i := range h.queues {
		n += h.queues[i].len()
	}
	return n
}

func (h *hashed) DepthFor(pk Packet) int { return h.queues[h.homeOf(pk.Entity)].len() }

// ProcDown rewrites every indirection-table entry (and FlowDirector
// override) naming the failed processor onto the remaining live ones —
// round-robin across buckets in ascending order, like a driver
// rewriting the RSS redirection table — and migrates its queued packets
// to their new homes in arrival order.
func (h *hashed) ProcDown(proc int) {
	h.avail[proc] = false
	live := h.liveProcs()
	if len(live) > 0 {
		next := 0
		for i := range h.table {
			if h.table[i] == proc {
				h.table[i] = live[next%len(live)]
				next++
			}
		}
		var ids []int
		for e, p := range h.override {
			if p == proc {
				ids = append(ids, e)
			}
		}
		sort.Ints(ids)
		for _, e := range ids {
			h.override[e] = live[next%len(live)]
			next++
		}
	}
	for {
		pk, ok := h.queues[proc].pop()
		if !ok {
			break
		}
		h.queues[h.homeOf(pk.Entity)].push(pk)
	}
}

// ProcUp restores the processor and fails the table back to its
// canonical entries (with the displaced flows' queued packets;
// per-flow FIFO order is preserved because a flow's packets sit
// contiguously in one queue). FlowDirector overrides stay where
// rebalancing put them — recovery does not undo ATR placement.
func (h *hashed) ProcUp(proc int) {
	h.avail[proc] = true
	changed := false
	for i := range h.table {
		if h.canon[i] == proc && h.table[i] != proc {
			h.table[i] = proc
			changed = true
		}
	}
	if !changed {
		return
	}
	for q := range h.queues {
		if q == proc {
			continue
		}
		for _, pk := range h.queues[q].drainMatching(func(pk Packet) bool {
			return h.homeOf(pk.Entity) == proc
		}) {
			h.queues[proc].push(pk)
		}
	}
}

func (h *hashed) liveProcs() []int {
	var live []int
	for i, ok := range h.avail {
		if ok {
			live = append(live, i)
		}
	}
	return live
}

// PreferredProc: the hash always names a target, even for a flow never
// seen — that is the point of hash dispatch.
func (h *hashed) PreferredProc(entity int) int { return h.homeOf(entity) }
