package sched

import (
	"math"
	"testing"

	"affinity/internal/des"
)

func stealPD(n int, sp StealParams, now func() des.Time) *steal {
	return newSteal(n, des.NewRNG(1), 4, StealConfig{StealParams: sp, Now: now})
}

func agedPkt(stream int, arrive des.Time) Packet {
	return Packet{Stream: stream, Entity: stream, Arrive: arrive}
}

// The steal gate's two conditions compose with AND: a cold processor
// may take queued work only once the backlog reaches DepthThreshold
// and the packet has aged past Penalty µs.
func TestStealGateDepthAndAge(t *testing.T) {
	clock := des.Time(1000)
	now := func() des.Time { return clock }
	sp := StealParams{Penalty: 100, DepthThreshold: 2, ColdBias: 1}

	// Depth gate: one well-aged packet is still below threshold 2, so
	// the cold processor must not steal it no matter how old it is.
	d := stealPD(2, sp, now)
	d.RanOn(0, 0) // stream 0 warm on processor 0
	d.Enqueue(agedPkt(0, 0))
	if _, ok := d.Dispatch(1); ok {
		t.Fatal("stole below the depth threshold")
	}

	// Age gate: backlog deep enough, but the head is too young.
	d = stealPD(2, sp, now)
	d.RanOn(0, 0)
	d.Enqueue(agedPkt(0, 990))
	d.Enqueue(agedPkt(0, 995))
	clock = 1040 // head age 50 < penalty 100
	if _, ok := d.Dispatch(1); ok {
		t.Fatal("stole a packet younger than the penalty")
	}
	// Old enough AND deep enough: the steal goes through.
	clock = 1090 // head age exactly 100
	if pk, ok := d.Dispatch(1); !ok || pk.Arrive != 990 {
		t.Fatalf("aged head not stolen: %+v ok=%v", pk, ok)
	}
	// The warm processor never needs the gate, young head or not.
	if pk, ok := d.Dispatch(0); !ok || pk.Arrive != 995 {
		t.Fatalf("warm processor refused its own work: %+v ok=%v", pk, ok)
	}
}

// A refused head must not strand the rest of the queue: the cold
// processor skips it and serves the oldest packet that is warm here or
// warm nowhere.
func TestStealRefusalServesAroundHead(t *testing.T) {
	d := stealPD(2, StealParams{Penalty: math.MaxFloat64, DepthThreshold: 0, ColdBias: 1},
		func() des.Time { return 0 })
	d.RanOn(0, 0) // head's stream warm on 0
	d.RanOn(1, 1) // second packet warm on 1
	d.Enqueue(agedPkt(0, 0))
	d.Enqueue(agedPkt(1, 0))
	d.Enqueue(agedPkt(2, 0)) // cold everywhere

	// Warm-preference scan finds stream 1's packet for processor 1.
	if pk, ok := d.Dispatch(1); !ok || pk.Stream != 1 {
		t.Fatalf("processor 1 got %+v ok=%v, want its warm stream 1", pk, ok)
	}
	// Head (warm on 0) is unstealable; the rescue scan hands the cold
	// stream 2 packet over instead of idling processor 1.
	if pk, ok := d.Dispatch(1); !ok || pk.Stream != 2 {
		t.Fatalf("processor 1 got %+v ok=%v, want unowned stream 2", pk, ok)
	}
	// Only work warm on another processor remains: stay idle.
	if _, ok := d.Dispatch(1); ok {
		t.Fatal("processor 1 stole the protected head")
	}
	if pk, ok := d.Dispatch(0); !ok || pk.Stream != 0 {
		t.Fatalf("head not delivered to its warm processor: %+v ok=%v", pk, ok)
	}
	if d.Queued() != 0 {
		t.Fatalf("%d packets stranded", d.Queued())
	}
}

// Pinned() selects the Wired-Streams structure exactly at +Inf.
func TestStealPinnedPredicate(t *testing.T) {
	if (StealParams{Penalty: math.MaxFloat64}).Pinned() {
		t.Error("MaxFloat64 must stay work-conserving — only +Inf pins")
	}
	if !(StealParams{Penalty: math.Inf(1)}).Pinned() {
		t.Error("+Inf must pin")
	}
	if (StealParams{}).Pinned() {
		t.Error("zero value must not pin")
	}
}

// A finite non-zero penalty needs a clock; corners do not. The
// constructor enforces this instead of letting stealAllowed nil-panic
// mid-run.
func TestStealNeedsClockOnlyForFinitePenalty(t *testing.T) {
	for _, sp := range []StealParams{{}, {ColdBias: 1}, {Penalty: math.Inf(1)}} {
		newSteal(2, des.NewRNG(1), 4, StealConfig{StealParams: sp}) // must not panic
	}
	defer func() {
		if recover() == nil {
			t.Error("finite non-zero Penalty without a clock did not panic")
		}
	}()
	newSteal(2, des.NewRNG(1), 4, StealConfig{StealParams: StealParams{Penalty: 1}})
}

// Fractional ColdBias prefers the warm processor with that probability
// at placement: over many trials both branches must occur, and the
// bias-1 and bias-0 endpoints must be degenerate (the corner RNG-draw
// parity depends on it).
func TestStealColdBiasIsProbabilistic(t *testing.T) {
	count := func(bias float64) int {
		d := stealPD(2, StealParams{ColdBias: bias}, nil)
		d.RanOn(0, 1)
		hits := 0
		for i := 0; i < 500; i++ {
			if d.PickProcessor(pkt(0), []int{0, 1}) == 1 {
				hits++
			}
		}
		return hits
	}
	if got := count(1); got != 500 {
		t.Errorf("bias 1: %d/500 warm placements, want all", got)
	}
	if got := count(0.5); got < 300 || got > 450 {
		// Warm hits ≈ 250 (biased) + ~125 (random fallback picks it too).
		t.Errorf("bias 0.5: %d/500 warm placements, want a strict mix", got)
	}
	// Bias 0 never consults warmth, so ~half land warm by chance.
	if got := count(0); got < 175 || got > 325 {
		t.Errorf("bias 0: %d/500 warm placements, want ≈ half by chance", got)
	}
}
