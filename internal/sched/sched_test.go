package sched

import (
	"testing"

	"affinity/internal/des"
)

func pkt(stream int) Packet { return Packet{Stream: stream, Entity: stream} }

func newPD(k Kind, n int) PacketDispatcher {
	return NewPacketDispatcher(k, n, des.NewRNG(1))
}

func newSD(k Kind, stacks, procs int) StackDispatcher {
	return NewStackDispatcher(k, stacks, procs, des.NewRNG(1))
}

func contains(set []int, v int) bool {
	for _, x := range set {
		if x == v {
			return true
		}
	}
	return false
}

func TestKindStringsAndParadigms(t *testing.T) {
	for _, k := range []Kind{FCFS, MRU, ThreadPools, WiredStreams, RSS, FlowDirector} {
		if !k.ForLocking() || k.ForIPS() {
			t.Errorf("%v paradigm flags wrong", k)
		}
	}
	for _, k := range []Kind{IPSWired, IPSMRU} {
		if k.ForLocking() || !k.ForIPS() {
			t.Errorf("%v paradigm flags wrong", k)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty string")
	}
}

func TestNewPacketDispatcherRejectsIPSKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for IPS kind")
		}
	}()
	newPD(IPSWired, 4)
}

func TestNewStackDispatcherRejectsLockingKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Locking kind")
		}
	}()
	newSD(MRU, 4, 4)
}

func TestFCFSPicksSomeIdle(t *testing.T) {
	d := newPD(FCFS, 4)
	idle := []int{2, 3}
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		got := d.PickProcessor(pkt(0), idle)
		if !contains(idle, got) {
			t.Fatalf("PickProcessor = %d, not idle", got)
		}
		seen[got] = true
	}
	// Uniform choice must not cluster on one processor.
	if len(seen) != 2 {
		t.Fatalf("FCFS always picked the same processor: %v", seen)
	}
}

func TestFCFSQueueOrder(t *testing.T) {
	d := newPD(FCFS, 4)
	for i := 0; i < 3; i++ {
		d.Enqueue(pkt(i))
	}
	if d.Queued() != 3 {
		t.Fatalf("Queued = %d", d.Queued())
	}
	for i := 0; i < 3; i++ {
		p, ok := d.Dispatch(0)
		if !ok || p.Stream != i {
			t.Fatalf("Dispatch %d = %+v, %v", i, p, ok)
		}
	}
	if _, ok := d.Dispatch(0); ok {
		t.Fatal("empty dispatch returned a packet")
	}
}

func TestMRUPrefersAffinityProcessor(t *testing.T) {
	d := newPD(MRU, 4)
	d.RanOn(7, 2)
	if got := d.PickProcessor(pkt(7), []int{0, 2, 3}); got != 2 {
		t.Fatalf("PickProcessor = %d, want MRU 2", got)
	}
	// MRU processor busy: fall back to some idle one (work conserving).
	if got := d.PickProcessor(pkt(7), []int{0, 3}); !contains([]int{0, 3}, got) {
		t.Fatalf("fallback PickProcessor = %d, not idle", got)
	}
	// Unknown entity: any idle.
	if got := d.PickProcessor(pkt(9), []int{3}); got != 3 {
		t.Fatalf("unknown-entity PickProcessor = %d, want 3", got)
	}
}

func TestMRUDispatchPrefersAffineQueuedPacket(t *testing.T) {
	d := NewPacketDispatcherLookahead(MRU, 4, des.NewRNG(1), 4)
	d.RanOn(1, 1)
	d.RanOn(2, 2)
	d.Enqueue(pkt(1))
	d.Enqueue(pkt(2))
	p, ok := d.Dispatch(2)
	if !ok || p.Entity != 2 {
		t.Fatalf("Dispatch(2) = %+v, want entity 2", p)
	}
	// Head fallback when nothing affine.
	p, ok = d.Dispatch(3)
	if !ok || p.Entity != 1 {
		t.Fatalf("Dispatch(3) = %+v, want head entity 1", p)
	}
}

func TestMRUDispatchBoundedLookahead(t *testing.T) {
	// With the default lookahead of 1, only the head is examined: an
	// affine packet deeper in the queue does not jump ahead.
	d := newPD(MRU, 4)
	d.RanOn(1, 1)
	d.RanOn(2, 2)
	d.Enqueue(pkt(1))
	d.Enqueue(pkt(2))
	p, ok := d.Dispatch(2)
	if !ok || p.Entity != 1 {
		t.Fatalf("Dispatch(2) = %+v, want FIFO head entity 1", p)
	}
}

func TestMRUDispatchUnknownEntityNotAffineToZero(t *testing.T) {
	d := newPD(MRU, 4)
	d.Enqueue(pkt(5)) // never ran anywhere
	d.Enqueue(pkt(6))
	p, _ := d.Dispatch(0)
	if p.Entity != 5 {
		t.Fatalf("Dispatch(0) = %+v, want FIFO head", p)
	}
}

func TestWiredStreamsStickToHome(t *testing.T) {
	d := newPD(WiredStreams, 2)
	// First two entities get homes 0 and 1 round-robin.
	if got := d.PickProcessor(pkt(10), []int{0, 1}); got != 0 {
		t.Fatalf("entity 10 home = %d, want 0", got)
	}
	if got := d.PickProcessor(pkt(11), []int{0, 1}); got != 1 {
		t.Fatalf("entity 11 home = %d, want 1", got)
	}
	// Home busy: wired streams wait even with idle processors.
	if got := d.PickProcessor(pkt(10), []int{1}); got != -1 {
		t.Fatalf("wired stream placed on foreign processor %d", got)
	}
	d.Enqueue(pkt(10))
	if _, ok := d.Dispatch(1); ok {
		t.Fatal("processor 1 stole a wired packet")
	}
	p, ok := d.Dispatch(0)
	if !ok || p.Entity != 10 {
		t.Fatalf("home dispatch = %+v, %v", p, ok)
	}
}

func TestThreadPoolsStealWhenIdle(t *testing.T) {
	d := newPD(ThreadPools, 2)
	// Entity 10 homed at 0.
	d.PickProcessor(pkt(10), []int{0, 1})
	d.Enqueue(pkt(10))
	d.Enqueue(pkt(10))
	// Processor 1 has an empty pool: it steals from pool 0.
	p, ok := d.Dispatch(1)
	if !ok || p.Entity != 10 {
		t.Fatalf("steal = %+v, %v", p, ok)
	}
	// Stealing migrates the home: next placement prefers processor 1.
	d.RanOn(10, 1)
	if got := d.PickProcessor(pkt(10), []int{0, 1}); got != 1 {
		t.Fatalf("post-steal home = %d, want 1", got)
	}
}

func TestThreadPoolsPlaceOnAnyIdleWhenHomeBusy(t *testing.T) {
	d := newPD(ThreadPools, 2)
	d.PickProcessor(pkt(10), []int{0, 1}) // home 0
	if got := d.PickProcessor(pkt(10), []int{1}); got != 1 {
		t.Fatalf("pools with idle proc returned %d, want 1", got)
	}
}

func TestPacketDispatcherNames(t *testing.T) {
	for _, k := range []Kind{FCFS, MRU, ThreadPools, WiredStreams} {
		if got := newPD(k, 2).Name(); got != k.String() {
			t.Errorf("Name = %q, want %q", got, k.String())
		}
	}
	for _, k := range []Kind{IPSWired, IPSMRU} {
		if got := newSD(k, 4, 2).Name(); got != k.String() {
			t.Errorf("Name = %q, want %q", got, k.String())
		}
	}
}

func TestWiredStacksRoundRobinWiring(t *testing.T) {
	d := newSD(IPSWired, 5, 2).(*wiredStacks)
	want := []int{0, 1, 0, 1, 0}
	for s, w := range want {
		if d.Wire(s) != w {
			t.Fatalf("Wire(%d) = %d, want %d", s, d.Wire(s), w)
		}
	}
}

func TestWiredStacksPlacement(t *testing.T) {
	d := newSD(IPSWired, 4, 2)
	if got := d.PickProcessor(1, []int{0, 1}); got != 1 {
		t.Fatalf("stack 1 placed on %d, want 1", got)
	}
	if got := d.PickProcessor(1, []int{0}); got != -1 {
		t.Fatalf("wired stack placed on foreign processor %d", got)
	}
	d.EnqueueStack(1)
	d.EnqueueStack(3)
	if d.QueuedStacks() != 2 {
		t.Fatalf("QueuedStacks = %d", d.QueuedStacks())
	}
	if got := d.DispatchStack(0); got != -1 {
		t.Fatalf("processor 0 got foreign stack %d", got)
	}
	if got := d.DispatchStack(1); got != 1 {
		t.Fatalf("DispatchStack(1) = %d, want 1", got)
	}
	if got := d.DispatchStack(1); got != 3 {
		t.Fatalf("DispatchStack(1) = %d, want 3", got)
	}
}

func TestMRUStacksPreferAffinity(t *testing.T) {
	d := newSD(IPSMRU, 4, 2)
	d.RanOn(2, 1)
	if got := d.PickProcessor(2, []int{0, 1}); got != 1 {
		t.Fatalf("PickProcessor = %d, want 1", got)
	}
	if got := d.PickProcessor(2, []int{0}); got != 0 {
		t.Fatalf("busy-MRU fallback = %d, want 0", got)
	}
	d.EnqueueStack(0) // never ran
	d.EnqueueStack(2) // affine to 1
	// Default lookahead 1: only the head is examined, FIFO order holds.
	if got := d.DispatchStack(1); got != 0 {
		t.Fatalf("DispatchStack(1) = %d, want FIFO head 0", got)
	}
	if got := d.DispatchStack(1); got != 2 {
		t.Fatalf("DispatchStack(1) = %d, want 2", got)
	}
	if got := d.DispatchStack(1); got != -1 {
		t.Fatalf("empty DispatchStack = %d, want -1", got)
	}
}

func TestMRUStacksLookaheadFindsAffineStack(t *testing.T) {
	d := NewStackDispatcherLookahead(IPSMRU, 4, 2, des.NewRNG(1), 4)
	d.RanOn(2, 1)
	d.EnqueueStack(0)
	d.EnqueueStack(2)
	if got := d.DispatchStack(1); got != 2 {
		t.Fatalf("DispatchStack(1) = %d, want affine stack 2", got)
	}
}

func TestRandomStacksBaseline(t *testing.T) {
	d := newSD(IPSRandom, 4, 2)
	if d.Name() != IPSRandom.String() {
		t.Fatalf("Name = %q", d.Name())
	}
	// Placement is uniform over the idle set — never outside it.
	idle := []int{0, 1}
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		got := d.PickProcessor(2, idle)
		if !contains(idle, got) {
			t.Fatalf("PickProcessor = %d, not idle", got)
		}
		seen[got] = true
	}
	if len(seen) != 2 {
		t.Fatal("random placement clustered on one processor")
	}
	// FIFO stack dispatch with no affinity memory.
	d.RanOn(3, 1) // must be a no-op
	d.EnqueueStack(3)
	d.EnqueueStack(1)
	if d.QueuedStacks() != 2 {
		t.Fatalf("QueuedStacks = %d", d.QueuedStacks())
	}
	if got := d.DispatchStack(0); got != 3 {
		t.Fatalf("DispatchStack = %d, want FIFO head 3", got)
	}
	if got := d.DispatchStack(1); got != 1 {
		t.Fatalf("DispatchStack = %d, want 1", got)
	}
	if got := d.DispatchStack(0); got != -1 {
		t.Fatalf("empty DispatchStack = %d", got)
	}
}

func TestDispatcherCountersAndNoOps(t *testing.T) {
	f := newPD(FCFS, 2)
	f.RanOn(1, 1) // no-op for FCFS
	if f.Queued() != 0 {
		t.Fatal("fresh FCFS queue not empty")
	}
	m := newPD(MRU, 2)
	m.Enqueue(pkt(1))
	if m.Queued() != 1 {
		t.Fatalf("MRU Queued = %d", m.Queued())
	}
	w := newSD(IPSMRU, 4, 2)
	w.EnqueueStack(1)
	if w.QueuedStacks() != 1 {
		t.Fatalf("IPSMRU QueuedStacks = %d", w.QueuedStacks())
	}
	lw := NewStackDispatcherLookahead(IPSWired, 2, 2, des.NewRNG(1), 0) // lookahead clamps to 1
	if lw == nil {
		t.Fatal("nil dispatcher")
	}
}
