// Package sched implements the affinity-based scheduling policies the
// paper proposes and evaluates.
//
// Under the Locking paradigm any processor may process any packet, so
// the schedulable unit is a packet and the policies differ in which
// processor a packet is placed on and which packet an idle processor
// picks up:
//
//	FCFS         — central queue, no affinity (the baseline).
//	MRU          — prefer the processor the packet's stream most
//	               recently used, both at arrival and at dispatch.
//	ThreadPools  — per-processor thread pools: packets join their
//	               stream's home pool; idle processors steal from the
//	               longest pool when their own is empty.
//	WiredStreams — streams statically bound to processors; no stealing.
//
// Under IPS the schedulable unit is a protocol stack (streams are
// partitioned across stacks, and a stack processes its packets
// serially):
//
//	IPSWired — each stack is bound to one processor.
//	IPSMRU   — a ready stack prefers its most-recently-used processor
//	           but may run anywhere idle.
package sched

import (
	"fmt"
	"sort"

	"affinity/internal/des"
)

// Packet is the scheduling view of a packet: its stream, its footprint
// entity (stream under Locking, stack under IPS) and its arrival time.
// Seq is a 1-based serial number assigned at arrival; the observability
// layer uses it to correlate a packet's lifecycle events.
type Packet struct {
	Stream int
	Entity int
	Arrive des.Time
	Seq    uint64
	// StreamSeq is the packet's 1-based position within its stream's
	// arrival order; the reordering metric compares completion order
	// against it.
	StreamSeq uint64
}

// Kind names a scheduling policy.
type Kind int

// Locking-paradigm policies, then IPS-paradigm policies, then the
// NIC-hash dispatch policies (also Locking: any processor can process
// any packet, the hash just decides where it lands). New kinds must be
// appended — the ordinal is part of sim.CacheKey — and added to exactly
// one of the paradigm sets below; kindCount keeps the exhaustiveness
// test honest.
const (
	FCFS Kind = iota
	MRU
	ThreadPools
	WiredStreams
	IPSWired
	IPSMRU
	IPSRandom
	// RSS models receive-side scaling: a static stream-hash through an
	// indirection table picks the packet's processor, so a flow's
	// packets always land on one core (no reordering by construction)
	// whether or not that core is the warm one.
	RSS
	// FlowDirector models an ATR-style rebalancing hash table: a flow
	// whose home queue backs up is re-homed to a less-loaded core while
	// its earlier packets still wait at the old one — reproducing the
	// in-flight reordering pathology of arXiv:1106.0443.
	FlowDirector
	// AffinitySteal is the parameterized work-stealing family (see
	// steal.go): steal penalty, depth threshold and cold-start bias span
	// a space whose corners reduce bit-for-bit to WiredStreams, FCFS and
	// MRU, searched by internal/policysearch.
	AffinitySteal

	// kindCount sentinel: keep last.
	kindCount
)

func (k Kind) String() string {
	switch k {
	case FCFS:
		return "FCFS"
	case MRU:
		return "MRU"
	case ThreadPools:
		return "ThreadPools"
	case WiredStreams:
		return "WiredStreams"
	case IPSWired:
		return "IPS-Wired"
	case IPSMRU:
		return "IPS-MRU"
	case IPSRandom:
		return "IPS-Random"
	case RSS:
		return "RSS"
	case FlowDirector:
		return "FlowDirector"
	case AffinitySteal:
		return "AffinitySteal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ForLocking reports whether the policy applies to the Locking paradigm.
// Membership is an explicit set, not an ordinal range: ranges silently
// misclassify newly appended kinds (the hash policies sit above the IPS
// block, so `k <= WiredStreams` would have excluded them), and a
// negative or otherwise out-of-range Kind must fail paradigm validation
// rather than pass it. TestKindClassificationExhaustive fails when a
// new Kind joins neither paradigm.
func (k Kind) ForLocking() bool {
	switch k {
	case FCFS, MRU, ThreadPools, WiredStreams, RSS, FlowDirector, AffinitySteal:
		return true
	}
	return false
}

// ForIPS reports whether the policy applies to the IPS paradigm.
func (k Kind) ForIPS() bool {
	switch k {
	case IPSWired, IPSMRU, IPSRandom:
		return true
	}
	return false
}

// PacketDispatcher is the Locking-paradigm scheduling interface.
type PacketDispatcher interface {
	Name() string
	// PickProcessor chooses an idle processor for an arriving packet,
	// or -1 to enqueue it instead. idle is the set of processors
	// currently free of protocol work (never empty when called).
	PickProcessor(p Packet, idle []int) int
	// Enqueue records a packet that could not be placed.
	Enqueue(p Packet)
	// Dispatch returns the next packet for a processor that just became
	// idle, or ok=false if it should stay idle.
	Dispatch(proc int) (Packet, bool)
	// RanOn informs the dispatcher that a packet of the given entity
	// completed on proc (updates MRU/affinity state).
	RanOn(entity, proc int)
	// Queued returns the number of packets waiting.
	Queued() int
	// DepthFor returns how many packets are waiting in the queue p
	// would join if enqueued now — the quantity a bounded-queue
	// admission decision compares against the capacity.
	DepthFor(p Packet) int
	// ProcDown removes proc from service (fault injection): policies
	// with static placement re-home entities bound to it and migrate
	// their queued packets; affinity memories pointing at it are
	// forgotten. The runner stops offering proc in idle sets and stops
	// calling Dispatch for it until ProcUp.
	ProcDown(proc int)
	// ProcUp restores proc to service. Wired policies re-home their
	// displaced entities back (the first packets after failback pay a
	// cold-cache penalty — the simulator wiped the processor's state).
	ProcUp(proc int)
	// AffinityStats reports how many placement/dispatch decisions
	// landed work on the processor holding the entity's warm state,
	// out of the total decisions made.
	AffinityStats() (hits, total uint64)
	// PreferredProc returns the processor the policy would steer the
	// entity toward — its affinity target — or -1 when it has none
	// (no-affinity baselines, entity not seen yet). It is a pure read
	// for the decision ledger: it must not create or mutate placement
	// state.
	PreferredProc(entity int) int
}

// affinityCount instruments a policy's decisions for the observability
// layer: each placement or dispatch counts once, as a hit when the
// chosen processor is the one the entity is warm on. The no-affinity
// baselines (FCFS, IPS-Random) report zero hits by construction.
type affinityCount struct {
	hits, decisions uint64
}

func (c *affinityCount) note(hit bool) {
	c.decisions++
	if hit {
		c.hits++
	}
}

// AffinityStats returns the hit and decision counts.
func (c *affinityCount) AffinityStats() (hits, total uint64) {
	return c.hits, c.decisions
}

// NewPacketDispatcher builds the Locking dispatcher for kind k on n
// processors. Policies that place a no-affinity packet on "any idle
// processor" pick uniformly at random among the idle set, so that the
// FCFS baseline does not accidentally accrue affinity by always reusing
// the lowest-numbered processor.
func NewPacketDispatcher(k Kind, n int, rng *des.RNG) PacketDispatcher {
	return NewPacketDispatcherLookahead(k, n, rng, 1)
}

// NewPacketDispatcherLookahead is NewPacketDispatcher with an explicit
// dispatch lookahead for the MRU policy: a processor picking new work
// examines only the first lookahead waiting packets for one with
// affinity before falling back to the FIFO head. Real dispatchers scan a
// bounded prefix (the scan happens under the queue lock); unbounded
// lookahead would let MRU degenerate into Wired-Streams-with-stealing at
// saturation and mask the policy crossover the paper reports.
func NewPacketDispatcherLookahead(k Kind, n int, rng *des.RNG, lookahead int) PacketDispatcher {
	if lookahead < 1 {
		lookahead = 1
	}
	return NewPacketDispatcherHash(k, n, rng, lookahead, HashConfig{})
}

// NewPacketDispatcherHash is NewPacketDispatcherLookahead with an
// explicit configuration for the hash-dispatch policies (RSS,
// FlowDirector); the zero HashConfig selects their defaults and is
// ignored by every other kind. AffinitySteal built through this
// constructor gets the zero StealConfig — the FCFS corner.
func NewPacketDispatcherHash(k Kind, n int, rng *des.RNG, lookahead int, hc HashConfig) PacketDispatcher {
	return NewPacketDispatcherFull(k, n, rng, lookahead, hc, StealConfig{})
}

// NewPacketDispatcherFull is the fully explicit Locking-dispatcher
// constructor: hash configuration for RSS/FlowDirector plus the
// AffinitySteal family point and clock; each is ignored by the kinds it
// does not apply to.
func NewPacketDispatcherFull(k Kind, n int, rng *des.RNG, lookahead int, hc HashConfig, sc StealConfig) PacketDispatcher {
	if lookahead < 1 {
		lookahead = 1
	}
	switch k {
	case FCFS:
		return &fcfs{rng: rng}
	case MRU:
		return &mru{mru: map[int]int{}, rng: rng, lookahead: lookahead}
	case ThreadPools:
		return newPools(n, true, rng)
	case WiredStreams:
		return newPools(n, false, rng)
	case RSS:
		hc.Rebalance = -1 // static by definition
		return newHashed(RSS, n, hc)
	case FlowDirector:
		return newHashed(FlowDirector, n, hc)
	case AffinitySteal:
		return newSteal(n, rng, lookahead, sc)
	default:
		panic(fmt.Sprintf("sched: %v is not a Locking policy", k))
	}
}

// fcfs: one central FIFO, no affinity.
type fcfs struct {
	affinityCount
	q   fifo
	rng *des.RNG
}

func (*fcfs) Name() string { return FCFS.String() }
func (f *fcfs) PickProcessor(_ Packet, idle []int) int {
	f.note(false)
	return idle[f.rng.Intn(len(idle))]
}
func (f *fcfs) Enqueue(p Packet) { f.q.push(p) }
func (f *fcfs) Dispatch(int) (Packet, bool) {
	p, ok := f.q.pop()
	if ok {
		f.note(false)
	}
	return p, ok
}
func (*fcfs) RanOn(int, int) {}
func (f *fcfs) Queued() int  { return f.q.len() }

func (f *fcfs) DepthFor(Packet) int { return f.q.len() }

// FCFS has no placement state to degrade: the central queue serves
// whichever processors remain.
func (*fcfs) ProcDown(int) {}
func (*fcfs) ProcUp(int)   {}

func (*fcfs) PreferredProc(int) int { return -1 }

// mru: central FIFO with affinity preference at both decision points.
type mru struct {
	affinityCount
	q         fifo
	mru       map[int]int // entity → processor it last ran on
	rng       *des.RNG
	lookahead int
}

func (*mru) Name() string { return MRU.String() }

func (m *mru) PickProcessor(p Packet, idle []int) int {
	if proc, ok := m.mru[p.Entity]; ok {
		for _, i := range idle {
			if i == proc {
				m.note(true)
				return proc
			}
		}
	}
	// No affinity or its processor is busy: take any idle one rather
	// than wait (work conservation, as in the paper's MRU policy).
	m.note(false)
	return idle[m.rng.Intn(len(idle))]
}

func (m *mru) Enqueue(p Packet) { m.q.push(p) }

func (m *mru) Dispatch(proc int) (Packet, bool) {
	// Prefer the oldest packet (within the bounded lookahead) whose
	// stream has affinity for this processor; fall back to the head.
	if i := m.q.indexWhereN(m.lookahead, func(p Packet) bool {
		h, ok := m.mru[p.Entity]
		return ok && h == proc
	}); i >= 0 {
		m.note(true)
		return m.q.removeAt(i), true
	}
	p, ok := m.q.pop()
	if ok {
		// The FIFO head may still happen to be affine.
		h, known := m.mru[p.Entity]
		m.note(known && h == proc)
	}
	return p, ok
}

func (m *mru) RanOn(entity, proc int) { m.mru[entity] = proc }
func (m *mru) Queued() int            { return m.q.len() }

func (m *mru) DepthFor(Packet) int { return m.q.len() }

// ProcDown forgets every affinity pointing at the failed processor: its
// cache contents are lost, so steering work back there on recovery
// would pay the cold-start cost for no benefit.
func (m *mru) ProcDown(proc int) {
	for e, h := range m.mru {
		if h == proc {
			delete(m.mru, e)
		}
	}
}

func (*mru) ProcUp(int) {}

func (m *mru) PreferredProc(entity int) int {
	if h, ok := m.mru[entity]; ok {
		return h
	}
	return -1
}

// pools: per-processor queues with a per-stream home. With stealing it
// is the ThreadPools policy, without it Wired-Streams.
type pools struct {
	affinityCount
	queues   []fifo
	home     map[int]int
	pref     map[int]int // entity → original (pre-fault) home, the failback target
	avail    []bool
	stealing bool
	nextHome int // round-robin assignment of new entities
	rng      *des.RNG
}

func newPools(n int, stealing bool, rng *des.RNG) *pools {
	avail := make([]bool, n)
	for i := range avail {
		avail[i] = true
	}
	return &pools{
		queues: make([]fifo, n), home: map[int]int{}, pref: map[int]int{},
		avail: avail, stealing: stealing, rng: rng,
	}
}

func (p *pools) Name() string {
	if p.stealing {
		return ThreadPools.String()
	}
	return WiredStreams.String()
}

func (p *pools) homeOf(entity int) int {
	h, ok := p.home[entity]
	if !ok {
		h = p.nextAvailHome()
		p.home[entity] = h
		p.pref[entity] = h
	}
	return h
}

// nextAvailHome advances the round-robin cursor to the next live
// processor. With every processor down it falls back to the plain
// round-robin choice: the packet waits in that pool until a recovery
// re-homes it, and packet conservation still holds.
func (p *pools) nextAvailHome() int {
	n := len(p.queues)
	for range p.queues {
		h := p.nextHome % n
		p.nextHome++
		if p.avail[h] {
			return h
		}
	}
	h := p.nextHome % n
	p.nextHome++
	return h
}

func (p *pools) PickProcessor(pk Packet, idle []int) int {
	h := p.homeOf(pk.Entity)
	for _, i := range idle {
		if i == h {
			p.note(true)
			return h
		}
	}
	if p.stealing {
		// ThreadPools: an idle processor's pool thread will take the
		// packet rather than let it wait behind a busy home.
		p.note(false)
		return idle[p.rng.Intn(len(idle))]
	}
	return -1 // Wired-Streams: wait for the home processor (no decision)
}

func (p *pools) Enqueue(pk Packet) { p.queues[p.homeOf(pk.Entity)].push(pk) }

func (p *pools) Dispatch(proc int) (Packet, bool) {
	if pk, ok := p.queues[proc].pop(); ok {
		// A packet from the processor's own pool is affine (stealing
		// migrates the home along with the stream, see RanOn).
		p.note(p.home[pk.Entity] == proc)
		return pk, true
	}
	if !p.stealing {
		return Packet{}, false
	}
	// Steal the oldest packet from the longest pool.
	longest, max := -1, 0
	for i := range p.queues {
		if l := p.queues[i].len(); l > max {
			longest, max = i, l
		}
	}
	if longest < 0 {
		return Packet{}, false
	}
	p.note(false)
	return p.queues[longest].pop()
}

func (p *pools) RanOn(entity, proc int) {
	if p.stealing {
		// Stealing migrates the stream's home with it, keeping
		// subsequent packets near the warmed state.
		p.home[entity] = proc
	}
}

func (p *pools) Queued() int {
	n := 0
	for i := range p.queues {
		n += p.queues[i].len()
	}
	return n
}

func (p *pools) DepthFor(pk Packet) int { return p.queues[p.homeOf(pk.Entity)].len() }

// ProcDown re-homes every entity bound to the failed processor onto the
// remaining live ones (round-robin, in ascending entity order — map
// iteration order is randomized and re-homing must be deterministic)
// and migrates its queued packets to their new pools in arrival order.
func (p *pools) ProcDown(proc int) {
	p.avail[proc] = false
	var ids []int
	for e, h := range p.home {
		if h == proc {
			ids = append(ids, e)
		}
	}
	sort.Ints(ids)
	for _, e := range ids {
		p.home[e] = p.nextAvailHome()
	}
	for {
		pk, ok := p.queues[proc].pop()
		if !ok {
			break
		}
		p.queues[p.homeOf(pk.Entity)].push(pk)
	}
}

// ProcUp restores the processor. Wired-Streams entities originally
// homed here fail back (with their queued packets; per-stream FIFO
// order is preserved because a stream's packets all sit contiguously in
// one pool). ThreadPools re-balances on its own — stealing migrates
// homes toward the recovered processor as soon as it picks up work.
func (p *pools) ProcUp(proc int) {
	p.avail[proc] = true
	if p.stealing {
		return
	}
	var ids []int
	for e, h := range p.pref {
		if h == proc && p.home[e] != proc {
			ids = append(ids, e)
		}
	}
	if len(ids) == 0 {
		return
	}
	sort.Ints(ids)
	for _, e := range ids {
		p.home[e] = proc
	}
	for q := range p.queues {
		if q == proc {
			continue
		}
		for _, pk := range p.queues[q].drainMatching(func(pk Packet) bool {
			return p.home[pk.Entity] == proc
		}) {
			p.queues[proc].push(pk)
		}
	}
}

// PreferredProc reads the entity's home without assigning one — homeOf
// would mutate the map, and ledger reads must not shift round-robin
// placement.
func (p *pools) PreferredProc(entity int) int {
	if h, ok := p.home[entity]; ok {
		return h
	}
	return -1
}

// fifo is a slice-backed FIFO of packets that recycles its backing
// array: the head index advances on pop (slots cleared so packets don't
// linger past their dequeue) and the array resets when the queue drains
// or the dead prefix dominates, so steady-state push/pop traffic stops
// allocating.
type fifo struct {
	items []Packet
	head  int
}

func (f *fifo) push(p Packet) { f.items = append(f.items, p) }

// advance drops the head slot, resetting or compacting the backing
// array when the dead prefix is worth reclaiming.
func (f *fifo) advance() {
	f.items[f.head] = Packet{}
	f.head++
	if f.head == len(f.items) {
		f.items = f.items[:0]
		f.head = 0
	} else if f.head > 64 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
}

func (f *fifo) pop() (Packet, bool) {
	if f.head == len(f.items) {
		return Packet{}, false
	}
	p := f.items[f.head]
	f.advance()
	return p, true
}

func (f *fifo) len() int { return len(f.items) - f.head }

// peek returns the head packet without removing it.
func (f *fifo) peek() (Packet, bool) {
	if f.head == len(f.items) {
		return Packet{}, false
	}
	return f.items[f.head], true
}

// indexWhereN returns the position (0 = head) of the first packet among
// the first n that satisfies pred, or -1.
func (f *fifo) indexWhereN(n int, pred func(Packet) bool) int {
	for i, p := range f.items[f.head:] {
		if i >= n {
			break
		}
		if pred(p) {
			return i
		}
	}
	return -1
}

// drainMatching removes every queued packet satisfying pred, preserving
// FIFO order among both the removed and the remaining packets, and
// returns the removed ones. Only fault transitions call it, so the
// allocation is off the hot path.
func (f *fifo) drainMatching(pred func(Packet) bool) []Packet {
	var out []Packet
	kept := f.items[f.head:f.head]
	for _, p := range f.items[f.head:] {
		if pred(p) {
			out = append(out, p)
		} else {
			kept = append(kept, p)
		}
	}
	tail := f.head + len(kept)
	for i := tail; i < len(f.items); i++ {
		f.items[i] = Packet{}
	}
	f.items = f.items[:tail]
	return out
}

// removeAt removes and returns the packet at position i (0 = head). The
// index always lies within the dispatch lookahead window, so shifting
// the short prefix right keeps this O(lookahead) even when the queue is
// very long (an overloaded run can hold hundreds of thousands of
// packets).
func (f *fifo) removeAt(i int) Packet {
	j := f.head + i
	p := f.items[j]
	copy(f.items[f.head+1:j+1], f.items[f.head:j])
	f.advance()
	return p
}
