package sched

import (
	"testing"

	"affinity/internal/des"
)

func TestPacketPreferredProc(t *testing.T) {
	rng := des.NewRNG(1)
	t.Run("fcfs", func(t *testing.T) {
		d := NewPacketDispatcher(FCFS, 3, rng)
		if d.PreferredProc(0) != -1 {
			t.Fatal("FCFS must have no affinity target")
		}
	})
	t.Run("mru", func(t *testing.T) {
		d := NewPacketDispatcher(MRU, 3, rng)
		if d.PreferredProc(5) != -1 {
			t.Fatal("unseen entity must have no target")
		}
		d.RanOn(5, 2)
		if d.PreferredProc(5) != 2 {
			t.Fatal("MRU target must follow RanOn")
		}
		d.ProcDown(2)
		if d.PreferredProc(5) != -1 {
			t.Fatal("fault must forget the affinity")
		}
	})
	for _, k := range []Kind{ThreadPools, WiredStreams} {
		t.Run(k.String(), func(t *testing.T) {
			d := NewPacketDispatcher(k, 3, rng)
			// A pure read: asking about an unseen entity must not assign a
			// home (homeOf would advance the round-robin cursor).
			if d.PreferredProc(7) != -1 {
				t.Fatal("unseen entity must have no home yet")
			}
			h1 := d.PickProcessor(Packet{Stream: 0, Entity: 0}, []int{0, 1, 2})
			if got := d.PreferredProc(0); got != h1 {
				t.Fatalf("home=%d after placement on %d", got, h1)
			}
			// The read must not have perturbed round-robin state: the next
			// entity still gets the next home in sequence.
			h2 := d.PickProcessor(Packet{Stream: 1, Entity: 1}, []int{0, 1, 2})
			if h2 != (h1+1)%3 {
				t.Fatalf("round-robin perturbed: first=%d second=%d", h1, h2)
			}
		})
	}
}

func TestStackPreferredProc(t *testing.T) {
	rng := des.NewRNG(1)
	t.Run("wired", func(t *testing.T) {
		d := NewStackDispatcher(IPSWired, 4, 2, rng)
		if d.PreferredProc(0) != 0 || d.PreferredProc(3) != 1 {
			t.Fatal("wired target must be the static binding")
		}
		d.ProcDown(0)
		if d.PreferredProc(0) == 0 {
			t.Fatal("fault must move the wiring")
		}
		d.ProcUp(0)
		if d.PreferredProc(0) != 0 {
			t.Fatal("recovery must wire the stack back")
		}
	})
	t.Run("mru", func(t *testing.T) {
		d := NewStackDispatcher(IPSMRU, 4, 2, rng)
		if d.PreferredProc(1) != -1 {
			t.Fatal("unseen stack must have no target")
		}
		d.RanOn(1, 1)
		if d.PreferredProc(1) != 1 {
			t.Fatal("MRU target must follow RanOn")
		}
	})
	t.Run("random", func(t *testing.T) {
		d := NewStackDispatcher(IPSRandom, 4, 2, rng)
		d.RanOn(1, 1)
		if d.PreferredProc(1) != -1 {
			t.Fatal("random baseline must have no target")
		}
	})
}
