package sched

import (
	"fmt"

	"affinity/internal/des"
)

// StackDispatcher is the IPS-paradigm scheduling interface. The
// schedulable unit is a ready stack (one with queued packets that is not
// currently running).
type StackDispatcher interface {
	Name() string
	// PickProcessor chooses an idle processor for a stack that just
	// became ready, or -1 to queue the stack instead.
	PickProcessor(stack int, idle []int) int
	// EnqueueStack records a ready stack that could not be placed.
	EnqueueStack(stack int)
	// DispatchStack returns the next stack for a processor that just
	// became idle, or -1 if it should stay idle.
	DispatchStack(proc int) int
	// RanOn informs the dispatcher that a stack ran on proc.
	RanOn(stack, proc int)
	// QueuedStacks returns the number of ready stacks waiting.
	QueuedStacks() int
	// AffinityStats reports how many placement/dispatch decisions
	// landed a stack on its warm processor, out of the total made.
	AffinityStats() (hits, total uint64)
}

// NewStackDispatcher builds the IPS dispatcher for kind k with the given
// number of stacks and processors. The MRU policy's no-affinity fallback
// picks uniformly among idle processors (see NewPacketDispatcher).
func NewStackDispatcher(k Kind, stacks, procs int, rng *des.RNG) StackDispatcher {
	return NewStackDispatcherLookahead(k, stacks, procs, rng, 1)
}

// NewStackDispatcherLookahead is NewStackDispatcher with an explicit
// dispatch lookahead for the MRU policy (see
// NewPacketDispatcherLookahead for why the scan is bounded).
func NewStackDispatcherLookahead(k Kind, stacks, procs int, rng *des.RNG, lookahead int) StackDispatcher {
	if lookahead < 1 {
		lookahead = 1
	}
	switch k {
	case IPSWired:
		return newWiredStacks(stacks, procs)
	case IPSMRU:
		return &mruStacks{mru: map[int]int{}, rng: rng, lookahead: lookahead}
	case IPSRandom:
		return &randomStacks{rng: rng}
	default:
		panic(fmt.Sprintf("sched: %v is not an IPS policy", k))
	}
}

// wiredStacks: stack k is bound to processor k mod procs; each processor
// has a FIFO runqueue of its ready stacks.
type wiredStacks struct {
	affinityCount
	wire []int
	runq [][]int
}

func newWiredStacks(stacks, procs int) *wiredStacks {
	w := &wiredStacks{wire: make([]int, stacks), runq: make([][]int, procs)}
	for s := range w.wire {
		w.wire[s] = s % procs
	}
	return w
}

func (*wiredStacks) Name() string { return IPSWired.String() }

// Wire returns the processor stack s is bound to.
func (w *wiredStacks) Wire(s int) int { return w.wire[s] }

func (w *wiredStacks) PickProcessor(stack int, idle []int) int {
	home := w.wire[stack]
	for _, i := range idle {
		if i == home {
			w.note(true)
			return home
		}
	}
	return -1 // wired: wait for the home processor (no decision)
}

func (w *wiredStacks) EnqueueStack(stack int) {
	home := w.wire[stack]
	w.runq[home] = append(w.runq[home], stack)
}

func (w *wiredStacks) DispatchStack(proc int) int {
	if len(w.runq[proc]) == 0 {
		return -1
	}
	s := w.runq[proc][0]
	w.runq[proc] = w.runq[proc][1:]
	w.note(true) // a wired run queue only ever holds home stacks
	return s
}

func (*wiredStacks) RanOn(int, int) {}

func (w *wiredStacks) QueuedStacks() int {
	n := 0
	for _, q := range w.runq {
		n += len(q)
	}
	return n
}

// mruStacks: a central FIFO of ready stacks; placement prefers a stack's
// most-recently-used processor, and an idle processor prefers a stack
// with affinity for it.
type mruStacks struct {
	affinityCount
	ready     []int
	mru       map[int]int
	rng       *des.RNG
	lookahead int
}

func (*mruStacks) Name() string { return IPSMRU.String() }

func (m *mruStacks) PickProcessor(stack int, idle []int) int {
	if proc, ok := m.mru[stack]; ok {
		for _, i := range idle {
			if i == proc {
				m.note(true)
				return proc
			}
		}
	}
	m.note(false)
	return idle[m.rng.Intn(len(idle))]
}

func (m *mruStacks) EnqueueStack(stack int) { m.ready = append(m.ready, stack) }

func (m *mruStacks) DispatchStack(proc int) int {
	if len(m.ready) == 0 {
		return -1
	}
	pick := 0
	for i, s := range m.ready {
		if i >= m.lookahead {
			break
		}
		if h, ok := m.mru[s]; ok && h == proc {
			pick = i
			break
		}
	}
	s := m.ready[pick]
	m.ready = append(m.ready[:pick], m.ready[pick+1:]...)
	h, known := m.mru[s]
	m.note(known && h == proc)
	return s
}

func (m *mruStacks) RanOn(stack, proc int) { m.mru[stack] = proc }

func (m *mruStacks) QueuedStacks() int { return len(m.ready) }

// randomStacks is the no-affinity IPS baseline: a ready stack is placed
// on a uniformly random idle processor and dispatched FIFO, with no
// memory of where it ran before. The affinity policies are measured
// against it in the reduction experiments.
type randomStacks struct {
	affinityCount
	ready []int
	rng   *des.RNG
}

func (*randomStacks) Name() string { return IPSRandom.String() }

func (r *randomStacks) PickProcessor(_ int, idle []int) int {
	r.note(false)
	return idle[r.rng.Intn(len(idle))]
}

func (r *randomStacks) EnqueueStack(stack int) { r.ready = append(r.ready, stack) }

func (r *randomStacks) DispatchStack(int) int {
	if len(r.ready) == 0 {
		return -1
	}
	s := r.ready[0]
	r.ready = r.ready[1:]
	r.note(false)
	return s
}

func (*randomStacks) RanOn(int, int) {}

func (r *randomStacks) QueuedStacks() int { return len(r.ready) }
