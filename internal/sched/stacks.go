package sched

import (
	"fmt"

	"affinity/internal/des"
)

// StackDispatcher is the IPS-paradigm scheduling interface. The
// schedulable unit is a ready stack (one with queued packets that is not
// currently running).
type StackDispatcher interface {
	Name() string
	// PickProcessor chooses an idle processor for a stack that just
	// became ready, or -1 to queue the stack instead.
	PickProcessor(stack int, idle []int) int
	// EnqueueStack records a ready stack that could not be placed.
	EnqueueStack(stack int)
	// DispatchStack returns the next stack for a processor that just
	// became idle, or -1 if it should stay idle.
	DispatchStack(proc int) int
	// RanOn informs the dispatcher that a stack ran on proc.
	RanOn(stack, proc int)
	// QueuedStacks returns the number of ready stacks waiting.
	QueuedStacks() int
	// ProcDown removes proc from service (fault injection): IPS-Wired
	// re-wires its stacks onto live processors and moves their queued
	// entries; IPS-MRU forgets affinities pointing at it.
	ProcDown(proc int)
	// ProcUp restores proc to service; IPS-Wired wires its original
	// stacks back (their first runs after failback start cold — the
	// simulator wiped the processor's cache state).
	ProcUp(proc int)
	// AffinityStats reports how many placement/dispatch decisions
	// landed a stack on its warm processor, out of the total made.
	AffinityStats() (hits, total uint64)
	// PreferredProc returns the processor the policy would steer the
	// stack toward, or -1 when it has no target (see
	// PacketDispatcher.PreferredProc). A pure read — no state changes.
	PreferredProc(stack int) int
}

// NewStackDispatcher builds the IPS dispatcher for kind k with the given
// number of stacks and processors. The MRU policy's no-affinity fallback
// picks uniformly among idle processors (see NewPacketDispatcher).
func NewStackDispatcher(k Kind, stacks, procs int, rng *des.RNG) StackDispatcher {
	return NewStackDispatcherLookahead(k, stacks, procs, rng, 1)
}

// NewStackDispatcherLookahead is NewStackDispatcher with an explicit
// dispatch lookahead for the MRU policy (see
// NewPacketDispatcherLookahead for why the scan is bounded).
func NewStackDispatcherLookahead(k Kind, stacks, procs int, rng *des.RNG, lookahead int) StackDispatcher {
	if lookahead < 1 {
		lookahead = 1
	}
	switch k {
	case IPSWired:
		return newWiredStacks(stacks, procs)
	case IPSMRU:
		return &mruStacks{mru: map[int]int{}, rng: rng, lookahead: lookahead}
	case IPSRandom:
		return &randomStacks{rng: rng}
	default:
		panic(fmt.Sprintf("sched: %v is not an IPS policy", k))
	}
}

// wiredStacks: stack k is bound to processor k mod procs; each processor
// has a FIFO runqueue of its ready stacks. Fault injection moves the
// current wiring (wire) while wire0 remembers the original binding so a
// recovered processor gets its stacks back.
type wiredStacks struct {
	affinityCount
	wire  []int // current wiring (fault re-homing moves it)
	wire0 []int // original wiring, the failback target
	avail []bool
	runq  [][]int
	next  int // round-robin cursor for fault re-homing
}

func newWiredStacks(stacks, procs int) *wiredStacks {
	w := &wiredStacks{
		wire:  make([]int, stacks),
		wire0: make([]int, stacks),
		avail: make([]bool, procs),
		runq:  make([][]int, procs),
	}
	for s := range w.wire {
		w.wire[s] = s % procs
		w.wire0[s] = w.wire[s]
	}
	for i := range w.avail {
		w.avail[i] = true
	}
	return w
}

func (*wiredStacks) Name() string { return IPSWired.String() }

// Wire returns the processor stack s is bound to.
func (w *wiredStacks) Wire(s int) int { return w.wire[s] }

func (w *wiredStacks) PickProcessor(stack int, idle []int) int {
	home := w.wire[stack]
	for _, i := range idle {
		if i == home {
			w.note(true)
			return home
		}
	}
	return -1 // wired: wait for the home processor (no decision)
}

func (w *wiredStacks) EnqueueStack(stack int) {
	home := w.wire[stack]
	w.runq[home] = append(w.runq[home], stack)
}

func (w *wiredStacks) DispatchStack(proc int) int {
	if len(w.runq[proc]) == 0 {
		return -1
	}
	s := w.runq[proc][0]
	w.runq[proc] = w.runq[proc][1:]
	w.note(true) // a wired run queue only ever holds home stacks
	return s
}

func (*wiredStacks) RanOn(int, int) {}

// nextAvail advances the re-homing cursor to the next live processor,
// falling back to plain round-robin when every processor is down (the
// stack then waits until a recovery re-wires it).
func (w *wiredStacks) nextAvail() int {
	n := len(w.runq)
	for range w.runq {
		h := w.next % n
		w.next++
		if w.avail[h] {
			return h
		}
	}
	h := w.next % n
	w.next++
	return h
}

// ProcDown re-wires the failed processor's stacks onto live processors
// (round-robin, ascending stack order) and moves its ready queue to the
// new homes preserving queue order.
func (w *wiredStacks) ProcDown(proc int) {
	w.avail[proc] = false
	for s := range w.wire {
		if w.wire[s] == proc {
			w.wire[s] = w.nextAvail()
		}
	}
	for _, s := range w.runq[proc] {
		w.runq[w.wire[s]] = append(w.runq[w.wire[s]], s)
	}
	w.runq[proc] = w.runq[proc][:0]
}

// ProcUp wires the processor's original stacks back and pulls their
// queued entries home.
func (w *wiredStacks) ProcUp(proc int) {
	w.avail[proc] = true
	moved := false
	for s := range w.wire {
		if w.wire0[s] == proc && w.wire[s] != proc {
			w.wire[s] = proc
			moved = true
		}
	}
	if !moved {
		return
	}
	for q := range w.runq {
		if q == proc {
			continue
		}
		kept := w.runq[q][:0]
		for _, s := range w.runq[q] {
			if w.wire[s] == proc {
				w.runq[proc] = append(w.runq[proc], s)
			} else {
				kept = append(kept, s)
			}
		}
		w.runq[q] = kept
	}
}

func (w *wiredStacks) PreferredProc(stack int) int { return w.wire[stack] }

func (w *wiredStacks) QueuedStacks() int {
	n := 0
	for _, q := range w.runq {
		n += len(q)
	}
	return n
}

// mruStacks: a central FIFO of ready stacks; placement prefers a stack's
// most-recently-used processor, and an idle processor prefers a stack
// with affinity for it.
type mruStacks struct {
	affinityCount
	ready     []int
	mru       map[int]int
	rng       *des.RNG
	lookahead int
}

func (*mruStacks) Name() string { return IPSMRU.String() }

func (m *mruStacks) PickProcessor(stack int, idle []int) int {
	if proc, ok := m.mru[stack]; ok {
		for _, i := range idle {
			if i == proc {
				m.note(true)
				return proc
			}
		}
	}
	m.note(false)
	return idle[m.rng.Intn(len(idle))]
}

func (m *mruStacks) EnqueueStack(stack int) { m.ready = append(m.ready, stack) }

func (m *mruStacks) DispatchStack(proc int) int {
	if len(m.ready) == 0 {
		return -1
	}
	pick := 0
	for i, s := range m.ready {
		if i >= m.lookahead {
			break
		}
		if h, ok := m.mru[s]; ok && h == proc {
			pick = i
			break
		}
	}
	s := m.ready[pick]
	m.ready = append(m.ready[:pick], m.ready[pick+1:]...)
	h, known := m.mru[s]
	m.note(known && h == proc)
	return s
}

func (m *mruStacks) RanOn(stack, proc int) { m.mru[stack] = proc }

func (m *mruStacks) QueuedStacks() int { return len(m.ready) }

// ProcDown forgets affinities pointing at the failed processor (see
// mru.ProcDown).
func (m *mruStacks) ProcDown(proc int) {
	for s, h := range m.mru {
		if h == proc {
			delete(m.mru, s)
		}
	}
}

func (*mruStacks) ProcUp(int) {}

func (m *mruStacks) PreferredProc(stack int) int {
	if h, ok := m.mru[stack]; ok {
		return h
	}
	return -1
}

// randomStacks is the no-affinity IPS baseline: a ready stack is placed
// on a uniformly random idle processor and dispatched FIFO, with no
// memory of where it ran before. The affinity policies are measured
// against it in the reduction experiments.
type randomStacks struct {
	affinityCount
	ready []int
	rng   *des.RNG
}

func (*randomStacks) Name() string { return IPSRandom.String() }

func (r *randomStacks) PickProcessor(_ int, idle []int) int {
	r.note(false)
	return idle[r.rng.Intn(len(idle))]
}

func (r *randomStacks) EnqueueStack(stack int) { r.ready = append(r.ready, stack) }

func (r *randomStacks) DispatchStack(int) int {
	if len(r.ready) == 0 {
		return -1
	}
	s := r.ready[0]
	r.ready = r.ready[1:]
	r.note(false)
	return s
}

func (*randomStacks) RanOn(int, int) {}

func (r *randomStacks) QueuedStacks() int { return len(r.ready) }

// IPS-Random has no placement state to degrade.
func (*randomStacks) ProcDown(int) {}
func (*randomStacks) ProcUp(int)   {}

func (*randomStacks) PreferredProc(int) int { return -1 }
