package sched

import (
	"strings"
	"testing"

	"affinity/internal/des"
)

// TestKindClassificationExhaustive is the guard the ordinal-range bug
// slipped past: every Kind in [0, kindCount) must belong to exactly one
// paradigm and print a real name. A newly appended Kind lands in the
// loop automatically, so forgetting to extend ForLocking/ForIPS (or
// String) fails here instead of silently misclassifying.
func TestKindClassificationExhaustive(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		locking, ips := k.ForLocking(), k.ForIPS()
		if locking == ips {
			t.Errorf("Kind %d (%v): ForLocking=%v ForIPS=%v, want exactly one paradigm",
				int(k), k, locking, ips)
		}
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind %d has no String case: %q", int(k), s)
		}
	}
	// Out-of-range kinds belong to neither paradigm.
	for _, k := range []Kind{-1, kindCount, 99} {
		if k.ForLocking() || k.ForIPS() {
			t.Errorf("out-of-range Kind %d classified into a paradigm", int(k))
		}
	}
}

func hashPD(k Kind, n int, hc HashConfig) PacketDispatcher {
	return NewPacketDispatcherHash(k, n, des.NewRNG(1), 1, hc)
}

// identity hashing with entity < table size makes home = entity % n,
// which the placement tests below rely on for predictability.
func idPD(k Kind, n int, rebalance int) PacketDispatcher {
	return hashPD(k, n, HashConfig{Identity: true, Rebalance: rebalance})
}

func TestRSSHomesAreStatic(t *testing.T) {
	d := idPD(RSS, 2, 0)
	// entity 4 → home 0, entity 5 → home 1, regardless of idle order.
	if got := d.PickProcessor(pkt(4), []int{0, 1}); got != 0 {
		t.Fatalf("entity 4 placed on %d, want hash home 0", got)
	}
	if got := d.PickProcessor(pkt(5), []int{0, 1}); got != 1 {
		t.Fatalf("entity 5 placed on %d, want hash home 1", got)
	}
	// Home busy: RSS waits even with another processor idle.
	if got := d.PickProcessor(pkt(4), []int{1}); got != -1 {
		t.Fatalf("RSS placed a flow off its hash home: %d", got)
	}
	d.Enqueue(pkt(4))
	if _, ok := d.Dispatch(1); ok {
		t.Fatal("processor 1 stole an RSS packet")
	}
	p, ok := d.Dispatch(0)
	if !ok || p.Entity != 4 {
		t.Fatalf("home dispatch = %+v, %v", p, ok)
	}
	// RanOn must not move the home (the hash owns placement).
	d.RanOn(4, 1)
	if got := d.PreferredProc(4); got != 0 {
		t.Fatalf("RanOn moved an RSS home to %d", got)
	}
}

func TestRSSIgnoresRebalanceConfig(t *testing.T) {
	// Even with an aggressive trigger configured, the RSS constructor
	// forces the static table: a backed-up home never re-homes.
	d := NewPacketDispatcherHash(RSS, 2, des.NewRNG(1), 1, HashConfig{Identity: true, Rebalance: 1})
	for i := 0; i < 4; i++ {
		d.Enqueue(pkt(0)) // home 0 backs up
	}
	if got := d.PickProcessor(pkt(0), []int{1}); got != -1 {
		t.Fatalf("RSS rebalanced a flow to %d", got)
	}
	if got := d.PreferredProc(0); got != 0 {
		t.Fatalf("RSS home moved to %d", got)
	}
}

func TestHashMixSpreadsStreams(t *testing.T) {
	// The non-identity hash must not collapse small consecutive stream
	// ids onto one processor.
	d := hashPD(RSS, 4, HashConfig{})
	seen := map[int]bool{}
	for e := 0; e < 64; e++ {
		h := d.PreferredProc(e)
		if h < 0 || h >= 4 {
			t.Fatalf("entity %d hashed to %d", e, h)
		}
		seen[h] = true
	}
	if len(seen) != 4 {
		t.Fatalf("64 streams hashed onto only %d of 4 processors", len(seen))
	}
}

func TestFlowDirectorRebalancesOnPick(t *testing.T) {
	d := idPD(FlowDirector, 2, 2)
	// Flow 0's home 0 backs up past the trigger.
	d.Enqueue(pkt(0))
	d.Enqueue(pkt(0))
	// Home busy, processor 1 idle: the arriving packet re-homes flow 0.
	got := d.PickProcessor(pkt(0), []int{1})
	if got != 1 {
		t.Fatalf("FlowDirector placed on %d, want re-home target 1", got)
	}
	if h := d.PreferredProc(0); h != 1 {
		t.Fatalf("override not recorded: home = %d", h)
	}
	// The stale packets still drain from the old core — the reordering
	// window — and count as affinity misses there.
	p, ok := d.Dispatch(0)
	if !ok || p.Entity != 0 {
		t.Fatalf("stale dispatch = %+v, %v", p, ok)
	}
	hits, total := d.AffinityStats()
	if total == 0 || hits != 0 {
		t.Fatalf("AffinityStats = %d/%d, want stale dispatch counted as miss", hits, total)
	}
}

func TestFlowDirectorRebalancesOnEnqueue(t *testing.T) {
	d := idPD(FlowDirector, 2, 2)
	d.Enqueue(pkt(0))
	d.Enqueue(pkt(0))
	// No idle processor: the enqueue-side trigger compares queue depths
	// (2 vs 0 ≥ trigger 2) and re-homes to the least-loaded core.
	d.Enqueue(pkt(0))
	if h := d.PreferredProc(0); h != 1 {
		t.Fatalf("enqueue-side rebalance missing: home = %d", h)
	}
	if got := d.DepthFor(pkt(0)); got != 1 {
		t.Fatalf("DepthFor after re-home = %d, want 1 (new queue)", got)
	}
	if d.Queued() != 3 {
		t.Fatalf("Queued = %d, want 3", d.Queued())
	}
}

func TestFlowDirectorDisabledBehavesLikeRSS(t *testing.T) {
	// rebalance < 0 disables the trigger entirely; the sim-level
	// property test asserts bit-identical Results, this pins the unit
	// behavior.
	d := idPD(FlowDirector, 2, -1)
	for i := 0; i < 8; i++ {
		d.Enqueue(pkt(0))
	}
	if got := d.PickProcessor(pkt(0), []int{1}); got != -1 {
		t.Fatalf("disabled FlowDirector rebalanced to %d", got)
	}
	if h := d.PreferredProc(0); h != 0 {
		t.Fatalf("disabled FlowDirector moved home to %d", h)
	}
}

func TestHashedProcDownRewritesTableAndMigrates(t *testing.T) {
	d := idPD(RSS, 2, 0)
	d.Enqueue(pkt(0)) // home 0
	d.Enqueue(pkt(2)) // home 0
	d.ProcDown(0)
	// Every bucket naming 0 now names a live processor, and the queued
	// packets moved with their flows in arrival order.
	if h := d.PreferredProc(0); h != 1 {
		t.Fatalf("post-fault home = %d, want 1", h)
	}
	p, ok := d.Dispatch(1)
	if !ok || p.Entity != 0 {
		t.Fatalf("migrated dispatch = %+v, %v", p, ok)
	}
	p, ok = d.Dispatch(1)
	if !ok || p.Entity != 2 {
		t.Fatalf("migrated dispatch = %+v, %v", p, ok)
	}
	// Recovery fails the table back and future packets land home again.
	d.ProcUp(0)
	if h := d.PreferredProc(0); h != 0 {
		t.Fatalf("post-recovery home = %d, want canonical 0", h)
	}
}

func TestHashedProcUpFailsBackQueuedPackets(t *testing.T) {
	d := idPD(RSS, 2, 0)
	d.ProcDown(0)
	d.Enqueue(pkt(0)) // home rewritten to 1 while 0 is down
	d.Enqueue(pkt(1)) // native to 1
	d.ProcUp(0)
	// Flow 0's packet failed back to processor 0; flow 1's stayed.
	p, ok := d.Dispatch(0)
	if !ok || p.Entity != 0 {
		t.Fatalf("failback dispatch = %+v, %v", p, ok)
	}
	p, ok = d.Dispatch(1)
	if !ok || p.Entity != 1 {
		t.Fatalf("native dispatch = %+v, %v", p, ok)
	}
}

func TestFlowDirectorOverrideSurvivesFaultCycle(t *testing.T) {
	d := idPD(FlowDirector, 3, 1)
	d.Enqueue(pkt(0))
	if got := d.PickProcessor(pkt(0), []int{1, 2}); got != 1 {
		t.Fatalf("re-home target = %d, want lowest idle 1", got)
	}
	// The re-homed flow's override follows fault rewrites: down 1, the
	// override moves to a live core; recovery does not undo ATR state.
	d.ProcDown(1)
	if h := d.PreferredProc(0); h == 1 {
		t.Fatal("override still names the failed processor")
	}
	moved := d.PreferredProc(0)
	d.ProcUp(1)
	if h := d.PreferredProc(0); h != moved {
		t.Fatalf("recovery rewrote an ATR override: %d → %d", moved, h)
	}
}

func TestHashedDispatcherNames(t *testing.T) {
	for _, k := range []Kind{RSS, FlowDirector} {
		if got := newPD(k, 2).Name(); got != k.String() {
			t.Errorf("Name = %q, want %q", got, k.String())
		}
	}
}

// The indirection table must scale with the machine: the historical
// 128-entry constant is the floor (so every pre-existing golden at ≤ 64
// cores is byte-identical), and beyond 64 cores the table doubles until
// it holds at least two buckets per core — the O(cores) audit item from
// the thousand-core ROADMAP work. Power-of-two sizes keep the masking
// arithmetic of real RSS hardware.
func TestIndirectionTableScalesWithCores(t *testing.T) {
	cases := []struct{ cores, want int }{
		{1, 128},
		{8, 128},
		{64, 128}, // exactly 2×64: the historical constant still fits
		{65, 256},
		{128, 256},
		{500, 1024},
		{1024, 2048},
	}
	for _, c := range cases {
		if got := tableSizeFor(c.cores); got != c.want {
			t.Errorf("tableSizeFor(%d) = %d, want %d", c.cores, got, c.want)
		}
	}
}

// Regression at the 1024-core topology: with the fixed 128-entry table,
// cores 128..1023 never appeared in the table and could not be hashed
// to. Every core must own at least one bucket (the i%n fill gives each
// exactly tableSize/n once tableSize ≥ 2n), and RSS placement must
// actually reach a high core.
func TestRSSCoversAllCoresAt1024(t *testing.T) {
	const n = 1024
	d := idPD(RSS, n, 0).(*hashed)
	if len(d.table) != tableSizeFor(n) {
		t.Fatalf("table length %d, want %d", len(d.table), tableSizeFor(n))
	}
	seen := make([]int, n)
	for _, proc := range d.table {
		if proc < 0 || proc >= n {
			t.Fatalf("table entry %d out of range", proc)
		}
		seen[proc]++
	}
	for proc, buckets := range seen {
		if buckets == 0 {
			t.Fatalf("core %d owns no indirection-table bucket", proc)
		}
	}
	// Identity hashing: entity e lands in bucket e, whose home is
	// e % 1024 — a stream must be placeable on core 1023.
	if got := d.PickProcessor(pkt(1023), []int{1023}); got != 1023 {
		t.Fatalf("entity 1023 placed on %d, want core 1023", got)
	}
	// And the full dispatch cycle works at this scale.
	d.Enqueue(pkt(777))
	if got, ok := d.Dispatch(777); !ok || got.Entity != 777 {
		t.Fatalf("core 777 failed to dispatch its queued packet: %+v %v", got, ok)
	}
}
