package core

import (
	"math"
	"testing"
	"testing/quick"
)

// The compiled evaluator must be bit-for-bit identical to the
// interpreted model: the simulator's results (and the committed golden
// file) depend on it.
func TestCompileBitIdentical(t *testing.T) {
	models := map[string]*Model{
		"default": NewModel(),
		"send":    NewSendModel(),
		"tcp":     NewTCPModel(),
	}
	// A platform whose L1 halves differ and one without the split
	// reference stream, to cover the non-deduplicated paths.
	uneven := NewModel()
	uneven.Platform.L1I = CacheConfig{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 2}
	models["unevenL1"] = uneven
	unsplit := NewModel()
	unsplit.Platform.L1SplitEvenRef = false
	models["unsplit"] = unsplit

	probes := []float64{0, -1, 0.5, 1, 2, 10, 1e3, 1e4, 123456.789,
		1e6, 1e9, 1e15, math.Inf(1)}
	for name, m := range models {
		e := m.Compile()
		for _, x := range probes {
			if got, want := e.ExecTime(x), m.ExecTime(x); got != want {
				t.Errorf("%s: Compile().ExecTime(%v) = %v, want %v", name, x, got, want)
			}
			if got, want := e.F1(x), m.F1(x); got != want {
				t.Errorf("%s: Compile().F1(%v) = %v, want %v", name, x, got, want)
			}
			if got, want := e.F2(x), m.F2(x); got != want {
				t.Errorf("%s: Compile().F2(%v) = %v, want %v", name, x, got, want)
			}
		}
		// Property: identical across the continuum, not just the probes.
		err := quick.Check(func(x float64) bool {
			x = math.Abs(x)
			te, f1 := e.ExecTimeF1(x)
			return te == m.ExecTime(x) && f1 == m.F1(x)
		}, &quick.Config{MaxCount: 2000})
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func BenchmarkExecTimeCompiled(b *testing.B) {
	e := NewModel().Compile()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		sum += e.ExecTime(float64(i%200000) * 10)
	}
	_ = sum
}
