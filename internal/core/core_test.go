package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCacheConfigGeometry(t *testing.T) {
	l1 := CacheConfig{SizeBytes: 16 << 10, LineBytes: 16, Assoc: 1}
	if l1.Sets() != 1024 {
		t.Fatalf("L1 Sets = %d, want 1024", l1.Sets())
	}
	if l1.Lines() != 1024 {
		t.Fatalf("L1 Lines = %d, want 1024", l1.Lines())
	}
	l2 := CacheConfig{SizeBytes: 1 << 20, LineBytes: 128, Assoc: 1}
	if l2.Sets() != 8192 {
		t.Fatalf("L2 Sets = %d, want 8192", l2.Sets())
	}
	fourWay := CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 4}
	if fourWay.Sets() != 256 {
		t.Fatalf("4-way Sets = %d, want 256", fourWay.Sets())
	}
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{SizeBytes: 1024, LineBytes: 16, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []CacheConfig{
		{SizeBytes: 0, LineBytes: 16, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 0, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 16, Assoc: 0},
		{SizeBytes: 1000, LineBytes: 16, Assoc: 2}, // not divisible
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestPlatformDefaults(t *testing.T) {
	p := SGIChallengeXL()
	if err := p.Validate(); err != nil {
		t.Fatalf("default platform invalid: %v", err)
	}
	if p.Processors != 8 {
		t.Fatalf("Processors = %d, want 8", p.Processors)
	}
	// 100 MHz / 5 cycles-per-ref = 20 references per microsecond.
	if got := p.RefsPerMicrosecond(); math.Abs(got-20) > 1e-12 {
		t.Fatalf("RefsPerMicrosecond = %v, want 20", got)
	}
}

func TestUniqueLinesBasics(t *testing.T) {
	w := MVSWorkload()
	if w.UniqueLines(0, 16) != 0 {
		t.Fatal("u(0, L) must be 0")
	}
	if w.UniqueLines(-5, 16) != 0 {
		t.Fatal("u(negative, L) must be 0")
	}
	// Plausibility anchor: ~10⁶ references of the MVS workload touch on
	// the order of tens of thousands of 16-byte lines (~hundreds of KB),
	// consistent with the source trace's working set.
	u := w.UniqueLines(1e6, 16)
	if u < 5e3 || u > 2e5 {
		t.Fatalf("u(1e6, 16) = %.0f, outside plausible range [5e3, 2e5]", u)
	}
}

func TestUniqueLinesClampedToRefs(t *testing.T) {
	w := MVSWorkload()
	for _, r := range []float64{1, 2, 5, 10, 100} {
		if u := w.UniqueLines(r, 16); u > r {
			t.Fatalf("u(%v) = %v exceeds reference count", r, u)
		}
	}
}

// Property: u(R, L) is non-decreasing in R.
func TestPropertyUniqueLinesMonotone(t *testing.T) {
	w := MVSWorkload()
	prop := func(a, b uint32) bool {
		ra, rb := float64(a%1e8), float64(b%1e8)
		if ra > rb {
			ra, rb = rb, ra
		}
		return w.UniqueLines(ra, 16) <= w.UniqueLines(rb, 16)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDisplacedFractionLimits(t *testing.T) {
	c := CacheConfig{SizeBytes: 16 << 10, LineBytes: 16, Assoc: 1}
	if DisplacedFraction(0, c) != 0 {
		t.Fatal("F(0) must be 0")
	}
	if f := DisplacedFraction(1e9, c); f < 0.999999 {
		t.Fatalf("F(huge) = %v, want → 1", f)
	}
}

func TestDisplacedFractionDirectMappedClosedForm(t *testing.T) {
	// For A=1, F = 1 − e^{−u/S}.
	c := CacheConfig{SizeBytes: 16 << 10, LineBytes: 16, Assoc: 1}
	s := float64(c.Sets())
	for _, u := range []float64{1, 100, 1024, 5000} {
		want := 1 - math.Exp(-u/s)
		if got := DisplacedFraction(u, c); math.Abs(got-want) > 1e-12 {
			t.Fatalf("F(%v) = %v, want %v", u, got, want)
		}
	}
}

func TestDisplacedFractionAssociativityHelps(t *testing.T) {
	// Same set count, higher associativity ⇒ a line needs more
	// conflicting arrivals to be displaced ⇒ smaller F.
	direct := CacheConfig{SizeBytes: 16 << 10, LineBytes: 16, Assoc: 1}
	twoWay := CacheConfig{SizeBytes: 32 << 10, LineBytes: 16, Assoc: 2} // same 1024 sets
	if direct.Sets() != twoWay.Sets() {
		t.Fatal("test setup: set counts differ")
	}
	for _, u := range []float64{100, 1000, 5000} {
		f1 := DisplacedFraction(u, direct)
		f2 := DisplacedFraction(u, twoWay)
		if f2 >= f1 {
			t.Fatalf("u=%v: 2-way F=%v not below direct-mapped F=%v", u, f2, f1)
		}
	}
}

// Property: F is non-decreasing in u and bounded in [0, 1].
func TestPropertyDisplacedFractionMonotoneBounded(t *testing.T) {
	c := CacheConfig{SizeBytes: 1 << 20, LineBytes: 128, Assoc: 1}
	prop := func(a, b uint32) bool {
		ua, ub := float64(a%1e7), float64(b%1e7)
		if ua > ub {
			ua, ub = ub, ua
		}
		fa, fb := DisplacedFraction(ua, c), DisplacedFraction(ub, c)
		return fa >= 0 && fb <= 1 && fa <= fb+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonTail(t *testing.T) {
	// k=1: 1 − e^{−λ}.
	if got, want := poissonTail(2, 1), 1-math.Exp(-2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(X≥1) = %v, want %v", got, want)
	}
	// k=2: 1 − e^{−λ}(1+λ).
	if got, want := poissonTail(2, 2), 1-math.Exp(-2)*3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(X≥2) = %v, want %v", got, want)
	}
	if poissonTail(0, 1) != 0 {
		t.Fatal("P with λ=0 must be 0")
	}
}

func TestModelF2FlushesMuchSlowerThanF1(t *testing.T) {
	// The paper: "the protocol footprint is flushed much more slowly from
	// L2 than from L1, reflecting its much larger size."
	m := NewModel()
	h1 := m.FlushHalfLife(1)
	h2 := m.FlushHalfLife(2)
	if !(h1 > 0 && h2 > 0) {
		t.Fatalf("half-lives must be positive: h1=%v h2=%v", h1, h2)
	}
	if h2 < 10*h1 {
		t.Fatalf("L2 half-life %v µs not ≫ L1 half-life %v µs", h2, h1)
	}
	// And both are on physically sensible scales: L1 well under 10 ms,
	// L2 in the tens of milliseconds.
	if h1 > 10e3 {
		t.Fatalf("L1 half-life %v µs implausibly long", h1)
	}
	if h2 < 1e3 || h2 > 1e6 {
		t.Fatalf("L2 half-life %v µs outside plausible range", h2)
	}
}

func TestExecTimeEndpoints(t *testing.T) {
	m := NewModel()
	if got := m.ExecTime(0); got != m.Calib.TWarm {
		t.Fatalf("ExecTime(0) = %v, want TWarm %v", got, m.Calib.TWarm)
	}
	if got := m.ExecTime(1e12); math.Abs(got-m.Calib.TCold) > 0.5 {
		t.Fatalf("ExecTime(∞) = %v, want → TCold %v", got, m.Calib.TCold)
	}
}

// Property: ExecTime is non-decreasing in refs and bounded by [TWarm, TCold].
func TestPropertyExecTimeMonotoneBounded(t *testing.T) {
	m := NewModel()
	prop := func(a, b uint32) bool {
		ra, rb := float64(a), float64(b)
		if ra > rb {
			ra, rb = rb, ra
		}
		ta, tb := m.ExecTime(ra), m.ExecTime(rb)
		return ta >= m.Calib.TWarm-1e-9 && tb <= m.Calib.TCold+1e-9 && ta <= tb+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperCalibrationReductionBound(t *testing.T) {
	// The paper reports the upper bound on affinity delay reduction
	// (V = 0 curves) as "around 40-50%"; the calibration must embed that.
	c := PaperCalibration()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := c.MaxReduction(); r < 0.40 || r > 0.50 {
		t.Fatalf("MaxReduction = %v, want within the paper's 40-50%% band", r)
	}
	if c.TCold != 284.3 {
		t.Fatalf("TCold = %v, want the paper's 284.3 µs", c.TCold)
	}
}

func TestCalibrationValidate(t *testing.T) {
	bad := []Calibration{
		{TWarm: 0, TL1Cold: 1, TCold: 2},
		{TWarm: 2, TL1Cold: 1, TCold: 3},
		{TWarm: 1, TL1Cold: 3, TCold: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid calibration accepted: %+v", c)
		}
	}
}

func TestDisplacingRefs(t *testing.T) {
	m := NewModel()
	// 1000 µs at full intensity on a 20 refs/µs machine.
	if got := m.DisplacingRefs(1000, 1); math.Abs(got-20000) > 1e-9 {
		t.Fatalf("DisplacingRefs = %v, want 20000", got)
	}
	if m.DisplacingRefs(1000, 0) != 0 {
		t.Fatal("zero intensity must displace nothing")
	}
	if m.DisplacingRefs(-1, 1) != 0 {
		t.Fatal("negative interval must displace nothing")
	}
	// Half intensity halves the displacement.
	if got := m.DisplacingRefs(1000, 0.5); math.Abs(got-10000) > 1e-9 {
		t.Fatalf("half-intensity refs = %v, want 10000", got)
	}
}

func TestExecTimeAfterIdleWithZeroIntensity(t *testing.T) {
	// V = 0: idle time displaces nothing, so service stays warm forever.
	m := NewModel()
	if got := m.ExecTimeAfter(1e9, 0); got != m.Calib.TWarm {
		t.Fatalf("V=0 exec time = %v, want warm %v", got, m.Calib.TWarm)
	}
}

func TestF1SplitVersusUnified(t *testing.T) {
	// With the equal-split assumption off, all references hammer one
	// cache, displacing faster at equal per-side geometry.
	split := NewModel()
	unified := NewModel()
	unified.Platform.L1SplitEvenRef = false
	refs := 20000.0
	fs := split.F1(refs)
	fu := unified.F1(refs)
	if fu <= fs {
		t.Fatalf("unified F1 %v should exceed split F1 %v", fu, fs)
	}
}

func TestFlushHalfLifeInvalidLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad level")
		}
	}()
	NewModel().FlushHalfLife(3)
}

func TestModelValidate(t *testing.T) {
	m := NewModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	m.Calib.TWarm = -1
	if err := m.Validate(); err == nil {
		t.Fatal("invalid calibration accepted")
	}
	m = NewModel()
	m.Platform.Processors = 0
	if err := m.Validate(); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestSendCalibration(t *testing.T) {
	s := SendCalibration()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r := PaperCalibration()
	if s.TCold >= r.TCold || s.TWarm >= r.TWarm {
		t.Fatalf("send calibration %+v not cheaper than receive %+v", s, r)
	}
	m := NewSendModel()
	if m.Calib != s {
		t.Fatal("NewSendModel does not carry the send calibration")
	}
	if m.ExecTime(0) != s.TWarm {
		t.Fatal("send model warm time wrong")
	}
}

func TestTCPCalibration(t *testing.T) {
	c := TCPCalibration()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	udp := PaperCalibration()
	ratio := c.TCold / udp.TCold
	if ratio < 1.05 || ratio > 1.25 {
		t.Fatalf("TCP cold time %.1f not ~15%% above UDP %.1f", c.TCold, udp.TCold)
	}
	m := NewTCPModel()
	if m.Calib != c {
		t.Fatal("NewTCPModel does not carry the TCP calibration")
	}
}
