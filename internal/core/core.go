// Package core implements the paper's analytic model of packet execution
// time under processor-cache affinity (Salehi, Kurose, Towsley, HPDC-4,
// 1995).
//
// The model answers one question: if a protocol footprint last executed on
// a processor some time ago, and intervening work (other protocol streams,
// or a general non-protocol workload) has issued R memory references on
// that processor since, how long will the next packet take to process
// there?
//
// It combines three published results, exactly as the paper does:
//
//   - The Singh–Stone–Thiebaut workload model [22]: the number of unique
//     memory lines touched by R references with line size L is
//     u(R, L) = W·L^a·R^b·d^(log L · log R), with constants fitted to a
//     multiprogrammed MVS trace (W=2.19827, a=0.033233, b=0.827457,
//     log d=−0.13025).
//
//   - The Thiebaut–Stone footprint displacement argument [25]: intervening
//     references map independently and uniformly into cache sets, so the
//     number landing in a given set is Binomial(u, 1/S) ≈ Poisson(u/S),
//     and a cached footprint line in an A-way set survives iff fewer than
//     A intervening lines landed in its set.
//
//   - The Squillante–Lazowska linear reload-transient interpolation [24]
//     (task time D + R·C), extended to the two-level R4400/SGI-Challenge
//     cache hierarchy:
//
//     T(x) = t_warm + F1(x)·(t_L1cold − t_warm) + F2(x)·(t_cold − t_L1cold)
package core

import (
	"fmt"
	"math"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line (block) size
	Assoc     int // associativity; 1 = direct-mapped
}

// Sets returns the number of cache sets.
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (c.LineBytes * c.Assoc)
}

// Lines returns the total number of cache lines.
func (c CacheConfig) Lines() int { return c.SizeBytes / c.LineBytes }

// Validate reports a descriptive error for a malformed configuration.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0:
		return fmt.Errorf("core: cache fields must be positive: %+v", c)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("core: cache size %d not divisible by line*assoc %d",
			c.SizeBytes, c.LineBytes*c.Assoc)
	}
	return nil
}

// Platform describes the multiprocessor's processors and cache hierarchy.
// The default models the paper's 8-processor SGI Challenge XL: 100 MHz
// MIPS R4400 with split 16 KB direct-mapped on-chip L1 (16-byte lines) and
// a 1 MB direct-mapped unified external L2 (128-byte lines), with an
// average of m = 5 clock cycles per memory reference.
type Platform struct {
	Processors     int
	ClockMHz       float64
	CyclesPerRef   float64 // m: average clock cycles per memory reference
	L1I, L1D, L2   CacheConfig
	L1SplitEvenRef bool // split the reference stream equally across L1I/L1D
}

// RefsPerMicrosecond returns the memory-reference issue rate of a fully
// busy processor.
func (p Platform) RefsPerMicrosecond() float64 {
	return p.ClockMHz / p.CyclesPerRef
}

// Validate reports a descriptive error for a malformed platform.
func (p Platform) Validate() error {
	if p.Processors <= 0 {
		return fmt.Errorf("core: processors must be positive, got %d", p.Processors)
	}
	if p.ClockMHz <= 0 || p.CyclesPerRef <= 0 {
		return fmt.Errorf("core: clock %v MHz / %v cycles-per-ref must be positive",
			p.ClockMHz, p.CyclesPerRef)
	}
	for _, c := range []CacheConfig{p.L1I, p.L1D, p.L2} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SGIChallengeXL returns the paper's experimental platform.
func SGIChallengeXL() Platform {
	return Platform{
		Processors:     8,
		ClockMHz:       100,
		CyclesPerRef:   5,
		L1I:            CacheConfig{SizeBytes: 16 << 10, LineBytes: 16, Assoc: 1},
		L1D:            CacheConfig{SizeBytes: 16 << 10, LineBytes: 16, Assoc: 1},
		L2:             CacheConfig{SizeBytes: 1 << 20, LineBytes: 128, Assoc: 1},
		L1SplitEvenRef: true,
	}
}

// WorkloadParams are the Singh–Stone–Thiebaut u(R, L) constants describing
// the locality of the displacing (non-protocol) reference stream.
type WorkloadParams struct {
	W    float64 // working-set scale
	A    float64 // spatial-locality exponent (on L)
	B    float64 // temporal-locality exponent (on R)
	LogD float64 // spatial–temporal interaction, log10 d
}

// MVSWorkload returns the published constants for the multiprogrammed
// IBM/370 MVS trace the paper adopts for its non-protocol activity.
func MVSWorkload() WorkloadParams {
	return WorkloadParams{W: 2.19827, A: 0.033233, B: 0.827457, LogD: -0.13025}
}

// UniqueLines evaluates u(R, L): the expected number of unique memory
// lines of size lineBytes touched by refs references of this workload.
// Logarithms are base 10, the base under which the published MVS
// constants produce unique-line counts consistent with the source data.
// The result is clamped to refs (a stream cannot touch more unique lines
// than it has references).
func (w WorkloadParams) UniqueLines(refs float64, lineBytes int) float64 {
	if refs <= 0 {
		return 0
	}
	if refs < 1 {
		refs = 1
	}
	l := float64(lineBytes)
	logL := math.Log10(l)
	logR := math.Log10(refs)
	u := w.W * math.Pow(l, w.A) * math.Pow(refs, w.B) * math.Pow(10, w.LogD*logL*logR)
	if u > refs {
		u = refs
	}
	if u < 0 {
		u = 0
	}
	return u
}

// DisplacedFraction returns F: the expected fraction of a resident cache
// footprint displaced from cache c by uniqueLines intervening unique
// lines, under the independent-set-mapping assumption. The count of
// intervening lines landing in a given set is Binomial(u, 1/S); a
// footprint line in an A-way LRU set survives iff fewer than A landed in
// its set, so F = P(X ≥ A). The binomial is evaluated through its
// Poisson(u/S) limit, which is indistinguishable at the S values of real
// caches.
func DisplacedFraction(uniqueLines float64, c CacheConfig) float64 {
	if uniqueLines <= 0 {
		return 0
	}
	lambda := uniqueLines / float64(c.Sets())
	return poissonTail(lambda, c.Assoc)
}

// poissonTail returns P(X ≥ k) for X ~ Poisson(lambda).
func poissonTail(lambda float64, k int) float64 {
	if lambda <= 0 {
		return 0
	}
	// P(X ≥ k) = 1 − Σ_{i<k} e^{−λ} λ^i / i!
	term := math.Exp(-lambda)
	cdf := term
	for i := 1; i < k; i++ {
		term *= lambda / float64(i)
		cdf += term
	}
	if cdf > 1 {
		cdf = 1
	}
	return 1 - cdf
}
