package core

import (
	"math"
	"sync"
	"testing"
)

// TestExecConcurrentUse pins the documented contract that a compiled
// Exec is immutable and safe for concurrent use — the live backend
// evaluates it from every worker goroutine at once. Run under -race in
// CI; each goroutine checks its answers against a sequential baseline
// so cross-thread interference would surface as wrong values even
// without the detector.
func TestExecConcurrentUse(t *testing.T) {
	exec := NewModel().Compile()
	xs := []float64{0, 1, 100, 5_000, 250_000, math.Inf(1)}
	type pair struct{ t, f1 float64 }
	want := make([]pair, len(xs))
	for i, x := range xs {
		want[i].t, want[i].f1 = exec.ExecTimeF1(x)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5000; iter++ {
				i := iter % len(xs)
				gotT, gotF1 := exec.ExecTimeF1(xs[i])
				if gotT != want[i].t || gotF1 != want[i].f1 {
					t.Errorf("ExecTimeF1(%v) = (%v, %v) concurrently, want (%v, %v)",
						xs[i], gotT, gotF1, want[i].t, want[i].f1)
					return
				}
			}
		}()
	}
	wg.Wait()
}
