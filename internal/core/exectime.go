package core

import (
	"fmt"
	"math"
)

// Calibration holds the three measured per-packet execution times that
// anchor the model, in microseconds. The paper measured these on the
// parallelized x-kernel UDP/IP/FDDI receive fast path; this repository
// regenerates them with the trace-driven cache simulator (cmd/calibrate).
//
// TCold = 284.3 µs is quoted in the paper. TWarm and TL1Cold are the
// cache-simulator measurements normalized to that anchor (internal/calib);
// the resulting warm/cold ratio gives a 47.9 % maximum affinity reduction,
// inside the paper's reported 40–50 % upper bound.
type Calibration struct {
	TWarm   float64 // both cache levels hold the footprint
	TL1Cold float64 // L1 displaced, footprint still resident in L2
	TCold   float64 // footprint resident in neither level
}

// PaperCalibration returns the calibration used throughout the
// reproduction: the output of calib.Measure on the default platform,
// rounded to 0.1 µs (see DESIGN.md §2 for provenance).
func PaperCalibration() Calibration {
	return Calibration{TWarm: 148.2, TL1Cold: 222.4, TCold: 284.3}
}

// SendCalibration returns the send-side fast-path calibration (the
// paper's extension (i), evaluated in experiment E17): the output of
// calib.MeasureSend on the default platform, rounded to 0.1 µs. Send
// processing is cheaper than receive — it skips demultiplexing and the
// receive-state lookups — but has a similar warm/cold span, so affinity
// scheduling matters on the send side too.
func SendCalibration() Calibration {
	return Calibration{TWarm: 104.3, TL1Cold: 166.8, TCold: 218.9}
}

// NewSendModel returns the default model with send-side calibration.
func NewSendModel() *Model {
	m := NewModel()
	m.Calib = SendCalibration()
	return m
}

// TCPCalibration returns the TCP/IP/FDDI receive fast-path calibration
// (experiment E21): the output of calib.MeasureTCP on the default
// platform, rounded to 0.1 µs. Its cold time is 16 % above the UDP
// path's, matching Kay & Pasquale's finding that TCP-specific work adds
// at most ~15 % to per-packet processing; the warm/cold ratio — and so
// the affinity benefit — is essentially unchanged, which is why the
// paper expects its results to "hold directly for TCP."
func TCPCalibration() Calibration {
	return Calibration{TWarm: 172.7, TL1Cold: 258.7, TCold: 330.3}
}

// NewTCPModel returns the default model with TCP calibration.
func NewTCPModel() *Model {
	m := NewModel()
	m.Calib = TCPCalibration()
	return m
}

// Validate reports a descriptive error unless 0 < TWarm ≤ TL1Cold ≤ TCold.
func (c Calibration) Validate() error {
	if !(c.TWarm > 0 && c.TWarm <= c.TL1Cold && c.TL1Cold <= c.TCold) {
		return fmt.Errorf("core: calibration must satisfy 0 < warm ≤ l1cold ≤ cold, got %+v", c)
	}
	return nil
}

// MaxReduction returns the largest possible fractional reduction in
// service time from perfect affinity: 1 − t_warm/t_cold.
func (c Calibration) MaxReduction() float64 {
	return 1 - c.TWarm/c.TCold
}

// Model is the packet execution-time model: platform geometry, displacing
// workload locality, and measured timing anchors.
type Model struct {
	Platform Platform
	Workload WorkloadParams
	Calib    Calibration
}

// NewModel returns the paper's default model: SGI Challenge XL platform,
// MVS non-protocol workload, paper calibration.
func NewModel() *Model {
	return &Model{
		Platform: SGIChallengeXL(),
		Workload: MVSWorkload(),
		Calib:    PaperCalibration(),
	}
}

// Validate checks the composite model.
func (m *Model) Validate() error {
	if err := m.Platform.Validate(); err != nil {
		return err
	}
	return m.Calib.Validate()
}

// DisplacingRefs converts an interval of displacing execution into a
// memory-reference count: busyMicros of execution at intensity (fraction
// of full speed) intensity. Other-stream protocol processing displaces at
// intensity 1; idle-time non-protocol activity displaces at the
// configured workload intensity V ∈ [0, 1].
func (m *Model) DisplacingRefs(busyMicros, intensity float64) float64 {
	if busyMicros <= 0 || intensity <= 0 {
		return 0
	}
	return busyMicros * intensity * m.Platform.RefsPerMicrosecond()
}

// F1 returns the fraction of the protocol footprint displaced from the
// split L1 by refs intervening references. Under the equal-split
// assumption each side of the split cache sees half the references; the
// footprint itself is assumed split the same way, so the displaced
// fractions combine as the reference-weighted average of the two sides —
// which for identical I and D configurations is just F of either side.
func (m *Model) F1(refs float64) float64 {
	if math.IsInf(refs, 1) {
		return 1
	}
	if !m.Platform.L1SplitEvenRef {
		u := m.Workload.UniqueLines(refs, m.Platform.L1D.LineBytes)
		return DisplacedFraction(u, m.Platform.L1D)
	}
	ui := m.Workload.UniqueLines(refs/2, m.Platform.L1I.LineBytes)
	ud := m.Workload.UniqueLines(refs/2, m.Platform.L1D.LineBytes)
	fi := DisplacedFraction(ui, m.Platform.L1I)
	fd := DisplacedFraction(ud, m.Platform.L1D)
	return (fi + fd) / 2
}

// F2 returns the fraction of the protocol footprint displaced from the
// unified L2 by refs intervening references.
func (m *Model) F2(refs float64) float64 {
	if math.IsInf(refs, 1) {
		return 1
	}
	u := m.Workload.UniqueLines(refs, m.Platform.L2.LineBytes)
	return DisplacedFraction(u, m.Platform.L2)
}

// ExecTime returns the packet execution time in microseconds given refs
// displacing references issued on the processor since the footprint last
// ran there:
//
//	T = t_warm + F1·(t_L1cold − t_warm) + F2·(t_cold − t_L1cold)
//
// ExecTime(0) = t_warm; ExecTime(∞) → t_cold.
func (m *Model) ExecTime(refs float64) float64 {
	c := m.Calib
	if refs <= 0 {
		return c.TWarm
	}
	// A footprint that never ran on the processor is fully cold; the
	// simulation encodes that as +Inf displacing references.
	if math.IsInf(refs, 1) {
		return c.TCold
	}
	return c.TWarm + m.F1(refs)*(c.TL1Cold-c.TWarm) + m.F2(refs)*(c.TCold-c.TL1Cold)
}

// ExecTimeAfter is a convenience wrapper: execution time after busyMicros
// of displacing execution at the given intensity.
func (m *Model) ExecTimeAfter(busyMicros, intensity float64) float64 {
	return m.ExecTime(m.DisplacingRefs(busyMicros, intensity))
}

// ColdTime and WarmTime expose the calibration bounds.
func (m *Model) ColdTime() float64 { return m.Calib.TCold }

// WarmTime returns the fully-warm execution time.
func (m *Model) WarmTime() float64 { return m.Calib.TWarm }

// FlushHalfLife returns the displacing-execution interval (µs at
// intensity 1) after which the given level's displaced fraction first
// reaches one half, found by bisection. Level must be 1 or 2. It returns
// +Inf if the fraction never reaches 0.5 within ~100 s of displacement
// (cannot happen for realistic parameters, but keeps the search total).
func (m *Model) FlushHalfLife(level int) float64 {
	f := m.F1
	switch level {
	case 1:
	case 2:
		f = m.F2
	default:
		panic(fmt.Sprintf("core: FlushHalfLife level must be 1 or 2, got %d", level))
	}
	rate := m.Platform.RefsPerMicrosecond()
	lo, hi := 0.0, 1e8 // µs
	if f(hi*rate) < 0.5 {
		return math.Inf(1)
	}
	for i := 0; i < 200 && hi-lo > 1e-6*(1+lo); i++ {
		mid := (lo + hi) / 2
		if f(mid*rate) < 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
