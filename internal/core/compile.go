package core

import "math"

// Exec is a compiled execution-time evaluator: Model.ExecTime with every
// constant-argument transcendental hoisted out of the per-packet path.
//
// UniqueLines spends most of its time in math.Pow/math.Log10 calls whose
// arguments depend only on the workload constants and the cache line
// size — W·L^a and log10(d)·log10(L) are the same numbers every packet.
// Compile evaluates them once per cache level; what remains per call is
// exactly the tail of the original expression, evaluated in the same
// order, so the compiled evaluator is bit-for-bit identical to the
// interpreted one (TestCompileBitIdentical locks this in). When the L1I
// and L1D configurations coincide — as on the paper's R4400 — the two
// split-cache halves of F1 are the same computation, so Compile
// evaluates one and reuses it ((x+x)/2 ≡ x in IEEE arithmetic).
//
// An Exec is immutable after Compile and safe for concurrent use by
// runs sharing one Model.
type Exec struct {
	tWarm, tCold float64
	d1           float64 // TL1Cold − TWarm
	d2           float64 // TCold − TL1Cold

	split  bool // Platform.L1SplitEvenRef
	sameL1 bool // split and L1I == L1D
	l1i    levelExec
	l1d    levelExec
	l2     levelExec
}

// levelExec evaluates the displaced fraction for one cache level with
// the line-size-dependent constants precomputed.
type levelExec struct {
	c0    float64 // W · L^a
	kl    float64 // log10(d) · log10(L)
	b     float64 // temporal-locality exponent
	sets  float64 // float64(cfg.Sets())
	assoc int
}

func compileLevel(w WorkloadParams, cfg CacheConfig) levelExec {
	l := float64(cfg.LineBytes)
	return levelExec{
		c0:    w.W * math.Pow(l, w.A),
		kl:    w.LogD * math.Log10(l),
		b:     w.B,
		sets:  float64(cfg.Sets()),
		assoc: cfg.Assoc,
	}
}

// displaced is UniqueLines followed by DisplacedFraction, with the
// constant factors folded. The remaining operations and their order
// match the originals exactly.
func (le *levelExec) displaced(refs float64) float64 {
	if refs <= 0 {
		return 0
	}
	if refs < 1 {
		refs = 1
	}
	logR := math.Log10(refs)
	u := le.c0 * math.Pow(refs, le.b) * math.Pow(10, le.kl*logR)
	if u > refs {
		u = refs
	}
	if u <= 0 {
		return 0
	}
	return poissonTail(u/le.sets, le.assoc)
}

// Compile returns the compiled evaluator for the model's current
// platform, workload and calibration. The result does not track later
// mutations of the model.
func (m *Model) Compile() *Exec {
	return &Exec{
		tWarm:  m.Calib.TWarm,
		tCold:  m.Calib.TCold,
		d1:     m.Calib.TL1Cold - m.Calib.TWarm,
		d2:     m.Calib.TCold - m.Calib.TL1Cold,
		split:  m.Platform.L1SplitEvenRef,
		sameL1: m.Platform.L1SplitEvenRef && m.Platform.L1I == m.Platform.L1D,
		l1i:    compileLevel(m.Workload, m.Platform.L1I),
		l1d:    compileLevel(m.Workload, m.Platform.L1D),
		l2:     compileLevel(m.Workload, m.Platform.L2),
	}
}

// Warm returns the warm-cache execution time t_warm — the floor of the
// T(x) curve. Topology-aware charging scales only the reload transient
// T(x) − Warm() of a migrating packet, never the warm service floor.
func (e *Exec) Warm() float64 { return e.tWarm }

// F1 returns the L1 displaced fraction, identical to Model.F1.
func (e *Exec) F1(refs float64) float64 {
	if math.IsInf(refs, 1) {
		return 1
	}
	if !e.split {
		return e.l1d.displaced(refs)
	}
	half := refs / 2
	fi := e.l1i.displaced(half)
	if e.sameL1 {
		return fi
	}
	return (fi + e.l1d.displaced(half)) / 2
}

// F2 returns the L2 displaced fraction, identical to Model.F2.
func (e *Exec) F2(refs float64) float64 {
	if math.IsInf(refs, 1) {
		return 1
	}
	return e.l2.displaced(refs)
}

// ExecTime returns the packet execution time, identical to
// Model.ExecTime.
func (e *Exec) ExecTime(refs float64) float64 {
	t, _ := e.ExecTimeF1(refs)
	return t
}

// ExecTimeF1 returns the execution time together with the F1 value it
// used, so a caller needing both (the simulator tests F1 < 0.5 for its
// warm-hit counter) evaluates the model once per packet instead of
// twice.
func (e *Exec) ExecTimeF1(refs float64) (t, f1 float64) {
	if refs <= 0 {
		return e.tWarm, 0
	}
	if math.IsInf(refs, 1) {
		return e.tCold, 1
	}
	f1 = e.F1(refs)
	return e.tWarm + f1*e.d1 + e.F2(refs)*e.d2, f1
}
