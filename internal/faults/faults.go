// Package faults describes deterministic fault-injection plans for the
// simulation: timed processor failures and recoveries, transient
// slow-downs, arrival bursts, and packet-loss probability. A Plan is
// pure data — an ordered list of timed events — so the same Plan fed to
// the same simulation seed reproduces the same run bit for bit, and a
// Plan's canonical String form identifies it in the memoizing run
// cache.
//
// The simulator consumes the Plan (internal/sim): processor failures
// shrink the idle set and trigger policy-level re-homing of wired
// entities, recoveries restore the processor with a cold cache (its
// affinity state is wiped, so the first packets back pay the reload
// transient), slow-downs multiply charged execution times, bursts
// inject packet batches, and loss draws a seed-derived random number
// per arrival.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"affinity/internal/des"
)

// Kind classifies one fault event.
type Kind uint8

const (
	// ProcDown fails processor Proc at At: it finishes any in-flight
	// packet, then serves no protocol work until a ProcUp. Its cached
	// protocol state is lost (every entity restarts cold there).
	ProcDown Kind = iota
	// ProcUp restores processor Proc at At with a cold cache.
	ProcUp
	// Slowdown multiplies processor Proc's charged execution times by
	// Factor from At onward; Factor 1 restores full speed.
	Slowdown
	// Loss sets the packet-loss probability to Prob from At onward
	// (each arrival is dropped independently with probability Prob,
	// drawn from a seed-derived RNG stream); Prob 0 restores lossless
	// arrivals.
	Loss
	// Burst injects Count extra packets on Stream at At (Stream -1
	// bursts every stream at once).
	Burst

	numKinds
)

var kindNames = [numKinds]string{"down", "up", "slow", "loss", "burst"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one timed fault. Fields that do not apply to the Kind are
// zero.
type Event struct {
	At     des.Time // simulation time, µs
	Kind   Kind
	Proc   int     // ProcDown / ProcUp / Slowdown
	Factor float64 // Slowdown: execution-time multiplier (> 0; 1 = full speed)
	Prob   float64 // Loss: per-packet drop probability in [0, 1]
	Stream int     // Burst: stream index, -1 = every stream
	Count  int     // Burst: packets injected per targeted stream
}

// Plan is an ordered fault schedule. The zero value (and nil) is the
// empty plan: no faults, byte-identical behavior to a run without one.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// HasLoss reports whether any event sets a non-zero loss probability —
// the simulator only creates the loss RNG stream when one does, so
// loss-free plans leave every published random draw untouched.
func (p *Plan) HasLoss() bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind == Loss && e.Prob > 0 {
			return true
		}
	}
	return false
}

// add appends an event and returns the plan for chaining.
func (p *Plan) add(e Event) *Plan {
	p.Events = append(p.Events, e)
	return p
}

// Down schedules processor proc to fail at t.
func (p *Plan) Down(t des.Time, proc int) *Plan {
	return p.add(Event{At: t, Kind: ProcDown, Proc: proc})
}

// Up schedules processor proc to recover at t.
func (p *Plan) Up(t des.Time, proc int) *Plan {
	return p.add(Event{At: t, Kind: ProcUp, Proc: proc})
}

// Slow multiplies processor proc's execution times by factor from t
// onward (factor 1 restores full speed).
func (p *Plan) Slow(t des.Time, proc int, factor float64) *Plan {
	return p.add(Event{At: t, Kind: Slowdown, Proc: proc, Factor: factor})
}

// WithLoss sets the packet-loss probability to prob from t onward.
func (p *Plan) WithLoss(t des.Time, prob float64) *Plan {
	return p.add(Event{At: t, Kind: Loss, Prob: prob})
}

// WithBurst injects count extra packets on stream at t (stream -1
// bursts every stream).
func (p *Plan) WithBurst(t des.Time, stream, count int) *Plan {
	return p.add(Event{At: t, Kind: Burst, Stream: stream, Count: count})
}

// Sorted returns the events ordered by time, ties broken by declaration
// order — the firing order the simulator uses.
func (p *Plan) Sorted() []Event {
	if p == nil {
		return nil
	}
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// Validate reports a descriptive error for an event that cannot apply
// to a run with the given processor and stream counts.
func (p *Plan) Validate(procs, streams int) error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d (%v) at negative time %v", i, e.Kind, e.At)
		}
		switch e.Kind {
		case ProcDown, ProcUp:
			if e.Proc < 0 || e.Proc >= procs {
				return fmt.Errorf("faults: event %d: processor %d outside [0, %d)", i, e.Proc, procs)
			}
		case Slowdown:
			if e.Proc < 0 || e.Proc >= procs {
				return fmt.Errorf("faults: event %d: processor %d outside [0, %d)", i, e.Proc, procs)
			}
			if e.Factor <= 0 {
				return fmt.Errorf("faults: event %d: slow-down factor %v must be positive", i, e.Factor)
			}
		case Loss:
			if e.Prob < 0 || e.Prob > 1 {
				return fmt.Errorf("faults: event %d: loss probability %v outside [0, 1]", i, e.Prob)
			}
		case Burst:
			if e.Stream < -1 || e.Stream >= streams {
				return fmt.Errorf("faults: event %d: stream %d outside [-1, %d)", i, e.Stream, streams)
			}
			if e.Count <= 0 {
				return fmt.Errorf("faults: event %d: burst count %d must be positive", i, e.Count)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %v", i, e.Kind)
		}
	}
	// A processor must not fail while already failed (or recover while
	// up): the pairing is what makes DownTime accounting well-defined.
	down := map[int]bool{}
	for _, e := range p.Sorted() {
		switch e.Kind {
		case ProcDown:
			if down[e.Proc] {
				return fmt.Errorf("faults: processor %d fails at %v while already down", e.Proc, e.At)
			}
			down[e.Proc] = true
		case ProcUp:
			if !down[e.Proc] {
				return fmt.Errorf("faults: processor %d recovers at %v while not down", e.Proc, e.At)
			}
			down[e.Proc] = false
		}
	}
	return nil
}

// String renders the plan in the canonical form Parse accepts, events
// in time order: "down:0@500ms,up:0@1.5s,slow:2x0.5@1s,loss:0.01@0s,
// burst:*x200@2s". The empty plan renders as "". Two plans describing
// the same schedule share a String, which is how the run cache keys
// them.
func (p *Plan) String() string {
	if p.Empty() {
		return ""
	}
	var b strings.Builder
	for i, e := range p.Sorted() {
		if i > 0 {
			b.WriteByte(',')
		}
		switch e.Kind {
		case ProcDown, ProcUp:
			fmt.Fprintf(&b, "%s:%d", e.Kind, e.Proc)
		case Slowdown:
			fmt.Fprintf(&b, "slow:%dx%s", e.Proc, ftoa(e.Factor))
		case Loss:
			fmt.Fprintf(&b, "loss:%s", ftoa(e.Prob))
		case Burst:
			if e.Stream < 0 {
				fmt.Fprintf(&b, "burst:*x%d", e.Count)
			} else {
				fmt.Fprintf(&b, "burst:%dx%d", e.Stream, e.Count)
			}
		}
		fmt.Fprintf(&b, "@%s", fmtTime(e.At))
	}
	return b.String()
}

func ftoa(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// fmtTime renders a simulation time as the shortest exact Go duration
// ("500ms", "1.5s", "250µs").
func fmtTime(t des.Time) string {
	d := time.Duration(float64(t) * float64(time.Microsecond))
	return d.String()
}

// Parse builds a Plan from its comma-separated textual form (the
// affinitysim -faults syntax; see String for examples):
//
//	down:PROC@TIME     processor PROC fails at TIME
//	up:PROC@TIME       processor PROC recovers at TIME
//	slow:PROCxF@TIME   multiply PROC's execution times by F from TIME
//	loss:PROB@TIME     drop arrivals with probability PROB from TIME
//	burst:SxN@TIME     inject N packets on stream S (S = * for all)
//
// TIME is a Go duration ("500ms", "2s"). An empty string parses to an
// empty plan.
func Parse(s string) (*Plan, error) {
	p := &Plan{}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		kind, rest, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not KIND:ARGS@TIME", tok)
		}
		args, atStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("faults: %q has no @TIME", tok)
		}
		d, err := time.ParseDuration(atStr)
		if err != nil {
			return nil, fmt.Errorf("faults: %q: bad time: %v", tok, err)
		}
		at := des.Time(d.Seconds() * 1e6)
		switch kind {
		case "down", "up":
			proc, err := strconv.Atoi(args)
			if err != nil {
				return nil, fmt.Errorf("faults: %q: bad processor: %v", tok, err)
			}
			if kind == "down" {
				p.Down(at, proc)
			} else {
				p.Up(at, proc)
			}
		case "slow":
			procStr, facStr, ok := strings.Cut(args, "x")
			if !ok {
				return nil, fmt.Errorf("faults: %q needs PROCxFACTOR", tok)
			}
			proc, err := strconv.Atoi(procStr)
			if err != nil {
				return nil, fmt.Errorf("faults: %q: bad processor: %v", tok, err)
			}
			fac, err := strconv.ParseFloat(facStr, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: %q: bad factor: %v", tok, err)
			}
			p.Slow(at, proc, fac)
		case "loss":
			prob, err := strconv.ParseFloat(args, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: %q: bad probability: %v", tok, err)
			}
			p.WithLoss(at, prob)
		case "burst":
			streamStr, countStr, ok := strings.Cut(args, "x")
			if !ok {
				return nil, fmt.Errorf("faults: %q needs STREAMxCOUNT", tok)
			}
			stream := -1
			if streamStr != "*" {
				stream, err = strconv.Atoi(streamStr)
				if err != nil {
					return nil, fmt.Errorf("faults: %q: bad stream: %v", tok, err)
				}
			}
			count, err := strconv.Atoi(countStr)
			if err != nil {
				return nil, fmt.Errorf("faults: %q: bad count: %v", tok, err)
			}
			p.WithBurst(at, stream, count)
		default:
			return nil, fmt.Errorf("faults: unknown event kind %q in %q", kind, tok)
		}
	}
	return p, nil
}
