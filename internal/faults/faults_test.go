package faults

import (
	"strings"
	"testing"

	"affinity/internal/des"
)

func TestEmptyPlan(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() || nilPlan.HasLoss() || nilPlan.String() != "" {
		t.Error("nil plan must be empty, lossless and render as \"\"")
	}
	if err := nilPlan.Validate(8, 8); err != nil {
		t.Errorf("nil plan must validate: %v", err)
	}
	p := &Plan{}
	if !p.Empty() || p.String() != "" {
		t.Error("zero plan must be empty and render as \"\"")
	}
}

func TestBuildersAndString(t *testing.T) {
	p := (&Plan{}).
		Down(500*des.Millisecond, 0).
		Up(1500*des.Millisecond, 0).
		Slow(des.Second, 2, 0.5).
		WithLoss(0, 0.01).
		WithBurst(2*des.Second, -1, 200)
	if err := p.Validate(8, 8); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	want := "loss:0.01@0s,down:0@500ms,slow:2x0.5@1s,up:0@1.5s,burst:*x200@2s"
	if got := p.String(); got != want {
		t.Errorf("String:\n got %q\nwant %q", got, want)
	}
	if !p.HasLoss() {
		t.Error("plan with loss event must report HasLoss")
	}
}

func TestSortedIsStableAndNonMutating(t *testing.T) {
	p := (&Plan{}).Up(des.Second, 1).Down(0, 1).Down(des.Second, 2)
	evs := p.Sorted()
	if evs[0].Kind != ProcDown || evs[0].Proc != 1 {
		t.Errorf("first sorted event = %+v, want down:1@0", evs[0])
	}
	// Same-time events keep declaration order.
	if evs[1].Kind != ProcUp || evs[2].Kind != ProcDown {
		t.Errorf("tie order not stable: %+v", evs)
	}
	// The plan's own order is untouched.
	if p.Events[0].Kind != ProcUp {
		t.Error("Sorted mutated the plan's declaration order")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"negative time", (&Plan{}).Down(-1, 0), "negative time"},
		{"proc out of range", (&Plan{}).Down(0, 8), "outside [0, 8)"},
		{"negative proc", (&Plan{}).Up(0, -1), "outside"},
		{"bad factor", (&Plan{}).Slow(0, 0, 0), "must be positive"},
		{"bad prob", (&Plan{}).WithLoss(0, 1.5), "outside [0, 1]"},
		{"bad burst stream", (&Plan{}).WithBurst(0, 9, 5), "outside [-1, 8)"},
		{"bad burst count", (&Plan{}).WithBurst(0, 0, 0), "must be positive"},
		{"double down", (&Plan{}).Down(0, 3).Down(des.Second, 3), "already down"},
		{"up while up", (&Plan{}).Up(des.Second, 3), "not down"},
	}
	for _, c := range cases {
		err := c.plan.Validate(8, 8)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
	// Down without a matching up is a valid plan (the processor simply
	// stays failed to the end of the run).
	if err := ((&Plan{}).Down(des.Second, 3)).Validate(8, 8); err != nil {
		t.Errorf("unpaired down rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"down:0@500ms,up:0@1.5s",
		"loss:0.01@0s,down:0@500ms,slow:2x0.5@1s,up:0@1.5s,burst:*x200@2s",
		"burst:3x50@250ms",
	}
	for _, s := range specs {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("round trip of %q gave %q", s, got)
		}
	}
	// Whitespace and unsorted input canonicalize.
	p, err := Parse(" up:0@2s , down:0@1s ")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "down:0@1s,up:0@2s" {
		t.Errorf("canonical form = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"down0@1s",     // no colon
		"down:0",       // no @TIME
		"down:x@1s",    // bad proc
		"down:0@elevn", // bad time
		"slow:1@1s",    // missing factor
		"slow:1xq@1s",  // bad factor
		"loss:q@1s",    // bad prob
		"burst:1@1s",   // missing count
		"burst:qx5@1s", // bad stream
		"burst:1xq@1s", // bad count
		"explode:1@1s", // unknown kind
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}
