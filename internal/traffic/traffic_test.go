package traffic

import (
	"math"
	"testing"

	"affinity/internal/des"
)

// measureRate drives a process for many arrivals and returns the
// empirical packet rate (packets/second).
func measureRate(p Process, events int) float64 {
	var elapsed des.Time
	packets := 0
	for i := 0; i < events; i++ {
		d, b := p.Next()
		elapsed += d
		packets += b
	}
	return float64(packets) / elapsed.Seconds()
}

func TestPoissonRate(t *testing.T) {
	p := Poisson{PacketsPerSec: 2000}.Build(des.NewRNG(1))
	got := measureRate(p, 100000)
	if math.Abs(got-2000)/2000 > 0.02 {
		t.Fatalf("empirical rate = %v, want ≈2000", got)
	}
}

func TestPoissonBatchAlwaysOne(t *testing.T) {
	p := Poisson{PacketsPerSec: 100}.Build(des.NewRNG(2))
	for i := 0; i < 1000; i++ {
		if _, b := p.Next(); b != 1 {
			t.Fatal("poisson batch != 1")
		}
	}
}

func TestDeterministicExactGap(t *testing.T) {
	p := Deterministic{PacketsPerSec: 1000}.Build(nil)
	for i := 0; i < 10; i++ {
		d, b := p.Next()
		if d != 1000 || b != 1 { // 1000 µs at 1000 pkt/s
			t.Fatalf("Next = %v, %d", d, b)
		}
	}
}

func TestBatchPreservesRate(t *testing.T) {
	p := Batch{PacketsPerSec: 2000, MeanBurst: 8}.Build(des.NewRNG(3))
	got := measureRate(p, 100000)
	if math.Abs(got-2000)/2000 > 0.03 {
		t.Fatalf("empirical rate = %v, want ≈2000", got)
	}
}

func TestBatchMeanBurst(t *testing.T) {
	p := Batch{PacketsPerSec: 2000, MeanBurst: 8}.Build(des.NewRNG(4))
	total, events := 0, 50000
	for i := 0; i < events; i++ {
		_, b := p.Next()
		if b < 1 {
			t.Fatal("batch below 1")
		}
		total += b
	}
	mean := float64(total) / float64(events)
	if math.Abs(mean-8) > 0.2 {
		t.Fatalf("mean burst = %v, want ≈8", mean)
	}
}

func TestBatchDegeneratesToPoisson(t *testing.T) {
	p := Batch{PacketsPerSec: 500, MeanBurst: 1}.Build(des.NewRNG(5))
	for i := 0; i < 1000; i++ {
		if _, b := p.Next(); b != 1 {
			t.Fatal("unit-burst batch produced multi-packet event")
		}
	}
}

func TestTrainPreservesRate(t *testing.T) {
	p := Train{PacketsPerSec: 2000, MeanTrainLen: 10, IntraGap: 50}.Build(des.NewRNG(6))
	got := measureRate(p, 200000)
	if math.Abs(got-2000)/2000 > 0.03 {
		t.Fatalf("empirical rate = %v, want ≈2000", got)
	}
}

func TestTrainIntraGapSpacing(t *testing.T) {
	p := Train{PacketsPerSec: 1000, MeanTrainLen: 20, IntraGap: 50}.Build(des.NewRNG(7))
	intra := 0
	for i := 0; i < 10000; i++ {
		d, _ := p.Next()
		if d == 50 {
			intra++
		}
	}
	// Mean train length 20 ⇒ ~95% of gaps are intra-train.
	if intra < 9000 {
		t.Fatalf("only %d/10000 intra-train gaps", intra)
	}
}

func TestTrainInfeasibleParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for infeasible train")
		}
	}()
	// At 20k pkt/s with a 100 µs intra gap and long trains, the cycle
	// budget is blown.
	Train{PacketsPerSec: 20000, MeanTrainLen: 100, IntraGap: 100}.Build(des.NewRNG(8))
}

func TestInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero rate")
		}
	}()
	Poisson{PacketsPerSec: 0}.Build(des.NewRNG(9))
}

func TestInvalidBurstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for burst < 1")
		}
	}()
	Batch{PacketsPerSec: 100, MeanBurst: 0.5}.Build(des.NewRNG(10))
}

func TestSpecRateAndString(t *testing.T) {
	specs := []Spec{
		Poisson{PacketsPerSec: 123},
		Deterministic{PacketsPerSec: 123},
		Batch{PacketsPerSec: 123, MeanBurst: 4},
		Train{PacketsPerSec: 123, MeanTrainLen: 5, IntraGap: 10},
	}
	for _, s := range specs {
		if s.Rate() != 123 {
			t.Errorf("%T Rate = %v", s, s.Rate())
		}
		if s.String() == "" {
			t.Errorf("%T empty String", s)
		}
	}
}

func TestDeterminismAcrossBuilds(t *testing.T) {
	a := Batch{PacketsPerSec: 1000, MeanBurst: 4}.Build(des.NewRNG(42))
	b := Batch{PacketsPerSec: 1000, MeanBurst: 4}.Build(des.NewRNG(42))
	for i := 0; i < 1000; i++ {
		d1, n1 := a.Next()
		d2, n2 := b.Next()
		if d1 != d2 || n1 != n2 {
			t.Fatal("same-seed processes diverged")
		}
	}
}
