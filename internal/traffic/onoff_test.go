package traffic

import (
	"math"
	"strings"
	"testing"

	"affinity/internal/des"
)

func TestOnOffPreservesRate(t *testing.T) {
	// Duty cycle 0.5: base at 4000 pkt/s delivers 2000 pkt/s long-run.
	o := OnOff{Base: Poisson{PacketsPerSec: 4000}, MeanOn: 20_000, MeanOff: 20_000}
	if got := o.Rate(); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("Rate = %v, want 2000", got)
	}
	p := o.Build(des.NewRNG(11))
	got := measureRate(p, 200000)
	if math.Abs(got-2000)/2000 > 0.05 {
		t.Fatalf("empirical rate = %v, want ≈2000", got)
	}
}

func TestOnOffZeroOffIsBaseRate(t *testing.T) {
	// A zero-length OFF period means the process is always ON: the
	// long-run rate is exactly the base rate and no delivery stalls.
	o := OnOff{Base: Poisson{PacketsPerSec: 1500}, MeanOn: 10_000, MeanOff: 0}
	if got := o.Rate(); got != 1500 {
		t.Fatalf("Rate = %v, want 1500", got)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	p := o.Build(des.NewRNG(12))
	got := measureRate(p, 100000)
	if math.Abs(got-1500)/1500 > 0.03 {
		t.Fatalf("empirical rate = %v, want ≈1500", got)
	}
}

func TestOnOffPreservesBatches(t *testing.T) {
	o := OnOff{Base: Batch{PacketsPerSec: 2000, MeanBurst: 8}, MeanOn: 10_000, MeanOff: 5_000}
	p := o.Build(des.NewRNG(13))
	total, events := 0, 50000
	for i := 0; i < events; i++ {
		d, b := p.Next()
		if b < 1 {
			t.Fatal("batch below 1")
		}
		if d < 0 {
			t.Fatal("negative delay")
		}
		total += b
	}
	mean := float64(total) / float64(events)
	if math.Abs(mean-8) > 0.2 {
		t.Fatalf("mean burst = %v, want ≈8 (modulation must not change batch sizes)", mean)
	}
}

func TestOnOffDeterministicAcrossBuilds(t *testing.T) {
	spec := OnOff{Base: Batch{PacketsPerSec: 1000, MeanBurst: 4}, MeanOn: 5_000, MeanOff: 2_500}
	a := spec.Build(des.NewRNG(42))
	b := spec.Build(des.NewRNG(42))
	for i := 0; i < 2000; i++ {
		d1, n1 := a.Next()
		d2, n2 := b.Next()
		if d1 != d2 || n1 != n2 {
			t.Fatal("same-seed processes diverged")
		}
	}
}

func TestValidateAcceptsGoodSpecs(t *testing.T) {
	specs := []Spec{
		Poisson{PacketsPerSec: 100},
		Deterministic{PacketsPerSec: 100},
		Batch{PacketsPerSec: 100, MeanBurst: 1},
		Train{PacketsPerSec: 100, MeanTrainLen: 1, IntraGap: 0},
		OnOff{Base: Poisson{PacketsPerSec: 100}, MeanOn: 1, MeanOff: 0},
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: unexpected Validate error: %v", s, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		spec Spec
		want string // substring of the error
	}{
		{Poisson{PacketsPerSec: 0}, "rate"},
		{Poisson{PacketsPerSec: -5}, "rate"},
		{Poisson{PacketsPerSec: math.NaN()}, "rate"},
		{Poisson{PacketsPerSec: math.Inf(1)}, "rate"},
		{Deterministic{PacketsPerSec: 0}, "rate"},
		{Batch{PacketsPerSec: 100, MeanBurst: 0.5}, "burst"},
		{Batch{PacketsPerSec: 100, MeanBurst: math.NaN()}, "burst"},
		{Train{PacketsPerSec: 0, MeanTrainLen: 5, IntraGap: 10}, "rate"},
		{Train{PacketsPerSec: 100, MeanTrainLen: 0.5, IntraGap: 10}, "train length"},
		{Train{PacketsPerSec: 100, MeanTrainLen: 5, IntraGap: -1}, "intra-train"},
		{Train{PacketsPerSec: 20000, MeanTrainLen: 100, IntraGap: 100}, "infeasible"},
		{OnOff{Base: nil}, "base"},
		{OnOff{Base: Poisson{PacketsPerSec: 0}, MeanOn: 1}, "rate"},
		{OnOff{Base: Poisson{PacketsPerSec: 100}, MeanOn: 0, MeanOff: 10}, "ON period"},
		{OnOff{Base: Poisson{PacketsPerSec: 100}, MeanOn: 10, MeanOff: -1}, "OFF period"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%#v: Validate accepted invalid spec", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%#v: error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

// TestBuildPanicMatchesValidate pins the error contract: Build panics
// exactly when Validate rejects, and the panic carries the same message.
func TestBuildPanicMatchesValidate(t *testing.T) {
	bad := []Spec{
		Batch{PacketsPerSec: 100, MeanBurst: 0.5},
		Train{PacketsPerSec: 20000, MeanTrainLen: 100, IntraGap: 100},
		OnOff{Base: Poisson{PacketsPerSec: 100}, MeanOn: 0},
	}
	for _, s := range bad {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%v: Build did not panic on invalid spec", s)
					return
				}
				err, ok := r.(error)
				if !ok || err.Error() != s.Validate().Error() {
					t.Errorf("%v: panic %v does not match Validate error %v", s, r, s.Validate())
				}
			}()
			s.Build(des.NewRNG(1))
		}()
	}
}

func TestWithRateRetargets(t *testing.T) {
	specs := []Spec{
		Poisson{PacketsPerSec: 100},
		Deterministic{PacketsPerSec: 100},
		Batch{PacketsPerSec: 100, MeanBurst: 4},
		Train{PacketsPerSec: 100, MeanTrainLen: 5, IntraGap: 10},
		OnOff{Base: Poisson{PacketsPerSec: 100}, MeanOn: 10_000, MeanOff: 30_000},
	}
	for _, s := range specs {
		got, err := WithRate(s, 250)
		if err != nil {
			t.Fatalf("%v: WithRate: %v", s, err)
		}
		if math.Abs(got.Rate()-250) > 1e-9 {
			t.Errorf("%v → %v: Rate = %v, want 250", s, got, got.Rate())
		}
	}
	// Shape parameters survive the retarget.
	b, _ := WithRate(Batch{PacketsPerSec: 100, MeanBurst: 4}, 250)
	if b.(Batch).MeanBurst != 4 {
		t.Error("WithRate changed Batch.MeanBurst")
	}
	o, _ := WithRate(OnOff{Base: Batch{PacketsPerSec: 100, MeanBurst: 4}, MeanOn: 10, MeanOff: 30}, 250)
	oo := o.(OnOff)
	if oo.MeanOn != 10 || oo.MeanOff != 30 || oo.Base.(Batch).MeanBurst != 4 {
		t.Errorf("WithRate changed OnOff shape: %v", oo)
	}
}

func TestWithRateUnknownSpec(t *testing.T) {
	if _, err := WithRate(fakeSpec{}, 100); err == nil {
		t.Fatal("WithRate accepted an unknown spec type")
	}
}

type fakeSpec struct{}

func (fakeSpec) Rate() float64          { return 1 }
func (fakeSpec) Build(*des.RNG) Process { return nil }
func (fakeSpec) String() string         { return "fake" }
func (fakeSpec) Validate() error        { return nil }
