// Package traffic provides the packet arrival processes the study
// exercises: Poisson streams (the paper's base workload), deterministic
// streams, batch-bursty arrivals (the intra-stream burstiness
// experiments), and the Jain–Routhier packet-train model [9] named in the
// paper's extensions.
package traffic

import (
	"fmt"
	"math"

	"affinity/internal/des"
)

// Process yields successive arrivals for one stream. Next returns the
// delay from the previous arrival event and the number of packets
// arriving together (≥1).
type Process interface {
	Next() (delay des.Time, batch int)
}

// Spec constructs a per-stream arrival process. Implementations are
// value types carrying parameters; Build instantiates the stochastic
// state with the stream's own RNG.
//
// Specs reach Build from two directions with different error contracts:
// user input (CLI flags, workload spec files) must be rejected with a
// descriptive error before the run starts, while programmatic misuse
// (library code constructing a spec it never validated) stays a panic.
// Validate is the boundary: sim.Params.Validate calls it on every
// arrival spec pre-run, so any invalid or infeasible parameterization
// that came in through a flag or a file surfaces as an error and exit
// code 1 — Build's panics remain only for callers that skipped it.
type Spec interface {
	// Rate returns the long-run packet rate in packets/second, used by
	// sweeps to label operating points.
	Rate() float64
	Build(rng *des.RNG) Process
	String() string
	// Validate reports a descriptive error for invalid or infeasible
	// parameters; a spec whose Validate returns nil never panics in
	// Build.
	Validate() error
}

// interarrival converts packets/second to a mean gap in µs.
func interarrival(rate float64) des.Time {
	if rate <= 0 {
		panic(fmt.Sprintf("traffic: non-positive rate %v", rate))
	}
	return des.Time(1e6 / rate)
}

// checkRate rejects a packet rate that is not a positive finite number.
func checkRate(kind string, rate float64) error {
	if !(rate > 0) || math.IsInf(rate, 1) {
		return fmt.Errorf("traffic: %s rate %v must be a positive finite pkt/s", kind, rate)
	}
	return nil
}

// Poisson is a Poisson arrival process.
type Poisson struct {
	PacketsPerSec float64
}

// Rate implements Spec.
func (p Poisson) Rate() float64 { return p.PacketsPerSec }

func (p Poisson) String() string { return fmt.Sprintf("poisson(%g pkt/s)", p.PacketsPerSec) }

// Validate implements Spec.
func (p Poisson) Validate() error { return checkRate("poisson", p.PacketsPerSec) }

// Build implements Spec.
func (p Poisson) Build(rng *des.RNG) Process {
	return &poissonProc{mean: interarrival(p.PacketsPerSec), rng: rng}
}

type poissonProc struct {
	mean des.Time
	rng  *des.RNG
}

func (p *poissonProc) Next() (des.Time, int) { return p.rng.ExpTime(p.mean), 1 }

// Deterministic is a constant-gap arrival process.
type Deterministic struct {
	PacketsPerSec float64
}

// Rate implements Spec.
func (d Deterministic) Rate() float64 { return d.PacketsPerSec }

func (d Deterministic) String() string { return fmt.Sprintf("cbr(%g pkt/s)", d.PacketsPerSec) }

// Validate implements Spec.
func (d Deterministic) Validate() error { return checkRate("cbr", d.PacketsPerSec) }

// Build implements Spec.
func (d Deterministic) Build(*des.RNG) Process {
	return fixedProc(interarrival(d.PacketsPerSec))
}

type fixedProc des.Time

func (f fixedProc) Next() (des.Time, int) { return des.Time(f), 1 }

// Batch is a bursty process: burst events arrive Poisson; each carries a
// geometrically distributed number of packets with the given mean, so
// the long-run packet rate is PacketsPerSec while intra-stream burstiness
// grows with MeanBurst.
type Batch struct {
	PacketsPerSec float64
	MeanBurst     float64
}

// Rate implements Spec.
func (b Batch) Rate() float64 { return b.PacketsPerSec }

func (b Batch) String() string {
	return fmt.Sprintf("batch(%g pkt/s, b=%g)", b.PacketsPerSec, b.MeanBurst)
}

// Validate implements Spec.
func (b Batch) Validate() error {
	if err := checkRate("batch", b.PacketsPerSec); err != nil {
		return err
	}
	if !(b.MeanBurst >= 1) || math.IsInf(b.MeanBurst, 1) {
		return fmt.Errorf("traffic: batch mean burst %v must be a finite value ≥ 1", b.MeanBurst)
	}
	return nil
}

// Build implements Spec. It panics on parameters Validate rejects —
// programmatic misuse; user-supplied specs are validated pre-run.
func (b Batch) Build(rng *des.RNG) Process {
	if err := b.Validate(); err != nil {
		panic(err)
	}
	eventRate := b.PacketsPerSec / b.MeanBurst
	return &batchProc{mean: interarrival(eventRate), burst: b.MeanBurst, rng: rng}
}

type batchProc struct {
	mean  des.Time
	burst float64
	rng   *des.RNG
}

func (b *batchProc) Next() (des.Time, int) {
	return b.rng.ExpTime(b.mean), b.rng.Geometric(b.burst)
}

// Train is the Jain–Routhier packet-train model: trains start as a
// Poisson process; within a train, packets follow at a fixed intra-train
// gap; train lengths are geometric with the given mean. The long-run
// packet rate is PacketsPerSec.
type Train struct {
	PacketsPerSec float64
	MeanTrainLen  float64
	IntraGap      des.Time // gap between packets inside a train
}

// Rate implements Spec.
func (t Train) Rate() float64 { return t.PacketsPerSec }

func (t Train) String() string {
	return fmt.Sprintf("train(%g pkt/s, len=%g, gap=%v)", t.PacketsPerSec, t.MeanTrainLen, t.IntraGap)
}

// interTrain returns the mean inter-train gap that delivers the
// long-run rate: the mean cycle inter + (len−1)·intraGap must deliver
// len packets, so inter = len/rate − (len−1)·intraGap.
func (t Train) interTrain() des.Time {
	return des.Time(t.MeanTrainLen*1e6/t.PacketsPerSec) - des.Time(t.MeanTrainLen-1)*t.IntraGap
}

// Validate implements Spec. It rejects infeasible parameterizations —
// an intra-train gap so large that delivering the long-run rate would
// need a negative inter-train gap — as well as out-of-range fields.
func (t Train) Validate() error {
	if err := checkRate("train", t.PacketsPerSec); err != nil {
		return err
	}
	if !(t.MeanTrainLen >= 1) || math.IsInf(t.MeanTrainLen, 1) {
		return fmt.Errorf("traffic: mean train length %v must be a finite value ≥ 1", t.MeanTrainLen)
	}
	if t.IntraGap < 0 {
		return fmt.Errorf("traffic: negative intra-train gap %v", t.IntraGap)
	}
	if t.interTrain() <= 0 {
		return fmt.Errorf("traffic: train params infeasible: rate %v, len %v, gap %v need a negative inter-train gap",
			t.PacketsPerSec, t.MeanTrainLen, t.IntraGap)
	}
	return nil
}

// Build implements Spec. It panics on parameters Validate rejects —
// programmatic misuse; user-supplied specs are validated pre-run.
func (t Train) Build(rng *des.RNG) Process {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return &trainProc{interTrain: t.interTrain(), meanLen: t.MeanTrainLen, gap: t.IntraGap, rng: rng}
}

type trainProc struct {
	interTrain des.Time
	meanLen    float64
	gap        des.Time
	rng        *des.RNG
	remaining  int // packets left in the current train
}

func (t *trainProc) Next() (des.Time, int) {
	if t.remaining > 0 {
		t.remaining--
		return t.gap, 1
	}
	t.remaining = t.rng.Geometric(t.meanLen) - 1
	return t.rng.ExpTime(t.interTrain), 1
}
