// Package traffic provides the packet arrival processes the study
// exercises: Poisson streams (the paper's base workload), deterministic
// streams, batch-bursty arrivals (the intra-stream burstiness
// experiments), and the Jain–Routhier packet-train model [9] named in the
// paper's extensions.
package traffic

import (
	"fmt"

	"affinity/internal/des"
)

// Process yields successive arrivals for one stream. Next returns the
// delay from the previous arrival event and the number of packets
// arriving together (≥1).
type Process interface {
	Next() (delay des.Time, batch int)
}

// Spec constructs a per-stream arrival process. Implementations are
// value types carrying parameters; Build instantiates the stochastic
// state with the stream's own RNG.
type Spec interface {
	// Rate returns the long-run packet rate in packets/second, used by
	// sweeps to label operating points.
	Rate() float64
	Build(rng *des.RNG) Process
	String() string
}

// interarrival converts packets/second to a mean gap in µs.
func interarrival(rate float64) des.Time {
	if rate <= 0 {
		panic(fmt.Sprintf("traffic: non-positive rate %v", rate))
	}
	return des.Time(1e6 / rate)
}

// Poisson is a Poisson arrival process.
type Poisson struct {
	PacketsPerSec float64
}

// Rate implements Spec.
func (p Poisson) Rate() float64 { return p.PacketsPerSec }

func (p Poisson) String() string { return fmt.Sprintf("poisson(%g pkt/s)", p.PacketsPerSec) }

// Build implements Spec.
func (p Poisson) Build(rng *des.RNG) Process {
	return &poissonProc{mean: interarrival(p.PacketsPerSec), rng: rng}
}

type poissonProc struct {
	mean des.Time
	rng  *des.RNG
}

func (p *poissonProc) Next() (des.Time, int) { return p.rng.ExpTime(p.mean), 1 }

// Deterministic is a constant-gap arrival process.
type Deterministic struct {
	PacketsPerSec float64
}

// Rate implements Spec.
func (d Deterministic) Rate() float64 { return d.PacketsPerSec }

func (d Deterministic) String() string { return fmt.Sprintf("cbr(%g pkt/s)", d.PacketsPerSec) }

// Build implements Spec.
func (d Deterministic) Build(*des.RNG) Process {
	return fixedProc(interarrival(d.PacketsPerSec))
}

type fixedProc des.Time

func (f fixedProc) Next() (des.Time, int) { return des.Time(f), 1 }

// Batch is a bursty process: burst events arrive Poisson; each carries a
// geometrically distributed number of packets with the given mean, so
// the long-run packet rate is PacketsPerSec while intra-stream burstiness
// grows with MeanBurst.
type Batch struct {
	PacketsPerSec float64
	MeanBurst     float64
}

// Rate implements Spec.
func (b Batch) Rate() float64 { return b.PacketsPerSec }

func (b Batch) String() string {
	return fmt.Sprintf("batch(%g pkt/s, b=%g)", b.PacketsPerSec, b.MeanBurst)
}

// Build implements Spec.
func (b Batch) Build(rng *des.RNG) Process {
	if b.MeanBurst < 1 {
		panic(fmt.Sprintf("traffic: mean burst %v below 1", b.MeanBurst))
	}
	eventRate := b.PacketsPerSec / b.MeanBurst
	return &batchProc{mean: interarrival(eventRate), burst: b.MeanBurst, rng: rng}
}

type batchProc struct {
	mean  des.Time
	burst float64
	rng   *des.RNG
}

func (b *batchProc) Next() (des.Time, int) {
	return b.rng.ExpTime(b.mean), b.rng.Geometric(b.burst)
}

// Train is the Jain–Routhier packet-train model: trains start as a
// Poisson process; within a train, packets follow at a fixed intra-train
// gap; train lengths are geometric with the given mean. The long-run
// packet rate is PacketsPerSec.
type Train struct {
	PacketsPerSec float64
	MeanTrainLen  float64
	IntraGap      des.Time // gap between packets inside a train
}

// Rate implements Spec.
func (t Train) Rate() float64 { return t.PacketsPerSec }

func (t Train) String() string {
	return fmt.Sprintf("train(%g pkt/s, len=%g, gap=%v)", t.PacketsPerSec, t.MeanTrainLen, t.IntraGap)
}

// Build implements Spec.
func (t Train) Build(rng *des.RNG) Process {
	if t.MeanTrainLen < 1 {
		panic(fmt.Sprintf("traffic: mean train length %v below 1", t.MeanTrainLen))
	}
	if t.IntraGap < 0 {
		panic("traffic: negative intra-train gap")
	}
	// Mean cycle = inter-train gap + (len-1)·intraGap must deliver
	// len packets: interTrain = len/rate − (len−1)·intraGap.
	meanLen := t.MeanTrainLen
	inter := des.Time(meanLen*1e6/t.PacketsPerSec) - des.Time(meanLen-1)*t.IntraGap
	if inter <= 0 {
		panic(fmt.Sprintf("traffic: train params infeasible: rate %v, len %v, gap %v",
			t.PacketsPerSec, meanLen, t.IntraGap))
	}
	return &trainProc{interTrain: inter, meanLen: meanLen, gap: t.IntraGap, rng: rng}
}

type trainProc struct {
	interTrain des.Time
	meanLen    float64
	gap        des.Time
	rng        *des.RNG
	remaining  int // packets left in the current train
}

func (t *trainProc) Next() (des.Time, int) {
	if t.remaining > 0 {
		t.remaining--
		return t.gap, 1
	}
	t.remaining = t.rng.Geometric(t.meanLen) - 1
	return t.rng.ExpTime(t.interTrain), 1
}
