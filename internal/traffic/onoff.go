package traffic

import (
	"fmt"
	"math"

	"affinity/internal/des"
)

// OnOff modulates a base arrival process with exponentially distributed
// ON and OFF periods (the classic interrupted process used for
// Internet-like burst behaviour at timescales above single trains). The
// base process runs only during ON periods; its virtual clock freezes
// across OFF gaps, so every base inter-arrival that straddes one or more
// gaps is stretched by their total length.
//
// The long-run packet rate is therefore Base.Rate()·MeanOn/(MeanOn+MeanOff);
// workload generators that need a target long-run rate should scale the
// base spec up by the inverse duty cycle (see WithRate).
type OnOff struct {
	Base    Spec
	MeanOn  des.Time // mean ON period, µs; must be positive
	MeanOff des.Time // mean OFF period, µs; zero disables modulation
}

// Rate implements Spec: the base rate thinned by the ON duty cycle.
func (o OnOff) Rate() float64 {
	if o.MeanOn <= 0 {
		return 0
	}
	return o.Base.Rate() * float64(o.MeanOn) / float64(o.MeanOn+o.MeanOff)
}

func (o OnOff) String() string {
	return fmt.Sprintf("onoff(%s, on=%v, off=%v)", o.Base, o.MeanOn, o.MeanOff)
}

// Validate implements Spec.
func (o OnOff) Validate() error {
	if o.Base == nil {
		return fmt.Errorf("traffic: onoff has no base process")
	}
	if err := o.Base.Validate(); err != nil {
		return err
	}
	if !(o.MeanOn > 0) || math.IsInf(float64(o.MeanOn), 1) {
		return fmt.Errorf("traffic: onoff mean ON period %v must be a positive finite duration", o.MeanOn)
	}
	if o.MeanOff < 0 || math.IsInf(float64(o.MeanOff), 1) {
		return fmt.Errorf("traffic: onoff mean OFF period %v must be a non-negative finite duration", o.MeanOff)
	}
	return nil
}

// Build implements Spec. It panics on parameters Validate rejects —
// programmatic misuse; user-supplied specs are validated pre-run.
func (o OnOff) Build(rng *des.RNG) Process {
	if err := o.Validate(); err != nil {
		panic(err)
	}
	p := &onOffProc{base: o.Base.Build(rng), meanOn: o.MeanOn, meanOff: o.MeanOff, rng: rng}
	p.remaining = p.drawOn()
	return p
}

type onOffProc struct {
	base      Process
	meanOn    des.Time
	meanOff   des.Time
	rng       *des.RNG
	remaining des.Time // ON time left before the next OFF gap
}

// drawOn returns the next ON period, floored at the mean so a degenerate
// zero draw can never stall the delivery loop.
func (p *onOffProc) drawOn() des.Time {
	if d := p.rng.ExpTime(p.meanOn); d > 0 {
		return d
	}
	return p.meanOn
}

func (p *onOffProc) Next() (des.Time, int) {
	d, batch := p.base.Next()
	// d is ON-time to consume; real time adds every OFF gap straddled.
	real := d
	for d > p.remaining {
		d -= p.remaining
		real += p.rng.ExpTime(p.meanOff)
		p.remaining = p.drawOn()
	}
	p.remaining -= d
	return real, batch
}

// WithRate returns a copy of s with its long-run packet rate replaced by
// rate, preserving every shape parameter (burstiness, train structure,
// ON/OFF duty cycle). Workload generators use it to spread one class
// model across streams with Zipf-weighted rates. Unknown Spec
// implementations are rejected, not guessed at.
func WithRate(s Spec, rate float64) (Spec, error) {
	switch x := s.(type) {
	case Poisson:
		x.PacketsPerSec = rate
		return x, nil
	case Deterministic:
		x.PacketsPerSec = rate
		return x, nil
	case Batch:
		x.PacketsPerSec = rate
		return x, nil
	case Train:
		x.PacketsPerSec = rate
		return x, nil
	case OnOff:
		// Scale the base so the duty-cycle-thinned long-run rate lands
		// on target.
		duty := x.Rate() / x.Base.Rate()
		base, err := WithRate(x.Base, rate/duty)
		if err != nil {
			return nil, err
		}
		x.Base = base
		return x, nil
	default:
		return nil, fmt.Errorf("traffic: cannot retarget rate of %T", s)
	}
}
