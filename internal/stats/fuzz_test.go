package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzBatchMeans feeds arbitrary observation streams through the
// BatchMeans estimator, the Accumulator underneath it, and the delay
// Histogram, and checks the estimator contracts the simulator relies on
// when deciding to stop a run:
//
//   - the grand mean stays inside [min, max] of the inputs
//   - variance and half-widths are never negative or NaN (infinite only
//     below 2 completed batches or on a zero mean)
//   - quantiles are monotone in q, bounded by [lo, hi], and
//     QuantileClamped flags exactly the overflow-mass quantiles
//   - cumulative bin counts, underflow and overflow account for every
//     observation
func FuzzBatchMeans(f *testing.F) {
	le := binary.LittleEndian
	mk := func(batch uint16, xs ...float64) []byte {
		b := make([]byte, 2, 2+8*len(xs))
		le.PutUint16(b, batch)
		for _, x := range xs {
			b = le.AppendUint64(b, math.Float64bits(x))
		}
		return b
	}
	f.Add(mk(1))
	f.Add(mk(1, 0))
	f.Add(mk(4, 1, 2, 3, 4, 5, 6, 7, 8))
	f.Add(mk(2, 100, 100, 100, 100)) // zero-variance batches
	f.Add(mk(3, -50, 1e12, 0.5, 99_999.99, 100_000, 200_000))
	f.Add(mk(1, 1e-300, 1e300, -1e300))
	f.Add(mk(65535, 42))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		batchSize := uint64(le.Uint16(data[:2]))
		if batchSize == 0 {
			batchSize = 1
		}
		data = data[2:]

		bm := NewBatchMeans(batchSize)
		h := NewHistogram(0, 100_000, 1_000)
		var acc Accumulator
		n := 0
		for ; len(data) >= 8; data = data[8:] {
			x := math.Float64frombits(le.Uint64(data[:8]))
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue // delays are always finite; NaN poisons any mean
			}
			bm.Add(x)
			acc.Add(x)
			h.Add(x)
			n++
		}
		if n == 0 {
			return
		}

		if acc.N() != uint64(n) || h.N() != uint64(n) {
			t.Fatalf("N: acc=%d hist=%d, fed %d", acc.N(), h.N(), n)
		}
		if m := acc.Mean(); m < acc.Min() && !closeRank(m, acc.Min()) ||
			m > acc.Max() && !closeRank(m, acc.Max()) {
			t.Fatalf("mean %v outside [%v, %v]", m, acc.Min(), acc.Max())
		}
		if v := acc.Variance(); v < 0 || math.IsNaN(v) {
			t.Fatalf("variance = %v", v)
		}

		if k := bm.Batches(); k != uint64(n)/batchSize {
			t.Fatalf("batches = %d, want %d", k, uint64(n)/batchSize)
		}
		hw := bm.HalfWidth()
		if math.IsNaN(hw) || hw < 0 {
			t.Fatalf("half-width = %v", hw)
		}
		if bm.Batches() < 2 && !math.IsInf(hw, 1) {
			t.Fatalf("half-width %v finite with %d batches", hw, bm.Batches())
		}
		if r := bm.RelativeHalfWidth(); math.IsNaN(r) || r < 0 {
			t.Fatalf("relative half-width = %v", r)
		}
		if bm.Batches() > 0 {
			if m := bm.Mean(); m < acc.Min() && !closeRank(m, acc.Min()) ||
				m > acc.Max() && !closeRank(m, acc.Max()) {
				t.Fatalf("grand mean %v outside [%v, %v]", m, acc.Min(), acc.Max())
			}
		}

		// Quantiles: bounded and monotone.
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			v := h.Quantile(q)
			if v < 0 || v > 100_000 || math.IsNaN(v) {
				t.Fatalf("quantile(%v) = %v out of range", q, v)
			}
			if v < prev {
				t.Fatalf("quantile(%v) = %v < previous %v", q, v, prev)
			}
			prev = v
		}
		if v, clamped := h.QuantileClamped(0.95); clamped {
			if v != 100_000 && h.OverflowFraction() < 0.05 {
				t.Fatalf("clamped quantile %v with overflow %v", v, h.OverflowFraction())
			}
		}
		if of := h.OverflowFraction(); of < 0 || of > 1 {
			t.Fatalf("overflow fraction = %v", of)
		}

		var binned uint64
		for _, c := range h.Counts() {
			binned += c
		}
		if binned > h.N() {
			t.Fatalf("bins hold %d of %d observations", binned, h.N())
		}
	})
}

// closeRank tolerates the few ULPs of drift Welford's running mean can
// accumulate past the extreme observation on adversarial inputs.
func closeRank(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}
