package stats

import (
	"math"
	"testing"
)

// TestAccumulatorEmptyDerived checks every derived statistic of the
// zero-value accumulator, not just the mean.
func TestAccumulatorEmptyDerived(t *testing.T) {
	var a Accumulator
	for name, got := range map[string]float64{
		"Mean": a.Mean(), "Sum": a.Sum(), "Variance": a.Variance(),
		"StdDev": a.StdDev(), "Min": a.Min(), "Max": a.Max(),
	} {
		if got != 0 {
			t.Errorf("empty accumulator %s = %v, want 0", name, got)
		}
	}
	if a.N() != 0 {
		t.Errorf("empty accumulator N = %d", a.N())
	}
}

// TestAccumulatorSingleNegative checks a lone negative sample: min and
// max must both take the value, and variance must stay exactly 0.
func TestAccumulatorSingleNegative(t *testing.T) {
	var a Accumulator
	a.Add(-3.5)
	if a.Min() != -3.5 || a.Max() != -3.5 {
		t.Errorf("min %v max %v, want both -3.5", a.Min(), a.Max())
	}
	if a.Variance() != 0 || a.StdDev() != 0 {
		t.Errorf("single sample variance %v stddev %v, want 0", a.Variance(), a.StdDev())
	}
	if a.Mean() != -3.5 || a.Sum() != -3.5 {
		t.Errorf("mean %v sum %v, want -3.5", a.Mean(), a.Sum())
	}
}

// TestTimeWeightedZeroLengthIntervals drives the integrator with
// repeated updates at the same instant: they contribute no area, the
// last value at the instant wins, and the mean stays well-defined.
func TestTimeWeightedZeroLengthIntervals(t *testing.T) {
	var w TimeWeighted
	w.Set(10, 5)
	w.Set(10, 50) // same instant: replaces the level, no area
	w.Set(10, 2)
	if got := w.Mean(10); got != 0 {
		t.Errorf("mean over a zero-length window = %v, want 0", got)
	}
	w.Set(20, 0)
	// Only the final level at t=10 (2) should have integrated.
	if got := w.Mean(20); math.Abs(got-2) > 1e-12 {
		t.Errorf("mean = %v, want 2 (zero-length intervals must not contribute)", got)
	}
	// A zero-length spike mid-run must also vanish.
	w.Set(25, 100)
	w.Set(25, 0)
	if got := w.Mean(30); math.Abs(got-1) > 1e-12 {
		t.Errorf("mean = %v, want 1 (instantaneous spike contributed area)", got)
	}
	if w.Value() != 0 {
		t.Errorf("current value %v, want 0", w.Value())
	}
}

// TestTimeWeightedMeanBeforeStart: querying at or before the priming
// time must return 0, not NaN from a 0/0 division.
func TestTimeWeightedMeanBeforeStart(t *testing.T) {
	var w TimeWeighted
	if got := w.Mean(5); got != 0 {
		t.Errorf("unprimed mean = %v, want 0", got)
	}
	w.Set(10, 7)
	for _, now := range []float64{10, 9, 0} {
		got := w.Mean(now)
		if got != 0 || math.IsNaN(got) {
			t.Errorf("Mean(%v) = %v, want 0", now, got)
		}
	}
}

// TestHistogramOutOfRange sends every observation outside [lo, hi) and
// checks the under/overflow accounting, the exact mean, and quantiles
// that clamp to the bounds.
func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.Add(-5)    // underflow
	h.Add(-0.01) // just below lo
	h.Add(100)   // hi itself is out of range ([lo, hi) is half-open)
	h.Add(250)   // overflow
	if h.N() != 4 {
		t.Fatalf("N = %d, want 4", h.N())
	}
	for i, c := range h.Counts() {
		if c != 0 {
			t.Fatalf("bin %d holds %d out-of-range observations", i, c)
		}
	}
	if got := h.OverflowFraction(); got != 0.5 {
		t.Errorf("overflow fraction %v, want 0.5", got)
	}
	// The mean is computed from raw samples, not bins.
	want := (-5 - 0.01 + 100 + 250) / 4
	if got := h.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean %v, want %v", got, want)
	}
	// Quantiles: underflow mass sits at lo, overflow at hi.
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("q25 = %v, want lo", got)
	}
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("q99 = %v, want hi", got)
	}
}

// TestHistogramBoundaryBin checks that lo lands in bin 0 and the value
// just below hi lands in the last bin (no index-out-of-range at the
// edges).
func TestHistogramBoundaryBin(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0)
	h.Add(math.Nextafter(10, 0))
	c := h.Counts()
	if c[0] != 1 {
		t.Errorf("lo not in bin 0: %v", c)
	}
	if c[len(c)-1] != 1 {
		t.Errorf("hi-ε not in last bin: %v", c)
	}
	if h.OverflowFraction() != 0 {
		t.Errorf("in-range samples counted as overflow")
	}
}

// TestQuantileClamped checks that a quantile falling in the overflow
// mass is flagged as clamped (the returned value is the histogram's
// upper bound, a lower bound on the truth, not a measurement).
func TestQuantileClamped(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 90; i++ {
		h.Add(50)
	}
	for i := 0; i < 10; i++ {
		h.Add(1e6) // overflow
	}
	if v, clamped := h.QuantileClamped(0.5); clamped || v == 100 {
		t.Errorf("q50 = (%v, %v), want in-range and unclamped", v, clamped)
	}
	if v, clamped := h.QuantileClamped(0.95); !clamped || v != 100 {
		t.Errorf("q95 = (%v, %v), want clamped at hi", v, clamped)
	}
	// Exactly at the overflow boundary: q = 0.90 is still representable.
	if _, clamped := h.QuantileClamped(0.90); clamped {
		t.Error("q90 flagged clamped at the exact boundary")
	}
	var empty Histogram
	if v, clamped := (&empty).QuantileClamped(0.95); clamped || v != 0 {
		t.Errorf("empty histogram = (%v, %v)", v, clamped)
	}
}
