// Package stats provides the estimators used by the simulation study:
// streaming mean/variance accumulators, time-weighted averages for
// occupancy processes, batch-means confidence intervals for steady-state
// output analysis, and fixed-bin histograms for delay distributions.
package stats

import (
	"fmt"
	"math"
)

// Accumulator computes streaming count, mean and variance (Welford).
// The zero value is ready to use.
type Accumulator struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.sum += x
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the observation count.
func (a *Accumulator) N() uint64 { return a.n }

// Mean returns the sample mean, or 0 with no observations.
func (a *Accumulator) Mean() float64 { return a.mean }

// Sum returns the running total.
func (a *Accumulator) Sum() float64 { return a.sum }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min and Max return the observed extremes (0 with no observations).
func (a *Accumulator) Min() float64 { return a.min }
func (a *Accumulator) Max() float64 { return a.max }

// Merge folds b into a (parallel reduction of two accumulators).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	mean := a.mean + d*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
	a.sum += b.sum
}

// TimeWeighted integrates a piecewise-constant process (queue length,
// busy servers) over simulation time.
type TimeWeighted struct {
	last   float64 // last update time
	value  float64 // current level
	area   float64
	start  float64
	primed bool
}

// Set updates the level at the given time.
func (w *TimeWeighted) Set(now, value float64) {
	if !w.primed {
		w.start, w.last, w.primed = now, now, true
	}
	if now < w.last {
		panic(fmt.Sprintf("stats: time went backwards: %v < %v", now, w.last))
	}
	w.area += (now - w.last) * w.value
	w.last = now
	w.value = value
}

// Add adjusts the level by delta at the given time.
func (w *TimeWeighted) Add(now, delta float64) { w.Set(now, w.value+delta) }

// Value returns the current level.
func (w *TimeWeighted) Value() float64 { return w.value }

// Mean returns the time-average of the level up to now.
func (w *TimeWeighted) Mean(now float64) float64 {
	if !w.primed || now <= w.start {
		return 0
	}
	area := w.area + (now-w.last)*w.value
	return area / (now - w.start)
}

// BatchMeans produces a steady-state confidence interval by the method of
// batch means: observations are grouped into fixed-size batches; the batch
// averages are treated as (approximately) independent samples.
type BatchMeans struct {
	batchSize uint64
	current   Accumulator
	batches   Accumulator
}

// NewBatchMeans groups observations into batches of the given size.
func NewBatchMeans(batchSize uint64) *BatchMeans {
	if batchSize == 0 {
		panic("stats: zero batch size")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one observation.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.N() == b.batchSize {
		b.batches.Add(b.current.Mean())
		b.current = Accumulator{}
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() uint64 { return b.batches.N() }

// Mean returns the grand mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// HalfWidth returns the half-width of an approximate 95% confidence
// interval on the mean. It requires at least 2 completed batches and uses
// a t-quantile approximation adequate for ≥10 batches.
func (b *BatchMeans) HalfWidth() float64 {
	k := b.batches.N()
	if k < 2 {
		return math.Inf(1)
	}
	return tQuantile975(int(k-1)) * b.batches.StdDev() / math.Sqrt(float64(k))
}

// RelativeHalfWidth returns HalfWidth/|Mean| (∞ when the mean is 0).
func (b *BatchMeans) RelativeHalfWidth() float64 {
	m := b.Mean()
	if m == 0 {
		return math.Inf(1)
	}
	return b.HalfWidth() / math.Abs(m)
}

// tQuantile975 returns the 0.975 quantile of Student's t with df degrees
// of freedom (two-sided 95% interval), from a small table with normal
// tail beyond it.
func tQuantile975(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
		2.042,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	if df < 60 {
		return 2.02
	}
	if df < 120 {
		return 2.00
	}
	return 1.96
}

// Histogram is a fixed-bin histogram over [lo, hi) with overflow and
// underflow counters, used for packet-delay distributions.
type Histogram struct {
	lo, hi    float64
	bins      []uint64
	width     float64
	under     uint64
	over      uint64
	total     uint64
	sampleAcc Accumulator
}

// NewHistogram covers [lo, hi) with n equal bins.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if hi <= lo || n <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]uint64, n), width: (hi - lo) / float64(n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sampleAcc.Add(x)
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		h.bins[int((x-h.lo)/h.width)]++
	}
}

// N returns the total number of observations.
func (h *Histogram) N() uint64 { return h.total }

// Mean returns the exact sample mean (not binned).
func (h *Histogram) Mean() float64 { return h.sampleAcc.Mean() }

// Quantile returns an estimate of the q-quantile (0 < q < 1) by linear
// interpolation within the containing bin. Underflow mass is treated as
// sitting at lo and overflow mass at hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.lo
	}
	if q >= 1 {
		return h.hi
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if cum >= target {
		return h.lo
	}
	for i, c := range h.bins {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.hi
}

// QuantileClamped returns the q-quantile estimate along with whether the
// estimate was clamped to the histogram's upper bound because the
// quantile lies in the overflow mass (observations ≥ hi). A clamped
// value is a lower bound on the true quantile, not a measurement.
func (h *Histogram) QuantileClamped(q float64) (float64, bool) {
	v := h.Quantile(q)
	clamped := h.total > 0 && q > 0 && q < 1 &&
		float64(h.total-h.over) < q*float64(h.total)
	return v, clamped
}

// Counts returns a copy of the bin counts.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.bins))
	copy(out, h.bins)
	return out
}

// OverflowFraction returns the share of observations at or above hi.
func (h *Histogram) OverflowFraction() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.over) / float64(h.total)
}
