package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if !almost(a.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	if !almost(a.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min,Max = %v,%v want 2,9", a.Min(), a.Max())
	}
	if !almost(a.Sum(), 40, 1e-12) {
		t.Fatalf("Sum = %v, want 40", a.Sum())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Variance() != 0 {
		t.Fatalf("Variance of single sample = %v, want 0", a.Variance())
	}
	if a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatal("Min/Max of single sample wrong")
	}
}

// Property: Merge(a, b) matches feeding all samples into one accumulator.
func TestPropertyMergeEquivalence(t *testing.T) {
	prop := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := in[:0]
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Accumulator
		for _, v := range xs {
			a.Add(v)
			all.Add(v)
		}
		for _, v := range ys {
			b.Add(v)
			all.Add(v)
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean()))
		if !almost(a.Mean(), all.Mean(), tol) {
			return false
		}
		return almost(a.Variance(), all.Variance(), 1e-4*(1+all.Variance()))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Accumulator
	b.Add(1)
	b.Add(2)
	a.Merge(&b)
	if a.N() != 2 || !almost(a.Mean(), 1.5, 1e-12) {
		t.Fatalf("merge into empty: N=%d Mean=%v", a.N(), a.Mean())
	}
	var c Accumulator
	a.Merge(&c) // merging empty is a no-op
	if a.N() != 2 {
		t.Fatal("merging empty changed N")
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Set(10, 2) // level 0 for 10
	w.Set(30, 1) // level 2 for 20
	// level 1 for 10 more → area = 0*10 + 2*20 + 1*10 = 50 over 40
	if got := w.Mean(40); !almost(got, 1.25, 1e-12) {
		t.Fatalf("Mean(40) = %v, want 1.25", got)
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Add(5, 3)
	w.Add(10, -1)
	if w.Value() != 2 {
		t.Fatalf("Value = %v, want 2", w.Value())
	}
}

func TestTimeWeightedLateStart(t *testing.T) {
	var w TimeWeighted
	w.Set(100, 5)
	if got := w.Mean(200); !almost(got, 5, 1e-12) {
		t.Fatalf("Mean over [100,200] = %v, want 5", got)
	}
	if w.Mean(100) != 0 {
		t.Fatal("Mean with zero elapsed must be 0")
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	var w TimeWeighted
	w.Set(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backwards time")
		}
	}()
	w.Set(5, 2)
}

func TestBatchMeansCoverage(t *testing.T) {
	// iid normal samples: the 95% CI should contain the true mean the
	// vast majority of the time; check a single long run does.
	r := rand.New(rand.NewSource(1))
	bm := NewBatchMeans(100)
	for i := 0; i < 10000; i++ {
		bm.Add(r.NormFloat64()*2 + 10)
	}
	if bm.Batches() != 100 {
		t.Fatalf("Batches = %d, want 100", bm.Batches())
	}
	if hw := bm.HalfWidth(); math.Abs(bm.Mean()-10) > hw {
		t.Fatalf("true mean outside CI: mean=%v hw=%v", bm.Mean(), hw)
	}
	if bm.RelativeHalfWidth() > 0.01 {
		t.Fatalf("relative half-width %v too wide for 10k samples", bm.RelativeHalfWidth())
	}
}

func TestBatchMeansInsufficient(t *testing.T) {
	bm := NewBatchMeans(10)
	for i := 0; i < 15; i++ {
		bm.Add(1)
	}
	if bm.Batches() != 1 {
		t.Fatalf("Batches = %d, want 1", bm.Batches())
	}
	if !math.IsInf(bm.HalfWidth(), 1) {
		t.Fatal("HalfWidth with <2 batches must be +Inf")
	}
}

func TestBatchMeansZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero batch size")
		}
	}()
	NewBatchMeans(0)
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		q := tQuantile975(df)
		if q > prev {
			t.Fatalf("t-quantile not non-increasing at df=%d: %v > %v", df, q, prev)
		}
		prev = q
	}
	if !almost(tQuantile975(1000), 1.96, 1e-9) {
		t.Fatal("large-df quantile should be normal 1.96")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d, want 7", h.N())
	}
	counts := h.Counts()
	if counts[0] != 2 { // 0 and 0.5
		t.Fatalf("bin0 = %d, want 2", counts[0])
	}
	if counts[5] != 1 || counts[9] != 1 {
		t.Fatalf("bins = %v", counts)
	}
	if got := h.OverflowFraction(); !almost(got, 2.0/7, 1e-12) {
		t.Fatalf("OverflowFraction = %v, want 2/7", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i) / 10) // uniform on [0, 100)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if math.Abs(got-q*100) > 1 {
			t.Errorf("Quantile(%v) = %v, want ≈%v", q, got, q*100)
		}
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != 100 {
		t.Fatal("extreme quantiles must clamp to bounds")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(1)
	h.Add(2)
	h.Add(99) // overflow still counts toward the exact mean
	if !almost(h.Mean(), 34, 1e-12) {
		t.Fatalf("Mean = %v, want 34", h.Mean())
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid bounds")
		}
	}()
	NewHistogram(5, 5, 10)
}

// Property: histogram quantiles are monotone in q.
func TestPropertyHistogramQuantileMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHistogram(0, 1, 20)
		for i := 0; i < 200; i++ {
			h.Add(r.Float64())
		}
		prev := math.Inf(-1)
		for q := 0.05; q < 1; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmptyIntoFull(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging an empty accumulator changes nothing
	if a.N() != 2 || !almost(a.Mean(), 2, 1e-12) {
		t.Fatalf("after no-op merge: N=%d mean=%v", a.N(), a.Mean())
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Min() != 1 || b.Max() != 3 {
		t.Fatalf("merge into empty: %+v", b)
	}
}
