package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMM1KnownValue(t *testing.T) {
	// ρ = 0.5 ⇒ Wq = s.
	if got := MM1Wait(0.005, 100); !close(got, 100, 1e-9) {
		t.Fatalf("MM1Wait = %v, want 100", got)
	}
	// ρ = 0.8 ⇒ Wq = 4s.
	if got := MM1Wait(0.008, 100); !close(got, 400, 1e-9) {
		t.Fatalf("MM1Wait = %v, want 400", got)
	}
}

func TestMD1IsHalfMM1(t *testing.T) {
	for _, lam := range []float64{0.001, 0.005, 0.009} {
		if got, want := MD1Wait(lam, 100), MM1Wait(lam, 100)/2; !close(got, want, 1e-12) {
			t.Fatalf("MD1Wait(%v) = %v, want %v", lam, got, want)
		}
	}
}

func TestMG1Specializations(t *testing.T) {
	// scv = 1 ⇒ M/M/1; scv = 0 ⇒ M/D/1.
	if got, want := MG1Wait(0.004, 100, 1), MM1Wait(0.004, 100); !close(got, want, 1e-12) {
		t.Fatalf("MG1(scv=1) = %v, want %v", got, want)
	}
	if got, want := MG1Wait(0.004, 100, 0), MD1Wait(0.004, 100); !close(got, want, 1e-12) {
		t.Fatalf("MG1(scv=0) = %v, want %v", got, want)
	}
}

func TestErlangCSingleServer(t *testing.T) {
	// c = 1: P(wait) = ρ.
	for _, a := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, a); !close(got, a, 1e-12) {
			t.Fatalf("ErlangC(1, %v) = %v, want %v", a, got, a)
		}
	}
}

func TestErlangCKnownValue(t *testing.T) {
	// Textbook value: c = 2, a = 1 ⇒ C = 1/3.
	if got := ErlangC(2, 1); !close(got, 1.0/3, 1e-12) {
		t.Fatalf("ErlangC(2,1) = %v, want 1/3", got)
	}
	// c = 3, a = 2 ⇒ C(3,2) = 4/9 / (1+2+2 + 4/3·... ) — use the
	// standard published value 0.4444.
	if got := ErlangC(3, 2); !close(got, 0.44444444, 1e-6) {
		t.Fatalf("ErlangC(3,2) = %v, want 0.4444", got)
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	if got, want := MMcWait(1, 0.006, 100), MM1Wait(0.006, 100); !close(got, want, 1e-9) {
		t.Fatalf("MMcWait(1) = %v, want %v", got, want)
	}
}

func TestMDcApproxExactAtC1(t *testing.T) {
	if got, want := MDcWaitApprox(1, 0.006, 100), MD1Wait(0.006, 100); !close(got, want, 1e-9) {
		t.Fatalf("MDcWaitApprox(1) = %v, want %v", got, want)
	}
}

func TestGGcSpecializations(t *testing.T) {
	if got, want := GGcWaitApprox(2, 0.01, 100, 1, 1), MMcWait(2, 0.01, 100); !close(got, want, 1e-12) {
		t.Fatalf("GGc(1,1) = %v, want %v", got, want)
	}
	if got, want := GGcWaitApprox(2, 0.01, 100, 1, 0), MDcWaitApprox(2, 0.01, 100); !close(got, want, 1e-12) {
		t.Fatalf("GGc(1,0) = %v, want %v", got, want)
	}
}

func TestBatchReducesToMD1(t *testing.T) {
	if got, want := BatchGeoMD1Wait(0.004, 100, 1), MD1Wait(0.004, 100); !close(got, want, 1e-9) {
		t.Fatalf("BatchGeoMD1Wait(m=1) = %v, want %v", got, want)
	}
}

func TestBatchWaitGrowsWithBurst(t *testing.T) {
	prev := 0.0
	for _, m := range []float64{1, 2, 4, 8, 16} {
		w := BatchGeoMD1Wait(0.004, 100, m)
		if w <= prev {
			t.Fatalf("batch wait not increasing at m=%v: %v ≤ %v", m, w, prev)
		}
		prev = w
	}
}

// Property: every wait formula is non-negative and increasing in λ.
func TestPropertyWaitsMonotoneInLambda(t *testing.T) {
	prop := func(aRaw, bRaw uint16) bool {
		la := float64(aRaw%9000+1) / 1e6 // up to 0.009 with s=100 → ρ ≤ 0.9
		lb := float64(bRaw%9000+1) / 1e6
		if la > lb {
			la, lb = lb, la
		}
		for _, f := range []func(float64) float64{
			func(l float64) float64 { return MM1Wait(l, 100) },
			func(l float64) float64 { return MD1Wait(l, 100) },
			func(l float64) float64 { return MMcWait(4, l*4, 100) },
		} {
			wa, wb := f(la), f(lb)
			if wa < 0 || wa > wb+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: pooling helps — an M/M/c system always beats c separate
// M/M/1 queues each fed a 1/c share.
func TestPropertyPoolingBeatsPartitioning(t *testing.T) {
	prop := func(cRaw, loadRaw uint8) bool {
		c := int(cRaw%7) + 2
		perServer := float64(loadRaw%90+1) / 100 // per-server ρ in (0, 0.9]
		s := 100.0
		lam1 := perServer / s
		pooled := MMcWait(c, lam1*float64(c), s)
		single := MM1Wait(lam1, s)
		return pooled <= single+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSaturationPanics(t *testing.T) {
	cases := []func(){
		func() { MM1Wait(0.011, 100) },
		func() { MD1Wait(0.01, 100) },
		func() { ErlangC(2, 2) },
		func() { MM1Wait(-1, 100) },
		func() { MG1Wait(0.001, 100, -1) },
		func() { BatchGeoMD1Wait(0.001, 100, 0.5) },
		func() { ErlangC(0, 0.5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(102, 100, 0.05) {
		t.Fatal("2% error rejected at 5% tolerance")
	}
	if ApproxEqual(110, 100, 0.05) {
		t.Fatal("10% error accepted at 5% tolerance")
	}
	if !ApproxEqual(0.001, 0, 0.01) {
		t.Fatal("near-zero comparison wrong")
	}
}
