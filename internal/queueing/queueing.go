// Package queueing provides the classical queueing formulas used to
// cross-validate the discrete-event simulation: in configurations where
// protocol service time is constant (idle host, perfect affinity), the
// simulated stations reduce to M/D/1 or M/D/c systems with known mean
// waits, and the simulator must reproduce them. Experiment E20 runs the
// comparison; the sim package's tests enforce it.
//
// All times are in the caller's unit (the simulation uses microseconds);
// rates are in events per unit time.
package queueing

import (
	"fmt"
	"math"
)

// rho returns the utilization λ·s and panics outside [0, 1): these
// formulas have no steady state at or above saturation, and a caller
// probing one would silently get nonsense.
func rho(lambda, s float64) float64 {
	if lambda < 0 || s <= 0 {
		panic(fmt.Sprintf("queueing: invalid rate %v / service %v", lambda, s))
	}
	r := lambda * s
	if r >= 1 {
		panic(fmt.Sprintf("queueing: utilization %v ≥ 1 has no steady state", r))
	}
	return r
}

// MM1Wait returns the mean queueing delay (time waiting, excluding
// service) of an M/M/1 queue with arrival rate lambda and mean service
// time s: Wq = ρ·s / (1 − ρ).
func MM1Wait(lambda, s float64) float64 {
	r := rho(lambda, s)
	return r * s / (1 - r)
}

// MD1Wait returns the mean queueing delay of an M/D/1 queue:
// Wq = ρ·s / (2(1 − ρ)) — half the M/M/1 wait, deterministic service
// having zero variance.
func MD1Wait(lambda, s float64) float64 {
	r := rho(lambda, s)
	return r * s / (2 * (1 - r))
}

// MG1Wait returns the Pollaczek–Khinchine mean queueing delay of an
// M/G/1 queue with squared coefficient of variation scv of the service
// distribution: Wq = (1 + scv)/2 · ρ·s/(1 − ρ).
func MG1Wait(lambda, s, scv float64) float64 {
	if scv < 0 {
		panic(fmt.Sprintf("queueing: negative squared CV %v", scv))
	}
	return (1 + scv) / 2 * MM1Wait(lambda, s)
}

// ErlangC returns the probability an arrival must wait in an M/M/c queue
// offered a = λ·s erlangs on c servers (the Erlang C formula).
func ErlangC(c int, a float64) float64 {
	if c < 1 {
		panic(fmt.Sprintf("queueing: %d servers", c))
	}
	if a < 0 {
		panic(fmt.Sprintf("queueing: negative offered load %v", a))
	}
	if a >= float64(c) {
		panic(fmt.Sprintf("queueing: offered load %v ≥ servers %d has no steady state", a, c))
	}
	// Compute iteratively to avoid factorial overflow:
	// inv = Σ_{k=0}^{c-1} (c-a)/c · c!/(k! a^{c-k}) recast via term recurrence.
	term := 1.0 // a^k/k! relative to a^c/c!
	sum := 0.0
	// Build Σ_{k<c} a^k/k! and a^c/c! with a running term.
	akOverKFact := 1.0 // a^0/0!
	for k := 0; k < c; k++ {
		sum += akOverKFact
		akOverKFact *= a / float64(k+1)
	}
	acOverCFact := akOverKFact // now a^c/c!
	term = acOverCFact * float64(c) / (float64(c) - a)
	return term / (sum + term)
}

// MMcWait returns the mean queueing delay of an M/M/c queue:
// Wq = C(c, a) · s / (c − a).
func MMcWait(c int, lambda, s float64) float64 {
	a := lambda * s
	pWait := ErlangC(c, a)
	return pWait * s / (float64(c) - a)
}

// MDcWaitApprox returns the Allen–Cunneen approximation of the mean
// queueing delay of an M/D/c queue: with deterministic service the
// correction factor (C²a + C²s)/2 is 1/2 of the M/M/c wait. Exact for
// c = 1; within a few percent for the utilizations the validation uses.
func MDcWaitApprox(c int, lambda, s float64) float64 {
	return MMcWait(c, lambda, s) / 2
}

// GGcWaitApprox returns the Allen–Cunneen approximation for a G/G/c
// queue with arrival and service squared coefficients of variation ca2
// and cs2.
func GGcWaitApprox(c int, lambda, s, ca2, cs2 float64) float64 {
	if ca2 < 0 || cs2 < 0 {
		panic("queueing: negative squared CV")
	}
	return (ca2 + cs2) / 2 * MMcWait(c, lambda, s)
}

// BatchGeoMD1Wait returns the mean queueing delay of an M[X]/D/1 queue
// whose batch sizes are geometric with the given mean (≥ 1): the wait of
// the batch's first packet is the M/D/1 wait at the packet rate scaled by
// the batch-size second-moment factor, and packets later in a batch also
// wait for the service of those ahead of them. Used by the burstiness
// experiments as a single-station sanity bound.
//
// The standard decomposition: treat each batch as one M/G/1 customer
// with service B·s (Pollaczek–Khinchine on the batch process), plus the
// in-batch delay of a size-biased random packet,
// s·(E[B²]/E[B] − 1)/2. For geometric batches on {1, 2, …} with mean m,
// E[B²] = m(2m − 1).
func BatchGeoMD1Wait(lambda, s, meanBatch float64) float64 {
	if meanBatch < 1 {
		panic(fmt.Sprintf("queueing: mean batch %v below 1", meanBatch))
	}
	r := rho(lambda, s)
	m := meanBatch
	eb2 := m * (2*m - 1)
	lambdaBatch := lambda / m
	batchQueue := lambdaBatch * eb2 * s * s / (2 * (1 - r))
	withinBatch := s * (eb2/m - 1) / 2
	return batchQueue + withinBatch
}

// ApproxEqual reports whether got is within tol (relative) of want,
// a helper for validation tables.
func ApproxEqual(got, want, tol float64) bool {
	if want == 0 {
		return math.Abs(got) <= tol
	}
	return math.Abs(got-want)/math.Abs(want) <= tol
}
