package workload

import (
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"affinity/internal/des"
	"affinity/internal/traffic"
)

const sampleSpec = `{
  "name": "skewed-mix",
  "classes": [
    {"name": "web", "model": "poisson", "streams": 6, "rate_pps": 4200, "zipf": 1.2},
    {"name": "bulk", "model": "batch", "streams": 2, "rate_pps": 1800, "mean_burst": 4},
    {"name": "control", "model": "cbr", "streams": 1, "rate_pps": 100, "on_us": 20000, "off_us": 60000}
  ]
}`

func TestParseRoundTrip(t *testing.T) {
	s, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse([]byte(s.String()))
	if err != nil {
		t.Fatalf("re-parsing String(): %v", err)
	}
	if !reflect.DeepEqual(s, again) {
		t.Fatalf("round trip changed the spec:\n%v\nvs\n%v", s, again)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"garbage", "not json", "parsing"},
		{"unknown field", `{"classes":[{"name":"a","model":"poisson","streams":1,"rate_pps":10,"zpif":2}]}`, "unknown field"},
		{"trailing data", `{"classes":[{"name":"a","model":"poisson","streams":1,"rate_pps":10}]} {}`, "trailing"},
		{"no classes", `{"classes":[]}`, "no classes"},
		{"empty name", `{"classes":[{"name":"","model":"poisson","streams":1,"rate_pps":10}]}`, "no name"},
		{"dup name", `{"classes":[{"name":"a","model":"poisson","streams":1,"rate_pps":10},{"name":"a","model":"cbr","streams":1,"rate_pps":10}]}`, "duplicate"},
		{"bad model", `{"classes":[{"name":"a","model":"fractal","streams":1,"rate_pps":10}]}`, "unknown traffic model"},
		{"zero streams", `{"classes":[{"name":"a","model":"poisson","streams":0,"rate_pps":10}]}`, "stream count"},
		{"zero rate", `{"classes":[{"name":"a","model":"poisson","streams":1,"rate_pps":0}]}`, "rate"},
		{"negative zipf", `{"classes":[{"name":"a","model":"poisson","streams":4,"rate_pps":10,"zipf":-1}]}`, "zipf"},
		{"off without on", `{"classes":[{"name":"a","model":"poisson","streams":1,"rate_pps":10,"off_us":500}]}`, "ON period"},
		{"bad burst", `{"classes":[{"name":"a","model":"batch","streams":1,"rate_pps":10,"mean_burst":0.5}]}`, "burst"},
		{"infeasible train", `{"classes":[{"name":"a","model":"train","streams":1,"rate_pps":20000,"mean_train_len":100,"intra_gap_us":100}]}`, "infeasible"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.in))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestGenerateCountsAndRates(t *testing.T) {
	s, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	per, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != s.TotalStreams() || len(per) != 9 {
		t.Fatalf("generated %d streams, want %d", len(per), s.TotalStreams())
	}
	total := 0.0
	for _, ts := range per {
		if err := ts.Validate(); err != nil {
			t.Fatalf("generated invalid stream spec %v: %v", ts, err)
		}
		total += ts.Rate()
	}
	if want := s.TotalRate(); math.Abs(total-want) > 1e-6 {
		t.Fatalf("aggregate generated rate %v, want %v (Zipf split and ON/OFF duty must preserve class rates)", total, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := Parse([]byte(sampleSpec))
	a, _ := s.Generate()
	b, _ := s.Generate()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not a pure function of the spec")
	}
}

func TestZipfSplit(t *testing.T) {
	uniform := Spec{Classes: []Class{{Name: "u", Model: "poisson", Streams: 4, RatePPS: 1000, Zipf: 0}}}
	per, err := uniform.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range per {
		if math.Abs(ts.Rate()-250) > 1e-9 {
			t.Fatalf("zipf=0 stream rate %v, want uniform 250", ts.Rate())
		}
	}

	skewed := Spec{Classes: []Class{{Name: "s", Model: "poisson", Streams: 4, RatePPS: 1000, Zipf: 1}}}
	per, err = skewed.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Weights 1, 1/2, 1/3, 1/4 normalized by 25/12.
	want := []float64{480, 240, 160, 120}
	for i, ts := range per {
		if math.Abs(ts.Rate()-want[i]) > 1e-9 {
			t.Fatalf("zipf=1 stream %d rate %v, want %v", i, ts.Rate(), want[i])
		}
	}
	for i := 1; i < len(per); i++ {
		if per[i].Rate() >= per[i-1].Rate() {
			t.Fatal("zipf split must be strictly decreasing in stream index")
		}
	}
}

// TestSingleStreamZipf pins the n=1 boundary: with one stream the Zipf
// exponent is irrelevant and the stream carries the whole class rate.
func TestSingleStreamZipf(t *testing.T) {
	for _, s := range []float64{0, 1, 2.5, 10} {
		spec := Spec{Classes: []Class{{Name: "one", Model: "poisson", Streams: 1, RatePPS: 777, Zipf: s}}}
		per, err := spec.Generate()
		if err != nil {
			t.Fatalf("zipf=%v: %v", s, err)
		}
		if len(per) != 1 || per[0].Rate() != 777 {
			t.Fatalf("zipf=%v: single stream got rate %v, want the full 777", s, per[0].Rate())
		}
	}
}

func TestGenerateOnOffWrapping(t *testing.T) {
	spec := Spec{Classes: []Class{{
		Name: "bursty", Model: "poisson", Streams: 2, RatePPS: 800,
		OnUS: 10000, OffUS: 30000,
	}}}
	per, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range per {
		oo, ok := ts.(traffic.OnOff)
		if !ok {
			t.Fatalf("stream spec %T, want traffic.OnOff", ts)
		}
		// Long-run rate stays on target (400 each); the base is scaled
		// up by the inverse duty cycle (×4).
		if math.Abs(oo.Rate()-400) > 1e-9 {
			t.Fatalf("modulated long-run rate %v, want 400", oo.Rate())
		}
		if math.Abs(oo.Base.Rate()-1600) > 1e-9 {
			t.Fatalf("base rate %v, want 1600 (inverse duty cycle)", oo.Base.Rate())
		}
	}
}

func TestZipfWeightsNormalized(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 2} {
		w := zipfWeights(s, 16)
		sum := 0.0
		for _, x := range w {
			sum += x
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("s=%v: weights sum %v", s, sum)
		}
	}
}

// TestGenerateDrawAllocationFree pins the generator's per-packet hot
// path: once built, drawing arrivals from generated processes (Zipf
// Poisson, batch, ON/OFF-wrapped CBR) allocates nothing. The benchgate
// tracks the same property as BenchmarkWorkloadSpecPerPacket; this
// enforces it in the plain test suite.
func TestGenerateDrawAllocationFree(t *testing.T) {
	s, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	per, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]traffic.Process, len(per))
	for i, sp := range per {
		procs[i] = sp.Build(des.Stream(1, "arrivals-"+strconv.Itoa(i)))
	}
	var sink des.Time
	allocs := testing.AllocsPerRun(200, func() {
		for _, p := range procs {
			d, _ := p.Next()
			sink += d
		}
	})
	if allocs != 0 {
		t.Errorf("drawing arrivals allocates %.1f per round, want 0", allocs)
	}
	_ = sink
}
