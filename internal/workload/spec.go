package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"affinity/internal/des"
	"affinity/internal/traffic"
)

// Spec is a declarative, file-loadable description of an
// Internet-realistic offered load: named client classes, each spreading
// an aggregate packet rate across a set of streams with Zipf-skewed
// popularity and optional ON/OFF burst modulation. Jain's DEC-TR-592
// measurements motivate the shape: destination-address traffic is
// heavily skewed with strong temporal reuse, which is exactly the
// regime where cache-affinity scheduling has the most state to exploit.
//
// A Spec deterministically expands (Generate) into one traffic.Spec per
// stream, so the DES runner and the live goroutine backend — which both
// build per-stream processes from seed-derived RNG substreams — consume
// bit-identical arrival sequences from it.
type Spec struct {
	// Name labels the workload in output; optional.
	Name string `json:"name,omitempty"`
	// Classes are expanded in declaration order: class 0's streams get
	// the lowest stream ids.
	Classes []Class `json:"classes"`
}

// Class is one client population sharing a traffic model.
type Class struct {
	// Name labels the class; must be non-empty and unique within a Spec.
	Name string `json:"name"`
	// Model selects the per-stream arrival process: "poisson", "cbr",
	// "batch", or "train" (see internal/traffic).
	Model string `json:"model"`
	// Streams is how many streams the class contributes (≥ 1).
	Streams int `json:"streams"`
	// RatePPS is the class's aggregate packet rate, split across its
	// streams by the Zipf weights.
	RatePPS float64 `json:"rate_pps"`

	// MeanBurst is the batch model's mean burst size (packets/event);
	// ignored by other models.
	MeanBurst float64 `json:"mean_burst,omitempty"`
	// MeanTrainLen and IntraGapUS are the train model's mean train
	// length and intra-train gap (µs); ignored by other models.
	MeanTrainLen float64 `json:"mean_train_len,omitempty"`
	IntraGapUS   float64 `json:"intra_gap_us,omitempty"`

	// Zipf is the popularity exponent s ≥ 0: stream i of the class
	// carries weight (i+1)^-s, so s = 0 is a uniform split and larger s
	// concentrates the class rate on its first streams. The aggregate
	// class rate is preserved at every s.
	Zipf float64 `json:"zipf,omitempty"`

	// OnUS/OffUS, when OffUS > 0, modulate every stream of the class
	// with exponential ON/OFF periods of these means (µs). The per-
	// stream base rate is scaled up by the inverse duty cycle so the
	// class's long-run rate stays RatePPS.
	OnUS  float64 `json:"on_us,omitempty"`
	OffUS float64 `json:"off_us,omitempty"`
}

// Parse decodes a JSON workload spec. Unknown fields are rejected so a
// typo in a spec file fails loudly instead of silently dropping a knob.
// Parse validates: a returned *Spec is ready to Generate.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: parsing spec: %w", err)
	}
	// A second document in the same file is a malformed spec, not data
	// to ignore.
	if dec.More() {
		return nil, fmt.Errorf("workload: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// String renders the spec as canonical indented JSON; Parse(String())
// round-trips to an identical Spec.
func (s *Spec) String() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // non-finite floats only; unreachable for parsed specs
		return fmt.Sprintf("workload.Spec(unencodable: %v)", err)
	}
	return string(b)
}

// TotalStreams is the stream count the spec expands to.
func (s *Spec) TotalStreams() int {
	n := 0
	for _, c := range s.Classes {
		n += c.Streams
	}
	return n
}

// TotalRate is the aggregate offered packet rate across all classes.
func (s *Spec) TotalRate() float64 {
	r := 0.0
	for _, c := range s.Classes {
		r += c.RatePPS
	}
	return r
}

// Validate reports a descriptive error for a structurally invalid spec
// or one whose expansion would produce an invalid per-stream traffic
// spec (e.g. a train model whose lowest-rate stream is infeasible).
func (s *Spec) Validate() error {
	if len(s.Classes) == 0 {
		return fmt.Errorf("workload: spec has no classes")
	}
	seen := make(map[string]bool, len(s.Classes))
	for i, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("workload: class %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: duplicate class name %q", c.Name)
		}
		seen[c.Name] = true
		if err := c.validate(); err != nil {
			return err
		}
	}
	// The structural checks above guarantee expansion succeeds except
	// for per-model feasibility, which the traffic layer owns: expand
	// and let every stream's own Validate judge its parameters.
	specs, err := s.generate()
	if err != nil {
		return err
	}
	for i, ts := range specs {
		if err := ts.Validate(); err != nil {
			return fmt.Errorf("workload: stream %d (%s): %w", i, ts, err)
		}
	}
	return nil
}

func (c Class) validate() error {
	switch c.Model {
	case "poisson", "cbr", "batch", "train":
	default:
		return fmt.Errorf("workload: class %q: unknown traffic model %q (want poisson, cbr, batch, or train)", c.Name, c.Model)
	}
	if c.Streams < 1 {
		return fmt.Errorf("workload: class %q: stream count %d must be ≥ 1", c.Name, c.Streams)
	}
	if !(c.RatePPS > 0) || math.IsInf(c.RatePPS, 1) {
		return fmt.Errorf("workload: class %q: rate %v must be a positive finite pkt/s", c.Name, c.RatePPS)
	}
	if c.Zipf < 0 || math.IsInf(c.Zipf, 1) || math.IsNaN(c.Zipf) {
		return fmt.Errorf("workload: class %q: zipf exponent %v must be finite and ≥ 0", c.Name, c.Zipf)
	}
	if c.OnUS < 0 || c.OffUS < 0 || math.IsInf(c.OnUS, 1) || math.IsInf(c.OffUS, 1) ||
		math.IsNaN(c.OnUS) || math.IsNaN(c.OffUS) {
		return fmt.Errorf("workload: class %q: ON/OFF periods %v/%v must be finite and ≥ 0", c.Name, c.OnUS, c.OffUS)
	}
	if c.OffUS > 0 && c.OnUS == 0 {
		return fmt.Errorf("workload: class %q: OFF period %v µs needs a positive ON period", c.Name, c.OffUS)
	}
	return nil
}

// base returns the class's traffic model at the class aggregate rate;
// per-stream expansion retargets it with traffic.WithRate.
func (c Class) base() traffic.Spec {
	switch c.Model {
	case "cbr":
		return traffic.Deterministic{PacketsPerSec: c.RatePPS}
	case "batch":
		return traffic.Batch{PacketsPerSec: c.RatePPS, MeanBurst: c.MeanBurst}
	case "train":
		return traffic.Train{PacketsPerSec: c.RatePPS, MeanTrainLen: c.MeanTrainLen,
			IntraGap: des.Time(c.IntraGapUS)}
	default:
		return traffic.Poisson{PacketsPerSec: c.RatePPS}
	}
}

// zipfWeights returns the normalized popularity weights w_i ∝ (i+1)^-s
// for n streams. s = 0 yields the uniform split; n = 1 always yields
// {1} regardless of s.
func zipfWeights(s float64, n int) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Generate expands the spec into one traffic.Spec per stream, classes
// in declaration order and streams within a class in descending
// popularity. The expansion is a pure function of the spec, so both
// simulation backends derive identical arrival processes from it.
func (s *Spec) Generate() ([]traffic.Spec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s.generate()
}

func (s *Spec) generate() ([]traffic.Spec, error) {
	specs := make([]traffic.Spec, 0, s.TotalStreams())
	for _, c := range s.Classes {
		w := zipfWeights(c.Zipf, c.Streams)
		for i := 0; i < c.Streams; i++ {
			ts, err := traffic.WithRate(c.base(), c.RatePPS*w[i])
			if err != nil {
				return nil, fmt.Errorf("workload: class %q stream %d: %w", c.Name, i, err)
			}
			if c.OffUS > 0 {
				// Scale the base up by the inverse duty cycle so the
				// modulated long-run rate stays on target.
				duty := c.OnUS / (c.OnUS + c.OffUS)
				ts, err = traffic.WithRate(ts, c.RatePPS*w[i]/duty)
				if err != nil {
					return nil, fmt.Errorf("workload: class %q stream %d: %w", c.Name, i, err)
				}
				ts = traffic.OnOff{Base: ts, MeanOn: des.Time(c.OnUS), MeanOff: des.Time(c.OffUS)}
			}
			specs = append(specs, ts)
		}
	}
	return specs, nil
}
