package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"affinity/internal/des"
	"affinity/internal/traffic"
)

// drawAll drains n draws from a process.
func drawAll(p traffic.Process, n int) []TraceRec {
	out := make([]TraceRec, n)
	for i := range out {
		d, b := p.Next()
		out[i] = TraceRec{Delay: d, Batch: b}
	}
	return out
}

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	per := []traffic.Spec{
		traffic.Poisson{PacketsPerSec: 1000},
		traffic.Batch{PacketsPerSec: 500, MeanBurst: 4},
		traffic.Deterministic{PacketsPerSec: 250},
	}
	return Synthesize(per, 42, 100*des.Millisecond)
}

func TestTraceWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("trace did not survive the write/read round trip bit-identically")
	}
	if tr.Hash() != back.Hash() {
		t.Fatal("round-tripped trace hash differs")
	}
}

func TestReadTraceRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "empty"},
		{"bad header", "not a trace\n", "header"},
		{"bad columns", "# affinity-trace v1 streams=1\nwrong,cols\n", "column header"},
		{"bad stream", "# affinity-trace v1 streams=1\nstream,delay_us,batch\n5,1.5,1\n", "stream id"},
		{"bad delay", "# affinity-trace v1 streams=1\nstream,delay_us,batch\n0,-3,1\n", "delay"},
		{"bad batch", "# affinity-trace v1 streams=1\nstream,delay_us,batch\n0,1.5,0\n", "batch"},
		{"short line", "# affinity-trace v1 streams=1\nstream,delay_us,batch\n0,1.5\n", "want stream"},
		{"no events", "# affinity-trace v1 streams=2\nstream,delay_us,batch\n", "no arrival events"},
	}
	for _, c := range cases {
		_, err := ReadTrace(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestRecordIsPassThrough pins that wrapping specs in recorders changes
// nothing about the draws the simulation sees, while capturing them all.
func TestRecordIsPassThrough(t *testing.T) {
	per := []traffic.Spec{
		traffic.Poisson{PacketsPerSec: 1000},
		traffic.Batch{PacketsPerSec: 500, MeanBurst: 4},
	}
	wrapped, tr := Record(per)
	const n = 500
	for i := range per {
		plain := drawAll(per[i].Build(des.NewRNG(7)), n)
		recorded := drawAll(wrapped[i].Build(des.NewRNG(7)), n)
		if !reflect.DeepEqual(plain, recorded) {
			t.Fatalf("stream %d: recording changed the draws", i)
		}
		if !reflect.DeepEqual(tr.Streams[i], recorded) {
			t.Fatalf("stream %d: trace does not hold the recorded draws", i)
		}
	}
	if wrapped[0].Rate() != per[0].Rate() {
		t.Fatal("record wrapper must preserve Rate")
	}
	if !wrapped[0].(interface{ HasSideEffects() bool }).HasSideEffects() {
		t.Fatal("record wrapper must report side effects (cache poisoning otherwise)")
	}
}

func TestReplayReproducesDraws(t *testing.T) {
	tr := sampleTrace(t)
	per := Replay(tr)
	if len(per) != len(tr.Streams) {
		t.Fatalf("replay produced %d specs for %d streams", len(per), len(tr.Streams))
	}
	for i, rs := range per {
		if err := rs.Validate(); err != nil {
			t.Fatal(err)
		}
		got := drawAll(rs.Build(nil), len(tr.Streams[i]))
		if !reflect.DeepEqual(got, tr.Streams[i]) {
			t.Fatalf("stream %d: replay diverged from the trace", i)
		}
	}
}

func TestReplayExhaustionParks(t *testing.T) {
	tr := &Trace{Streams: [][]TraceRec{{{Delay: 10, Batch: 1}}}}
	p := Replay(tr)[0].Build(nil)
	p.Next()
	d, b := p.Next()
	if d != exhaustedDelay || b != 1 {
		t.Fatalf("exhausted replay returned (%v, %d), want the parked sentinel", d, b)
	}
	// And stays parked.
	if d2, _ := p.Next(); d2 != exhaustedDelay {
		t.Fatal("exhausted replay must stay parked")
	}
}

func TestReplayRateIsEmpirical(t *testing.T) {
	// 4 packets over 2000 µs = 2000 pkt/s.
	tr := &Trace{Streams: [][]TraceRec{{
		{Delay: 500, Batch: 1}, {Delay: 500, Batch: 2}, {Delay: 1000, Batch: 1},
	}}}
	got := Replay(tr)[0].Rate()
	if got != 2000 {
		t.Fatalf("replay Rate = %v, want empirical 2000", got)
	}
}

func TestTraceHashDistinguishesContent(t *testing.T) {
	a := &Trace{Streams: [][]TraceRec{{{Delay: 10, Batch: 1}}}}
	b := &Trace{Streams: [][]TraceRec{{{Delay: 10, Batch: 2}}}}
	c := &Trace{Streams: [][]TraceRec{{{Delay: 10.0000001, Batch: 1}}}}
	if a.Hash() == b.Hash() || a.Hash() == c.Hash() {
		t.Fatal("distinct traces share a hash")
	}
	same := &Trace{Streams: [][]TraceRec{{{Delay: 10, Batch: 1}}}}
	if a.Hash() != same.Hash() {
		t.Fatal("equal traces must share a hash")
	}
}

func TestReplayCacheID(t *testing.T) {
	tr := sampleTrace(t)
	per := Replay(tr)
	id0 := per[0].(interface{ CacheID() string }).CacheID()
	id1 := per[1].(interface{ CacheID() string }).CacheID()
	if id0 == id1 {
		t.Fatal("different streams of one trace share a CacheID")
	}
	// Content-addressed: an identical trace loaded separately yields
	// the same identity; a different trace does not.
	var buf bytes.Buffer
	WriteTrace(&buf, tr)
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := Replay(back)[0].(interface{ CacheID() string }).CacheID(); got != id0 {
		t.Fatal("reloaded identical trace changed CacheID")
	}
	other := &Trace{Streams: [][]TraceRec{{{Delay: 1, Batch: 1}}}}
	if got := Replay(other)[0].(interface{ CacheID() string }).CacheID(); got == id0 {
		t.Fatal("different trace shares CacheID")
	}
}

// TestSynthesizeCoversHorizon pins that every synthesized stream's
// cumulative delay passes the horizon (the final draw may overshoot),
// so a replayed run never drains before the recording horizon.
func TestSynthesizeCoversHorizon(t *testing.T) {
	tr := sampleTrace(t)
	for i, recs := range tr.Streams {
		var at des.Time
		for _, r := range recs {
			at += r.Delay
		}
		if at <= 100*des.Millisecond {
			t.Fatalf("stream %d: synthesized span %v ends before the horizon", i, at)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := sampleTrace(t)
	b := sampleTrace(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Synthesize is not deterministic")
	}
	if a.Events() == 0 {
		t.Fatal("empty synthesis")
	}
}
