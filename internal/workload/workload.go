// Package workload models the general non-protocol activity that
// competes with protocol processing for the caches. The paper models it
// with the Singh–Stone–Thiebaut MVS-trace constants (held in
// internal/core); this package adds the scheduling-facing knobs: the
// intensity V — the fraction of full-speed displacement the background
// causes while a processor is not executing protocol code — and the cost
// of preempting it when a packet arrives.
package workload

import "fmt"

// NonProtocol describes the background workload on every processor.
//
// V = 1 is the paper's loaded host; V = 0 is the idle host that yields
// the paper's upper-bound (40–50 %) affinity benefit curves.
type NonProtocol struct {
	// Intensity is V ∈ [0, 1]: the displacing-reference rate of the
	// background workload relative to a fully busy processor.
	Intensity float64
	// PreemptCost is the fixed cost (µs) of preempting the background
	// task when protocol work arrives at a processor it occupies.
	PreemptCost float64
}

// Default returns the paper's loaded-host configuration.
func Default() NonProtocol {
	return NonProtocol{Intensity: 1, PreemptCost: 5}
}

// Idle returns the V = 0 host used for upper-bound curves.
func Idle() NonProtocol {
	return NonProtocol{Intensity: 0, PreemptCost: 0}
}

// WithIntensity returns the default configuration at intensity v. The
// preempt cost scales linearly with v — at intensity v the background
// task occupies an otherwise-idle processor a v fraction of the time,
// so the expected eviction cost a dispatch pays is v·(full cost). That
// keeps the V sweep continuous through 0: WithIntensity(0) is exactly
// Idle() and WithIntensity(ε) charges ε·5 µs, not the full 5.
func WithIntensity(v float64) NonProtocol {
	n := Default()
	n.Intensity = v
	n.PreemptCost *= v
	return n
}

// Validate reports a descriptive error for out-of-range parameters.
func (n NonProtocol) Validate() error {
	if n.Intensity < 0 || n.Intensity > 1 {
		return fmt.Errorf("workload: intensity %v outside [0, 1]", n.Intensity)
	}
	if n.PreemptCost < 0 {
		return fmt.Errorf("workload: negative preempt cost %v", n.PreemptCost)
	}
	return nil
}
