package workload

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzWorkloadSpec fuzzes the spec file surface: Validate must never
// panic on anything the JSON layer decodes (a spec file is user input),
// and every spec Parse accepts must survive the parse → String → parse
// round trip identically — the canonical form is self-describing.
func FuzzWorkloadSpec(f *testing.F) {
	f.Add([]byte(sampleSpec))
	f.Add([]byte(`{"classes":[{"name":"a","model":"poisson","streams":1,"rate_pps":10}]}`))
	f.Add([]byte(`{"classes":[{"name":"t","model":"train","streams":2,"rate_pps":900,"mean_train_len":5,"intra_gap_us":40,"zipf":1.5}]}`))
	f.Add([]byte(`{"classes":[{"name":"b","model":"batch","streams":3,"rate_pps":100,"mean_burst":1,"on_us":1000,"off_us":1}]}`))
	f.Add([]byte(`{"classes":[{"name":"z","model":"cbr","streams":1,"rate_pps":1e308,"zipf":300}]}`))
	f.Add([]byte(`{"classes":[{"name":"a","model":"poisson","streams":0,"rate_pps":-1,"zipf":-5}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Validate must not panic even on specs that skipped Parse's
		// validation (lenient decode straight into the struct).
		var raw Spec
		if json.Unmarshal(data, &raw) == nil {
			_ = raw.Validate()    // must not panic
			_, _ = raw.Generate() // must not panic
		}

		s, err := Parse(data)
		if err != nil {
			return
		}
		// Parse implies valid, and valid specs must generate.
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a spec Validate rejects: %v", err)
		}
		per, err := s.Generate()
		if err != nil {
			t.Fatalf("valid spec failed to generate: %v", err)
		}
		if len(per) != s.TotalStreams() {
			t.Fatalf("generated %d streams, want %d", len(per), s.TotalStreams())
		}
		again, err := Parse([]byte(s.String()))
		if err != nil {
			t.Fatalf("re-parse of canonical form failed: %v", err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip changed the spec:\n%s\nvs\n%s", s, again)
		}
	})
}
