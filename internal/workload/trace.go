package workload

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"
	"strings"

	"affinity/internal/des"
	"affinity/internal/traffic"
)

// Trace is a recorded arrival history: for each stream, the exact
// (delay, batch) sequence its arrival process produced. Replaying a
// trace substitutes these draws for the process's RNG, so a captured
// run re-executes bit-identically — on either backend — and different
// policies can be contrasted on the very same arrivals.
type Trace struct {
	Streams [][]TraceRec
	// Rates holds each stream's nominal offered rate (pkt/s) at capture
	// time, so a replayed run reports the same OfferedRate as the
	// original bit-for-bit. Nil (hand-written traces) falls back to the
	// empirical rate over the recorded span.
	Rates []float64
}

// TraceRec is one arrival event: the delay since the stream's previous
// event and the number of packets arriving together.
type TraceRec struct {
	Delay des.Time
	Batch int
}

// Events returns the total number of recorded arrival events.
func (t *Trace) Events() int {
	n := 0
	for _, s := range t.Streams {
		n += len(s)
	}
	return n
}

// Hash returns a stable FNV-1a content hash of the trace, used as the
// cache identity of replay runs (a pointer-derived key could alias
// after the pointed-to trace is collected and the address reused).
func (t *Trace) Hash() string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(u uint64) {
		for i := range buf {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(len(t.Streams)))
	put(uint64(len(t.Rates)))
	for _, r := range t.Rates {
		put(math.Float64bits(r))
	}
	for _, s := range t.Streams {
		put(uint64(len(s)))
		for _, r := range s {
			put(math.Float64bits(float64(r.Delay)))
			put(uint64(r.Batch))
		}
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// traceHeader is the trace file magic; the version suffix gates format
// evolution.
const traceHeader = "# affinity-trace v1"

// WriteTrace writes the trace in its compact CSV format:
//
//	# affinity-trace v1 streams=N
//	stream,delay_us,batch
//	0,512.25,1
//	...
//
// Delays use Go's shortest round-trippable float formatting, so a
// written trace reads back bit-identical.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s streams=%d\n", traceHeader, len(t.Streams))
	if t.Rates != nil {
		bw.WriteString("# rates_pps=")
		for i, r := range t.Rates {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.FormatFloat(r, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, "stream,delay_us,batch")
	for s, recs := range t.Streams {
		for _, r := range recs {
			bw.WriteString(strconv.Itoa(s))
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(float64(r.Delay), 'g', -1, 64))
			bw.WriteByte(',')
			bw.WriteString(strconv.Itoa(r.Batch))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("workload: empty trace file")
	}
	header := sc.Text()
	var streams int
	if _, err := fmt.Sscanf(header, traceHeader+" streams=%d", &streams); err != nil {
		return nil, fmt.Errorf("workload: bad trace header %q (want %q)", header, traceHeader+" streams=N")
	}
	if streams <= 0 || streams > 1<<20 {
		return nil, fmt.Errorf("workload: implausible trace stream count %d", streams)
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("workload: missing trace column header")
	}
	t := &Trace{Streams: make([][]TraceRec, streams)}
	line := 2
	if rates, ok := strings.CutPrefix(sc.Text(), "# rates_pps="); ok {
		parts := strings.Split(rates, ",")
		if len(parts) != streams {
			return nil, fmt.Errorf("workload: %d rates for %d streams", len(parts), streams)
		}
		t.Rates = make([]float64, streams)
		for i, p := range parts {
			r, err := strconv.ParseFloat(p, 64)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("workload: bad nominal rate %q", p)
			}
			t.Rates[i] = r
		}
		if !sc.Scan() {
			return nil, fmt.Errorf("workload: missing trace column header")
		}
		line++
	}
	if sc.Text() != "stream,delay_us,batch" {
		return nil, fmt.Errorf("workload: missing trace column header")
	}
	for sc.Scan() {
		line++
		row := sc.Text()
		if row == "" {
			continue
		}
		f1 := strings.IndexByte(row, ',')
		f2 := -1
		if f1 >= 0 {
			f2 = strings.IndexByte(row[f1+1:], ',')
		}
		if f1 < 0 || f2 < 0 {
			return nil, fmt.Errorf("workload: trace line %d: want stream,delay_us,batch", line)
		}
		f2 += f1 + 1
		s, err := strconv.Atoi(row[:f1])
		if err != nil || s < 0 || s >= streams {
			return nil, fmt.Errorf("workload: trace line %d: bad stream id %q", line, row[:f1])
		}
		delay, err := strconv.ParseFloat(row[f1+1:f2], 64)
		if err != nil || delay < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad delay %q", line, row[f1+1:f2])
		}
		batch, err := strconv.Atoi(row[f2+1:])
		if err != nil || batch < 1 {
			return nil, fmt.Errorf("workload: trace line %d: bad batch %q", line, row[f2+1:])
		}
		t.Streams[s] = append(t.Streams[s], TraceRec{Delay: des.Time(delay), Batch: batch})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if t.Events() == 0 {
		return nil, fmt.Errorf("workload: trace has no arrival events")
	}
	return t, nil
}

// Record wraps each per-stream spec in a tee that appends every draw to
// the returned Trace as the simulation makes it. Recording is
// pass-through — a recorded run produces bit-identical Results — but it
// mutates the shared Trace, so recorded runs must never be served from
// the memoization cache (the wrapper reports HasSideEffects to
// sim.CacheKey).
func Record(per []traffic.Spec) ([]traffic.Spec, *Trace) {
	t := &Trace{Streams: make([][]TraceRec, len(per)), Rates: make([]float64, len(per))}
	wrapped := make([]traffic.Spec, len(per))
	for i, s := range per {
		t.Rates[i] = s.Rate()
		wrapped[i] = recordSpec{inner: s, trace: t, stream: i}
	}
	return wrapped, t
}

type recordSpec struct {
	inner  traffic.Spec
	trace  *Trace
	stream int
}

func (r recordSpec) Rate() float64   { return r.inner.Rate() }
func (r recordSpec) Validate() error { return r.inner.Validate() }
func (r recordSpec) String() string  { return fmt.Sprintf("record(%s)", r.inner) }

// HasSideEffects marks recording runs as uncacheable for sim.CacheKey.
func (r recordSpec) HasSideEffects() bool { return true }

func (r recordSpec) Build(rng *des.RNG) traffic.Process {
	return &recordProc{inner: r.inner.Build(rng), trace: r.trace, stream: r.stream}
}

type recordProc struct {
	inner  traffic.Process
	trace  *Trace
	stream int
}

func (p *recordProc) Next() (des.Time, int) {
	d, b := p.inner.Next()
	p.trace.Streams[p.stream] = append(p.trace.Streams[p.stream], TraceRec{Delay: d, Batch: b})
	return d, b
}

// Replay returns one replay spec per recorded stream. Each replays its
// stream's recorded draws verbatim; when a stream's records run out the
// process parks itself far beyond any plausible run horizon, so a
// replayed run sees exactly the recorded arrivals and nothing after.
func Replay(t *Trace) []traffic.Spec {
	per := make([]traffic.Spec, len(t.Streams))
	hash := t.Hash()
	for i := range per {
		per[i] = replaySpec{trace: t, hash: hash, stream: i}
	}
	return per
}

// exhaustedDelay parks a drained replay stream ~31 000 simulated years
// out: finite (heap-safe) but unreachable by any run horizon.
const exhaustedDelay = des.Time(1e18)

type replaySpec struct {
	trace  *Trace
	hash   string
	stream int
}

// Rate implements traffic.Spec: the nominal rate captured with the
// trace when present (so replayed runs report the original OfferedRate
// exactly), else the stream's empirical packet rate over its recorded
// span (0 for an empty stream).
func (r replaySpec) Rate() float64 {
	if r.trace.Rates != nil {
		return r.trace.Rates[r.stream]
	}
	var elapsed des.Time
	packets := 0
	for _, rec := range r.trace.Streams[r.stream] {
		elapsed += rec.Delay
		packets += rec.Batch
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(packets) / elapsed.Seconds()
}

func (r replaySpec) String() string {
	return fmt.Sprintf("replay(#%s stream %d, %d events)", r.hash, r.stream, len(r.trace.Streams[r.stream]))
}

// Validate implements traffic.Spec.
func (r replaySpec) Validate() error {
	if r.trace == nil || r.stream < 0 || r.stream >= len(r.trace.Streams) {
		return fmt.Errorf("workload: replay stream %d outside trace", r.stream)
	}
	return nil
}

// CacheID gives replay runs a content-addressed cache identity (see
// Trace.Hash); sim.CacheKey uses it instead of rendering the struct,
// whose trace pointer would otherwise leak a reusable address into the
// key.
func (r replaySpec) CacheID() string {
	return fmt.Sprintf("workload.replay(#%s stream %d)", r.hash, r.stream)
}

func (r replaySpec) Build(*des.RNG) traffic.Process {
	if err := r.Validate(); err != nil {
		panic(err)
	}
	return &replayProc{recs: r.trace.Streams[r.stream]}
}

type replayProc struct {
	recs []TraceRec
	next int
}

func (p *replayProc) Next() (des.Time, int) {
	if p.next >= len(p.recs) {
		return exhaustedDelay, 1
	}
	rec := p.recs[p.next]
	p.next++
	return rec.Delay, rec.Batch
}

// Synthesize draws a trace directly from per-stream specs without
// running a simulation: each stream's process is built from the same
// seed-derived substream the simulation backends use ("arrivals-<i>",
// pinned by a cross-check test in internal/sim), and drawn until its
// cumulative delay passes the horizon. Replaying the result therefore
// reproduces exactly the arrivals a sim.Run with these specs and this
// seed would generate — which lets experiments contrast policies on
// identical arrivals without a capture run.
func Synthesize(per []traffic.Spec, seed int64, horizon des.Time) *Trace {
	t := &Trace{Streams: make([][]TraceRec, len(per)), Rates: make([]float64, len(per))}
	for i, s := range per {
		t.Rates[i] = s.Rate()
		proc := s.Build(des.Stream(seed, "arrivals-"+strconv.Itoa(i)))
		var at des.Time
		for at <= horizon {
			d, b := proc.Next()
			t.Streams[i] = append(t.Streams[i], TraceRec{Delay: d, Batch: b})
			at += d
		}
	}
	return t
}
