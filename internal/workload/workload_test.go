package workload

import "testing"

func TestDefaults(t *testing.T) {
	d := Default()
	if d.Intensity != 1 {
		t.Fatalf("Default intensity = %v, want 1", d.Intensity)
	}
	if d.PreemptCost <= 0 {
		t.Fatal("Default preempt cost must be positive")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIdle(t *testing.T) {
	i := Idle()
	if i.Intensity != 0 || i.PreemptCost != 0 {
		t.Fatalf("Idle = %+v, want zero intensity and preempt cost", i)
	}
	if err := i.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithIntensity(t *testing.T) {
	half := WithIntensity(0.5)
	if half.Intensity != 0.5 {
		t.Fatalf("Intensity = %v", half.Intensity)
	}
	if half.PreemptCost != Default().PreemptCost {
		t.Fatal("non-zero intensity must keep the default preempt cost")
	}
	zero := WithIntensity(0)
	if zero.PreemptCost != 0 {
		t.Fatal("V=0 host has nothing to preempt")
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	bad := []NonProtocol{
		{Intensity: -0.1},
		{Intensity: 1.1},
		{Intensity: 0.5, PreemptCost: -1},
	}
	for _, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("invalid workload accepted: %+v", n)
		}
	}
}
