package workload

import "testing"

func TestDefaults(t *testing.T) {
	d := Default()
	if d.Intensity != 1 {
		t.Fatalf("Default intensity = %v, want 1", d.Intensity)
	}
	if d.PreemptCost <= 0 {
		t.Fatal("Default preempt cost must be positive")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIdle(t *testing.T) {
	i := Idle()
	if i.Intensity != 0 || i.PreemptCost != 0 {
		t.Fatalf("Idle = %+v, want zero intensity and preempt cost", i)
	}
	if err := i.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithIntensity(t *testing.T) {
	half := WithIntensity(0.5)
	if half.Intensity != 0.5 {
		t.Fatalf("Intensity = %v", half.Intensity)
	}
	if half.PreemptCost != Default().PreemptCost*0.5 {
		t.Fatalf("PreemptCost = %v, want the default scaled by intensity", half.PreemptCost)
	}
	if full := WithIntensity(1); full != Default() {
		t.Fatalf("WithIntensity(1) = %+v, want Default()", full)
	}
	if zero := WithIntensity(0); zero != Idle() {
		t.Fatalf("WithIntensity(0) = %+v, want Idle()", zero)
	}
}

// TestWithIntensityContinuousAtZero pins the bugfix: the preempt cost
// must not jump from 0 to the full 5 µs the instant V leaves 0, or a
// fine-grained intensity sweep inherits a spurious discontinuity.
func TestWithIntensityContinuousAtZero(t *testing.T) {
	eps := WithIntensity(1e-9)
	if eps.PreemptCost >= Default().PreemptCost/1e6 {
		t.Fatalf("PreemptCost(1e-9) = %v: discontinuous at V=0", eps.PreemptCost)
	}
	// Monotone and continuous across the whole sweep: cost strictly
	// increases with V and never exceeds the default.
	prev := WithIntensity(0).PreemptCost
	for _, v := range []float64{1e-6, 0.01, 0.25, 0.5, 0.75, 1} {
		c := WithIntensity(v).PreemptCost
		if c <= prev || c > Default().PreemptCost {
			t.Fatalf("PreemptCost(%v) = %v not monotone within (0, default]", v, c)
		}
		prev = c
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	bad := []NonProtocol{
		{Intensity: -0.1},
		{Intensity: 1.1},
		{Intensity: 0.5, PreemptCost: -1},
	}
	for _, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("invalid workload accepted: %+v", n)
		}
	}
}
