package des

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. Independent streams for arrivals,
// service jitter, stream placement etc. keep variance-reduction intact:
// changing one consumer does not perturb another's draws.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Stream derives an independent named substream from a base seed. The
// derivation hashes the name so that adding streams never re-seeds
// existing ones.
func Stream(base int64, name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return NewRNG(base ^ int64(h.Sum64()))
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Exp returns an exponential draw with the given mean. A non-positive
// mean returns 0, which lets callers express "immediate" cleanly.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// ExpTime returns an exponential Time with the given mean.
func (g *RNG) ExpTime(mean Time) Time { return Time(g.Exp(float64(mean))) }

// Normal returns a normal draw with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// Geometric returns a draw from a geometric distribution with the given
// mean (support 1, 2, 3, …). Used for packet-train lengths and burst
// sizes: a train of mean length m ends after each packet with probability
// 1/m. A mean at or below 1 always returns 1.
func (g *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := g.r.Float64()
	// Inverse transform: smallest k ≥ 1 with 1-(1-p)^k ≥ u.
	k := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Zipf returns a draw in [0, n) with Zipf(s) popularity, used for skewed
// stream selection. s must be > 1.
func (g *RNG) Zipf(s float64, n int) int {
	z := rand.NewZipf(g.r, s, 1, uint64(n-1))
	return int(z.Uint64())
}
