// Package des provides a small deterministic discrete-event simulation
// engine: a simulation clock, a time-ordered event list, and named
// pseudo-random number streams.
//
// Time is measured in microseconds throughout, matching the natural scale
// of the protocol-processing study (packet service times are a few hundred
// microseconds). Events scheduled for the same instant fire in the order
// they were scheduled, which keeps runs reproducible.
//
// The engine is allocation-free in steady state: event nodes are pooled
// on a free list and recycled as soon as they fire or are cancelled, and
// the pending-event list is an inlined 4-ary indexed heap (no interface
// boxing, no container/heap round trips). Handlers that need per-event
// context should use ScheduleArg with a non-capturing function and a
// pooled argument; Schedule with a freshly captured closure still costs
// one closure allocation in the caller.
package des

import (
	"fmt"
)

// Time is a simulation timestamp or duration in microseconds.
type Time float64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1e3
	Second      Time = 1e6
)

// Seconds converts t to seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Millis converts t to milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e3 }

func (t Time) String() string {
	// Pick the unit by magnitude so negative durations format
	// symmetrically (-1500 is -1.500ms, not -1500.000µs).
	abs := t
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fµs", float64(t))
	}
}

// Handler is the action run when an event fires.
type Handler func()

// ArgHandler is the action run when an event scheduled with ScheduleArg
// fires. Using a non-capturing function (top-level function or method
// expression) with a pooled argument keeps the schedule path free of
// closure allocations.
type ArgHandler func(arg any)

// event is a scheduled handler. seq breaks ties so that simultaneous
// events fire in scheduling order; it also serves as the node's
// generation: nodes are recycled through the simulator's free list, and
// an EventRef only remains valid while its captured seq matches.
type event struct {
	at    Time
	seq   uint64
	index int32 // heap index, -1 once popped or cancelled
	fn    ArgHandler
	arg   any
}

// EventRef identifies a scheduled event so it can be cancelled. The
// zero EventRef is valid and reports Cancelled.
type EventRef struct {
	ev  *event
	seq uint64
}

// Cancelled reports whether the event was cancelled or has already fired.
func (r EventRef) Cancelled() bool {
	return r.ev == nil || r.ev.index < 0 || r.ev.seq != r.seq
}

// callHandler adapts a plain Handler to the ArgHandler calling
// convention. Handler values are pointer-shaped, so boxing one into the
// event's arg field does not allocate.
func callHandler(arg any) { arg.(Handler)() }

// Simulator is a single-threaded discrete-event simulator.
// The zero value is not usable; call NewSimulator.
type Simulator struct {
	now     Time
	seq     uint64
	stopped bool
	fired   uint64

	// events is a 4-ary min-heap ordered by (at, seq), index-tracked so
	// Cancel can remove interior nodes. A 4-ary layout halves the tree
	// depth of the binary heap and keeps children of a node on one cache
	// line, which measurably speeds the sift in event-dense runs.
	events     []*event
	maxPending int

	// free is the recycled-node pool. Nodes move heap→free on fire and
	// cancel, free→heap on schedule, so a steady-state run stops
	// allocating once the pool covers its peak pending count.
	free []*event
}

// NewSimulator returns a simulator with the clock at zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return len(s.events) }

// Scheduled returns the number of events ever scheduled (fired,
// pending or cancelled).
func (s *Simulator) Scheduled() uint64 { return s.seq }

// MaxPending returns the event heap's high-water mark — the engine's
// own contribution to the observability gauges.
func (s *Simulator) MaxPending() int { return s.maxPending }

// PoolFree returns the number of recycled event nodes currently waiting
// on the free list (diagnostic; steady state holds it near MaxPending).
func (s *Simulator) PoolFree() int { return len(s.free) }

// Schedule runs h after delay. A negative delay is an error in the caller;
// it panics to surface the bug immediately.
func (s *Simulator) Schedule(delay Time, h Handler) EventRef {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, h)
}

// ScheduleAt runs h at absolute time at, which must not precede the clock.
func (s *Simulator) ScheduleAt(at Time, h Handler) EventRef {
	if h == nil {
		panic("des: nil handler")
	}
	return s.ScheduleArgAt(at, callHandler, h)
}

// ScheduleArg runs fn(arg) after delay. With a non-capturing fn and a
// pointer-shaped arg the call performs no allocation in steady state —
// this is the hot-path variant of Schedule.
func (s *Simulator) ScheduleArg(delay Time, fn ArgHandler, arg any) EventRef {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.ScheduleArgAt(s.now+delay, fn, arg)
}

// ScheduleArgAt runs fn(arg) at absolute time at, which must not precede
// the clock.
func (s *Simulator) ScheduleArgAt(at Time, fn ArgHandler, arg any) EventRef {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("des: nil handler")
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at, ev.seq, ev.fn, ev.arg = at, s.seq, fn, arg
	s.seq++
	ev.index = int32(len(s.events))
	s.events = append(s.events, ev)
	s.siftUp(int(ev.index))
	if len(s.events) > s.maxPending {
		s.maxPending = len(s.events)
	}
	return EventRef{ev: ev, seq: ev.seq}
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// or was already cancelled is a no-op.
func (s *Simulator) Cancel(r EventRef) {
	if r.Cancelled() {
		return
	}
	s.remove(int(r.ev.index))
	s.release(r.ev)
}

// release recycles a node onto the free list.
func (s *Simulator) release(ev *event) {
	ev.index = -1
	ev.fn, ev.arg = nil, nil
	s.free = append(s.free, ev)
}

// less orders events by (time, sequence).
func (s *Simulator) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the heap property from leaf i toward the root.
func (s *Simulator) siftUp(i int) {
	ev := s.events[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := s.events[parent]
		if !s.less(ev, p) {
			break
		}
		s.events[i] = p
		p.index = int32(i)
		i = parent
	}
	s.events[i] = ev
	ev.index = int32(i)
}

// siftDown restores the heap property from node i toward the leaves.
func (s *Simulator) siftDown(i int) {
	n := len(s.events)
	ev := s.events[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		// Find the smallest of up to four children.
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.less(s.events[c], s.events[min]) {
				min = c
			}
		}
		child := s.events[min]
		if !s.less(child, ev) {
			break
		}
		s.events[i] = child
		child.index = int32(i)
		i = min
	}
	s.events[i] = ev
	ev.index = int32(i)
}

// remove deletes the node at heap index i.
func (s *Simulator) remove(i int) {
	n := len(s.events) - 1
	moved := s.events[n]
	s.events[n] = nil
	s.events = s.events[:n]
	if i == n {
		return
	}
	s.events[i] = moved
	moved.index = int32(i)
	s.siftDown(i)
	s.siftUp(int(moved.index))
}

// Stop makes Run return after the currently executing handler.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the next event, advancing the clock, and reports whether an
// event was available.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 || s.stopped {
		return false
	}
	ev := s.events[0]
	s.remove(0)
	s.now = ev.at
	s.fired++
	fn, arg := ev.fn, ev.arg
	// Recycle before calling: fn/arg are already extracted, and the
	// handler may schedule (and thus reuse the node) immediately. Any
	// outstanding EventRef keeps the old seq and correctly reports
	// Cancelled.
	s.release(ev)
	fn(arg)
	return true
}

// RunUntil fires events until the event list is empty, Stop is called, or
// the next event lies beyond the horizon. The clock is left at the horizon
// if the simulation ran out the full interval, or at the last event time
// otherwise.
func (s *Simulator) RunUntil(horizon Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > horizon {
			s.now = horizon
			return
		}
		s.Step()
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}

// Run fires events until none remain or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for s.Step() {
	}
}
