// Package des provides a small deterministic discrete-event simulation
// engine: a simulation clock, a time-ordered event list, and named
// pseudo-random number streams.
//
// Time is measured in microseconds throughout, matching the natural scale
// of the protocol-processing study (packet service times are a few hundred
// microseconds). Events scheduled for the same instant fire in the order
// they were scheduled, which keeps runs reproducible.
package des

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp or duration in microseconds.
type Time float64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1e3
	Second      Time = 1e6
)

// Seconds converts t to seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Millis converts t to milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e3 }

func (t Time) String() string {
	// Pick the unit by magnitude so negative durations format
	// symmetrically (-1500 is -1.500ms, not -1500.000µs).
	abs := t
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fµs", float64(t))
	}
}

// Handler is the action run when an event fires.
type Handler func()

// event is a scheduled handler. seq breaks ties so that simultaneous
// events fire in scheduling order.
type event struct {
	at      Time
	seq     uint64
	index   int // heap index, -1 once popped or cancelled
	handler Handler
}

// EventRef identifies a scheduled event so it can be cancelled.
type EventRef struct{ ev *event }

// Cancelled reports whether the event was cancelled or has already fired.
func (r EventRef) Cancelled() bool { return r.ev == nil || r.ev.index < 0 }

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator is a single-threaded discrete-event simulator.
// The zero value is not usable; call NewSimulator.
type Simulator struct {
	now        Time
	seq        uint64
	events     eventHeap
	stopped    bool
	fired      uint64
	maxPending int
}

// NewSimulator returns a simulator with the clock at zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return len(s.events) }

// Scheduled returns the number of events ever scheduled (fired,
// pending or cancelled).
func (s *Simulator) Scheduled() uint64 { return s.seq }

// MaxPending returns the event heap's high-water mark — the engine's
// own contribution to the observability gauges.
func (s *Simulator) MaxPending() int { return s.maxPending }

// Schedule runs h after delay. A negative delay is an error in the caller;
// it panics to surface the bug immediately.
func (s *Simulator) Schedule(delay Time, h Handler) EventRef {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, h)
}

// ScheduleAt runs h at absolute time at, which must not precede the clock.
func (s *Simulator) ScheduleAt(at Time, h Handler) EventRef {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, s.now))
	}
	if h == nil {
		panic("des: nil handler")
	}
	ev := &event{at: at, seq: s.seq, handler: h}
	s.seq++
	heap.Push(&s.events, ev)
	if len(s.events) > s.maxPending {
		s.maxPending = len(s.events)
	}
	return EventRef{ev: ev}
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// or was already cancelled is a no-op.
func (s *Simulator) Cancel(r EventRef) {
	if r.ev == nil || r.ev.index < 0 {
		return
	}
	heap.Remove(&s.events, r.ev.index)
	r.ev.index = -1
	r.ev.handler = nil
}

// Stop makes Run return after the currently executing handler.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the next event, advancing the clock, and reports whether an
// event was available.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 || s.stopped {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	s.now = ev.at
	s.fired++
	ev.handler()
	return true
}

// RunUntil fires events until the event list is empty, Stop is called, or
// the next event lies beyond the horizon. The clock is left at the horizon
// if the simulation ran out the full interval, or at the last event time
// otherwise.
func (s *Simulator) RunUntil(horizon Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > horizon {
			s.now = horizon
			return
		}
		s.Step()
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
}

// Run fires events until none remain or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for s.Step() {
	}
}
