package des

import (
	"testing"
)

// FuzzEventOrdering drives the simulator through arbitrary
// schedule/cancel/step/run interleavings decoded from the fuzz input
// and checks the engine's core guarantees after every operation:
//
//   - events fire in nondecreasing time, ties broken by scheduling
//     order (the (time, seq) total order the runs' determinism rests on)
//   - a cancelled event never fires, and firing marks the ref Cancelled
//   - no event fires twice, none is lost
//   - the 4-ary heap keeps its ordering invariant and index tracking
//   - pooled nodes stay consistent: heap size + free size covers every
//     node ever allocated, recycled nodes carry index -1
func FuzzEventOrdering(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 20, 0, 5, 2, 2, 2})
	f.Add([]byte{0, 10, 0, 10, 0, 10, 1, 1, 3, 255})
	f.Add([]byte{0, 0, 0, 0, 2, 0, 1, 1, 2, 2, 3, 40, 0, 7, 2})
	seed := make([]byte, 0, 96)
	for i := 0; i < 32; i++ {
		seed = append(seed, byte(i%4), byte(i*37), byte(i))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewSimulator()

		type tracked struct {
			ref       EventRef
			at        Time
			seq       uint64
			cancelled bool
			fired     bool
		}
		var all []*tracked
		live := func() []*tracked {
			var l []*tracked
			for _, tr := range all {
				if !tr.fired && !tr.cancelled {
					l = append(l, tr)
				}
			}
			return l
		}

		var lastAt Time
		var lastSeq uint64
		fired := 0
		onFire := func(tr *tracked) {
			if tr.cancelled {
				t.Fatalf("cancelled event (at=%v seq=%d) fired", tr.at, tr.seq)
			}
			if tr.fired {
				t.Fatalf("event (at=%v seq=%d) fired twice", tr.at, tr.seq)
			}
			tr.fired = true
			fired++
			if s.Now() != tr.at {
				t.Fatalf("fired at clock %v, scheduled for %v", s.Now(), tr.at)
			}
			if tr.at < lastAt || (tr.at == lastAt && tr.seq < lastSeq) {
				t.Fatalf("order violation: (%v, %d) after (%v, %d)",
					tr.at, tr.seq, lastAt, lastSeq)
			}
			lastAt, lastSeq = tr.at, tr.seq
		}

		checkHeap := func() {
			for i, ev := range s.events {
				if int(ev.index) != i {
					t.Fatalf("heap node %d carries index %d", i, ev.index)
				}
				if i > 0 {
					p := s.events[(i-1)>>2]
					if ev.at < p.at || (ev.at == p.at && ev.seq < p.seq) {
						t.Fatalf("heap violation at %d: child (%v,%d) < parent (%v,%d)",
							i, ev.at, ev.seq, p.at, p.seq)
					}
				}
			}
			for _, ev := range s.free {
				if ev.index != -1 {
					t.Fatalf("free node carries heap index %d", ev.index)
				}
				if ev.fn != nil || ev.arg != nil {
					t.Fatal("free node retains handler state")
				}
			}
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, p := data[i]%4, data[i+1]
			switch op {
			case 0: // schedule p time units out
				tr := &tracked{}
				tr.ref = s.ScheduleArg(Time(p), func(arg any) {
					onFire(arg.(*tracked))
				}, tr)
				tr.at = s.Now() + Time(p)
				tr.seq = s.Scheduled() - 1
				all = append(all, tr)
			case 1: // cancel the p-th live event
				if l := live(); len(l) > 0 {
					tr := l[int(p)%len(l)]
					s.Cancel(tr.ref)
					tr.cancelled = true
					if !tr.ref.Cancelled() {
						t.Fatal("ref not Cancelled after Cancel")
					}
				}
			case 2: // fire one event
				s.Step()
			case 3: // run out a horizon p units long
				s.RunUntil(s.Now() + Time(p))
			}
			checkHeap()
			if got := fired; got != int(s.Fired()) {
				t.Fatalf("Fired() = %d, observed %d handler calls", s.Fired(), got)
			}
		}

		// Drain: everything still live must fire, in order.
		pending := len(live())
		if pending != s.Pending() {
			t.Fatalf("Pending() = %d, model says %d", s.Pending(), pending)
		}
		s.Run()
		for _, tr := range all {
			if !tr.cancelled && !tr.fired {
				t.Fatalf("event (at=%v seq=%d) lost", tr.at, tr.seq)
			}
			if !tr.ref.Cancelled() {
				t.Fatal("settled event's ref must report Cancelled")
			}
		}
		if s.Pending() != 0 {
			t.Fatalf("%d events pending after Run", s.Pending())
		}
		// Every node ever allocated is now on the free list.
		if s.PoolFree() < s.MaxPending() {
			t.Fatalf("pool holds %d nodes, high-water mark was %d",
				s.PoolFree(), s.MaxPending())
		}
	})
}
