package des

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// Sharded is a conservative parallel discrete-event engine: event work
// is partitioned into shards (one per processor/stream group), each
// with its own pooled event heap, clock and sequence counter, and the
// shards execute in lockstep time windows of length Lookahead — the
// minimum latency of any cross-shard interaction, derived by the
// caller from its cost model (e.g. the cheapest cross-group dispatch).
//
// The window protocol is the classic conservative one:
//
//  1. floor   = min over shards of their earliest pending event time.
//  2. horizon = floor + lookahead.
//  3. Every shard independently fires its events with at < horizon.
//     Handlers may schedule freely on their own shard (any delay ≥ 0)
//     and send to other shards only at or beyond the horizon (Send
//     enforces this), so nothing that happens during the window can
//     create work inside it — shards cannot affect each other before
//     the barrier and are safe to drain concurrently.
//  4. Barrier: the cross-shard messages accumulated in per-shard
//     outboxes are sorted into canonical (at, source shard, source
//     send-sequence) order and applied to their target heaps.
//
// Within a shard, simultaneous events fire in scheduling order exactly
// as in Simulator (the heap orders by (at, seq)); across shards,
// same-timestamp cross messages are tie-broken by (shard, seq) at the
// barrier, so the target's sequence numbers — and therefore every
// later tie-break — are assigned identically no matter which worker
// drained which shard first. Steps 1–4 are functions of event
// timestamps and shard-local state only, never of the worker count or
// interleaving, which is why the fired-event sequence (and any state
// the handlers build) is bit-identical at any Workers setting,
// including 1. The harness in shard_test.go pins exactly that.
//
// The hot path preserves the engine's zero-allocation contract: event
// nodes come from each shard's own pool, outboxes and the merge buffer
// are reused across windows, and the worker pool is a fixed set of
// goroutines released by a generation counter — nothing allocates once
// the run reaches steady state.
//
// Sharded itself must be driven from one goroutine (Run/StepWindow);
// only handler code inside a window runs concurrently. Close releases
// the worker goroutines; forgetting it leaks workers ≥ 2 goroutines
// until process exit.
type Sharded struct {
	shards    []Shard
	lookahead Time
	horizon   Time // end of the window being (or last) executed
	windows   uint64
	stopped   atomic.Bool

	scratch []crossMsg // barrier merge buffer, reused
	active  []int      // shards with work this window, reused

	// Worker pool: nworkers-1 helper goroutines plus the caller. A
	// generation bump releases the helpers into the current window;
	// they claim shards from active via the atomic cursor and count
	// themselves off on done. Synchronization is spin-then-park: the
	// helpers busy-wait (yielding) across the short inter-window gap —
	// merge plus floor scan, microseconds — and only fall back to a
	// cond park when the engine goes idle, so steady-state windows run
	// entirely futex-free. (On a loaded host a futex sleep/wake pair
	// costs tens of microseconds per window — measured at ~40% of the
	// total CPU budget of a parked-per-window design.)
	nworkers int
	mu       sync.Mutex
	cond     *sync.Cond
	gen      atomic.Uint64
	closing  atomic.Bool
	parkers  atomic.Int32
	claim    atomic.Int64
	done     atomic.Int32
	spawned  bool
}

// Shard is one partition of a Sharded engine: a private event heap,
// node pool, clock and an outbox for cross-shard sends. Handlers
// running on a shard may only touch that shard's state (plus the
// shard-local application state the caller partitioned).
type Shard struct {
	owner    *Sharded
	id       int
	sim      *Simulator
	out      []crossMsg
	sendSeq  uint64
	winFired uint64 // events fired in this shard's previous window
}

// crossMsg is one cross-shard event waiting for the window barrier.
type crossMsg struct {
	at  Time
	seq uint64 // source shard's send sequence
	src int32
	to  int32
	fn  ArgHandler
	arg any
}

// cmpCross is the canonical barrier order: time, then source shard,
// then source send sequence. The triple is unique per message, so the
// (unstable) sort yields a total, deterministic order.
func cmpCross(a, b crossMsg) int {
	switch {
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.src != b.src:
		return int(a.src - b.src)
	case a.seq != b.seq:
		if a.seq < b.seq {
			return -1
		}
		return 1
	}
	return 0
}

// NewSharded returns an engine with the given shard count, conservative
// lookahead (must be positive — it is the promise that no cross-shard
// interaction takes less simulated time than this), and worker count.
// workers is clamped to [1, min(shards, GOMAXPROCS)] — a drain worker
// is CPU-bound, so workers beyond the core budget only add scheduling
// overhead, and the clamp never changes results (the fired-event
// sequence is identical at every worker count). workers = 1 executes
// windows inline on the calling goroutine and is the reference behavior
// the parallel modes must reproduce bit for bit.
func NewSharded(shards int, lookahead Time, workers int) *Sharded {
	if shards < 1 {
		panic(fmt.Sprintf("des: shard count %d must be ≥ 1", shards))
	}
	if !(lookahead > 0) { // rejects NaN too
		panic(fmt.Sprintf("des: lookahead %v must be positive", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	sh := &Sharded{
		shards:    make([]Shard, shards),
		lookahead: lookahead,
		nworkers:  workers,
	}
	sh.cond = sync.NewCond(&sh.mu)
	for i := range sh.shards {
		s := &sh.shards[i]
		s.owner, s.id, s.sim = sh, i, NewSimulator()
	}
	return sh
}

// Shards returns the shard count.
func (sh *Sharded) Shards() int { return len(sh.shards) }

// Workers returns the effective worker count.
func (sh *Sharded) Workers() int { return sh.nworkers }

// Lookahead returns the conservative window length.
func (sh *Sharded) Lookahead() Time { return sh.lookahead }

// Windows returns how many time windows have executed.
func (sh *Sharded) Windows() uint64 { return sh.windows }

// Shard returns shard i for scheduling and inspection.
func (sh *Sharded) Shard(i int) *Shard { return &sh.shards[i] }

// Fired returns the total events executed across all shards.
func (sh *Sharded) Fired() uint64 {
	var n uint64
	for i := range sh.shards {
		n += sh.shards[i].sim.fired
	}
	return n
}

// Pending returns the total events scheduled and not yet fired.
func (sh *Sharded) Pending() int {
	n := 0
	for i := range sh.shards {
		n += len(sh.shards[i].sim.events)
	}
	return n
}

// Now returns the global virtual-time floor: the earliest pending event
// time, or the end of the last window when no events remain.
func (sh *Sharded) Now() Time {
	if f := sh.floor(); !math.IsInf(float64(f), 1) {
		return f
	}
	return sh.horizon
}

// Stop makes the engine halt at the next window boundary. It is safe to
// call from handlers (which run concurrently during a window); the
// current window always completes, so the set of fired events stays
// deterministic — stopping is all-or-nothing per window.
func (sh *Sharded) Stop() { sh.stopped.Store(true) }

// floor returns the earliest pending event time, +Inf when idle.
func (sh *Sharded) floor() Time {
	floor := Time(math.Inf(1))
	for i := range sh.shards {
		s := &sh.shards[i]
		if len(s.sim.events) > 0 && s.sim.events[0].at < floor {
			floor = s.sim.events[0].at
		}
	}
	return floor
}

// StepWindow executes one conservative time window and reports whether
// any events remained to run. Must be called from a single goroutine.
func (sh *Sharded) StepWindow() bool {
	if sh.stopped.Load() {
		return false
	}
	floor := sh.floor()
	if math.IsInf(float64(floor), 1) {
		return false
	}
	horizon := floor + sh.lookahead
	sh.horizon = horizon
	sh.active = sh.active[:0]
	for i := range sh.shards {
		s := &sh.shards[i]
		if len(s.sim.events) > 0 && s.sim.events[0].at < horizon {
			sh.active = append(sh.active, i)
		}
	}
	if sh.nworkers <= 1 || len(sh.active) == 1 {
		for _, id := range sh.active {
			sh.shards[id].runWindow(horizon)
		}
	} else {
		sh.sortActiveByLoad()
		sh.runParallel()
	}
	sh.mergeOutboxes()
	sh.windows++
	return true
}

// spinBudget bounds how many yield iterations a helper burns waiting
// for the next window before parking on the cond. The inter-window gap
// it must bridge (outbox merge + floor scan) is microseconds, far under
// the budget, so parking only happens when the engine goes idle.
const spinBudget = 2000

// runParallel drains the active shards on the worker pool. The caller
// participates, so nworkers-1 helpers suffice; they are spawned once
// and re-released each window by a generation bump (no per-window
// goroutines, channels or allocations — and, in steady state, no futex
// traffic: the release is an atomic store the spinning helpers observe,
// and completion is an atomic count the caller spins on).
func (sh *Sharded) runParallel() {
	if !sh.spawned {
		for i := 0; i < sh.nworkers-1; i++ {
			go sh.workerLoop()
		}
		sh.spawned = true
	}
	sh.claim.Store(0)
	sh.done.Store(0)
	sh.gen.Add(1)
	// A helper that exhausted its spin budget parks on the cond; the
	// parkers counter is incremented before it re-checks gen (both
	// sequentially consistent), so either the helper sees the new
	// generation and skips the wait, or this load sees it parked and
	// the broadcast wakes it.
	if sh.parkers.Load() > 0 {
		sh.mu.Lock()
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	sh.drainActive()
	helpers := int32(sh.nworkers - 1)
	for sh.done.Load() != helpers {
		runtime.Gosched()
	}
}

func (sh *Sharded) workerLoop() {
	seen := uint64(0)
	for {
		g, ok := sh.awaitRelease(seen)
		if !ok {
			return
		}
		seen = g
		sh.drainActive()
		sh.done.Add(1)
	}
}

// awaitRelease returns the next window generation (spinning first,
// parking when the engine sits idle) or ok = false once the engine is
// closing.
func (sh *Sharded) awaitRelease(seen uint64) (gen uint64, ok bool) {
	for spin := 0; ; spin++ {
		if sh.closing.Load() {
			return 0, false
		}
		if g := sh.gen.Load(); g != seen {
			return g, true
		}
		if spin < spinBudget {
			runtime.Gosched()
			continue
		}
		sh.mu.Lock()
		sh.parkers.Add(1)
		if sh.gen.Load() == seen && !sh.closing.Load() {
			sh.cond.Wait()
		}
		sh.parkers.Add(-1)
		sh.mu.Unlock()
		spin = 0
	}
}

// sortActiveByLoad orders the window's active shards by descending
// fired-count in their previous window — longest-processing-time-first
// claiming, which keeps the drain's straggler tail short under skewed
// (e.g. Zipf) per-shard load. Insertion sort: the order is nearly
// stable from window to window and the hot path must not allocate.
// Ties keep ascending shard order. Claim order never affects results —
// shards are independent inside a window — only load balance.
func (sh *Sharded) sortActiveByLoad() {
	a := sh.active
	for i := 1; i < len(a); i++ {
		x := a[i]
		w := sh.shards[x].winFired
		j := i - 1
		for j >= 0 && sh.shards[a[j]].winFired < w {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// drainActive claims shards off the active list until none remain.
func (sh *Sharded) drainActive() {
	for {
		i := int(sh.claim.Add(1)) - 1
		if i >= len(sh.active) {
			return
		}
		sh.shards[sh.active[i]].runWindow(sh.horizon)
	}
}

// mergeOutboxes applies the window's cross-shard messages in canonical
// order. Runs after all shards have drained (single goroutine again).
func (sh *Sharded) mergeOutboxes() {
	sh.scratch = sh.scratch[:0]
	for i := range sh.shards {
		s := &sh.shards[i]
		sh.scratch = append(sh.scratch, s.out...)
		for j := range s.out {
			s.out[j] = crossMsg{} // drop fn/arg references
		}
		s.out = s.out[:0]
	}
	if len(sh.scratch) > 1 {
		slices.SortFunc(sh.scratch, cmpCross)
	}
	for i := range sh.scratch {
		m := &sh.scratch[i]
		sh.shards[m.to].sim.ScheduleArgAt(m.at, m.fn, m.arg)
		sh.scratch[i] = crossMsg{}
	}
}

// Run executes windows until no events remain or Stop is called.
func (sh *Sharded) Run() {
	for sh.StepWindow() {
	}
}

// RunUntil executes whole windows while the next window's floor lies at
// or before horizon. Because windows are all-or-nothing, events between
// the last window's end and horizon may fire too — RunUntil bounds the
// run but, unlike Simulator.RunUntil, is not an exact clock cut.
func (sh *Sharded) RunUntil(horizon Time) {
	for !sh.stopped.Load() {
		f := sh.floor()
		if math.IsInf(float64(f), 1) || f > horizon {
			return
		}
		sh.StepWindow()
	}
}

// Close releases the worker goroutines. The engine remains usable with
// workers = 1 semantics afterward; Close is idempotent.
func (sh *Sharded) Close() {
	sh.closing.Store(true)
	sh.mu.Lock()
	sh.cond.Broadcast()
	sh.mu.Unlock()
	sh.nworkers = 1
	sh.spawned = false
}

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Now returns the shard's local clock.
func (s *Shard) Now() Time { return s.sim.now }

// Fired returns the events this shard has executed.
func (s *Shard) Fired() uint64 { return s.sim.fired }

// Pending returns the shard's scheduled-and-unfired event count.
func (s *Shard) Pending() int { return len(s.sim.events) }

// PoolFree exposes the shard's recycled-node count (diagnostic).
func (s *Shard) PoolFree() int { return s.sim.PoolFree() }

// Schedule runs h on this shard after delay (shard-local, any delay ≥ 0).
func (s *Shard) Schedule(delay Time, h Handler) EventRef { return s.sim.Schedule(delay, h) }

// ScheduleAt runs h on this shard at absolute time at.
func (s *Shard) ScheduleAt(at Time, h Handler) EventRef { return s.sim.ScheduleAt(at, h) }

// ScheduleArg runs fn(arg) on this shard after delay — the zero-alloc
// variant, exactly as on Simulator.
func (s *Shard) ScheduleArg(delay Time, fn ArgHandler, arg any) EventRef {
	return s.sim.ScheduleArg(delay, fn, arg)
}

// ScheduleArgAt runs fn(arg) on this shard at absolute time at.
func (s *Shard) ScheduleArgAt(at Time, fn ArgHandler, arg any) EventRef {
	return s.sim.ScheduleArgAt(at, fn, arg)
}

// Cancel removes a shard-local scheduled event. Only the shard that
// scheduled an event may cancel it, and only from its own handlers (or
// between windows).
func (s *Shard) Cancel(r EventRef) { s.sim.Cancel(r) }

// Send schedules fn(arg) on shard to at the sender's local now + delay.
// Cross-shard sends must land at or beyond the current window horizon —
// the conservative contract that makes concurrent window execution
// safe — so delay must be at least the engine lookahead whenever the
// sender's clock sits at the window floor, and Send panics on a
// violation rather than silently racing. A send to the shard itself is
// an ordinary local schedule.
func (s *Shard) Send(to int, delay Time, fn ArgHandler, arg any) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	if to < 0 || to >= len(s.owner.shards) {
		panic(fmt.Sprintf("des: send to shard %d of %d", to, len(s.owner.shards)))
	}
	if fn == nil {
		panic("des: nil handler")
	}
	at := s.sim.now + delay
	if to == s.id {
		s.sim.ScheduleArgAt(at, fn, arg)
		return
	}
	if at < s.owner.horizon {
		panic(fmt.Sprintf(
			"des: cross-shard send at %v lands inside the current window (horizon %v) — below the %v lookahead",
			at, s.owner.horizon, s.owner.lookahead))
	}
	s.out = append(s.out, crossMsg{
		at: at, seq: s.sendSeq, src: int32(s.id), to: int32(to), fn: fn, arg: arg,
	})
	s.sendSeq++
}

// runWindow fires this shard's events strictly before horizon.
func (s *Shard) runWindow(horizon Time) {
	sim := s.sim
	f0 := sim.fired
	for len(sim.events) > 0 && sim.events[0].at < horizon {
		sim.Step()
	}
	s.winFired = sim.fired - f0
}
