package des

import (
	"strconv"
	"testing"
)

// chainSource returns a deterministic draw chain: an RNG-driven
// (delay, batch) sequence, identical every time it is rebuilt from the
// same seed and name.
func chainSource(seed int64, name string) func() (Time, int) {
	rng := Stream(seed, name)
	return func() (Time, int) {
		return rng.ExpTime(100), rng.Geometric(2.5)
	}
}

// TestPrefetcherMatchesInline is the pipeline's whole contract: for
// every source, the sequence popped through Next is bit-identical to
// calling the source inline — across worker counts and ring sizes,
// including rings small enough to force producer parking.
func TestPrefetcherMatchesInline(t *testing.T) {
	const sources, draws = 9, 4000
	type draw struct {
		d Time
		b int
	}
	want := make([][]draw, sources)
	for s := 0; s < sources; s++ {
		next := chainSource(42, "src-"+strconv.Itoa(s))
		for i := 0; i < draws; i++ {
			d, b := next()
			want[s] = append(want[s], draw{d, b})
		}
	}
	for _, tc := range []struct{ workers, ringCap int }{
		{1, 256}, {4, 256}, {9, 256}, {16, 256}, {4, 8}, {3, 1},
	} {
		fns := make([]func() (Time, int), sources)
		for s := 0; s < sources; s++ {
			fns[s] = chainSource(42, "src-"+strconv.Itoa(s))
		}
		p := NewPrefetcher(fns, tc.workers, tc.ringCap)
		// Interleave sources the way the event loop would.
		for i := 0; i < draws; i++ {
			for s := 0; s < sources; s++ {
				d, b := p.Next(s)
				if w := want[s][i]; d != w.d || b != w.b {
					p.Close()
					t.Fatalf("workers=%d cap=%d: source %d draw %d = (%v,%d), want (%v,%d)",
						tc.workers, tc.ringCap, s, i, d, b, w.d, w.b)
				}
			}
		}
		p.Close()
	}
}

// TestPrefetcherProducerParksAndResumes drains far more draws than the
// rings hold from a single tiny-ring source, so the producer must park
// on the full ring and be resumed by consumer low-water signals every
// few pops; a lost wakeup would deadlock the test.
func TestPrefetcherProducerParksAndResumes(t *testing.T) {
	p := NewPrefetcher([]func() (Time, int){chainSource(1, "solo")}, 1, 2)
	defer p.Close()
	ref := chainSource(1, "solo")
	for i := 0; i < 50_000; i++ {
		d, b := p.Next(0)
		wd, wb := ref()
		if d != wd || b != wb {
			t.Fatalf("draw %d = (%v,%d), want (%v,%d)", i, d, b, wd, wb)
		}
	}
}

// TestPrefetcherCloseWithFullRings: Close must terminate parked
// producers (the common shutdown state — the run ended while the
// pipeline was ahead) without the consumer draining anything more.
func TestPrefetcherCloseWithFullRings(t *testing.T) {
	fns := make([]func() (Time, int), 4)
	for i := range fns {
		fns[i] = chainSource(2, "close-"+strconv.Itoa(i))
	}
	p := NewPrefetcher(fns, 2, 16)
	p.Next(0) // ensure the pipeline is live
	p.Close() // must not hang (wg.Wait inside)
}

func TestPrefetcherValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty source list did not panic")
		}
	}()
	NewPrefetcher(nil, 1, 0)
}

// TestPrefetcherNextZeroAllocs pins the consumer hot path: Next is
// called once per arrival batch in the sharded runner and must not
// allocate. The producers don't allocate in steady state either
// (pre-sized rings, allocation-free RNG draws), so the global
// allocation counter stays flat.
func TestPrefetcherNextZeroAllocs(t *testing.T) {
	fns := make([]func() (Time, int), 4)
	for i := range fns {
		fns[i] = chainSource(3, "alloc-"+strconv.Itoa(i))
	}
	p := NewPrefetcher(fns, 2, 1024)
	defer p.Close()
	var sink Time
	for i := 0; i < 4096; i++ { // warm every ring
		d, _ := p.Next(i % 4)
		sink += d
	}
	got := testing.AllocsPerRun(50, func() {
		for i := 0; i < 64; i++ {
			d, _ := p.Next(i % 4)
			sink += d
		}
	})
	_ = sink
	if got != 0 {
		t.Errorf("%v allocs per 64 Next calls, want 0", got)
	}
}
