package des

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Prefetcher is the source-shard side of the sharded runner: it runs K
// pipeline workers that precompute independent per-source draw chains
// (arrival inter-delays and batch sizes) into single-producer /
// single-consumer rings, so the event loop pops ready-made draws
// instead of computing them inline.
//
// This is the degenerate — and for autonomous sources, optimal — case
// of the conservative sharding in Sharded: an arrival chain has no
// in-edges from the rest of the simulation, so its lookahead with
// respect to the executing shard is unbounded and it may run arbitrarily
// far ahead of the clock; the ring capacity is its time window. Each
// source function is called only by its owning worker, sequentially, in
// chain order, so the value sequence any consumer observes is
// bit-identical to calling the source inline: the draws move between
// goroutines, the numbers never change.
//
// Next is the consumer hot path and performs no allocation; producers
// park on a condition variable when their rings are full and are
// signalled when the consumer drains one below half capacity. The
// consumer must be a single goroutine per source (the DES event loop
// is one goroutine overall). Close releases the workers.
type Prefetcher struct {
	sources []func() (Time, int)
	rings   []drawRing
	workers []prefWorker
	closing atomic.Bool
	wg      sync.WaitGroup
}

// Draw is one precomputed source step.
type Draw struct {
	Delay Time
	Batch int32
}

// drawRing is a bounded SPSC ring: the owning worker advances tail, the
// consumer advances head. Slot writes happen before the tail store and
// slot reads after the tail load (Go atomics are sequentially
// consistent), so no further synchronization is needed.
type drawRing struct {
	buf  []Draw
	mask uint64
	head atomic.Uint64
	tail atomic.Uint64
	w    *prefWorker
}

type prefWorker struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parked  atomic.Bool
	sources []int // ring indices this worker owns
}

// NewPrefetcher starts workers (clamped to [1, len(sources)]) producing
// into rings of ringCap entries each (rounded up to a power of two;
// ≤ 0 selects 256). Sources are assigned round-robin so neighboring —
// in Zipf-skewed workloads, similarly hot — sources land on different
// workers.
func NewPrefetcher(sources []func() (Time, int), workers, ringCap int) *Prefetcher {
	if len(sources) == 0 {
		panic("des: prefetcher with no sources")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if ringCap <= 0 {
		ringCap = 256
	}
	capPow := 1
	for capPow < ringCap {
		capPow <<= 1
	}
	p := &Prefetcher{
		sources: sources,
		rings:   make([]drawRing, len(sources)),
		workers: make([]prefWorker, workers),
	}
	for i := range p.workers {
		w := &p.workers[i]
		w.cond = sync.NewCond(&w.mu)
	}
	for i := range p.rings {
		r := &p.rings[i]
		r.buf = make([]Draw, capPow)
		r.mask = uint64(capPow - 1)
		w := &p.workers[i%workers]
		r.w = w
		w.sources = append(w.sources, i)
	}
	p.wg.Add(workers)
	for i := range p.workers {
		go p.produce(&p.workers[i])
	}
	return p
}

// produce fills the worker's rings until Close; it parks when every
// owned ring is full.
func (p *Prefetcher) produce(w *prefWorker) {
	defer p.wg.Done()
	for !p.closing.Load() {
		produced := false
		for _, si := range w.sources {
			r := &p.rings[si]
			tail := r.tail.Load()
			for tail-r.head.Load() < uint64(len(r.buf)) {
				d, b := p.sources[si]()
				if int(int32(b)) != b {
					panic(fmt.Sprintf("des: draw batch %d overflows the ring entry", b))
				}
				r.buf[tail&r.mask] = Draw{Delay: d, Batch: int32(b)}
				tail++
				r.tail.Store(tail)
				produced = true
			}
		}
		if produced {
			continue
		}
		// Every ring full: park until the consumer signals a low-water
		// crossing. parked is set before the re-check, and the consumer
		// stores head before loading parked, so the sequentially
		// consistent order rules out a lost wakeup: either the re-check
		// sees the freed slot, or the consumer sees parked and signals.
		w.mu.Lock()
		w.parked.Store(true)
		for !p.closing.Load() && p.noSpace(w) {
			w.cond.Wait()
		}
		w.parked.Store(false)
		w.mu.Unlock()
	}
}

// noSpace reports whether every ring owned by w is full.
func (p *Prefetcher) noSpace(w *prefWorker) bool {
	for _, si := range w.sources {
		r := &p.rings[si]
		if r.tail.Load()-r.head.Load() < uint64(len(r.buf)) {
			return false
		}
	}
	return true
}

// Next pops the next draw for source src — the same (delay, batch) the
// source function would have returned if called inline. It spins (with
// Gosched) only when the producer has fallen behind, and allocates
// nothing.
func (p *Prefetcher) Next(src int) (Time, int) {
	r := &p.rings[src]
	h := r.head.Load()
	for r.tail.Load() == h {
		if w := r.w; w.parked.Load() {
			w.mu.Lock()
			w.cond.Signal()
			w.mu.Unlock()
		}
		runtime.Gosched()
	}
	d := r.buf[h&r.mask]
	r.head.Store(h + 1)
	if occ := r.tail.Load() - (h + 1); occ*2 < uint64(len(r.buf)) {
		if w := r.w; w.parked.Load() {
			w.mu.Lock()
			w.cond.Signal()
			w.mu.Unlock()
		}
	}
	return d.Delay, int(d.Batch)
}

// Close stops the pipeline workers and waits for them to exit. The
// consumer must not call Next afterwards.
func (p *Prefetcher) Close() {
	p.closing.Store(true)
	for i := range p.workers {
		w := &p.workers[i]
		w.mu.Lock()
		w.cond.Broadcast()
		w.mu.Unlock()
	}
	p.wg.Wait()
}
