package des

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	s := NewSimulator()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := NewSimulator()
	var fired []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		s.Schedule(d, func() { fired = append(fired, s.Now()) })
	}
	s.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (tie-break broken)", i, got, i)
		}
	}
}

func TestScheduleFromHandler(t *testing.T) {
	s := NewSimulator()
	var times []Time
	s.Schedule(10, func() {
		times = append(times, s.Now())
		s.Schedule(5, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

func TestCancel(t *testing.T) {
	s := NewSimulator()
	fired := false
	ref := s.Schedule(10, func() { fired = true })
	s.Cancel(ref)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ref.Cancelled() {
		t.Fatal("ref.Cancelled() = false after cancel")
	}
	// Double-cancel and cancel-after-fire are no-ops.
	s.Cancel(ref)
	ref2 := s.Schedule(1, func() {})
	s.Run()
	s.Cancel(ref2)
}

func TestCancelMiddleEventKeepsOrder(t *testing.T) {
	s := NewSimulator()
	var fired []Time
	s.Schedule(10, func() { fired = append(fired, s.Now()) })
	mid := s.Schedule(20, func() { fired = append(fired, s.Now()) })
	s.Schedule(30, func() { fired = append(fired, s.Now()) })
	s.Cancel(mid)
	s.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 30 {
		t.Fatalf("fired = %v, want [10 30]", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewSimulator()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.Schedule(10, tick)
	}
	s.Schedule(10, tick)
	s.RunUntil(95)
	if count != 9 {
		t.Fatalf("count = %d, want 9", count)
	}
	if s.Now() != 95 {
		t.Fatalf("Now() = %v, want 95 (clock must land on horizon)", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
}

func TestRunUntilEmptyAdvancesToHorizon(t *testing.T) {
	s := NewSimulator()
	s.RunUntil(1000)
	if s.Now() != 1000 {
		t.Fatalf("Now() = %v, want 1000", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := NewSimulator()
	count := 0
	for i := 0; i < 10; i++ {
		s.Schedule(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	NewSimulator().Schedule(-1, func() {})
}

func TestScheduleBeforeNowPanics(t *testing.T) {
	s := NewSimulator()
	s.Schedule(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	s.ScheduleAt(5, func() {})
}

func TestFiredCounter(t *testing.T) {
	s := NewSimulator()
	for i := 0; i < 7; i++ {
		s.Schedule(Time(i), func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

// Property: for any set of non-negative delays, events fire in sorted order.
func TestPropertyEventOrdering(t *testing.T) {
	prop := func(raw []uint16) bool {
		s := NewSimulator()
		var fired []Time
		for _, d := range raw {
			s.Schedule(Time(d), func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		want := make([]Time, len(raw))
		for i, d := range raw {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{1, "1.000µs"},
		{1500, "1.500ms"},
		{2.5e6, "2.500s"},
		// Negative durations (elapsed-time differences) must pick the
		// unit by magnitude, not fall through to µs.
		{-1, "-1.000µs"},
		{-1500, "-1.500ms"},
		{-2.5e6, "-2.500s"},
		{0, "0.000µs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := Stream(42, "arrivals")
	b := Stream(42, "arrivals")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	a := Stream(42, "arrivals")
	b := Stream(42, "service")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 'arrivals' and 'service' agree on %d/100 draws", same)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(50)
	}
	mean := sum / n
	if math.Abs(mean-50) > 1 {
		t.Fatalf("exponential mean = %.3f, want ≈50", mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	g := NewRNG(7)
	if g.Exp(0) != 0 || g.Exp(-3) != 0 {
		t.Fatal("Exp with non-positive mean must return 0")
	}
}

func TestGeometricMean(t *testing.T) {
	g := NewRNG(11)
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += g.Geometric(8)
	}
	mean := float64(sum) / n
	if math.Abs(mean-8) > 0.2 {
		t.Fatalf("geometric mean = %.3f, want ≈8", mean)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 100; i++ {
		if g.Geometric(1) != 1 {
			t.Fatal("Geometric(1) must always return 1")
		}
		if g.Geometric(0.5) != 1 {
			t.Fatal("Geometric(<1) must always return 1")
		}
	}
}

func TestGeometricAlwaysPositive(t *testing.T) {
	prop := func(seed int64, mean float64) bool {
		m := 1 + math.Mod(math.Abs(mean), 50)
		g := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if g.Geometric(m) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourceImmediateGrant(t *testing.T) {
	s := NewSimulator()
	r := NewResource(s, 2)
	granted := 0
	r.Acquire(func() { granted++ })
	r.Acquire(func() { granted++ })
	if granted != 2 {
		t.Fatalf("granted = %d, want 2", granted)
	}
	if r.InUse() != 2 {
		t.Fatalf("InUse() = %d, want 2", r.InUse())
	}
}

func TestResourceFIFO(t *testing.T) {
	s := NewSimulator()
	r := NewResource(s, 1)
	var order []int
	r.Acquire(func() {}) // hold the unit
	for i := 0; i < 5; i++ {
		i := i
		r.Acquire(func() { order = append(order, i) })
	}
	if r.QueueLen() != 5 {
		t.Fatalf("QueueLen() = %d, want 5", r.QueueLen())
	}
	for i := 0; i < 5; i++ {
		r.Release()
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	s := NewSimulator()
	r := NewResource(s, 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	s := NewSimulator()
	r := NewResource(s, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on releasing idle resource")
		}
	}()
	r.Release()
}

func TestResourceUtilization(t *testing.T) {
	s := NewSimulator()
	r := NewResource(s, 1)
	// Busy from t=0 to t=50, idle 50..100.
	r.Acquire(func() {})
	s.Schedule(50, func() { r.Release() })
	s.Schedule(100, func() {})
	s.Run()
	if u := r.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("Utilization() = %v, want 0.5", u)
	}
}

func TestResourceWaitedCount(t *testing.T) {
	s := NewSimulator()
	r := NewResource(s, 1)
	r.Acquire(func() {})
	r.Acquire(func() {})
	r.Release()
	if r.Waited() != 1 {
		t.Fatalf("Waited() = %d, want 1", r.Waited())
	}
	if r.Grants() != 2 {
		t.Fatalf("Grants() = %d, want 2", r.Grants())
	}
}

func TestResourceMeanQueue(t *testing.T) {
	s := NewSimulator()
	r := NewResource(s, 1)
	r.Acquire(func() {}) // holder
	r.Acquire(func() {}) // waits from t=0
	s.Schedule(100, func() { r.Release() })
	s.Schedule(200, func() {})
	s.Run()
	// One waiter for the first 100 of 200 time units.
	if mq := r.MeanQueue(); math.Abs(mq-0.5) > 1e-9 {
		t.Fatalf("MeanQueue = %v, want 0.5", mq)
	}
	r.Release()
}

func TestResourceInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero capacity")
		}
	}()
	NewResource(NewSimulator(), 0)
}

func TestRNGDrawHelpers(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 100; i++ {
		if v := g.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	p := g.Perm(8)
	seen := map[int]bool{}
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Perm not a permutation: %v", p)
	}
	if d := g.ExpTime(100); d < 0 {
		t.Fatalf("ExpTime negative: %v", d)
	}
	// Normal: check the empirical mean roughly.
	sum := 0.0
	for i := 0; i < 50000; i++ {
		sum += g.Normal(10, 2)
	}
	if mean := sum / 50000; math.Abs(mean-10) > 0.1 {
		t.Fatalf("Normal mean = %v, want ≈10", mean)
	}
	// Zipf: draws in range, skewed toward 0.
	zeros := 0
	for i := 0; i < 1000; i++ {
		v := g.Zipf(1.5, 10)
		if v < 0 || v >= 10 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		if v == 0 {
			zeros++
		}
	}
	if zeros < 300 {
		t.Fatalf("Zipf(1.5) drew rank 0 only %d/1000 times; not skewed", zeros)
	}
}

func TestSchedulingCounters(t *testing.T) {
	s := NewSimulator()
	if s.Scheduled() != 0 || s.MaxPending() != 0 {
		t.Fatal("fresh simulator has nonzero counters")
	}
	for i := 0; i < 5; i++ {
		s.Schedule(Time(i), func() {})
	}
	if s.Scheduled() != 5 || s.MaxPending() != 5 {
		t.Fatalf("Scheduled=%d MaxPending=%d, want 5/5", s.Scheduled(), s.MaxPending())
	}
	s.Run()
	// Draining the heap must not lower the high-water mark, and firing
	// events counts toward Fired, not Scheduled.
	if s.MaxPending() != 5 || s.Scheduled() != 5 || s.Fired() != 5 {
		t.Fatalf("after run: Scheduled=%d MaxPending=%d Fired=%d",
			s.Scheduled(), s.MaxPending(), s.Fired())
	}
}
