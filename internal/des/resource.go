package des

// Resource is a FIFO-queued resource with a fixed number of units,
// e.g. a lock (capacity 1). Acquire requests are granted in arrival
// order; the grant callback runs inside the simulation, at the instant
// the unit becomes available.
type Resource struct {
	sim      *Simulator
	capacity int
	inUse    int
	waiters  waiterQueue

	// Occupancy statistics (time-weighted).
	lastChange Time
	busyArea   float64 // integral of inUse over time
	queueArea  float64 // integral of queue length over time
	grants     uint64
	waited     uint64
}

// waiter is one queued acquire request in the (fn, arg) calling
// convention; plain Acquire closures ride through callHandler.
type waiter struct {
	fn  ArgHandler
	arg any
}

// waiterQueue is a slice-backed FIFO that recycles its backing array:
// popped slots are cleared and the head index advances, and the array
// resets to the front whenever the queue drains, so steady-state
// acquire/release traffic stops allocating.
type waiterQueue struct {
	buf  []waiter
	head int
}

func (q *waiterQueue) len() int { return len(q.buf) - q.head }

func (q *waiterQueue) push(w waiter) { q.buf = append(q.buf, w) }

func (q *waiterQueue) pop() waiter {
	w := q.buf[q.head]
	q.buf[q.head] = waiter{}
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return w
}

// NewResource returns a resource with the given capacity attached to sim.
func NewResource(sim *Simulator, capacity int) *Resource {
	if capacity < 1 {
		panic("des: resource capacity must be >= 1")
	}
	return &Resource{sim: sim, capacity: capacity, lastChange: sim.Now()}
}

func (r *Resource) account() {
	now := r.sim.Now()
	dt := float64(now - r.lastChange)
	r.busyArea += dt * float64(r.inUse)
	r.queueArea += dt * float64(r.waiters.len())
	r.lastChange = now
}

// Acquire requests one unit and calls grant when it is allocated. If a
// unit is free the grant runs immediately (same simulation instant).
func (r *Resource) Acquire(grant func()) {
	r.AcquireArg(callHandler, Handler(grant))
}

// AcquireArg is Acquire in the (fn, arg) calling convention: with a
// non-capturing fn and a pooled arg it performs no allocation, queued or
// not — the hot-path variant for per-packet lock traffic.
func (r *Resource) AcquireArg(fn ArgHandler, arg any) {
	r.account()
	if r.inUse < r.capacity {
		r.inUse++
		r.grants++
		fn(arg)
		return
	}
	r.waited++
	r.waiters.push(waiter{fn: fn, arg: arg})
}

// TryAcquire takes a unit if one is free, reporting success. It never
// queues.
func (r *Resource) TryAcquire() bool {
	r.account()
	if r.inUse < r.capacity {
		r.inUse++
		r.grants++
		return true
	}
	return false
}

// Release returns one unit, handing it to the longest-waiting acquirer
// if any.
func (r *Resource) Release() {
	r.account()
	if r.inUse == 0 {
		panic("des: release of idle resource")
	}
	if r.waiters.len() > 0 {
		w := r.waiters.pop()
		r.grants++
		w.fn(w.arg)
		return
	}
	r.inUse--
}

// InUse returns the number of units currently allocated.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of pending acquire requests.
func (r *Resource) QueueLen() int { return r.waiters.len() }

// Utilization returns the time-averaged fraction of capacity in use
// since the resource was created.
func (r *Resource) Utilization() float64 {
	r.account()
	elapsed := float64(r.sim.Now() - Time(0))
	if r.lastChange == 0 || elapsed == 0 {
		return 0
	}
	return r.busyArea / (elapsed * float64(r.capacity))
}

// MeanQueue returns the time-averaged queue length.
func (r *Resource) MeanQueue() float64 {
	r.account()
	elapsed := float64(r.sim.Now())
	if elapsed == 0 {
		return 0
	}
	return r.queueArea / elapsed
}

// Grants returns the number of successful allocations, and WaitedGrants
// the number that had to queue first.
func (r *Resource) Grants() uint64 { return r.grants }

// Waited returns the number of acquisitions that queued before being
// granted.
func (r *Resource) Waited() uint64 { return r.waited }
