package des

import (
	"math"
	"reflect"
	"runtime"
	"testing"
)

// The sharded engine's whole contract is that the fired-event sequence
// is a function of the workload alone, never of the worker count or of
// which worker drained which shard. These tests drive a workload with
// cross-shard traffic and same-timestamp ties through every worker
// count and require bit-identical logs.

// logEntry records one fired event for the determinism comparisons.
type logEntry struct {
	Shard int
	At    Time
	Tag   int
}

// shardActor is the per-shard state of the test workload: a self-
// rescheduling local chain that periodically sends to a peer shard.
// All fields are touched only by handlers running on Shard (the log
// slice too), so the workload is race-free by construction — exactly
// the partitioning discipline the engine demands.
type shardActor struct {
	sh      *Shard
	peer    *shardActor
	rng     *RNG
	gap     Time
	crossAt Time // lookahead of the engine, reused as send latency
	n       int
	log     []logEntry
	stopper *Sharded // non-nil: call Stop after stopAfter local events
	stopN   int
}

func actorLocalFire(a any) {
	g := a.(*shardActor)
	g.n++
	g.log = append(g.log, logEntry{Shard: g.sh.ID(), At: g.sh.Now(), Tag: g.n})
	if g.stopper != nil && g.n >= g.stopN {
		g.stopper.Stop()
		return
	}
	g.sh.ScheduleArg(g.rng.ExpTime(g.gap), actorLocalFire, g)
	if g.n%3 == 0 {
		// Cross-shard dispatch: lands on the peer at ≥ the horizon. The
		// arg is the PEER's state — the handler runs on the peer's shard
		// and touches only its state.
		g.sh.Send(g.peer.sh.ID(), g.crossAt+g.rng.ExpTime(g.gap/2), actorRemoteFire, g.peer)
	}
}

func actorRemoteFire(a any) {
	g := a.(*shardActor)
	g.log = append(g.log, logEntry{Shard: g.sh.ID(), At: g.sh.Now(), Tag: -1})
}

// buildActors wires shards×actors in a ring (shard i sends to i+1) and
// schedules each actor's first event.
func buildActors(eng *Sharded, seed int64, gap Time, horizon Time) []*shardActor {
	n := eng.Shards()
	actors := make([]*shardActor, n)
	for i := 0; i < n; i++ {
		actors[i] = &shardActor{
			sh:      eng.Shard(i),
			rng:     Stream(seed, "shard-actor-"+string(rune('a'+i%26))+string(rune('0'+i/26))),
			gap:     gap,
			crossAt: eng.Lookahead(),
		}
	}
	for i, g := range actors {
		g.peer = actors[(i+1)%n]
		g.sh.ScheduleArg(g.rng.ExpTime(gap), actorLocalFire, g)
	}
	// A horizon guard on shard 0 keeps the run finite.
	eng.Shard(0).ScheduleAt(horizon, func() { eng.Stop() })
	return actors
}

// runActors executes the workload at one worker count and returns the
// concatenated per-shard logs plus the per-shard fired counts.
func runActors(shards, workers int, seed int64) ([]logEntry, []uint64) {
	eng := NewSharded(shards, 50*Microsecond, workers)
	defer eng.Close()
	actors := buildActors(eng, seed, 20*Microsecond, 30*Millisecond)
	eng.Run()
	var log []logEntry
	fired := make([]uint64, shards)
	for i, g := range actors {
		log = append(log, g.log...)
		fired[i] = g.sh.Fired()
	}
	return log, fired
}

func TestShardedWorkerInvariance(t *testing.T) {
	const shards = 8
	refLog, refFired := runActors(shards, 1, 7)
	if len(refLog) == 0 {
		t.Fatal("reference run fired no events")
	}
	sawCross := false
	for _, e := range refLog {
		if e.Tag == -1 {
			sawCross = true
			break
		}
	}
	if !sawCross {
		t.Fatal("reference run had no cross-shard traffic — the test exercises nothing")
	}
	for _, workers := range []int{2, 4, 8} {
		log, fired := runActors(shards, workers, 7)
		if !reflect.DeepEqual(log, refLog) {
			t.Errorf("workers=%d: fired-event log diverged from workers=1 (%d vs %d entries)",
				workers, len(log), len(refLog))
		}
		if !reflect.DeepEqual(fired, refFired) {
			t.Errorf("workers=%d: per-shard fired counts %v != %v", workers, fired, refFired)
		}
	}
}

// TestShardedSeedSensitivity guards the determinism test itself: a
// different seed must produce a different log, or the invariance
// comparison above would pass vacuously.
func TestShardedSeedSensitivity(t *testing.T) {
	a, _ := runActors(4, 1, 7)
	b, _ := runActors(4, 1, 8)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical logs")
	}
}

// TestShardedTieOrderCanonical pins the same-timestamp batch rule:
// cross messages landing on one shard at the same instant apply in
// (source shard, source sequence) order, regardless of which source's
// window drained first.
func TestShardedTieOrderCanonical(t *testing.T) {
	for _, workers := range []int{1, 2, 3} {
		eng := NewSharded(3, 10*Microsecond, workers)
		var order []int
		tags := []int{0, 1, 2, 3}
		record := func(a any) { order = append(order, *a.(*int)) }
		// Shards 1 and 2 each send two messages to shard 0, all landing
		// at exactly t = 10µs (the first window's horizon). Kick both
		// senders with a t=0 event so they are active in window one.
		kick := func(src int, firstTag, secondTag *int) {
			s := eng.Shard(src)
			s.ScheduleArg(0, func(any) {
				s.Send(0, 10*Microsecond, record, firstTag)
				s.Send(0, 10*Microsecond, record, secondTag)
			}, nil)
		}
		// Schedule shard 2 BEFORE shard 1 so scheduling order differs
		// from the canonical source-shard order.
		kick(2, &tags[2], &tags[3])
		kick(1, &tags[0], &tags[1])
		eng.Run()
		eng.Close()
		want := []int{0, 1, 2, 3} // shard 1's sends (seq 0,1), then shard 2's
		if !reflect.DeepEqual(order, want) {
			t.Errorf("workers=%d: tie application order %v, want %v", workers, order, want)
		}
	}
}

func TestShardedSendBelowLookaheadPanics(t *testing.T) {
	eng := NewSharded(2, 100*Microsecond, 1)
	defer eng.Close()
	eng.Shard(0).ScheduleArg(0, func(any) {
		defer func() {
			if recover() == nil {
				t.Error("cross-shard send below lookahead did not panic")
			}
		}()
		eng.Shard(0).Send(1, 50*Microsecond, func(any) {}, nil)
	}, nil)
	eng.Run()
}

func TestShardedConstructionValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero shards", func() { NewSharded(0, Microsecond, 1) }},
		{"zero lookahead", func() { NewSharded(2, 0, 1) }},
		{"nan lookahead", func() { NewSharded(2, Time(math.NaN()), 1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
	// Worker counts clamp instead of panicking — to the shard count and
	// to the core budget, whichever is tighter.
	want := min(2, runtime.GOMAXPROCS(0))
	eng := NewSharded(2, Microsecond, 64)
	if eng.Workers() != want {
		t.Errorf("workers clamped to %d, want %d", eng.Workers(), want)
	}
	eng.Close()
	eng = NewSharded(2, Microsecond, -1)
	if eng.Workers() != 1 {
		t.Errorf("workers clamped to %d, want 1", eng.Workers())
	}
	eng.Close()
}

// TestShardedStopFinishesWindow: Stop from a handler halts at the next
// window boundary — the window in progress completes on every shard, so
// stopping cannot make the fired set depend on worker interleaving.
func TestShardedStopFinishesWindow(t *testing.T) {
	var ref []logEntry
	for i, workers := range []int{1, 2, 4} {
		eng := NewSharded(4, 50*Microsecond, workers)
		actors := buildActors(eng, 3, 20*Microsecond, 30*Millisecond)
		actors[2].stopper = eng
		actors[2].stopN = 5
		eng.Run()
		eng.Close()
		var log []logEntry
		for _, g := range actors {
			log = append(log, g.log...)
		}
		if i == 0 {
			ref = log
			if len(ref) == 0 {
				t.Fatal("stopped run fired nothing")
			}
			continue
		}
		if !reflect.DeepEqual(log, ref) {
			t.Errorf("workers=%d: stopped run diverged from workers=1", workers)
		}
	}
}

func TestShardedRunUntil(t *testing.T) {
	eng := NewSharded(2, 10*Microsecond, 1)
	defer eng.Close()
	fired := 0
	var tick ArgHandler
	tick = func(a any) {
		fired++
		eng.Shard(0).ScheduleArg(7*Microsecond, tick, nil)
	}
	eng.Shard(0).ScheduleArg(0, tick, nil)
	eng.RunUntil(100 * Microsecond)
	if fired == 0 {
		t.Fatal("RunUntil fired nothing")
	}
	// Whole-window semantics: everything before the horizon fired, and
	// nothing beyond horizon+lookahead can have.
	if now := eng.Shard(0).Now(); now > 110*Microsecond {
		t.Errorf("clock ran to %v, beyond horizon+lookahead", now)
	}
	if eng.Pending() == 0 {
		t.Error("self-rescheduling chain should still be pending")
	}
}

// TestShardedSteadyStateZeroAllocs pins the zero-allocation contract on
// the windowed hot path: per-shard node pools, reused outboxes and the
// reused merge buffer mean a warmed-up engine executes whole windows —
// cross-shard traffic included — without allocating. Measured on the
// inline (workers=1) drain, which is the same code path the parallel
// workers run.
func TestShardedSteadyStateZeroAllocs(t *testing.T) {
	eng := NewSharded(4, 50*Microsecond, 1)
	defer eng.Close()
	actors := buildActors(eng, 11, 20*Microsecond, Time(math.Inf(1)))
	for _, g := range actors {
		g.log = make([]logEntry, 0, 1<<16) // pre-size so logging never grows
	}
	for i := 0; i < 2000; i++ { // warm pools, outboxes, scratch
		if !eng.StepWindow() {
			t.Fatal("engine ran dry during warmup")
		}
	}
	got := testing.AllocsPerRun(20, func() {
		for i := 0; i < 50; i++ {
			eng.StepWindow()
		}
	})
	if got != 0 {
		t.Errorf("%v allocs per 50 windows in steady state, want 0", got)
	}
}

// TestShardedParallelRace exists for the -race runs: the same workload
// as the determinism test, at 4 workers, long enough for windows to
// overlap every pairing of shards and workers. Any cross-shard touch
// outside the barrier protocol shows up as a race report.
func TestShardedParallelRace(t *testing.T) {
	log, _ := runActors(8, 4, 5)
	if len(log) == 0 {
		t.Fatal("race workload fired nothing")
	}
}
