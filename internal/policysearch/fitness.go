// Package policysearch turns the simulator into an optimizer: it
// evaluates the parameterized AffinitySteal policy family over a
// weighted fitness function, searches the (penalty, depth, bias)
// space for the best member, and answers counterfactual questions —
// "what would this run have looked like had decision #n gone to the
// other processor?" — by replaying a recorded decision ledger through
// the simulator's override hook.
//
// Everything here is deterministic: search evaluates candidates in a
// fixed order with a strict-improvement acceptance rule, and replay is
// exact — substituting the factual choice at every decision reproduces
// the factual Results bit for bit.
package policysearch

import "affinity/internal/sim"

// Weights prices each Results dimension into one scalar cost (lower is
// better). Every term is ≥ 0, so a policy can never buy fitness by
// overdriving one dimension into a negative price.
type Weights struct {
	// MeanDelay is the price per µs of mean packet delay.
	MeanDelay float64
	// P95Delay is the price per µs of 95th-percentile delay.
	P95Delay float64
	// Unfairness is the price per unit of (1 − Jain index) over
	// per-stream mean delays: 0 when perfectly even, up to the full
	// weight as one stream starves.
	Unfairness float64
	// GoodputShortfall is the price per pps by which delivered goodput
	// fell short of the offered rate — the term that punishes policies
	// that look fast only because they dropped or stranded load
	// (clamped at zero when goodput meets the offer).
	GoodputShortfall float64
}

// DefaultWeights prices a µs of P95 tail at a quarter of a µs of mean,
// a fully unfair run like 50 µs of mean delay, and each undelivered
// pps like 10 ns of delay — mean-delay-dominated, matching the paper's
// primary metric, with the other terms as tie-breakers and guardrails.
func DefaultWeights() Weights {
	return Weights{MeanDelay: 1, P95Delay: 0.25, Unfairness: 50, GoodputShortfall: 0.01}
}

// Fitness scores r under w; lower is better.
func Fitness(r sim.Results, w Weights) float64 {
	shortfall := r.OfferedRate - r.GoodputPPS
	if shortfall < 0 {
		shortfall = 0
	}
	unfair := 1 - r.DelayFairness
	if unfair < 0 {
		unfair = 0
	}
	return w.MeanDelay*r.MeanDelay + w.P95Delay*r.P95Delay +
		w.Unfairness*unfair + w.GoodputShortfall*shortfall
}
