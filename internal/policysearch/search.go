package policysearch

import (
	"math"
	"sort"

	"affinity/internal/sched"
	"affinity/internal/sim"
)

// Space is the AffinitySteal parameter grid the search seeds from.
// Axis values are evaluated in the order given; the search later
// refines between adjacent finite values, so list each axis sorted.
type Space struct {
	Penalties []float64 // µs a queued packet must age before a cold steal; +Inf pins
	Depths    []int     // queue depth below which stealing is off
	Biases    []float64 // probability of preferring a warm idle processor, [0,1]
}

// DefaultSpace covers the family's reduction corners — (0,0,0) is
// FCFS, (0,0,1) is MRU, (+Inf,·,·) is Wired-Streams — plus interior
// points where the interesting policies live.
func DefaultSpace() Space {
	return Space{
		Penalties: []float64{0, 25, 100, math.Inf(1)},
		Depths:    []int{0, 2, 8},
		Biases:    []float64{0, 0.5, 1},
	}
}

// Candidate is one evaluated member of the policy family.
type Candidate struct {
	Steal   sched.StealParams
	Fitness float64
	Results sim.Results
}

// Report is the outcome of a Search: the winner, every grid point
// evaluated (in grid order — penalty-major, then depth, then bias),
// and how many evaluations the search submitted in total (the
// memoizing pool may have simulated fewer).
type Report struct {
	Best      Candidate
	Grid      []Candidate
	Evaluated int
}

// Search finds the best AffinitySteal member for the workload base
// describes: a full-grid sweep over space, then coordinate descent that
// repeatedly bisects toward the best neighborhood on each axis.
// base.Policy and base.Steal are overwritten per candidate; everything
// else (paradigm, workload, seed, stop rule) is held fixed, so the
// comparison is apples-to-apples and every evaluation memoizes in pool.
//
// The search is deterministic: candidates are evaluated in a fixed
// order, a move is accepted only on strict fitness improvement, and
// equal-fitness grid points keep the earliest. Run it twice — or from
// two goroutines sharing the pool — and it returns the same Report.
func Search(pool *sim.Pool, base sim.Params, space Space, w Weights) Report {
	var rep Report
	var params []sim.Params
	var steals []sched.StealParams
	for _, pen := range space.Penalties {
		for _, dep := range space.Depths {
			for _, bias := range space.Biases {
				sp := sched.StealParams{Penalty: pen, DepthThreshold: dep, ColdBias: bias}
				steals = append(steals, sp)
				params = append(params, withSteal(base, sp))
			}
		}
	}
	results := pool.RunAll(params)
	rep.Evaluated = len(results)
	for i, res := range results {
		c := Candidate{Steal: steals[i], Fitness: Fitness(res, w), Results: res}
		rep.Grid = append(rep.Grid, c)
		if i == 0 || c.Fitness < rep.Best.Fitness {
			rep.Best = c
		}
	}

	// Coordinate descent: from the grid winner, probe midpoints toward
	// each axis neighbor (±1 steps for the integer depth axis), move on
	// strict improvement, stop when a full pass over the axes stands
	// still. Midpoints next to +Inf are skipped — there is no halfway
	// point to pinning.
	pens := sortedF(space.Penalties)
	biases := sortedF(space.Biases)
	for pass := 0; pass < 4; pass++ {
		moved := false
		cur := rep.Best.Steal
		for _, next := range []sched.StealParams{
			{Penalty: midToward(cur.Penalty, pens, -1), DepthThreshold: cur.DepthThreshold, ColdBias: cur.ColdBias},
			{Penalty: midToward(cur.Penalty, pens, +1), DepthThreshold: cur.DepthThreshold, ColdBias: cur.ColdBias},
			{Penalty: cur.Penalty, DepthThreshold: cur.DepthThreshold - 1, ColdBias: cur.ColdBias},
			{Penalty: cur.Penalty, DepthThreshold: cur.DepthThreshold + 1, ColdBias: cur.ColdBias},
			{Penalty: cur.Penalty, DepthThreshold: cur.DepthThreshold, ColdBias: midToward(cur.ColdBias, biases, -1)},
			{Penalty: cur.Penalty, DepthThreshold: cur.DepthThreshold, ColdBias: midToward(cur.ColdBias, biases, +1)},
		} {
			if next == rep.Best.Steal || !valid(next) {
				continue
			}
			res := pool.Run(withSteal(base, next))
			rep.Evaluated++
			if f := Fitness(res, w); f < rep.Best.Fitness {
				rep.Best = Candidate{Steal: next, Fitness: f, Results: res}
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return rep
}

func withSteal(base sim.Params, sp sched.StealParams) sim.Params {
	base.Policy = sched.AffinitySteal
	base.Steal = sp
	return base
}

func valid(sp sched.StealParams) bool {
	return sp.Penalty >= 0 && sp.DepthThreshold >= 0 &&
		sp.ColdBias >= 0 && sp.ColdBias <= 1
}

func sortedF(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// midToward returns the midpoint between v and its nearest axis value
// in direction dir (-1 below, +1 above), or v itself when there is no
// finite neighbor that way — midpoints with ±Inf don't exist, and a
// returned v is discarded by the caller's no-op check.
func midToward(v float64, axis []float64, dir int) float64 {
	if math.IsInf(v, 0) {
		return v
	}
	best := math.Inf(dir)
	found := false
	for _, a := range axis {
		if math.IsInf(a, 0) {
			continue
		}
		if dir < 0 && a < v && (!found || a > best) {
			best, found = a, true
		}
		if dir > 0 && a > v && (!found || a < best) {
			best, found = a, true
		}
	}
	if !found {
		return v
	}
	return (v + best) / 2
}
