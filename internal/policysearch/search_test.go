package policysearch

import (
	"math"
	"reflect"
	"testing"

	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/workload"
)

func searchBase() sim.Params {
	return sim.Params{
		Paradigm: sim.Locking,
		Workload: &workload.Spec{
			Name: "t",
			Classes: []workload.Class{
				{Name: "flows", Model: "poisson", Streams: 8, RatePPS: 9000, Zipf: 1},
			},
		},
		Processors:      4,
		Seed:            7,
		MeasuredPackets: 800,
	}
}

// The search is deterministic: the same base/space/weights produce the
// same Report whether the pool is fresh, reused, serial, or wide — the
// property the E35 golden and the -parallel CI diff rest on.
func TestSearchDeterministic(t *testing.T) {
	base := searchBase()
	space := DefaultSpace()
	w := DefaultWeights()
	a := Search(sim.NewPool(1), base, space, w)
	b := Search(sim.NewPool(8), base, space, w)
	shared := sim.NewPool(4)
	c := Search(shared, base, space, w)
	d := Search(shared, base, space, w) // warm cache: every point memoized
	for i, r := range []Report{b, c, d} {
		if !reflect.DeepEqual(a, r) {
			t.Errorf("report %d differs from the serial fresh-pool report", i)
		}
	}
	if hits, _ := shared.Stats(); hits == 0 {
		t.Error("second search on a shared pool hit the cache zero times")
	}
}

// The grid covers the full cross product in penalty-major declaration
// order, and the winner is at least as fit as every grid point —
// including the FCFS/MRU/Wired corners DefaultSpace carries, which is
// what makes the searched policy a superset of the paper menu.
func TestSearchGridShapeAndWinner(t *testing.T) {
	base := searchBase()
	space := DefaultSpace()
	rep := Search(sim.NewPool(4), base, space, DefaultWeights())
	want := len(space.Penalties) * len(space.Depths) * len(space.Biases)
	if len(rep.Grid) != want {
		t.Fatalf("grid has %d points, want %d", len(rep.Grid), want)
	}
	i := 0
	for _, pen := range space.Penalties {
		for _, dep := range space.Depths {
			for _, bias := range space.Biases {
				got := rep.Grid[i].Steal
				wantP := sched.StealParams{Penalty: pen, DepthThreshold: dep, ColdBias: bias}
				if got != wantP {
					t.Fatalf("grid[%d] = %+v, want %+v (penalty-major order)", i, got, wantP)
				}
				i++
			}
		}
	}
	for _, c := range rep.Grid {
		if c.Fitness < rep.Best.Fitness {
			t.Errorf("grid point %+v fitter than Best", c.Steal)
		}
	}
	if rep.Evaluated < want {
		t.Errorf("Evaluated = %d < grid size %d", rep.Evaluated, want)
	}
}

// Corner presence in DefaultSpace is a semantic guarantee, not an
// accident of the current numbers.
func TestDefaultSpaceContainsCorners(t *testing.T) {
	s := DefaultSpace()
	hasF := func(xs []float64, v float64) bool {
		for _, x := range xs {
			if x == v || (math.IsInf(v, 1) && math.IsInf(x, 1)) {
				return true
			}
		}
		return false
	}
	hasI := func(xs []int, v int) bool {
		for _, x := range xs {
			if x == v {
				return true
			}
		}
		return false
	}
	if !hasF(s.Penalties, 0) || !hasI(s.Depths, 0) || !hasF(s.Biases, 0) {
		t.Error("FCFS corner (0,0,0) missing from DefaultSpace")
	}
	if !hasF(s.Biases, 1) {
		t.Error("MRU corner (0,0,1) missing from DefaultSpace")
	}
	if !hasF(s.Penalties, math.Inf(1)) {
		t.Error("Wired-Streams corner (+Inf) missing from DefaultSpace")
	}
}

// Fitness is a weighted sum with clamped guardrail terms.
func TestFitness(t *testing.T) {
	r := sim.Results{
		MeanDelay:     100,
		P95Delay:      400,
		DelayFairness: 0.75,
		OfferedRate:   1000,
		GoodputPPS:    900,
	}
	w := Weights{MeanDelay: 1, P95Delay: 0.5, Unfairness: 40, GoodputShortfall: 0.1}
	want := 100.0 + 0.5*400 + 40*0.25 + 0.1*100
	if got := Fitness(r, w); math.Abs(got-want) > 1e-9 {
		t.Errorf("Fitness = %g, want %g", got, want)
	}
	// Over-delivery and over-unity fairness never pay a negative price.
	r.GoodputPPS = 2000
	r.DelayFairness = 1.5
	want = 100.0 + 0.5*400
	if got := Fitness(r, w); math.Abs(got-want) > 1e-9 {
		t.Errorf("clamped Fitness = %g, want %g", got, want)
	}
}

// Zero weights score everything zero — the degenerate but legal case.
func TestFitnessZeroWeights(t *testing.T) {
	if got := Fitness(sim.Results{MeanDelay: 123, P95Delay: 456}, Weights{}); got != 0 {
		t.Errorf("zero-weight fitness = %g, want 0", got)
	}
}

// midToward: midpoints exist only between finite neighbors, and ±Inf is
// never bisected toward.
func TestMidToward(t *testing.T) {
	axis := []float64{0, 25, 100, math.Inf(1)}
	cases := []struct {
		v    float64
		dir  int
		want float64
	}{
		{25, -1, 12.5},
		{25, +1, 62.5},
		{0, -1, 0},                 // no finite neighbor below
		{100, +1, 100},             // +Inf neighbor: no midpoint
		{math.Inf(1), -1, math.Inf(1)}, // pinned point never moves
	}
	for _, c := range cases {
		if got := midToward(c.v, axis, c.dir); got != c.want &&
			!(math.IsInf(c.want, 1) && math.IsInf(got, 1)) {
			t.Errorf("midToward(%g, %d) = %g, want %g", c.v, c.dir, got, c.want)
		}
	}
}

// valid rejects out-of-domain descent probes (the depth −1 neighbor of
// a depth-0 winner, bias outside [0,1]).
func TestValidDomain(t *testing.T) {
	good := []sched.StealParams{{}, {Penalty: math.Inf(1), DepthThreshold: 3, ColdBias: 1}}
	bad := []sched.StealParams{
		{Penalty: -1},
		{DepthThreshold: -1},
		{ColdBias: -0.25},
		{ColdBias: 1.5},
	}
	for _, sp := range good {
		if !valid(sp) {
			t.Errorf("valid(%+v) = false", sp)
		}
	}
	for _, sp := range bad {
		if valid(sp) {
			t.Errorf("valid(%+v) = true", sp)
		}
	}
}

// The descent only ever improves on the grid winner, and a
// single-point space (no neighbors, no midpoints) terminates
// immediately with that point.
func TestSearchSinglePointSpace(t *testing.T) {
	base := searchBase()
	space := Space{Penalties: []float64{25}, Depths: []int{1}, Biases: []float64{1}}
	rep := Search(sim.NewPool(1), base, space, DefaultWeights())
	if len(rep.Grid) != 1 || rep.Best.Steal != rep.Grid[0].Steal {
		t.Fatalf("single-point space: best %+v, grid %d points", rep.Best.Steal, len(rep.Grid))
	}
	if rep.Best.Fitness != Fitness(rep.Best.Results, DefaultWeights()) {
		t.Error("Best.Fitness does not match its own Results")
	}
}

// Searching with a ledger-less pool must leave base untouched — Search
// works on copies (a mutated caller Params would poison the caller's
// later runs).
func TestSearchDoesNotMutateBase(t *testing.T) {
	base := searchBase()
	before := base
	Search(sim.NewPool(2), base, Space{
		Penalties: []float64{0, 25}, Depths: []int{0}, Biases: []float64{0, 1},
	}, DefaultWeights())
	if !reflect.DeepEqual(before, base) {
		t.Errorf("Search mutated its base Params")
	}
}
