package policysearch

import (
	"math"
	"reflect"
	"testing"

	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/obs"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

func base(policy sched.Kind) sim.Params {
	return sim.Params{
		Paradigm:        sim.Locking,
		Policy:          policy,
		Streams:         8,
		Processors:      4,
		Arrival:         traffic.Poisson{PacketsPerSec: 1200},
		Seed:            42,
		MeasuredPackets: 1200,
	}
}

// The zero-perturbation identity, the contract everything else rests
// on: replaying the factual choice at every decision ordinal must
// reproduce the factual Results bit for bit — across policies with
// genuinely different decision structures, bursty arrivals, and fault
// transitions that reshape the candidate sets mid-run. If this drifts
// by one RNG draw, every counterfactual's "divergence is the
// substitution alone" claim is void.
func TestReplayFactualIsBitIdentical(t *testing.T) {
	shapes := map[string]func(*sim.Params){
		"poisson": func(p *sim.Params) {},
		"bursty": func(p *sim.Params) {
			p.Arrival = traffic.Batch{PacketsPerSec: 1200, MeanBurst: 8}
		},
		"faults": func(p *sim.Params) {
			p.Faults = (&faults.Plan{}).
				Down(50*des.Millisecond, 1).
				Up(120*des.Millisecond, 1)
			p.MaxQueueDepth = 64
		},
	}
	policies := []sched.Kind{sched.FCFS, sched.MRU, sched.ThreadPools, sched.WiredStreams}
	for name, shape := range shapes {
		for _, pol := range policies {
			p := base(pol)
			shape(&p)
			factual, ledger := Factual(p)
			if ledger.Len() == 0 {
				t.Fatalf("%s/%v: empty ledger", name, pol)
			}
			replayed := ReplayFactual(p, ledger)
			if !reflect.DeepEqual(factual, replayed) {
				t.Errorf("%s/%v: zero-perturbation replay diverged\nfactual:  %+v\nreplayed: %+v",
					name, pol, factual, replayed)
			}
		}
	}
}

// The identity must also hold for an interior AffinitySteal point —
// the dispatcher whose decisions the search actually replays.
func TestReplayFactualStealInterior(t *testing.T) {
	p := base(sched.AffinitySteal)
	p.Steal = sched.StealParams{Penalty: 25, DepthThreshold: 2, ColdBias: 1}
	p.Arrival = traffic.Batch{PacketsPerSec: 1200, MeanBurst: 8}
	factual, ledger := Factual(p)
	if got := ReplayFactual(p, ledger); !reflect.DeepEqual(factual, got) {
		t.Errorf("steal interior zero-perturbation replay diverged\nfactual:  %+v\nreplayed: %+v", factual, got)
	}
}

// An empty substitution list is the same identity by a different path:
// the override fires at every ordinal and always keeps the dispatcher's
// own choice.
func TestReplayNoSubstitutionsEqualsFactual(t *testing.T) {
	p := base(sched.MRU)
	factual, _ := Factual(p)
	replayed, led := Replay(p, nil)
	if !reflect.DeepEqual(factual, replayed) {
		t.Errorf("empty-substitution replay diverged from factual")
	}
	if led.Len() == 0 {
		t.Error("replay ledger empty — Replay must re-record the run's decisions")
	}
}

// Substitutions that cannot apply — an ordinal past the end of the run,
// or a processor the dispatcher never considered at that ordinal — must
// leave the replay exactly factual rather than panic or perturb.
func TestInapplicableSubstitutionsAreNoOps(t *testing.T) {
	p := base(sched.MRU)
	factual, ledger := Factual(p)
	subs := []Substitution{
		{Index: uint64(ledger.Len() + 1000), Proc: 0}, // past the end
		{Index: 0, Proc: 97},                          // never a candidate
	}
	replayed, _ := Replay(p, subs)
	if !reflect.DeepEqual(factual, replayed) {
		t.Errorf("inapplicable substitutions perturbed the replay")
	}
}

// A substitution that does apply must actually steer the run: find a
// multi-candidate decision whose candidate set contains a processor
// other than the chosen one, force it, and require the replayed run's
// own ledger to show the forced choice at that ordinal.
func TestSubstitutionForcesTheChoice(t *testing.T) {
	p := base(sched.MRU)
	_, ledger := Factual(p)
	idx := -1
	alt := -1
	for i := 0; i < ledger.Len(); i++ {
		d := ledger.At(i)
		for _, c := range d.Candidates {
			if c.Proc != d.Chosen {
				idx, alt = i, c.Proc
				break
			}
		}
		if idx >= 0 {
			break
		}
	}
	if idx < 0 {
		t.Fatal("no multi-candidate decision in the factual ledger")
	}
	_, replayLed := Replay(p, []Substitution{{Index: uint64(idx), Proc: alt}})
	// The replay is bit-identical up to the divergence point, so the
	// ordinal numbering agrees and decision idx exists in the new ledger.
	if got := replayLed.At(idx).Chosen; got != alt {
		t.Errorf("decision %d chose %d under substitution, want forced %d", idx, got, alt)
	}
	for i := 0; i < idx; i++ {
		if !reflect.DeepEqual(ledger.At(i), replayLed.At(i)) {
			t.Errorf("decision %d before the divergence point differs", i)
		}
	}
}

// Every counterfactual replay is still a complete, conserved
// simulation: the 4-term packet-conservation ledger and the shared
// invariant checkers must hold on substituted runs, including under
// faults and bounded queues.
func TestReplayedRunsConserve(t *testing.T) {
	p := base(sched.MRU)
	p.Faults = (&faults.Plan{}).
		Down(40*des.Millisecond, 0).
		Up(90*des.Millisecond, 0)
	p.MaxQueueDepth = 32
	_, ledger := Factual(p)
	n := ledger.Len()
	for _, idx := range []int{0, n / 3, n / 2, n - 1} {
		d := ledger.At(idx)
		for _, c := range d.Candidates {
			res, _ := Replay(p, []Substitution{{Index: uint64(idx), Proc: c.Proc}})
			if err := sim.CheckInvariants(res); err != nil {
				t.Errorf("substitution idx=%d proc=%d: %v", idx, c.Proc, err)
			}
		}
	}
}

// TopK: descending predicted gain, only positive-regret decisions, the
// substituted processor is the cheapest candidate, and RealizedGain is
// exactly the ground-truth re-simulation delta (that is its definition;
// pinning it here keeps E36's "validated against re-simulation" claim
// honest if the implementation is ever refactored).
func TestTopKSemantics(t *testing.T) {
	p := base(sched.FCFS) // blind placement: plenty of regret
	factual, ledger := Factual(p)
	k := 4
	cfs := TopK(p, factual, ledger, k)
	if len(cfs) == 0 || len(cfs) > k {
		t.Fatalf("TopK returned %d counterfactuals, want 1..%d", len(cfs), k)
	}
	for i, cf := range cfs {
		if cf.PredictedGain <= 0 {
			t.Errorf("counterfactual %d has non-positive predicted gain %g", i, cf.PredictedGain)
		}
		if i > 0 && cf.PredictedGain > cfs[i-1].PredictedGain {
			t.Errorf("counterfactuals out of descending predicted-gain order at %d", i)
		}
		d := cf.Decision
		if got := d.Regret(); math.Abs(got-cf.PredictedGain) > 1e-12 {
			t.Errorf("counterfactual %d: predicted gain %g != decision regret %g", i, cf.PredictedGain, got)
		}
		for _, c := range d.Candidates {
			if c.Cost < d.BestCost {
				t.Errorf("counterfactual %d: candidate %d cheaper than BestCost", i, c.Proc)
			}
		}
		want := factual.MeanDelay - cf.Replayed.MeanDelay
		if math.Abs(cf.RealizedGain-want) > 1e-12 {
			t.Errorf("counterfactual %d: realized gain %g != factual−replayed %g", i, cf.RealizedGain, want)
		}
		if err := sim.CheckInvariants(cf.Replayed); err != nil {
			t.Errorf("counterfactual %d replay: %v", i, err)
		}
	}
}

// A zero-regret run (single processor: every decision's only candidate
// is the choice) has no counterfactuals to offer, at any k.
func TestTopKSkipsZeroRegret(t *testing.T) {
	p := base(sched.FCFS)
	p.Processors = 1
	p.Streams = 2
	p.Arrival = traffic.Poisson{PacketsPerSec: 1500}
	factual, ledger := Factual(p)
	if got := TopK(p, factual, ledger, 8); len(got) != 0 {
		t.Errorf("TopK on a 1-processor run returned %d counterfactuals, want 0", len(got))
	}
}

// Factual tees an existing recorder rather than replacing it: both the
// caller's recorder and the returned ledger must see every decision.
func TestFactualPreservesCallerRecorder(t *testing.T) {
	p := base(sched.MRU)
	mine := newCountingRecorder()
	p.DecisionRecorder = mine
	_, ledger := Factual(p)
	if mine.n == 0 || mine.n != ledger.Len() {
		t.Errorf("caller recorder saw %d decisions, ledger %d — tee broken", mine.n, ledger.Len())
	}
}

type countingRecorder struct{ n int }

func newCountingRecorder() *countingRecorder { return &countingRecorder{} }

func (c *countingRecorder) RecordDecision(obs.Decision) { c.n++ }
