package policysearch

import (
	"reflect"
	"testing"

	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// FuzzCounterfactualConservation drives the replay engine with
// arbitrary substitution sets over arbitrary runs — random seeds,
// policies, burst shapes, fault windows and queue bounds — and holds
// the replayed run to the same contracts as any factual run:
//
//   - the 4-term packet-conservation ledger and the shared invariant
//     checkers hold (a substitution may reroute packets, never leak
//     them);
//   - the replay is deterministic (same substitutions, same Results);
//   - substituting every factual choice back in reproduces the factual
//     run bit for bit, whatever the run looked like.
//
// Wired into the CI fuzz step next to the engine/backend fuzzers.
func FuzzCounterfactualConservation(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(6000), false, uint8(0), uint32(3), uint8(1), uint32(40), uint8(3))
	f.Add(int64(7), uint8(1), uint16(9000), true, uint8(32), uint32(0), uint8(0), uint32(9999), uint8(2))
	f.Add(int64(42), uint8(2), uint16(12000), true, uint8(8), uint32(17), uint8(3), uint32(17), uint8(0))
	f.Add(int64(-5), uint8(3), uint16(3000), false, uint8(0), uint32(100), uint8(2), uint32(101), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, polByte uint8, rate uint16, withFaults bool,
		maxq uint8, idx1 uint32, proc1 uint8, idx2 uint32, proc2 uint8) {
		policies := []sched.Kind{sched.FCFS, sched.MRU, sched.ThreadPools, sched.WiredStreams}
		p := sim.Params{
			Paradigm:        sim.Locking,
			Policy:          policies[int(polByte)%len(policies)],
			Streams:         6,
			Processors:      4,
			Arrival:         traffic.Poisson{PacketsPerSec: float64(rate%20000) + 500},
			Seed:            seed,
			MeasuredPackets: 400,
			MaxQueueDepth:   int(maxq),
		}
		if withFaults {
			p.Faults = (&faults.Plan{}).
				Down(20*des.Millisecond, int(proc1)%p.Processors).
				Up(60*des.Millisecond, int(proc1)%p.Processors)
		}
		factual, ledger := Factual(p)
		if err := sim.CheckInvariants(factual); err != nil {
			t.Fatalf("factual run broken before any substitution: %v", err)
		}
		if ledger.Len() == 0 {
			return
		}
		subs := []Substitution{
			{Index: uint64(idx1) % uint64(ledger.Len()), Proc: int(proc1) % p.Processors},
			{Index: uint64(idx2) % uint64(2*ledger.Len()), Proc: int(proc2) % p.Processors},
		}
		res, _ := Replay(p, subs)
		if err := sim.CheckInvariants(res); err != nil {
			t.Fatalf("substituted replay violates invariants (subs %+v): %v", subs, err)
		}
		if res.Arrivals != res.CompletedTotal+uint64(res.InFlightAtEnd)+uint64(res.QueueAtEnd)+res.Dropped {
			t.Fatalf("replay leaks packets: arrivals %d, completed %d, in-flight %d, queued %d, dropped %d",
				res.Arrivals, res.CompletedTotal, res.InFlightAtEnd, res.QueueAtEnd, res.Dropped)
		}
		if res2, _ := Replay(p, subs); !reflect.DeepEqual(res, res2) {
			t.Fatal("same substitutions, different replay Results")
		}
		if got := ReplayFactual(p, ledger); !reflect.DeepEqual(factual, got) {
			t.Fatal("zero-perturbation replay diverged from factual")
		}
	})
}
