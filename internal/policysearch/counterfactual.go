package policysearch

import (
	"sort"

	"affinity/internal/obs"
	"affinity/internal/sim"
)

// The counterfactual engine answers "what if decision #n had gone the
// other way?" exactly, by re-simulation rather than extrapolation: a
// factual run records its full decision ledger, a substitution forces a
// different (considered) candidate at one or more ordinals through
// sim.Params.DecisionOverride, and the simulator re-runs from t=0.
// Determinism makes this sound — the replay is bit-identical to the
// factual run up to the first applied substitution (the divergence
// point) because the override is consulted only after the factual
// choice, and its RNG draws, have already been made.

// Substitution forces decision Index (the ledger ordinal: decision i
// of the run, 0-based) to choose Proc instead of its factual choice.
// A substitution naming a processor outside the candidate set actually
// considered at that ordinal during the replay is inapplicable and
// silently keeps the replay's own choice: counterfactuals range over
// the alternatives the dispatcher really had, not arbitrary rewrites.
type Substitution struct {
	Index uint64
	Proc  int
}

// Factual runs p with a fresh ledger attached (tee'd after any recorder
// p already carries) and returns the results together with the ledger
// to replay against.
func Factual(p sim.Params) (sim.Results, *obs.LedgerRecorder) {
	led := obs.NewLedgerRecorder()
	p.DecisionRecorder = obs.DecisionMulti(p.DecisionRecorder, led)
	return sim.Run(p), led
}

// Replay re-runs p with subs forced in. Like Factual it attaches a
// fresh ledger — so a replayed Results is field-for-field comparable
// to a Factual one, DecisionsRecorded included — and returns it; the
// replay ledger holds the counterfactual run's own decisions (realized
// costs under the substitution, not predictions).
//
// p must be the factual run's Params (any DecisionOverride already set
// is replaced). Duplicate indices in subs keep the last.
func Replay(p sim.Params, subs []Substitution) (sim.Results, *obs.LedgerRecorder) {
	forced := make(map[uint64]int, len(subs))
	for _, s := range subs {
		forced[s.Index] = s.Proc
	}
	p.DecisionOverride = func(n uint64, _ obs.DecisionPoint, cands []int, chosen int) int {
		proc, ok := forced[n]
		if !ok {
			return chosen
		}
		for _, c := range cands {
			if c == proc {
				return proc
			}
		}
		return chosen // inapplicable: proc was not a candidate this time
	}
	led := obs.NewLedgerRecorder()
	p.DecisionRecorder = obs.DecisionMulti(p.DecisionRecorder, led)
	return sim.Run(p), led
}

// ReplayFactual replays ledger against p forcing the *factual* choice
// at every ordinal — the zero-perturbation identity. The returned
// Results must equal the factual run's bit for bit; the metamorphic
// test pack pins this, and it is what licenses trusting any other
// replay's divergence to the substitution alone.
func ReplayFactual(p sim.Params, ledger *obs.LedgerRecorder) sim.Results {
	subs := make([]Substitution, ledger.Len())
	for i := range subs {
		subs[i] = Substitution{Index: uint64(i), Proc: ledger.At(i).Chosen}
	}
	res, _ := Replay(p, subs)
	return res
}

// Counterfactual is one substituted decision with its predicted and
// realized effect.
type Counterfactual struct {
	Index    uint64       // ledger ordinal substituted
	Decision obs.Decision // the factual decision at that ordinal
	Proc     int          // the alternative forced (cheapest candidate)
	// PredictedGain is the factual decision's Regret(): the µs the
	// one-step cost model predicts the alternative saves on that single
	// packet, ignoring every downstream consequence.
	PredictedGain float64
	// RealizedGain is factual mean delay minus replayed mean delay, µs
	// (> 0 when the alternative genuinely helped). E36 compares it
	// against PredictedGain to expose how far one-step regret is from
	// ground truth.
	RealizedGain float64
	Replayed     sim.Results
}

// TopK finds the k highest-regret decisions in the factual ledger,
// substitutes each one's cheapest candidate (one at a time), and
// re-simulates each counterfactual. Results come back in descending
// predicted-gain order; ties and candidate scans break deterministically
// toward the lower ordinal / lower processor id. Zero-regret decisions
// (the choice already was the cheapest) are never substituted.
func TopK(p sim.Params, factual sim.Results, ledger *obs.LedgerRecorder, k int) []Counterfactual {
	type pick struct {
		idx    int
		regret float64
	}
	picks := make([]pick, 0, ledger.Len())
	for i := 0; i < ledger.Len(); i++ {
		if r := ledger.At(i).Regret(); r > 0 {
			picks = append(picks, pick{i, r})
		}
	}
	sort.SliceStable(picks, func(a, b int) bool {
		if picks[a].regret != picks[b].regret {
			return picks[a].regret > picks[b].regret
		}
		return picks[a].idx < picks[b].idx
	})
	if k > len(picks) {
		k = len(picks)
	}
	out := make([]Counterfactual, 0, k)
	for _, pk := range picks[:k] {
		d := ledger.At(pk.idx)
		best, bestCost := d.Chosen, d.ChosenCost
		for _, c := range d.Candidates {
			if c.Cost < bestCost || (c.Cost == bestCost && c.Proc < best) {
				best, bestCost = c.Proc, c.Cost
			}
		}
		res, _ := Replay(p, []Substitution{{Index: uint64(pk.idx), Proc: best}})
		out = append(out, Counterfactual{
			Index:         uint64(pk.idx),
			Decision:      d,
			Proc:          best,
			PredictedGain: pk.regret,
			RealizedGain:  factual.MeanDelay - res.MeanDelay,
			Replayed:      res,
		})
	}
	return out
}
