package obs

import (
	"bytes"
	"testing"
)

func TestEventsCSVRoundTripDropReason(t *testing.T) {
	want := []Event{
		{T: 1.5, Kind: KindArrival, Proc: -1, Stream: 0, Entity: 0, Seq: 1},
		{T: 2, Kind: KindExecStart, Proc: 1, Stream: 0, Entity: 0, Seq: 1,
			Dur: 10, Val: 250.5, Flags: FlagMigrated | FlagWarm},
		{T: 3, Kind: KindDrop, Proc: -1, Stream: 2, Entity: 2, Seq: 5, Val: DropReasonQueue},
		{T: 4, Kind: KindDrop, Proc: -1, Stream: 2, Entity: 2, Seq: 6, Val: DropReasonLoss},
		{T: 5, Kind: KindGaugeQueue, Proc: -1, Stream: -1, Entity: -1, Val: 0},
	}
	var buf bytes.Buffer
	c := NewCSV(&buf)
	for _, e := range want {
		c.Record(e)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The drop rows must show readable reasons, not raw floats.
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte(",queue\n")) ||
		!bytes.Contains(buf.Bytes(), []byte(",loss\n")) {
		t.Fatalf("drop reasons not readable in:\n%s", out)
	}
	got, err := ReadEventsCSV(&buf)
	if err != nil {
		t.Fatalf("ReadEventsCSV: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("events=%d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDropReasonStrings(t *testing.T) {
	if DropReasonString(DropReasonQueue) != "queue" || DropReasonString(DropReasonLoss) != "loss" {
		t.Fatal("drop reason names wrong")
	}
	if DropReasonString(7) != "" {
		t.Fatal("unknown reason must render empty")
	}
	if v, ok := ParseDropReason("loss"); !ok || v != DropReasonLoss {
		t.Fatal("ParseDropReason(loss) wrong")
	}
	if _, ok := ParseDropReason("bogus"); ok {
		t.Fatal("ParseDropReason accepted garbage")
	}
}

func TestParseKind(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		back, ok := ParseKind(k.String())
		if !ok || back != k {
			t.Fatalf("ParseKind(%q) = %v,%v", k.String(), back, ok)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Fatal("ParseKind accepted garbage")
	}
}

func TestAnalyzeLedger(t *testing.T) {
	ds := []Decision{
		// stream 0: chosen == preferred, zero regret
		{Point: PointPlace, Stream: 0, Chosen: 1, Preferred: 1, ChosenCost: 100, BestCost: 100},
		// stream 1: moved off its preferred proc twice, regret 3 and 0.5
		{Point: PointPlace, Stream: 1, Chosen: 2, Preferred: 0, ChosenCost: 103, BestCost: 100},
		{Point: PointDispatch, Stream: 1, Chosen: 2, Preferred: 0, ChosenCost: 100.5, BestCost: 100},
		// stream 2: no affinity target yet
		{Point: PointSpill, Stream: 2, Chosen: 0, Preferred: -1, ChosenCost: 100, BestCost: 100},
	}
	rep := AnalyzeLedger(ds)
	if rep.Total != 4 {
		t.Fatalf("total=%d", rep.Total)
	}
	if rep.ByPoint["place"] != 2 || rep.ByPoint["dispatch"] != 1 || rep.ByPoint["spill"] != 1 {
		t.Fatalf("by point: %v", rep.ByPoint)
	}
	if rep.ZeroRegret != 2 || rep.TotalRegret != 3.5 || rep.MaxRegret != 3 {
		t.Fatalf("regret: zero=%d total=%g max=%g", rep.ZeroRegret, rep.TotalRegret, rep.MaxRegret)
	}
	if rep.MeanRegret() != 3.5/4 {
		t.Fatalf("mean regret=%g", rep.MeanRegret())
	}
	// Histogram: zero bucket 2, (0,1] holds 0.5, (1,2] empty, (2,4] holds 3.
	if len(rep.Hist) != 4 || rep.Hist[0].Count != 2 ||
		rep.Hist[1].Count != 1 || rep.Hist[2].Count != 0 || rep.Hist[3].Count != 1 {
		t.Fatalf("hist: %+v", rep.Hist)
	}
	// Stream 1 leads with 2 moves.
	if rep.Streams[0].Stream != 1 || rep.Streams[0].Moves != 2 || rep.Streams[0].Regret != 3.5 {
		t.Fatalf("top stream: %+v", rep.Streams[0])
	}
	if rep.Streams[1].Moves != 0 || rep.Streams[2].Moves != 0 {
		t.Fatalf("streams: %+v", rep.Streams)
	}

	empty := AnalyzeLedger(nil)
	if empty.Total != 0 || empty.MeanRegret() != 0 || len(empty.Hist) != 1 {
		t.Fatalf("empty ledger report: %+v", empty)
	}
}

func TestReorderingByStream(t *testing.T) {
	// Stream 0 packets arrive as seqs 1,3,5 and complete 1,5,3: one
	// completion (seq 3, rank 1) lands after rank 2 finished → distance 1.
	// Stream 1 packets 2,4 complete in order.
	evs := []Event{
		{T: 0, Kind: KindArrival, Stream: 0, Seq: 1},
		{T: 1, Kind: KindArrival, Stream: 1, Seq: 2},
		{T: 2, Kind: KindArrival, Stream: 0, Seq: 3},
		{T: 3, Kind: KindArrival, Stream: 1, Seq: 4},
		{T: 4, Kind: KindArrival, Stream: 0, Seq: 5},
		{T: 10, Kind: KindExecEnd, Stream: 0, Seq: 1},
		{T: 11, Kind: KindExecEnd, Stream: 1, Seq: 2},
		{T: 12, Kind: KindExecEnd, Stream: 0, Seq: 5},
		{T: 13, Kind: KindExecEnd, Stream: 1, Seq: 4},
		{T: 14, Kind: KindExecEnd, Stream: 0, Seq: 3},
	}
	got := ReorderingByStream(evs)
	if len(got) != 2 {
		t.Fatalf("streams=%d", len(got))
	}
	if got[0] != (StreamReorder{Stream: 0, Completions: 3, Reordered: 1, MaxDistance: 1}) {
		t.Fatalf("stream 0: %+v", got[0])
	}
	if got[1] != (StreamReorder{Stream: 1, Completions: 2, Reordered: 0, MaxDistance: 0}) {
		t.Fatalf("stream 1: %+v", got[1])
	}
}

func TestReorderingByStreamNoArrivals(t *testing.T) {
	// Without arrivals the ranks fall back to the completions' own seqs.
	evs := []Event{
		{T: 10, Kind: KindExecEnd, Stream: 0, Seq: 9},
		{T: 11, Kind: KindExecEnd, Stream: 0, Seq: 4},
	}
	got := ReorderingByStream(evs)
	if len(got) != 1 || got[0].Reordered != 1 || got[0].MaxDistance != 1 {
		t.Fatalf("fallback: %+v", got)
	}
}
