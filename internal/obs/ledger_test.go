package obs

import (
	"reflect"
	"testing"
)

// The ledger must copy candidate sets out of the emitter's scratch
// buffer: the simulator reuses one buffer for every decision, so an
// aliasing recorder would see its history rewritten by later decisions.
func TestLedgerRecorderCopiesCandidates(t *testing.T) {
	l := NewLedgerRecorder()
	scratch := make([]Candidate, 3)
	const n = 2000 // enough records to force several arena reallocations
	for i := 0; i < n; i++ {
		for j := range scratch {
			scratch[j] = Candidate{Proc: j, Cost: float64(i*10 + j)}
		}
		l.RecordDecision(Decision{
			Seq:        uint64(i),
			Chosen:     i % 3,
			Candidates: scratch[:1+i%3],
		})
	}
	if l.Len() != n {
		t.Fatalf("Len() = %d, want %d", l.Len(), n)
	}
	for i := 0; i < n; i++ {
		d := l.At(i)
		if d.Seq != uint64(i) {
			t.Fatalf("At(%d).Seq = %d — ledger out of recording order", i, d.Seq)
		}
		want := make([]Candidate, 1+i%3)
		for j := range want {
			want[j] = Candidate{Proc: j, Cost: float64(i*10 + j)}
		}
		if !reflect.DeepEqual(d.Candidates, want) {
			t.Fatalf("At(%d).Candidates = %+v, want %+v — scratch buffer aliased", i, d.Candidates, want)
		}
	}
	if got := l.Decisions(); len(got) != n || &got[0] != &l.decisions[0] {
		t.Errorf("Decisions() should expose the recorder's own storage in order")
	}
}

// Appending to a retained candidate slice must not bleed into the next
// decision's block (the arena blocks are capacity-clamped).
func TestLedgerRecorderBlocksAreClamped(t *testing.T) {
	l := NewLedgerRecorder()
	l.RecordDecision(Decision{Seq: 0, Candidates: []Candidate{{Proc: 1}}})
	l.RecordDecision(Decision{Seq: 1, Candidates: []Candidate{{Proc: 2}}})
	first := l.At(0).Candidates
	_ = append(first, Candidate{Proc: 99})
	if got := l.At(1).Candidates[0].Proc; got != 2 {
		t.Fatalf("appending to decision 0's candidates corrupted decision 1 (Proc = %d)", got)
	}
}
