package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func exportSnapshot() Snapshot {
	m := NewMetrics()
	m.Record(Event{T: 0, Kind: KindArrival, Proc: -1, Stream: 0, Seq: 1})
	m.Record(Event{T: 5, Kind: KindDispatch, Proc: 1, Stream: 0, Seq: 1, Dur: 5})
	m.Record(Event{T: 5, Kind: KindExecStart, Proc: 1, Stream: 0, Seq: 1, Dur: 100, Val: math.Inf(1), Flags: FlagCold})
	m.Record(Event{T: 105, Kind: KindExecEnd, Proc: 1, Stream: 0, Seq: 1, Dur: 100})
	m.Record(Event{T: 105, Kind: KindProcIdle, Proc: 1, Dur: 100})
	m.Record(Event{T: 110, Kind: KindDrop, Stream: 1, Seq: 2, Val: DropReasonLoss})
	m.Record(Event{T: 120, Kind: KindGaugeQueue, Val: 4})
	return m.Snapshot()
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, exportSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`affinity_events_total{kind="arrival"} 1`,
		`affinity_events_total{kind="drop"} 1`,
		`affinity_proc_busy_us{proc="1"} 100`,
		"# TYPE affinity_events_total counter",
		"affinity_exec_time_us_count 1",
		"affinity_exec_time_us_mean 100",
		"affinity_queue_wait_us_mean 5",
		"affinity_queue_depth_mean 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Empty summaries must not emit series.
	if strings.Contains(out, "down_interval") {
		t.Errorf("empty summary emitted:\n%s", out)
	}
	// Deterministic: same snapshot, same bytes.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, exportSnapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("prometheus output is not deterministic")
	}
}

func TestWriteMetricsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, exportSnapshot()); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if back.Arrivals != 1 || back.Drops != 1 || back.Counts["exec_end"] != 1 {
		t.Fatalf("round-trip lost counters: %+v", back)
	}
}
