package obs

import (
	"bufio"
	"io"
	"strconv"
)

// DecisionCSV streams every decision as one row of the ledger CSV:
//
//	t_us,point,seq,stream,entity,chosen,preferred,ncand,chosen_cost_us,best_cost_us,regret_us,candidates
//
// The candidates column encodes the considered set as
// "proc:w:cost|proc:c:cost|…" (w = predicted warm, c = cold/displaced),
// comma-free so the row needs no quoting. Rows are hand-built into a
// reused scratch buffer like the event CSV sink; Record performs no
// steady-state allocation. Close flushes.
type DecisionCSV struct {
	w      *bufio.Writer
	row    []byte
	err    error
	closed bool
}

const decisionCSVHeader = "t_us,point,seq,stream,entity,chosen,preferred," +
	"ncand,chosen_cost_us,best_cost_us,regret_us,candidates\n"

// NewDecisionCSV returns a ledger sink writing rows (header included)
// to w.
func NewDecisionCSV(w io.Writer) *DecisionCSV {
	c := &DecisionCSV{
		w:   bufio.NewWriter(w),
		row: make([]byte, 0, 256),
	}
	_, c.err = c.w.WriteString(decisionCSVHeader)
	return c
}

// appendCandidates encodes the candidate set into b.
func appendCandidates(b []byte, cands []Candidate) []byte {
	for i, cd := range cands {
		if i > 0 {
			b = append(b, '|')
		}
		b = strconv.AppendInt(b, int64(cd.Proc), 10)
		if cd.Warm {
			b = append(b, ":w:"...)
		} else {
			b = append(b, ":c:"...)
		}
		b = strconv.AppendFloat(b, cd.Cost, 'g', -1, 64)
	}
	return b
}

// RecordDecision implements DecisionRecorder.
func (c *DecisionCSV) RecordDecision(d Decision) {
	if c.err != nil || c.closed {
		return
	}
	b := c.row[:0]
	b = strconv.AppendFloat(b, d.T, 'g', -1, 64)
	b = append(b, ',')
	b = append(b, d.Point.String()...)
	b = append(b, ',')
	b = strconv.AppendUint(b, d.Seq, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(d.Stream), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(d.Entity), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(d.Chosen), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(d.Preferred), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(len(d.Candidates)), 10)
	b = append(b, ',')
	b = strconv.AppendFloat(b, d.ChosenCost, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, d.BestCost, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, d.Regret(), 'g', -1, 64)
	b = append(b, ',')
	b = appendCandidates(b, d.Candidates)
	b = append(b, '\n')
	c.row = b
	_, c.err = c.w.Write(b)
}

// Err returns the first write error, if any.
func (c *DecisionCSV) Err() error { return c.err }

// Close flushes buffered rows. Decisions recorded after Close are
// dropped.
func (c *DecisionCSV) Close() error {
	if c.closed {
		return c.err
	}
	c.closed = true
	if err := c.w.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}

// DecisionJSONL streams every decision as one JSON object per line
// (JSON Lines), for tools that prefer structure to columns:
//
//	{"t_us":12.5,"point":"place","seq":3,"stream":1,"entity":1,
//	 "chosen":2,"preferred":-1,"chosen_cost_us":284.3,"best_cost_us":284.3,
//	 "candidates":[{"proc":2,"warm":false,"cost_us":284.3}]}
//
// Records are hand-serialized into a reused buffer (every field is a
// number, bool or enum name — nothing needs escaping), so Record
// performs no steady-state allocation. Close flushes.
type DecisionJSONL struct {
	w      *bufio.Writer
	row    []byte
	err    error
	closed bool
}

// NewDecisionJSONL returns a JSON-lines ledger sink writing to w.
func NewDecisionJSONL(w io.Writer) *DecisionJSONL {
	return &DecisionJSONL{
		w:   bufio.NewWriter(w),
		row: make([]byte, 0, 512),
	}
}

// RecordDecision implements DecisionRecorder.
func (c *DecisionJSONL) RecordDecision(d Decision) {
	if c.err != nil || c.closed {
		return
	}
	b := c.row[:0]
	b = append(b, `{"t_us":`...)
	b = strconv.AppendFloat(b, d.T, 'g', -1, 64)
	b = append(b, `,"point":"`...)
	b = append(b, d.Point.String()...)
	b = append(b, `","seq":`...)
	b = strconv.AppendUint(b, d.Seq, 10)
	b = append(b, `,"stream":`...)
	b = strconv.AppendInt(b, int64(d.Stream), 10)
	b = append(b, `,"entity":`...)
	b = strconv.AppendInt(b, int64(d.Entity), 10)
	b = append(b, `,"chosen":`...)
	b = strconv.AppendInt(b, int64(d.Chosen), 10)
	b = append(b, `,"preferred":`...)
	b = strconv.AppendInt(b, int64(d.Preferred), 10)
	b = append(b, `,"chosen_cost_us":`...)
	b = strconv.AppendFloat(b, d.ChosenCost, 'g', -1, 64)
	b = append(b, `,"best_cost_us":`...)
	b = strconv.AppendFloat(b, d.BestCost, 'g', -1, 64)
	b = append(b, `,"candidates":[`...)
	for i, cd := range d.Candidates {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"proc":`...)
		b = strconv.AppendInt(b, int64(cd.Proc), 10)
		if cd.Warm {
			b = append(b, `,"warm":true,"cost_us":`...)
		} else {
			b = append(b, `,"warm":false,"cost_us":`...)
		}
		b = strconv.AppendFloat(b, cd.Cost, 'g', -1, 64)
		b = append(b, '}')
	}
	b = append(b, "]}\n"...)
	c.row = b
	_, c.err = c.w.Write(b)
}

// Err returns the first write error, if any.
func (c *DecisionJSONL) Err() error { return c.err }

// Close flushes buffered lines. Decisions recorded after Close are
// dropped.
func (c *DecisionJSONL) Close() error {
	if c.closed {
		return c.err
	}
	c.closed = true
	if err := c.w.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}
