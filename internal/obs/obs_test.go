package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if Kind(200).String() != "Kind(200)" {
		t.Fatal("unknown kind must fall back to Kind(n)")
	}
	if !KindGaugeQueue.Gauge() || KindArrival.Gauge() {
		t.Fatal("Gauge() misclassifies kinds")
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagCold | FlagMigrated | FlagLocked).String(); s != "cold|migrated|locked" {
		t.Fatalf("flags string = %q", s)
	}
	if s := Flags(0).String(); s != "" {
		t.Fatalf("zero flags string = %q", s)
	}
}

func TestMetricsCountsAndTimers(t *testing.T) {
	m := NewMetrics()
	m.Record(Event{T: 0, Kind: KindArrival, Proc: -1, Stream: 0, Entity: 0, Seq: 1})
	m.Record(Event{T: 5, Kind: KindDispatch, Proc: 2, Stream: 0, Entity: 0, Seq: 1, Dur: 5})
	m.Record(Event{T: 5, Kind: KindExecStart, Proc: 2, Stream: 0, Entity: 0, Seq: 1, Dur: 100, Val: math.Inf(1), Flags: FlagCold})
	m.Record(Event{T: 105, Kind: KindExecEnd, Proc: 2, Stream: 0, Entity: 0, Seq: 1, Dur: 100})
	m.Record(Event{T: 105, Kind: KindProcIdle, Proc: 2, Dur: 100})
	m.Record(Event{T: 200, Kind: KindGaugeQueue, Proc: -1, Val: 3})

	s := m.Snapshot()
	if s.Events != 6 || m.Events() != 6 {
		t.Fatalf("events = %d, want 6", s.Events)
	}
	if s.Arrivals != 1 || s.Dispatches != 1 || s.Completions != 1 {
		t.Fatalf("lifecycle counts wrong: %+v", s)
	}
	if s.ExecTime.N != 1 || s.ExecTime.Mean != 100 {
		t.Fatalf("exec timer: %+v", s.ExecTime)
	}
	if s.QueueWait.Mean != 5 {
		t.Fatalf("queue wait: %+v", s.QueueWait)
	}
	if len(s.PerProcBusy) != 3 || s.PerProcBusy[2] != 100 {
		t.Fatalf("per-proc busy: %v", s.PerProcBusy)
	}
	if s.QueueDepth.Mean != 3 {
		t.Fatalf("queue depth: %+v", s.QueueDepth)
	}
	if s.Counts["arrival"] != 1 || s.Counts["exec_end"] != 1 {
		t.Fatalf("counts map: %v", s.Counts)
	}
	if m.Count(KindArrival) != 1 || m.Count(Kind(250)) != 0 {
		t.Fatal("Count accessor wrong")
	}
}

func TestMultiFanOutAndFind(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing must be nil")
	}
	if Multi(nil, a) != Recorder(a) {
		t.Fatal("Multi of one must be that recorder")
	}
	tee := Multi(a, nil, b)
	tee.Record(Event{Kind: KindArrival})
	if a.Events() != 1 || b.Events() != 1 {
		t.Fatal("tee did not fan out")
	}
	if FindMetrics(tee) != a {
		t.Fatal("FindMetrics missed the first metrics sink")
	}
	if FindMetrics(nil) != nil || FindMetrics(NewCSV(&bytes.Buffer{})) != nil {
		t.Fatal("FindMetrics false positive")
	}
	if FindMetrics(Multi(NewCSV(&bytes.Buffer{}), b)) != b {
		t.Fatal("FindMetrics missed a nested sink")
	}
}

// chromeEvents replays events through a ChromeTrace and parses the output.
func chromeEvents(t *testing.T, evs []Event) []map[string]any {
	t.Helper()
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	for _, e := range evs {
		ct.Record(e)
	}
	if err := ct.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	return out
}

func TestChromeTraceValidJSON(t *testing.T) {
	out := chromeEvents(t, []Event{
		{T: 0, Kind: KindArrival, Proc: -1, Stream: 1, Entity: 1, Seq: 1},
		{T: 2, Kind: KindDispatch, Proc: 0, Stream: 1, Entity: 1, Seq: 1, Dur: 2},
		{T: 2, Kind: KindExecStart, Proc: 0, Stream: 1, Entity: 1, Seq: 1, Dur: 50, Val: math.Inf(1), Flags: FlagCold},
		{T: 2, Kind: KindColdStart, Proc: 0, Stream: 1, Entity: 1, Seq: 1},
		{T: 52, Kind: KindExecEnd, Proc: 0, Stream: 1, Entity: 1, Seq: 1, Dur: 50},
		{T: 60, Kind: KindGaugeQueue, Proc: -1, Stream: -1, Entity: -1, Val: 4},
		{T: 61, Kind: KindSpill, Proc: -1, Stream: 1, Entity: 1, Seq: 2},
	})
	phases := map[string]int{}
	for _, ev := range out {
		phases[ev["ph"].(string)]++
	}
	if phases["B"] != 1 || phases["E"] != 1 {
		t.Fatalf("exec slice missing: %v", phases)
	}
	if phases["b"] != 1 || phases["e"] != 1 {
		t.Fatalf("async packet span missing: %v", phases)
	}
	if phases["C"] != 1 || phases["i"] != 2 {
		t.Fatalf("counter/instant missing: %v", phases)
	}
	if phases["M"] == 0 {
		t.Fatal("no naming metadata emitted")
	}
	// The cold start's infinite xrefs must have been sanitized.
	for _, ev := range out {
		if ev["ph"] == "B" {
			args := ev["args"].(map[string]any)
			if args["xrefs"].(float64) != -1 {
				t.Fatalf("xrefs not sanitized: %v", args["xrefs"])
			}
		}
	}
}

func TestChromeTraceTrackMetadata(t *testing.T) {
	out := chromeEvents(t, []Event{
		{T: 1, Kind: KindExecStart, Proc: 3, Stream: 2, Entity: 2, Seq: 1, Dur: 10},
		{T: 11, Kind: KindExecEnd, Proc: 3, Stream: 2, Entity: 2, Seq: 1, Dur: 10},
		{T: 12, Kind: KindExecStart, Proc: 3, Stream: 2, Entity: 2, Seq: 2, Dur: 10},
	})
	names := 0
	for _, ev := range out {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			names++
		}
	}
	// One thread_name for cpu 3 and one for stream 2 — announced once
	// each, not per event.
	if names != 2 {
		t.Fatalf("thread_name metadata = %d, want 2", names)
	}
}

func TestChromeTraceEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	var out []any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil || len(out) != 0 {
		t.Fatalf("empty trace must be an empty JSON array, got %q", buf.String())
	}
	ct.Record(Event{Kind: KindArrival}) // after Close: dropped, no panic
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewCSV(&buf)
	c.Record(Event{T: 1.5, Kind: KindArrival, Proc: -1, Stream: 0, Entity: 0, Seq: 1})
	c.Record(Event{T: 2, Kind: KindExecStart, Proc: 1, Stream: 0, Entity: 0, Seq: 1, Dur: 10, Val: 250.5, Flags: FlagMigrated})
	c.Record(Event{T: 3, Kind: KindGaugeQueue, Proc: -1, Stream: -1, Entity: -1, Val: 0})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want header + 3", len(rows))
	}
	if rows[0][0] != "t_us" || rows[1][1] != "arrival" {
		t.Fatalf("unexpected rows: %v", rows[:2])
	}
	if rows[2][8] != "migrated" || rows[2][7] != "250.5" {
		t.Fatalf("exec row = %v", rows[2])
	}
	// A gauge of zero still writes its value explicitly.
	if rows[3][7] != "0" {
		t.Fatalf("gauge row = %v", rows[3])
	}
}
