package obs

import (
	"bufio"
	"io"
	"strconv"
)

// TimeSeries folds the event stream into fixed-Δt interval samples and
// streams them as CSV:
//
//	t0_us,arrivals,dispatches,completions,drops,reordered,warm_frac,mean_queue,util,p0_busy,p1_busy,…
//
// Each row covers [t0, t0+Δt): packet counts are totals over the
// interval, warm_frac is the warm share of executions started (FlagWarm,
// the simulator's WarmFraction predicate), mean_queue averages the
// queue-depth gauge samples that landed in the interval, util is the
// mean per-processor busy fraction and pN_busy each processor's own.
// reordered counts completions that finished after a later-arrived
// packet of the same stream had already completed (the per-stream
// reordering metric, accumulated per interval).
//
// Like the event CSV sink, rows are hand-built into a reused buffer;
// steady-state recording does not allocate once every stream has been
// seen. Close emits the final partial interval and flushes.
type TimeSeries struct {
	w        *bufio.Writer
	row      []byte
	err      error
	closed   bool
	interval float64

	t0      float64 // current interval start
	started bool    // saw the first event (t0 anchored at 0)
	lastT   float64

	arrivals    uint64
	dispatches  uint64
	completions uint64
	drops       uint64
	reordered   uint64
	execStarts  uint64
	warmStarts  uint64
	queueSum    float64
	queueN      uint64

	busy      []bool    // per-proc: currently busy
	busySince []float64 // per-proc: busy since (≥ t0 once rolled)
	busyAccum []float64 // per-proc: busy time closed inside this interval

	streamMax []uint64 // per-stream max completed global seq + 1
}

// NewTimeSeries returns an interval aggregator writing CSV rows to w.
// Non-positive intervalUs selects 1000 µs; procs sizes the per-processor
// columns (grown on demand if events name a higher processor).
func NewTimeSeries(w io.Writer, intervalUs float64, procs int) *TimeSeries {
	if intervalUs <= 0 {
		intervalUs = 1000
	}
	if procs < 0 {
		procs = 0
	}
	t := &TimeSeries{
		w:         bufio.NewWriter(w),
		row:       make([]byte, 0, 256),
		interval:  intervalUs,
		busy:      make([]bool, procs),
		busySince: make([]float64, procs),
		busyAccum: make([]float64, procs),
	}
	b := append(t.row[:0], "t0_us,arrivals,dispatches,completions,drops,reordered,warm_frac,mean_queue,util"...)
	for p := 0; p < procs; p++ {
		b = append(b, ",p"...)
		b = strconv.AppendInt(b, int64(p), 10)
		b = append(b, "_busy"...)
	}
	b = append(b, '\n')
	t.row = b
	_, t.err = t.w.Write(b)
	return t
}

func (t *TimeSeries) growProc(p int) {
	for len(t.busy) <= p {
		t.busy = append(t.busy, false)
		t.busySince = append(t.busySince, 0)
		t.busyAccum = append(t.busyAccum, 0)
	}
}

// emit writes the row for [t.t0, end) and resets interval state.
func (t *TimeSeries) emit(end float64) {
	span := end - t.t0
	b := t.row[:0]
	b = strconv.AppendFloat(b, t.t0, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendUint(b, t.arrivals, 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, t.dispatches, 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, t.completions, 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, t.drops, 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, t.reordered, 10)
	b = append(b, ',')
	warm := 0.0
	if t.execStarts > 0 {
		warm = float64(t.warmStarts) / float64(t.execStarts)
	}
	b = strconv.AppendFloat(b, warm, 'g', -1, 64)
	b = append(b, ',')
	meanQ := 0.0
	if t.queueN > 0 {
		meanQ = t.queueSum / float64(t.queueN)
	}
	b = strconv.AppendFloat(b, meanQ, 'g', -1, 64)
	b = append(b, ',')
	util := 0.0
	for p := range t.busyAccum {
		acc := t.busyAccum[p]
		if t.busy[p] && end > t.busySince[p] {
			acc += end - t.busySince[p]
		}
		frac := 0.0
		if span > 0 {
			frac = acc / span
		}
		util += frac
		t.busyAccum[p] = frac // stash the fraction for the per-proc pass
	}
	if len(t.busyAccum) > 0 {
		util /= float64(len(t.busyAccum))
	}
	b = strconv.AppendFloat(b, util, 'g', -1, 64)
	for p := range t.busyAccum {
		b = append(b, ',')
		b = strconv.AppendFloat(b, t.busyAccum[p], 'g', -1, 64)
	}
	b = append(b, '\n')
	t.row = b
	if t.err == nil {
		_, t.err = t.w.Write(b)
	}

	t.arrivals, t.dispatches, t.completions, t.drops = 0, 0, 0, 0
	t.reordered, t.execStarts, t.warmStarts = 0, 0, 0
	t.queueSum, t.queueN = 0, 0
	for p := range t.busyAccum {
		t.busyAccum[p] = 0
		if t.busy[p] && t.busySince[p] < end {
			t.busySince[p] = end
		}
	}
}

// roll closes every interval that ends at or before tm.
func (t *TimeSeries) roll(tm float64) {
	if !t.started {
		t.started = true
		t.t0 = 0
	}
	for tm >= t.t0+t.interval {
		end := t.t0 + t.interval
		t.emit(end)
		t.t0 = end
	}
}

// Record implements Recorder.
func (t *TimeSeries) Record(e Event) {
	if t.closed {
		return
	}
	t.roll(e.T)
	if e.T > t.lastT {
		t.lastT = e.T
	}
	switch e.Kind {
	case KindArrival:
		t.arrivals++
	case KindDispatch:
		t.dispatches++
	case KindExecStart:
		t.execStarts++
		if e.Flags&FlagWarm != 0 {
			t.warmStarts++
		}
	case KindExecEnd:
		t.completions++
		if e.Stream >= 0 {
			for len(t.streamMax) <= e.Stream {
				t.streamMax = append(t.streamMax, 0)
			}
			// Within a stream, arrival order is ascending global seq, so a
			// completion below the stream's watermark finished out of order.
			if e.Seq+1 > t.streamMax[e.Stream] {
				t.streamMax[e.Stream] = e.Seq + 1
			} else {
				t.reordered++
			}
		}
	case KindDrop:
		t.drops++
	case KindProcBusy:
		if e.Proc >= 0 {
			t.growProc(e.Proc)
			t.busy[e.Proc] = true
			t.busySince[e.Proc] = e.T
		}
	case KindProcIdle, KindProcDown:
		if e.Proc >= 0 {
			t.growProc(e.Proc)
			if t.busy[e.Proc] {
				t.busyAccum[e.Proc] += e.T - t.busySince[e.Proc]
				t.busy[e.Proc] = false
			}
		}
	case KindGaugeQueue:
		t.queueSum += e.Val
		t.queueN++
	}
}

// Err returns the first write error, if any.
func (t *TimeSeries) Err() error { return t.err }

// Close emits the final partial interval (if it saw any time) and
// flushes. Events recorded after Close are dropped.
func (t *TimeSeries) Close() error {
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.started && t.lastT > t.t0 {
		t.emit(t.lastT)
	}
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}
