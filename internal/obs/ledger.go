package obs

// LedgerRecorder retains every decision of a run, in order, with its
// full candidate set — the unbounded companion to FlightRecorder's ring.
// It exists for counterfactual replay (internal/policysearch): replaying
// a ledger needs every decision from the start of the run, numbered
// exactly as they were recorded, not just the last few. Candidate sets
// are copied out of the emitter's scratch buffer into a growing arena,
// so retained decisions stay valid across further recording.
type LedgerRecorder struct {
	decisions []Decision
	arena     []Candidate
}

// NewLedgerRecorder returns an empty ledger.
func NewLedgerRecorder() *LedgerRecorder { return &LedgerRecorder{} }

// RecordDecision implements DecisionRecorder, copying the candidate set.
func (l *LedgerRecorder) RecordDecision(d Decision) {
	start := len(l.arena)
	if cap(l.arena)-start < len(d.Candidates) {
		// Growing the shared arena would relocate earlier blocks' backing
		// array out from under their aliases; start a fresh one and let
		// the old array live on, still referenced by recorded decisions.
		l.arena = make([]Candidate, 0, max(4*len(d.Candidates), 1024))
		start = 0
	}
	l.arena = append(l.arena, d.Candidates...)
	d.Candidates = l.arena[start : start+len(d.Candidates) : start+len(d.Candidates)]
	l.decisions = append(l.decisions, d)
}

// Len returns how many decisions the ledger holds.
func (l *LedgerRecorder) Len() int { return len(l.decisions) }

// At returns decision i (0-based, recording order). The i-th recorded
// decision's ordinal is exactly i — the same numbering a
// sim.DecisionOverride observes — which is what makes a recorded ledger
// replayable.
func (l *LedgerRecorder) At(i int) Decision { return l.decisions[i] }

// Decisions returns the ledger in recording order. The slice is the
// recorder's own storage: callers must not append to or reorder it.
func (l *LedgerRecorder) Decisions() []Decision { return l.decisions }
