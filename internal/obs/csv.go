package obs

import (
	"bufio"
	"io"
	"strconv"
)

// CSV streams every event as one row of a CSV time series:
//
//	t_us,kind,proc,stream,entity,seq,dur_us,value,flags,reason
//
// Indices that do not apply print as -1 and payloads as empty fields,
// so the output loads cleanly into dataframe tools. Drop events render
// their reason code as a readable string in the reason column ("queue",
// "loss") and leave the value column empty. Close flushes.
//
// Rows are built by hand into a reused scratch buffer rather than
// through encoding/csv: no field the sink emits ever needs quoting
// (kind and flag names, decimal numbers), and the per-row []string plus
// number formatting of the generic writer dominated the recorder's
// allocation profile. Record performs no steady-state allocation.
type CSV struct {
	w      *bufio.Writer
	row    []byte
	err    error
	closed bool
}

// NewCSV returns a sink writing rows (header included) to w.
func NewCSV(w io.Writer) *CSV {
	c := &CSV{
		w:   bufio.NewWriter(w),
		row: make([]byte, 0, 128),
	}
	_, c.err = c.w.WriteString("t_us,kind,proc,stream,entity,seq,dur_us,value,flags,reason\n")
	return c
}

func ftoa(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// Record implements Recorder.
func (c *CSV) Record(e Event) {
	if c.err != nil || c.closed {
		return
	}
	b := c.row[:0]
	b = strconv.AppendFloat(b, e.T, 'g', -1, 64)
	b = append(b, ',')
	b = append(b, e.Kind.String()...)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.Proc), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.Stream), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.Entity), 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, ',')
	if e.Dur != 0 {
		b = strconv.AppendFloat(b, e.Dur, 'g', -1, 64)
	}
	b = append(b, ',')
	if e.Kind != KindDrop && (e.Val != 0 || e.Kind.Gauge()) {
		b = strconv.AppendFloat(b, e.Val, 'g', -1, 64)
	}
	b = append(b, ',')
	b = append(b, e.Flags.String()...)
	b = append(b, ',')
	if e.Kind == KindDrop {
		b = append(b, DropReasonString(e.Val)...)
	}
	b = append(b, '\n')
	c.row = b
	_, c.err = c.w.Write(b)
}

// Err returns the first write error, if any.
func (c *CSV) Err() error { return c.err }

// Close flushes buffered rows. Events recorded after Close are dropped.
func (c *CSV) Close() error {
	if c.closed {
		return c.err
	}
	c.closed = true
	if err := c.w.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}
