package obs

import (
	"encoding/csv"
	"io"
	"strconv"
)

// CSV streams every event as one row of a CSV time series:
//
//	t_us,kind,proc,stream,entity,seq,dur_us,value,flags
//
// Indices that do not apply print as -1 and payloads as empty fields,
// so the output loads cleanly into dataframe tools. Close flushes.
type CSV struct {
	w      *csv.Writer
	err    error
	closed bool
}

// NewCSV returns a sink writing rows (header included) to w.
func NewCSV(w io.Writer) *CSV {
	c := &CSV{w: csv.NewWriter(w)}
	c.err = c.w.Write([]string{
		"t_us", "kind", "proc", "stream", "entity", "seq", "dur_us", "value", "flags",
	})
	return c
}

func ftoa(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// Record implements Recorder.
func (c *CSV) Record(e Event) {
	if c.err != nil || c.closed {
		return
	}
	dur, val := "", ""
	if e.Dur != 0 {
		dur = ftoa(e.Dur)
	}
	if e.Val != 0 || e.Kind.Gauge() {
		val = ftoa(e.Val)
	}
	c.err = c.w.Write([]string{
		ftoa(e.T),
		e.Kind.String(),
		strconv.Itoa(e.Proc),
		strconv.Itoa(e.Stream),
		strconv.Itoa(e.Entity),
		strconv.FormatUint(e.Seq, 10),
		dur,
		val,
		e.Flags.String(),
	})
}

// Err returns the first write error, if any.
func (c *CSV) Err() error { return c.err }

// Close flushes buffered rows. Events recorded after Close are dropped.
func (c *CSV) Close() error {
	if c.closed {
		return c.err
	}
	c.closed = true
	c.w.Flush()
	if err := c.w.Error(); c.err == nil {
		c.err = err
	}
	return c.err
}
