package obs

import (
	"bytes"
	"strings"
	"testing"
)

// Exhaustiveness guard: every Kind must have a name, a Metrics counter,
// and deliberate handling in every sink. KindDrop/KindProcDown/KindProcUp
// were bolted on after the sinks were written and initially fell through
// switches silently; this test makes that mistake impossible to repeat —
// adding a Kind without teaching each sink about it fails here.

// chromeSilentKinds are the kinds the Chrome trace deliberately does not
// render (documented at the bottom of its Record switch): queue waits
// show as gaps inside packet spans, busy/idle as exec-slice presence.
// A new Kind may only join this list with a comment in chrometrace.go.
var chromeSilentKinds = map[Kind]bool{
	KindEnqueue:  true,
	KindDispatch: true,
	KindProcBusy: true,
	KindProcIdle: true,
}

// eventForKind builds a minimally valid event of kind k.
func eventForKind(k Kind) Event {
	e := Event{T: 10, Kind: k, Proc: 0, Stream: 0, Entity: 0, Seq: 1}
	if k.Gauge() {
		e.Proc, e.Stream, e.Entity, e.Seq = -1, -1, -1, 0
		e.Val = 3
	}
	return e
}

func TestEveryKindHasNameAndParse(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d lacks a name in kindNames", k)
			continue
		}
		if back, ok := ParseKind(s); !ok || back != k {
			t.Errorf("kind %q does not round-trip through ParseKind", s)
		}
	}
}

func TestEveryKindCountedByMetrics(t *testing.T) {
	m := NewMetrics()
	for k := Kind(0); k < numKinds; k++ {
		m.Record(eventForKind(k))
	}
	s := m.Snapshot()
	for k := Kind(0); k < numKinds; k++ {
		if m.Count(k) != 1 {
			t.Errorf("kind %v not counted by Metrics", k)
		}
		if s.Counts[k.String()] != 1 {
			t.Errorf("kind %v missing from Snapshot.Counts", k)
		}
	}
}

func TestEveryKindRowInCSV(t *testing.T) {
	var buf bytes.Buffer
	c := NewCSV(&buf)
	for k := Kind(0); k < numKinds; k++ {
		c.Record(eventForKind(k))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if got := len(lines) - 1; got != int(numKinds) {
		t.Fatalf("CSV rows = %d, want one per kind (%d)", got, numKinds)
	}
	for k := Kind(0); k < numKinds; k++ {
		if !strings.Contains(lines[int(k)+1], ","+k.String()+",") {
			t.Errorf("row %d does not name kind %v: %q", k, k, lines[int(k)+1])
		}
	}
}

func TestEveryKindHandledByChromeTrace(t *testing.T) {
	// trace renders the given events and returns how many records came out.
	trace := func(evs ...Event) int {
		var buf bytes.Buffer
		ct := NewChromeTrace(&buf)
		for _, e := range evs {
			ct.Record(e)
		}
		if err := ct.Close(); err != nil {
			t.Fatal(err)
		}
		return strings.Count(buf.String(), `"ph"`)
	}
	for k := Kind(0); k < numKinds; k++ {
		// ExecEnd needs its ExecStart for a balanced slice; subtract the
		// prefix's own records so the delta isolates kind k.
		var prefix []Event
		if k == KindExecEnd {
			prefix = []Event{eventForKind(KindExecStart)}
		}
		emitted := trace(append(prefix, eventForKind(k))...) > trace(prefix...)
		if chromeSilentKinds[k] {
			if emitted {
				t.Errorf("kind %v emitted a Chrome record but is on the silent list", k)
			}
		} else if !emitted {
			t.Errorf("kind %v silently dropped by ChromeTrace — handle it or add it to chromeSilentKinds with a comment", k)
		}
	}
}

func TestEveryKindAggregatedOrIgnoredByTimeSeries(t *testing.T) {
	// The time series folds a subset of kinds; the rest must still pass
	// through without panic, whatever the payload.
	var buf bytes.Buffer
	ts := NewTimeSeries(&buf, 100, 2)
	for k := Kind(0); k < numKinds; k++ {
		ts.Record(eventForKind(k))
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}
