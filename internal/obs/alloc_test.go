package obs

import (
	"io"
	"testing"
)

// The sinks must not allocate per event once their tracks are announced
// and scratch buffers are warm: a traced run records millions of events,
// and sink garbage would show up as simulation slowdown.

func steadyEvents() []Event {
	return []Event{
		{T: 10, Kind: KindArrival, Proc: -1, Stream: 1, Entity: 1, Seq: 7},
		{T: 11, Kind: KindDispatch, Proc: 0, Stream: 1, Entity: 1, Seq: 7, Dur: 1},
		{T: 11, Kind: KindExecStart, Proc: 0, Stream: 1, Entity: 1, Seq: 7, Dur: 50, Val: 1234.5, Flags: FlagMigrated},
		{T: 61, Kind: KindExecEnd, Proc: 0, Stream: 1, Entity: 1, Seq: 7, Dur: 50},
		{T: 61, Kind: KindMigration, Proc: 0, Stream: 1, Entity: 1, Seq: 7},
		{T: 70, Kind: KindGaugeQueue, Proc: -1, Stream: -1, Entity: -1, Val: 3},
	}
}

func testSinkZeroAllocs(t *testing.T, name string, sink Recorder) {
	t.Helper()
	evs := steadyEvents()
	// Warm up: announce tracks, grow scratch and bufio buffers.
	for i := 0; i < 100; i++ {
		for _, e := range evs {
			sink.Record(e)
		}
	}
	got := testing.AllocsPerRun(100, func() {
		for _, e := range evs {
			sink.Record(e)
		}
	})
	if got != 0 {
		t.Errorf("%s: %v allocs per %d events in steady state, want 0", name, got, len(evs))
	}
}

func TestSinksSteadyStateZeroAllocs(t *testing.T) {
	t.Run("csv", func(t *testing.T) {
		testSinkZeroAllocs(t, "CSV", NewCSV(io.Discard))
	})
	t.Run("chrometrace", func(t *testing.T) {
		testSinkZeroAllocs(t, "ChromeTrace", NewChromeTrace(io.Discard))
	})
	t.Run("metrics", func(t *testing.T) {
		testSinkZeroAllocs(t, "Metrics", NewMetrics())
	})
}

func TestFlagsStringTable(t *testing.T) {
	// Every combination must render its member flags in the canonical
	// cold|migrated|locked order.
	for f := Flags(0); f < 8; f++ {
		s := f.String()
		want := ""
		add := func(name string) {
			if want != "" {
				want += "|"
			}
			want += name
		}
		if f&FlagCold != 0 {
			add("cold")
		}
		if f&FlagMigrated != 0 {
			add("migrated")
		}
		if f&FlagLocked != 0 {
			add("locked")
		}
		if s != want {
			t.Errorf("Flags(%d).String() = %q, want %q", f, s, want)
		}
	}
}
