package obs

import (
	"io"
	"testing"
)

// The sinks must not allocate per event once their tracks are announced
// and scratch buffers are warm: a traced run records millions of events,
// and sink garbage would show up as simulation slowdown.

func steadyEvents() []Event {
	return []Event{
		{T: 10, Kind: KindArrival, Proc: -1, Stream: 1, Entity: 1, Seq: 7},
		{T: 11, Kind: KindDispatch, Proc: 0, Stream: 1, Entity: 1, Seq: 7, Dur: 1},
		{T: 11, Kind: KindExecStart, Proc: 0, Stream: 1, Entity: 1, Seq: 7, Dur: 50, Val: 1234.5, Flags: FlagMigrated},
		{T: 61, Kind: KindExecEnd, Proc: 0, Stream: 1, Entity: 1, Seq: 7, Dur: 50},
		{T: 61, Kind: KindMigration, Proc: 0, Stream: 1, Entity: 1, Seq: 7},
		{T: 70, Kind: KindGaugeQueue, Proc: -1, Stream: -1, Entity: -1, Val: 3},
	}
}

func testSinkZeroAllocs(t *testing.T, name string, sink Recorder) {
	t.Helper()
	evs := steadyEvents()
	// Warm up: announce tracks, grow scratch and bufio buffers.
	for i := 0; i < 100; i++ {
		for _, e := range evs {
			sink.Record(e)
		}
	}
	got := testing.AllocsPerRun(100, func() {
		for _, e := range evs {
			sink.Record(e)
		}
	})
	if got != 0 {
		t.Errorf("%s: %v allocs per %d events in steady state, want 0", name, got, len(evs))
	}
}

func TestSinksSteadyStateZeroAllocs(t *testing.T) {
	t.Run("csv", func(t *testing.T) {
		testSinkZeroAllocs(t, "CSV", NewCSV(io.Discard))
	})
	t.Run("chrometrace", func(t *testing.T) {
		testSinkZeroAllocs(t, "ChromeTrace", NewChromeTrace(io.Discard))
	})
	t.Run("metrics", func(t *testing.T) {
		testSinkZeroAllocs(t, "Metrics", NewMetrics())
	})
}

func TestFlagsStringTable(t *testing.T) {
	// Every combination must render its member flags in the canonical
	// cold|migrated|locked|warm order, and round-trip through ParseFlags.
	for f := Flags(0); f < 16; f++ {
		s := f.String()
		want := ""
		add := func(name string) {
			if want != "" {
				want += "|"
			}
			want += name
		}
		if f&FlagCold != 0 {
			add("cold")
		}
		if f&FlagMigrated != 0 {
			add("migrated")
		}
		if f&FlagLocked != 0 {
			add("locked")
		}
		if f&FlagWarm != 0 {
			add("warm")
		}
		if s != want {
			t.Errorf("Flags(%d).String() = %q, want %q", f, s, want)
		}
		back, ok := ParseFlags(s)
		if !ok || back != f {
			t.Errorf("ParseFlags(%q) = %v,%v, want %v", s, back, ok, f)
		}
	}
}

func steadyDecision(cands []Candidate) Decision {
	return Decision{
		T: 42.5, Point: PointPlace, Seq: 7, Stream: 1, Entity: 1,
		Chosen: 2, Preferred: 0, ChosenCost: 310.25, BestCost: 284.5,
		Candidates: cands,
	}
}

func testDecisionSinkZeroAllocs(t *testing.T, name string, sink DecisionRecorder) {
	t.Helper()
	cands := []Candidate{
		{Proc: 0, Warm: true, XRefs: 120, Cost: 284.5},
		{Proc: 2, Warm: false, XRefs: 9000, Cost: 310.25},
	}
	d := steadyDecision(cands)
	for i := 0; i < 100; i++ {
		sink.RecordDecision(d)
	}
	got := testing.AllocsPerRun(100, func() {
		sink.RecordDecision(d)
	})
	if got != 0 {
		t.Errorf("%s: %v allocs per decision in steady state, want 0", name, got)
	}
}

func TestDecisionSinksSteadyStateZeroAllocs(t *testing.T) {
	t.Run("flight", func(t *testing.T) {
		testDecisionSinkZeroAllocs(t, "FlightRecorder", NewFlightRecorder(64, 4))
	})
	t.Run("csv", func(t *testing.T) {
		testDecisionSinkZeroAllocs(t, "DecisionCSV", NewDecisionCSV(io.Discard))
	})
	t.Run("jsonl", func(t *testing.T) {
		testDecisionSinkZeroAllocs(t, "DecisionJSONL", NewDecisionJSONL(io.Discard))
	})
}

func TestTimeSeriesSteadyStateZeroAllocs(t *testing.T) {
	ts := NewTimeSeries(io.Discard, 50, 2)
	evs := steadyEvents()
	// Advance time every pass so interval rows actually emit inside the
	// measured loop — the emit path must be allocation-free too.
	base := 0.0
	pass := func() {
		for _, e := range evs {
			e.T += base
			ts.Record(e)
		}
		base += 100
	}
	for i := 0; i < 100; i++ {
		pass()
	}
	got := testing.AllocsPerRun(100, pass)
	if got != 0 {
		t.Errorf("TimeSeries: %v allocs per %d events in steady state, want 0", got, len(evs))
	}
}
