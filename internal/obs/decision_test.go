package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func mkDecision(seq uint64, stream, chosen, preferred int, costs ...float64) Decision {
	d := Decision{
		T: float64(seq) * 10, Point: PointPlace, Seq: seq,
		Stream: stream, Entity: stream, Chosen: chosen, Preferred: preferred,
	}
	best := 0.0
	for i, c := range costs {
		d.Candidates = append(d.Candidates, Candidate{Proc: i, Warm: c < 300, XRefs: c, Cost: c})
		if i == 0 || c < best {
			best = c
		}
		if i == chosen {
			d.ChosenCost = c
		}
	}
	d.BestCost = best
	return d
}

func TestDecisionPointStrings(t *testing.T) {
	for p := DecisionPoint(0); p < numPoints; p++ {
		s := p.String()
		if s == "" || strings.HasPrefix(s, "DecisionPoint(") {
			t.Fatalf("point %d has no name", p)
		}
		back, ok := ParseDecisionPoint(s)
		if !ok || back != p {
			t.Fatalf("ParseDecisionPoint(%q) = %v,%v", s, back, ok)
		}
	}
	if DecisionPoint(9).String() != "DecisionPoint(9)" {
		t.Fatal("unknown point must fall back to DecisionPoint(n)")
	}
	if _, ok := ParseDecisionPoint("bogus"); ok {
		t.Fatal("ParseDecisionPoint accepted garbage")
	}
}

func TestFlightRecorderRingSemantics(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	for seq := uint64(1); seq <= 6; seq++ {
		f.RecordDecision(mkDecision(seq, 0, 1, -1, 300, 250, 400))
	}
	if f.Total() != 6 || f.Len() != 4 {
		t.Fatalf("total=%d len=%d, want 6/4", f.Total(), f.Len())
	}
	// Every decision had 3 candidates against a 2-slot arena.
	if f.Truncated() != 6 {
		t.Fatalf("truncated=%d, want 6", f.Truncated())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len=%d", len(snap))
	}
	// Oldest-first: seqs 3..6 survive.
	for i, d := range snap {
		if d.Seq != uint64(3+i) {
			t.Fatalf("snapshot[%d].Seq=%d, want %d", i, d.Seq, 3+i)
		}
		if len(d.Candidates) != 2 {
			t.Fatalf("snapshot[%d] candidates=%d, want 2 (truncated)", i, len(d.Candidates))
		}
	}
	// Snapshot candidates must be copies: recording more must not change them.
	before := snap[0].Candidates[0]
	for seq := uint64(7); seq <= 20; seq++ {
		f.RecordDecision(mkDecision(seq, 0, 0, -1, 111, 222))
	}
	if snap[0].Candidates[0] != before {
		t.Fatal("snapshot aliases the ring arena")
	}
}

func TestFlightRecorderDefaults(t *testing.T) {
	f := NewFlightRecorder(0, 0)
	if len(f.slots) != 256 || f.maxCands != 8 {
		t.Fatalf("defaults = %d/%d, want 256/8", len(f.slots), f.maxCands)
	}
}

func TestDecisionMulti(t *testing.T) {
	if DecisionMulti() != nil || DecisionMulti(nil, nil) != nil {
		t.Fatal("DecisionMulti of nothing must be nil")
	}
	a, b := NewFlightRecorder(8, 2), NewFlightRecorder(8, 2)
	if DecisionMulti(nil, a) != DecisionRecorder(a) {
		t.Fatal("DecisionMulti of one must be that recorder")
	}
	tee := DecisionMulti(a, nil, b)
	tee.RecordDecision(mkDecision(1, 0, 0, -1, 100))
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatal("tee did not fan out")
	}
}

func TestDecisionRegret(t *testing.T) {
	d := mkDecision(1, 0, 2, 0, 100, 200, 350)
	if d.Regret() != 250 {
		t.Fatalf("regret=%g, want 250", d.Regret())
	}
	if mkDecision(1, 0, 0, 0, 100, 200).Regret() != 0 {
		t.Fatal("choosing the cheapest candidate must have zero regret")
	}
}

func TestDecisionCSVRoundTrip(t *testing.T) {
	want := []Decision{
		mkDecision(1, 0, 1, -1, 300.5, 250.25),
		mkDecision(2, 1, 0, 0, 284),
		{T: 55, Point: PointSpill, Seq: 3, Stream: 2, Entity: 2,
			Chosen: 1, Preferred: 0, ChosenCost: 500, BestCost: 400,
			Candidates: []Candidate{{Proc: 0, Warm: true, Cost: 400}, {Proc: 1, Cost: 500}}},
	}
	var buf bytes.Buffer
	c := NewDecisionCSV(&buf)
	for _, d := range want {
		c.RecordDecision(d)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDecisionCSV(&buf)
	if err != nil {
		t.Fatalf("ReadDecisionCSV: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows=%d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.T != w.T || g.Point != w.Point || g.Seq != w.Seq ||
			g.Stream != w.Stream || g.Entity != w.Entity ||
			g.Chosen != w.Chosen || g.Preferred != w.Preferred ||
			g.ChosenCost != w.ChosenCost || g.BestCost != w.BestCost {
			t.Fatalf("row %d: got %+v, want %+v", i, g, w)
		}
		if len(g.Candidates) != len(w.Candidates) {
			t.Fatalf("row %d: candidates=%d, want %d", i, len(g.Candidates), len(w.Candidates))
		}
		for j := range w.Candidates {
			if g.Candidates[j].Proc != w.Candidates[j].Proc ||
				g.Candidates[j].Warm != w.Candidates[j].Warm ||
				g.Candidates[j].Cost != w.Candidates[j].Cost {
				t.Fatalf("row %d candidate %d: got %+v, want %+v",
					i, j, g.Candidates[j], w.Candidates[j])
			}
		}
	}
}

func TestDecisionJSONLValid(t *testing.T) {
	var buf bytes.Buffer
	c := NewDecisionJSONL(&buf)
	ds := []Decision{
		mkDecision(1, 0, 1, -1, 300.5, 250.25),
		mkDecision(2, 1, 0, 2, 284),
	}
	for _, d := range ds {
		c.RecordDecision(d)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines=%d, want 2", len(lines))
	}
	for i, line := range lines {
		var obj struct {
			T          float64 `json:"t_us"`
			Point      string  `json:"point"`
			Seq        uint64  `json:"seq"`
			Chosen     int     `json:"chosen"`
			Preferred  int     `json:"preferred"`
			ChosenCost float64 `json:"chosen_cost_us"`
			Candidates []struct {
				Proc int     `json:"proc"`
				Warm bool    `json:"warm"`
				Cost float64 `json:"cost_us"`
			} `json:"candidates"`
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if obj.Seq != ds[i].Seq || obj.Point != ds[i].Point.String() ||
			obj.Chosen != ds[i].Chosen || obj.ChosenCost != ds[i].ChosenCost ||
			len(obj.Candidates) != len(ds[i].Candidates) {
			t.Fatalf("line %d mismatch: %+v vs %+v", i, obj, ds[i])
		}
	}
}
