package obs

import "affinity/internal/stats"

// Metrics is the streaming in-memory sink: per-kind counters plus
// Accumulator-backed timers for the durations that matter (execution,
// queue wait, busy/idle intervals) and the sampled queue depth. It costs
// a few adds per event and holds O(processors) state, so it can stay
// attached to long runs.
type Metrics struct {
	events uint64
	counts [numKinds]uint64

	execTime  stats.Accumulator // KindExecEnd durations
	queueWait stats.Accumulator // KindDispatch durations
	busySpan  stats.Accumulator // KindProcIdle durations (closed busy intervals)
	idleSpan  stats.Accumulator // KindProcBusy durations (closed idle intervals)
	downSpan  stats.Accumulator // KindProcUp durations (closed down intervals)
	depth     stats.Accumulator // KindGaugeQueue samples
	heap      stats.Accumulator // KindGaugeHeap samples

	procBusy []float64 // per-processor closed busy time, µs
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics { return &Metrics{} }

// Record implements Recorder.
func (m *Metrics) Record(e Event) {
	m.events++
	if int(e.Kind) < len(m.counts) {
		m.counts[e.Kind]++
	}
	switch e.Kind {
	case KindDispatch:
		m.queueWait.Add(e.Dur)
	case KindExecEnd:
		m.execTime.Add(e.Dur)
	case KindProcBusy:
		m.idleSpan.Add(e.Dur)
	case KindProcIdle:
		m.busySpan.Add(e.Dur)
		if e.Proc >= 0 {
			for len(m.procBusy) <= e.Proc {
				m.procBusy = append(m.procBusy, 0)
			}
			m.procBusy[e.Proc] += e.Dur
		}
	case KindProcUp:
		m.downSpan.Add(e.Dur)
	case KindGaugeQueue:
		m.depth.Add(e.Val)
	case KindGaugeHeap:
		m.heap.Add(e.Val)
	}
}

// Events returns the number of events recorded.
func (m *Metrics) Events() uint64 { return m.events }

// Count returns the number of events of one kind.
func (m *Metrics) Count(k Kind) uint64 {
	if int(k) >= len(m.counts) {
		return 0
	}
	return m.counts[k]
}

// Summary condenses one Accumulator for a snapshot.
type Summary struct {
	N                      uint64
	Mean, StdDev, Min, Max float64
}

func summarize(a *stats.Accumulator) Summary {
	return Summary{N: a.N(), Mean: a.Mean(), StdDev: a.StdDev(), Min: a.Min(), Max: a.Max()}
}

// Snapshot is a point-in-time copy of the metrics, safe to keep after
// the run (and what the simulator merges into Results).
type Snapshot struct {
	Events uint64            // total events recorded
	Counts map[string]uint64 // per-kind event counts (kind name → count)

	// Shorthand counters pulled out of Counts for the events the study
	// cares about; each must match the simulator's own aggregate.
	Arrivals    uint64
	Dispatches  uint64
	Completions uint64 // KindExecEnd events
	Migrations  uint64
	ColdStarts  uint64
	Spills      uint64
	Drops       uint64 // KindDrop events (queue-full rejections + injected loss)
	ProcDowns   uint64 // KindProcDown events (injected processor failures)

	ExecTime     Summary // per-completion protocol execution, µs
	QueueWait    Summary // per-dispatch queueing delay, µs
	BusyInterval Summary // closed processor busy intervals, µs
	IdleInterval Summary // closed processor idle intervals, µs
	DownInterval Summary // closed processor down intervals, µs
	QueueDepth   Summary // sampled waiting packets
	HeapSize     Summary // sampled DES pending-event count

	// PerProcBusy is each processor's closed busy time, µs. A processor
	// still busy when the run stops has its open interval excluded, so
	// entries are lower bounds on the simulator's exact integrals.
	PerProcBusy []float64
}

// Snapshot returns a copy of the current state.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Events:      m.events,
		Counts:      make(map[string]uint64, numKinds),
		Arrivals:    m.counts[KindArrival],
		Dispatches:  m.counts[KindDispatch],
		Completions: m.counts[KindExecEnd],
		Migrations:  m.counts[KindMigration],
		ColdStarts:  m.counts[KindColdStart],
		Spills:      m.counts[KindSpill],
		Drops:       m.counts[KindDrop],
		ProcDowns:   m.counts[KindProcDown],

		ExecTime:     summarize(&m.execTime),
		QueueWait:    summarize(&m.queueWait),
		BusyInterval: summarize(&m.busySpan),
		IdleInterval: summarize(&m.idleSpan),
		DownInterval: summarize(&m.downSpan),
		QueueDepth:   summarize(&m.depth),
		HeapSize:     summarize(&m.heap),

		PerProcBusy: append([]float64(nil), m.procBusy...),
	}
	for k := Kind(0); k < numKinds; k++ {
		if m.counts[k] > 0 {
			s.Counts[k.String()] = m.counts[k]
		}
	}
	return s
}
