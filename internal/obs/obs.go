// Package obs is the simulator's observability layer: a structured
// event stream that the simulation runner publishes to a Recorder, with
// sinks for Chrome trace-event JSON (viewable at ui.perfetto.dev), CSV
// time series, and a streaming in-memory Metrics snapshot.
//
// The contract is zero overhead when disabled: every emission site in
// the simulator is guarded by a nil-recorder check, so a run without a
// Recorder constructs no events and pays exactly one predictable branch
// per site. Recorders only observe — they never perturb the simulated
// system, so a run produces identical Results with and without one.
//
// Times are float64 microseconds, the simulation's native unit, which
// keeps the sinks decoupled from the DES engine (and maps 1:1 onto the
// trace-event format's microsecond timestamps).
package obs

import "fmt"

// Kind classifies an event. Packet-lifecycle kinds carry the packet's
// stream/entity/seq; processor kinds carry only Proc; gauge kinds carry
// a sampled level in Val.
type Kind uint8

const (
	// KindArrival marks a packet entering the system.
	KindArrival Kind = iota
	// KindEnqueue marks a packet (or its ready stack) queued because it
	// could not be served immediately.
	KindEnqueue
	// KindDispatch marks a packet leaving a queue for a processor;
	// Dur is the time it waited since arrival.
	KindDispatch
	// KindExecStart marks service beginning; Dur is the charged
	// execution time and Val the displacing references x the entity
	// suffered since it last ran on this processor (+Inf when cold,
	// also flagged FlagCold).
	KindExecStart
	// KindExecEnd marks service completing; Dur is the protocol
	// execution time actually spent (lock spin excluded).
	KindExecEnd
	// KindMigration marks a completion on a different processor than
	// the entity's previous one.
	KindMigration
	// KindColdStart marks an entity running on a processor it had
	// never used.
	KindColdStart
	// KindSpill marks a Hybrid packet overflowing its stack's queue
	// onto the shared locking path.
	KindSpill
	// KindProcBusy marks a processor leaving the background workload
	// for protocol work; Dur is the idle interval just ended.
	KindProcBusy
	// KindProcIdle marks a processor returning to the background
	// workload; Dur is the busy interval just ended.
	KindProcIdle
	// KindProcDown marks a processor failing (fault injection): it
	// serves no protocol work until the matching KindProcUp.
	KindProcDown
	// KindProcUp marks a failed processor recovering, with a cold
	// cache; Dur is the down interval just ended.
	KindProcUp
	// KindDrop marks a packet leaving the system unserved — rejected
	// by a full bounded queue or lost to injected packet loss. Val is
	// the drop reason (see DropReason*).
	KindDrop
	// KindGaugeQueue samples the number of packets waiting in all
	// queues (Val).
	KindGaugeQueue
	// KindGaugeOverflow samples the Hybrid shared overflow queue (Val).
	KindGaugeOverflow
	// KindGaugeHeap samples the DES pending-event count (Val).
	KindGaugeHeap
	// KindGaugeDispNP samples the cumulative non-protocol displacing
	// references settled across all processors (Val).
	KindGaugeDispNP
	// KindGaugeDispProto samples the cumulative protocol displacing
	// references across all processors (Val).
	KindGaugeDispProto

	numKinds
)

var kindNames = [numKinds]string{
	"arrival", "enqueue", "dispatch", "exec_start", "exec_end",
	"migration", "cold_start", "spill", "proc_busy", "proc_idle",
	"proc_down", "proc_up", "drop",
	"gauge_queue", "gauge_overflow", "gauge_heap",
	"gauge_disp_np", "gauge_disp_proto",
}

// Drop reasons carried in a KindDrop event's Val field.
const (
	// DropReasonQueue marks a packet rejected because the queue it
	// would join was at its configured capacity.
	DropReasonQueue = 0
	// DropReasonLoss marks a packet removed by injected packet loss.
	DropReasonLoss = 1
)

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, bool) {
	for i, name := range kindNames {
		if name == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// dropReasonNames maps DropReason* values to the readable strings the
// CSV sink emits in its reason column.
var dropReasonNames = [2]string{"queue", "loss"}

// DropReasonString renders a KindDrop event's Val as the readable drop
// reason ("queue" or "loss"); unknown values render as "".
func DropReasonString(v float64) string {
	i := int(v)
	if float64(i) == v && i >= 0 && i < len(dropReasonNames) {
		return dropReasonNames[i]
	}
	return ""
}

// ParseDropReason inverts DropReasonString, returning the DropReason*
// value for a reason column string.
func ParseDropReason(s string) (float64, bool) {
	for i, name := range dropReasonNames {
		if name == s {
			return float64(i), true
		}
	}
	return 0, false
}

// Gauge reports whether k is a periodic gauge sample.
func (k Kind) Gauge() bool { return k >= KindGaugeQueue && k < numKinds }

// Flags annotate an ExecStart event.
type Flags uint8

const (
	// FlagCold marks a cold start (the entity never ran on this
	// processor).
	FlagCold Flags = 1 << iota
	// FlagMigrated marks execution on a different processor than the
	// entity's previous completion.
	FlagMigrated
	// FlagLocked marks service through the shared lock-protected path
	// (Locking paradigm, or a Hybrid overflow packet).
	FlagLocked
	// FlagWarm marks a warm execution: the entity's footprint
	// displacement on the processor is finite and below the F1 = 0.5
	// knee — the same predicate the simulator's WarmFraction counts, so
	// interval aggregators can reproduce that metric from the stream.
	FlagWarm
)

// flagNames holds every flag combination, indexed by the Flags value,
// so String is a table lookup — the sinks call it per event and must
// not allocate.
var flagNames = [16]string{
	"", "cold", "migrated", "cold|migrated",
	"locked", "cold|locked", "migrated|locked", "cold|migrated|locked",
	"warm", "cold|warm", "migrated|warm", "cold|migrated|warm",
	"locked|warm", "cold|locked|warm", "migrated|locked|warm",
	"cold|migrated|locked|warm",
}

func (f Flags) String() string {
	if int(f) < len(flagNames) {
		return flagNames[f]
	}
	return flagNames[f&15]
}

// ParseFlags inverts Flags.String.
func ParseFlags(s string) (Flags, bool) {
	for i, name := range flagNames {
		if name == s {
			return Flags(i), true
		}
	}
	return 0, false
}

// Event is one observation. Fields that do not apply to the Kind are
// -1 (indices) or 0 (payloads).
type Event struct {
	T      float64 // simulation time, µs
	Kind   Kind
	Proc   int     // processor index, -1 when not applicable
	Stream int     // packet stream, -1 when not applicable
	Entity int     // footprint entity, -1 when not applicable
	Seq    uint64  // packet serial number (1-based; 0 for non-packet events)
	Dur    float64 // duration payload, µs (wait, exec, busy/idle interval)
	Val    float64 // numeric payload (displacing refs, gauge level)
	Flags  Flags
}

// Recorder receives the event stream. Implementations need not be
// goroutine-safe: the DES backend is single-threaded, the live backend
// serializes every emission under its dispatch lock, and each run owns
// its recorder (attach distinct recorders to concurrent runs).
type Recorder interface {
	Record(Event)
}

// teeRecorder fans events out to several recorders.
type teeRecorder []Recorder

func (t teeRecorder) Record(e Event) {
	for _, r := range t {
		r.Record(e)
	}
}

// Multi returns a Recorder forwarding each event to every non-nil rec.
// With zero or one non-nil recorders it returns nil or that recorder
// directly, so callers can chain unconditionally.
func Multi(recs ...Recorder) Recorder {
	var t teeRecorder
	for _, r := range recs {
		if r != nil {
			t = append(t, r)
		}
	}
	switch len(t) {
	case 0:
		return nil
	case 1:
		return t[0]
	}
	return t
}

// FindMetrics returns the first *Metrics in rec (descending through
// recorders built by Multi), or nil. The simulator uses it to merge a
// user-attached metrics sink into Results.
func FindMetrics(rec Recorder) *Metrics {
	switch r := rec.(type) {
	case *Metrics:
		return r
	case teeRecorder:
		for _, c := range r {
			if m := FindMetrics(c); m != nil {
				return m
			}
		}
	}
	return nil
}
