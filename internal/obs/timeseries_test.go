package obs

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func tsRows(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	r := csv.NewReader(buf)
	// Processor columns grow on demand, so data rows may be wider than
	// the header.
	r.FieldsPerRecord = -1
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v", err)
	}
	return rows
}

func tsField(t *testing.T, rows [][]string, row int, col string) float64 {
	t.Helper()
	for i, name := range rows[0] {
		if name == col {
			v, err := strconv.ParseFloat(rows[row][i], 64)
			if err != nil {
				t.Fatalf("row %d col %s: %v", row, col, err)
			}
			return v
		}
	}
	t.Fatalf("no column %q in %v", col, rows[0])
	return 0
}

func TestTimeSeriesIntervals(t *testing.T) {
	var buf bytes.Buffer
	ts := NewTimeSeries(&buf, 100, 2)

	// Interval [0,100): 2 arrivals, proc 0 busy for [10,60), one warm of
	// two exec starts, queue gauge samples 2 and 4.
	ts.Record(Event{T: 5, Kind: KindArrival, Stream: 0, Seq: 1})
	ts.Record(Event{T: 6, Kind: KindArrival, Stream: 0, Seq: 2})
	ts.Record(Event{T: 10, Kind: KindProcBusy, Proc: 0})
	ts.Record(Event{T: 10, Kind: KindExecStart, Proc: 0, Stream: 0, Seq: 1, Flags: FlagWarm})
	ts.Record(Event{T: 30, Kind: KindExecEnd, Proc: 0, Stream: 0, Seq: 1})
	ts.Record(Event{T: 30, Kind: KindExecStart, Proc: 0, Stream: 0, Seq: 2, Flags: FlagCold})
	ts.Record(Event{T: 40, Kind: KindGaugeQueue, Val: 2})
	ts.Record(Event{T: 50, Kind: KindGaugeQueue, Val: 4})
	ts.Record(Event{T: 60, Kind: KindExecEnd, Proc: 0, Stream: 0, Seq: 2})
	ts.Record(Event{T: 60, Kind: KindProcIdle, Proc: 0, Dur: 50})
	// Interval [100,200): proc 1 busy from 150 through the boundary; a
	// drop; an out-of-order completion (seq 3 after seq 4).
	ts.Record(Event{T: 110, Kind: KindArrival, Stream: 1, Seq: 3})
	ts.Record(Event{T: 111, Kind: KindArrival, Stream: 1, Seq: 4})
	ts.Record(Event{T: 120, Kind: KindDrop, Stream: 0, Seq: 5, Val: DropReasonQueue})
	ts.Record(Event{T: 150, Kind: KindProcBusy, Proc: 1})
	ts.Record(Event{T: 160, Kind: KindExecEnd, Proc: 1, Stream: 1, Seq: 4})
	ts.Record(Event{T: 170, Kind: KindExecEnd, Proc: 1, Stream: 1, Seq: 3})
	// Roll past 200 and close mid-interval at 250.
	ts.Record(Event{T: 250, Kind: KindProcIdle, Proc: 1, Dur: 100})
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	rows := tsRows(t, &buf)
	if len(rows) != 4 { // header + [0,100) + [100,200) + [200,250)
		t.Fatalf("rows=%d: %v", len(rows), rows)
	}
	if tsField(t, rows, 1, "t0_us") != 0 || tsField(t, rows, 2, "t0_us") != 100 || tsField(t, rows, 3, "t0_us") != 200 {
		t.Fatalf("interval starts wrong: %v", rows)
	}
	if tsField(t, rows, 1, "arrivals") != 2 || tsField(t, rows, 1, "completions") != 2 {
		t.Fatalf("interval 1 counts: %v", rows[1])
	}
	if tsField(t, rows, 1, "warm_frac") != 0.5 {
		t.Fatalf("warm_frac=%v, want 0.5", tsField(t, rows, 1, "warm_frac"))
	}
	if tsField(t, rows, 1, "mean_queue") != 3 {
		t.Fatalf("mean_queue=%v, want 3", tsField(t, rows, 1, "mean_queue"))
	}
	if tsField(t, rows, 1, "p0_busy") != 0.5 || tsField(t, rows, 1, "p1_busy") != 0 {
		t.Fatalf("interval 1 busy: %v", rows[1])
	}
	if tsField(t, rows, 1, "util") != 0.25 {
		t.Fatalf("interval 1 util=%v, want 0.25", tsField(t, rows, 1, "util"))
	}

	if tsField(t, rows, 2, "drops") != 1 || tsField(t, rows, 2, "reordered") != 1 {
		t.Fatalf("interval 2 drops/reordered: %v", rows[2])
	}
	// Proc 1 busy [150,200) of interval 2 → 0.5, carried into interval 3
	// until idle at 250 → full.
	if tsField(t, rows, 2, "p1_busy") != 0.5 {
		t.Fatalf("interval 2 p1_busy=%v, want 0.5", tsField(t, rows, 2, "p1_busy"))
	}
	if tsField(t, rows, 3, "p1_busy") != 1 {
		t.Fatalf("interval 3 p1_busy=%v, want 1", tsField(t, rows, 3, "p1_busy"))
	}
}

func TestTimeSeriesEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	ts := NewTimeSeries(&buf, 100, 1)
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	rows := tsRows(t, &buf)
	if len(rows) != 1 {
		t.Fatalf("empty series must be header-only, got %v", rows)
	}
	ts.Record(Event{Kind: KindArrival}) // after Close: dropped, no panic
}

func TestTimeSeriesDefaultsAndGrowth(t *testing.T) {
	var buf bytes.Buffer
	ts := NewTimeSeries(&buf, 0, 0) // defaults: 1000 µs, no preallocated procs
	ts.Record(Event{T: 10, Kind: KindProcBusy, Proc: 1}) // grows to 2 procs
	ts.Record(Event{T: 500, Kind: KindProcIdle, Proc: 1, Dur: 490})
	ts.Record(Event{T: 1500, Kind: KindArrival, Stream: 0, Seq: 1})
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	rows := tsRows(t, &buf)
	// Grown processors appear in the data rows even though the header was
	// written before they were seen; header keeps its original width, so
	// parse by position: row 1 is [0,1000) with util = 490/1000/2.
	if len(rows[1]) < 9 {
		t.Fatalf("row too short: %v", rows[1])
	}
	util, err := strconv.ParseFloat(rows[1][8], 64)
	if err != nil || util != 490.0/1000/2 {
		t.Fatalf("util=%v (%v), want %v", util, err, 490.0/1000/2)
	}
}
