package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// ChromeTrace streams events to w in the Chrome trace-event JSON array
// format, which loads directly in Perfetto (ui.perfetto.dev) and
// chrome://tracing. The layout is:
//
//   - process "processors" (pid 1): one track per simulated processor,
//     with a B/E slice for every packet execution (named after the
//     stream it served), instant markers for migrations, cold starts
//     and spills, and counter tracks for the periodic gauges.
//   - process "streams" (pid 2): one track per stream, with an async
//     b/e span per packet from arrival to completion — the packet's
//     whole life, queueing included.
//
// Events stream out as they are recorded (nothing is buffered beyond a
// bufio.Writer), so arbitrarily long runs trace in constant memory.
// Close writes the closing bracket and flushes; the result is invalid
// JSON until then.
//
// Per-event records are serialized by hand into a reused scratch buffer
// — the map[string]any + json.Marshal route allocated a dozen objects
// per event, which dominated traced-run profiles. Only the one-time
// naming metadata still goes through encoding/json.
type ChromeTrace struct {
	w       *bufio.Writer
	buf     []byte // per-record scratch, reused
	err     error
	started bool
	closed  bool
	procs   map[int]bool   // tids announced on pid 1
	streams map[int]string // tids announced on pid 2 → cached "stream N" name
}

const (
	pidProcs   = 1
	pidStreams = 2
)

// NewChromeTrace returns a sink writing the JSON array to w.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	return &ChromeTrace{
		w:       bufio.NewWriter(w),
		buf:     make([]byte, 0, 256),
		procs:   map[int]bool{},
		streams: map[int]string{},
	}
}

// begin starts one record in the scratch buffer, handling array
// punctuation, and returns the buffer to append to. Callers finish with
// emit.
func (c *ChromeTrace) begin() []byte {
	b := c.buf[:0]
	if !c.started {
		b = append(b, "[\n"...)
		c.started = true
	} else {
		b = append(b, ",\n"...)
	}
	return b
}

// emit writes the completed record.
func (c *ChromeTrace) emit(b []byte) {
	c.buf = b
	_, c.err = c.w.Write(b)
}

// raw writes one trace-event object built by encoding/json — used only
// for the rare metadata records.
func (c *ChromeTrace) raw(v map[string]any) {
	if c.err != nil || c.closed {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		c.err = err
		return
	}
	c.emit(append(c.begin(), data...))
}

// meta emits a metadata record (process/thread naming).
func (c *ChromeTrace) meta(name string, pid, tid int, args map[string]any) {
	c.raw(map[string]any{"ph": "M", "name": name, "pid": pid, "tid": tid, "args": args})
}

func (c *ChromeTrace) announceProc(p int) {
	if p < 0 || c.procs[p] {
		return
	}
	if len(c.procs) == 0 {
		c.meta("process_name", pidProcs, 0, map[string]any{"name": "processors"})
	}
	c.procs[p] = true
	c.meta("thread_name", pidProcs, p, map[string]any{"name": fmt.Sprintf("cpu %d", p)})
	c.meta("thread_sort_index", pidProcs, p, map[string]any{"sort_index": p})
}

// announceStream announces the stream's track on first sight and
// returns its cached "stream N" display name.
func (c *ChromeTrace) announceStream(s int) string {
	if s < 0 {
		return ""
	}
	if name, ok := c.streams[s]; ok {
		return name
	}
	if len(c.streams) == 0 {
		c.meta("process_name", pidStreams, 0, map[string]any{"name": "streams"})
	}
	name := fmt.Sprintf("stream %d", s)
	c.streams[s] = name
	c.meta("thread_name", pidStreams, s, map[string]any{"name": name})
	c.meta("thread_sort_index", pidStreams, s, map[string]any{"sort_index": s})
	return name
}

// finiteXRefs maps +Inf (cold start) to -1 so the JSON stays valid; the
// cold flag carries the information.
func finiteXRefs(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return -1
	}
	return x
}

func appendFloat(b []byte, x float64) []byte {
	return strconv.AppendFloat(b, x, 'g', -1, 64)
}

func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	b = append(b, s...) // kind/flag/track names: no characters needing escapes
	return append(b, '"')
}

// appendSpan appends an async packet-span record ("b"/"e") for pid 2.
func (c *ChromeTrace) appendSpan(b []byte, ph byte, seq uint64, stream int, t float64) []byte {
	b = append(b, `{"ph":"`...)
	b = append(b, ph)
	b = append(b, `","cat":"packet","id":"`...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, `","name":"packet","pid":`...)
	b = strconv.AppendInt(b, pidStreams, 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(stream), 10)
	b = append(b, `,"ts":`...)
	b = appendFloat(b, t)
	return append(b, '}')
}

// counter emits a counter sample on the processors process.
func (c *ChromeTrace) counter(name string, t, v float64) {
	if c.err != nil || c.closed {
		return
	}
	b := c.begin()
	b = append(b, `{"ph":"C","name":`...)
	b = appendString(b, name)
	b = append(b, `,"pid":1,"tid":0,"ts":`...)
	b = appendFloat(b, t)
	b = append(b, `,"args":{"value":`...)
	b = appendFloat(b, v)
	b = append(b, `}}`...)
	c.emit(b)
}

// instant emits an instant marker on a processor track with one integer
// argument.
func (c *ChromeTrace) instant(name string, t float64, proc int, argName string, argVal int) {
	c.announceProc(proc)
	if c.err != nil || c.closed {
		return
	}
	b := c.begin()
	b = append(b, `{"ph":"i","name":`...)
	b = appendString(b, name)
	b = append(b, `,"s":"t","pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(proc), 10)
	b = append(b, `,"ts":`...)
	b = appendFloat(b, t)
	b = append(b, `,"args":{`...)
	b = appendString(b, argName)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(argVal), 10)
	b = append(b, `}}`...)
	c.emit(b)
}

// Record implements Recorder.
func (c *ChromeTrace) Record(e Event) {
	switch e.Kind {
	case KindArrival:
		c.announceStream(e.Stream)
		if c.err != nil || c.closed {
			return
		}
		c.emit(c.appendSpan(c.begin(), 'b', e.Seq, e.Stream, e.T))
	case KindExecStart:
		c.announceProc(e.Proc)
		name := c.announceStream(e.Stream)
		if c.err != nil || c.closed {
			return
		}
		b := c.begin()
		b = append(b, `{"ph":"B","cat":"exec","name":`...)
		b = appendString(b, name)
		b = append(b, `,"pid":1,"tid":`...)
		b = strconv.AppendInt(b, int64(e.Proc), 10)
		b = append(b, `,"ts":`...)
		b = appendFloat(b, e.T)
		b = append(b, `,"args":{"seq":`...)
		b = strconv.AppendUint(b, e.Seq, 10)
		b = append(b, `,"entity":`...)
		b = strconv.AppendInt(b, int64(e.Entity), 10)
		b = append(b, `,"exec_us":`...)
		b = appendFloat(b, e.Dur)
		b = append(b, `,"xrefs":`...)
		b = appendFloat(b, finiteXRefs(e.Val))
		b = append(b, `,"flags":`...)
		b = appendString(b, e.Flags.String())
		b = append(b, `}}`...)
		c.emit(b)
	case KindExecEnd:
		c.announceProc(e.Proc)
		if c.err != nil || c.closed {
			return
		}
		b := c.begin()
		b = append(b, `{"ph":"E","pid":1,"tid":`...)
		b = strconv.AppendInt(b, int64(e.Proc), 10)
		b = append(b, `,"ts":`...)
		b = appendFloat(b, e.T)
		b = append(b, '}')
		c.emit(b)
		if e.Stream >= 0 {
			c.announceStream(e.Stream)
			if c.err != nil || c.closed {
				return
			}
			c.emit(c.appendSpan(c.begin(), 'e', e.Seq, e.Stream, e.T))
		}
	case KindMigration:
		c.instant("migration", e.T, e.Proc, "entity", e.Entity)
	case KindColdStart:
		c.instant("cold start", e.T, e.Proc, "entity", e.Entity)
	case KindSpill:
		// A spill may happen before a processor is chosen (Proc -1);
		// pin those markers to track 0 rather than dropping them.
		proc := e.Proc
		if proc < 0 {
			proc = 0
		}
		c.instant("spill", e.T, proc, "stream", e.Stream)
	case KindProcDown:
		c.instant("proc down", e.T, e.Proc, "proc", e.Proc)
	case KindProcUp:
		c.instant("proc up", e.T, e.Proc, "proc", e.Proc)
	case KindDrop:
		// Drops happen before a processor is involved; pin the marker
		// to track 0 and carry the stream that lost the packet.
		c.instant("drop", e.T, 0, "stream", e.Stream)
	case KindGaugeQueue:
		c.counter("queued packets", e.T, e.Val)
	case KindGaugeOverflow:
		c.counter("overflow queue", e.T, e.Val)
	case KindGaugeHeap:
		c.counter("event heap", e.T, e.Val)
	case KindGaugeDispNP:
		c.counter("disp refs (non-protocol)", e.T, e.Val)
	case KindGaugeDispProto:
		c.counter("disp refs (protocol)", e.T, e.Val)
	}
	// KindEnqueue, KindDispatch, KindProcBusy and KindProcIdle carry no
	// extra visual information: waiting shows as the gap inside the
	// packet's async span, busy/idle as the presence of exec slices.
}

// Err returns the first write or encoding error, if any.
func (c *ChromeTrace) Err() error { return c.err }

// Close terminates the JSON array and flushes. Events recorded after
// Close are dropped.
func (c *ChromeTrace) Close() error {
	if c.closed {
		return c.err
	}
	if c.err == nil && !c.started {
		_, c.err = c.w.WriteString("[")
		c.started = true
	}
	if c.err == nil {
		_, c.err = c.w.WriteString("\n]\n")
	}
	c.closed = true
	if err := c.w.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}
