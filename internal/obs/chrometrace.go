package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// ChromeTrace streams events to w in the Chrome trace-event JSON array
// format, which loads directly in Perfetto (ui.perfetto.dev) and
// chrome://tracing. The layout is:
//
//   - process "processors" (pid 1): one track per simulated processor,
//     with a B/E slice for every packet execution (named after the
//     stream it served), instant markers for migrations, cold starts
//     and spills, and counter tracks for the periodic gauges.
//   - process "streams" (pid 2): one track per stream, with an async
//     b/e span per packet from arrival to completion — the packet's
//     whole life, queueing included.
//
// Events stream out as they are recorded (nothing is buffered beyond a
// bufio.Writer), so arbitrarily long runs trace in constant memory.
// Close writes the closing bracket and flushes; the result is invalid
// JSON until then.
type ChromeTrace struct {
	w       *bufio.Writer
	err     error
	started bool
	closed  bool
	procs   map[int]bool // tids announced on pid 1
	streams map[int]bool // tids announced on pid 2
}

const (
	pidProcs   = 1
	pidStreams = 2
)

// NewChromeTrace returns a sink writing the JSON array to w.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	return &ChromeTrace{
		w:       bufio.NewWriter(w),
		procs:   map[int]bool{},
		streams: map[int]bool{},
	}
}

// raw writes one trace-event object, handling array punctuation.
func (c *ChromeTrace) raw(v map[string]any) {
	if c.err != nil || c.closed {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		c.err = err
		return
	}
	if !c.started {
		_, c.err = c.w.WriteString("[\n")
		c.started = true
	} else {
		_, c.err = c.w.WriteString(",\n")
	}
	if c.err == nil {
		_, c.err = c.w.Write(b)
	}
}

// meta emits a metadata record (process/thread naming).
func (c *ChromeTrace) meta(name string, pid, tid int, args map[string]any) {
	c.raw(map[string]any{"ph": "M", "name": name, "pid": pid, "tid": tid, "args": args})
}

func (c *ChromeTrace) announceProc(p int) {
	if p < 0 || c.procs[p] {
		return
	}
	if len(c.procs) == 0 {
		c.meta("process_name", pidProcs, 0, map[string]any{"name": "processors"})
	}
	c.procs[p] = true
	c.meta("thread_name", pidProcs, p, map[string]any{"name": fmt.Sprintf("cpu %d", p)})
	c.meta("thread_sort_index", pidProcs, p, map[string]any{"sort_index": p})
}

func (c *ChromeTrace) announceStream(s int) {
	if s < 0 || c.streams[s] {
		return
	}
	if len(c.streams) == 0 {
		c.meta("process_name", pidStreams, 0, map[string]any{"name": "streams"})
	}
	c.streams[s] = true
	c.meta("thread_name", pidStreams, s, map[string]any{"name": fmt.Sprintf("stream %d", s)})
	c.meta("thread_sort_index", pidStreams, s, map[string]any{"sort_index": s})
}

// finiteXRefs maps +Inf (cold start) to -1 so the JSON stays valid; the
// cold flag carries the information.
func finiteXRefs(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return -1
	}
	return x
}

// counter emits a counter sample on the processors process.
func (c *ChromeTrace) counter(name string, t, v float64) {
	c.raw(map[string]any{
		"ph": "C", "name": name, "pid": pidProcs, "tid": 0, "ts": t,
		"args": map[string]any{"value": v},
	})
}

// instant emits an instant marker on a processor track.
func (c *ChromeTrace) instant(name string, t float64, proc int, args map[string]any) {
	c.announceProc(proc)
	ev := map[string]any{"ph": "i", "name": name, "s": "t", "pid": pidProcs, "tid": proc, "ts": t}
	if args != nil {
		ev["args"] = args
	}
	c.raw(ev)
}

// Record implements Recorder.
func (c *ChromeTrace) Record(e Event) {
	switch e.Kind {
	case KindArrival:
		c.announceStream(e.Stream)
		c.raw(map[string]any{
			"ph": "b", "cat": "packet", "id": fmt.Sprintf("%d", e.Seq), "name": "packet",
			"pid": pidStreams, "tid": e.Stream, "ts": e.T,
		})
	case KindExecStart:
		c.announceProc(e.Proc)
		c.raw(map[string]any{
			"ph": "B", "cat": "exec", "name": fmt.Sprintf("stream %d", e.Stream),
			"pid": pidProcs, "tid": e.Proc, "ts": e.T,
			"args": map[string]any{
				"seq": e.Seq, "entity": e.Entity, "exec_us": e.Dur,
				"xrefs": finiteXRefs(e.Val), "flags": e.Flags.String(),
			},
		})
	case KindExecEnd:
		c.announceProc(e.Proc)
		c.raw(map[string]any{"ph": "E", "pid": pidProcs, "tid": e.Proc, "ts": e.T})
		if e.Stream >= 0 {
			c.announceStream(e.Stream)
			c.raw(map[string]any{
				"ph": "e", "cat": "packet", "id": fmt.Sprintf("%d", e.Seq), "name": "packet",
				"pid": pidStreams, "tid": e.Stream, "ts": e.T,
			})
		}
	case KindMigration:
		c.instant("migration", e.T, e.Proc, map[string]any{"entity": e.Entity})
	case KindColdStart:
		c.instant("cold start", e.T, e.Proc, map[string]any{"entity": e.Entity})
	case KindSpill:
		// A spill may happen before a processor is chosen (Proc -1);
		// pin those markers to track 0 rather than dropping them.
		proc := e.Proc
		if proc < 0 {
			proc = 0
		}
		c.instant("spill", e.T, proc, map[string]any{"stream": e.Stream})
	case KindGaugeQueue:
		c.counter("queued packets", e.T, e.Val)
	case KindGaugeOverflow:
		c.counter("overflow queue", e.T, e.Val)
	case KindGaugeHeap:
		c.counter("event heap", e.T, e.Val)
	case KindGaugeDispNP:
		c.counter("disp refs (non-protocol)", e.T, e.Val)
	case KindGaugeDispProto:
		c.counter("disp refs (protocol)", e.T, e.Val)
	}
	// KindEnqueue, KindDispatch, KindProcBusy and KindProcIdle carry no
	// extra visual information: waiting shows as the gap inside the
	// packet's async span, busy/idle as the presence of exec slices.
}

// Err returns the first write or encoding error, if any.
func (c *ChromeTrace) Err() error { return c.err }

// Close terminates the JSON array and flushes. Events recorded after
// Close are dropped.
func (c *ChromeTrace) Close() error {
	if c.closed {
		return c.err
	}
	if c.err == nil && !c.started {
		_, c.err = c.w.WriteString("[")
		c.started = true
	}
	if c.err == nil {
		_, c.err = c.w.WriteString("\n]\n")
	}
	c.closed = true
	if err := c.w.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}
