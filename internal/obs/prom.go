package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Metrics export: render a Snapshot as Prometheus text exposition or
// indented JSON. Both writers iterate kinds in enum order so output is
// deterministic — diffs and goldens stay stable as kinds are added at
// the end of the enum. This is the file a served-metrics endpoint will
// reuse; for now the CLI writes it once post-run.

// promSummary emits one Summary as _count/_mean/_min/_max series.
func promSummary(w io.Writer, name, help string, s Summary) error {
	if s.N == 0 {
		return nil
	}
	_, err := fmt.Fprintf(w,
		"# HELP affinity_%s %s\n# TYPE affinity_%s summary\naffinity_%s_count %d\naffinity_%s_mean %g\naffinity_%s_min %g\naffinity_%s_max %g\n",
		name, help, name, name, s.N, name, s.Mean, name, s.Min, name, s.Max)
	return err
}

// WritePrometheus renders s in the Prometheus text exposition format
// (version 0.0.4): one affinity_events_total series per event kind
// (label kind="…"), per-processor busy time, and summary series for the
// recorded duration distributions.
func WritePrometheus(w io.Writer, s Snapshot) error {
	if _, err := fmt.Fprintf(w,
		"# HELP affinity_events_total Events recorded, by kind.\n# TYPE affinity_events_total counter\n"); err != nil {
		return err
	}
	for k := Kind(0); k < numKinds; k++ {
		n, ok := s.Counts[k.String()]
		if !ok {
			continue
		}
		if _, err := fmt.Fprintf(w, "affinity_events_total{kind=%q} %d\n", k.String(), n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP affinity_proc_busy_us Closed per-processor busy time, microseconds.\n# TYPE affinity_proc_busy_us counter\n"); err != nil {
		return err
	}
	for p, busy := range s.PerProcBusy {
		if _, err := fmt.Fprintf(w, "affinity_proc_busy_us{proc=\"%d\"} %g\n", p, busy); err != nil {
			return err
		}
	}
	sums := []struct {
		name, help string
		s          Summary
	}{
		{"exec_time_us", "Per-completion protocol execution time, microseconds.", s.ExecTime},
		{"queue_wait_us", "Per-dispatch queueing delay, microseconds.", s.QueueWait},
		{"busy_interval_us", "Closed processor busy intervals, microseconds.", s.BusyInterval},
		{"idle_interval_us", "Closed processor idle intervals, microseconds.", s.IdleInterval},
		{"down_interval_us", "Closed processor down intervals, microseconds.", s.DownInterval},
		{"queue_depth", "Sampled packets waiting in all queues.", s.QueueDepth},
	}
	for _, x := range sums {
		if err := promSummary(w, x.name, x.help, x.s); err != nil {
			return err
		}
	}
	return nil
}

// WriteMetricsJSON renders s as indented JSON, a machine-readable twin
// of the Prometheus text.
func WriteMetricsJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
