package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Offline analysis over recorded streams: parsers that invert the CSV
// sinks row-for-row, a ledger report (decision counts, regret
// histogram, top migrating streams), and a per-stream reordering report
// derived from the event stream. These run in tools (schedtrace), never
// on the simulation hot path, so they favor clarity over allocation
// discipline.

// ReadEventsCSV parses an event stream written by the CSV sink back
// into Events. Drop rows recover their DropReason* value from the
// readable reason column.
func ReadEventsCSV(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 || text == "" { // header
			continue
		}
		f := strings.Split(text, ",")
		if len(f) != 10 {
			return nil, fmt.Errorf("events csv line %d: got %d fields, want 10", line, len(f))
		}
		var e Event
		var err error
		if e.T, err = strconv.ParseFloat(f[0], 64); err != nil {
			return nil, fmt.Errorf("events csv line %d: t_us: %v", line, err)
		}
		k, ok := ParseKind(f[1])
		if !ok {
			return nil, fmt.Errorf("events csv line %d: unknown kind %q", line, f[1])
		}
		e.Kind = k
		if e.Proc, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("events csv line %d: proc: %v", line, err)
		}
		if e.Stream, err = strconv.Atoi(f[3]); err != nil {
			return nil, fmt.Errorf("events csv line %d: stream: %v", line, err)
		}
		if e.Entity, err = strconv.Atoi(f[4]); err != nil {
			return nil, fmt.Errorf("events csv line %d: entity: %v", line, err)
		}
		if e.Seq, err = strconv.ParseUint(f[5], 10, 64); err != nil {
			return nil, fmt.Errorf("events csv line %d: seq: %v", line, err)
		}
		if f[6] != "" {
			if e.Dur, err = strconv.ParseFloat(f[6], 64); err != nil {
				return nil, fmt.Errorf("events csv line %d: dur_us: %v", line, err)
			}
		}
		if f[7] != "" {
			if e.Val, err = strconv.ParseFloat(f[7], 64); err != nil {
				return nil, fmt.Errorf("events csv line %d: value: %v", line, err)
			}
		}
		fl, ok := ParseFlags(f[8])
		if !ok {
			return nil, fmt.Errorf("events csv line %d: unknown flags %q", line, f[8])
		}
		e.Flags = fl
		if e.Kind == KindDrop {
			v, ok := ParseDropReason(f[9])
			if !ok {
				return nil, fmt.Errorf("events csv line %d: unknown drop reason %q", line, f[9])
			}
			e.Val = v
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// ReadDecisionCSV parses a ledger written by the DecisionCSV sink back
// into Decisions (candidate sets owned by the result).
func ReadDecisionCSV(r io.Reader) ([]Decision, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var ds []Decision
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 || text == "" { // header
			continue
		}
		f := strings.Split(text, ",")
		if len(f) != 12 {
			return nil, fmt.Errorf("ledger csv line %d: got %d fields, want 12", line, len(f))
		}
		var d Decision
		var err error
		if d.T, err = strconv.ParseFloat(f[0], 64); err != nil {
			return nil, fmt.Errorf("ledger csv line %d: t_us: %v", line, err)
		}
		pt, ok := ParseDecisionPoint(f[1])
		if !ok {
			return nil, fmt.Errorf("ledger csv line %d: unknown point %q", line, f[1])
		}
		d.Point = pt
		if d.Seq, err = strconv.ParseUint(f[2], 10, 64); err != nil {
			return nil, fmt.Errorf("ledger csv line %d: seq: %v", line, err)
		}
		if d.Stream, err = strconv.Atoi(f[3]); err != nil {
			return nil, fmt.Errorf("ledger csv line %d: stream: %v", line, err)
		}
		if d.Entity, err = strconv.Atoi(f[4]); err != nil {
			return nil, fmt.Errorf("ledger csv line %d: entity: %v", line, err)
		}
		if d.Chosen, err = strconv.Atoi(f[5]); err != nil {
			return nil, fmt.Errorf("ledger csv line %d: chosen: %v", line, err)
		}
		if d.Preferred, err = strconv.Atoi(f[6]); err != nil {
			return nil, fmt.Errorf("ledger csv line %d: preferred: %v", line, err)
		}
		ncand, err := strconv.Atoi(f[7])
		if err != nil {
			return nil, fmt.Errorf("ledger csv line %d: ncand: %v", line, err)
		}
		if d.ChosenCost, err = strconv.ParseFloat(f[8], 64); err != nil {
			return nil, fmt.Errorf("ledger csv line %d: chosen_cost_us: %v", line, err)
		}
		if d.BestCost, err = strconv.ParseFloat(f[9], 64); err != nil {
			return nil, fmt.Errorf("ledger csv line %d: best_cost_us: %v", line, err)
		}
		// f[10] is the derived regret column; recomputed, not parsed.
		if f[11] != "" {
			for _, part := range strings.Split(f[11], "|") {
				cf := strings.SplitN(part, ":", 3)
				if len(cf) != 3 {
					return nil, fmt.Errorf("ledger csv line %d: bad candidate %q", line, part)
				}
				var cd Candidate
				if cd.Proc, err = strconv.Atoi(cf[0]); err != nil {
					return nil, fmt.Errorf("ledger csv line %d: candidate proc: %v", line, err)
				}
				switch cf[1] {
				case "w":
					cd.Warm = true
				case "c":
					cd.Warm = false
				default:
					return nil, fmt.Errorf("ledger csv line %d: bad candidate state %q", line, cf[1])
				}
				if cd.Cost, err = strconv.ParseFloat(cf[2], 64); err != nil {
					return nil, fmt.Errorf("ledger csv line %d: candidate cost: %v", line, err)
				}
				d.Candidates = append(d.Candidates, cd)
			}
		}
		if len(d.Candidates) != ncand {
			return nil, fmt.Errorf("ledger csv line %d: ncand=%d but %d candidates",
				line, ncand, len(d.Candidates))
		}
		ds = append(ds, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}

// RegretBucket is one bar of the decision-regret histogram: decisions
// whose regret fell in (Lo, Hi] µs. The first bucket is the exact-zero
// bucket (Lo = Hi = 0): decisions that chose the cheapest candidate.
type RegretBucket struct {
	Lo, Hi float64
	Count  int
}

// StreamDecisions aggregates one stream's decisions for the ledger
// report.
type StreamDecisions struct {
	Stream    int
	Decisions int
	// Moves counts decisions that placed the stream's work away from the
	// dispatcher's affinity target (Preferred >= 0 and Chosen differs) —
	// the ledger's view of migrations-in-the-making.
	Moves  int
	Regret float64 // summed regret, µs
}

// LedgerReport condenses a recorded decision ledger.
type LedgerReport struct {
	Total       int
	ByPoint     map[string]int // decision-point name → count
	TotalRegret float64        // summed regret, µs
	MaxRegret   float64        // largest single-decision regret, µs
	ZeroRegret  int            // decisions that chose the cheapest candidate
	Hist        []RegretBucket
	// Streams is every stream's aggregate, most Moves first (ties: more
	// regret, then lower stream id) — the head is the "top migrating
	// streams" answer.
	Streams []StreamDecisions
}

// MeanRegret returns the mean per-decision regret, µs (0 for an empty
// ledger).
func (r LedgerReport) MeanRegret() float64 {
	if r.Total == 0 {
		return 0
	}
	return r.TotalRegret / float64(r.Total)
}

// AnalyzeLedger builds the report for a recorded ledger. The regret
// histogram has an exact-zero bucket followed by geometric buckets
// (0,1], (1,2], (2,4], … µs up to the maximum observed regret.
func AnalyzeLedger(ds []Decision) LedgerReport {
	rep := LedgerReport{
		Total:   len(ds),
		ByPoint: make(map[string]int),
	}
	perStream := make(map[int]*StreamDecisions)
	for _, d := range ds {
		rep.ByPoint[d.Point.String()]++
		reg := d.Regret()
		rep.TotalRegret += reg
		if reg > rep.MaxRegret {
			rep.MaxRegret = reg
		}
		if reg == 0 {
			rep.ZeroRegret++
		}
		s := perStream[d.Stream]
		if s == nil {
			s = &StreamDecisions{Stream: d.Stream}
			perStream[d.Stream] = s
		}
		s.Decisions++
		s.Regret += reg
		if d.Preferred >= 0 && d.Chosen != d.Preferred {
			s.Moves++
		}
	}

	rep.Hist = append(rep.Hist, RegretBucket{Count: rep.ZeroRegret})
	for lo, hi := 0.0, 1.0; lo < rep.MaxRegret; lo, hi = hi, hi*2 {
		b := RegretBucket{Lo: lo, Hi: hi}
		for _, d := range ds {
			if reg := d.Regret(); reg > lo && reg <= hi {
				b.Count++
			}
		}
		rep.Hist = append(rep.Hist, b)
	}

	for _, s := range perStream {
		rep.Streams = append(rep.Streams, *s)
	}
	sort.Slice(rep.Streams, func(i, j int) bool {
		a, b := rep.Streams[i], rep.Streams[j]
		if a.Moves != b.Moves {
			return a.Moves > b.Moves
		}
		if a.Regret != b.Regret {
			return a.Regret > b.Regret
		}
		return a.Stream < b.Stream
	})
	return rep
}

// StreamReorder is one stream's reordering aggregate derived from an
// event stream: completions that finished before an earlier-arrived
// packet of the same stream, and the worst displacement (in packets of
// that stream) any completion suffered.
type StreamReorder struct {
	Stream      int
	Completions int
	Reordered   int
	MaxDistance uint64
}

// ReorderingByStream replays an event stream and reports per-stream
// reordering, ascending by stream id. Ranks within a stream come from
// arrival events (arrival order is ascending global seq); streams with
// completions but no recorded arrivals rank by their completions' seqs
// instead, which is equivalent when the trace is complete.
func ReorderingByStream(events []Event) []StreamReorder {
	seqsOf := make(map[int][]uint64)
	for _, e := range events {
		if e.Kind == KindArrival && e.Stream >= 0 {
			seqsOf[e.Stream] = append(seqsOf[e.Stream], e.Seq)
		}
	}
	for _, e := range events {
		if e.Kind == KindExecEnd && e.Stream >= 0 {
			if _, ok := seqsOf[e.Stream]; !ok {
				// No arrivals recorded for this stream: fall back to the
				// completion seqs themselves.
				for _, e2 := range events {
					if e2.Kind == KindExecEnd && e2.Stream == e.Stream {
						seqsOf[e.Stream] = append(seqsOf[e.Stream], e2.Seq)
					}
				}
			}
		}
	}
	rank := make(map[int]map[uint64]uint64, len(seqsOf))
	for s, seqs := range seqsOf {
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		m := make(map[uint64]uint64, len(seqs))
		for i, q := range seqs {
			m[q] = uint64(i)
		}
		rank[s] = m
	}

	agg := make(map[int]*StreamReorder)
	maxDone := make(map[int]uint64) // stream → max completed rank + 1
	for _, e := range events {
		if e.Kind != KindExecEnd || e.Stream < 0 {
			continue
		}
		a := agg[e.Stream]
		if a == nil {
			a = &StreamReorder{Stream: e.Stream}
			agg[e.Stream] = a
		}
		a.Completions++
		rk, ok := rank[e.Stream][e.Seq]
		if !ok {
			continue
		}
		if rk+1 > maxDone[e.Stream] {
			maxDone[e.Stream] = rk + 1
		} else {
			a.Reordered++
			if d := maxDone[e.Stream] - 1 - rk; d > a.MaxDistance {
				a.MaxDistance = d
			}
		}
	}
	out := make([]StreamReorder, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}
