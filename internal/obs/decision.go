package obs

import "fmt"

// The decision ledger is obs v2's second stream: where Event records
// what *happened*, a Decision records what was *decided* — the processor
// a dispatch decision chose plus every candidate it considered, each
// with its predicted execution cost. The simulator computes candidate
// costs from the same pure model functions it charges service with, so
// recording decisions never perturbs a run; the zero-overhead contract
// matches the event stream's (one nil-recorder branch per decision site
// when disabled, zero allocations per decision when enabled).

// DecisionPoint classifies where in the dispatch pipeline a decision was
// taken.
type DecisionPoint uint8

const (
	// PointPlace is an arrival placement: the dispatcher chose an idle
	// processor for newly arrived work, considering the whole idle set.
	PointPlace DecisionPoint = iota
	// PointDispatch is a processor pulling queued work: the processor is
	// fixed, so the candidate set is just it (the choice was which work,
	// not where).
	PointDispatch
	// PointSpill is a Hybrid overflow placement: a packet diverted to
	// the shared locking path, placed on a random idle processor.
	PointSpill

	numPoints
)

var pointNames = [numPoints]string{"place", "dispatch", "spill"}

func (p DecisionPoint) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("DecisionPoint(%d)", int(p))
}

// ParseDecisionPoint inverts DecisionPoint.String.
func ParseDecisionPoint(s string) (DecisionPoint, bool) {
	for i, name := range pointNames {
		if name == s {
			return DecisionPoint(i), true
		}
	}
	return 0, false
}

// Candidate is one processor a decision considered.
type Candidate struct {
	Proc int
	// Warm predicts a warm execution there: the entity's footprint
	// displacement is finite and under the F1 = 0.5 knee — the same
	// predicate the simulator's WarmFraction counts.
	Warm bool
	// XRefs is the displacing references the entity suffered on the
	// processor since it last ran there (+Inf = never ran, cold).
	XRefs float64
	// Cost is the predicted execution time there, µs (model output plus
	// fixed data-touching cost, slow-down faults applied).
	Cost float64
}

// Decision is one dispatch decision with its alternatives. Regret — the
// price of the choice against the cheapest candidate — is ChosenCost
// minus BestCost, ≥ 0 by construction.
type Decision struct {
	T      float64 // simulation time, µs
	Point  DecisionPoint
	Seq    uint64 // packet serial number (the packet the decision ran)
	Stream int
	Entity int
	// Chosen is the processor the decision selected; Preferred is the
	// dispatcher's affinity target for the entity (-1 when it has none —
	// no-affinity baselines, entity not seen yet).
	Chosen     int
	Preferred  int
	ChosenCost float64 // predicted cost on Chosen, µs
	BestCost   float64 // cheapest candidate's predicted cost, µs
	// Candidates is the considered set. It aliases the emitter's scratch
	// buffer and is valid only for the duration of the RecordDecision
	// call: recorders that retain decisions must copy it (FlightRecorder
	// copies into its preallocated arena).
	Candidates []Candidate
}

// Regret returns the predicted cost of the choice over the cheapest
// alternative considered, µs.
func (d Decision) Regret() float64 { return d.ChosenCost - d.BestCost }

// DecisionRecorder receives the decision stream. Like Recorder,
// implementations need not be goroutine-safe: the DES is
// single-threaded and the live backend serializes emissions under its
// dispatch lock.
type DecisionRecorder interface {
	RecordDecision(Decision)
}

// teeDecision fans decisions out to several recorders.
type teeDecision []DecisionRecorder

func (t teeDecision) RecordDecision(d Decision) {
	for _, r := range t {
		r.RecordDecision(d)
	}
}

// DecisionMulti returns a DecisionRecorder forwarding each decision to
// every non-nil rec, mirroring Multi.
func DecisionMulti(recs ...DecisionRecorder) DecisionRecorder {
	var t teeDecision
	for _, r := range recs {
		if r != nil {
			t = append(t, r)
		}
	}
	switch len(t) {
	case 0:
		return nil
	case 1:
		return t[0]
	}
	return t
}

// FlightRecorder keeps the last capacity decisions in a fixed-size ring
// buffer — a crash-dump-style recorder cheap enough to leave attached to
// any run. All storage (the ring and a per-slot candidate arena) is
// allocated up front, so RecordDecision never allocates; candidate sets
// larger than the per-slot arena are truncated and counted.
type FlightRecorder struct {
	slots     []Decision
	arena     []Candidate // slot i owns arena[i*maxCands : (i+1)*maxCands]
	maxCands  int
	n         uint64 // total decisions recorded (ring has min(n, cap))
	truncated uint64
}

// NewFlightRecorder returns a ring holding the last capacity decisions
// with up to maxCands candidates each (non-positive arguments select 256
// and 8).
func NewFlightRecorder(capacity, maxCands int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	if maxCands <= 0 {
		maxCands = 8
	}
	return &FlightRecorder{
		slots:    make([]Decision, capacity),
		arena:    make([]Candidate, capacity*maxCands),
		maxCands: maxCands,
	}
}

// RecordDecision implements DecisionRecorder, copying the candidate set
// into the slot's arena (truncating past maxCands).
func (f *FlightRecorder) RecordDecision(d Decision) {
	i := int(f.n % uint64(len(f.slots)))
	f.n++
	cands := d.Candidates
	if len(cands) > f.maxCands {
		cands = cands[:f.maxCands]
		f.truncated++
	}
	dst := f.arena[i*f.maxCands : i*f.maxCands+len(cands)]
	copy(dst, cands)
	d.Candidates = dst
	f.slots[i] = d
}

// Len returns how many decisions the ring currently holds.
func (f *FlightRecorder) Len() int {
	if f.n < uint64(len(f.slots)) {
		return int(f.n)
	}
	return len(f.slots)
}

// Total returns how many decisions were recorded over the recorder's
// lifetime (recorded − Len() have been overwritten).
func (f *FlightRecorder) Total() uint64 { return f.n }

// Truncated returns how many decisions had their candidate set cut to
// the per-slot arena size.
func (f *FlightRecorder) Truncated() uint64 { return f.truncated }

// Snapshot returns the retained decisions oldest-first, with candidate
// sets copied out of the arena (safe to hold across further recording).
func (f *FlightRecorder) Snapshot() []Decision {
	n := f.Len()
	out := make([]Decision, 0, n)
	start := uint64(0)
	if f.n > uint64(len(f.slots)) {
		start = f.n - uint64(len(f.slots))
	}
	for s := start; s < f.n; s++ {
		d := f.slots[int(s%uint64(len(f.slots)))]
		d.Candidates = append([]Candidate(nil), d.Candidates...)
		out = append(out, d)
	}
	return out
}
