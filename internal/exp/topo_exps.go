package exp

import (
	"fmt"

	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/topo"
	"affinity/internal/traffic"
	"affinity/internal/workload"
)

// FigE33 asks how the paper's headline verdict — MRU affinity beats
// static stream wiring — survives on a machine the paper never had: a
// multi-socket NUMA box where a migrating packet's reload transient
// depends on how far it moved. The sweep holds a 2×4 shape fixed and
// raises the cross-socket transient multiplier; MRU keeps its
// scheduling freedom but pays ever more for using it, while
// Wired-Streams never migrates after assignment and is bit-identical
// at every point. The MRU-over-Wired advantage therefore shrinks
// monotonically in the multiplier — affinity scheduling's value is a
// function of the topology's migration cost, which is exactly the
// Vaswani–Zahorjan-style sensitivity E24 measures along a different
// axis.
func FigE33(c Config) *Table {
	t := &Table{
		ID:      "E33",
		Title:   "NUMA topology sweep: MRU vs Wired-Streams as cross-socket transients grow (Locking, 2×4 cores, 8 streams, 1500 pkt/s/stream)",
		Columns: []string{"topology", "MRU delay (µs)", "Wired delay (µs)", "MRU advantage", "MRU migrations"},
		Notes: []string{
			"topology SxC:same,cross — transient multipliers for same-socket and cross-socket migration",
			"flat is the topology-free baseline machine (all multipliers 1); Wired-Streams never migrates,",
			"so its column is constant and the advantage erodes only through MRU's migration bill",
		},
	}
	topos := []struct {
		label string
		tp    *topo.Topology
	}{
		{"flat", nil},
		{"2x4:1,1.5", &topo.Topology{Sockets: 2, CoresPerSocket: 4, SameSocketTransient: 1, CrossSocketTransient: 1.5}},
		{"2x4:1,2", &topo.Topology{Sockets: 2, CoresPerSocket: 4, SameSocketTransient: 1, CrossSocketTransient: 2}},
		{"2x4:1.2,3", &topo.Topology{Sockets: 2, CoresPerSocket: 4, SameSocketTransient: 1.2, CrossSocketTransient: 3}},
	}
	g := c.Grid("E33")
	type pair struct{ mru, wired *Point }
	pts := make([]pair, len(topos))
	for i, tc := range topos {
		base := sim.Params{
			Paradigm: sim.Locking, Streams: 8, Processors: 8,
			Topology: tc.tp,
			Arrival:  traffic.Poisson{PacketsPerSec: 1500},
		}
		mru := base
		mru.Policy = sched.MRU
		wired := base
		wired.Policy = sched.WiredStreams
		pts[i].mru = g.Add(tc.label+"/MRU", mru)
		pts[i].wired = g.Add(tc.label+"/Wired", wired)
	}
	g.Run()
	for i, tc := range topos {
		mr, wd := pts[i].mru.Results(), pts[i].wired.Results()
		adv := (wd.MeanDelay - mr.MeanDelay) / wd.MeanDelay
		t.AddRow(tc.label, fmtDelay(mr), fmtDelay(wd),
			fmt.Sprintf("%.1f%%", 100*adv), mr.Migrations)
	}
	return t
}

// FigE34 evaluates the two NIC-style hash dispatchers against the
// paper's best migrating policy on Internet-shaped traffic: a bursty
// Zipf-skewed client mix on a NUMA machine. RSS is pure static
// affinity — every stream's home comes from a hash, so it never
// migrates and structurally never reorders a stream, but a hot hash
// bucket eats the skew. Flow Director keeps RSS's table and re-homes a
// stream when its queue backs up, buying load balance at the price the
// transport layer sees: in-flight packets of the moved stream complete
// out of order. MRU is the software ceiling both approximate — perfect
// affinity when idle, migration when busy, reordering paid on every
// move.
func FigE34(c Config) *Table {
	t := &Table{
		ID:      "E34",
		Title:   "Hash dispatch vs MRU on bursty Zipf traffic (Locking, 2×4:1,2 NUMA, 16 streams, 12000 pkt/s aggregate, burst 8, zipf 1.1)",
		Columns: []string{"policy", "mean delay (µs)", "p95 (µs)", "warm frac", "reordered", "max distance", "migrations"},
		Notes: []string{
			"RSS: static hash table homes, zero reordering by construction — the hottest bucket pays for the skew",
			"FlowDirector: RSS + queue-depth-triggered re-homing (trigger 8); reordering counts its in-flight moves",
			"MRU: the paper's migrating affinity policy as the software reference point",
		},
	}
	spec := &workload.Spec{
		Name: "bursty-zipf",
		Classes: []workload.Class{
			{Name: "flows", Model: "batch", Streams: 16, RatePPS: 12000,
				MeanBurst: 8, Zipf: 1.1},
		},
	}
	numa := &topo.Topology{Sockets: 2, CoresPerSocket: 4,
		SameSocketTransient: 1, CrossSocketTransient: 2}
	g := c.Grid("E34")
	policies := []sched.Kind{sched.RSS, sched.FlowDirector, sched.MRU}
	pts := make([]*Point, len(policies))
	for i, pol := range policies {
		pts[i] = g.Add(pol.String(), sim.Params{
			Paradigm: sim.Locking, Policy: pol, Processors: 8,
			Topology: numa, Workload: spec,
		})
	}
	g.Run()
	for i, pol := range policies {
		r := pts[i].Results()
		t.AddRow(pol.String(), fmtDelay(r), fmt.Sprintf("%.1f", r.P95Delay),
			fmt.Sprintf("%.2f", r.WarmFraction), r.ReorderedTotal,
			r.MaxReorderDistance, r.Migrations)
	}
	return t
}
