package exp

import (
	"strings"
	"testing"
)

func sweepTable() *Table {
	t := &Table{
		ID:      "E5",
		Title:   "demo sweep",
		Columns: []string{"rate", "FCFS", "MRU"},
	}
	t.AddRow(100.0, "250.0", "230.0")
	t.AddRow(200.0, "260.0", "235.0")
	t.AddRow(400.0, "50000*", "400.0")  // saturated cell still plots
	t.AddRow(800.0, "—", "500.0")       // unparsable cell skipped
	t.AddRow(900.0, ">100000", "600.0") // clamped quantile plots its bound
	return t
}

func TestChartFromTable(t *testing.T) {
	c := ChartFromTable(sweepTable(), 0, 1, 2)
	if len(c.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(c.Series))
	}
	if len(c.Series[0].X) != 4 { // the dash row is skipped
		t.Fatalf("FCFS points = %d, want 4", len(c.Series[0].X))
	}
	if len(c.Series[1].X) != 5 {
		t.Fatalf("MRU points = %d, want 5", len(c.Series[1].X))
	}
	if c.Series[0].Y[2] != 50000 {
		t.Fatalf("saturated cell parsed as %v", c.Series[0].Y[2])
	}
	if c.Series[0].Y[3] != 100000 {
		t.Fatalf("clamped-P95 cell parsed as %v, want 100000", c.Series[0].Y[3])
	}
}

// parseCell handles every marker the tables emit: saturation '*',
// percentages, and the '>' prefix on quantiles clamped at the
// histogram's upper bound.
func TestParseCellMarkers(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"250.0", 250},
		{"50000*", 50000},
		{"12.5%", 12.5},
		{">100000", 100000},
		{" >2500.5* ", 2500.5},
	} {
		got, err := parseCell(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseCell(%q) = %v, %v, want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := parseCell("—"); err == nil {
		t.Error("dash cell parsed without error")
	}
}

func TestChartRenderContainsStructure(t *testing.T) {
	c := ChartFromTable(sweepTable(), 0, 1, 2)
	c.YLabel = "delay"
	c.LogY = true
	out := c.Render(60, 12)
	for _, want := range []string{"E5", "legend:", "FCFS", "MRU", "rate", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	// Axis bounds must appear (x from 100 to 900).
	if !strings.Contains(out, "100") || !strings.Contains(out, "900") {
		t.Fatalf("x-axis bounds missing:\n%s", out)
	}
}

func TestChartRenderEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if out := c.Render(40, 8); !strings.Contains(out, "no plottable points") {
		t.Fatalf("empty chart rendering: %q", out)
	}
}

func TestChartLogYSkipsNonPositive(t *testing.T) {
	c := &Chart{
		Title: "log",
		LogY:  true,
		Series: []Series{{
			Name: "s", X: []float64{1, 2, 3}, Y: []float64{0, 10, 100},
		}},
	}
	out := c.Render(40, 8)
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("log chart produced non-finite labels:\n%s", out)
	}
}

func TestChartDegenerateSinglePoint(t *testing.T) {
	c := &Chart{
		Title:  "point",
		Series: []Series{{Name: "s", X: []float64{5}, Y: []float64{7}}},
	}
	out := c.Render(40, 8)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestDefaultChartCoverage(t *testing.T) {
	// Every ID in chartSpecs must reference columns that exist in the
	// experiment's real (quick) output — guards against column drift.
	cfg := Config{Quick: true, Seed: 5}
	for id, spec := range chartSpecs {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("chart spec for unknown experiment %s", id)
		}
		tbl := e.Run(cfg)
		maxCol := spec.x
		for _, y := range spec.ys {
			if y > maxCol {
				maxCol = y
			}
		}
		if maxCol >= len(tbl.Columns) {
			t.Fatalf("%s chart spec references column %d of %d", id, maxCol, len(tbl.Columns))
		}
		c := DefaultChart(tbl)
		if c == nil || len(c.Series) == 0 {
			t.Fatalf("%s produced no chart series", id)
		}
	}
	if DefaultChart(&Table{ID: "T1"}) != nil {
		t.Fatal("non-sweep table produced a chart")
	}
}
