package exp

import (
	"strconv"
	"strings"
	"testing"
)

// TestE35SearchedPolicyWins pins this PR's headline acceptance
// criterion: at the quick budget the searched AffinitySteal
// configuration strictly beats all five paper policies on mean delay
// at at least one Zipf point, and the reported margin agrees with the
// two delay columns it summarizes. A golden refresh that silently
// loses every "yes" must fail here, not slide through as a formatting
// diff.
func TestE35SearchedPolicyWins(t *testing.T) {
	tb := FigE35(Config{Quick: true, Seed: 1})
	if len(tb.Rows) != len(e35Skews) {
		t.Fatalf("E35 has %d rows, want %d", len(tb.Rows), len(e35Skews))
	}
	wins := 0
	for _, row := range tb.Rows {
		paper, err1 := strconv.ParseFloat(row[2], 64)
		steal, err2 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("s=%s: unparseable delay cells %q / %q", row[0], row[2], row[4])
		}
		margin := parsePercent(t, strings.TrimPrefix(row[5], "+"))
		wantMargin := (paper - steal) / paper
		if diff := margin - wantMargin; diff > 0.0005 || diff < -0.0005 {
			t.Errorf("s=%s: margin cell %.4f disagrees with delays (%g vs %g → %.4f)",
				row[0], margin, paper, steal, wantMargin)
		}
		switch row[6] {
		case "yes":
			wins++
			if steal >= paper {
				t.Errorf("s=%s: row says yes but steal %.1f ≥ best paper %.1f", row[0], steal, paper)
			}
		case "no":
		default:
			t.Errorf("s=%s: beats-all cell %q is neither yes nor no", row[0], row[6])
		}
	}
	if wins == 0 {
		t.Error("searched policy beats all five paper policies at zero Zipf points — the acceptance win is gone")
	}
}

// TestE35Deterministic: the same Config yields the identical table —
// rows, searched parameters and all. This is the property the
// -parallel 1 vs 8 CI diff enforces end to end; pinning it here keeps
// the failure local when it breaks.
func TestE35Deterministic(t *testing.T) {
	a := FigE35(Config{Quick: true, Seed: 1})
	b := FigE35(Config{Quick: true, Seed: 1})
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Errorf("row %d col %d differs across runs: %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

// TestE36CounterfactualTable pins E36's contract with the replay
// engine: the zero-perturbation note reports bit-identity (the licence
// for attributing divergence to the substitution), predicted gains are
// positive and descending (TopK's ordering), and every realized-total
// and agree cell is well-formed.
func TestE36CounterfactualTable(t *testing.T) {
	tb := FigE36(Config{Quick: true, Seed: 1})
	if len(tb.Rows) == 0 {
		t.Fatal("E36 produced no counterfactual rows")
	}
	foundIdentity := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "bit-identical to factual: true") {
			foundIdentity = true
		}
		if strings.Contains(n, "bit-identical to factual: false") {
			t.Error("zero-perturbation replay diverged from the factual run")
		}
	}
	if !foundIdentity {
		t.Error("E36 notes never assert the zero-perturbation identity")
	}
	prev := -1.0
	for i, row := range tb.Rows {
		pred, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("row %d: unparseable predicted gain %q", i, row[3])
		}
		if pred <= 0 {
			t.Errorf("row %d: predicted gain %g not positive", i, pred)
		}
		if prev >= 0 && pred > prev {
			t.Errorf("row %d: predicted gains not descending (%g after %g)", i, pred, prev)
		}
		prev = pred
		if _, err := strconv.ParseFloat(strings.TrimPrefix(row[4], "+"), 64); err != nil {
			t.Fatalf("row %d: unparseable realized total %q", i, row[4])
		}
		if row[5] != "yes" && row[5] != "no" {
			t.Errorf("row %d: agree cell %q is neither yes nor no", i, row[5])
		}
	}
}
