// Package exp defines the reproduction's experiments: one per table or
// figure of the paper's evaluation (see DESIGN.md §4 for the mapping
// from experiment IDs to paper results). Each experiment produces a
// Table that cmd/paperfigs renders as text and CSV, and bench_test.go
// exposes as testing.B benchmarks.
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"affinity/internal/sim"
)

// Config controls experiment execution.
type Config struct {
	// Quick trades statistical tightness for speed (fewer measured
	// packets, sparser sweeps) — used by tests and -quick runs.
	Quick bool
	// Seed is the base random seed; every simulation derives its own
	// streams from it.
	Seed int64
	// Pool, when non-nil, is the shared sweep-point worker pool every
	// experiment's Grid submits to. Sharing one pool across experiments
	// parallelizes the whole suite at sweep-point granularity and lets
	// configurations repeated across experiments simulate once. When
	// nil, each Grid falls back to its own serial single-worker pool.
	Pool *sim.Pool
	// Reporter, when non-nil, receives per-experiment and per-point
	// progress.
	Reporter *Reporter
}

// packets returns the measured-packet budget for one simulation.
func (c Config) packets() int {
	if c.Quick {
		return 3000
	}
	return 12000
}

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are formatted with %v unless
// already strings.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Note appends a free-form annotation printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint writes an aligned text rendering.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	total := len(t.Columns) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// WriteCSV writes the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Experiment is a runnable reproduction of one paper table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) *Table
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Platform and model parameters", TableT1},
		{"T2", "Calibrated packet times under controlled cache states", TableT2},
		{"E1", "Footprint function u(R, L)", FigE1},
		{"E2", "Displacement fractions F1(x), F2(x)", FigE2},
		{"E3", "Packet execution time T(x)", FigE3},
		{"E4", "Model validation against the cache simulator", FigE4},
		{"E5", "Locking: delay vs arrival rate, FCFS vs MRU (Fig 6 scenario)", FigE5},
		{"E6", "Locking: delay vs rate, MRU vs ThreadPools vs WiredStreams (Fig 7 scenario)", FigE6},
		{"E7", "IPS: delay vs rate, Wired vs MRU vs Random", FigE7},
		{"E8", "Locking: % delay reduction from affinity, data-touch sweep (Fig 10 scenario)", FigE8},
		{"E9", "IPS: % delay reduction from affinity, data-touch sweep (Fig 11 scenario)", FigE9},
		{"E10", "Locking vs IPS: latency and throughput capacity", FigE10},
		{"E11", "Concurrent-stream capacity under a delay budget", FigE11},
		{"E12", "Intra-stream scalability: single-stream throughput", FigE12},
		{"E13", "Robustness to intra-stream burstiness", FigE13},
		{"E14", "IPS: varying the number of independent stacks (extension iii)", FigE14},
		{"E15", "Packet-train arrivals (extension ii)", FigE15},
		{"E16", "Data-touching overhead vs affinity benefit", FigE16},
		{"E17", "Send-side UDP/IP/FDDI processing (extension i)", FigE17},
		{"E18", "Hybrid Locking/IPS paradigm under bursts (TR proposal)", FigE18},
		{"E19", "Design-choice ablations (lookahead, code sharing, lock fraction)", FigE19},
		{"E20", "DES validation against queueing theory", FigE20},
		{"E21", "TCP/IP receive processing (future-work problem)", FigE21},
		{"E22", "Heterogeneous stream rates under every policy", FigE22},
		{"E23", "Seed robustness of the headline conclusions", FigE23},
		{"E24", "Platform sensitivity: reload transient vs benefit (Vaswani–Zahorjan reconciliation)", FigE24},
		{"E25", "Data-touching rate validation (32 bytes/µs checksum)", FigE25},
		{"E26", "Policy resilience under a single-processor failure", FigE26},
		{"E27", "Bounded queues under overload: drop/goodput vs queue bound", FigE27},
		{"E28", "Recovery-transient length after processor failback", FigE28},
		{"E29", "Live-backend cross-validation: DES vs goroutine policy orderings", FigE29},
		{"E30", "Per-stream packet reordering: migrating policies vs Wired-Streams", FigE30},
		{"E31", "Zipf stream-popularity skew vs affinity benefit", FigE31},
		{"E32", "Scheduling policies on one replayed ON/OFF burst trace", FigE32},
		{"E33", "NUMA topology sweep: MRU vs Wired-Streams vs cross-socket transient cost", FigE33},
		{"E34", "Hash dispatch (RSS, Flow Director) vs MRU on bursty Zipf traffic", FigE34},
		{"E35", "Searched affinity-steal policy vs the five paper policies on Zipf burst traffic", FigE35},
		{"E36", "Counterfactual regret: one-step prediction vs ground-truth re-simulation", FigE36},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Markdown renders the table as GitHub-flavored markdown (used by
// paperfigs -md to assemble a results report).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	b.WriteString("|")
	for _, c := range t.Columns {
		b.WriteString(" " + esc(c) + " |")
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for _, cell := range row {
			b.WriteString(" " + esc(cell) + " |")
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}
