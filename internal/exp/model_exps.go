package exp

import (
	"fmt"

	"affinity/internal/cachesim"
	"affinity/internal/calib"
	"affinity/internal/core"
)

// TableT1 reproduces the paper's platform/model parameter table: the SGI
// Challenge XL geometry, the reference-rate assumptions, and the
// Singh–Stone–Thiebaut workload constants used verbatim from [22].
func TableT1(Config) *Table {
	m := core.NewModel()
	t := &Table{
		ID:      "T1",
		Title:   "Platform and model parameters",
		Columns: []string{"parameter", "value"},
	}
	p := m.Platform
	t.AddRow("processors", p.Processors)
	t.AddRow("clock (MHz)", p.ClockMHz)
	t.AddRow("cycles per memory reference (m)", p.CyclesPerRef)
	t.AddRow("references per µs", p.RefsPerMicrosecond())
	cache := func(name string, c core.CacheConfig) {
		t.AddRow(name, fmt.Sprintf("%d KB, %d B lines, %d-way, %d sets",
			c.SizeBytes>>10, c.LineBytes, c.Assoc, c.Sets()))
	}
	cache("L1 instruction cache", p.L1I)
	cache("L1 data cache", p.L1D)
	cache("L2 unified cache", p.L2)
	w := m.Workload
	t.AddRow("SST workload W", w.W)
	t.AddRow("SST workload a", w.A)
	t.AddRow("SST workload b", w.B)
	t.AddRow("SST workload log d", w.LogD)
	c := m.Calib
	t.AddRow("t_warm (µs)", c.TWarm)
	t.AddRow("t_L1cold (µs)", c.TL1Cold)
	t.AddRow("t_cold (µs)", c.TCold)
	t.AddRow("max affinity reduction", fmt.Sprintf("%.1f%%", 100*c.MaxReduction()))
	t.Note("t_cold = 284.3 µs is the paper's measured value; t_warm and t_L1cold are cache-simulator calibrations (T2).")
	return t
}

// TableT2 reruns the calibration measurements (the paper's Section 4
// experiments) on the cache simulator.
func TableT2(Config) *Table {
	r := calib.Measure(core.SGIChallengeXL(), cachesim.DefaultTiming())
	t := &Table{
		ID:      "T2",
		Title:   "Packet execution time under controlled cache states",
		Columns: []string{"cache state", "simulated (µs)", "normalized (µs)"},
	}
	t.AddRow("warm (both levels)", r.Raw.TWarm, r.Normalized.TWarm)
	t.AddRow("L1 cold, L2 warm", r.Raw.TL1Cold, r.Normalized.TL1Cold)
	t.AddRow("cold (both levels)", r.Raw.TCold, r.Normalized.TCold)
	t.Note("normalization anchors the cold time on the paper's measured %.1f µs (scale %.4f)", calib.PaperTCold, r.Scale)
	t.Note("trace: %d refs/packet, %d-byte footprint, cold misses: %d L1 / %d L2",
		r.RefsPerPacket, r.FootprintBytes, r.L1MissesCold, r.L2MissesCold)
	return t
}

// FigE1 sweeps the footprint function u(R, L), the model's first
// ingredient.
func FigE1(Config) *Table {
	w := core.MVSWorkload()
	t := &Table{
		ID:      "E1",
		Title:   "Unique lines touched by R references: u(R, L)",
		Columns: []string{"references R", "u(R, 16B)", "u(R, 128B)", "bytes @16B"},
	}
	for _, r := range []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8} {
		u16 := w.UniqueLines(r, 16)
		u128 := w.UniqueLines(r, 128)
		t.AddRow(fmt.Sprintf("%.0e", r), u16, u128, fmt.Sprintf("%.0f KB", u16*16/1024))
	}
	t.Note("power-law growth (b = %.3f) with the spatial/temporal interaction damping large R", w.B)
	return t
}

// FigE2 sweeps the displacement fractions — the paper's observation that
// "the protocol footprint is flushed much more slowly from L2 than from
// L1" is the crossing of these two curves' scales.
func FigE2(Config) *Table {
	m := core.NewModel()
	t := &Table{
		ID:      "E2",
		Title:   "Fraction of footprint displaced after x µs of full-speed intervening execution",
		Columns: []string{"x (µs)", "F1(x)", "F2(x)"},
	}
	rate := m.Platform.RefsPerMicrosecond()
	for _, x := range []float64{0, 50, 100, 200, 500, 1000, 2000, 5000, 1e4, 2e4, 5e4, 1e5, 1e6} {
		refs := x * rate
		t.AddRow(x, fmt.Sprintf("%.4f", m.F1(refs)), fmt.Sprintf("%.4f", m.F2(refs)))
	}
	t.Note("L1 half-life %.0f µs, L2 half-life %.0f µs — the footprint is flushed far more slowly from L2",
		m.FlushHalfLife(1), m.FlushHalfLife(2))
	return t
}

// FigE3 sweeps the execution-time model T(x).
func FigE3(Config) *Table {
	m := core.NewModel()
	t := &Table{
		ID:      "E3",
		Title:   "Packet execution time after x µs of intervening execution",
		Columns: []string{"x (µs)", "T(x) (µs)", "fraction of reload transient"},
	}
	rate := m.Platform.RefsPerMicrosecond()
	span := m.Calib.TCold - m.Calib.TWarm
	for _, x := range []float64{0, 100, 300, 1000, 3000, 1e4, 3e4, 1e5, 3e5, 1e6, 1e7} {
		tx := m.ExecTime(x * rate)
		t.AddRow(x, tx, fmt.Sprintf("%.3f", (tx-m.Calib.TWarm)/span))
	}
	t.Note("T(0) = t_warm = %.1f µs; T(∞) = t_cold = %.1f µs", m.Calib.TWarm, m.Calib.TCold)
	return t
}

// FigE4 validates the analytic displacement curves against the
// trace-driven cache simulator (the hardware substitute).
func FigE4(c Config) *Table {
	m := core.NewModel()
	xs := []float64{0, 100, 500, 1000, 2000, 5000, 10000, 50000}
	if c.Quick {
		xs = []float64{0, 500, 2000, 10000}
	}
	pts := calib.ValidateDisplacement(m, cachesim.DefaultTiming(), xs, c.Seed)
	t := &Table{
		ID:      "E4",
		Title:   "Analytic model vs cache simulator: displaced fractions and reload time",
		Columns: []string{"x (µs)", "sim F1", "model F1", "sim F2", "model F2", "sim reload (µs)", "model T(x) (µs)"},
	}
	for _, p := range pts {
		t.AddRow(p.Micros,
			fmt.Sprintf("%.3f", p.SimF1), fmt.Sprintf("%.3f", p.ModelF1),
			fmt.Sprintf("%.3f", p.SimF2), fmt.Sprintf("%.3f", p.ModelF2),
			p.ReloadSim, p.ReloadPred)
	}
	t.Note("simulated reload is in raw simulator microseconds; the model column is on the normalized (t_cold = 284.3) scale")
	return t
}
