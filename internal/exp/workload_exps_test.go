package exp

import (
	"strconv"
	"strings"
	"testing"
)

// parsePercent parses a "%-suffixed table cell back to a fraction.
func parsePercent(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("unparseable percentage cell %q", cell)
	}
	return v / 100
}

// TestE31SkewMonotone pins E31's load-bearing claim: the MRU-over-FCFS
// delay advantage is positive at every Zipf exponent and monotone in
// the exponent — it shrinks as skew concentrates the aggregate on a
// hot stream, because dominance hands FCFS incidental affinity. A sign
// flip or a non-monotone sweep means the workload generator's Zipf
// split or the policies' affinity accounting broke.
func TestE31SkewMonotone(t *testing.T) {
	tb := FigE31(Config{Quick: true, Seed: 1})
	if len(tb.Rows) != len(e31Skews) {
		t.Fatalf("E31 has %d rows, want %d", len(tb.Rows), len(e31Skews))
	}
	prev := 1.0
	for _, row := range tb.Rows {
		adv := parsePercent(t, row[4])
		if adv <= 0 {
			t.Errorf("s=%s: MRU advantage %.4f not positive", row[0], adv)
		}
		if adv > prev {
			t.Errorf("s=%s: MRU advantage %.4f rose above %.4f — sweep is not monotone in skew", row[0], adv, prev)
		}
		prev = adv
	}
	first := parsePercent(t, tb.Rows[0][4])
	last := parsePercent(t, tb.Rows[len(tb.Rows)-1][4])
	if first-last < 0.005 {
		t.Errorf("uniform-to-skewed advantage contrast %.4f < 0.005 — sweep no longer resolves the effect", first-last)
	}
}

// TestE32ReplayContrast pins E32's construction: every policy row
// replays the identical arrival trace, so FCFS and MRU must differ on
// delay (the contrast is policy-only by construction, and losing it
// means replay stopped feeding the policies the bursty history), and
// Wired-Streams must migrate exactly zero packets.
func TestE32ReplayContrast(t *testing.T) {
	tb := FigE32(Config{Quick: true, Seed: 1})
	if len(tb.Rows) != 4 {
		t.Fatalf("E32 has %d rows, want 4", len(tb.Rows))
	}
	delays := map[string]float64{}
	for _, row := range tb.Rows {
		d, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "*"), 64)
		if err != nil {
			t.Fatalf("%s: unparseable delay cell %q", row[0], row[1])
		}
		delays[row[0]] = d
		if row[0] == "WiredStreams" && row[4] != "0" {
			t.Errorf("WiredStreams migrated %s packets on replay, must be structurally zero", row[4])
		}
	}
	if delays["MRU"] >= delays["FCFS"] {
		t.Errorf("MRU delay %.1f not better than FCFS %.1f on the shared burst trace", delays["MRU"], delays["FCFS"])
	}
}
