package exp

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// The rendered tables must be identical at any worker count: the pool
// only changes when simulations execute, never which runs occur or how
// their results are assembled. E5 (plain sweep), E10 (capacity probes via
// AddExact), E16 (nested reduction sweeps) and E23 (per-seed replication
// pairs) cover every declaration pattern the suite uses.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	ids := []string{"E5", "E10", "E16", "E23"}
	render := func(workers int) map[string]string {
		cfg := Config{Quick: true, Seed: 1, Pool: sim.NewPool(workers)}
		out := map[string]string{}
		for _, id := range ids {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			out[id] = e.Run(cfg).String()
		}
		return out
	}
	serial := render(1)
	parallel := render(8)
	for _, id := range ids {
		if serial[id] != parallel[id] {
			t.Errorf("%s: table differs between workers=1 and workers=8:\n--- serial ---\n%s--- parallel ---\n%s",
				id, serial[id], parallel[id])
		}
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("table sets differ between worker counts")
	}
}

// Two grids sharing one pool — as all experiments do under paperfigs —
// must simulate a configuration they both declare only once.
func TestGridSharedPoolDedupesAcrossExperiments(t *testing.T) {
	pool := sim.NewPool(2)
	cfg := Config{Quick: true, Seed: 1, Pool: pool}
	p := sim.Params{
		Paradigm: sim.Locking, Policy: sched.MRU, Streams: 4,
		Arrival: traffic.Poisson{PacketsPerSec: 800},
	}
	ga := cfg.Grid("A")
	pa := ga.Add("shared point", p)
	ga.Run()
	gb := cfg.Grid("B")
	pb := gb.Add("shared point", p)
	gb.Run()
	if hits, misses := pool.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if !reflect.DeepEqual(pa.Results(), pb.Results()) {
		t.Error("shared point returned different results from the two grids")
	}
}

// Reading a declared point before its grid has run is a harness bug and
// must fail loudly, as must re-running or late-declaring on a grid.
func TestGridMisusePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	cfg := Config{Quick: true, Seed: 1}
	p := sim.Params{
		Paradigm: sim.Locking, Policy: sched.MRU, Streams: 1,
		Arrival: traffic.Poisson{PacketsPerSec: 100},
	}
	expectPanic("early read", func() {
		g := cfg.Grid("X")
		g.Add("pt", p).Results()
	})
	g := cfg.Grid("Y")
	g.Add("pt", p)
	g.Run()
	expectPanic("double run", g.Run)
	expectPanic("late declare", func() { g.Add("late", p) })
}

// The per-point progress reporter must account every declared point
// exactly once, regardless of worker count.
func TestGridReportsEveryPoint(t *testing.T) {
	var buf bytes.Buffer // reporter writes are serialized by its mutex
	rep := NewReporter(&buf)
	cfg := Config{Quick: true, Seed: 1, Pool: sim.NewPool(4), Reporter: rep}
	rep.Start("Z", "reporter coverage")
	g := cfg.Grid("Z")
	const n = 3
	for i := 0; i < n; i++ {
		g.Add(fmt.Sprintf("pt%d", i), sim.Params{
			Paradigm: sim.Locking, Policy: sched.MRU, Streams: 1,
			Arrival: traffic.Poisson{PacketsPerSec: 100 * float64(i+1)},
		})
	}
	g.Run()
	rep.Done("Z")
	out := buf.String()
	if got := strings.Count(out, "Z    point  "); got != n {
		t.Errorf("reporter logged %d point lines, want %d\n%s", got, n, out)
	}
	for i := 1; i <= n; i++ {
		if strings.Count(out, fmt.Sprintf("point  %d/%d", i, n)) != 1 {
			t.Errorf("missing point %d/%d line\n%s", i, n, out)
		}
	}
}
