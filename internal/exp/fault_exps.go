package exp

import (
	"fmt"
	"math"

	"affinity/internal/des"
	"affinity/internal/faults"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// Fault and graceful-degradation experiments (E26–E28): the paper
// evaluates affinity policies only on an always-healthy machine with
// unbounded queues; these ask its question under stress — which policy
// degrades most gracefully when a processor dies or queues overflow?

// e26Window is the single-processor outage used by E26 and E28:
// processor 0 fails at 250 ms and recovers at 400 ms, inside the
// measured region (warmup ends at 200 ms) for quick and full budgets.
const (
	e26Down = 250 * des.Millisecond
	e26Up   = 400 * des.Millisecond
)

// E26Plan returns the outage plan (exported for the live backend's
// differential harness, which replays it on both backends).
func E26Plan() *faults.Plan {
	return (&faults.Plan{}).Down(e26Down, 0).Up(e26Up, 0)
}

// FigE26 compares every policy's resilience to a single-processor
// failure window: the same load healthy and degraded, reporting delay
// inflation, forced migrations, and goodput through the outage.
// Wired-Streams and IPS-Wired re-home their wired entities off the dead
// processor (and pay a cold-cache failback), MRU forgets dead
// affinities, FCFS has no affinity state to lose — so the no-affinity
// baselines bound how much of the degradation is affinity-specific.
func FigE26(c Config) *Table {
	t := &Table{
		ID:      "E26",
		Title:   "Policy resilience: processor 0 down 250–400 ms (8 streams, 2500 pkt/s/stream)",
		Columns: []string{"paradigm/policy", "healthy delay", "faulted delay", "inflation", "migrations", "goodput (pkt/s)"},
	}
	g := c.Grid("E26")
	type row struct {
		name             string
		healthy, faulted *Point
	}
	var rows []row
	for _, pc := range []struct {
		paradigm sim.Paradigm
		policy   sched.Kind
	}{
		{sim.Locking, sched.FCFS},
		{sim.Locking, sched.MRU},
		{sim.Locking, sched.ThreadPools},
		{sim.Locking, sched.WiredStreams},
		{sim.IPS, sched.IPSWired},
		{sim.IPS, sched.IPSMRU},
		{sim.IPS, sched.IPSRandom},
	} {
		base := sim.Params{
			Paradigm: pc.paradigm, Policy: pc.policy, Streams: 8,
			Arrival: traffic.Poisson{PacketsPerSec: 2500},
		}
		name := fmt.Sprintf("%v/%v", pc.paradigm, pc.policy)
		healthy := g.Add(name+" healthy", base)
		base.Faults = E26Plan()
		faulted := g.Add(name+" faulted", base)
		rows = append(rows, row{name, healthy, faulted})
	}
	g.Run()
	for _, r := range rows {
		h, f := r.healthy.Results(), r.faulted.Results()
		t.AddRow(r.name, fmtDelay(h), fmtDelay(f),
			fmt.Sprintf("%.2fx", f.MeanDelay/h.MeanDelay),
			f.Migrations, fmt.Sprintf("%.0f", f.GoodputPPS))
	}
	t.Note("faulted runs lose processor 0 for 150 ms mid-measurement; inflation is faulted/healthy mean delay")
	t.Note("migrations under Wired-Streams/IPS-Wired are the re-homing at work — a fault-free wired run has none")
	return t
}

// FigE27 sweeps the per-queue capacity bound under sustained overload:
// bounded queues trade unbounded delay for explicit drops, and the
// sweep shows where each paradigm's goodput peaks. The ∞ row is the
// paper's original unbounded model, where nothing drops and the
// backlog (and delay) grows with the horizon instead.
func FigE27(c Config) *Table {
	t := &Table{
		ID:      "E27",
		Title:   "Bounded queues under overload: drops and goodput vs queue bound (6000 pkt/s/stream)",
		Columns: []string{"queue bound", "MRU drop %", "MRU goodput", "IPS-Wired drop %", "IPS-Wired goodput"},
	}
	depths := []int{1, 2, 4, 8, 16, 32, 0}
	if c.Quick {
		depths = []int{1, 8, 32, 0}
	}
	g := c.Grid("E27")
	type row struct {
		depth    int
		mru, ips *Point
	}
	var rows []row
	for _, d := range depths {
		arr := traffic.Poisson{PacketsPerSec: 6000}
		mru := g.Add(fmt.Sprintf("MRU bound=%d", d), sim.Params{
			Paradigm: sim.Locking, Policy: sched.MRU, Streams: 8,
			Arrival: arr, MaxQueueDepth: d,
		})
		ips := g.Add(fmt.Sprintf("IPS-Wired bound=%d", d), sim.Params{
			Paradigm: sim.IPS, Policy: sched.IPSWired, Streams: 8,
			Arrival: arr, MaxQueueDepth: d,
		})
		rows = append(rows, row{d, mru, ips})
	}
	g.Run()
	for _, r := range rows {
		bound := "∞"
		if r.depth > 0 {
			bound = fmt.Sprintf("%d", r.depth)
		}
		mru, ips := r.mru.Results(), r.ips.Results()
		t.AddRow(bound,
			fmt.Sprintf("%.1f%%", 100*mru.DropFraction), fmt.Sprintf("%.0f", mru.GoodputPPS),
			fmt.Sprintf("%.1f%%", 100*ips.DropFraction), fmt.Sprintf("%.0f", ips.GoodputPPS))
	}
	t.Note("offered load (48000 pkt/s aggregate) exceeds capacity; the Locking bound caps the shared queue, the IPS bound caps each stack queue")
	t.Note("∞ reproduces the unbounded model: zero drops, horizon-limited backlog")
	return t
}

// e28Policies are the policies whose failback transient E28 measures:
// MRU re-learns affinity lazily, while the wired policies force their
// entities straight back onto the recovered (cold) processor.
var e28Policies = []struct {
	name     string
	paradigm sim.Paradigm
	policy   sched.Kind
}{
	{"Locking/MRU", sim.Locking, sched.MRU},
	{"Locking/Wired-Streams", sim.Locking, sched.WiredStreams},
	{"IPS/IPS-Wired", sim.IPS, sched.IPSWired},
}

// FigE28 measures the recovery transient after failback: processor 0
// returns at 400 ms with a cold cache, and the per-decision trace shows
// how long its charged execution times stay inflated before the reload
// transients die out. The baseline is the processor's pre-fault mean;
// recovery is the first 8-decision window back within 10 % of it.
func FigE28(c Config) *Table {
	t := &Table{
		ID:      "E28",
		Title:   "Recovery transient after failback: processor 0 cold-restarts at 400 ms",
		Columns: []string{"paradigm/policy", "pre-fault exec (µs)", "first window back (µs)", "transient (µs)", "cold starts on proc 0"},
	}
	g := c.Grid("E28")
	points := make([]*Point, len(e28Policies))
	for i, pc := range e28Policies {
		p := sim.Params{
			Paradigm: pc.paradigm, Policy: pc.policy, Streams: 8,
			Arrival: traffic.Poisson{PacketsPerSec: 1000},
			Faults:  E26Plan(),
			TraceN:  20000, // covers every service decision at both budgets
		}
		p.Seed = c.Seed
		p.MeasuredPackets = c.packets()
		points[i] = g.AddExact(pc.name, p)
	}
	g.Run()
	const window = 8
	for i, pc := range e28Policies {
		res := points[i].Results()
		baseline, ok := preFaultExec(res.Trace)
		if !ok {
			t.AddRow(pc.name, "—", "—", "—", 0)
			continue
		}
		first, transient, cold, recovered := failbackTransient(res.Trace, baseline, window)
		cell := fmt.Sprintf("%.0f", transient)
		if !recovered {
			cell = fmt.Sprintf(">%.0f", transient) // still inflated at end of trace
		}
		t.AddRow(pc.name, fmt.Sprintf("%.1f", baseline),
			fmt.Sprintf("%.1f", first), cell, cold)
	}
	t.Note("transient: time from recovery (400 ms) until an %d-decision window of proc-0 exec times returns within 10%% of the pre-fault mean", window)
	t.Note("cold starts count proc-0 decisions after failback with no cached footprint (XRefs = +Inf) — the entities paying the full reload transient")
	return t
}

// preFaultExec returns the mean charged execution time of processor-0
// decisions in the steady window before the outage (150–250 ms).
func preFaultExec(trace []sim.TraceEntry) (float64, bool) {
	var sum float64
	n := 0
	for _, e := range trace {
		if e.Processor == 0 && e.Start >= 150*des.Millisecond && e.Start < e26Down {
			sum += e.Exec
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// failbackTransient scans processor-0 decisions after the recovery at
// e26Up: it returns the first window-mean exec time, the time from
// recovery until a window-mean returns within 10 % of baseline (or the
// last decision's offset when it never does, recovered = false), and
// the number of cold starts paid on the recovered processor.
func failbackTransient(trace []sim.TraceEntry, baseline float64, window int) (first, transient float64, cold int, recovered bool) {
	var execs []float64
	var starts []des.Time
	for _, e := range trace {
		if e.Processor != 0 || e.Start < e26Up {
			continue
		}
		execs = append(execs, e.Exec)
		starts = append(starts, e.Start)
		if math.IsInf(e.XRefs, 1) {
			cold++
		}
	}
	if len(execs) == 0 {
		return 0, 0, 0, false
	}
	mean := func(lo, hi int) float64 {
		s := 0.0
		for _, x := range execs[lo:hi] {
			s += x
		}
		return s / float64(hi-lo)
	}
	if len(execs) < window {
		return mean(0, len(execs)), float64(starts[len(starts)-1] - e26Up), cold, false
	}
	first = mean(0, window)
	for i := 0; i+window <= len(execs); i++ {
		if mean(i, i+window) <= 1.1*baseline {
			return first, float64(starts[i+window-1] - e26Up), cold, true
		}
	}
	return first, float64(starts[len(starts)-1] - e26Up), cold, false
}
