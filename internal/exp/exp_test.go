package exp

import (
	"strings"
	"testing"
)

func TestRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Fatalf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID resolved")
	}
	if e, ok := ByID("e8"); !ok || e.ID != "E8" {
		t.Fatal("lookup not case-insensitive")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "X",
		Title:   "demo",
		Columns: []string{"a", "b"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", 3.0)
	tbl.Note("hello %d", 7)
	out := tbl.String()
	for _, want := range []string{"X — demo", "a", "b", "2.5", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	// Floats are trimmed: 3.0 renders as "3".
	if strings.Contains(out, "3.0") {
		t.Fatalf("float not trimmed:\n%s", out)
	}
	var csv strings.Builder
	if err := tbl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "a,b\n1,2.5\n") {
		t.Fatalf("csv = %q", csv.String())
	}
}

// Every experiment must produce a structurally sound table in quick mode.
func TestAllExperimentsQuickMode(t *testing.T) {
	cfg := Config{Quick: true, Seed: 7}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl := e.Run(cfg)
			if tbl.ID != e.ID {
				t.Fatalf("table ID %q != experiment ID %q", tbl.ID, e.ID)
			}
			if len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("ragged row %v (columns %v)", row, tbl.Columns)
				}
				for i, cell := range row {
					if cell == "" {
						t.Fatalf("empty cell %d in row %v", i, row)
					}
				}
			}
		})
	}
}

func TestConfigPackets(t *testing.T) {
	if (Config{Quick: true}).packets() >= (Config{}).packets() {
		t.Fatal("quick mode must use fewer packets")
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "b|c"}}
	tbl.AddRow("v|1", 2)
	tbl.Note("a note")
	md := tbl.Markdown()
	for _, want := range []string{"### X — demo", "| a | b\\|c |", "| v\\|1 | 2 |", "> a note"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
