package exp

import (
	"fmt"
	"sync"

	"affinity/internal/sim"
)

// Grid is the sweep-point execution engine: each experiment declares its
// full set of simulation runs up front as Points, then Grid.Run executes
// them all through a shared sim.Pool — concurrently across sweep points
// AND across experiments when cmd/paperfigs hands every experiment the
// same pool — before the experiment renders its table from the completed
// Points. Declaration order is preserved and every run is deterministic
// given its Params, so the rendered tables are byte-identical at any
// worker count.
type Grid struct {
	id     string
	cfg    Config
	pool   *sim.Pool
	points []*Point
	ran    bool
}

// Point is one declared simulation run: a label for progress reporting
// and the full parameter set. Its Results become available after the
// owning Grid has run.
type Point struct {
	Label  string
	Params sim.Params

	res  sim.Results
	done bool
}

// Grid returns a sweep-point grid for the experiment with the given ID,
// backed by the Config's shared pool (or a serial single-worker pool
// when none is configured — tests and library callers).
func (c Config) Grid(id string) *Grid {
	pool := c.Pool
	if pool == nil {
		pool = sim.NewPool(1)
	}
	return &Grid{id: id, cfg: c, pool: pool}
}

// Add declares one run with the experiment defaults applied — the base
// seed and the quick/full measured-packet budget — and returns its
// handle. The label names the point in progress output.
func (g *Grid) Add(label string, p sim.Params) *Point {
	p.Seed = g.cfg.Seed
	p.MeasuredPackets = g.cfg.packets()
	return g.AddExact(label, p)
}

// AddExact declares one run with the Params used verbatim — for points
// that override the suite defaults (capacity probes, replication seeds,
// inflated sample budgets).
func (g *Grid) AddExact(label string, p sim.Params) *Point {
	if g.ran {
		panic(fmt.Sprintf("exp: %s declared a point after Grid.Run", g.id))
	}
	pt := &Point{Label: label, Params: p}
	g.points = append(g.points, pt)
	return pt
}

// Run executes every declared point. Points are submitted to the shared
// pool concurrently; the pool bounds how many simulate at once and
// serves duplicate configurations from its cache. Run returns when all
// of this grid's points are complete.
func (g *Grid) Run() {
	if g.ran {
		panic(fmt.Sprintf("exp: %s ran its grid twice", g.id))
	}
	g.ran = true
	rep := g.cfg.Reporter
	if rep != nil {
		rep.Points(g.id, len(g.points))
	}
	var wg sync.WaitGroup
	for _, pt := range g.points {
		wg.Add(1)
		go func(pt *Point) {
			defer wg.Done()
			pt.res = g.pool.Run(pt.Params)
			pt.done = true
			if rep != nil {
				rep.PointDone(g.id, pt.Label)
			}
		}(pt)
	}
	wg.Wait()
}

// Results returns the point's metrics. It panics if the owning grid has
// not run — a declared-but-unexecuted point is a harness bug, not a
// recoverable condition.
func (p *Point) Results() sim.Results {
	if !p.done {
		panic(fmt.Sprintf("exp: Point %q read before its Grid ran", p.Label))
	}
	return p.res
}
