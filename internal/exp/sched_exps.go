package exp

import (
	"fmt"
	"math"

	"affinity/internal/des"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// fmtDelay renders a delay cell, flagging saturated operating points the
// way the paper's curves simply leave the region: the number is the
// (unbounded, horizon-limited) transient value.
func fmtDelay(r sim.Results) string {
	if r.Saturated {
		return fmt.Sprintf("%.0f*", r.MeanDelay)
	}
	return fmt.Sprintf("%.1f", r.MeanDelay)
}

// fmtP95 renders a 95th-percentile delay cell, marking values clamped at
// the delay histogram's upper bound as the lower bounds they are.
func fmtP95(r sim.Results) string {
	if r.P95Clamped {
		return fmt.Sprintf(">%.1f", r.P95Delay)
	}
	return fmt.Sprintf("%.1f", r.P95Delay)
}

func rates(c Config, full []float64) []float64 {
	if !c.Quick {
		return full
	}
	// Keep the endpoints and middle for quick runs.
	return []float64{full[0], full[len(full)/2], full[len(full)-1]}
}

// FigE5 reproduces the Figure 6 scenario: mean packet delay vs per-stream
// arrival rate under Locking, FCFS vs MRU, 8 streams on 8 processors.
func FigE5(c Config) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Locking: mean delay (µs) vs per-stream rate — FCFS vs MRU, 8 streams",
		Columns: []string{"rate (pkt/s/stream)", "FCFS", "MRU", "MRU warm frac", "reduction"},
	}
	g := c.Grid("E5")
	type row struct {
		rate      float64
		fcfs, mru *Point
	}
	var rows []row
	for _, rate := range rates(c, []float64{250, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4300}) {
		base := sim.Params{
			Paradigm: sim.Locking, Policy: sched.FCFS, Streams: 8,
			Arrival: traffic.Poisson{PacketsPerSec: rate},
		}
		fcfs := g.Add(fmt.Sprintf("FCFS @%g", rate), base)
		base.Policy = sched.MRU
		mru := g.Add(fmt.Sprintf("MRU @%g", rate), base)
		rows = append(rows, row{rate, fcfs, mru})
	}
	g.Run()
	for _, r := range rows {
		fcfs, mru := r.fcfs.Results(), r.mru.Results()
		t.AddRow(r.rate, fmtDelay(fcfs), fmtDelay(mru),
			fmt.Sprintf("%.2f", mru.WarmFraction),
			fmt.Sprintf("%.1f%%", 100*(1-mru.MeanDelay/fcfs.MeanDelay)))
	}
	t.Note("* marks saturated operating points (offered load above sustainable throughput)")
	return t
}

// FigE6 reproduces the Figure 7 scenario: Locking with 16 streams under
// the richer affinity policies. The paper's conclusion — MRU wins except
// at high arrival rate, where Wired-Streams wins — appears as the
// crossover between the last two columns.
func FigE6(c Config) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Locking: mean delay (µs) vs per-stream rate — MRU vs ThreadPools vs WiredStreams, 16 streams",
		Columns: []string{"rate (pkt/s/stream)", "FCFS", "MRU", "ThreadPools", "WiredStreams"},
	}
	g := c.Grid("E6")
	policies := []sched.Kind{sched.FCFS, sched.MRU, sched.ThreadPools, sched.WiredStreams}
	type row struct {
		rate float64
		pts  []*Point
	}
	var rows []row
	for _, rate := range rates(c, []float64{250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2200, 2400}) {
		r := row{rate: rate}
		for _, pol := range policies {
			r.pts = append(r.pts, g.Add(fmt.Sprintf("%v @%g", pol, rate), sim.Params{
				Paradigm: sim.Locking, Policy: pol, Streams: 16,
				Arrival: traffic.Poisson{PacketsPerSec: rate},
			}))
		}
		rows = append(rows, r)
	}
	g.Run()
	for _, r := range rows {
		cells := []any{r.rate}
		for _, pt := range r.pts {
			cells = append(cells, fmtDelay(pt.Results()))
		}
		t.AddRow(cells...)
	}
	t.Note("paper: \"Under Locking, processors should be managed MRU — except under high arrival rate, when Wired-Streams scheduling performs better.\"")
	return t
}

// FigE7 is the IPS policy comparison with more stacks than processors
// (16 stacks on 8 processors), where the paper's crossover lives: MRU
// wins at low arrival rate, Wired at high rate.
func FigE7(c Config) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "IPS: mean delay (µs) vs per-stream rate — Wired vs MRU vs Random, 16 streams, 16 stacks",
		Columns: []string{"rate (pkt/s/stream)", "Wired", "MRU", "Random"},
	}
	g := c.Grid("E7")
	policies := []sched.Kind{sched.IPSWired, sched.IPSMRU, sched.IPSRandom}
	type row struct {
		rate float64
		pts  []*Point
	}
	var rows []row
	for _, rate := range rates(c, []float64{100, 250, 500, 1000, 1500, 2000, 2500}) {
		r := row{rate: rate}
		for _, pol := range policies {
			r.pts = append(r.pts, g.Add(fmt.Sprintf("%v @%g", pol, rate), sim.Params{
				Paradigm: sim.IPS, Policy: pol, Streams: 16, Stacks: 16,
				Arrival: traffic.Poisson{PacketsPerSec: rate},
			}))
		}
		rows = append(rows, r)
	}
	g.Run()
	for _, r := range rows {
		cells := []any{r.rate}
		for _, pt := range r.pts {
			cells = append(cells, fmtDelay(pt.Results()))
		}
		t.AddRow(cells...)
	}
	t.Note("paper: \"Under IPS, independent stacks should be wired to processors — except under low arrival rate, when MRU processor scheduling performs better.\"")
	return t
}

// reductionRow pairs one operating point's no-affinity baseline with the
// two affinity policies it is judged against.
type reductionRow struct {
	dataTouch, rate float64
	baseline, a, b  *Point
}

// declareReductionSweep declares the affinity delay-reduction comparison
// — the best affinity policy against the no-affinity baseline — across
// arrival rates, for one per-packet data-touch cost.
func declareReductionSweep(g *Grid, paradigm sim.Paradigm, dataTouch float64, rateList []float64) []reductionRow {
	var rows []reductionRow
	for _, rate := range rateList {
		mk := func(pol sched.Kind) *Point {
			p := sim.Params{
				Paradigm: paradigm, Policy: pol, Streams: 8,
				Arrival:   traffic.Poisson{PacketsPerSec: rate},
				DataTouch: dataTouch,
			}
			if paradigm == sim.IPS {
				p.Stacks = 8
			}
			return g.Add(fmt.Sprintf("%v %v V=%g @%g", paradigm, pol, dataTouch, rate), p)
		}
		r := reductionRow{dataTouch: dataTouch, rate: rate}
		if paradigm == sim.Locking {
			r.baseline, r.a, r.b = mk(sched.FCFS), mk(sched.MRU), mk(sched.WiredStreams)
		} else {
			r.baseline, r.a, r.b = mk(sched.IPSRandom), mk(sched.IPSMRU), mk(sched.IPSWired)
		}
		rows = append(rows, r)
	}
	return rows
}

// renderReductionSweep turns completed reduction rows into table rows and
// returns the maximum reduction over unsaturated operating points.
func renderReductionSweep(t *Table, rows []reductionRow) float64 {
	maxRed := 0.0
	for _, r := range rows {
		baseline, a, b := r.baseline.Results(), r.a.Results(), r.b.Results()
		best := math.Min(a.MeanDelay, b.MeanDelay)
		red := 1 - best/baseline.MeanDelay
		cell := fmt.Sprintf("%.1f%%", 100*red)
		if baseline.Saturated {
			cell += "*"
		} else if red > maxRed {
			maxRed = red
		}
		t.AddRow(r.dataTouch, r.rate, fmtDelay(baseline), fmt.Sprintf("%.1f", best), cell)
	}
	return maxRed
}

// FigE8 reproduces the Figure 10 scenario: percentage reduction in mean
// delay delivered by affinity scheduling under Locking, as a function of
// arrival rate, for per-packet data-touching costs V ∈ {0, 35, 139} µs
// (0 = the paper's non-data-touching configuration; 139 µs = checksumming
// the largest 4432-byte FDDI packet at 32 B/µs).
func FigE8(c Config) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Locking: % delay reduction from affinity scheduling (best of MRU/Wired vs FCFS)",
		Columns: []string{"V (µs data-touch)", "rate (pkt/s/stream)", "no-affinity delay", "affinity delay", "reduction"},
	}
	g := c.Grid("E8")
	rateList := rates(c, []float64{500, 1000, 2000, 3000, 3500, 4000, 4300})
	sweeps := make(map[float64][]reductionRow)
	touches := []float64{0, 35, 139}
	for _, dt := range touches {
		sweeps[dt] = declareReductionSweep(g, sim.Locking, dt, rateList)
	}
	g.Run()
	best := 0.0
	for _, dt := range touches {
		r := renderReductionSweep(t, sweeps[dt])
		if dt == 0 {
			best = r
		}
	}
	t.Note("V=0 maximum reduction over unsaturated rates: %.1f%% (paper: upper bound \"around 40-50%%\")", 100*best)
	t.Note("* marks rates where the baseline is saturated (excluded from the bound)")
	return t
}

// FigE9 is the IPS counterpart (Figure 11 scenario): affinity policies
// against random stack placement.
func FigE9(c Config) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "IPS: % delay reduction from affinity scheduling (best of MRU/Wired vs Random)",
		Columns: []string{"V (µs data-touch)", "rate (pkt/s/stream)", "no-affinity delay", "affinity delay", "reduction"},
	}
	g := c.Grid("E9")
	rateList := rates(c, []float64{500, 1000, 2000, 3000, 4000, 5000, 5500})
	sweeps := make(map[float64][]reductionRow)
	touches := []float64{0, 35, 139}
	for _, dt := range touches {
		sweeps[dt] = declareReductionSweep(g, sim.IPS, dt, rateList)
	}
	g.Run()
	best := 0.0
	for _, dt := range touches {
		r := renderReductionSweep(t, sweeps[dt])
		if dt == 0 {
			best = r
		}
	}
	t.Note("V=0 maximum reduction over unsaturated rates: %.1f%%", 100*best)
	return t
}

// FigE10 compares the two paradigms directly: delay across rates, and
// saturated throughput capacity.
func FigE10(c Config) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Locking vs IPS: mean delay (µs) vs per-stream rate, 16 streams",
		Columns: []string{"rate (pkt/s/stream)", "Locking (best)", "IPS (best)", "IPS advantage"},
	}
	g := c.Grid("E10")
	type row struct {
		rate            float64
		mru, wired, ips *Point
	}
	var rows []row
	for _, rate := range rates(c, []float64{250, 500, 1000, 1500, 2000, 2500, 3000}) {
		rows = append(rows, row{
			rate: rate,
			mru: g.Add(fmt.Sprintf("Locking MRU @%g", rate), sim.Params{
				Paradigm: sim.Locking, Policy: sched.MRU, Streams: 16,
				Arrival: traffic.Poisson{PacketsPerSec: rate},
			}),
			wired: g.Add(fmt.Sprintf("Locking Wired @%g", rate), sim.Params{
				Paradigm: sim.Locking, Policy: sched.WiredStreams, Streams: 16,
				Arrival: traffic.Poisson{PacketsPerSec: rate},
			}),
			ips: g.Add(fmt.Sprintf("IPS Wired @%g", rate), sim.Params{
				Paradigm: sim.IPS, Policy: sched.IPSWired, Streams: 16,
				Arrival: traffic.Poisson{PacketsPerSec: rate},
			}),
		})
	}
	// Saturated capacity probes: run to a fixed horizon, count completions.
	capPoint := func(paradigm sim.Paradigm, pol sched.Kind) *Point {
		p := sim.Params{
			Paradigm: paradigm, Policy: pol, Streams: 16,
			Arrival: traffic.Poisson{PacketsPerSec: 8000},
			MaxTime: 5 * des.Second,
		}
		p.Seed = c.Seed
		p.MeasuredPackets = 1 << 30
		return g.AddExact(fmt.Sprintf("%v capacity", paradigm), p)
	}
	lockCapPt := capPoint(sim.Locking, sched.WiredStreams)
	ipsCapPt := capPoint(sim.IPS, sched.IPSWired)
	g.Run()
	for _, r := range rows {
		lock := r.mru.Results()
		if wired := r.wired.Results(); wired.MeanDelay < lock.MeanDelay {
			lock = wired
		}
		ips := r.ips.Results()
		t.AddRow(r.rate, fmtDelay(lock), fmtDelay(ips),
			fmt.Sprintf("%.2fx", lock.MeanDelay/ips.MeanDelay))
	}
	lockCap := lockCapPt.Results().Throughput
	ipsCap := ipsCapPt.Results().Throughput
	t.Note("saturated throughput capacity: Locking %.0f pkt/s, IPS %.0f pkt/s (%.2fx)",
		lockCap, ipsCap, ipsCap/lockCap)
	t.Note("abstract: \"IPS delivers much lower message latency and significantly higher message throughput capacity\"")
	return t
}
