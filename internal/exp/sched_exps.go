package exp

import (
	"fmt"
	"math"

	"affinity/internal/des"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// run executes one simulation with the experiment's defaults.
func run(c Config, p sim.Params) sim.Results {
	p.Seed = c.Seed
	p.MeasuredPackets = c.packets()
	return sim.Run(p)
}

// fmtDelay renders a delay cell, flagging saturated operating points the
// way the paper's curves simply leave the region: the number is the
// (unbounded, horizon-limited) transient value.
func fmtDelay(r sim.Results) string {
	if r.Saturated {
		return fmt.Sprintf("%.0f*", r.MeanDelay)
	}
	return fmt.Sprintf("%.1f", r.MeanDelay)
}

func rates(c Config, full []float64) []float64 {
	if !c.Quick {
		return full
	}
	// Keep the endpoints and middle for quick runs.
	return []float64{full[0], full[len(full)/2], full[len(full)-1]}
}

// FigE5 reproduces the Figure 6 scenario: mean packet delay vs per-stream
// arrival rate under Locking, FCFS vs MRU, 8 streams on 8 processors.
func FigE5(c Config) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Locking: mean delay (µs) vs per-stream rate — FCFS vs MRU, 8 streams",
		Columns: []string{"rate (pkt/s/stream)", "FCFS", "MRU", "MRU warm frac", "reduction"},
	}
	for _, rate := range rates(c, []float64{250, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4300}) {
		base := sim.Params{
			Paradigm: sim.Locking, Policy: sched.FCFS, Streams: 8,
			Arrival: traffic.Poisson{PacketsPerSec: rate},
		}
		fcfs := run(c, base)
		base.Policy = sched.MRU
		mru := run(c, base)
		t.AddRow(rate, fmtDelay(fcfs), fmtDelay(mru),
			fmt.Sprintf("%.2f", mru.WarmFraction),
			fmt.Sprintf("%.1f%%", 100*(1-mru.MeanDelay/fcfs.MeanDelay)))
	}
	t.Note("* marks saturated operating points (offered load above sustainable throughput)")
	return t
}

// FigE6 reproduces the Figure 7 scenario: Locking with 16 streams under
// the richer affinity policies. The paper's conclusion — MRU wins except
// at high arrival rate, where Wired-Streams wins — appears as the
// crossover between the last two columns.
func FigE6(c Config) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Locking: mean delay (µs) vs per-stream rate — MRU vs ThreadPools vs WiredStreams, 16 streams",
		Columns: []string{"rate (pkt/s/stream)", "FCFS", "MRU", "ThreadPools", "WiredStreams"},
	}
	for _, rate := range rates(c, []float64{250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2200, 2400}) {
		row := []any{rate}
		for _, pol := range []sched.Kind{sched.FCFS, sched.MRU, sched.ThreadPools, sched.WiredStreams} {
			res := run(c, sim.Params{
				Paradigm: sim.Locking, Policy: pol, Streams: 16,
				Arrival: traffic.Poisson{PacketsPerSec: rate},
			})
			row = append(row, fmtDelay(res))
		}
		t.AddRow(row...)
	}
	t.Note("paper: \"Under Locking, processors should be managed MRU — except under high arrival rate, when Wired-Streams scheduling performs better.\"")
	return t
}

// FigE7 is the IPS policy comparison with more stacks than processors
// (16 stacks on 8 processors), where the paper's crossover lives: MRU
// wins at low arrival rate, Wired at high rate.
func FigE7(c Config) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "IPS: mean delay (µs) vs per-stream rate — Wired vs MRU vs Random, 16 streams, 16 stacks",
		Columns: []string{"rate (pkt/s/stream)", "Wired", "MRU", "Random"},
	}
	for _, rate := range rates(c, []float64{100, 250, 500, 1000, 1500, 2000, 2500}) {
		row := []any{rate}
		for _, pol := range []sched.Kind{sched.IPSWired, sched.IPSMRU, sched.IPSRandom} {
			res := run(c, sim.Params{
				Paradigm: sim.IPS, Policy: pol, Streams: 16, Stacks: 16,
				Arrival: traffic.Poisson{PacketsPerSec: rate},
			})
			row = append(row, fmtDelay(res))
		}
		t.AddRow(row...)
	}
	t.Note("paper: \"Under IPS, independent stacks should be wired to processors — except under low arrival rate, when MRU processor scheduling performs better.\"")
	return t
}

// reductionSweep computes the affinity delay reduction — the best
// affinity policy against the no-affinity baseline — across arrival
// rates, for one per-packet data-touch cost.
func reductionSweep(c Config, paradigm sim.Paradigm, dataTouch float64, rateList []float64, t *Table) float64 {
	maxRed := 0.0
	for _, rate := range rateList {
		mk := func(pol sched.Kind) sim.Results {
			p := sim.Params{
				Paradigm: paradigm, Policy: pol, Streams: 8,
				Arrival:   traffic.Poisson{PacketsPerSec: rate},
				DataTouch: dataTouch,
			}
			if paradigm == sim.IPS {
				p.Stacks = 8
			}
			return run(c, p)
		}
		var baseline, a, b sim.Results
		if paradigm == sim.Locking {
			baseline, a, b = mk(sched.FCFS), mk(sched.MRU), mk(sched.WiredStreams)
		} else {
			baseline, a, b = mk(sched.IPSRandom), mk(sched.IPSMRU), mk(sched.IPSWired)
		}
		best := math.Min(a.MeanDelay, b.MeanDelay)
		red := 1 - best/baseline.MeanDelay
		cell := fmt.Sprintf("%.1f%%", 100*red)
		if baseline.Saturated {
			cell += "*"
		} else if red > maxRed {
			maxRed = red
		}
		t.AddRow(dataTouch, rate, fmtDelay(baseline), fmt.Sprintf("%.1f", best), cell)
	}
	return maxRed
}

// FigE8 reproduces the Figure 10 scenario: percentage reduction in mean
// delay delivered by affinity scheduling under Locking, as a function of
// arrival rate, for per-packet data-touching costs V ∈ {0, 35, 139} µs
// (0 = the paper's non-data-touching configuration; 139 µs = checksumming
// the largest 4432-byte FDDI packet at 32 B/µs).
func FigE8(c Config) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Locking: % delay reduction from affinity scheduling (best of MRU/Wired vs FCFS)",
		Columns: []string{"V (µs data-touch)", "rate (pkt/s/stream)", "no-affinity delay", "affinity delay", "reduction"},
	}
	rateList := rates(c, []float64{500, 1000, 2000, 3000, 3500, 4000, 4300})
	best := 0.0
	for _, dt := range []float64{0, 35, 139} {
		r := reductionSweep(c, sim.Locking, dt, rateList, t)
		if dt == 0 {
			best = r
		}
	}
	t.Note("V=0 maximum reduction over unsaturated rates: %.1f%% (paper: upper bound \"around 40-50%%\")", 100*best)
	t.Note("* marks rates where the baseline is saturated (excluded from the bound)")
	return t
}

// FigE9 is the IPS counterpart (Figure 11 scenario): affinity policies
// against random stack placement.
func FigE9(c Config) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "IPS: % delay reduction from affinity scheduling (best of MRU/Wired vs Random)",
		Columns: []string{"V (µs data-touch)", "rate (pkt/s/stream)", "no-affinity delay", "affinity delay", "reduction"},
	}
	rateList := rates(c, []float64{500, 1000, 2000, 3000, 4000, 5000, 5500})
	best := 0.0
	for _, dt := range []float64{0, 35, 139} {
		r := reductionSweep(c, sim.IPS, dt, rateList, t)
		if dt == 0 {
			best = r
		}
	}
	t.Note("V=0 maximum reduction over unsaturated rates: %.1f%%", 100*best)
	return t
}

// FigE10 compares the two paradigms directly: delay across rates, and
// saturated throughput capacity.
func FigE10(c Config) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Locking vs IPS: mean delay (µs) vs per-stream rate, 16 streams",
		Columns: []string{"rate (pkt/s/stream)", "Locking (best)", "IPS (best)", "IPS advantage"},
	}
	for _, rate := range rates(c, []float64{250, 500, 1000, 1500, 2000, 2500, 3000}) {
		lock := run(c, sim.Params{
			Paradigm: sim.Locking, Policy: sched.MRU, Streams: 16,
			Arrival: traffic.Poisson{PacketsPerSec: rate},
		})
		wired := run(c, sim.Params{
			Paradigm: sim.Locking, Policy: sched.WiredStreams, Streams: 16,
			Arrival: traffic.Poisson{PacketsPerSec: rate},
		})
		if wired.MeanDelay < lock.MeanDelay {
			lock = wired
		}
		ips := run(c, sim.Params{
			Paradigm: sim.IPS, Policy: sched.IPSWired, Streams: 16,
			Arrival: traffic.Poisson{PacketsPerSec: rate},
		})
		t.AddRow(rate, fmtDelay(lock), fmtDelay(ips),
			fmt.Sprintf("%.2fx", lock.MeanDelay/ips.MeanDelay))
	}
	// Saturated capacity.
	capOf := func(paradigm sim.Paradigm, pol sched.Kind) float64 {
		p := sim.Params{
			Paradigm: paradigm, Policy: pol, Streams: 16,
			Arrival: traffic.Poisson{PacketsPerSec: 8000},
			MaxTime: 5 * des.Second,
		}
		p.Seed = c.Seed
		p.MeasuredPackets = 1 << 30
		return sim.Run(p).Throughput
	}
	lockCap := capOf(sim.Locking, sched.WiredStreams)
	ipsCap := capOf(sim.IPS, sched.IPSWired)
	t.Note("saturated throughput capacity: Locking %.0f pkt/s, IPS %.0f pkt/s (%.2fx)",
		lockCap, ipsCap, ipsCap/lockCap)
	t.Note("abstract: \"IPS delivers much lower message latency and significantly higher message throughput capacity\"")
	return t
}
