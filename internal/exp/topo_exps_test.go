package exp

import (
	"strconv"
	"strings"
	"testing"
)

// TestE33AdvantageErodesMonotonically pins E33's load-bearing claims:
// the Wired-Streams column is identical at every topology point (a
// never-migrating policy is bit-insensitive to transient multipliers),
// and the MRU-over-Wired advantage strictly decreases as the
// cross-socket multiplier grows.
func TestE33AdvantageErodesMonotonically(t *testing.T) {
	tb := FigE33(Config{Quick: true, Seed: 1})
	if len(tb.Rows) != 4 {
		t.Fatalf("E33 has %d rows, want 4", len(tb.Rows))
	}
	wired := tb.Rows[0][2]
	prev := 1e9
	for _, row := range tb.Rows {
		label, mruCell, wiredCell, advCell := row[0], row[1], row[2], row[3]
		if wiredCell != wired {
			t.Errorf("%s: Wired delay %q differs from flat's %q — wiring must not feel the topology",
				label, wiredCell, wired)
		}
		adv, err := strconv.ParseFloat(strings.TrimSuffix(advCell, "%"), 64)
		if err != nil {
			t.Fatalf("%s: unparseable advantage cell %q", label, advCell)
		}
		if adv >= prev {
			t.Errorf("%s: MRU advantage %.1f%% did not fall below the previous point's %.1f%% (MRU %s)",
				label, adv, prev, mruCell)
		}
		prev = adv
	}
}

// TestE34ReorderingContrast pins E34's semantic claim: RSS reorders
// exactly zero completions (static homes are structural in-order
// delivery) while Flow Director's rebalancing reorders a strictly
// positive number, and Flow Director's load balancing beats RSS on
// mean delay at this skewed bursty operating point.
func TestE34ReorderingContrast(t *testing.T) {
	tb := FigE34(Config{Quick: true, Seed: 1})
	if len(tb.Rows) != 3 {
		t.Fatalf("E34 has %d rows, want 3", len(tb.Rows))
	}
	delays := map[string]float64{}
	for _, row := range tb.Rows {
		policy, delayCell, reorderedCell := row[0], row[1], row[4]
		reordered, err := strconv.ParseUint(reorderedCell, 10, 64)
		if err != nil {
			t.Fatalf("%s: unparseable reordered cell %q", policy, reorderedCell)
		}
		delay, err := strconv.ParseFloat(strings.Fields(delayCell)[0], 64)
		if err != nil {
			t.Fatalf("%s: unparseable delay cell %q", policy, delayCell)
		}
		delays[policy] = delay
		switch policy {
		case "RSS":
			if reordered != 0 {
				t.Errorf("RSS reordered %d completions, must be structurally zero", reordered)
			}
		case "FlowDirector":
			if reordered == 0 {
				t.Error("FlowDirector reordered nothing — rebalancing never fired at this operating point")
			}
		}
	}
	if delays["FlowDirector"] >= delays["RSS"] {
		t.Errorf("FlowDirector delay %.1f not below RSS %.1f — rebalancing bought nothing",
			delays["FlowDirector"], delays["RSS"])
	}
}
