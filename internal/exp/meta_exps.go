package exp

import (
	"fmt"

	"affinity/internal/cachesim"
	"affinity/internal/core"
	"affinity/internal/memtrace"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/stats"
	"affinity/internal/traffic"
)

// FigE23 replicates the headline comparisons across independent seeds
// and reports mean ± spread, verifying that the paper-reproducing
// conclusions are not artifacts of one random stream.
func FigE23(c Config) *Table {
	t := &Table{
		ID:      "E23",
		Title:   "Seed robustness: headline metrics across independent replications",
		Columns: []string{"metric", "mean", "min", "max", "conclusion holds in"},
	}
	reps := 5
	if c.Quick {
		reps = 3
	}
	g := c.Grid("E23")
	seeded := func(par sim.Paradigm, pol sched.Kind, streams int, arr traffic.Spec, seed int64) sim.Params {
		p := sim.Params{
			Paradigm: par, Policy: pol, Streams: streams,
			Arrival: arr, Seed: seed,
		}
		p.MeasuredPackets = c.packets()
		return p
	}
	// Each metric declares a pair of runs per replication seed and
	// evaluates the comparison from the pair's Results.
	type metric struct {
		name    string
		declare func(seed int64) [2]*Point
		eval    func(a, b sim.Results) (value float64, holds bool)
	}
	metrics := []metric{
		{
			name: "MRU delay reduction vs FCFS (%, 2000 pkt/s)",
			declare: func(seed int64) [2]*Point {
				arr := traffic.Poisson{PacketsPerSec: 2000}
				return [2]*Point{
					g.AddExact(fmt.Sprintf("FCFS seed=%d", seed), seeded(sim.Locking, sched.FCFS, 8, arr, seed)),
					g.AddExact(fmt.Sprintf("MRU seed=%d", seed), seeded(sim.Locking, sched.MRU, 8, arr, seed)),
				}
			},
			eval: func(fcfs, mru sim.Results) (float64, bool) {
				red := 100 * (1 - mru.MeanDelay/fcfs.MeanDelay)
				return red, red > 0
			},
		},
		{
			name: "IPS latency advantage vs Locking (x, 1500 pkt/s)",
			declare: func(seed int64) [2]*Point {
				arr := traffic.Poisson{PacketsPerSec: 1500}
				return [2]*Point{
					g.AddExact(fmt.Sprintf("Locking seed=%d", seed), seeded(sim.Locking, sched.MRU, 16, arr, seed)),
					g.AddExact(fmt.Sprintf("IPS seed=%d", seed), seeded(sim.IPS, sched.IPSWired, 16, arr, seed)),
				}
			},
			eval: func(lock, ips sim.Results) (float64, bool) {
				adv := lock.MeanDelay / ips.MeanDelay
				return adv, adv > 1
			},
		},
		{
			name: "IPS/Locking burst-delay ratio (burst 16)",
			declare: func(seed int64) [2]*Point {
				arr := traffic.Batch{PacketsPerSec: 1000, MeanBurst: 16}
				return [2]*Point{
					g.AddExact(fmt.Sprintf("IPS burst seed=%d", seed), seeded(sim.IPS, sched.IPSWired, 8, arr, seed)),
					g.AddExact(fmt.Sprintf("Locking burst seed=%d", seed), seeded(sim.Locking, sched.MRU, 8, arr, seed)),
				}
			},
			eval: func(ips, lock sim.Results) (float64, bool) {
				ratio := ips.MeanDelay / lock.MeanDelay
				return ratio, ratio > 1
			},
		},
	}
	pairs := make([][][2]*Point, len(metrics))
	for i, m := range metrics {
		for r := 0; r < reps; r++ {
			pairs[i] = append(pairs[i], m.declare(1000+int64(r)*7919))
		}
	}
	g.Run()
	for i, m := range metrics {
		var acc stats.Accumulator
		holds := 0
		for _, pair := range pairs[i] {
			v, ok := m.eval(pair[0].Results(), pair[1].Results())
			acc.Add(v)
			if ok {
				holds++
			}
		}
		t.AddRow(m.name, fmt.Sprintf("%.2f", acc.Mean()),
			fmt.Sprintf("%.2f", acc.Min()), fmt.Sprintf("%.2f", acc.Max()),
			fmt.Sprintf("%d/%d", holds, reps))
	}
	t.Note("each row replicates its comparison over %d independent seeds; 'holds' counts replications where the paper's qualitative conclusion is reproduced", reps)
	return t
}

// FigE24 reconciles the paper with the contrary prior finding it
// discusses: Vaswani & Zahorjan measured ≤1 % benefit because their
// applications' cache reload time was tiny next to the scheduling
// quantum, while here the reload transient is comparable to the service
// time itself. Scaling the reload transient (t_cold − t_warm) down
// recreates their regime; scaling it up (bigger footprints, slower
// memories) widens the benefit — "there are platforms and common
// workloads for which affinity-based scheduling is worthwhile."
func FigE24(c Config) *Table {
	t := &Table{
		ID:      "E24",
		Title:   "Platform sensitivity: affinity benefit vs reload-transient scale (Locking, 8 streams, 2000 pkt/s)",
		Columns: []string{"transient scale", "t_cold (µs)", "FCFS delay", "MRU delay", "reduction"},
	}
	scales := []float64{0.1, 0.25, 0.5, 1, 2, 4}
	if c.Quick {
		scales = []float64{0.1, 1, 4}
	}
	base := core.PaperCalibration()
	g := c.Grid("E24")
	type row struct {
		scale     float64
		calib     core.Calibration
		fcfs, mru *Point
	}
	var rows []row
	for _, scale := range scales {
		calib := core.Calibration{
			TWarm:   base.TWarm,
			TL1Cold: base.TWarm + (base.TL1Cold-base.TWarm)*scale,
			TCold:   base.TWarm + (base.TCold-base.TWarm)*scale,
		}
		mk := func(pol sched.Kind) *Point {
			m := core.NewModel()
			m.Calib = calib
			return g.Add(fmt.Sprintf("%v scale=%g", pol, scale), sim.Params{
				Model:    m,
				Paradigm: sim.Locking, Policy: pol, Streams: 8,
				Arrival: traffic.Poisson{PacketsPerSec: 2000},
			})
		}
		rows = append(rows, row{scale, calib, mk(sched.FCFS), mk(sched.MRU)})
	}
	g.Run()
	for _, r := range rows {
		fcfs, mru := r.fcfs.Results(), r.mru.Results()
		t.AddRow(fmt.Sprintf("%.2fx", r.scale), fmt.Sprintf("%.1f", r.calib.TCold),
			fmtDelay(fcfs), fmtDelay(mru),
			fmt.Sprintf("%.1f%%", 100*(1-mru.MeanDelay/fcfs.MeanDelay)))
	}
	t.Note("small transients reproduce Vaswani & Zahorjan's ≤1%% regime (reload ≪ quantum); the paper's platform sits at 1.0x where the transient is ~half the service time")
	return t
}

// FigE25 validates the paper's quoted data-touching constant against the
// cache simulator: "checksumming on our platform can be performed at a
// rate of 32 bytes/µs", and the largest 4432-byte FDDI packet therefore
// costs 139 µs. The warm-buffer rate of the checksum-loop trace must
// reproduce the quoted figure; the cold (freshly DMA'd) buffer rate
// shows why avoiding the CPU-cache pass entirely (checksum in interface
// firmware, as SGI's NFS server does [14]) pays.
func FigE25(c Config) *Table {
	t := &Table{
		ID:      "E25",
		Title:   "Data-touching rate: checksum throughput in the cache simulator",
		Columns: []string{"packet bytes", "warm buffer (B/µs)", "cold buffer (B/µs)", "cold time (µs)"},
	}
	sizes := []int{64, 512, 1460, 4432}
	if c.Quick {
		sizes = []int{512, 4432}
	}
	var warm4432 float64
	for _, n := range sizes {
		hw := cachesim.New(core.SGIChallengeXL(), cachesim.DefaultTiming())
		warm := memtrace.NewDataTouchTrace(0, n).WarmBytesPerMicrosecond(hw)
		hc := cachesim.New(core.SGIChallengeXL(), cachesim.DefaultTiming())
		cold := memtrace.NewDataTouchTrace(0, n).BytesPerMicrosecond(hc)
		if n == 4432 {
			warm4432 = warm
		}
		t.AddRow(n, fmt.Sprintf("%.1f", warm), fmt.Sprintf("%.1f", cold),
			fmt.Sprintf("%.1f", float64(n)/cold))
	}
	if warm4432 > 0 {
		t.Note("paper: 32 bytes/µs ⇒ 139 µs for the largest 4432-byte FDDI packet; simulator warm rate %.1f B/µs ⇒ %.1f µs",
			warm4432, 4432/warm4432)
	}
	t.Note("a freshly DMA'd (cache-cold) buffer checksums ~30%% slower — the motivation for interface-firmware checksumming [14]")
	return t
}
