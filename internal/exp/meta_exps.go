package exp

import (
	"fmt"

	"affinity/internal/cachesim"
	"affinity/internal/core"
	"affinity/internal/memtrace"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/stats"
	"affinity/internal/traffic"
)

// FigE23 replicates the headline comparisons across independent seeds
// and reports mean ± spread, verifying that the paper-reproducing
// conclusions are not artifacts of one random stream.
func FigE23(c Config) *Table {
	t := &Table{
		ID:      "E23",
		Title:   "Seed robustness: headline metrics across independent replications",
		Columns: []string{"metric", "mean", "min", "max", "conclusion holds in"},
	}
	reps := 5
	if c.Quick {
		reps = 3
	}
	type metric struct {
		name string
		eval func(seed int64) (value float64, holds bool)
	}
	metrics := []metric{
		{"MRU delay reduction vs FCFS (%, 2000 pkt/s)", func(seed int64) (float64, bool) {
			mk := func(pol sched.Kind) sim.Results {
				p := sim.Params{
					Paradigm: sim.Locking, Policy: pol, Streams: 8,
					Arrival: traffic.Poisson{PacketsPerSec: 2000},
					Seed:    seed,
				}
				p.MeasuredPackets = c.packets()
				return sim.Run(p)
			}
			fcfs, mru := mk(sched.FCFS), mk(sched.MRU)
			red := 100 * (1 - mru.MeanDelay/fcfs.MeanDelay)
			return red, red > 0
		}},
		{"IPS latency advantage vs Locking (x, 1500 pkt/s)", func(seed int64) (float64, bool) {
			lp := sim.Params{
				Paradigm: sim.Locking, Policy: sched.MRU, Streams: 16,
				Arrival: traffic.Poisson{PacketsPerSec: 1500}, Seed: seed,
			}
			lp.MeasuredPackets = c.packets()
			ip := sim.Params{
				Paradigm: sim.IPS, Policy: sched.IPSWired, Streams: 16,
				Arrival: traffic.Poisson{PacketsPerSec: 1500}, Seed: seed,
			}
			ip.MeasuredPackets = c.packets()
			adv := sim.Run(lp).MeanDelay / sim.Run(ip).MeanDelay
			return adv, adv > 1
		}},
		{"IPS/Locking burst-delay ratio (burst 16)", func(seed int64) (float64, bool) {
			mk := func(par sim.Paradigm, pol sched.Kind) sim.Results {
				p := sim.Params{
					Paradigm: par, Policy: pol, Streams: 8,
					Arrival: traffic.Batch{PacketsPerSec: 1000, MeanBurst: 16},
					Seed:    seed,
				}
				p.MeasuredPackets = c.packets()
				return sim.Run(p)
			}
			ratio := mk(sim.IPS, sched.IPSWired).MeanDelay / mk(sim.Locking, sched.MRU).MeanDelay
			return ratio, ratio > 1
		}},
	}
	for _, m := range metrics {
		var acc stats.Accumulator
		holds := 0
		for r := 0; r < reps; r++ {
			v, ok := m.eval(1000 + int64(r)*7919)
			acc.Add(v)
			if ok {
				holds++
			}
		}
		t.AddRow(m.name, fmt.Sprintf("%.2f", acc.Mean()),
			fmt.Sprintf("%.2f", acc.Min()), fmt.Sprintf("%.2f", acc.Max()),
			fmt.Sprintf("%d/%d", holds, reps))
	}
	t.Note("each row replicates its comparison over %d independent seeds; 'holds' counts replications where the paper's qualitative conclusion is reproduced", reps)
	return t
}

// FigE24 reconciles the paper with the contrary prior finding it
// discusses: Vaswani & Zahorjan measured ≤1 % benefit because their
// applications' cache reload time was tiny next to the scheduling
// quantum, while here the reload transient is comparable to the service
// time itself. Scaling the reload transient (t_cold − t_warm) down
// recreates their regime; scaling it up (bigger footprints, slower
// memories) widens the benefit — "there are platforms and common
// workloads for which affinity-based scheduling is worthwhile."
func FigE24(c Config) *Table {
	t := &Table{
		ID:      "E24",
		Title:   "Platform sensitivity: affinity benefit vs reload-transient scale (Locking, 8 streams, 2000 pkt/s)",
		Columns: []string{"transient scale", "t_cold (µs)", "FCFS delay", "MRU delay", "reduction"},
	}
	scales := []float64{0.1, 0.25, 0.5, 1, 2, 4}
	if c.Quick {
		scales = []float64{0.1, 1, 4}
	}
	base := core.PaperCalibration()
	for _, scale := range scales {
		calib := core.Calibration{
			TWarm:   base.TWarm,
			TL1Cold: base.TWarm + (base.TL1Cold-base.TWarm)*scale,
			TCold:   base.TWarm + (base.TCold-base.TWarm)*scale,
		}
		mk := func(pol sched.Kind) sim.Results {
			m := core.NewModel()
			m.Calib = calib
			p := sim.Params{
				Model:    m,
				Paradigm: sim.Locking, Policy: pol, Streams: 8,
				Arrival: traffic.Poisson{PacketsPerSec: 2000},
				Seed:    c.Seed,
			}
			p.MeasuredPackets = c.packets()
			return sim.Run(p)
		}
		fcfs, mru := mk(sched.FCFS), mk(sched.MRU)
		t.AddRow(fmt.Sprintf("%.2fx", scale), fmt.Sprintf("%.1f", calib.TCold),
			fmtDelay(fcfs), fmtDelay(mru),
			fmt.Sprintf("%.1f%%", 100*(1-mru.MeanDelay/fcfs.MeanDelay)))
	}
	t.Note("small transients reproduce Vaswani & Zahorjan's ≤1%% regime (reload ≪ quantum); the paper's platform sits at 1.0x where the transient is ~half the service time")
	return t
}

// FigE25 validates the paper's quoted data-touching constant against the
// cache simulator: "checksumming on our platform can be performed at a
// rate of 32 bytes/µs", and the largest 4432-byte FDDI packet therefore
// costs 139 µs. The warm-buffer rate of the checksum-loop trace must
// reproduce the quoted figure; the cold (freshly DMA'd) buffer rate
// shows why avoiding the CPU-cache pass entirely (checksum in interface
// firmware, as SGI's NFS server does [14]) pays.
func FigE25(c Config) *Table {
	t := &Table{
		ID:      "E25",
		Title:   "Data-touching rate: checksum throughput in the cache simulator",
		Columns: []string{"packet bytes", "warm buffer (B/µs)", "cold buffer (B/µs)", "cold time (µs)"},
	}
	sizes := []int{64, 512, 1460, 4432}
	if c.Quick {
		sizes = []int{512, 4432}
	}
	var warm4432 float64
	for _, n := range sizes {
		hw := cachesim.New(core.SGIChallengeXL(), cachesim.DefaultTiming())
		warm := memtrace.NewDataTouchTrace(0, n).WarmBytesPerMicrosecond(hw)
		hc := cachesim.New(core.SGIChallengeXL(), cachesim.DefaultTiming())
		cold := memtrace.NewDataTouchTrace(0, n).BytesPerMicrosecond(hc)
		if n == 4432 {
			warm4432 = warm
		}
		t.AddRow(n, fmt.Sprintf("%.1f", warm), fmt.Sprintf("%.1f", cold),
			fmt.Sprintf("%.1f", float64(n)/cold))
	}
	if warm4432 > 0 {
		t.Note("paper: 32 bytes/µs ⇒ 139 µs for the largest 4432-byte FDDI packet; simulator warm rate %.1f B/µs ⇒ %.1f µs",
			warm4432, 4432/warm4432)
	}
	t.Note("a freshly DMA'd (cache-cold) buffer checksums ~30%% slower — the motivation for interface-firmware checksumming [14]")
	return t
}
