package exp

import (
	"fmt"

	"affinity/internal/core"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// FigE17 evaluates affinity scheduling of send-side UDP/IP/FDDI
// processing — the paper's extension (i). The send path is cheaper
// (t_cold ≈ 218.9 µs vs the receive path's 284.3 µs) but has a similar
// warm/cold span, so the affinity effects carry over; because service is
// shorter the saturation knee moves to higher rates.
func FigE17(c Config) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Send-side processing: mean delay (µs) vs per-stream rate — FCFS vs MRU, 8 streams",
		Columns: []string{"rate (pkt/s/stream)", "FCFS", "MRU", "reduction"},
	}
	sendCal := core.SendCalibration()
	g := c.Grid("E17")
	type row struct {
		rate      float64
		fcfs, mru *Point
	}
	var rows []row
	for _, rate := range rates(c, []float64{500, 1000, 2000, 3000, 4000, 5000, 5600, 6000}) {
		mk := func(pol sched.Kind) *Point {
			return g.Add(fmt.Sprintf("send %v @%g", pol, rate), sim.Params{
				Model:    core.NewSendModel(),
				Paradigm: sim.Locking, Policy: pol, Streams: 8,
				Arrival: traffic.Poisson{PacketsPerSec: rate},
			})
		}
		rows = append(rows, row{rate, mk(sched.FCFS), mk(sched.MRU)})
	}
	g.Run()
	for _, r := range rows {
		fcfs, mru := r.fcfs.Results(), r.mru.Results()
		t.AddRow(r.rate, fmtDelay(fcfs), fmtDelay(mru),
			fmt.Sprintf("%.1f%%", 100*(1-mru.MeanDelay/fcfs.MeanDelay)))
	}
	t.Note("send calibration: t_warm %.1f, t_L1cold %.1f, t_cold %.1f µs (regenerate with calib.MeasureSend)",
		sendCal.TWarm, sendCal.TL1Cold, sendCal.TCold)
	t.Note("max affinity reduction bound on the send side: %.1f%%", 100*sendCal.MaxReduction())
	return t
}

// FigE18 evaluates the companion TR's hybrid proposal: IPS stacks with a
// shared locking overflow path. It should match IPS on smooth traffic
// and Locking under bursts — "the best overall performance".
func FigE18(c Config) *Table {
	t := &Table{
		ID:      "E18",
		Title:   "Hybrid paradigm: mean delay (µs) vs mean burst size, 8 streams at 1000 pkt/s each",
		Columns: []string{"mean burst", "Locking MRU", "IPS Wired", "Hybrid", "hybrid vs best pure"},
	}
	bursts := []float64{1, 2, 4, 8, 16, 32}
	if c.Quick {
		bursts = []float64{1, 8, 32}
	}
	g := c.Grid("E18")
	type row struct {
		b              float64
		lock, ips, hyb *Point
	}
	var rows []row
	for _, b := range bursts {
		var arrival traffic.Spec = traffic.Batch{PacketsPerSec: 1000, MeanBurst: b}
		if b == 1 {
			arrival = traffic.Poisson{PacketsPerSec: 1000}
		}
		rows = append(rows, row{
			b: b,
			lock: g.Add(fmt.Sprintf("Locking b=%g", b), sim.Params{
				Paradigm: sim.Locking, Policy: sched.MRU, Streams: 8, Arrival: arrival,
			}),
			ips: g.Add(fmt.Sprintf("IPS b=%g", b), sim.Params{
				Paradigm: sim.IPS, Policy: sched.IPSWired, Streams: 8, Arrival: arrival,
			}),
			hyb: g.Add(fmt.Sprintf("Hybrid b=%g", b), sim.Params{
				Paradigm: sim.Hybrid, Policy: sched.IPSWired, Streams: 8, Arrival: arrival,
			}),
		})
	}
	g.Run()
	for _, r := range rows {
		lock, ips, hyb := r.lock.Results(), r.ips.Results(), r.hyb.Results()
		best := lock.MeanDelay
		if ips.MeanDelay < best {
			best = ips.MeanDelay
		}
		t.AddRow(r.b, fmtDelay(lock), fmtDelay(ips), fmtDelay(hyb),
			fmt.Sprintf("%.2fx", hyb.MeanDelay/best))
	}
	t.Note("TR UM-CS-1994-075: a hybrid \"offers the best overall performance — high message throughput, high intra-stream scalability, and robustness in the presence of bursty arrivals\"")
	return t
}

// FigE19 is the design-choice ablation DESIGN.md calls out: how the
// bounded MRU dispatch lookahead, the shared-code fraction, and the lock
// critical-section fraction move the headline operating point (Locking,
// 16 streams, 2000 pkt/s per stream).
func FigE19(c Config) *Table {
	t := &Table{
		ID:      "E19",
		Title:   "Ablations at Locking/MRU, 16 streams, 2000 pkt/s/stream",
		Columns: []string{"parameter", "value", "mean delay (µs)", "warm frac", "throughput"},
	}
	base := func() sim.Params {
		return sim.Params{
			Paradigm: sim.Locking, Policy: sched.MRU, Streams: 16,
			Arrival: traffic.Poisson{PacketsPerSec: 2000},
		}
	}
	g := c.Grid("E19")
	type row struct {
		name, val string
		pt        *Point
	}
	var rows []row
	add := func(name string, val string, p sim.Params) {
		rows = append(rows, row{name, val, g.Add(fmt.Sprintf("%s=%s", name, val), p)})
	}
	lookaheads := []int{1, 2, 4, 8, 16}
	shares := []float64{0.25, 0.5, 0.75}
	crits := []float64{0.05, 0.15, 0.3}
	if c.Quick {
		lookaheads = []int{1, 4}
		shares = []float64{0.25, 0.75}
		crits = []float64{0.05, 0.3}
	}
	for _, la := range lookaheads {
		p := base()
		p.MRULookahead = la
		add("MRU lookahead", fmt.Sprintf("%d", la), p)
	}
	for _, cs := range shares {
		p := base()
		p.CodeSharedFrac = cs
		add("code shared fraction", fmt.Sprintf("%.2f", cs), p)
	}
	for _, cf := range crits {
		p := base()
		p.LockCritFrac = cf
		add("lock critical fraction", fmt.Sprintf("%.2f", cf), p)
	}
	g.Run()
	for _, r := range rows {
		res := r.pt.Results()
		t.AddRow(r.name, r.val, fmtDelay(res), fmt.Sprintf("%.2f", res.WarmFraction),
			fmt.Sprintf("%.0f", res.Throughput))
	}
	t.Note("lookahead: deeper affine scans keep MRU warm near saturation; shared code: more sharing softens inter-stream displacement; critical fraction: sets the Locking throughput ceiling")
	return t
}

// FigE21 checks the paper's claim that the UDP results "are likely to
// hold directly for TCP": the TCP receive path costs ~15 % more per
// packet (Kay & Pasquale) but has the same warm/cold structure, so the
// affinity curves keep their shape with the knee shifted down in rate.
func FigE21(c Config) *Table {
	t := &Table{
		ID:      "E21",
		Title:   "TCP/IP receive processing: mean delay (µs) vs per-stream rate — FCFS vs MRU, 8 streams",
		Columns: []string{"rate (pkt/s/stream)", "FCFS", "MRU", "reduction"},
	}
	tcpCal := core.TCPCalibration()
	g := c.Grid("E21")
	type row struct {
		rate      float64
		fcfs, mru *Point
	}
	var rows []row
	for _, rate := range rates(c, []float64{500, 1000, 1500, 2000, 2500, 3000, 3400, 3700}) {
		mk := func(pol sched.Kind) *Point {
			return g.Add(fmt.Sprintf("tcp %v @%g", pol, rate), sim.Params{
				Model:    core.NewTCPModel(),
				Paradigm: sim.Locking, Policy: pol, Streams: 8,
				Arrival: traffic.Poisson{PacketsPerSec: rate},
			})
		}
		rows = append(rows, row{rate, mk(sched.FCFS), mk(sched.MRU)})
	}
	g.Run()
	for _, r := range rows {
		fcfs, mru := r.fcfs.Results(), r.mru.Results()
		t.AddRow(r.rate, fmtDelay(fcfs), fmtDelay(mru),
			fmt.Sprintf("%.1f%%", 100*(1-mru.MeanDelay/fcfs.MeanDelay)))
	}
	t.Note("TCP calibration: t_warm %.1f, t_L1cold %.1f, t_cold %.1f µs — %.0f%% above the UDP path, same warm/cold structure",
		tcpCal.TWarm, tcpCal.TL1Cold, tcpCal.TCold, 100*(tcpCal.TCold/core.PaperCalibration().TCold-1))
	t.Note("paper: \"our results are likely to hold directly for TCP\" — the curves keep the UDP shape with the knee shifted to lower rates")
	return t
}

// FigE22 explores heterogeneous stream rates — one fast stream among
// slow ones, the shape of real mixes (Gusella's measurement study the
// paper cites found highly skewed per-host traffic). Static wiring pins
// the heavy stream's load to one processor; adaptive policies absorb it.
func FigE22(c Config) *Table {
	t := &Table{
		ID:      "E22",
		Title:   "Heterogeneous streams: 1 × 6000 pkt/s + 7 × 800 pkt/s — mean delay (µs)",
		Columns: []string{"configuration", "mean delay", "p95 delay", "fairness", "warm frac", "saturated"},
	}
	specs := make([]traffic.Spec, 8)
	specs[0] = traffic.Poisson{PacketsPerSec: 6000}
	for i := 1; i < 8; i++ {
		specs[i] = traffic.Poisson{PacketsPerSec: 800}
	}
	g := c.Grid("E22")
	type row struct {
		name string
		pt   *Point
	}
	var rows []row
	for _, cfg := range []struct {
		name string
		par  sim.Paradigm
		pol  sched.Kind
	}{
		{"Locking FCFS", sim.Locking, sched.FCFS},
		{"Locking MRU", sim.Locking, sched.MRU},
		{"Locking ThreadPools", sim.Locking, sched.ThreadPools},
		{"Locking WiredStreams", sim.Locking, sched.WiredStreams},
		{"IPS Wired (8 stacks)", sim.IPS, sched.IPSWired},
		{"Hybrid", sim.Hybrid, sched.IPSWired},
	} {
		rows = append(rows, row{cfg.name, g.Add(cfg.name, sim.Params{
			Paradigm: cfg.par, Policy: cfg.pol, Streams: 8,
			ArrivalPerStream: specs,
		})})
	}
	g.Run()
	for _, r := range rows {
		res := r.pt.Results()
		t.AddRow(r.name, fmtDelay(res), fmtP95(res),
			fmt.Sprintf("%.3f", res.DelayFairness),
			fmt.Sprintf("%.2f", res.WarmFraction), fmt.Sprintf("%v", res.Saturated))
	}
	t.Note("the 6000 pkt/s stream fills 89%% of one processor by itself: static wiring (WiredStreams, IPS) queues it behind a single CPU while work-conserving policies spread the excess")
	t.Note("fairness is Jain's index over per-stream mean delays (1 = perfectly even)")
	t.Note("p95 values prefixed '>' are clamped at the delay histogram's upper bound")
	return t
}
