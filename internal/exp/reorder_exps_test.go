package exp

import (
	"strconv"
	"testing"
)

// TestE30ReorderingContrast pins E30's load-bearing claim: Wired-Streams
// shows exactly zero reordering (structural — each stream is serialized
// on one processor), while every migrating policy reorders a strictly
// positive number of completions at this bursty operating point.
func TestE30ReorderingContrast(t *testing.T) {
	tb := FigE30(Config{Quick: true, Seed: 1})
	if len(tb.Rows) != 4 {
		t.Fatalf("E30 has %d rows, want 4", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		policy, reorderedCell, maxDistCell := row[0], row[2], row[4]
		reordered, err := strconv.ParseUint(reorderedCell, 10, 64)
		if err != nil {
			t.Fatalf("%s: unparseable reordered cell %q", policy, reorderedCell)
		}
		maxDist, err := strconv.ParseUint(maxDistCell, 10, 64)
		if err != nil {
			t.Fatalf("%s: unparseable max-distance cell %q", policy, maxDistCell)
		}
		if policy == "WiredStreams" {
			if reordered != 0 || maxDist != 0 {
				t.Errorf("WiredStreams reordered %d packets (max distance %d), must be structurally zero",
					reordered, maxDist)
			}
			continue
		}
		if reordered == 0 {
			t.Errorf("%s: zero reordering — operating point too tame to contrast with Wired-Streams", policy)
		}
	}
}
