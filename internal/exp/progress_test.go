package exp

import (
	"strings"
	"testing"
	"time"

	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

func TestReporterTimesAndCounts(t *testing.T) {
	var b strings.Builder
	r := NewReporter(&b)
	// Deterministic clock: each call advances 100 ms.
	tick := time.Unix(0, 0)
	r.now = func() time.Time {
		tick = tick.Add(100 * time.Millisecond)
		return tick
	}

	r.Start("E1", "Footprint function")
	// Run a real (tiny) simulation so the global event counter advances.
	p := sim.Params{
		Paradigm:        sim.Locking,
		Policy:          sched.MRU,
		Processors:      2,
		Streams:         4,
		Arrival:         traffic.Poisson{PacketsPerSec: 2000},
		MeasuredPackets: 200,
		Seed:            1,
	}
	res := sim.Run(p)
	if res.EventsFired == 0 {
		t.Fatal("tiny run fired no events")
	}
	r.Done("E1")

	out := b.String()
	if !strings.Contains(out, "E1   start  Footprint function") {
		t.Fatalf("missing start line:\n%s", out)
	}
	if !strings.Contains(out, "E1   done   100ms") {
		t.Fatalf("missing or mistimed done line:\n%s", out)
	}
	if !strings.Contains(out, "events/s") {
		t.Fatalf("missing event rate:\n%s", out)
	}
	if strings.Contains(out, " 0 events") {
		t.Fatalf("event delta not captured:\n%s", out)
	}
	if strings.Contains(out, "concurrent") {
		t.Fatalf("sequential run flagged as concurrent:\n%s", out)
	}
}

func TestReporterOverlapFlag(t *testing.T) {
	var b strings.Builder
	r := NewReporter(&b)
	r.Start("A", "first")
	r.Start("B", "second")
	r.Done("A")
	r.Done("B")
	out := b.String()
	if strings.Count(out, "incl. concurrent runs") != 2 {
		t.Fatalf("overlapping runs not both flagged:\n%s", out)
	}
	r.Done("unknown") // must not panic or print
	if strings.Contains(b.String(), "unknown") {
		t.Fatal("unknown ID produced output")
	}
}
