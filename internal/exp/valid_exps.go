package exp

import (
	"fmt"

	"affinity/internal/core"
	"affinity/internal/queueing"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
	"affinity/internal/workload"
)

// FigE20 validates the discrete-event simulator against classical
// queueing theory: on the idle host (V = 0) with perfect affinity the
// protocol station is an M/D/1 (or M/D/c) queue with service t_warm, and
// the simulated mean queueing delay must reproduce the known formulas.
func FigE20(c Config) *Table {
	t := &Table{
		ID:      "E20",
		Title:   "DES validation against queueing theory (idle host, constant service)",
		Columns: []string{"system", "load ρ", "theory Wq (µs)", "sim Wq (µs)", "error"},
	}
	idle := workload.Idle()
	warm := core.PaperCalibration().TWarm
	g := c.Grid("E20")

	type row struct {
		name   string
		rho    float64
		theory float64
		pt     *Point
	}
	var rows []row

	// M/D/1: one stream wired to one stack; service is exactly t_warm.
	rhos := []float64{0.3, 0.6, 0.8}
	if c.Quick {
		rhos = []float64{0.6}
	}
	for _, rho := range rhos {
		lambda := rho / warm // packets per µs
		rows = append(rows, row{
			name: "M/D/1 (IPS, 1 stack)", rho: rho,
			theory: queueing.MD1Wait(lambda, warm),
			pt: g.Add(fmt.Sprintf("M/D/1 rho=%g", rho), sim.Params{
				Paradigm: sim.IPS, Policy: sched.IPSWired, Streams: 1, Stacks: 1,
				Arrival:    traffic.Poisson{PacketsPerSec: lambda * 1e6},
				Background: &idle,
			}),
		})
	}

	// 8 independent M/D/1 queues: eight wired stacks, one per processor.
	{
		rho := 0.6
		lambda := rho / warm
		rows = append(rows, row{
			name: "8 × M/D/1 (IPS, 8 stacks)", rho: rho,
			theory: queueing.MD1Wait(lambda, warm),
			pt: g.Add("8xM/D/1", sim.Params{
				Paradigm: sim.IPS, Policy: sched.IPSWired, Streams: 8, Stacks: 8,
				Arrival:    traffic.Poisson{PacketsPerSec: lambda * 1e6},
				Background: &idle,
			}),
		})
	}

	// M[X]/D/1 with geometric batches. Batch runs need more samples for
	// the same precision: only 1/m of the measured packets start a batch.
	batches := []float64{4, 8}
	if c.Quick {
		batches = []float64{4}
	}
	for _, m := range batches {
		rho := 0.5
		lambda := rho / warm
		p := sim.Params{
			Paradigm: sim.IPS, Policy: sched.IPSWired, Streams: 1, Stacks: 1,
			Arrival:    traffic.Batch{PacketsPerSec: lambda * 1e6, MeanBurst: m},
			Background: &idle,
			Seed:       c.Seed,
		}
		p.MeasuredPackets = c.packets() * 4
		rows = append(rows, row{
			name: fmt.Sprintf("M[X]/D/1 (geometric, m=%.0f)", m), rho: rho,
			theory: queueing.BatchGeoMD1Wait(lambda, warm, m),
			pt:     g.AddExact(fmt.Sprintf("M[X]/D/1 m=%g", m), p),
		})
	}

	// M/D/c: Locking FCFS with a fully shared footprint (no inter-stream
	// displacement) on the idle host — service is t_warm + lock overhead,
	// constant. The critical-section fraction is set negligibly small so
	// the station is a clean M/D/8 central queue.
	lockS := warm + 12
	mdcRhos := []float64{0.7, 0.85}
	if c.Quick {
		mdcRhos = []float64{0.85}
	}
	for _, rho := range mdcRhos {
		lambdaAgg := rho * 8 / lockS
		rows = append(rows, row{
			name: "M/D/8 (Locking, shared footprint)", rho: rho,
			theory: queueing.MDcWaitApprox(8, lambdaAgg, lockS),
			pt: g.Add(fmt.Sprintf("M/D/8 rho=%g", rho), sim.Params{
				Paradigm: sim.Locking, Policy: sched.FCFS, Streams: 8,
				Arrival:        traffic.Poisson{PacketsPerSec: lambdaAgg * 1e6 / 8},
				Background:     &idle,
				CodeSharedFrac: 1,
				LockCritFrac:   1e-6,
			}),
		})
	}

	g.Run()
	for _, r := range rows {
		simWq := r.pt.Results().MeanQueueing
		errCell := "—"
		if r.theory > 1e-9 {
			errCell = fmt.Sprintf("%.1f%%", 100*(simWq-r.theory)/r.theory)
		}
		t.AddRow(r.name, fmt.Sprintf("%.2f", r.rho),
			fmt.Sprintf("%.1f", r.theory), fmt.Sprintf("%.1f", simWq), errCell)
	}

	t.Note("theory: M/D/1 exact, M[X]/D/1 exact, M/D/c via the Allen–Cunneen approximation")
	t.Note("sim Wq is arrival → service start; V = 0 and full affinity make service constant at t_warm (+12 µs lock overhead under Locking)")
	return t
}
