package exp

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Series is one named curve of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders numeric series as a text plot, so `paperfigs -charts`
// can show the *figures* of the evaluation, not just their tables.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots log10(y), appropriate for delay curves that explode at
	// saturation.
	LogY   bool
	Series []Series
}

// seriesMarkers distinguish curves in the plot grid.
var seriesMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart onto a width×height character grid (axes
// included). Points outside the positive domain are skipped under LogY.
func (c *Chart) Render(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	// Gather bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	ty := func(y float64) (float64, bool) {
		if c.LogY {
			if y <= 0 {
				return 0, false
			}
			return math.Log10(y), true
		}
		return y, true
	}
	for _, s := range c.Series {
		for i := range s.X {
			y, ok := ty(s.Y[i])
			if !ok {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		return c.Title + "\n(no plottable points)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, marker byte) {
		col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		row := height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(height-1)))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		grid[row][col] = marker
	}
	for si, s := range c.Series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		for i := range s.X {
			y, ok := ty(s.Y[i])
			if !ok {
				continue
			}
			plot(s.X[i], y, marker)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	yTop, yBot := maxY, minY
	if c.LogY {
		yTop, yBot = math.Pow(10, maxY), math.Pow(10, minY)
	}
	axisLabel := func(v float64) string {
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
	labelWidth := 9
	for r, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, axisLabel(yTop))
		case height - 1:
			label = fmt.Sprintf("%*s", labelWidth, axisLabel(yBot))
		case height / 2:
			lbl := c.YLabel
			if c.LogY {
				lbl += " (log)"
			}
			if len(lbl) > labelWidth {
				lbl = lbl[:labelWidth]
			}
			label = fmt.Sprintf("%*s", labelWidth, lbl)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", labelWidth),
		width-len(axisLabel(maxX)), axisLabel(minX)+"  "+c.XLabel, axisLabel(maxX))
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarkers[si%len(seriesMarkers)], s.Name))
	}
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", labelWidth), strings.Join(legend, "   "))
	return b.String()
}

// ChartFromTable builds a chart from a sweep table: xCol gives the
// x-axis column index and yCols the series columns. Cells that do not
// parse as numbers (saturation markers, dashes) are skipped; a trailing
// '*' is stripped first so saturated points still plot.
func ChartFromTable(t *Table, xCol int, yCols ...int) *Chart {
	c := &Chart{
		Title:  fmt.Sprintf("%s — %s", t.ID, t.Title),
		XLabel: t.Columns[xCol],
		YLabel: "y",
	}
	for _, yc := range yCols {
		s := Series{Name: t.Columns[yc]}
		for _, row := range t.Rows {
			x, errX := parseCell(row[xCol])
			y, errY := parseCell(row[yc])
			if errX != nil || errY != nil {
				continue
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		if len(s.X) > 0 {
			c.Series = append(c.Series, s)
		}
	}
	return c
}

func parseCell(cell string) (float64, error) {
	cell = strings.TrimSuffix(strings.TrimSpace(cell), "*")
	cell = strings.TrimSuffix(cell, "%")
	// A leading '>' marks a clamped quantile (the histogram's upper
	// bound, a lower bound on the true value); plot the bound rather
	// than dropping the point and leaving a hole in the curve.
	cell = strings.TrimPrefix(cell, ">")
	return strconv.ParseFloat(cell, 64)
}

// DefaultChart returns the natural chart for a sweep experiment's table,
// or nil for tables that are not rate/size sweeps. It is what
// `paperfigs -charts` renders.
func DefaultChart(t *Table) *Chart {
	spec, ok := chartSpecs[t.ID]
	if !ok {
		return nil
	}
	c := ChartFromTable(t, spec.x, spec.ys...)
	c.YLabel = spec.ylabel
	c.LogY = spec.logY
	return c
}

type chartSpec struct {
	x      int
	ys     []int
	ylabel string
	logY   bool
}

// chartSpecs maps sweep experiments to their natural axes.
var chartSpecs = map[string]chartSpec{
	"E2":  {0, []int{1, 2}, "fraction", false},
	"E3":  {0, []int{1}, "µs", false},
	"E5":  {0, []int{1, 2}, "delay µs", true},
	"E6":  {0, []int{1, 2, 3, 4}, "delay µs", true},
	"E7":  {0, []int{1, 2, 3}, "delay µs", true},
	"E10": {0, []int{1, 2}, "delay µs", true},
	"E11": {0, []int{1, 2, 3}, "delay µs", true},
	"E13": {0, []int{1, 2}, "delay µs", true},
	"E14": {0, []int{1}, "delay µs", true},
	"E17": {0, []int{1, 2}, "delay µs", true},
	"E18": {0, []int{1, 2, 3}, "delay µs", true},
	"E21": {0, []int{1, 2}, "delay µs", true},
	"E27": {0, []int{1, 3}, "drop %", false},
}
