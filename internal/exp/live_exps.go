package exp

import (
	"fmt"
	"sync"

	"affinity/internal/live"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// E29 cross-checks the discrete-event simulator against the live
// goroutine backend (internal/live): at each operating point both
// backends run the same policy pair, and the policy orderings — who
// wins — must agree. The points are chosen from E5–E8 operating points
// where the DES margin is at least ~5×, so the verdicts are stable
// despite the live backend's nondeterministic interleavings; the
// quantitative mean-delay tolerance is pinned by the differential
// harness (internal/live/differ_test.go), not here, because a golden
// table cannot print nondeterministic numbers. See DESIGN.md §10.

// E29Case is one policy-pair comparison of the live↔DES cross-check:
// two parameter sets identical except for the scheduling policy.
// Exported so the differential harness replays exactly this sweep.
type E29Case struct {
	Name string
	A, B sim.Params
}

// E29Cases returns the cross-check sweep. Seed and measured-packet
// budget are left zero for the caller (FigE29 applies the suite
// defaults; the differential harness sweeps its own seeds).
func E29Cases() []E29Case {
	pair := func(name string, base sim.Params, a, b sched.Kind) E29Case {
		pa, pb := base, base
		pa.Policy, pb.Policy = a, b
		return E29Case{Name: name, A: pa, B: pb}
	}
	lock16 := sim.Params{
		Paradigm: sim.Locking, Streams: 16,
		Arrival: traffic.Poisson{PacketsPerSec: 2400},
	}
	ips16 := sim.Params{
		Paradigm: sim.IPS, Streams: 16, Stacks: 16,
		Arrival: traffic.Poisson{PacketsPerSec: 2500},
	}
	touch8 := sim.Params{
		Paradigm: sim.Locking, Streams: 8, DataTouch: 35,
		Arrival: traffic.Poisson{PacketsPerSec: 4300},
	}
	return []E29Case{
		pair("Locking 16s @2400", lock16, sched.FCFS, sched.ThreadPools),
		pair("Locking 16s @2400", lock16, sched.MRU, sched.WiredStreams),
		pair("IPS 16s/16k @2500", ips16, sched.IPSRandom, sched.IPSWired),
		pair("IPS 16s/16k @2500", ips16, sched.IPSMRU, sched.IPSWired),
		pair("Locking 8s V=35 @4300", touch8, sched.FCFS, sched.WiredStreams),
	}
}

// e29Winner names the policy with the lower mean delay.
func e29Winner(a, b sim.Results) string {
	if a.MeanDelay <= b.MeanDelay {
		return a.Policy
	}
	return b.Policy
}

// FigE29 runs the cross-check: DES results through the shared pool,
// live results on real goroutines, and a verdict per point. Only
// DES-derived numbers are printed — live delays vary run to run, but at
// these margins the live winner (and so the verdict column) is stable.
func FigE29(c Config) *Table {
	t := &Table{
		ID:      "E29",
		Title:   "Live-backend cross-validation: policy win-order, DES vs goroutine execution",
		Columns: []string{"scenario", "A", "B", "DES A delay", "DES B delay", "DES winner", "live winner", "agree"},
	}
	cases := E29Cases()
	g := c.Grid("E29")
	type pointPair struct{ a, b *Point }
	des := make([]pointPair, len(cases))
	liveRes := make([][2]sim.Results, len(cases))
	for i, cs := range cases {
		des[i] = pointPair{
			a: g.Add(cs.Name+" "+cs.A.Policy.String(), cs.A),
			b: g.Add(cs.Name+" "+cs.B.Policy.String(), cs.B),
		}
	}
	// The live runs execute alongside the DES grid; each saturates the
	// machine with its own worker goroutines, so they run one at a time.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, cs := range cases {
			a, b := cs.A, cs.B
			a.Seed, b.Seed = c.Seed, c.Seed
			a.MeasuredPackets, b.MeasuredPackets = c.packets(), c.packets()
			liveRes[i][0] = live.Run(a)
			liveRes[i][1] = live.Run(b)
		}
	}()
	g.Run()
	wg.Wait()
	agreeAll := true
	for i, cs := range cases {
		da, db := des[i].a.Results(), des[i].b.Results()
		la, lb := liveRes[i][0], liveRes[i][1]
		desWin, liveWin := e29Winner(da, db), e29Winner(la, lb)
		agree := "yes"
		if desWin != liveWin {
			agree = "NO"
			agreeAll = false
		}
		t.AddRow(cs.Name, cs.A.Policy.String(), cs.B.Policy.String(),
			fmtDelay(da), fmtDelay(db), desWin, liveWin, agree)
	}
	if agreeAll {
		t.Note("both backends agree on every policy ordering")
	} else {
		t.Note("BACKEND DISAGREEMENT: the live goroutine backend ranks at least one policy pair differently from the DES")
	}
	t.Note("live mean delays are nondeterministic (real goroutine interleavings) and are not printed; margins at these points are ≥5x, so the winner column is stable")
	t.Note(fmt.Sprintf("quantitative DES↔live delay tolerance is enforced by the differential harness over %d-packet runs across seeds (internal/live/differ_test.go, DESIGN.md §10)", c.packets()))
	return t
}
