package exp

import (
	"fmt"
	"math"
	"reflect"

	"affinity/internal/policysearch"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/workload"
)

// e35Skews are the Zipf exponents E35 contests; the searched policy
// needs to win at only one of them for the family to have earned its
// place in the menu.
var e35Skews = []float64{0.5, 1.0, 1.5}

// e35Space is the AffinitySteal grid E35 searches: a denser penalty
// axis than DefaultSpace because the winning region sits at small
// penalties (a few µs of steal delay — just enough to let a warm
// processor come free during a burst, not enough to idle the machine),
// plus the three reduction corners so the search provably starts from
// the paper's own menu.
func e35Space() policysearch.Space {
	return policysearch.Space{
		Penalties: []float64{0, 5, 10, 25, 100, math.Inf(1)},
		Depths:    []int{0, 1, 2},
		Biases:    []float64{0, 1},
	}
}

// e35Weights is mean-delay-dominated (the paper's primary metric) with
// small tail/fairness/goodput guardrails so the search cannot win the
// mean by starving a stream or shedding load.
func e35Weights() policysearch.Weights {
	return policysearch.Weights{MeanDelay: 1, P95Delay: 0.05, Unfairness: 10, GoodputShortfall: 0.01}
}

// e35Workload is one E31-style operating point: Zipf-split aggregate
// rate with ON/OFF burst modulation and a data-touching cost — bursts
// build the backlogs the steal gate arbitrates, and data touching
// raises the price of the cold migrations it refuses.
func e35Workload(s float64) *workload.Spec {
	return &workload.Spec{
		Name: fmt.Sprintf("zipf-burst-%g", s),
		Classes: []workload.Class{
			{Name: "flows", Model: "poisson", Streams: 8, RatePPS: 14000, Zipf: s,
				OnUS: 20000, OffUS: 40000},
		},
	}
}

// FigE35 runs the policy search against the full paper menu. For each
// skew point every fixed policy the paper ranks — FCFS, MRU,
// ThreadPools, Wired-Streams under Locking, and IPS (wired) — runs on
// the identical workload, and a grid→coordinate-descent search over
// the AffinitySteal family runs beside them on the same memoizing
// pool. The table pins the searched winner's parameters and its margin
// over the best fixed policy; the acceptance bar is a strict mean-delay
// win at ≥ 1 skew point. The winning region is interior — a small
// finite steal penalty with full warm bias, a policy the paper never
// evaluates: MRU's placement discipline plus a few µs of patience
// before surrendering a warm stream's packet to a cold processor.
func FigE35(c Config) *Table {
	t := &Table{
		ID:      "E35",
		Title:   "Searched AffinitySteal vs the five paper policies (Zipf+ON/OFF bursts, 14000 pkt/s, 10 µs data touch)",
		Columns: []string{"zipf s", "best paper policy", "paper delay (µs)", "searched (p,d,b)", "steal delay (µs)", "margin", "beats all 5"},
		Notes: []string{
			"paper menu: FCFS, MRU, ThreadPools, Wired-Streams (Locking) and IPS-wired, all on the identical workload",
			"search: grid over penalty {0,5,10,25,100,inf} × depth {0,1,2} × bias {0,1} + coordinate descent, mean-delay-dominated fitness",
			"margin: (paper best − steal) / paper best mean delay; 'yes' requires a strict win over every fixed policy",
			"the family's corners reduce to FCFS, MRU and Wired-Streams (corner-equivalence tests), so the search can never do worse than those three rows",
		},
	}
	pool := c.Pool
	if pool == nil {
		pool = sim.NewPool(1)
	}
	paper := []struct {
		name     string
		paradigm sim.Paradigm
		policy   sched.Kind
	}{
		{"FCFS", sim.Locking, sched.FCFS},
		{"MRU", sim.Locking, sched.MRU},
		{"ThreadPools", sim.Locking, sched.ThreadPools},
		{"WiredStreams", sim.Locking, sched.WiredStreams},
		{"IPSWired", sim.IPS, sched.IPSWired},
	}
	g := c.Grid("E35")
	pts := make([][]*Point, len(e35Skews))
	for i, s := range e35Skews {
		spec := e35Workload(s)
		for _, pp := range paper {
			pts[i] = append(pts[i], g.Add(fmt.Sprintf("s=%g/%s", s, pp.name), sim.Params{
				Paradigm: pp.paradigm, Policy: pp.policy, Workload: spec, DataTouch: 10,
			}))
		}
	}
	g.Run()
	for i, s := range e35Skews {
		base := sim.Params{
			Paradigm: sim.Locking, Workload: e35Workload(s), DataTouch: 10,
			Seed: c.Seed, MeasuredPackets: c.packets(),
		}
		rep := policysearch.Search(pool, base, e35Space(), e35Weights())
		bestPaper, bestName := math.Inf(1), ""
		beatsAll := true
		for j, pp := range paper {
			r := pts[i][j].Results()
			if r.MeanDelay < bestPaper {
				bestPaper, bestName = r.MeanDelay, pp.name
			}
			if rep.Best.Results.MeanDelay >= r.MeanDelay {
				beatsAll = false
			}
		}
		margin := (bestPaper - rep.Best.Results.MeanDelay) / bestPaper
		won := "no"
		if beatsAll {
			won = "yes"
		}
		sp := rep.Best.Steal
		t.AddRow(fmt.Sprintf("%g", s), bestName, fmt.Sprintf("%.1f", bestPaper),
			fmt.Sprintf("(%g,%d,%g)", sp.Penalty, sp.DepthThreshold, sp.ColdBias),
			fmt.Sprintf("%.1f", rep.Best.Results.MeanDelay),
			fmt.Sprintf("%+.2f%%", 100*margin), won)
	}
	return t
}

// FigE36 validates the counterfactual engine's one-step regret signal
// against ground truth. A factual MRU run records its full decision
// ledger; the top-K highest-regret decisions are each replayed with the
// cheapest alternative forced in, and the table compares the predicted
// per-packet saving (the decision's regret under the cost model) with
// the realized total saving (mean-delay delta × completed packets,
// i.e. an exact re-simulation from the divergence point). Prediction
// and realization routinely disagree — a one-step model cannot see
// downstream consequences of moving one packet — which is exactly why
// the search (E35) ranks configurations by re-simulation, never by
// summed regret. The zero-perturbation identity (replaying every
// factual choice reproduces the factual Results bit for bit) is checked
// inline and printed, because it is what licenses attributing any
// replay's divergence to the substitution alone.
func FigE36(c Config) *Table {
	t := &Table{
		ID:      "E36",
		Title:   "Counterfactual regret vs ground-truth re-simulation (MRU, Zipf 1.0, top-5 regret decisions)",
		Columns: []string{"rank", "decision #", "stream", "predicted gain (µs)", "realized total (µs)", "agree"},
		Notes: []string{
			"predicted: the decision's regret (chosen − cheapest candidate cost) under the one-step cost model",
			"realized: (factual − replayed mean delay) × completed packets — exact re-simulation with that one choice substituted",
			"agree: whether the one-step prediction at least got the sign of the ground-truth effect right",
		},
	}
	p := sim.Params{
		Paradigm: sim.Locking, Policy: sched.MRU,
		Workload: &workload.Spec{
			Name: "cf-zipf",
			Classes: []workload.Class{
				{Name: "flows", Model: "poisson", Streams: 8, RatePPS: 12000, Zipf: 1.0},
			},
		},
		Seed:            c.Seed,
		MeasuredPackets: c.packets(),
	}
	factual, ledger := policysearch.Factual(p)
	zero := policysearch.ReplayFactual(p, ledger)
	identical := reflect.DeepEqual(factual, zero)
	cfs := policysearch.TopK(p, factual, ledger, 5)
	for i, cf := range cfs {
		realizedTotal := cf.RealizedGain * float64(factual.Completed)
		agree := "yes"
		if (cf.PredictedGain > 0) != (realizedTotal > 0) {
			agree = "no"
		}
		t.AddRow(i+1, fmt.Sprintf("%d", cf.Index), cf.Decision.Stream,
			fmt.Sprintf("%.1f", cf.PredictedGain),
			fmt.Sprintf("%+.1f", realizedTotal), agree)
	}
	t.Note("decisions recorded: %d; positive-regret decisions substituted one at a time, descending regret", ledger.Len())
	t.Note("zero-perturbation replay bit-identical to factual: %v", identical)
	return t
}
