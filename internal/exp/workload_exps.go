package exp

import (
	"fmt"
	"math"

	"affinity/internal/des"
	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/workload"
)

// e31Skews are the Zipf popularity exponents E31 sweeps, from uniform
// (s=0) to heavily skewed (s=2, where the hottest stream carries ~65%
// of the aggregate).
var e31Skews = []float64{0, 0.5, 1.0, 1.5, 2.0}

// FigE31 measures how stream-popularity skew changes the value of
// affinity scheduling. The paper's evaluation offers every stream the
// same rate; Internet traffic does not — flow popularity follows a
// Zipf law, concentrating most packets on a few hot streams. The skew
// sweep holds the aggregate rate fixed and redistributes it by Zipf
// exponent, and the model's answer is monotone in the exponent: the
// MRU-over-FCFS advantage is largest for uniform traffic and shrinks
// as skew grows. Skew gives an affinity-oblivious policy incidental
// affinity — when most packets belong to one hot stream, whatever
// processor FCFS picks probably served that stream last anyway — so
// deliberate affinity scheduling matters most exactly when no stream
// dominates. (The same sweep at other rates and data-touch settings
// reproduces the direction; it is not an artifact of the operating
// point.)
func FigE31(c Config) *Table {
	t := &Table{
		ID:      "E31",
		Title:   "Zipf stream-popularity skew vs affinity benefit (Locking, 8 streams, 12000 pkt/s aggregate)",
		Columns: []string{"zipf s", "hottest share", "FCFS delay (µs)", "MRU delay (µs)", "MRU advantage"},
		Notes: []string{
			"per-stream rates follow w_i ∝ (i+1)^-s at a fixed 12000 pkt/s aggregate (workload.Spec zipf knob)",
			"hottest share: fraction of the aggregate carried by stream 0",
			"MRU advantage: (FCFS - MRU) / FCFS mean delay; shrinks monotonically with skew —",
			"a dominant stream gives FCFS incidental affinity, so deliberate affinity pays most on uniform traffic",
		},
	}
	g := c.Grid("E31")
	type pair struct{ fcfs, mru *Point }
	pts := make([]pair, len(e31Skews))
	for i, s := range e31Skews {
		spec := &workload.Spec{
			Name: fmt.Sprintf("zipf-%g", s),
			Classes: []workload.Class{
				{Name: "flows", Model: "poisson", Streams: 8, RatePPS: 12000, Zipf: s},
			},
		}
		pts[i].fcfs = g.Add(fmt.Sprintf("s=%g/FCFS", s), sim.Params{
			Paradigm: sim.Locking, Policy: sched.FCFS, Workload: spec,
		})
		pts[i].mru = g.Add(fmt.Sprintf("s=%g/MRU", s), sim.Params{
			Paradigm: sim.Locking, Policy: sched.MRU, Workload: spec,
		})
	}
	g.Run()
	for i, s := range e31Skews {
		fc, mr := pts[i].fcfs.Results(), pts[i].mru.Results()
		adv := (fc.MeanDelay - mr.MeanDelay) / fc.MeanDelay
		t.AddRow(fmt.Sprintf("%g", s), fmt.Sprintf("%.3f", zipfTopShare(s, 8)),
			fmtDelay(fc), fmtDelay(mr), fmt.Sprintf("%.1f%%", 100*adv))
	}
	return t
}

// zipfTopShare is the fraction of a Zipf(s) aggregate the hottest of n
// streams carries: 1 / Σ_{i=1..n} i^-s.
func zipfTopShare(s float64, n int) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += math.Pow(float64(i), -s)
	}
	return 1 / sum
}

// FigE32 contrasts every Locking policy on one frozen ON/OFF-bursty
// arrival history: workload.Synthesize draws the modulated arrivals
// once from the suite seed, and each policy replays the identical
// trace, so the delay spread across rows is purely the scheduling
// policy — no arrival-sampling noise, the methodological payoff of
// trace record/replay. The ON/OFF modulation (duty 1/3, 3x peak-to-
// mean) makes the contrast harsher than Poisson: bursts pile up
// queues, and what a policy does with a backlog — migrate it and eat
// reloads, or drain it warm — dominates the mean.
func FigE32(c Config) *Table {
	t := &Table{
		ID:      "E32",
		Title:   "Policies on one replayed ON/OFF burst trace (Locking, 8 streams, 6000 pkt/s mean, duty 1/3)",
		Columns: []string{"policy", "mean delay (µs)", "p95 (µs)", "warm fraction", "migrations"},
		Notes: []string{
			"all rows replay the same synthesized arrival trace (workload.Synthesize + Replay): identical arrivals, bit-for-bit",
			"ON 20ms / OFF 40ms exponential modulation of per-stream Poisson at 3x peak-to-mean",
		},
	}
	spec := &workload.Spec{
		Name: "onoff-burst",
		Classes: []workload.Class{
			{Name: "bursty", Model: "poisson", Streams: 8, RatePPS: 6000,
				OnUS: 20000, OffUS: 40000},
		},
	}
	per, err := spec.Generate()
	if err != nil {
		panic(fmt.Sprintf("exp: E32 workload spec invalid: %v", err))
	}
	// The horizon comfortably covers the measurement window at the mean
	// rate (full runs need ~2s of arrivals for 12000 packets; quick runs
	// a fraction of that), so no policy drains the trace early.
	trace := workload.Synthesize(per, c.Seed, 8*des.Second)
	replay := workload.Replay(trace)

	g := c.Grid("E32")
	policies := []sched.Kind{sched.FCFS, sched.MRU, sched.ThreadPools, sched.WiredStreams}
	var pts []*Point
	for _, pol := range policies {
		pts = append(pts, g.Add(pol.String(), sim.Params{
			Paradigm: sim.Locking, Policy: pol,
			Streams: len(replay), ArrivalPerStream: replay,
		}))
	}
	g.Run()
	for i, pol := range policies {
		r := pts[i].Results()
		t.AddRow(pol.String(), fmtDelay(r), fmtP95(r),
			fmt.Sprintf("%.3f", r.WarmFraction), r.Migrations)
	}
	return t
}
