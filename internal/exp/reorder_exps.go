package exp

import (
	"fmt"

	"affinity/internal/sched"
	"affinity/internal/sim"
	"affinity/internal/traffic"
)

// FigE30 measures a cost of affinity scheduling the paper never
// quantifies: packet reordering within a stream. A migrating policy may
// serve a stream's packets on two processors at once, so a later packet
// can finish first; transport protocols above pay for that in
// resequencing buffers and (for TCP) spurious fast retransmits.
// Wired-Streams serializes each stream on one processor, so its
// reordering is zero by construction — the interesting question is how
// much the policies that migrate (and win on delay) reorder, and how
// far a displaced packet lands from its arrival position. Bursty
// arrivals near the knee maximize the chance a stream has packets
// queued on two processors simultaneously.
func FigE30(c Config) *Table {
	t := &Table{
		ID:      "E30",
		Title:   "Per-stream reordering under bursty load (Locking, 8 streams, 1500 pkt/s/stream, mean burst 4)",
		Columns: []string{"policy", "mean delay (µs)", "reordered", "fraction", "max distance", "migrations"},
		Notes: []string{
			"reordered: completions finishing after a later arrival of the same stream already had",
			"max distance: worst displacement, in packets of the stream's own arrival order",
			"Wired-Streams pins each stream to one processor, so its reordering is structurally zero",
		},
	}
	g := c.Grid("E30")
	var pts []*Point
	policies := []sched.Kind{sched.FCFS, sched.MRU, sched.ThreadPools, sched.WiredStreams}
	for _, pol := range policies {
		pts = append(pts, g.Add(pol.String(), sim.Params{
			Paradigm: sim.Locking, Policy: pol, Streams: 8,
			Arrival: traffic.Batch{PacketsPerSec: 1500, MeanBurst: 4},
		}))
	}
	g.Run()
	for i, pol := range policies {
		r := pts[i].Results()
		frac := 0.0
		if r.CompletedTotal > 0 {
			frac = float64(r.ReorderedTotal) / float64(r.CompletedTotal)
		}
		t.AddRow(pol.String(), fmtDelay(r), r.ReorderedTotal,
			fmt.Sprintf("%.4f", frac), r.MaxReorderDistance, r.Migrations)
	}
	return t
}
