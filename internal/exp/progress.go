package exp

import (
	"fmt"
	"io"
	"sync"
	"time"

	"affinity/internal/sim"
)

// Reporter logs experiment progress and timing: per-experiment
// wall-clock duration and event rates, and — for experiments running on
// the sweep-point grid — per-point completions (points done / total and
// the cumulative event rate since the experiment started). It is safe
// for concurrent use (paperfigs runs experiments in parallel); event
// counts are drawn from the simulator's global counter, so under
// concurrency each experiment's count includes events fired by
// experiments that overlapped it — the report labels such counts
// accordingly.
type Reporter struct {
	mu     sync.Mutex
	w      io.Writer
	now    func() time.Time
	active map[string]*expStart
	// inflight tracks overlap so concurrent runs can be flagged.
	inflight int
}

type expStart struct {
	wall    time.Time
	events  uint64
	overlap bool

	pointsTotal int
	pointsDone  int
}

// NewReporter returns a Reporter writing human-readable lines to w.
func NewReporter(w io.Writer) *Reporter {
	return &Reporter{w: w, now: time.Now, active: map[string]*expStart{}}
}

// Start records the beginning of the experiment with the given ID.
func (r *Reporter) Start(id, title string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inflight++
	r.active[id] = &expStart{
		wall:    r.now(),
		events:  sim.TotalEventsFired(),
		overlap: r.inflight > 1,
	}
	fmt.Fprintf(r.w, "%-4s start  %s\n", id, title)
}

// Points records how many sweep points the experiment's grid declared;
// subsequent PointDone calls report progress against this total.
// Unknown IDs are ignored.
func (r *Reporter) Points(id string, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.active[id]; ok {
		s.pointsTotal = total
	}
}

// PointDone records the completion of one sweep point and logs points
// done / total with the cumulative event rate since the experiment
// started. Unknown IDs are ignored.
func (r *Reporter) PointDone(id, label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.active[id]
	if !ok {
		return
	}
	s.pointsDone++
	rate := ""
	if secs := r.now().Sub(s.wall).Seconds(); secs > 0 {
		events := sim.TotalEventsFired() - s.events
		rate = fmt.Sprintf("  %.3g events/s", float64(events)/secs)
	}
	fmt.Fprintf(r.w, "%-4s point  %d/%d  %s%s\n", id, s.pointsDone, s.pointsTotal, label, rate)
}

// Done records the end of the experiment with the given ID and prints
// its wall-clock time, events fired and event rate. Unknown IDs are
// ignored.
func (r *Reporter) Done(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.active[id]
	if !ok {
		return
	}
	delete(r.active, id)
	if r.inflight > 1 {
		s.overlap = true
	}
	r.inflight--
	wall := r.now().Sub(s.wall)
	events := sim.TotalEventsFired() - s.events
	rate := ""
	if secs := wall.Seconds(); secs > 0 {
		rate = fmt.Sprintf("  %.3g events/s", float64(events)/secs)
	}
	qual := ""
	if s.overlap {
		qual = " (incl. concurrent runs)"
	}
	points := ""
	if s.pointsTotal > 0 {
		points = fmt.Sprintf("  %d points", s.pointsTotal)
	}
	fmt.Fprintf(r.w, "%-4s done   %v%s  %d events%s%s\n", id, wall.Round(time.Millisecond), points, events, qual, rate)
}
